package gfmap

// The benchmarks below regenerate each table of the paper's evaluation
// under `go test -bench`. One benchmark per table; figures are covered by
// deterministic tests in internal/hazard and internal/core. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmark reports are the raw material of EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"testing"

	"gfmap/internal/bench"
	"gfmap/internal/bexpr"
	"gfmap/internal/core"
	"gfmap/internal/hazard"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
)

// BenchmarkTable1LibraryCensus measures the Table 1 workload: computing
// the hazard census of all four (pre-annotated) libraries.
func BenchmarkTable1LibraryCensus(b *testing.B) {
	for _, name := range library.BuiltinNames {
		library.MustGet(name) // annotate outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad census")
		}
	}
}

// BenchmarkTable2LibraryInit measures the Table 2 workload per library:
// the asynchronous mapper's initialisation (build + hazard annotation of
// every cell). This is the paper's headline hazard-analysis cost.
func BenchmarkTable2LibraryInit(b *testing.B) {
	for _, name := range library.BuiltinNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib, err := library.Build(name)
				if err != nil {
					b.Fatal(err)
				}
				if err := lib.Annotate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3QualityVsHand measures the Table 3 workload: the
// automatic asynchronous mapping of the ABCS controller onto the GDT
// library (the design the paper compares against a hand mapping).
func BenchmarkTable3QualityVsHand(b *testing.B) {
	d, err := bench.DesignByName("abcs")
	if err != nil {
		b.Fatal(err)
	}
	lib := library.MustGet("GDT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.AsyncTmap(d.Net, lib, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Area <= 0 {
			b.Fatal("degenerate mapping")
		}
	}
}

// BenchmarkTable4MapperRuntime measures the Table 4 grid: sync vs async
// mapping of the SCSI and ABCS designs on every library.
func BenchmarkTable4MapperRuntime(b *testing.B) {
	for _, designName := range []string{"scsi", "abcs"} {
		d, err := bench.DesignByName(designName)
		if err != nil {
			b.Fatal(err)
		}
		for _, libName := range library.BuiltinNames {
			lib := library.MustGet(libName)
			for _, mode := range []core.Mode{core.Sync, core.Async} {
				b.Run(designName+"/"+libName+"/"+mode.String(), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := core.Map(d.Net, lib, core.Options{Mode: mode}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable5Benchmarks measures the Table 5 grid: asynchronous
// mapping of all eleven benchmarks on the Actel and CMOS3 libraries.
func BenchmarkTable5Benchmarks(b *testing.B) {
	ds, err := bench.Designs()
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range ds {
		for _, libName := range []string{"Actel", "CMOS3"} {
			lib := library.MustGet(libName)
			b.Run(d.Name+"/"+libName, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := core.AsyncTmap(d.Net, lib, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Area, "area")
					b.ReportMetric(res.Delay, "delay_ns")
				}
			})
		}
	}
}

// BenchmarkParallelMapping measures the covering DP's worker scaling on
// the largest benchmark (dean-ctrl on Actel, the hazard-heaviest library):
// serial, half the CPUs, and one worker per CPU, all through a cold private
// hazard cache per iteration so runs are comparable.
func BenchmarkParallelMapping(b *testing.B) {
	d, err := bench.DesignByName("dean-ctrl")
	if err != nil {
		b.Fatal(err)
	}
	lib := library.MustGet("Actel")
	seen := map[int]bool{}
	for _, workers := range []int{1, runtime.NumCPU() / 2, runtime.NumCPU()} {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Workers: workers, HazardCache: hazcache.New(0)}
				if _, err := core.AsyncTmap(d.Net, lib, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapMatchIndex isolates the Boolean-matching acceleration: the
// same mappings with the signature-keyed library index plus symmetry
// pruning on (the default) and off. finds/op reports the number of
// permutation searches actually run — the Stats.FindInvocations counter —
// so the sublinearity claim is visible next to the wall time.
func BenchmarkMapMatchIndex(b *testing.B) {
	for _, designName := range []string{"scsi", "abcs"} {
		d, err := bench.DesignByName(designName)
		if err != nil {
			b.Fatal(err)
		}
		lib := library.MustGet("Actel")
		for _, disabled := range []bool{false, true} {
			label := "indexed"
			if disabled {
				label = "unindexed"
			}
			b.Run(designName+"/"+label, func(b *testing.B) {
				var finds, pruned int
				for i := 0; i < b.N; i++ {
					opts := core.Options{Mode: core.Async, Workers: 1,
						HazardCache: hazcache.New(0), DisableMatchIndex: disabled}
					res, err := core.Map(d.Net, lib, opts)
					if err != nil {
						b.Fatal(err)
					}
					finds = res.Stats.FindInvocations
					pruned = res.Stats.SymmetryPruned
				}
				b.ReportMetric(float64(finds), "finds/op")
				b.ReportMetric(float64(pruned), "pruned/op")
			})
		}
	}
}

// BenchmarkHazardCacheEffect isolates the shared cache: the same mapping
// with the cross-cone cache disabled (per-cone memo only), cold, and warm.
func BenchmarkHazardCacheEffect(b *testing.B) {
	d, err := bench.DesignByName("abcs")
	if err != nil {
		b.Fatal(err)
	}
	lib := library.MustGet("Actel")
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.Options{Workers: 1, DisableHazardCache: true}
			if _, err := core.AsyncTmap(d.Net, lib, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.Options{Workers: 1, HazardCache: hazcache.New(0)}
			if _, err := core.AsyncTmap(d.Net, lib, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := hazcache.New(0)
		opts := core.Options{Workers: 1, HazardCache: cache}
		if _, err := core.AsyncTmap(d.Net, lib, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.AsyncTmap(d.Net, lib, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHazardAnalysisSuite measures the §4 algorithms on the canonical
// hazardous element (the 2:1 mux) and on the paper's running example
// (Figure 8's three-cube function) — the per-cell/per-subnetwork work the
// mapper performs during matching.
func BenchmarkHazardAnalysisSuite(b *testing.B) {
	mux := bexpr.MustParse("s'*a + s*b")
	fig8 := bexpr.MustParse("w'*x*z + w'*x*y + x*y*z")
	b.Run("AnalyzeMux", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hazard.Analyze(mux); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AnalyzeFig8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hazard.Analyze(fig8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullReportFig8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hazard.AnalyzeFunction(fig8); err != nil {
				b.Fatal(err)
			}
		}
	})
}
