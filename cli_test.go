package gfmap

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and driven the way a user would drive it.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles all commands once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gfmap-cli")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/asyncmap", "./cmd/hazardcheck", "./cmd/libaudit", "./cmd/paperbench", "./cmd/tracelint")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return buildDir
}

func run(t *testing.T, name string, stdin string, args ...string) (string, int) {
	t.Helper()
	stdout, stderr, code := runSplit(t, name, stdin, args...)
	return stdout + stderr, code
}

// runSplit runs a built tool keeping stdout and stderr separate, for
// tests of the stream contract.
func runSplit(t *testing.T, name string, stdin string, args ...string) (string, string, int) {
	t.Helper()
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s%s", name, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String(), code
}

const fig3Eqn = `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`

func TestCLIAsyncmapStdin(t *testing.T) {
	out, code := run(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-mode", "async", "-verify")
	if code != 0 {
		t.Fatalf("asyncmap failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"mode=async", "hazard safety: cones checked", "new hazards 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIAsyncmapSyncIntroducesHazard(t *testing.T) {
	out, code := run(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-mode", "sync", "-verify")
	if code != 2 {
		t.Fatalf("sync verify should exit 2 on introduced hazards, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "not a subset") {
		t.Errorf("expected a hazard-violation detail:\n%s", out)
	}
}

func TestCLIAsyncmapFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.eqn")
	if err := os.WriteFile(path, []byte(fig3Eqn), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "asyncmap", "", "-lib", "CMOS3", "-q", path)
	if code != 0 {
		t.Fatalf("asyncmap file failed (%d):\n%s", code, out)
	}
	if strings.Contains(out, "INPUT(") {
		t.Error("-q should suppress the netlist body")
	}
	if !strings.Contains(out, "library=CMOS3") {
		t.Errorf("missing stats line:\n%s", out)
	}
}

// The -nomatchindex flag must change nothing but the matching statistics:
// the netlist on stdout stays byte-identical (the CI smoke job diffs the
// same pair on files).
func TestCLIAsyncmapNoMatchIndexBitIdentical(t *testing.T) {
	for _, mode := range []string{"sync", "async"} {
		on, _, code := runSplit(t, "asyncmap", fig3Eqn, "-mode", mode, "-stats", "json")
		if code != 0 {
			t.Fatalf("indexed %s run failed (%d)", mode, code)
		}
		off, offErr, code := runSplit(t, "asyncmap", fig3Eqn, "-mode", mode, "-stats", "json", "-nomatchindex")
		if code != 0 {
			t.Fatalf("-nomatchindex %s run failed (%d)", mode, code)
		}
		if on != off {
			t.Errorf("%s netlist differs with -nomatchindex:\n%s\nvs\n%s", mode, on, off)
		}
		if !strings.Contains(offErr, `"IndexProbes": 0`) {
			t.Errorf("-nomatchindex stats should report zero index probes:\n%s", offErr)
		}
	}
}

func TestCLIAsyncmapBadInput(t *testing.T) {
	if out, code := run(t, "asyncmap", "garbage", "-lib", "LSI9K"); code == 0 {
		t.Errorf("garbage input should fail:\n%s", out)
	}
	if out, code := run(t, "asyncmap", fig3Eqn, "-lib", "NoSuchLib"); code == 0 {
		t.Errorf("unknown library should fail:\n%s", out)
	}
}

func TestCLIHazardcheck(t *testing.T) {
	out, code := run(t, "hazardcheck", "", "s'*a + s*b")
	if code != 0 {
		t.Fatalf("hazardcheck failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "static-1") {
		t.Errorf("mux report missing static-1 hazard:\n%s", out)
	}
	out, code = run(t, "hazardcheck", "", "-fix", "s'*a + s*b")
	if code != 0 || !strings.Contains(out, "repaired cover") {
		t.Errorf("fix output wrong (%d):\n%s", code, out)
	}
	if _, code := run(t, "hazardcheck", "", "((("); code == 0 {
		t.Error("bad expression should fail")
	}
}

func TestCLILibaudit(t *testing.T) {
	out, code := run(t, "libaudit", "")
	if code != 0 {
		t.Fatalf("libaudit failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"LSI9K", "CMOS3", "GDT", "Actel", "29%"} {
		if !strings.Contains(out, want) {
			t.Errorf("census missing %q:\n%s", want, out)
		}
	}
	out, code = run(t, "libaudit", "", "-lib", "ActelAct2")
	if code != 0 {
		t.Fatalf("libaudit ActelAct2 failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "0 hazardous (0%)") {
		t.Errorf("Act2 should audit hazard-free:\n%s", out)
	}
}

func TestCLIPaperbenchTable1(t *testing.T) {
	out, code := run(t, "paperbench", "", "-table", "1")
	if code != 0 {
		t.Fatalf("paperbench failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "MUX") {
		t.Errorf("table 1 output wrong:\n%s", out)
	}
}

// TestCLIStatsJSONStderr pins the stream contract: with the netlist on
// stdout, -stats json must put the JSON on stderr so piped netlists stay
// machine-parseable; with -q the JSON owns stdout.
func TestCLIStatsJSONStderr(t *testing.T) {
	stdout, stderr, code := runSplit(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-stats", "json")
	if code != 0 {
		t.Fatalf("asyncmap failed (%d):\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "INPUT(") {
		t.Errorf("netlist missing from stdout:\n%s", stdout)
	}
	if strings.Contains(stdout, `"Mode"`) {
		t.Errorf("stats JSON leaked onto stdout:\n%s", stdout)
	}
	var st struct {
		Mode  string
		Gates int
	}
	if err := json.Unmarshal([]byte(stderr), &st); err != nil {
		t.Fatalf("stderr is not a stats JSON object: %v\n%s", err, stderr)
	}
	if st.Mode != "async" || st.Gates == 0 {
		t.Errorf("stats JSON wrong: %+v", st)
	}

	stdout, stderr, code = runSplit(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-stats", "json", "-q")
	if code != 0 {
		t.Fatalf("asyncmap -q failed (%d):\n%s%s", code, stdout, stderr)
	}
	if err := json.Unmarshal([]byte(stdout), &st); err != nil {
		t.Fatalf("with -q the stats JSON should own stdout: %v\n%s", err, stdout)
	}
	if strings.TrimSpace(stderr) != "" {
		t.Errorf("unexpected stderr with -q: %s", stderr)
	}
}

// TestCLIAsyncmapTrace drives the whole observability surface: trace and
// event files are written, the trace passes the tracelint schema checker
// with all pipeline-phase spans required, and -hist emits comment-style
// histogram lines that don't break the netlist stream.
func TestCLIAsyncmapTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	events := filepath.Join(dir, "events.jsonl")
	stdout, stderr, code := runSplit(t, "asyncmap", fig3Eqn,
		"-lib", "LSI9K", "-trace", trace, "-events", events, "-hist")
	if code != 0 {
		t.Fatalf("asyncmap failed (%d):\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "INPUT(") {
		t.Errorf("netlist missing:\n%s", stdout)
	}
	for _, want := range []string{"# hist map_hazard_analyze_seconds", "# hist map_cuts_per_node", "# counter map_cones = 1"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-hist output missing %q:\n%s", want, stdout)
		}
	}
	for _, ln := range strings.Split(stdout, "\n") {
		if ln != "" && !strings.HasPrefix(ln, "#") && !strings.HasPrefix(ln, "INPUT") &&
			!strings.HasPrefix(ln, "OUTPUT") && !strings.Contains(ln, "=") {
			t.Errorf("non-comment, non-netlist line on stdout: %q", ln)
		}
	}
	lintOut, lintCode := run(t, "tracelint", "",
		"-require", "decompose,partition,cuts,match,hazard,cover,emit", trace, events)
	if lintCode != 0 {
		t.Fatalf("tracelint rejected the trace (%d):\n%s", lintCode, lintOut)
	}
	if !strings.Contains(lintOut, "OK") {
		t.Errorf("tracelint output: %s", lintOut)
	}

	// The traced run must produce the same netlist as an untraced one.
	plain, _, code := runSplit(t, "asyncmap", fig3Eqn, "-lib", "LSI9K")
	if code != 0 {
		t.Fatal("untraced run failed")
	}
	netlistOf := func(out string) string {
		var keep []string
		for _, ln := range strings.Split(out, "\n") {
			if !strings.HasPrefix(ln, "#") {
				keep = append(keep, ln)
			}
		}
		return strings.Join(keep, "\n")
	}
	if netlistOf(stdout) != netlistOf(plain) {
		t.Errorf("tracing perturbed the netlist:\n%s\nvs\n%s", netlistOf(stdout), netlistOf(plain))
	}
}

// TestCLITracelintRejects: the schema checker must fail on malformed
// traces and on traces missing required spans.
func TestCLITracelintRejects(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"X"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := run(t, "tracelint", "", bad); code == 0 {
		t.Errorf("nameless event should fail lint:\n%s", out)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := run(t, "tracelint", "", "-require", "decompose", empty); code == 0 {
		t.Errorf("missing required span should fail lint:\n%s", out)
	}
	notJSON := filepath.Join(dir, "nope.json")
	if err := os.WriteFile(notJSON, []byte(`garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := run(t, "tracelint", "", notJSON); code == 0 {
		t.Errorf("garbage should fail lint:\n%s", out)
	}
}

// TestCLIPaperbenchJSON: the -json report is valid JSON, stamped with an
// environment fingerprint, and carries per-design histogram summaries.
func TestCLIPaperbenchJSON(t *testing.T) {
	stdout, stderr, code := runSplit(t, "paperbench", "", "-json", "-", "-lib", "Actel")
	if code != 0 {
		t.Fatalf("paperbench -json failed (%d):\n%s", code, stderr)
	}
	var rep struct {
		Fingerprint struct {
			GoVersion  string `json:"go_version"`
			GOOS       string `json:"goos"`
			NumCPU     int    `json:"num_cpu"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			Library    string `json:"library"`
		} `json:"fingerprint"`
		Designs []struct {
			Design     string                     `json:"design"`
			Gates      int                        `json:"gates"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"designs"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Fingerprint.GoVersion == "" || rep.Fingerprint.GOOS == "" ||
		rep.Fingerprint.NumCPU < 1 || rep.Fingerprint.GOMAXPROCS < 1 {
		t.Errorf("fingerprint incomplete: %+v", rep.Fingerprint)
	}
	if rep.Fingerprint.Library != "Actel" {
		t.Errorf("fingerprint library = %q", rep.Fingerprint.Library)
	}
	if len(rep.Designs) == 0 {
		t.Fatal("no designs in report")
	}
	for _, d := range rep.Designs {
		if d.Gates == 0 {
			t.Errorf("%s: no gates", d.Design)
		}
		if _, ok := d.Histograms["map_cuts_per_node"]; !ok {
			t.Errorf("%s: missing cuts-per-node histogram", d.Design)
		}
	}
}

func TestCLIAsyncmapCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "tiny.genlib")
	if err := os.WriteFile(lib, []byte(`
LIBRARY tiny
GATE INV - 0.3 a' ;
GATE BUF - 0.3 a ;
GATE AND2 - 0.5 a*b ;
GATE OR2 - 0.5 a + b ;
GATE MUX - 0.8 s'*a + s*b ;
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "asyncmap", fig3Eqn, "-libfile", lib, "-mode", "async", "-verify")
	if code != 0 {
		t.Fatalf("custom library mapping failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "new hazards 0") {
		t.Errorf("verification missing:\n%s", out)
	}
}
