package gfmap

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and driven the way a user would drive it.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles all commands once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gfmap-cli")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/asyncmap", "./cmd/hazardcheck", "./cmd/libaudit", "./cmd/paperbench")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return buildDir
}

func run(t *testing.T, name string, stdin string, args ...string) (string, int) {
	t.Helper()
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

const fig3Eqn = `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`

func TestCLIAsyncmapStdin(t *testing.T) {
	out, code := run(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-mode", "async", "-verify")
	if code != 0 {
		t.Fatalf("asyncmap failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"mode=async", "hazard safety: cones checked", "new hazards 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIAsyncmapSyncIntroducesHazard(t *testing.T) {
	out, code := run(t, "asyncmap", fig3Eqn, "-lib", "LSI9K", "-mode", "sync", "-verify")
	if code != 2 {
		t.Fatalf("sync verify should exit 2 on introduced hazards, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "not a subset") {
		t.Errorf("expected a hazard-violation detail:\n%s", out)
	}
}

func TestCLIAsyncmapFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.eqn")
	if err := os.WriteFile(path, []byte(fig3Eqn), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "asyncmap", "", "-lib", "CMOS3", "-q", path)
	if code != 0 {
		t.Fatalf("asyncmap file failed (%d):\n%s", code, out)
	}
	if strings.Contains(out, "INPUT(") {
		t.Error("-q should suppress the netlist body")
	}
	if !strings.Contains(out, "library=CMOS3") {
		t.Errorf("missing stats line:\n%s", out)
	}
}

func TestCLIAsyncmapBadInput(t *testing.T) {
	if out, code := run(t, "asyncmap", "garbage", "-lib", "LSI9K"); code == 0 {
		t.Errorf("garbage input should fail:\n%s", out)
	}
	if out, code := run(t, "asyncmap", fig3Eqn, "-lib", "NoSuchLib"); code == 0 {
		t.Errorf("unknown library should fail:\n%s", out)
	}
}

func TestCLIHazardcheck(t *testing.T) {
	out, code := run(t, "hazardcheck", "", "s'*a + s*b")
	if code != 0 {
		t.Fatalf("hazardcheck failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "static-1") {
		t.Errorf("mux report missing static-1 hazard:\n%s", out)
	}
	out, code = run(t, "hazardcheck", "", "-fix", "s'*a + s*b")
	if code != 0 || !strings.Contains(out, "repaired cover") {
		t.Errorf("fix output wrong (%d):\n%s", code, out)
	}
	if _, code := run(t, "hazardcheck", "", "((("); code == 0 {
		t.Error("bad expression should fail")
	}
}

func TestCLILibaudit(t *testing.T) {
	out, code := run(t, "libaudit", "")
	if code != 0 {
		t.Fatalf("libaudit failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"LSI9K", "CMOS3", "GDT", "Actel", "29%"} {
		if !strings.Contains(out, want) {
			t.Errorf("census missing %q:\n%s", want, out)
		}
	}
	out, code = run(t, "libaudit", "", "-lib", "ActelAct2")
	if code != 0 {
		t.Fatalf("libaudit ActelAct2 failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "0 hazardous (0%)") {
		t.Errorf("Act2 should audit hazard-free:\n%s", out)
	}
}

func TestCLIPaperbenchTable1(t *testing.T) {
	out, code := run(t, "paperbench", "", "-table", "1")
	if code != 0 {
		t.Fatalf("paperbench failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "MUX") {
		t.Errorf("table 1 output wrong:\n%s", out)
	}
}

func TestCLIAsyncmapCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "tiny.genlib")
	if err := os.WriteFile(lib, []byte(`
LIBRARY tiny
GATE INV - 0.3 a' ;
GATE BUF - 0.3 a ;
GATE AND2 - 0.5 a*b ;
GATE OR2 - 0.5 a + b ;
GATE MUX - 0.8 s'*a + s*b ;
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "asyncmap", fig3Eqn, "-libfile", lib, "-mode", "async", "-verify")
	if code != 0 {
		t.Fatalf("custom library mapping failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "new hazards 0") {
		t.Errorf("verification missing:\n%s", out)
	}
}
