// Command asyncmap is the hazard-aware technology mapper: it reads a
// technology-independent logic network (eqn or BLIF format), maps it onto
// a cell library, and writes the mapped netlist with area/delay statistics.
//
// Usage:
//
//	asyncmap -lib LSI9K [-mode async|sync] [-depth 5] [-verify] design.eqn
//	asyncmap -libfile mylib.genlib design.blif
//	asyncmap -trace out.json -events out.jsonl -hist design.eqn
//	asyncmap -pprof :6060 big-design.eqn
//
// With no positional argument the network is read from standard input in
// eqn format.
//
// Stream contract: the mapped netlist (or Verilog) is the only
// machine-parseable payload on standard output, optionally followed by
// "#"-prefixed comment lines (text statistics, -hist histograms, -path
// report) that netlist parsers skip. When -stats json is combined with
// netlist output on stdout, the stats JSON object is written to standard
// error, so `asyncmap -stats json design.eqn > mapped.net` leaves
// mapped.net parseable and the JSON separable via 2>stats.json. With -q
// (no netlist) the JSON goes to stdout.
//
// Observability: -trace writes a Chrome trace-event JSON file of the
// whole pipeline (load it at https://ui.perfetto.dev — one track per DP
// worker), -events writes the same records as grep/jq-friendly JSONL,
// -hist prints metric histograms (hazard-analysis latency, cuts per
// node, cluster leaf widths, cache shard occupancy), and -pprof serves
// net/http/pprof on the given address for live CPU/heap profiling with
// per-worker and per-cone labels. See docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gfmap/internal/blif"
	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
	"gfmap/internal/obs"
)

func main() {
	libName := flag.String("lib", "LSI9K", "built-in library: LSI9K, CMOS3, GDT or Actel")
	libFile := flag.String("libfile", "", "library file in the GATE format (overrides -lib)")
	mode := flag.String("mode", "async", "mapping mode: async (hazard-aware) or sync")
	depth := flag.Int("depth", 5, "maximum match-cluster depth")
	leaves := flag.Int("leaves", 6, "maximum match-cluster inputs")
	objective := flag.String("objective", "area", "covering objective: area or delay")
	workers := flag.Int("workers", 0, "parallel covering workers; 0 = one per CPU, 1 = serial (result is deterministic either way)")
	maxBurst := flag.Int("maxburst", 0, "hazard don't-cares: ignore cell hazards on bursts wider than this (0 = off)")
	verify := flag.Bool("verify", false, "verify functional equivalence and per-cone hazard safety")
	quiet := flag.Bool("q", false, "print statistics only, not the netlist")
	format := flag.String("o", "netlist", "output format: netlist or verilog")
	showPath := flag.Bool("path", false, "print the critical path")
	statsFmt := flag.String("stats", "text", "statistics format: text or json (json goes to stderr when the netlist is on stdout)")
	noCache := flag.Bool("nocache", false, "disable the shared hazard-analysis cache (A/B measurement)")
	noMatchIndex := flag.Bool("nomatchindex", false, "disable the Boolean-match index and symmetry pruning (A/B measurement; netlists are bit-identical either way)")
	noArena := flag.Bool("noarena", false, "disable the per-worker arena allocator of the covering DP (A/B measurement; netlists are bit-identical either way)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the pipeline (open in Perfetto)")
	eventsOut := flag.String("events", "", "write the span/event log as JSONL to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) and label DP workers")
	hist := flag.Bool("hist", false, "print metric histograms (hazard latency, cuts/node, cluster widths) as comment lines")
	storePath := flag.String("store", "", "persistent cone-solution store file; a warm store skips the covering DP for unchanged cones (results are byte-identical)")
	flag.Parse()

	if *statsFmt != "text" && *statsFmt != "json" {
		fatal(fmt.Errorf("unknown stats format %q", *statsFmt))
	}
	net, err := readNetwork(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	lib, err := loadLibrary(*libName, *libFile)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{MaxDepth: *depth, MaxLeaves: *leaves, Workers: *workers,
		MaxBurst: *maxBurst, DisableHazardCache: *noCache, DisableMatchIndex: *noMatchIndex,
		DisableArenas: *noArena}
	switch *objective {
	case "area":
		opts.Objective = core.MinArea
	case "delay":
		opts.Objective = core.MinDelay
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	switch *mode {
	case "async":
		opts.Mode = core.Async
	case "sync":
		opts.Mode = core.Sync
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *traceOut != "" || *eventsOut != "" {
		opts.Tracer = obs.NewTracer(0)
	}
	if *hist {
		opts.Metrics = obs.NewRegistry()
	}
	if *storePath != "" {
		store, err := mapstore.Open(*storePath, mapstore.Options{})
		if err != nil {
			fatal(fmt.Errorf("open store %s: %w", *storePath, err))
		}
		defer store.Close()
		opts.Store = store
	}
	if *pprofAddr != "" {
		opts.ProfileLabels = true
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "asyncmap: pprof server:", err)
			}
		}()
	}
	res, err := core.Map(net, lib, opts)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, opts.Tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
	}
	if *eventsOut != "" {
		if err := writeFileWith(*eventsOut, opts.Tracer.WriteJSONL); err != nil {
			fatal(err)
		}
	}
	netlistOnStdout := !*quiet
	if netlistOnStdout {
		switch *format {
		case "netlist":
			fmt.Print(res.Netlist)
		case "verilog":
			text, err := res.Netlist.VerilogString()
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		default:
			fatal(fmt.Errorf("unknown output format %q", *format))
		}
	}
	if *showPath {
		report, err := res.Netlist.FormatCriticalPath()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
	}
	switch *statsFmt {
	case "json":
		// Stream contract: keep stdout machine-parseable when it carries
		// the netlist — the stats object then goes to stderr.
		statsW := io.Writer(os.Stdout)
		if netlistOnStdout {
			statsW = os.Stderr
		}
		if err := printStatsJSON(statsW, *mode, lib.Name, res); err != nil {
			fatal(err)
		}
	case "text":
		printStatsText(*mode, lib.Name, res)
	}
	if *hist {
		fmt.Print(opts.Metrics.Snapshot().Format("# "))
	}
	if *verify {
		if err := core.VerifyEquivalence(net, res.Netlist); err != nil {
			fatal(err)
		}
		rep, err := core.VerifyHazardSafety(net, res.Netlist)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# verify: equivalent; hazard safety: %s\n", rep)
		if !rep.Clean() {
			for _, d := range rep.Details {
				fmt.Println("#   " + d)
			}
			os.Exit(2)
		}
	}
}

// writeFileWith streams an exporter into a freshly created file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStatsText writes the run summary as "#"-prefixed comment lines, so
// the statistics can trail a netlist without breaking downstream parsers.
func printStatsText(mode, libName string, res *core.Result) {
	st := res.Stats
	fmt.Printf("# mode=%s library=%s gates=%d area=%g delay=%.2fns\n",
		mode, libName, res.Netlist.GateCount(), res.Area, res.Delay)
	fmt.Printf("# cones=%d clusters=%d matches=%d hazardous=%d rejected=%d\n",
		st.Cones, st.ClustersEnumerated, st.MatchesFound,
		st.HazardousMatches, st.MatchesRejected)
	fmt.Printf("# matching: finds=%d index probes=%d cells skipped=%d symmetry pruned=%d\n",
		st.FindInvocations, st.IndexProbes, st.IndexSkippedCells, st.SymmetryPruned)
	fmt.Printf("# hazard analyses=%d cache: local=%d shared=%d fresh=%d hit-rate=%.1f%% evictions=%d\n",
		st.HazardAnalyses(), st.HazCacheLocalHits, st.HazCacheHits,
		st.HazCacheMisses, 100*st.HazCacheHitRate(), st.HazCacheEvictions)
	if st.StoreHits+st.StoreMisses > 0 {
		fmt.Printf("# store: hits=%d misses=%d (cones whose covering DP was replayed from the store)\n",
			st.StoreHits, st.StoreMisses)
	}
	fmt.Printf("# phases: decompose=%s partition=%s cover=%s emit=%s\n",
		st.DecomposeTime.Round(time.Microsecond), st.PartitionTime.Round(time.Microsecond),
		st.CoverTime.Round(time.Microsecond), st.EmitTime.Round(time.Microsecond))
	if st.CutTruncations > 0 {
		fmt.Printf("# warning: cut enumeration truncated at %d node(s); pathological cones may be mapped suboptimally (lower -depth/-leaves to silence)\n",
			st.CutTruncations)
	}
}

// printStatsJSON writes the run summary as one JSON object.
func printStatsJSON(w io.Writer, mode, libName string, res *core.Result) error {
	out := struct {
		Mode    string
		Library string
		Gates   int
		Area    float64
		Delay   float64
		Stats   core.Stats
	}{mode, libName, res.Netlist.GateCount(), res.Area, res.Delay, res.Stats}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func readNetwork(path string) (*network.Network, error) {
	if path == "" {
		return eqn.Parse(os.Stdin, "stdin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if strings.HasSuffix(path, ".blif") {
		return blif.Parse(f, name)
	}
	return eqn.Parse(f, name)
}

func loadLibrary(name, file string) (*library.Library, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		lib, err := library.Parse(f)
		if err != nil {
			return nil, err
		}
		if err := lib.Annotate(); err != nil {
			return nil, err
		}
		return lib, nil
	}
	return library.Get(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asyncmap:", err)
	os.Exit(1)
}
