// Command asyncmap is the hazard-aware technology mapper: it reads a
// technology-independent logic network (eqn or BLIF format), maps it onto
// a cell library, and writes the mapped netlist with area/delay statistics.
//
// Usage:
//
//	asyncmap -lib LSI9K [-mode async|sync] [-depth 5] [-verify] design.eqn
//	asyncmap -libfile mylib.genlib design.blif
//	asyncmap -trace out.json -events out.jsonl -hist design.eqn
//	asyncmap -pprof :6060 big-design.eqn
//	asyncmap -spec [-trials 8] [-evidence ev.json] [-vcd] machine.bm
//
// With no positional argument the network is read from standard input in
// eqn format.
//
// With -spec (or a .bm input file) the input is a burst-mode machine
// specification and asyncmap runs the full spec-to-silicon pipeline:
// synthesize hazard-free two-level logic, technology map it (async mode),
// and simulate every specified transition on the mapped netlist to
// produce a hazard-freedom certificate. The mapped netlist goes to
// standard output exactly as in mapping mode — byte-identical to what
// asyncmapd's POST /synth returns for the same spec, library and seed —
// followed by "#"-prefixed evidence summary lines; -evidence writes the
// full evidence JSON to a file ("-" for stdout, for use with -q). The
// exit status is 2 when the certificate fails. See docs/SYNTHESIS.md.
//
// Stream contract: the mapped netlist (or Verilog) is the only
// machine-parseable payload on standard output, optionally followed by
// "#"-prefixed comment lines (text statistics, -hist histograms, -path
// report) that netlist parsers skip. When -stats json is combined with
// netlist output on stdout, the stats JSON object is written to standard
// error, so `asyncmap -stats json design.eqn > mapped.net` leaves
// mapped.net parseable and the JSON separable via 2>stats.json. With -q
// (no netlist) the JSON goes to stdout.
//
// Observability: -trace writes a Chrome trace-event JSON file of the
// whole pipeline (load it at https://ui.perfetto.dev — one track per DP
// worker), -events writes the same records as grep/jq-friendly JSONL,
// -hist prints metric histograms (hazard-analysis latency, cuts per
// node, cluster leaf widths, cache shard occupancy), and -pprof serves
// net/http/pprof on the given address for live CPU/heap profiling with
// per-worker and per-cone labels. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gfmap/internal/blif"
	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
	"gfmap/internal/obs"
	"gfmap/internal/synth"
)

func main() {
	libName := flag.String("lib", "LSI9K", "built-in library: LSI9K, CMOS3, GDT or Actel")
	libFile := flag.String("libfile", "", "library file in the GATE format (overrides -lib)")
	mode := flag.String("mode", "async", "mapping mode: async (hazard-aware) or sync")
	depth := flag.Int("depth", 5, "maximum match-cluster depth")
	leaves := flag.Int("leaves", 6, "maximum match-cluster inputs")
	objective := flag.String("objective", "area", "covering objective: area or delay")
	workers := flag.Int("workers", 0, "parallel covering workers; 0 = one per CPU, 1 = serial (result is deterministic either way)")
	maxBurst := flag.Int("maxburst", 0, "hazard don't-cares: ignore cell hazards on bursts wider than this (0 = off)")
	verify := flag.Bool("verify", false, "verify functional equivalence and per-cone hazard safety")
	quiet := flag.Bool("q", false, "print statistics only, not the netlist")
	format := flag.String("o", "netlist", "output format: netlist or verilog")
	showPath := flag.Bool("path", false, "print the critical path")
	statsFmt := flag.String("stats", "text", "statistics format: text or json (json goes to stderr when the netlist is on stdout)")
	noCache := flag.Bool("nocache", false, "disable the shared hazard-analysis cache (A/B measurement)")
	noMatchIndex := flag.Bool("nomatchindex", false, "disable the Boolean-match index and symmetry pruning (A/B measurement; netlists are bit-identical either way)")
	noArena := flag.Bool("noarena", false, "disable the per-worker arena allocator of the covering DP (A/B measurement; netlists are bit-identical either way)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the pipeline (open in Perfetto)")
	eventsOut := flag.String("events", "", "write the span/event log as JSONL to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) and label DP workers")
	hist := flag.Bool("hist", false, "print metric histograms (hazard latency, cuts/node, cluster widths) as comment lines")
	storePath := flag.String("store", "", "persistent cone-solution store file; a warm store skips the covering DP for unchanged cones (results are byte-identical)")
	specMode := flag.Bool("spec", false, "treat the input as a burst-mode specification and run the spec-to-silicon pipeline (implied by a .bm input file)")
	trials := flag.Int("trials", 0, "with -spec: random-delay evidence trials per transition (0 = default, capped)")
	evidenceSeed := flag.Uint64("seed", 0, "with -spec: base seed of the evidence delay RNG")
	evidenceOut := flag.String("evidence", "", "with -spec: write the hazard-freedom evidence JSON to this file (- for stdout; combine with -q)")
	withVCD := flag.Bool("vcd", false, "with -spec: attach a VCD waveform dump to each transition's evidence")
	flag.Parse()

	if *statsFmt != "text" && *statsFmt != "json" {
		fatal(fmt.Errorf("unknown stats format %q", *statsFmt))
	}
	lib, err := loadLibrary(*libName, *libFile)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{MaxDepth: *depth, MaxLeaves: *leaves, Workers: *workers,
		MaxBurst: *maxBurst, DisableHazardCache: *noCache, DisableMatchIndex: *noMatchIndex,
		DisableArenas: *noArena}
	switch *objective {
	case "area":
		opts.Objective = core.MinArea
	case "delay":
		opts.Objective = core.MinDelay
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	switch *mode {
	case "async":
		opts.Mode = core.Async
	case "sync":
		opts.Mode = core.Sync
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *traceOut != "" || *eventsOut != "" {
		opts.Tracer = obs.NewTracer(0)
	}
	if *hist {
		opts.Metrics = obs.NewRegistry()
	}
	if *storePath != "" {
		store, err := mapstore.Open(*storePath, mapstore.Options{})
		if err != nil {
			fatal(fmt.Errorf("open store %s: %w", *storePath, err))
		}
		defer store.Close()
		opts.Store = store
	}
	if *pprofAddr != "" {
		opts.ProfileLabels = true
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "asyncmap: pprof server:", err)
			}
		}()
	}
	if *specMode || strings.HasSuffix(flag.Arg(0), ".bm") {
		runSpec(flag.Arg(0), lib, opts, specRun{
			trials: *trials, seed: *evidenceSeed, vcd: *withVCD,
			evidenceOut: *evidenceOut, quiet: *quiet, format: *format,
		})
		return
	}
	net, err := readNetwork(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := core.Map(net, lib, opts)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, opts.Tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
	}
	if *eventsOut != "" {
		if err := writeFileWith(*eventsOut, opts.Tracer.WriteJSONL); err != nil {
			fatal(err)
		}
	}
	netlistOnStdout := !*quiet
	if netlistOnStdout {
		switch *format {
		case "netlist":
			fmt.Print(res.Netlist)
		case "verilog":
			text, err := res.Netlist.VerilogString()
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		default:
			fatal(fmt.Errorf("unknown output format %q", *format))
		}
	}
	if *showPath {
		report, err := res.Netlist.FormatCriticalPath()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
	}
	switch *statsFmt {
	case "json":
		// Stream contract: keep stdout machine-parseable when it carries
		// the netlist — the stats object then goes to stderr.
		statsW := io.Writer(os.Stdout)
		if netlistOnStdout {
			statsW = os.Stderr
		}
		if err := printStatsJSON(statsW, *mode, lib.Name, res); err != nil {
			fatal(err)
		}
	case "text":
		printStatsText(*mode, lib.Name, res)
	}
	if *hist {
		fmt.Print(opts.Metrics.Snapshot().Format("# "))
	}
	if *verify {
		if err := core.VerifyEquivalence(net, res.Netlist); err != nil {
			fatal(err)
		}
		rep, err := core.VerifyHazardSafety(net, res.Netlist)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# verify: equivalent; hazard safety: %s\n", rep)
		if !rep.Clean() {
			for _, d := range rep.Details {
				fmt.Println("#   " + d)
			}
			os.Exit(2)
		}
	}
}

// specRun bundles the -spec pipeline's knobs.
type specRun struct {
	trials      int
	seed        uint64
	vcd         bool
	evidenceOut string
	quiet       bool
	format      string
}

// runSpec drives the spec-to-silicon pipeline over a burst-mode
// specification: synthesize, map, simulate. The mapped netlist is printed
// exactly as in mapping mode (byte-identical to asyncmapd's /synth for
// the same spec, library and seed); the evidence summary trails it as
// comment lines. Exit status 2 means the pipeline ran but the mapped
// netlist failed its hazard-freedom certificate.
func runSpec(path string, lib *library.Library, mapOpts core.Options, cfg specRun) {
	text, err := readSpecText(path)
	if err != nil {
		fatal(err)
	}
	res, err := synth.Run(context.Background(), text, synth.Options{
		Library: lib,
		Map:     mapOpts,
		Trials:  cfg.trials,
		Seed:    cfg.seed,
		WithVCD: cfg.vcd,
	})
	if err != nil {
		fatal(err)
	}
	if !cfg.quiet {
		switch cfg.format {
		case "netlist":
			fmt.Print(res.Mapped.Netlist)
		case "verilog":
			text, err := res.Mapped.Netlist.VerilogString()
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		default:
			fatal(fmt.Errorf("unknown output format %q", cfg.format))
		}
	}
	m, ev := res.Machine, res.Evidence
	fmt.Printf("# spec=%s states=%d edges=%d library=%s gates=%d area=%g delay=%.2fns\n",
		m.Name, len(m.States()), len(m.Edges), lib.Name,
		res.Mapped.Netlist.GateCount(), res.Mapped.Area, res.Mapped.Delay)
	fmt.Printf("# evidence: transitions=%d trials=%d seed=%d hazard_free=%v settled=%v\n",
		len(ev.Transitions), ev.Trials, ev.Seed, ev.HazardFree, ev.Settled)
	fmt.Printf("# phases: synthesize=%s map=%s simulate=%s\n",
		res.Durations.Synthesize.Round(time.Microsecond),
		res.Durations.Map.Round(time.Microsecond),
		res.Durations.Simulate.Round(time.Microsecond))
	if cfg.evidenceOut != "" {
		data, err := json.Marshal(ev)
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if cfg.evidenceOut == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(cfg.evidenceOut, data, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if !ev.HazardFree || !ev.Settled {
		fmt.Fprintln(os.Stderr, "asyncmap: hazard-freedom certificate FAILED")
		os.Exit(2)
	}
}

func readSpecText(path string) (string, error) {
	if path == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// writeFileWith streams an exporter into a freshly created file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStatsText writes the run summary as "#"-prefixed comment lines, so
// the statistics can trail a netlist without breaking downstream parsers.
func printStatsText(mode, libName string, res *core.Result) {
	st := res.Stats
	fmt.Printf("# mode=%s library=%s gates=%d area=%g delay=%.2fns\n",
		mode, libName, res.Netlist.GateCount(), res.Area, res.Delay)
	fmt.Printf("# cones=%d clusters=%d matches=%d hazardous=%d rejected=%d\n",
		st.Cones, st.ClustersEnumerated, st.MatchesFound,
		st.HazardousMatches, st.MatchesRejected)
	fmt.Printf("# matching: finds=%d index probes=%d cells skipped=%d symmetry pruned=%d\n",
		st.FindInvocations, st.IndexProbes, st.IndexSkippedCells, st.SymmetryPruned)
	fmt.Printf("# hazard analyses=%d cache: local=%d shared=%d fresh=%d hit-rate=%.1f%% evictions=%d\n",
		st.HazardAnalyses(), st.HazCacheLocalHits, st.HazCacheHits,
		st.HazCacheMisses, 100*st.HazCacheHitRate(), st.HazCacheEvictions)
	if st.StoreHits+st.StoreMisses > 0 {
		fmt.Printf("# store: hits=%d misses=%d (cones whose covering DP was replayed from the store)\n",
			st.StoreHits, st.StoreMisses)
	}
	fmt.Printf("# phases: decompose=%s partition=%s cover=%s emit=%s\n",
		st.DecomposeTime.Round(time.Microsecond), st.PartitionTime.Round(time.Microsecond),
		st.CoverTime.Round(time.Microsecond), st.EmitTime.Round(time.Microsecond))
	if st.CutTruncations > 0 {
		fmt.Printf("# warning: cut enumeration truncated at %d node(s); pathological cones may be mapped suboptimally (lower -depth/-leaves to silence)\n",
			st.CutTruncations)
	}
}

// printStatsJSON writes the run summary as one JSON object.
func printStatsJSON(w io.Writer, mode, libName string, res *core.Result) error {
	out := struct {
		Mode    string
		Library string
		Gates   int
		Area    float64
		Delay   float64
		Stats   core.Stats
	}{mode, libName, res.Netlist.GateCount(), res.Area, res.Delay, res.Stats}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func readNetwork(path string) (*network.Network, error) {
	if path == "" {
		return eqn.Parse(os.Stdin, "stdin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if strings.HasSuffix(path, ".blif") {
		return blif.Parse(f, name)
	}
	return eqn.Parse(f, name)
}

func loadLibrary(name, file string) (*library.Library, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		lib, err := library.Parse(f)
		if err != nil {
			return nil, err
		}
		if err := lib.Annotate(); err != nil {
			return nil, err
		}
		return lib, nil
	}
	return library.Get(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asyncmap:", err)
	os.Exit(1)
}
