// Command asyncmapd serves the hazard-aware technology mapper over HTTP.
//
// It preloads and hazard-annotates the requested libraries once at
// startup, then maps BLIF or eqn designs POSTed to /map (one design) or
// /map/batch (several, with per-design error isolation). POST /synth
// runs the full spec-to-silicon pipeline over a burst-mode specification:
// hazard-free synthesis, technology mapping, and transition-by-transition
// simulation of the mapped netlist into a machine-checkable
// hazard-freedom certificate (see docs/SYNTHESIS.md). Every request
// runs under a deadline threaded through the covering DP as a
// context.Context, so slow designs time out promptly and disconnected
// clients stop burning CPU. Admission control is a fixed worker pool with
// a bounded queue; excess load is rejected with 503 rather than piling up.
//
//	asyncmapd -addr :8931 -libs LSI9K,CMOS3 -timeout 30s
//	asyncmapd -store cones.mapstore   # persist cone solutions across restarts
//	asyncmapd -fleet http://w1:8931,http://w2:8931   # fleet coordinator
//
// With -fleet, the server coordinates a sharded mapping fleet: batch
// designs are dispatched design-wise (or cone-wise for a single large
// design) across the listed workers — plain asyncmapd processes — with
// work stealing, bounded retries, hedged duplicates for stragglers and
// local fallback, and the assembled results are byte-identical to a
// single-process run. See the "Fleet mode" section of docs/SERVING.md.
//
// With -store, per-cone covering solutions persist in a crash-safe
// content-addressed store file: a restarted (or concurrently running)
// server replays them and answers byte-identically with a warm hit rate
// from the first request. See docs/CACHING.md.
//
// Endpoints: POST /map, POST /map/batch, POST /synth, GET /healthz (readiness
// detail), GET /statusz (rolling per-stage latency, in-flight requests),
// GET /metrics (Prometheus text with ?format=prom or Accept: text/plain;
// ?format=text for a flat dump; JSON otherwise), and /debug/pprof/ with
// -pprof. Every log line — startup, access, panic, drain — is one
// structured JSON object on stderr. See docs/SERVING.md for the
// request/response schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/obs"
	"gfmap/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8931", "listen address")
		libs     = flag.String("libs", "", "comma-separated libraries to preload (default: all built-ins)")
		maxConc  = flag.Int("maxconcurrent", 4, "mapping requests running at once")
		queue    = flag.Int("queue", 8, "admitted requests allowed to wait beyond -maxconcurrent")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-request mapping deadline")
		maxTO    = flag.Duration("maxtimeout", 5*time.Minute, "cap on client-requested deadlines")
		maxBody  = flag.Int64("maxbody", 8<<20, "request body size limit in bytes")
		workers  = flag.Int("workers", 0, "DP worker goroutines per request (0 = one per CPU)")
		noArena  = flag.Bool("noarena", false, "disable the covering DP's per-worker arena allocator (A/B measurement; results are byte-identical)")
		pprofOn  = flag.Bool("pprof", false, "serve /debug/pprof/")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		storeTo  = flag.String("store", "", "path of the persistent cone-solution store (empty = disabled); created if missing, shared across restarts")
		storeMem = flag.Int("store-mem", 0, "in-memory entries the store may hold (0 = default)")

		fleetURLs     = flag.String("fleet", "", "comma-separated worker base URLs; this server becomes a fleet coordinator dispatching /map/batch across them (workers are plain asyncmapd)")
		fleetHedge    = flag.Duration("fleet-hedge", 0, "duplicate a straggling fleet job on another worker after this long (0 = 2s default, negative disables hedging)")
		fleetAttempts = flag.Int("fleet-attempts", 0, "remote attempts per fleet job before local fallback (0 = 3)")
		fleetPerWork  = flag.Int("fleet-perworker", 0, "concurrent fleet jobs per worker (0 = 4)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: asyncmapd [flags]\n\nbuilt-in libraries: %s\n\nflags:\n",
			strings.Join(library.BuiltinNames, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	logger := obs.NewLogger(os.Stderr)
	fatal := func(msg string, err error) {
		logger.Error(msg).Str("error", err.Error()).Send()
		os.Exit(1)
	}

	var store *mapstore.Store
	if *storeTo != "" {
		var err error
		store, err = mapstore.Open(*storeTo, mapstore.Options{MaxMemEntries: *storeMem})
		if err != nil {
			fatal("open store", err)
		}
		defer store.Close()
	}

	cfg := server.Config{
		MaxConcurrent:  *maxConc,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		MaxBodyBytes:   *maxBody,
		MapWorkers:     *workers,
		DisableArenas:  *noArena,
		EnablePprof:    *pprofOn,
		Store:          store,
	}
	if *libs != "" {
		for _, name := range strings.Split(*libs, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Libraries = append(cfg.Libraries, name)
			}
		}
	}
	if *fleetURLs != "" {
		for _, u := range strings.Split(*fleetURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.FleetWorkers = append(cfg.FleetWorkers, u)
			}
		}
		cfg.FleetHedgeAfter = *fleetHedge
		cfg.FleetMaxAttempts = *fleetAttempts
		cfg.FleetPerWorker = *fleetPerWork
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal("startup", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	loaded := cfg.Libraries
	if len(loaded) == 0 {
		loaded = library.BuiltinNames
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("serving").
			Str("addr", *addr).
			Str("libraries", strings.Join(loaded, ",")).
			Bool("store", store != nil).
			Int("max_concurrent", int64(*maxConc)).
			Int("queue", int64(*queue)).
			Int("fleet_workers", int64(len(cfg.FleetWorkers))).
			Send()
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal("serve", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down").Str("drain_budget", drain.String()).Send()
	// Shutdown stops accepting and waits for in-flight requests; their
	// mapping contexts are children of the request contexts, which the
	// server cancels when the drain budget runs out.
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("drain budget exhausted, aborting in-flight requests").Send()
		}
		httpSrv.Close()
	}
	logger.Info("stopped").Send()
}
