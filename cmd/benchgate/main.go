// Command benchgate is the CI perf-regression gate. It compares a fresh
// benchmark report against the newest checked-in trajectory file
// (benchdata/BENCH_*.json) and exits nonzero when wall time, allocation
// counts or mapping quality regressed past the thresholds.
//
// Usage:
//
//	benchgate [-baseline DIR] [-fresh FILE] [-lib NAME] [-runs N] [flags]
//
// With -fresh empty, benchgate runs the benchmark corpus itself (the
// same corpus paperbench -json produces). Quality and allocation gates
// always apply; the wall-time gate only runs when the baseline's
// environment fingerprint (platform and CPU count) matches, so a
// baseline recorded on different hardware cannot flake the build.
// Exit status: 0 gate passed, 1 regressions found, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"

	"gfmap/internal/bench"
)

func main() {
	baselineDir := flag.String("baseline", "benchdata", "directory holding the checked-in BENCH_*.json trajectory")
	baselineFile := flag.String("baseline-file", "", "compare against this exact report instead of the newest in -baseline")
	freshPath := flag.String("fresh", "", "fresh report to gate (from paperbench -json); empty means run the corpus now")
	lib := flag.String("lib", "LSI9K", "cell library when running the corpus (-fresh empty)")
	runs := flag.Int("runs", 3, "runs per design when running the corpus (best-of wall time)")
	wallRatio := flag.Float64("max-wall-ratio", 0, "wall-time regression limit (0 = default 1.5)")
	wallFloor := flag.Float64("wall-floor-ms", 0, "skip the wall gate when both sides are under this (0 = default 10ms)")
	allocRatio := flag.Float64("max-alloc-ratio", 0, "allocations regression limit (0 = default 1.3)")
	areaRatio := flag.Float64("max-area-ratio", 0, "mapped-area regression limit (0 = default 1.02)")
	delayRatio := flag.Float64("max-delay-ratio", 0, "mapped-delay regression limit (0 = default 1.05)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	basePath := *baselineFile
	if basePath == "" {
		p, err := bench.NewestBenchFile(*baselineDir)
		if err != nil {
			fail(err)
		}
		basePath = p
	}
	base, err := bench.LoadReport(basePath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("baseline: %s (%s, %s/%s, %d designs)\n",
		basePath, base.Fingerprint.GitDescribe,
		base.Fingerprint.GOOS, base.Fingerprint.GOARCH, len(base.Designs))

	var fresh *bench.Report
	if *freshPath != "" {
		fresh, err = bench.LoadReport(*freshPath)
		if err != nil {
			fail(err)
		}
		fmt.Printf("fresh:    %s (%d designs)\n", *freshPath, len(fresh.Designs))
	} else {
		fmt.Printf("fresh:    mapping corpus on %s (%d runs per design)...\n", *lib, *runs)
		fresh, err = bench.JSONReport(*lib, bench.ReportOptions{Runs: *runs, NoSynthetic: !base.Synthetic})
		if err != nil {
			fail(err)
		}
	}

	regs, notes := bench.CompareReports(base, fresh, bench.GateThresholds{
		MaxWallRatio:  *wallRatio,
		WallFloorMS:   *wallFloor,
		MaxAllocRatio: *allocRatio,
		MaxAreaRatio:  *areaRatio,
		MaxDelayRatio: *delayRatio,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(regs) > 0 {
		fmt.Printf("FAIL: %d regression(s) past threshold:\n", len(regs))
		for _, r := range regs {
			fmt.Println("  ", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: OK — no regressions past threshold")
}
