// Command gfmfuzz is the differential fuzzing driver for the mapping
// pipeline: it generates seeded random networks, maps each across the
// full option matrix (cache on/off, match index on/off, worker counts,
// context on/off) in both modes, and asserts the pipeline's invariants —
// byte-identical netlists, deterministic stats, well-formed netlists,
// functional equivalence, hazard non-introduction, parser round trips.
//
// Failing designs are shrunk to minimal reproducers and written to
// -out (testdata/regressions by default). Exit status is non-zero when
// any invariant is violated, so CI can run it as a gate:
//
//	gfmfuzz -seeds 200
//	gfmfuzz -replay testdata/regressions   # re-check the corpus
//	gfmfuzz -seeds 50 -fleet               # add the fleet-vs-local serving axis
//	gfmfuzz -seeds 50 -synth               # fuzz the spec-to-silicon pipeline
//
// With -fleet, every design is additionally mapped through an
// in-process fleet (coordinator + workers + a single-process twin, see
// internal/server.StartInProcessFleet) and the served results must be
// byte-identical — the distributed-dispatch determinism bar from
// docs/SERVING.md.
//
// With -synth, the generator produces random burst-mode machines instead
// of random networks and drives each through the whole synthesis
// pipeline (bmspec → hfmin → core.Map → dsim evidence) across its option
// matrix: netlists and evidence must be byte-identical on every variant,
// and the mapped netlist must simulate hazard-free on every specified
// transition. Failing machines are written as .bm reproducers, which
// -replay re-checks alongside the .eqn corpus.
//
// See docs/FUZZING.md for the full workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/diffcheck"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
	"gfmap/internal/network"
	"gfmap/internal/obs"
	"gfmap/internal/server"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 200, "number of random designs to check")
		seed0    = flag.Uint64("seed0", 1, "first seed (seeds are seed0..seed0+seeds-1)")
		libName  = flag.String("lib", "LSI9K", "target cell library")
		inputs   = flag.Int("inputs", 6, "primary inputs per generated design")
		nodes    = flag.Int("nodes", 10, "internal nodes per generated design")
		fanin    = flag.Int("fanin", 4, "max distinct fanins per node")
		mode     = flag.String("mode", "both", "modes to check: both, sync or async")
		outDir   = flag.String("out", "testdata/regressions", "directory for minimised reproducers")
		minimize = flag.Bool("minimize", true, "shrink failing designs before writing them")
		budget   = flag.Int("shrink-budget", 400, "max predicate evaluations per minimisation")
		maxFail  = flag.Int("maxfail", 5, "stop after this many failing seeds (0 = never)")
		replay   = flag.String("replay", "", "instead of generating, re-check every .eqn design in this directory")
		metrics  = flag.Bool("metrics", false, "print the harness metrics snapshot at the end")
		nostore  = flag.Bool("nostore", false, "skip the persistent-store and delta axes of the option matrix")
		fleetOn  = flag.Bool("fleet", false, "add the fleet axis: map every design through an in-process fleet coordinator and a single-process server; results must be byte-identical")
		fleetN   = flag.Int("fleet-workers", 2, "workers in the in-process fleet (with -fleet)")
		synthOn  = flag.Bool("synth", false, "fuzz the spec-to-silicon pipeline: generate burst-mode machines and check synthesis determinism plus hazard-freedom evidence")
		trials   = flag.Int("trials", 0, "with -synth: random-delay evidence trials per transition (0 = harness default)")
		verbose  = flag.Bool("v", false, "log every seed")
	)
	flag.Parse()

	lib, err := library.Get(*libName)
	if err != nil {
		fatal(err)
	}
	opts := diffcheck.Options{Lib: lib, Modes: modesFor(*mode), SkipStoreAxes: *nostore}
	synthOpts := diffcheck.SynthOptions{Lib: lib, Trials: *trials, SkipStoreAxes: *nostore}
	if *fleetOn {
		f, err := server.StartInProcessFleet(*fleetN, server.Config{Libraries: []string{*libName}})
		if err != nil {
			fatal(fmt.Errorf("start fleet axis: %w", err))
		}
		defer f.Close()
		opts.FleetMap = fleetMapHook(f, *libName)
	}
	reg := obs.NewRegistry()

	if *replay != "" {
		os.Exit(replayDir(*replay, opts, synthOpts, reg, *metrics))
	}
	if *synthOn {
		os.Exit(synthLoop(*seeds, *seed0, synthOpts, *outDir, *maxFail, *verbose, reg, *metrics))
	}

	cfg := diffcheck.GenConfig{Inputs: *inputs, Nodes: *nodes, MaxFanin: *fanin}
	failures := 0
	for i := 0; i < *seeds; i++ {
		seed := *seed0 + uint64(i)
		net := diffcheck.Generate(seed, cfg)
		rep := diffcheck.Check(net, opts)
		rep.Publish(reg)
		if *verbose {
			fmt.Fprintf(os.Stderr, "seed %d: %d nodes, mapped=%v, violations=%d\n",
				seed, net.NumNodes(), rep.MappedModes, len(rep.Violations))
		}
		if !rep.Failed() {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "seed %d FAILED (%s):\n", seed, strings.Join(rep.Kinds(), ", "))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", firstLine(v.String()))
		}
		final := rep
		if *minimize {
			kinds := rep.Kinds()
			shrunk := diffcheck.Minimize(net, func(cand *network.Network) bool {
				r := diffcheck.Check(cand, opts)
				for _, k := range kinds {
					if r.HasKind(k) {
						return true
					}
				}
				return false
			}, *budget)
			final = diffcheck.Check(shrunk, opts)
			if !final.Failed() { // should not happen: Minimize preserves failure
				final = rep
			}
		}
		path, werr := diffcheck.WriteReproducer(*outDir, seed, final)
		if werr != nil {
			fmt.Fprintf(os.Stderr, "  write reproducer: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "  reproducer: %s (%d nodes)\n", path, final.Design.NumNodes())
		}
		if *maxFail > 0 && failures >= *maxFail {
			fmt.Fprintf(os.Stderr, "stopping after %d failing seeds\n", failures)
			break
		}
	}

	snap := reg.Snapshot()
	if *metrics {
		fmt.Print(snap.Format(""))
	}
	fmt.Printf("gfmfuzz: %d designs, %d mapped (design,mode) pairs, %d violations, %d failing seeds\n",
		snap.Counters[diffcheck.MetricDesigns],
		snap.Counters[diffcheck.MetricMappedModes],
		snap.Counters[diffcheck.MetricViolations],
		failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// synthLoop fuzzes the spec-to-silicon pipeline: seeded random burst-mode
// machines through diffcheck.CheckSynth. Failing machines are written as
// .bm reproducers (machines are already small; there is no shrinker).
func synthLoop(seeds int, seed0 uint64, opts diffcheck.SynthOptions, outDir string, maxFail int, verbose bool, reg *obs.Registry, metrics bool) int {
	failures := 0
	for i := 0; i < seeds; i++ {
		seed := seed0 + uint64(i)
		m := diffcheck.GenerateMachine(seed, diffcheck.MachineConfig{})
		rep := diffcheck.CheckSynth(m, opts)
		rep.Publish(reg)
		if verbose {
			fmt.Fprintf(os.Stderr, "seed %d: %s, %d states, %d edges, violations=%d\n",
				seed, m.Name, len(m.States()), len(m.Edges), len(rep.Violations))
		}
		if !rep.Failed() {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "seed %d FAILED (%s):\n", seed, strings.Join(rep.Kinds(), ", "))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", firstLine(v.String()))
		}
		path, werr := diffcheck.WriteMachineReproducer(outDir, seed, m, rep)
		if werr != nil {
			fmt.Fprintf(os.Stderr, "  write reproducer: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "  reproducer: %s\n", path)
		}
		if maxFail > 0 && failures >= maxFail {
			fmt.Fprintf(os.Stderr, "stopping after %d failing seeds\n", failures)
			break
		}
	}
	snap := reg.Snapshot()
	if metrics {
		fmt.Print(snap.Format(""))
	}
	fmt.Printf("gfmfuzz: %d machines, %d violations, %d failing seeds\n",
		seeds, snap.Counters[diffcheck.MetricViolations], failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// replayDir re-checks every .eqn (mapping) and .bm (synthesis pipeline)
// file of a reproducer corpus; all of them must pass (their bugs are
// fixed) for exit status 0.
func replayDir(dir string, opts diffcheck.Options, synthOpts diffcheck.SynthOptions, reg *obs.Registry, metrics bool) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.eqn"))
	if err != nil {
		fatal(err)
	}
	bmPaths, err := filepath.Glob(filepath.Join(dir, "*.bm"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	sort.Strings(bmPaths)
	if len(paths)+len(bmPaths) == 0 {
		fmt.Printf("gfmfuzz: no .eqn or .bm designs under %s\n", dir)
		return 0
	}
	bad := 0
	report := func(p string, rep *diffcheck.Report) {
		rep.Publish(reg)
		if rep.Failed() {
			bad++
			fmt.Fprintf(os.Stderr, "%s: %d violations (%s)\n", p, len(rep.Violations), strings.Join(rep.Kinds(), ", "))
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", firstLine(v.String()))
			}
		} else {
			fmt.Printf("%s: ok\n", p)
		}
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		net, err := eqn.ParseString(string(data), filepath.Base(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: parse: %v\n", p, err)
			bad++
			continue
		}
		report(p, diffcheck.Check(net, opts))
	}
	for _, p := range bmPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		m, err := bmspec.ParseString(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: parse: %v\n", p, err)
			bad++
			continue
		}
		report(p, diffcheck.CheckSynth(m, synthOpts))
	}
	if metrics {
		fmt.Print(reg.Snapshot().Format(""))
	}
	fmt.Printf("gfmfuzz: replayed %d reproducers, %d failing\n", len(paths)+len(bmPaths), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// fleetMapHook adapts the in-process fleet to diffcheck's FleetMap
// contract: the same serialized design text goes through the coordinator
// and the single-process local twin, and the axis requires the two
// responses to agree byte-for-byte.
func fleetMapHook(f *server.InProcessFleet, libName string) diffcheck.FleetMapFunc {
	return func(net *network.Network, mode core.Mode) (*diffcheck.FleetOutcome, error) {
		req := server.MapRequest{
			Name:    net.Name,
			Format:  "eqn",
			Design:  eqn.WriteString(net),
			Library: libName,
			Mode:    mode.String(),
		}
		viaFleet, viaLocal, err := f.MapBoth(req)
		if err != nil {
			return nil, err
		}
		fo := &diffcheck.FleetOutcome{FleetErr: viaFleet.Error, LocalErr: viaLocal.Error}
		if viaFleet.MapResponse != nil {
			fo.FleetNetlist, fo.FleetStats = viaFleet.Netlist, viaFleet.Stats
		}
		if viaLocal.MapResponse != nil {
			fo.LocalNetlist, fo.LocalStats = viaLocal.Netlist, viaLocal.Stats
		}
		return fo, nil
	}
}

func modesFor(s string) []core.Mode {
	switch s {
	case "both", "":
		return nil
	case "sync":
		return []core.Mode{core.Sync}
	case "async":
		return []core.Mode{core.Async}
	default:
		fatal(fmt.Errorf("unknown -mode %q (want both, sync or async)", s))
		return nil
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfmfuzz:", err)
	os.Exit(1)
}
