// Command hazardcheck analyses a Boolean-factored-form expression — or
// every node of an eqn network — for logic hazards, using the full
// algorithm suite of the paper's §4: static-1 analysis via cube
// adjacencies, static-0 and s.i.c. dynamic analysis via path labelling,
// m.i.c. dynamic analysis via findMicDynHaz2level, and (for small
// supports) the exact transition-level characterisation.
//
// Usage:
//
//	hazardcheck "s'*a + s*b"
//	hazardcheck -eqn design.eqn
package main

import (
	"flag"
	"fmt"
	"os"

	"gfmap/internal/bexpr"
	"gfmap/internal/eqn"
	"gfmap/internal/hazard"
)

var fix = flag.Bool("fix", false, "repair static-1 hazards by inserting redundant prime cubes")

func main() {
	eqnFile := flag.String("eqn", "", "analyse every node of an eqn network file")
	flag.Parse()

	if *eqnFile != "" {
		analyzeEqn(*eqnFile)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hazardcheck <expression> | hazardcheck -eqn <file>")
		os.Exit(1)
	}
	fn, err := bexpr.Parse(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	analyzeOne(fn.String(), fn)
}

func analyzeEqn(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	net, err := eqn.Parse(f, path)
	if err != nil {
		fatal(err)
	}
	for _, name := range net.NodeNames() {
		node := net.Node(name)
		fn := bexpr.New(node.Expr)
		analyzeOne(name+" = "+fn.String(), fn)
	}
}

func analyzeOne(title string, fn *bexpr.Function) {
	fmt.Printf("== %s\n", title)
	rep, err := hazard.AnalyzeFunction(fn)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Describe(fn.Vars))
	if *fix && len(rep.Static1) > 0 {
		cov, err := fn.Cover()
		if err != nil {
			fatal(err)
		}
		fixed, err := hazard.RepairStatic1(cov)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("static-1 repaired cover: %s\n", fixed.StringVars(fn.Vars))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hazardcheck:", err)
	os.Exit(1)
}
