// Command libaudit prints the hazard census of a cell library — the
// paper's Table 1 — and optionally the full per-cell hazard reports.
//
// Usage:
//
//	libaudit                   # census of all four built-in libraries
//	libaudit -lib Actel -v     # per-cell reports for one library
//	libaudit -libfile my.genlib
package main

import (
	"flag"
	"fmt"
	"os"

	"gfmap/internal/bench"
	"gfmap/internal/library"
)

func main() {
	libName := flag.String("lib", "", "audit one built-in library (default: census of all)")
	libFile := flag.String("libfile", "", "audit a library file in the GATE format")
	verbose := flag.Bool("v", false, "print the hazard report of every hazardous cell")
	flag.Parse()

	switch {
	case *libFile != "":
		f, err := os.Open(*libFile)
		if err != nil {
			fatal(err)
		}
		lib, err := library.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := lib.Annotate(); err != nil {
			fatal(err)
		}
		audit(lib, *verbose)
	case *libName != "":
		lib, err := library.Get(*libName)
		if err != nil {
			fatal(err)
		}
		audit(lib, *verbose)
	default:
		rows, err := bench.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatTable1(rows))
	}
}

func audit(lib *library.Library, verbose bool) {
	c := lib.Census()
	fmt.Printf("library %s: %d cells, %d hazardous (%d%%)\n",
		c.Library, c.Total, c.Hazardous, c.PercentHazardous())
	for _, cell := range lib.HazardousCells() {
		fmt.Printf("  %-10s %-30s %s\n", cell.Name, cell.Fn.String(), cell.Report.Summary())
		if verbose {
			fmt.Print(indent(cell.Report.Describe(cell.Fn.Vars)))
		}
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "      " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "libaudit:", err)
	os.Exit(1)
}
