// Command paperbench regenerates every table of the paper's evaluation
// (§5, Tables 1–5) using the reproduced system: the four libraries, the
// hazard analyser, the synchronous and asynchronous mappers, and the
// benchmark suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gfmap/internal/bench"
)

func main() {
	only := flag.String("table", "", "regenerate only one table (1-5, or \"cache\" for the cache study); default all")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	figures := flag.Bool("figures", false, "also regenerate the conceptual figures")
	flag.Parse()

	want := func(n string) bool { return *only == "" || *only == n }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	if want("1") {
		rows, err := bench.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if want("2") {
		rows, err := bench.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("3") {
		rows, err := bench.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable3(rows))
	}
	if want("4") {
		rows, err := bench.Table4()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable4(rows))
	}
	if want("5") {
		rows, err := bench.Table5()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable5(rows))
	}
	if want("cache") {
		rows, err := bench.CacheTable()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatCacheTable(rows))
	}
	if *figures {
		text, err := bench.Figures()
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
	if *ablations {
		runAblations(fail)
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("All requested tables regenerated.")
}

func runAblations(fail func(error)) {
	rows, err := bench.AblationDepth("abcs", "GDT")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("cluster depth bound (abcs on GDT)", rows))
	rows, err = bench.AblationFilter("scsi", "Actel")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("hazard filter and burst don't-cares (scsi on Actel)", rows))
	rows, err = bench.AblationObjective("dean-ctrl", "CMOS3")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("covering objective (dean-ctrl on CMOS3)", rows))
}
