// Command paperbench regenerates every table of the paper's evaluation
// (§5, Tables 1–5) using the reproduced system: the four libraries, the
// hazard analyser, the synchronous and asynchronous mappers, and the
// benchmark suite.
//
// With -json PATH (or -json -) it instead emits a machine-readable
// benchmark report: every design mapped with the observability metrics
// registry attached, each row carrying the deterministic mapper
// statistics plus per-design histogram summaries (hazard-analysis
// latency, per-cone covering latency, cuts per node, cluster widths).
// Every JSON report is stamped with an environment fingerprint (go
// version, GOOS/GOARCH, CPU count, GOMAXPROCS, cell library, git
// describe) so bench trajectory files are comparable across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gfmap/internal/bench"
	"gfmap/internal/blif"
)

func main() {
	only := flag.String("table", "", "regenerate only one table (1-5, or \"cache\" for the cache study); default all")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	figures := flag.Bool("figures", false, "also regenerate the conceptual figures")
	jsonOut := flag.String("json", "", "write a fingerprinted JSON benchmark report to this file (\"-\" for stdout) instead of the text tables")
	jsonLib := flag.String("lib", "LSI9K", "cell library for the -json report")
	runs := flag.Int("runs", 1, "map each design this many times in the -json report, keeping the fastest wall time")
	noSynth := flag.Bool("nosynth", false, "restrict the -json report to the paper suite (no synthetic scaling corpus)")
	noArena := flag.Bool("noarena", false, "map the -json report with the covering DP's arena allocator disabled (A/B the allocs_per_op/bytes_per_op rows; results are byte-identical)")
	dump := flag.String("dump", "", "write one benchmark design (by Table 5 name) as BLIF to stdout and exit; feeds the serving smoke tests")
	flag.Parse()

	want := func(n string) bool { return *only == "" || *only == n }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	if *dump != "" {
		if err := dumpDesign(*dump); err != nil {
			fail(err)
		}
		return
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, *jsonLib, bench.ReportOptions{Runs: *runs, NoSynthetic: *noSynth, NoArenas: *noArena}); err != nil {
			fail(err)
		}
		return
	}

	if want("1") {
		rows, err := bench.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if want("2") {
		rows, err := bench.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("3") {
		rows, err := bench.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable3(rows))
	}
	if want("4") {
		rows, err := bench.Table4()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable4(rows))
	}
	if want("5") {
		rows, err := bench.Table5()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable5(rows))
	}
	if want("cache") {
		rows, err := bench.CacheTable()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatCacheTable(rows))
	}
	if *figures {
		text, err := bench.Figures()
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
	if *ablations {
		runAblations(fail)
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("All requested tables regenerated.")
}

// dumpDesign writes one benchmark design as BLIF to stdout — the bridge
// between the synthesized suite and anything that speaks the serving
// API, like the CI fleet smoke test (see docs/SERVING.md).
func dumpDesign(name string) error {
	d, err := bench.DesignByName(name)
	if err != nil {
		return fmt.Errorf("%w (known: %s)", err, strings.Join(bench.DesignNames(), ", "))
	}
	src, err := blif.WriteString(d.Net)
	if err != nil {
		return err
	}
	_, err = io.WriteString(os.Stdout, src)
	return err
}

// writeJSONReport runs the benchmark corpus with metrics enabled and
// writes the fingerprinted report to path ("-" = stdout).
func writeJSONReport(path, libName string, opts bench.ReportOptions) error {
	rep, err := bench.JSONReport(libName, opts)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runAblations(fail func(error)) {
	rows, err := bench.AblationDepth("abcs", "GDT")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("cluster depth bound (abcs on GDT)", rows))
	rows, err = bench.AblationFilter("scsi", "Actel")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("hazard filter and burst don't-cares (scsi on Actel)", rows))
	rows, err = bench.AblationObjective("dean-ctrl", "CMOS3")
	if err != nil {
		fail(err)
	}
	fmt.Println(bench.FormatAblation("covering objective (dean-ctrl on CMOS3)", rows))
}
