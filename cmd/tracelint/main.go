// Command tracelint validates the observability artifacts the system
// emits: Chrome trace-event JSON files, JSONL event logs, the server's
// structured JSON access logs, and BENCH_*.json benchmark trajectory
// reports. It is the schema checker CI runs over every artifact, and a
// quick sanity gate before loading a trace in Perfetto.
//
// Usage:
//
//	tracelint [-require name,name,...] trace.json [events.jsonl]
//	tracelint -accesslog access.log
//	tracelint -benchjson BENCH_rev.json
//	tracelint -ndjson stream.ndjson
//
// Checks performed on the Chrome trace:
//   - the file is a JSON object with a traceEvents array (or a bare
//     array, which the format also permits);
//   - every event has a name and a phase ("ph"); duration events ("X")
//     additionally carry numeric ts, dur, pid and tid;
//   - every span name listed in -require appears at least once (default:
//     the six pipeline phases decompose, partition, cuts, match, cover,
//     emit);
//   - at least two tracks exist: the pipeline track and one worker track.
//
// Checks performed on the JSONL log: every non-empty line is a JSON
// object with "name", "ts_us" and "ph" fields.
//
// Checks performed on the access log (-accesslog): every non-empty line
// is a JSON object with a parseable RFC3339 "ts", a known "level" and a
// nonempty "msg"; "request" lines additionally carry request_id, method,
// path, a numeric status and a nonnegative elapsed_ms.
//
// Checks performed on the bench report (-benchjson): a complete
// environment fingerprint, a parseable created_at stamp, and per design
// a name, a nonempty mapping (gates/area) and nonnegative perf columns.
//
// Checks performed on the batch stream (-ndjson): a captured
// /map/batch?stream=1 response — every line is JSON; each item line
// carries a nonnegative index and exactly one of result/error; indices
// are unique and form a dense 0..n-1 range; the done:true trailer is
// present exactly once, comes last, and its succeeded/failed counts
// match the item lines.
//
// Exit status 0 if every check passes, 1 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// event mirrors the subset of the Chrome trace-event schema we validate.
type event struct {
	Name *string          `json:"name"`
	Ph   *string          `json:"ph"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	Pid  *json.RawMessage `json:"pid"`
	Tid  *float64         `json:"tid"`
}

func main() {
	require := flag.String("require", "decompose,partition,cuts,match,cover,emit",
		"comma-separated span names that must appear in the trace")
	accessLog := flag.String("accesslog", "", "validate a structured JSON access-log file")
	benchJSON := flag.String("benchjson", "", "validate a BENCH_*.json benchmark trajectory report")
	ndjson := flag.String("ndjson", "", "validate a captured /map/batch?stream=1 NDJSON stream")
	flag.Parse()
	if (flag.NArg() < 1 && *accessLog == "" && *benchJSON == "" && *ndjson == "") || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-require names] [-accesslog FILE] [-benchjson FILE] [-ndjson FILE] [trace.json [events.jsonl]]")
		os.Exit(1)
	}
	var problems []string
	if flag.NArg() >= 1 {
		spans, tracks, total, perr := lintChromeTrace(flag.Arg(0), strings.Split(*require, ","))
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d events, %d tracks, %d distinct span names\n",
			flag.Arg(0), total, tracks, spans)
	}
	if flag.NArg() == 2 {
		lines, perr := lintJSONL(flag.Arg(1))
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d lines ok\n", flag.Arg(1), lines)
	}
	if *accessLog != "" {
		lines, perr := lintAccessLog(*accessLog)
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d access-log lines ok\n", *accessLog, lines)
	}
	if *benchJSON != "" {
		designs, perr := lintBenchJSON(*benchJSON)
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d design rows ok\n", *benchJSON, designs)
	}
	if *ndjson != "" {
		items, perr := lintBatchStream(*ndjson)
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d stream items ok\n", *ndjson, items)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "tracelint:", p)
		}
		os.Exit(1)
	}
	fmt.Println("tracelint: OK")
}

// lintAccessLog validates the server's structured JSON access log: the
// shared line envelope (ts/level/msg) on every line, plus the request
// schema on "request" lines.
func lintAccessLog(path string) (lines int, problems []string) {
	f, err := os.Open(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	no := 0
	levels := map[string]bool{"info": true, "warn": true, "error": true}
	for sc.Scan() {
		no++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: invalid JSON: %v", path, no, err))
			continue
		}
		bad := false
		ts, _ := rec["ts"].(string)
		if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: ts %q not RFC3339", path, no, ts))
			bad = true
		}
		if lv, _ := rec["level"].(string); !levels[lv] {
			problems = append(problems, fmt.Sprintf("%s:%d: unknown level %q", path, no, rec["level"]))
			bad = true
		}
		msg, _ := rec["msg"].(string)
		if msg == "" {
			problems = append(problems, fmt.Sprintf("%s:%d: missing msg", path, no))
			bad = true
		}
		if msg == "request" {
			for _, key := range []string{"request_id", "method", "path"} {
				if v, _ := rec[key].(string); v == "" {
					problems = append(problems, fmt.Sprintf("%s:%d: request line missing %s", path, no, key))
					bad = true
				}
			}
			if st, ok := rec["status"].(float64); !ok || st < 100 || st > 599 {
				problems = append(problems, fmt.Sprintf("%s:%d: request line status %v out of range", path, no, rec["status"]))
				bad = true
			}
			if ms, ok := rec["elapsed_ms"].(float64); !ok || ms < 0 {
				problems = append(problems, fmt.Sprintf("%s:%d: request line elapsed_ms %v invalid", path, no, rec["elapsed_ms"]))
				bad = true
			}
		}
		if !bad {
			lines++
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("%s: %v", path, err))
	}
	return lines, problems
}

// lintBenchJSON validates a BENCH_*.json trajectory report's schema.
func lintBenchJSON(path string) (designs int, problems []string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	var rep struct {
		Fingerprint struct {
			GoVersion string `json:"go_version"`
			GOOS      string `json:"goos"`
			GOARCH    string `json:"goarch"`
			NumCPU    int    `json:"num_cpu"`
			Library   string `json:"library"`
		} `json:"fingerprint"`
		CreatedAt string `json:"created_at"`
		Mode      string `json:"mode"`
		Runs      int    `json:"runs"`
		Designs   []struct {
			Design      string  `json:"design"`
			Gates       int     `json:"gates"`
			Area        float64 `json:"area"`
			Delay       float64 `json:"delay"`
			WallMS      float64 `json:"wall_ms"`
			AllocsPerOp uint64  `json:"allocs_per_op"`
		} `json:"designs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, []string{fmt.Sprintf("%s: invalid JSON: %v", path, err)}
	}
	fp := rep.Fingerprint
	if fp.GoVersion == "" || fp.GOOS == "" || fp.GOARCH == "" || fp.NumCPU < 1 || fp.Library == "" {
		problems = append(problems, fmt.Sprintf("%s: incomplete fingerprint: %+v", path, fp))
	}
	if _, err := time.Parse(time.RFC3339, rep.CreatedAt); err != nil {
		problems = append(problems, fmt.Sprintf("%s: created_at %q not RFC3339", path, rep.CreatedAt))
	}
	if rep.Mode == "" || rep.Runs < 1 {
		problems = append(problems, fmt.Sprintf("%s: missing mode/runs (%q, %d)", path, rep.Mode, rep.Runs))
	}
	if len(rep.Designs) == 0 {
		problems = append(problems, fmt.Sprintf("%s: no design rows", path))
	}
	seen := map[string]bool{}
	for i, d := range rep.Designs {
		switch {
		case d.Design == "":
			problems = append(problems, fmt.Sprintf("%s: design %d has no name", path, i))
		case seen[d.Design]:
			problems = append(problems, fmt.Sprintf("%s: duplicate design %q", path, d.Design))
		case d.Gates <= 0 || d.Area <= 0:
			problems = append(problems, fmt.Sprintf("%s: %s: empty mapping (gates=%d area=%g)", path, d.Design, d.Gates, d.Area))
		case d.WallMS < 0 || d.Delay < 0:
			problems = append(problems, fmt.Sprintf("%s: %s: negative perf columns", path, d.Design))
		default:
			seen[d.Design] = true
			designs++
		}
	}
	return designs, problems
}

// lintBatchStream validates a captured /map/batch?stream=1 NDJSON
// stream against the contract documented in docs/SERVING.md: item lines
// in completion order with reassembly indices, a single done trailer
// last, and counts that add up.
func lintBatchStream(path string) (items int, problems []string) {
	f, err := os.Open(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	no := 0
	seen := map[int]bool{}
	succeeded, failed, maxIndex := 0, 0, -1
	var trailer *struct{ Succeeded, Failed int }
	for sc.Scan() {
		no++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if trailer != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: line after the done trailer", path, no))
			continue
		}
		var rec struct {
			Index  *int            `json:"index"`
			Result json.RawMessage `json:"result"`
			Error  *string         `json:"error"`
			Done   bool            `json:"done"`
			Succ   int             `json:"succeeded"`
			Fail   int             `json:"failed"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: invalid JSON: %v", path, no, err))
			continue
		}
		if rec.Done {
			trailer = &struct{ Succeeded, Failed int }{rec.Succ, rec.Fail}
			continue
		}
		if rec.Index == nil || *rec.Index < 0 {
			problems = append(problems, fmt.Sprintf("%s:%d: item missing a nonnegative index", path, no))
			continue
		}
		if seen[*rec.Index] {
			problems = append(problems, fmt.Sprintf("%s:%d: duplicate index %d", path, no, *rec.Index))
			continue
		}
		seen[*rec.Index] = true
		if *rec.Index > maxIndex {
			maxIndex = *rec.Index
		}
		hasResult := len(rec.Result) > 0 && string(rec.Result) != "null"
		hasError := rec.Error != nil && *rec.Error != ""
		if hasResult == hasError {
			problems = append(problems, fmt.Sprintf("%s:%d: item %d must carry exactly one of result/error", path, no, *rec.Index))
			continue
		}
		if hasResult {
			var res struct {
				Name *string `json:"name"`
			}
			if err := json.Unmarshal(rec.Result, &res); err != nil || res.Name == nil || *res.Name == "" {
				problems = append(problems, fmt.Sprintf("%s:%d: item %d result is not a map response", path, no, *rec.Index))
				continue
			}
			succeeded++
		} else {
			failed++
		}
		items++
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("%s: %v", path, err))
	}
	switch {
	case trailer == nil:
		problems = append(problems, fmt.Sprintf("%s: stream ended without a done trailer", path))
	case trailer.Succeeded != succeeded || trailer.Failed != failed:
		problems = append(problems, fmt.Sprintf("%s: trailer counts %d/%d disagree with item lines %d/%d",
			path, trailer.Succeeded, trailer.Failed, succeeded, failed))
	}
	if len(seen) > 0 && maxIndex != len(seen)-1 {
		problems = append(problems, fmt.Sprintf("%s: indices not dense: %d items, max index %d", path, len(seen), maxIndex))
	}
	return items, problems
}

// lintChromeTrace validates one Chrome trace file, returning the distinct
// span-name count, track count, total events, and any problems found.
func lintChromeTrace(path string, required []string) (spans, tracks, total int, problems []string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, []string{err.Error()}
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.TraceEvents == nil {
		// The format also allows a bare JSON array of events.
		if err2 := json.Unmarshal(data, &doc.TraceEvents); err2 != nil {
			return 0, 0, 0, []string{fmt.Sprintf("%s: neither a traceEvents object nor an event array: %v", path, err2)}
		}
	}
	seen := map[string]bool{}
	tids := map[float64]bool{}
	for i, raw := range doc.TraceEvents {
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			problems = append(problems, fmt.Sprintf("event %d: not an object: %v", i, err))
			continue
		}
		if ev.Name == nil || *ev.Name == "" {
			problems = append(problems, fmt.Sprintf("event %d: missing name", i))
			continue
		}
		if ev.Ph == nil || *ev.Ph == "" {
			problems = append(problems, fmt.Sprintf("event %d (%s): missing ph", i, *ev.Name))
			continue
		}
		switch *ev.Ph {
		case "X":
			if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				problems = append(problems, fmt.Sprintf("event %d (%s): X event missing ts/dur/pid/tid", i, *ev.Name))
				continue
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				problems = append(problems, fmt.Sprintf("event %d (%s): negative ts or dur", i, *ev.Name))
			}
			seen[*ev.Name] = true
			tids[*ev.Tid] = true
		case "M":
			// metadata: name/ph suffice
		default:
			if ev.Ts == nil || ev.Tid == nil {
				problems = append(problems, fmt.Sprintf("event %d (%s): %s event missing ts/tid", i, *ev.Name, *ev.Ph))
				continue
			}
			seen[*ev.Name] = true
			tids[*ev.Tid] = true
		}
	}
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name != "" && !seen[name] {
			problems = append(problems, fmt.Sprintf("required span %q not found", name))
		}
	}
	if len(tids) < 2 {
		problems = append(problems, fmt.Sprintf("expected the pipeline track plus at least one worker track, found %d track(s)", len(tids)))
	}
	return len(seen), len(tids), len(doc.TraceEvents), problems
}

// lintJSONL validates the JSONL event log: one JSON object per line with
// name, ts_us and ph fields.
func lintJSONL(path string) (lines int, problems []string) {
	f, err := os.Open(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	no := 0
	for sc.Scan() {
		no++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Name *string  `json:"name"`
			TsUs *float64 `json:"ts_us"`
			Ph   *string  `json:"ph"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: invalid JSON: %v", path, no, err))
			continue
		}
		if rec.Name == nil || rec.TsUs == nil || rec.Ph == nil {
			problems = append(problems, fmt.Sprintf("%s:%d: missing name/ts_us/ph", path, no))
			continue
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("%s: %v", path, err))
	}
	return lines, problems
}
