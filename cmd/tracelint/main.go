// Command tracelint validates the observability artifacts emitted by
// asyncmap: a Chrome trace-event JSON file (-trace) and, optionally, a
// JSONL event log (-events). It is the schema checker the CI trace smoke
// test runs, and a quick sanity gate before loading a trace in Perfetto.
//
// Usage:
//
//	tracelint [-require name,name,...] trace.json [events.jsonl]
//
// Checks performed on the Chrome trace:
//   - the file is a JSON object with a traceEvents array (or a bare
//     array, which the format also permits);
//   - every event has a name and a phase ("ph"); duration events ("X")
//     additionally carry numeric ts, dur, pid and tid;
//   - every span name listed in -require appears at least once (default:
//     the six pipeline phases decompose, partition, cuts, match, cover,
//     emit);
//   - at least two tracks exist: the pipeline track and one worker track.
//
// Checks performed on the JSONL log: every non-empty line is a JSON
// object with "name", "ts_us" and "ph" fields.
//
// Exit status 0 if every check passes, 1 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// event mirrors the subset of the Chrome trace-event schema we validate.
type event struct {
	Name *string          `json:"name"`
	Ph   *string          `json:"ph"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	Pid  *json.RawMessage `json:"pid"`
	Tid  *float64         `json:"tid"`
}

func main() {
	require := flag.String("require", "decompose,partition,cuts,match,cover,emit",
		"comma-separated span names that must appear in the trace")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-require names] trace.json [events.jsonl]")
		os.Exit(1)
	}
	var problems []string
	spans, tracks, total, perr := lintChromeTrace(flag.Arg(0), strings.Split(*require, ","))
	problems = append(problems, perr...)
	if flag.NArg() == 2 {
		lines, perr := lintJSONL(flag.Arg(1))
		problems = append(problems, perr...)
		fmt.Printf("tracelint: %s: %d lines ok\n", flag.Arg(1), lines)
	}
	fmt.Printf("tracelint: %s: %d events, %d tracks, %d distinct span names\n",
		flag.Arg(0), total, tracks, spans)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "tracelint:", p)
		}
		os.Exit(1)
	}
	fmt.Println("tracelint: OK")
}

// lintChromeTrace validates one Chrome trace file, returning the distinct
// span-name count, track count, total events, and any problems found.
func lintChromeTrace(path string, required []string) (spans, tracks, total int, problems []string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, []string{err.Error()}
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.TraceEvents == nil {
		// The format also allows a bare JSON array of events.
		if err2 := json.Unmarshal(data, &doc.TraceEvents); err2 != nil {
			return 0, 0, 0, []string{fmt.Sprintf("%s: neither a traceEvents object nor an event array: %v", path, err2)}
		}
	}
	seen := map[string]bool{}
	tids := map[float64]bool{}
	for i, raw := range doc.TraceEvents {
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			problems = append(problems, fmt.Sprintf("event %d: not an object: %v", i, err))
			continue
		}
		if ev.Name == nil || *ev.Name == "" {
			problems = append(problems, fmt.Sprintf("event %d: missing name", i))
			continue
		}
		if ev.Ph == nil || *ev.Ph == "" {
			problems = append(problems, fmt.Sprintf("event %d (%s): missing ph", i, *ev.Name))
			continue
		}
		switch *ev.Ph {
		case "X":
			if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				problems = append(problems, fmt.Sprintf("event %d (%s): X event missing ts/dur/pid/tid", i, *ev.Name))
				continue
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				problems = append(problems, fmt.Sprintf("event %d (%s): negative ts or dur", i, *ev.Name))
			}
			seen[*ev.Name] = true
			tids[*ev.Tid] = true
		case "M":
			// metadata: name/ph suffice
		default:
			if ev.Ts == nil || ev.Tid == nil {
				problems = append(problems, fmt.Sprintf("event %d (%s): %s event missing ts/tid", i, *ev.Name, *ev.Ph))
				continue
			}
			seen[*ev.Name] = true
			tids[*ev.Tid] = true
		}
	}
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name != "" && !seen[name] {
			problems = append(problems, fmt.Sprintf("required span %q not found", name))
		}
	}
	if len(tids) < 2 {
		problems = append(problems, fmt.Sprintf("expected the pipeline track plus at least one worker track, found %d track(s)", len(tids)))
	}
	return len(seen), len(tids), len(doc.TraceEvents), problems
}

// lintJSONL validates the JSONL event log: one JSON object per line with
// name, ts_us and ph fields.
func lintJSONL(path string) (lines int, problems []string) {
	f, err := os.Open(path)
	if err != nil {
		return 0, []string{err.Error()}
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	no := 0
	for sc.Scan() {
		no++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Name *string  `json:"name"`
			TsUs *float64 `json:"ts_us"`
			Ph   *string  `json:"ph"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: invalid JSON: %v", path, no, err))
			continue
		}
		if rec.Name == nil || rec.TsUs == nil || rec.Ph == nil {
			problems = append(problems, fmt.Sprintf("%s:%d: missing name/ts_us/ph", path, no))
			continue
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("%s: %v", path, err))
	}
	return lines, problems
}
