// Package gfmap is a from-scratch Go reproduction of "Automatic Technology
// Mapping for Generalized Fundamental-Mode Asynchronous Designs" (Siegel,
// De Micheli, Dill — DAC 1993 / Stanford CSL-TR-93-580): a hazard-aware
// technology mapper for burst-mode asynchronous circuits, together with
// every substrate the paper depends on — cube algebra, Boolean factored
// forms, the hazard-analysis algorithm suite of §4, Boolean matching, tree
// covering, four synthetic cell libraries with the paper's hazard census,
// a hazard-free two-level minimiser, and a burst-mode synthesis front end.
//
// The implementation lives under internal/; the runnable surfaces are the
// commands in cmd/ (asyncmap, hazardcheck, libaudit, paperbench) and the
// programs in examples/. See README.md for a tour, DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-versus-measured record.
package gfmap
