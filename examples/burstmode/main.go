// Burstmode demonstrates the complete Figure 1 flow of the paper: a
// burst-mode state machine specification is synthesised into hazard-free
// two-level logic (next-state and output functions around a set of
// latches), and the combinational part is then technology-mapped without
// introducing new hazards.
//
// Run with: go run ./examples/burstmode
package main

import (
	"fmt"
	"log"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
)

// A VME-bus-style read controller (a classic burst-mode example).
const spec = `
name vmectl
input dsr 0
input ldtack 0
output lds 0
output dtack 0
initial idle
idle -> got : dsr+ / lds+
got -> ackd : ldtack+ / dtack+
ackd -> rel : dsr- / dtack- lds-
rel -> idle : ldtack- /
`

func main() {
	m, err := bmspec.ParseString(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst-mode machine %q: %d states, %d transitions\n\n",
		m.Name, len(m.States()), len(m.Edges))

	syn, err := bmspec.Synthesize(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hazard-free logic equations (inputs + state variables y<i>):")
	fmt.Println(eqn.WriteString(syn.Net))
	for f, s := range syn.Specs {
		fmt.Printf("  %-6s: %d specified hazard-free transitions\n", f, len(s.Transitions))
	}
	fmt.Println()

	lib, err := library.Get("CMOS3")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.AsyncTmap(syn.Net, lib, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped to %s: area %g, delay %.2fns\n%s",
		lib.Name, res.Area, res.Delay, res.Netlist)

	rep, err := core.VerifyHazardSafety(syn.Net, res.Netlist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hazard safety: %s\n", rep)
	if !rep.Clean() {
		log.Fatal("mapping introduced hazards — this should be impossible")
	}
}
