// Glitch makes the paper's hazards visible as waveforms: the event-driven
// delay simulator drives the classic multiplexer static-1 hazard (select
// change with both data inputs at 1) under an adversarial delay
// assignment, then shows that the consensus-completed structure cannot be
// made to glitch on the same transition, no matter the delays.
//
// Run with: go run ./examples/glitch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"gfmap/internal/bexpr"
	"gfmap/internal/dsim"
	"gfmap/internal/network"
)

func buildNet(expr string, vars []string) *network.Network {
	n := network.New("g")
	for _, v := range vars {
		if err := n.AddInput(v); err != nil {
			log.Fatal(err)
		}
	}
	e, err := bexpr.ParseExpr(expr)
	if err != nil {
		log.Fatal(err)
	}
	if err := n.AddNode("f", e); err != nil {
		log.Fatal(err)
	}
	if err := n.MarkOutput("f"); err != nil {
		log.Fatal(err)
	}
	return n
}

func show(trace *dsim.Trace, signals ...string) {
	sort.Strings(signals)
	for _, s := range signals {
		fmt.Printf("  %-3s:", s)
		for _, ev := range trace.Waves[s] {
			v := 0
			if ev.Value {
				v = 1
			}
			fmt.Printf("  %g→%d", ev.Time, v)
		}
		fmt.Println()
	}
}

func main() {
	fmt.Println("== hazardous mux structure: f = s'*a + s*b")
	mux := buildNet("s'*a + s*b", []string{"s", "a", "b"})
	c, err := dsim.New(mux)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	trace, delays, found, err := c.HuntGlitch(
		map[string]bool{"s": false, "a": true, "b": true},
		map[string]bool{"s": true, "a": true, "b": true},
		"f", rng, 200)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("no glitch found — the hazard analysis predicts one!")
	}
	fmt.Println("glitch exhibited (s: 0→1 with a=b=1); waveforms (time→value):")
	show(trace, "s", "f")
	fmt.Printf("adversarial path delays into f: %v\n\n", delays.Path["f"])

	fmt.Println("== consensus-completed structure: f = s'*a + s*b + a*b")
	fixed := buildNet("s'*a + s*b + a*b", []string{"s", "a", "b"})
	cf, err := dsim.New(fixed)
	if err != nil {
		log.Fatal(err)
	}
	_, _, found, err = cf.HuntGlitch(
		map[string]bool{"s": false, "a": true, "b": true},
		map[string]bool{"s": true, "a": true, "b": true},
		"f", rng, 2000)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		log.Fatal("the hazard-free structure glitched — impossible!")
	}
	fmt.Println("2000 adversarial delay assignments: no glitch. The redundant")
	fmt.Println("cube a*b holds the output through the select transition,")
	fmt.Println("exactly as §2.3 of the paper explains.")
}
