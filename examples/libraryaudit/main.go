// Libraryaudit reproduces the paper's Table 1 programmatically: it loads
// each of the four cell libraries, runs the hazard-analysis suite over
// every cell's Boolean factored form — the asynchronous mapper's extra
// initialisation step — and reports which elements are hazardous and why.
//
// Run with: go run ./examples/libraryaudit
package main

import (
	"fmt"
	"log"

	"gfmap/internal/library"
)

func main() {
	for _, name := range library.BuiltinNames {
		lib, err := library.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		c := lib.Census()
		fmt.Printf("== %s: %d/%d cells hazardous (%d%%)\n",
			name, c.Hazardous, c.Total, c.PercentHazardous())
		for _, cell := range lib.HazardousCells() {
			fmt.Printf("   %-10s %-32s -> %s\n", cell.Name, cell.Fn.String(), cell.Report.Summary())
		}
		// Show one full report per library as an illustration.
		if cells := lib.HazardousCells(); len(cells) > 0 {
			cell := cells[0]
			fmt.Printf("\n   detailed report for %s:\n", cell.Name)
			fmt.Print(indent(cell.Report.Describe(cell.Fn.Vars), "   | "))
		}
		fmt.Println()
	}
}

func indent(s, pad string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += pad + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
