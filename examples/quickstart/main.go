// Quickstart: map one hazard-free equation with the asynchronous
// technology mapper and watch the hazard filter at work.
//
// The function f = a*b + a'*c + b*c is the paper's Figure 3: the redundant
// consensus cube b*c makes the two-level structure free of the static
// 1-hazard that a 2:1 multiplexer — the functionally equivalent, cheaper
// cover — would suffer when input a changes with b = c = 1. The
// synchronous mapper happily picks the mux; the asynchronous mapper
// rejects it and keeps a hazard-free cover.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
)

const design = `
# Figure 3 of Siegel/De Micheli/Dill, DAC'93
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`

func main() {
	net, err := eqn.ParseString(design, "fig3")
	if err != nil {
		log.Fatal(err)
	}
	lib, err := library.Get("LSI9K")
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []core.Mode{core.Sync, core.Async} {
		res, err := core.Map(net, lib, core.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v mapping (area %g, %d gates)\n%s", mode, res.Area,
			res.Netlist.GateCount(), res.Netlist)

		// Verify function and hazard behaviour.
		if err := core.VerifyEquivalence(net, res.Netlist); err != nil {
			log.Fatal(err)
		}
		rep, err := core.VerifyHazardSafety(net, res.Netlist)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hazard safety: %s", rep)
		if !rep.Clean() {
			fmt.Printf("  <-- the %v mapper introduced a hazard!", mode)
			for _, d := range rep.Details {
				fmt.Printf("\n    %s", d)
			}
		}
		fmt.Printf("\nhazardous matches rejected: %d\n\n", res.Stats.MatchesRejected)
	}
}
