// SCSI reproduces the paper's flagship experiment (Table 3): an
// asynchronous SCSI controller, synthesised with a locally-clocked-style
// method, is mapped onto the LSI library by both the synchronous and the
// asynchronous mapper. The synchronous result may contain new hazards; the
// asynchronous one may not — and costs only a modest run-time overhead.
//
// Run with: go run ./examples/scsi
package main

import (
	"fmt"
	"log"
	"time"

	"gfmap/internal/bench"
	"gfmap/internal/core"
	"gfmap/internal/library"
)

func main() {
	design, err := bench.DesignByName("scsi")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d inputs, %d logic functions (%d controller slices)\n\n",
		design.Name, len(design.Net.Inputs), design.Net.NumNodes(), design.Slices)

	lib, err := library.Get("LSI9K")
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		mode  core.Mode
		res   *core.Result
		taken time.Duration
	}
	var outs []outcome
	for _, mode := range []core.Mode{core.Sync, core.Async} {
		start := time.Now()
		res, err := core.Map(design.Net, lib, core.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		outs = append(outs, outcome{mode, res, time.Since(start)})
	}

	fmt.Printf("%-6s %10s %10s %8s %10s %10s\n", "mode", "area", "delay", "gates", "rejected", "time")
	for _, o := range outs {
		fmt.Printf("%-6v %10g %8.1fns %8d %10d %10s\n",
			o.mode, o.res.Area, o.res.Delay, o.res.Netlist.GateCount(),
			o.res.Stats.MatchesRejected, o.taken.Round(time.Millisecond))
	}
	fmt.Println()

	// The asynchronous mapping must be functionally correct and introduce
	// no hazards; sample cells used:
	async := outs[1].res
	if err := core.VerifyEquivalence(design.Net, async.Netlist); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cell usage of the asynchronous cover:")
	for _, h := range async.Netlist.CellHistogram() {
		fmt.Printf("  %-10s x%d\n", h.Cell, h.Count)
	}
}
