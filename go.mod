module gfmap

go 1.22
