// Package bdd implements reduced ordered binary decision diagrams. The
// original CERES mapper performed its Boolean matching and equivalence
// reasoning on BDDs (Mailhot & De Micheli, reference [6] of the paper);
// this package provides that substrate: a shared-node manager with an ITE
// core, constructors from covers, expressions and whole networks, and the
// canonical-form equivalence that makes network verification scale past
// the exhaustive-enumeration bound.
package bdd

import (
	"fmt"
	"math"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/network"
)

// Ref is a node reference. The constants False and True are the terminal
// nodes; all other refs index into the manager's node table. Because nodes
// are hash-consed, two functions are equivalent iff their refs are equal.
type Ref uint32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  uint32 // variable index; terminals use ^uint32(0)
	lo, hi Ref
}

const termLevel = ^uint32(0)

// Manager owns the shared node table. Variables are identified by their
// level: lower levels are tested first.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	ite    map[[3]Ref]Ref
	nvars  int
}

// NewManager creates a manager for n variables.
func NewManager(n int) *Manager {
	m := &Manager{
		nodes:  make([]node, 2, 1024),
		unique: make(map[node]Ref),
		ite:    make(map[[3]Ref]Ref),
		nvars:  n,
	}
	m.nodes[False] = node{level: termLevel}
	m.nodes[True] = node{level: termLevel}
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

func (m *Manager) level(r Ref) uint32 { return m.nodes[r].level }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules.
func (m *Manager) mk(level uint32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the function of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(uint32(i), False, True)
}

// NVar returns the complemented literal of variable i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(uint32(i), True, False)
}

// Ite computes if-then-else(f, g, h) — the universal connective.
func (m *Manager) Ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.ite[key] = r
	return r
}

func (m *Manager) cofactor(f Ref, level uint32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Implies reports whether f ⇒ g holds universally.
func (m *Manager) Implies(f, g Ref) bool { return m.Ite(f, g, True) == True }

// FromCube builds the BDD of a product term.
func (m *Manager) FromCube(c cube.Cube) Ref {
	out := True
	for _, v := range c.Vars() {
		var lit Ref
		if c.PhaseOf(v) {
			lit = m.Var(v)
		} else {
			lit = m.NVar(v)
		}
		out = m.And(out, lit)
	}
	return out
}

// FromCover builds the BDD of a sum-of-products cover.
func (m *Manager) FromCover(f cube.Cover) Ref {
	out := False
	for _, c := range f.Cubes {
		out = m.Or(out, m.FromCube(c))
	}
	return out
}

// FromExpr builds the BDD of a Boolean factored form over the function's
// variable order.
func (m *Manager) FromExpr(f *bexpr.Function) (Ref, error) {
	if f.NumVars() > m.nvars {
		return False, fmt.Errorf("bdd: expression has %d variables, manager has %d", f.NumVars(), m.nvars)
	}
	var rec func(e *bexpr.Expr) Ref
	rec = func(e *bexpr.Expr) Ref {
		switch e.Op {
		case bexpr.OpConst:
			if e.Val {
				return True
			}
			return False
		case bexpr.OpVar:
			return m.Var(f.VarIndex(e.Name))
		case bexpr.OpNot:
			return m.Not(rec(e.Kids[0]))
		case bexpr.OpAnd:
			out := True
			for _, k := range e.Kids {
				out = m.And(out, rec(k))
			}
			return out
		default:
			out := False
			for _, k := range e.Kids {
				out = m.Or(out, rec(k))
			}
			return out
		}
	}
	return rec(f.Root), nil
}

// Eval evaluates the function at an input point (bit i = variable i).
// Only meaningful for managers with at most 64 variables.
func (m *Manager) Eval(f Ref, point uint64) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if point&(1<<n.level) != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over the
// manager's full variable set.
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var rec func(r Ref) float64 // fraction of the space
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		v := 0.5*rec(n.lo) + 0.5*rec(n.hi)
		memo[r] = v
		return v
	}
	return rec(f) * math.Pow(2, float64(m.nvars))
}

// Support returns a bitmask of the variables the function depends on.
func (m *Manager) Support(f Ref) uint64 {
	seen := map[Ref]bool{}
	var out uint64
	var rec func(r Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		out |= 1 << n.level
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return out
}

// NetworkRefs builds the BDD of every signal of a combinational network
// over its primary-input order, returning a map from signal name to ref.
func NetworkRefs(m *Manager, net *network.Network) (map[string]Ref, error) {
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	refs := make(map[string]Ref)
	for i, in := range net.Inputs {
		refs[in] = m.Var(i)
	}
	var build func(e *bexpr.Expr) (Ref, error)
	build = func(e *bexpr.Expr) (Ref, error) {
		switch e.Op {
		case bexpr.OpConst:
			if e.Val {
				return True, nil
			}
			return False, nil
		case bexpr.OpVar:
			r, ok := refs[e.Name]
			if !ok {
				return False, fmt.Errorf("bdd: undefined signal %q", e.Name)
			}
			return r, nil
		case bexpr.OpNot:
			k, err := build(e.Kids[0])
			if err != nil {
				return False, err
			}
			return m.Not(k), nil
		case bexpr.OpAnd:
			out := True
			for _, kid := range e.Kids {
				k, err := build(kid)
				if err != nil {
					return False, err
				}
				out = m.And(out, k)
			}
			return out, nil
		default:
			out := False
			for _, kid := range e.Kids {
				k, err := build(kid)
				if err != nil {
					return False, err
				}
				out = m.Or(out, k)
			}
			return out, nil
		}
	}
	for _, name := range order {
		r, err := build(net.Node(name).Expr)
		if err != nil {
			return nil, err
		}
		refs[name] = r
	}
	return refs, nil
}

// NetworksEquivalent compares two combinational networks with identical
// input and output name sets by canonical BDD identity — no exhaustive
// enumeration, so it scales to the benchmark-suite sizes.
func NetworksEquivalent(a, b *network.Network) (bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil
	}
	if len(a.Inputs) > 1<<20 {
		return false, fmt.Errorf("bdd: input count out of range")
	}
	// b's variable order must follow a's input naming.
	idx := make(map[string]int, len(a.Inputs))
	for i, in := range a.Inputs {
		idx[in] = i
	}
	m := NewManager(len(a.Inputs))
	aRefs, err := NetworkRefs(m, a)
	if err != nil {
		return false, err
	}
	// Build b with a's variable assignment: construct a manager-level remap
	// by building b's refs on the same manager after checking names.
	bInputRefs := make(map[string]Ref, len(b.Inputs))
	for _, in := range b.Inputs {
		i, ok := idx[in]
		if !ok {
			return false, nil
		}
		bInputRefs[in] = m.Var(i)
	}
	bRefs, err := networkRefsWithInputs(m, b, bInputRefs)
	if err != nil {
		return false, err
	}
	for _, o := range a.Outputs {
		br, ok := bRefs[o]
		if !ok {
			return false, nil
		}
		if aRefs[o] != br {
			return false, nil
		}
	}
	return true, nil
}

func networkRefsWithInputs(m *Manager, net *network.Network, inputs map[string]Ref) (map[string]Ref, error) {
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	refs := make(map[string]Ref, len(inputs)+len(order))
	for k, v := range inputs {
		refs[k] = v
	}
	for _, name := range order {
		fn := bexpr.New(net.Node(name).Expr)
		r, err := buildWithRefs(m, fn.Root, refs)
		if err != nil {
			return nil, err
		}
		refs[name] = r
	}
	return refs, nil
}

func buildWithRefs(m *Manager, e *bexpr.Expr, refs map[string]Ref) (Ref, error) {
	switch e.Op {
	case bexpr.OpConst:
		if e.Val {
			return True, nil
		}
		return False, nil
	case bexpr.OpVar:
		r, ok := refs[e.Name]
		if !ok {
			return False, fmt.Errorf("bdd: undefined signal %q", e.Name)
		}
		return r, nil
	case bexpr.OpNot:
		k, err := buildWithRefs(m, e.Kids[0], refs)
		if err != nil {
			return False, err
		}
		return m.Not(k), nil
	case bexpr.OpAnd:
		out := True
		for _, kid := range e.Kids {
			k, err := buildWithRefs(m, kid, refs)
			if err != nil {
				return False, err
			}
			out = m.And(out, k)
		}
		return out, nil
	default:
		out := False
		for _, kid := range e.Kids {
			k, err := buildWithRefs(m, kid, refs)
			if err != nil {
				return False, err
			}
			out = m.Or(out, k)
		}
		return out, nil
	}
}
