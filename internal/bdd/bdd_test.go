package bdd

import (
	"math/rand"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/eqn"
)

func TestTerminalsAndVars(t *testing.T) {
	m := NewManager(3)
	if m.Var(0) == m.Var(1) {
		t.Error("distinct variables must be distinct nodes")
	}
	if m.Var(0) != m.Var(0) {
		t.Error("hash consing must return identical refs")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("terminal complement wrong")
	}
	if m.Not(m.Not(m.Var(2))) != m.Var(2) {
		t.Error("double negation must be identity")
	}
}

func TestConnectives(t *testing.T) {
	m := NewManager(2)
	a, b := m.Var(0), m.Var(1)
	and := m.And(a, b)
	or := m.Or(a, b)
	xor := m.Xor(a, b)
	for p := uint64(0); p < 4; p++ {
		av := p&1 != 0
		bv := p&2 != 0
		if m.Eval(and, p) != (av && bv) {
			t.Errorf("AND wrong at %02b", p)
		}
		if m.Eval(or, p) != (av || bv) {
			t.Errorf("OR wrong at %02b", p)
		}
		if m.Eval(xor, p) != (av != bv) {
			t.Errorf("XOR wrong at %02b", p)
		}
	}
	if !m.Implies(and, or) {
		t.Error("a∧b ⇒ a∨b must hold")
	}
	if m.Implies(or, and) {
		t.Error("a∨b ⇒ a∧b must not hold")
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(3)
	// Two different constructions of the same function share a node.
	f1, err := m.FromExpr(bexpr.MustParse("a*b + a'*c + b*c"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.FromExpr(bexpr.MustParse("a*b + a'*c"))
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("consensus-redundant cover must reduce to the same node")
	}
}

func TestAgainstCoverSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5
	for iter := 0; iter < 100; iter++ {
		cov := cube.NewCover(n)
		for i := 0; i < 1+rng.Intn(4); i++ {
			used := rng.Uint64() & cube.VarMask(n)
			cov.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
		}
		m := NewManager(n)
		f := m.FromCover(cov)
		for p := uint64(0); p < 1<<uint(n); p++ {
			if m.Eval(f, p) != cov.Eval(p) {
				t.Fatalf("cover %v: BDD disagrees at %05b", cov, p)
			}
		}
		// Cross-check tautology and complement against the cube engine.
		if (f == True) != cov.Tautology() {
			t.Fatalf("cover %v: tautology mismatch", cov)
		}
		comp := m.FromCover(cov.Complement())
		if comp != m.Not(f) {
			t.Fatalf("cover %v: complement mismatch", cov)
		}
		// Containment: f contains each of its own cubes.
		for _, c := range cov.Cubes {
			if !m.Implies(m.FromCube(c), f) {
				t.Fatalf("cover %v: lost its own cube %v", cov, c)
			}
		}
	}
}

func TestSatCountAndSupport(t *testing.T) {
	m := NewManager(4)
	f, err := m.FromExpr(bexpr.MustParse("a*b"))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SatCount(f); got != 4 { // ab over 4 vars: 2^2 assignments
		t.Errorf("SatCount = %g, want 4", got)
	}
	if got := m.Support(f); got != 0b0011 {
		t.Errorf("Support = %04b, want 0011", got)
	}
}

func TestNetworksEquivalent(t *testing.T) {
	a, err := eqn.ParseString(`
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`, "x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := eqn.ParseString(`
INPUT(a, b, c)
OUTPUT(f)
u = a*b;
v = a'*c;
f = u + v;
`, "y")
	if err != nil {
		t.Fatal(err)
	}
	eqv, err := NetworksEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eqv {
		t.Error("redundant and irredundant covers must be BDD-equivalent")
	}
	c, err := eqn.ParseString(`
INPUT(a, b, c)
OUTPUT(f)
f = a*b + c;
`, "z")
	if err != nil {
		t.Fatal(err)
	}
	eqv, err = NetworksEquivalent(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eqv {
		t.Error("different functions must not be equivalent")
	}
}

func TestNetworksEquivalentWideInputs(t *testing.T) {
	// 30 inputs: far beyond the exhaustive-enumeration bound.
	mk := func(name string, flip bool) string {
		src := "INPUT("
		for i := 0; i < 30; i++ {
			if i > 0 {
				src += ", "
			}
			src += string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		src += ")\nOUTPUT(f)\nf = "
		for i := 0; i < 30; i += 2 {
			if i > 0 {
				src += " + "
			}
			v1 := string(rune('a'+i%26)) + string(rune('0'+i/26))
			v2 := string(rune('a'+(i+1)%26)) + string(rune('0'+(i+1)/26))
			if flip && i == 14 {
				src += v2 + "*" + v1 // same product, commuted: still equivalent
			} else {
				src += v1 + "*" + v2
			}
		}
		src += ";\n"
		return src
	}
	a, err := eqn.ParseString(mk("a", false), "wide_a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := eqn.ParseString(mk("b", true), "wide_b")
	if err != nil {
		t.Fatal(err)
	}
	eqv, err := NetworksEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eqv {
		t.Error("commuted products must be equivalent")
	}
}

func TestEvalRandomAgainstExpr(t *testing.T) {
	exprs := []string{
		"(a + b')*(c + d)*(a' + e)",
		"a*b*c + d*e + a'*d'",
		"((a*b)' + c)*((d + e)' + a)",
	}
	for _, e := range exprs {
		fn := bexpr.MustParse(e)
		m := NewManager(fn.NumVars())
		f, err := m.FromExpr(fn)
		if err != nil {
			t.Fatal(err)
		}
		for p := uint64(0); p < 1<<uint(fn.NumVars()); p++ {
			if m.Eval(f, p) != fn.Eval(p) {
				t.Fatalf("%q: mismatch at %b", e, p)
			}
		}
	}
}

func BenchmarkBuildBenchmarkSizedBDD(b *testing.B) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = a*b*c + d*e*f + g*h + a'*d' + b'*e'*g' + c'*f'*h';
`
	net, err := eqn.ParseString(src, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewManager(len(net.Inputs))
		if _, err := NetworkRefs(m, net); err != nil {
			b.Fatal(err)
		}
	}
}
