package bench

import (
	"fmt"
	"strings"
	"time"

	"gfmap/internal/core"
	"gfmap/internal/library"
)

// AblationRow is one configuration's result on one design.
type AblationRow struct {
	Design  string
	Library string
	Config  string
	Area    float64
	Delay   float64
	CPU     time.Duration
	Stats   core.Stats
}

// AblationDepth sweeps the cluster depth bound — the design choice behind
// the paper's fixed "depth of 5". Depth 1 is the gate-for-gate baseline;
// quality saturates once clusters can reach the library's largest cells.
func AblationDepth(designName, libName string) ([]AblationRow, error) {
	d, err := DesignByName(designName)
	if err != nil {
		return nil, err
	}
	lib, err := library.Get(libName)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, depth := range []int{1, 2, 3, 4, 5, 6} {
		leaves := 6
		if depth == 1 {
			leaves = 2
		}
		start := time.Now()
		res, err := core.Map(d.Net, lib, core.Options{Mode: core.Async, MaxDepth: depth, MaxLeaves: leaves})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Design: designName, Library: libName,
			Config: fmt.Sprintf("depth=%d", depth),
			Area:   res.Area, Delay: res.Delay, CPU: time.Since(start), Stats: res.Stats,
		})
	}
	return rows, nil
}

// AblationFilter compares the mapper with and without the hazard filter
// (async vs sync) and with bounded-burst hazard don't-cares — quantifying
// what hazard safety costs in area and what don't-cares buy back.
func AblationFilter(designName, libName string) ([]AblationRow, error) {
	d, err := DesignByName(designName)
	if err != nil {
		return nil, err
	}
	lib, err := library.Get(libName)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"sync (no filter)", core.Options{Mode: core.Sync}},
		{"async", core.Options{Mode: core.Async}},
		{"async burst<=2", core.Options{Mode: core.Async, MaxBurst: 2}},
		{"async burst<=1", core.Options{Mode: core.Async, MaxBurst: 1}},
	}
	var rows []AblationRow
	for _, c := range configs {
		start := time.Now()
		res, err := core.Map(d.Net, lib, c.opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Design: designName, Library: libName, Config: c.name,
			Area: res.Area, Delay: res.Delay, CPU: time.Since(start), Stats: res.Stats,
		})
	}
	return rows, nil
}

// AblationObjective compares area-driven and delay-driven covering.
func AblationObjective(designName, libName string) ([]AblationRow, error) {
	d, err := DesignByName(designName)
	if err != nil {
		return nil, err
	}
	lib, err := library.Get(libName)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, obj := range []core.Objective{core.MinArea, core.MinDelay} {
		start := time.Now()
		res, err := core.Map(d.Net, lib, core.Options{Mode: core.Async, Objective: obj})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Design: designName, Library: libName, Config: "objective=" + obj.String(),
			Area: res.Area, Delay: res.Delay, CPU: time.Since(start), Stats: res.Stats,
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", title)
	fmt.Fprintf(&b, "%-10s %-8s %-18s %8s %9s %10s %9s\n",
		"Design", "Library", "Config", "Area", "Delay", "CPU", "Rejected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %-18s %8.0f %7.1fns %10s %9d\n",
			r.Design, r.Library, r.Config, r.Area, r.Delay,
			r.CPU.Round(time.Millisecond), r.Stats.MatchesRejected)
	}
	return b.String()
}
