package bench

import (
	"fmt"
	"strings"
	"time"

	"gfmap/internal/core"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
)

// CacheRow reports the hazard-analysis cache behaviour of one benchmark
// design: the cold-cache hit rate of a serial run, the warm-cache parallel
// rerun, and the check that both produced the same netlist.
type CacheRow struct {
	Design   string
	Analyses int // hazard-set computations requested (serial, cold cache)
	Local    int // served by the per-cone memo
	Shared   int // served by the cross-cone cache
	Fresh    int // computed from scratch
	HitRate  float64
	// Truncations counts cut-enumeration bounds hit during the run.
	Truncations int
	Serial      time.Duration // Workers=1, cold private cache
	Parallel    time.Duration // Workers=NumCPU, warm private cache
	Identical   bool          // parallel netlist bit-identical to serial
}

// CacheTable maps every benchmark design twice onto Actel (the library whose mux-based
// cells are hazardous, so the matching filter actually runs) — serial with a
// cold private cache, then parallel over the now-warm cache — and reports
// the cache accounting plus the bit-identity check between the two runs.
func CacheTable() ([]CacheRow, error) {
	ds, err := Designs()
	if err != nil {
		return nil, err
	}
	lib, err := library.Get("Actel")
	if err != nil {
		return nil, err
	}
	var rows []CacheRow
	for _, d := range ds {
		cache := hazcache.New(0)
		start := time.Now()
		serial, err := core.AsyncTmap(d.Net, lib, core.Options{Workers: 1, HazardCache: cache})
		if err != nil {
			return nil, fmt.Errorf("bench: %s serial: %w", d.Name, err)
		}
		serialTime := time.Since(start)
		start = time.Now()
		parallel, err := core.AsyncTmap(d.Net, lib, core.Options{HazardCache: cache})
		if err != nil {
			return nil, fmt.Errorf("bench: %s parallel: %w", d.Name, err)
		}
		parallelTime := time.Since(start)
		st := serial.Stats
		rows = append(rows, CacheRow{
			Design:      d.Name,
			Analyses:    st.HazardAnalyses(),
			Local:       st.HazCacheLocalHits,
			Shared:      st.HazCacheHits,
			Fresh:       st.HazCacheMisses,
			HitRate:     st.HazCacheHitRate(),
			Truncations: st.CutTruncations,
			Serial:      serialTime,
			Parallel:    parallelTime,
			Identical:   serial.Netlist.String() == parallel.Netlist.String(),
		})
	}
	return rows, nil
}

// FormatCacheTable renders the cache study in the style of the paper's
// tables.
func FormatCacheTable(rows []CacheRow) string {
	var b strings.Builder
	b.WriteString("Cache study: shared hazard-analysis cache (Actel, async)\n")
	fmt.Fprintf(&b, "%-14s %9s %7s %7s %6s %6s %6s %10s %10s %6s\n",
		"Design", "analyses", "local", "shared", "fresh", "hit%", "trunc", "serial", "parallel", "same")
	for _, r := range rows {
		same := "yes"
		if !r.Identical {
			same = "NO"
		}
		fmt.Fprintf(&b, "%-14s %9d %7d %7d %6d %5.1f%% %6d %10s %10s %6s\n",
			r.Design, r.Analyses, r.Local, r.Shared, r.Fresh, 100*r.HitRate,
			r.Truncations, r.Serial.Round(time.Millisecond),
			r.Parallel.Round(time.Millisecond), same)
	}
	return b.String()
}
