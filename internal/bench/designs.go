// Package bench contains the asynchronous benchmark suite and the table
// generators reproducing the paper's evaluation (§5, Tables 1–5).
//
// The paper's eleven benchmark circuits come from unpublished
// locally-clocked and 3D synthesis runs; we rebuild the suite from
// burst-mode controller specifications of the same character and relative
// size ordering, synthesised to hazard-free logic by the hfmin/bmspec
// substrate. Large designs (oscsi-ctrl, scsi, abcs, dean-ctrl) are
// multi-channel controllers: several controller slices with disjoint
// signal sets, exactly how the originals accumulate many small state
// machines.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"gfmap/internal/bexpr"
	"gfmap/internal/bmspec"
	"gfmap/internal/network"
)

// Burst-mode sources for the controller slices. Every machine revisits at
// least one input vector in states with different outputs or successors,
// so the synthesised logic genuinely depends on the state variables — the
// signature of real asynchronous controllers (a machine whose outputs are
// pure input functions would synthesise to trivial combinational logic).
const (
	// dmeSrc is a distributed-mutual-exclusion ring cell: a local grant
	// lap (token held) followed by a ring-forward lap (token requested
	// from the right neighbour). The input vector lreq=1,rack=0 occurs in
	// both laps with different outputs.
	dmeSrc = `
name dme
input lreq 0
input rack 0
output lack 0
output rreq 0
initial idle
idle -> p1 : lreq+ / lack+
p1 -> p2 : lreq- / lack-
p2 -> p3 : lreq+ / rreq+
p3 -> p4 : rack+ / lack+
p4 -> p5 : lreq- / lack-
p5 -> idle : rack- / rreq-
`
	// dmeFastSrc is the concurrent-burst dme variant: both handshake
	// inputs move together, with a held-token lap and a forward lap.
	dmeFastSrc = `
name dmefast
input lreq 0
input rack 0
output lack 0
output rreq 0
initial idle
idle -> own : lreq+ rack+ / lack+
own -> rel : lreq- rack- /
rel -> fwd : lreq+ rack+ / lack- rreq+
fwd -> idle : lreq- rack- / rreq-
`
	// chuAdSrc is Chu's a/d conversion controller with a two-round
	// conversion cycle.
	chuAdSrc = `
name chuad
input req 0
input di 0
output ack 0
output dout 0
initial s0
s0 -> s1 : req+ / dout+
s1 -> s2 : di+ / ack+
s2 -> s3 : req- / dout-
s3 -> s4 : req+ / dout+ ack-
s4 -> s5 : di- /
s5 -> s0 : req- / dout-
`
	// vanbekSrc is a van Berkel toggle element: concurrent input bursts
	// alternately raise and lower the output.
	vanbekSrc = `
name vanbek
input a 0
input b 0
output c 0
initial s0
s0 -> s1 : a+ b+ / c+
s1 -> s2 : a- b- /
s2 -> s3 : a+ b+ / c-
s3 -> s0 : a- b- /
`
	// peSendSrc is the post-office send-interface controller.
	peSendSrc = `
name pesend
input req 0
input sendack 0
input done 0
output peack 0
output sendreq 0
initial idle
idle -> t1 : req+ / sendreq+
t1 -> t2 : sendack+ / peack+
t2 -> t3 : done+ / sendreq-
t3 -> t4 : sendack- done- / peack-
t4 -> idle : req- /
`
	// scsiSliceSrc is one channel of the SCSI controller: arbitration,
	// selection, transfer, release.
	scsiSliceSrc = `
name scsislice
input req 0
input busy 0
input sel 0
output drv 0
output grant 0
initial idle
idle -> arb : req+ / drv+
arb -> own : busy+ / grant+
own -> xfer : sel+ / drv-
xfer -> rel : busy- sel- / grant-
rel -> idle : req- /
`
	// abcsSliceSrc is one channel of the ABCS infrared-link control: an
	// eight-state double-lap protocol whose two laps emit different
	// strobe/latch patterns at identical input vectors.
	abcsSliceSrc = `
name abcsslice
input rx 0
input sync 0
output latch 0
output strobe 0
initial L0
L0 -> L1 : rx+ / latch+
L1 -> L2 : sync+ / strobe+
L2 -> L3 : rx- / latch-
L3 -> L4 : sync- /
L4 -> L5 : rx+ / strobe-
L5 -> L6 : sync+ / latch+
L6 -> L7 : rx- / latch-
L7 -> L0 : sync- /
`
	// deanSliceSrc is one channel of the dean-ctrl datapath controller: a
	// success/failure branch whose outcome states share the input vector
	// go=1,rdy=0,err=0 with three different output patterns.
	deanSliceSrc = `
name deanslice
input go 0
input rdy 0
input err 0
output run 0
output ok 0
output fail 0
initial idle
idle -> active : go+ / run+
active -> good : rdy+ / ok+
active -> bad : err+ / fail+
good -> gdone : rdy- / run-
bad -> bdone : err- / run-
gdone -> idle : go- / ok-
bdone -> idle : go- / fail-
`
)

// Design is one benchmark circuit: a mapper-ready combinational network.
type Design struct {
	Name string
	Net  *network.Network
	// Slices records how many controller slices the design contains.
	Slices int
}

// designSpec describes how a benchmark is assembled from slice sources.
type designSpec struct {
	name   string
	src    string
	copies int
	// Optional compact state encoding (default is one-hot). The "-opt"
	// variants of the paper's dme suite differ from their bases in how the
	// synthesis assigned states; we model that with gray-code vs one-hot
	// encodings of the same specifications.
	encoding map[string]uint64
	bits     int
	// chainLen > 1 daisy-chains the slices in groups: output chainOut of
	// slice i drives the first input of slice i+1 within a group, the way
	// a request propagates through the channels of one large controller
	// (or around a dme ring). Chaining is what makes the big designs'
	// critical paths grow with size, as in the paper's Table 5.
	chainLen int
	chainOut int
}

// table5Specs lists the paper's Table 5 designs in the paper's order, with
// replication factors chosen to preserve the paper's relative size
// ordering (vanbek-opt smallest … dean-ctrl largest).
var table5Specs = []designSpec{
	{name: "chu-ad-opt", src: chuAdSrc, copies: 1},
	{name: "dme-fast-opt", src: dmeFastSrc, copies: 1},
	{name: "dme-fast", src: dmeFastSrc, copies: 1,
		encoding: map[string]uint64{"idle": 0b00, "own": 0b01, "rel": 0b11, "fwd": 0b10}, bits: 2},
	{name: "dme-opt", src: dmeSrc, copies: 1},
	{name: "dme", src: dmeSrc, copies: 1,
		encoding: map[string]uint64{"idle": 0b000, "p1": 0b001, "p2": 0b011, "p3": 0b010, "p4": 0b110, "p5": 0b100}, bits: 3},
	{name: "oscsi-ctrl", src: scsiSliceSrc, copies: 34, chainLen: 10},
	{name: "pe-send-ifc", src: peSendSrc, copies: 8, chainLen: 6, chainOut: 1},
	{name: "vanbek-opt", src: vanbekSrc, copies: 1,
		encoding: map[string]uint64{"s0": 0b00, "s1": 0b01, "s2": 0b11, "s3": 0b10}, bits: 2},
	{name: "dean-ctrl", src: deanSliceSrc, copies: 61, chainLen: 14},
	{name: "scsi", src: scsiSliceSrc, copies: 66, chainLen: 11},
	{name: "abcs", src: abcsSliceSrc, copies: 17, chainLen: 9},
}

var (
	designOnce sync.Once
	designs    []*Design
	designErr  error
)

// Designs returns the benchmark suite (synthesised once, cached).
func Designs() ([]*Design, error) {
	designOnce.Do(func() {
		for _, spec := range table5Specs {
			d, err := buildDesign(spec)
			if err != nil {
				designErr = fmt.Errorf("bench: design %s: %w", spec.name, err)
				return
			}
			designs = append(designs, d)
		}
	})
	return designs, designErr
}

// DesignByName returns one benchmark design.
func DesignByName(name string) (*Design, error) {
	ds, err := Designs()
	if err != nil {
		return nil, err
	}
	for _, d := range ds {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown design %q", name)
}

// DesignNames lists the suite in Table 5 order.
func DesignNames() []string {
	names := make([]string, len(table5Specs))
	for i, s := range table5Specs {
		names[i] = s.name
	}
	return names
}

func buildDesign(spec designSpec) (*Design, error) {
	m, err := bmspec.ParseString(spec.src)
	if err != nil {
		return nil, err
	}
	if spec.encoding != nil {
		m.Encoding = spec.encoding
		m.StateBitN = spec.bits
	}
	syn, err := bmspec.Synthesize(m)
	if err != nil {
		return nil, err
	}
	net, err := Replicate(spec.name, syn.Net, spec.copies, spec.chainLen, spec.chainOut)
	if err != nil {
		return nil, err
	}
	return &Design{Name: spec.name, Net: net, Slices: spec.copies}, nil
}

// Replicate builds a network containing k copies of a slice network with
// disjoint, prefixed signal names — the multi-channel composition used for
// the large benchmarks. With chainLen > 1 the copies are daisy-chained in
// groups of chainLen: the first output of a copy drives the first input of
// the next copy in its group (a forward request chain), so the critical
// path deepens with the group length.
func Replicate(name string, slice *network.Network, k, chainLen, chainOut int) (*network.Network, error) {
	if k == 1 {
		out := network.New(name)
		if err := copyInto(out, slice, "", nil); err != nil {
			return nil, err
		}
		return out, nil
	}
	out := network.New(name)
	for i := 0; i < k; i++ {
		var alias map[string]string
		if chainLen > 1 && i%chainLen != 0 && len(slice.Inputs) > 0 && chainOut < len(slice.Outputs) {
			alias = map[string]string{
				slice.Inputs[0]: fmt.Sprintf("u%d_%s", i-1, slice.Outputs[chainOut]),
			}
		}
		if err := copyInto(out, slice, fmt.Sprintf("u%d_", i), alias); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// copyInto copies src into dst with every signal prefixed; alias maps
// selected source input names directly onto existing dst signals instead
// of declaring new primary inputs.
func copyInto(dst, src *network.Network, prefix string, alias map[string]string) error {
	ren := func(s string) string {
		if a, ok := alias[s]; ok {
			return a
		}
		return prefix + s
	}
	for _, in := range src.Inputs {
		if _, ok := alias[in]; ok {
			continue
		}
		if err := dst.AddInput(ren(in)); err != nil {
			return err
		}
	}
	order, err := src.TopoOrder()
	if err != nil {
		return err
	}
	for _, n := range order {
		node := src.Node(n)
		if err := dst.AddNode(ren(n), bexpr.Rename(node.Expr, ren)); err != nil {
			return err
		}
	}
	for _, o := range src.Outputs {
		if err := dst.MarkOutput(ren(o)); err != nil {
			return err
		}
	}
	return nil
}

// SliceSources exposes the named burst-mode sources (for the examples and
// the burstmode CLI).
func SliceSources() map[string]string {
	return map[string]string{
		"dme":      dmeSrc,
		"dme-fast": dmeFastSrc,
		"chu-ad":   chuAdSrc,
		"vanbek":   vanbekSrc,
		"pe-send":  peSendSrc,
		"scsi":     scsiSliceSrc,
		"abcs":     abcsSliceSrc,
		"dean":     deanSliceSrc,
	}
}

// SortedSliceNames lists SliceSources keys in sorted order.
func SortedSliceNames() []string {
	m := SliceSources()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
