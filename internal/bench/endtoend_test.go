package bench

import (
	"math/rand"
	"testing"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/dsim"
	"gfmap/internal/library"
)

// TestEndToEndGlitchFreedom is the paper's promise demonstrated through
// the entire flow: a burst-mode machine is synthesised to hazard-free
// logic, technology-mapped by the asynchronous mapper, and then *operated*
// by the event-driven delay simulator — every specified input burst, under
// dozens of adversarial gate/wire delay assignments, must produce
// glitch-free outputs and next-state signals.
func TestEndToEndGlitchFreedom(t *testing.T) {
	if testing.Short() {
		t.Skip("delay-simulation sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(41))
	for _, sliceName := range []string{"dme", "chu-ad", "scsi", "vanbek"} {
		for _, libName := range []string{"Actel", "CMOS3"} {
			m := bmspec.MustParseString(SliceSources()[sliceName])
			syn, err := bmspec.Synthesize(m)
			if err != nil {
				t.Fatalf("%s: %v", sliceName, err)
			}
			res, err := core.AsyncTmap(syn.Net, library.MustGet(libName), core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", sliceName, libName, err)
			}
			mappedNet, err := res.Netlist.ToNetwork()
			if err != nil {
				t.Fatal(err)
			}
			circuit, err := dsim.New(mappedNet)
			if err != nil {
				t.Fatal(err)
			}

			// Walk every machine edge; drive the mapped netlist through the
			// input burst under adversarial delays.
			walkEdges(t, m, func(state string, stateCode uint64, inBefore map[string]bool, e bmspec.Edge, inAfter map[string]bool) {
				initial := combInputs(m, inBefore, stateCode)
				var changes []dsim.InputChange
				for sig := range e.In.Signals() {
					changes = append(changes, dsim.InputChange{Signal: sig, Time: 1, Value: inAfter[sig]})
				}
				for trial := 0; trial < 25; trial++ {
					trace, err := circuit.Run(initial, changes, circuit.RandomDelays(rng))
					if err != nil {
						t.Fatalf("%s/%s edge %s->%s: %v", sliceName, libName, e.From, e.To, err)
					}
					for _, out := range mappedNet.Outputs {
						if trace.Glitched(out) {
							t.Fatalf("%s/%s: output %s glitched during burst %s of edge %s->%s (trial %d): %v",
								sliceName, libName, out, e.In, e.From, e.To, trial, trace.Waves[out])
						}
					}
				}
			})
		}
	}
}

// walkEdges visits every edge of the machine once, tracking the entry
// input vector of each state.
func walkEdges(t *testing.T, m *bmspec.Machine, visit func(state string, code uint64, inBefore map[string]bool, e bmspec.Edge, inAfter map[string]bool)) {
	t.Helper()
	entryIn := map[string]map[string]bool{m.Initial: copyBoolMap(m.InitialIn)}
	queue := []string{m.Initial}
	seen := map[string]bool{m.Initial: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range m.Edges {
			if e.From != s {
				continue
			}
			before := entryIn[s]
			after := copyBoolMap(before)
			for _, sig := range e.In.Rise {
				after[sig] = true
			}
			for _, sig := range e.In.Fall {
				after[sig] = false
			}
			visit(s, m.EncodingOf(s), before, e, after)
			if !seen[e.To] {
				seen[e.To] = true
				entryIn[e.To] = after
				queue = append(queue, e.To)
			}
		}
	}
}

func copyBoolMap(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// combInputs builds the combinational input assignment for a machine
// state: machine inputs plus one bit per state variable.
func combInputs(m *bmspec.Machine, in map[string]bool, code uint64) map[string]bool {
	out := copyBoolMap(in)
	for i := 0; i < m.StateBits(); i++ {
		out[stateVar(i)] = code&(1<<uint(i)) != 0
	}
	return out
}

func stateVar(i int) string {
	return "y" + string(rune('0'+i))
}

// TestMappedMachineConformance closes the loop functionally: the mapped
// netlist, operated as combinational-logic-plus-latches, reproduces the
// burst-mode machine's specified behaviour along every edge.
func TestMappedMachineConformance(t *testing.T) {
	for _, sliceName := range SortedSliceNames() {
		m := bmspec.MustParseString(SliceSources()[sliceName])
		syn, err := bmspec.Synthesize(m)
		if err != nil {
			t.Fatalf("%s: %v", sliceName, err)
		}
		res, err := core.AsyncTmap(syn.Net, library.MustGet("LSI9K"), core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sliceName, err)
		}
		mappedNet, err := res.Netlist.ToNetwork()
		if err != nil {
			t.Fatal(err)
		}

		entryOut := map[string]map[string]bool{m.Initial: copyBoolMap(m.InitialOut)}
		walkEdges(t, m, func(state string, code uint64, inBefore map[string]bool, e bmspec.Edge, inAfter map[string]bool) {
			expectedOut := copyBoolMap(entryOut[state])
			for _, sig := range e.Out.Rise {
				expectedOut[sig] = true
			}
			for _, sig := range e.Out.Fall {
				expectedOut[sig] = false
			}
			entryOut[e.To] = expectedOut

			vals, err := mappedNet.Eval(combInputs(m, inAfter, code))
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range m.Outputs {
				if vals[o] != expectedOut[o] {
					t.Errorf("%s: edge %s->%s: mapped output %s = %v, want %v",
						sliceName, e.From, e.To, o, vals[o], expectedOut[o])
				}
			}
			// Next state must be the target's code.
			var next uint64
			for i := 0; i < m.StateBits(); i++ {
				if vals["Y"+string(rune('0'+i))] {
					next |= 1 << uint(i)
				}
			}
			if next != m.EncodingOf(e.To) {
				t.Errorf("%s: edge %s->%s: next state %b, want %b",
					sliceName, e.From, e.To, next, m.EncodingOf(e.To))
			}
		})
	}
}
