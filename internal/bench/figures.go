package bench

import (
	"fmt"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/core"
	"gfmap/internal/cube"
	"gfmap/internal/eqn"
	"gfmap/internal/hazard"
	"gfmap/internal/library"
)

// Figures regenerates the conceptual figures of the paper as computed
// facts: each section runs the relevant algorithms and prints what the
// figure illustrates. The deterministic assertions behind each figure live
// in the test suite; this rendition is for human inspection via
// `paperbench -figures`.
func Figures() (string, error) {
	var b strings.Builder
	wxyz := []string{"w", "x", "y", "z"}

	fmt.Fprintln(&b, "Figure 2a — static s.i.c. 1-hazard and its consensus repair")
	f2 := cube.MustParseCover("w'yz + wxy", wxyz)
	for _, rec := range hazard.Static1Hazards(f2) {
		fmt.Fprintf(&b, "  f = %s: uncovered transition region %s\n",
			f2.StringVars(wxyz), rec.T.StringVars(wxyz))
	}
	fixed, err := hazard.RepairStatic1(f2)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  repaired: %s (hazard-free: %v)\n\n",
		fixed.StringVars(wxyz), len(hazard.Static1Hazards(fixed)) == 0)

	fmt.Fprintln(&b, "Figure 3 — Boolean matching can choose a cover with more hazards")
	src := "INPUT(a, b, c)\nOUTPUT(f)\nf = a*b + a'*c + b*c;\n"
	net, err := eqn.ParseString(src, "fig3")
	if err != nil {
		return "", err
	}
	lib, err := library.Get("LSI9K")
	if err != nil {
		return "", err
	}
	for _, mode := range []core.Mode{core.Sync, core.Async} {
		n2, _ := eqn.ParseString(src, "fig3")
		res, err := core.Map(n2, lib, core.Options{Mode: mode})
		if err != nil {
			return "", err
		}
		rep, err := core.VerifyHazardSafety(net, res.Netlist)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-5v cover: area %g, %d gates, new hazards: %d\n",
			mode, res.Area, res.Netlist.GateCount(), rep.NewHazards)
	}
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Figure 4 — same function, different structure, different hazards")
	for _, e := range []string{"w*y + x*y", "(w + x)*y"} {
		set := hazard.MustAnalyze(bexpr.MustParse(e))
		fmt.Fprintf(&b, "  %-12s -> %s\n", e, set)
	}
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Figure 5 — CONFLICTS vector adjacency detection")
	c1 := cube.MustParseCube("wx'y", wxyz)
	c2 := cube.MustParseCube("wxy", wxyz)
	adj, _ := cube.Consensus(c1, c2)
	fmt.Fprintf(&b, "  CONFLICTS(%s, %s) = %04b -> adjacency cube %s\n\n",
		c1.StringVars(wxyz), c2.StringVars(wxyz), cube.Conflicts(c1, c2), adj.StringVars(wxyz))

	fmt.Fprintln(&b, "Figure 6 — reconvergence hazards (McCluskey circuit)")
	f6, err := bexpr.NewWithVars(bexpr.MustParseExpr("(w + y' + x')*(x*y + y'*z)"), wxyz)
	if err != nil {
		return "", err
	}
	s0, err := hazard.Static0Hazards(f6)
	if err != nil {
		return "", err
	}
	sic, err := hazard.SicDynHazards(f6)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  f = %s\n  static-0 records: %d, s.i.c. dynamic records: %d\n\n",
		f6, len(s0), len(sic))

	fmt.Fprintln(&b, "Figures 8/10 — findMicDynHaz2level on f = w'xz + w'xy + xyz")
	f8, err := bexpr.NewWithVars(bexpr.MustParseExpr("w'*x*z + w'*x*y + x*y*z"), wxyz)
	if err != nil {
		return "", err
	}
	cov := f8.MustCover()
	for _, rec := range hazard.MicDynHaz2Level(cov) {
		fmt.Fprintf(&b, "  intersection %s: |alpha| = %d, |beta| = %d\n",
			rec.Intersection.StringVars(wxyz), len(rec.Alpha), len(rec.Beta))
		for _, a := range rec.Alpha {
			fmt.Fprintf(&b, "    alpha: %s\n", a.StringVars(wxyz))
		}
		for _, be := range rec.Beta {
			fmt.Fprintf(&b, "    beta:  %s\n", be.StringVars(wxyz))
		}
	}
	dyn := hazard.MustAnalyze(f8)
	fmt.Fprintf(&b, "  exact dynamic hazard count: %d\n", len(dyn.Dynamic))
	return b.String(), nil
}
