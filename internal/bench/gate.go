package bench

// The benchmark regression gate: compares a fresh report against the
// newest checked-in trajectory file (benchdata/BENCH_*.json) and flags
// designs whose wall time, allocation count or mapping quality regressed
// past the thresholds. Quality (area/delay/gates) and allocation counts
// are deterministic, so they gate unconditionally; wall time is gated
// only between reports whose environment fingerprints are comparable —
// a baseline recorded on different hardware says nothing about speed.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GateThresholds bounds how much worse a fresh report may be before the
// gate fails. Ratios are fresh/baseline; zero fields get the defaults.
type GateThresholds struct {
	// MaxWallRatio gates best-of-runs wall time; 0 means 1.5 (noise from
	// shared CI runners needs generous headroom).
	MaxWallRatio float64
	// WallFloorMS exempts designs from the wall gate while both sides
	// map in under this many milliseconds — scheduler noise dominates
	// sub-floor timings and a ratio on them is meaningless; 0 means 10.
	WallFloorMS float64
	// MaxAllocRatio gates allocations per mapping; 0 means 1.3.
	MaxAllocRatio float64
	// MaxAreaRatio and MaxDelayRatio gate mapped QoR. The mapper is
	// deterministic, so these are tight: 0 means 1.02 and 1.05.
	MaxAreaRatio  float64
	MaxDelayRatio float64
}

func (t GateThresholds) withDefaults() GateThresholds {
	if t.MaxWallRatio <= 0 {
		t.MaxWallRatio = 1.5
	}
	if t.WallFloorMS <= 0 {
		t.WallFloorMS = 10
	}
	if t.MaxAllocRatio <= 0 {
		t.MaxAllocRatio = 1.3
	}
	if t.MaxAreaRatio <= 0 {
		t.MaxAreaRatio = 1.02
	}
	if t.MaxDelayRatio <= 0 {
		t.MaxDelayRatio = 1.05
	}
	return t
}

// Regression is one gated metric that got worse than its threshold
// allows on one design.
type Regression struct {
	Design string  `json:"design"`
	Metric string  `json:"metric"` // "wall_ms", "allocs_per_op", "area", "delay"
	Base   float64 `json:"base"`
	Fresh  float64 `json:"fresh"`
	Ratio  float64 `json:"ratio"`
	Limit  float64 `json:"limit"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, limit %.2fx)",
		r.Design, r.Metric, r.Base, r.Fresh, r.Ratio, r.Limit)
}

// Comparable reports whether wall times from two fingerprints can be
// meaningfully compared: same platform and CPU count. Go version and
// git revision may differ — that is exactly what the trajectory tracks.
func Comparable(a, b Fingerprint) bool {
	return a.GOOS == b.GOOS && a.GOARCH == b.GOARCH && a.NumCPU == b.NumCPU
}

// CompareReports gates fresh against base, returning the regressions
// past threshold and human-readable notes on what was (and was not)
// compared. An empty regression list means the gate passes.
func CompareReports(base, fresh *Report, th GateThresholds) ([]Regression, []string) {
	th = th.withDefaults()
	var regs []Regression
	var notes []string

	if base.Fingerprint.Library != fresh.Fingerprint.Library {
		notes = append(notes, fmt.Sprintf(
			"libraries differ (%s vs %s): only wall/alloc trends are meaningless, skipping all gates",
			base.Fingerprint.Library, fresh.Fingerprint.Library))
		return nil, notes
	}
	wallOK := Comparable(base.Fingerprint, fresh.Fingerprint)
	if !wallOK {
		notes = append(notes, fmt.Sprintf(
			"fingerprints not comparable (%s/%s %d-cpu vs %s/%s %d-cpu): wall-time gate skipped",
			base.Fingerprint.GOOS, base.Fingerprint.GOARCH, base.Fingerprint.NumCPU,
			fresh.Fingerprint.GOOS, fresh.Fingerprint.GOARCH, fresh.Fingerprint.NumCPU))
	}

	baseBy := make(map[string]DesignReport, len(base.Designs))
	for _, d := range base.Designs {
		baseBy[d.Design] = d
	}
	compared := 0
	for _, f := range fresh.Designs {
		b, ok := baseBy[f.Design]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new design, no baseline (skipped)", f.Design))
			continue
		}
		delete(baseBy, f.Design)
		compared++
		check := func(metric string, bv, fv, limit float64) {
			if bv <= 0 {
				return // nothing to ratio against
			}
			if ratio := fv / bv; ratio > limit {
				regs = append(regs, Regression{
					Design: f.Design, Metric: metric,
					Base: bv, Fresh: fv, Ratio: ratio, Limit: limit,
				})
			}
		}
		check("area", b.Area, f.Area, th.MaxAreaRatio)
		check("delay", b.Delay, f.Delay, th.MaxDelayRatio)
		check("allocs_per_op", float64(b.AllocsPerOp), float64(f.AllocsPerOp), th.MaxAllocRatio)
		if wallOK && (b.WallMS >= th.WallFloorMS || f.WallMS >= th.WallFloorMS) {
			check("wall_ms", b.WallMS, f.WallMS, th.MaxWallRatio)
		}
	}
	for name := range baseBy {
		notes = append(notes, fmt.Sprintf("%s: in baseline but not in fresh report", name))
	}
	if compared == 0 {
		notes = append(notes, "no common designs: nothing was gated")
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Design != regs[j].Design {
			return regs[i].Design < regs[j].Design
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(notes)
	return regs, notes
}

// LoadReport reads one BENCH_*.json trajectory file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if len(rep.Designs) == 0 {
		return nil, fmt.Errorf("bench: %s has no designs", path)
	}
	return &rep, nil
}

// NewestBenchFile finds the most recent BENCH_*.json in dir, ordered by
// the reports' CreatedAt stamps (file modification time breaks ties and
// covers reports that predate the stamp).
func NewestBenchFile(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("bench: no BENCH_*.json files in %s", dir)
	}
	type cand struct {
		path    string
		created string
		mod     int64
	}
	cands := make([]cand, 0, len(paths))
	for _, p := range paths {
		c := cand{path: p}
		if fi, err := os.Stat(p); err == nil {
			c.mod = fi.ModTime().UnixNano()
		}
		if rep, err := LoadReport(p); err == nil {
			c.created = rep.CreatedAt
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].created != cands[j].created {
			return cands[i].created > cands[j].created // RFC3339 sorts lexically
		}
		if cands[i].mod != cands[j].mod {
			return cands[i].mod > cands[j].mod
		}
		return cands[i].path > cands[j].path
	})
	return cands[0].path, nil
}

// BenchFileName names a trajectory file for a report: BENCH_<rev>.json,
// where rev is the git describe string (path-safe) or the created-at
// stamp when the revision is unknown.
func BenchFileName(rep *Report) string {
	rev := rep.Fingerprint.GitDescribe
	if rev == "" {
		rev = strings.NewReplacer(":", "", "-", "", "+", "").Replace(rep.CreatedAt)
	}
	rev = strings.NewReplacer("/", "_", " ", "_").Replace(rev)
	return "BENCH_" + rev + ".json"
}
