package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func fakeReport(lib string, designs ...DesignReport) *Report {
	return &Report{
		Fingerprint: NewFingerprint(lib),
		CreatedAt:   "2026-08-07T00:00:00Z",
		Mode:        "async",
		Runs:        1,
		Designs:     designs,
	}
}

func findReg(regs []Regression, design, metric string) *Regression {
	for i := range regs {
		if regs[i].Design == design && regs[i].Metric == metric {
			return &regs[i]
		}
	}
	return nil
}

// A deliberate regression in a fixture must fail the gate; matching
// reports must pass it.
func TestCompareReportsCatchesRegressions(t *testing.T) {
	base := fakeReport("LSI9K",
		DesignReport{Design: "a", Area: 100, Delay: 10, WallMS: 20, AllocsPerOp: 1000},
		DesignReport{Design: "b", Area: 50, Delay: 8, WallMS: 5, AllocsPerOp: 400},
	)
	clean := fakeReport("LSI9K",
		DesignReport{Design: "a", Area: 100, Delay: 10, WallMS: 21, AllocsPerOp: 1010},
		DesignReport{Design: "b", Area: 49, Delay: 8, WallMS: 4, AllocsPerOp: 380},
	)
	if regs, _ := CompareReports(base, clean, GateThresholds{}); len(regs) != 0 {
		t.Fatalf("clean report flagged: %v", regs)
	}

	bad := fakeReport("LSI9K",
		// area +10% (limit 2%), wall 3x (limit 1.5x)
		DesignReport{Design: "a", Area: 110, Delay: 10, WallMS: 60, AllocsPerOp: 1000},
		// allocs 2x (limit 1.3x)
		DesignReport{Design: "b", Area: 50, Delay: 8, WallMS: 5, AllocsPerOp: 800},
	)
	regs, _ := CompareReports(base, bad, GateThresholds{})
	for _, want := range []struct{ design, metric string }{
		{"a", "area"}, {"a", "wall_ms"}, {"b", "allocs_per_op"},
	} {
		if findReg(regs, want.design, want.metric) == nil {
			t.Errorf("missed regression %s/%s in %v", want.design, want.metric, regs)
		}
	}
	if r := findReg(regs, "b", "area"); r != nil {
		t.Errorf("false positive: %v", *r)
	}
	if r := findReg(regs, "a", "wall_ms"); r != nil && (r.Ratio < 2.9 || r.Limit != 1.5) {
		t.Errorf("wall regression ratio/limit wrong: %+v", *r)
	}
}

// Sub-floor wall times are scheduler noise: a 3x ratio between 1ms and
// 3ms is exempt, but a sub-floor baseline blowing past the floor is not.
func TestCompareReportsWallFloor(t *testing.T) {
	base := fakeReport("LSI9K",
		DesignReport{Design: "tiny", Area: 10, WallMS: 1},
		DesignReport{Design: "blown", Area: 10, WallMS: 1},
	)
	fresh := fakeReport("LSI9K",
		DesignReport{Design: "tiny", Area: 10, WallMS: 3},
		DesignReport{Design: "blown", Area: 10, WallMS: 50},
	)
	regs, _ := CompareReports(base, fresh, GateThresholds{})
	if findReg(regs, "tiny", "wall_ms") != nil {
		t.Errorf("sub-floor noise gated: %v", regs)
	}
	if findReg(regs, "blown", "wall_ms") == nil {
		t.Errorf("floor exempted a real blow-up: %v", regs)
	}
}

// Wall time is only gated between comparable fingerprints; QoR and
// allocation gates always apply.
func TestCompareReportsSkipsWallAcrossMachines(t *testing.T) {
	base := fakeReport("LSI9K", DesignReport{Design: "a", Area: 100, Delay: 10, WallMS: 1, AllocsPerOp: 100})
	base.Fingerprint.GOARCH = "otherarch"
	base.Fingerprint.NumCPU = 999
	fresh := fakeReport("LSI9K", DesignReport{Design: "a", Area: 300, Delay: 10, WallMS: 100, AllocsPerOp: 100})
	regs, notes := CompareReports(base, fresh, GateThresholds{})
	if findReg(regs, "a", "wall_ms") != nil {
		t.Errorf("wall gated across incomparable fingerprints: %v", regs)
	}
	if findReg(regs, "a", "area") == nil {
		t.Errorf("area regression not gated across machines: %v", regs)
	}
	found := false
	for _, n := range notes {
		if len(n) > 0 && (n[0] == 'f') { // "fingerprints not comparable..."
			found = true
		}
	}
	if !found {
		t.Errorf("no note about the skipped wall gate: %v", notes)
	}
}

// Different libraries are never gated against each other.
func TestCompareReportsDifferentLibraries(t *testing.T) {
	base := fakeReport("LSI9K", DesignReport{Design: "a", Area: 1})
	fresh := fakeReport("CMOS3", DesignReport{Design: "a", Area: 100})
	regs, notes := CompareReports(base, fresh, GateThresholds{})
	if len(regs) != 0 || len(notes) == 0 {
		t.Errorf("cross-library gate ran: regs=%v notes=%v", regs, notes)
	}
}

// Corpus drift is reported as notes, not failures: new designs have no
// baseline, removed designs are named.
func TestCompareReportsCorpusDrift(t *testing.T) {
	base := fakeReport("LSI9K",
		DesignReport{Design: "kept", Area: 10, WallMS: 1},
		DesignReport{Design: "removed", Area: 10, WallMS: 1},
	)
	fresh := fakeReport("LSI9K",
		DesignReport{Design: "kept", Area: 10, WallMS: 1},
		DesignReport{Design: "added", Area: 10, WallMS: 1},
	)
	regs, notes := CompareReports(base, fresh, GateThresholds{})
	if len(regs) != 0 {
		t.Fatalf("drift flagged as regression: %v", regs)
	}
	text := ""
	for _, n := range notes {
		text += n + "\n"
	}
	for _, want := range []string{"added", "removed"} {
		if !containsStr(text, want) {
			t.Errorf("notes missing %q:\n%s", want, text)
		}
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func writeReportFile(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewestBenchFileAndLoad(t *testing.T) {
	dir := t.TempDir()
	old := fakeReport("LSI9K", DesignReport{Design: "a", Area: 1})
	old.CreatedAt = "2026-01-01T00:00:00Z"
	newer := fakeReport("LSI9K", DesignReport{Design: "a", Area: 2})
	newer.CreatedAt = "2026-08-01T00:00:00Z"
	writeReportFile(t, dir, "BENCH_zzz-old.json", old)
	want := writeReportFile(t, dir, "BENCH_aaa-new.json", newer)

	got, err := NewestBenchFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("NewestBenchFile = %s, want %s (CreatedAt beats name order)", got, want)
	}
	rep, err := LoadReport(got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Designs[0].Area != 2 {
		t.Errorf("loaded wrong report: %+v", rep.Designs[0])
	}

	if _, err := NewestBenchFile(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
	if _, err := LoadReport(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestBenchFileName(t *testing.T) {
	rep := fakeReport("LSI9K")
	rep.Fingerprint.GitDescribe = "be41b3d-dirty"
	if got := BenchFileName(rep); got != "BENCH_be41b3d-dirty.json" {
		t.Errorf("BenchFileName = %q", got)
	}
	rep.Fingerprint.GitDescribe = ""
	got := BenchFileName(rep)
	if got == "BENCH_.json" || containsStr(got, ":") {
		t.Errorf("rev-less name %q", got)
	}
}
