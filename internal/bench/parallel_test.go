package bench

import (
	"sync"
	"testing"

	"gfmap/internal/core"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
)

// TestParallelSharedCacheStress maps benchmark designs with many workers
// through one shared hazard-analysis cache, from two goroutines at once
// (run under -race in CI). Every run must reproduce the serial,
// cache-disabled reference bit for bit, and on the hazard-exercising
// library every multi-cone design must see a nonzero cache hit rate.
func TestParallelSharedCacheStress(t *testing.T) {
	ds, err := Designs()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := library.Get("Actel")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		ds = ds[:5] // skip the big replicated controllers
	}
	cache := hazcache.New(0)
	for _, d := range ds {
		ref, err := core.AsyncTmap(d.Net, lib, core.Options{Workers: 1, DisableHazardCache: true})
		if err != nil {
			t.Fatalf("%s: reference: %v", d.Name, err)
		}
		var wg sync.WaitGroup
		results := make([]*core.Result, 2)
		errs := make([]error, 2)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = core.AsyncTmap(d.Net, lib,
					core.Options{Workers: 8, HazardCache: cache})
			}(i)
		}
		wg.Wait()
		for i, res := range results {
			if errs[i] != nil {
				t.Fatalf("%s: run %d: %v", d.Name, i, errs[i])
			}
			if res.Netlist.String() != ref.Netlist.String() {
				t.Errorf("%s: run %d netlist differs from serial cache-disabled reference", d.Name, i)
			}
			if got, want := res.Stats.Deterministic(), ref.Stats.Deterministic(); got != want {
				t.Errorf("%s: run %d deterministic stats differ:\n got %+v\nwant %+v", d.Name, i, got, want)
			}
			if res.Stats.HazardAnalyses() > 0 && res.Stats.HazCacheHitRate() == 0 {
				t.Errorf("%s: run %d: zero cache hit rate over %d analyses",
					d.Name, i, res.Stats.HazardAnalyses())
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("stress run never hit the shared cache: %+v", st)
	}
}
