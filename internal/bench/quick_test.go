package bench

import "testing"

func TestDesignsBuild(t *testing.T) {
	ds, err := Designs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 11 {
		t.Fatalf("got %d designs, want 11", len(ds))
	}
	for _, d := range ds {
		if err := d.Net.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		t.Logf("%s: %d inputs, %d nodes, %d slices", d.Name, len(d.Net.Inputs), d.Net.NumNodes(), d.Slices)
	}
}
