package bench

// Machine-readable benchmark reports: every JSON report is stamped with
// an environment fingerprint (go version, platform, CPU count, library,
// git revision) so bench trajectory files collected on different
// machines stay comparable, and each design row carries the observability
// histograms (hazard-analysis latency, cuts per node, cluster widths)
// alongside the deterministic mapper statistics.

import (
	"os/exec"
	"runtime"
	"strings"
	"time"

	"gfmap/internal/core"
	"gfmap/internal/library"
	"gfmap/internal/obs"
)

// Fingerprint identifies the environment a report was produced in.
// Reports from different machines are only comparable once their
// fingerprints have been compared first.
type Fingerprint struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Library is the cell library every design in the report was mapped
	// onto.
	Library string `json:"library"`
	// GitDescribe is `git describe --always --dirty` of the working tree,
	// empty when git (or a repository) is unavailable.
	GitDescribe string `json:"git_describe,omitempty"`
}

// NewFingerprint collects the environment fingerprint for a report over
// the named library.
func NewFingerprint(libName string) Fingerprint {
	return Fingerprint{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Library:     libName,
		GitDescribe: gitDescribe(),
	}
}

func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// DesignReport is one benchmark design mapped with full observability:
// the deterministic mapping summary plus per-design histogram summaries
// snapshotted from the metrics registry.
type DesignReport struct {
	Design string  `json:"design"`
	Slices int     `json:"slices"`
	Gates  int     `json:"gates"`
	Area   float64 `json:"area"`
	Delay  float64 `json:"delay"`

	// WallMS is the best-of-Runs wall time of one full mapping, in
	// milliseconds. Best-of (not mean) because scheduling noise only ever
	// adds time; the minimum is the most reproducible point estimate.
	WallMS float64 `json:"wall_ms"`
	// AllocsPerOp / BytesPerOp are the heap allocation count and bytes of
	// the fastest run, measured with runtime.ReadMemStats deltas around
	// the mapping call. Counts are process-wide, so runs execute serially.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// HazCacheHitRate is (local + shared hits) / all analyses for this
	// design's run; StoreHitRate is store hits / cone lookups (0 without
	// a store). Both come from the run's own core.Stats.
	HazCacheHitRate float64 `json:"hazcache_hit_rate"`
	StoreHitRate    float64 `json:"store_hit_rate"`

	Stats core.Stats `json:"stats"`
	// Histograms carries the core.Metric* distributions for this design
	// (hazard-analysis latency in seconds, per-cone covering latency,
	// cuts per node, cluster leaf widths).
	Histograms map[string]obs.HistSnapshot `json:"histograms"`
	// HazardP50 / HazardP99 are bucket-quantile estimates of the
	// hazard-analysis latency in seconds, duplicated out of Histograms
	// for easy plotting.
	HazardP50 float64 `json:"hazard_p50_seconds"`
	HazardP99 float64 `json:"hazard_p99_seconds"`
}

// Report is the top-level JSON benchmark report — one point on the
// checked-in perf trajectory (benchdata/BENCH_*.json).
type Report struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	// CreatedAt orders trajectory files (RFC3339, UTC).
	CreatedAt string `json:"created_at"`
	Mode      string `json:"mode"`
	// Runs is how many times each design was mapped; wall time and
	// allocations report the fastest run.
	Runs int `json:"runs"`
	// Synthetic records whether the diffcheck-generated corpus rode along
	// with the paper suite. Reports with different corpora are only
	// compared design-by-design on their intersection.
	Synthetic bool           `json:"synthetic"`
	Designs   []DesignReport `json:"designs"`
}

// ReportOptions tunes JSONReport. The zero value maps the full corpus
// (paper suite plus synthetic designs) once per design.
type ReportOptions struct {
	// Runs maps each design this many times, keeping the fastest wall
	// time; 0 means 1.
	Runs int
	// NoSynthetic restricts the corpus to the paper suite.
	NoSynthetic bool
	// NoArenas maps every design with core.Options.DisableArenas, i.e.
	// the historical per-call allocation path. Netlists and deterministic
	// stats are identical either way; the per-design allocs_per_op /
	// bytes_per_op rows are what the A/B is for.
	NoArenas bool
}

// JSONReport maps the benchmark corpus onto the named library in
// asynchronous mode and assembles the fingerprinted report: the paper's
// Table 5 suite plus (by default) the synthetic scaling corpus, each
// design with wall time, allocation counts, cache hit rates and the
// observability histograms.
func JSONReport(libName string, opts ReportOptions) (*Report, error) {
	lib, err := library.Get(libName)
	if err != nil {
		return nil, err
	}
	ds, err := Designs()
	if err != nil {
		return nil, err
	}
	if !opts.NoSynthetic {
		synth, err := SynthDesigns()
		if err != nil {
			return nil, err
		}
		ds = append(append([]*Design(nil), ds...), synth...)
	}
	runs := opts.Runs
	if runs <= 0 {
		runs = 1
	}
	rep := &Report{
		Fingerprint: NewFingerprint(lib.Name),
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Mode:        core.Async.String(),
		Runs:        runs,
		Synthetic:   !opts.NoSynthetic,
	}
	for _, d := range ds {
		dr, err := benchDesign(d, lib, runs, opts.NoArenas)
		if err != nil {
			return nil, err
		}
		rep.Designs = append(rep.Designs, dr)
	}
	return rep, nil
}

// benchDesign maps one design runs times and keeps the fastest run's
// wall time and allocation deltas alongside the (run-invariant) QoR and
// metrics snapshot of the final run.
func benchDesign(d *Design, lib *library.Library, runs int, noArenas bool) (DesignReport, error) {
	var (
		bestWall   time.Duration
		bestAllocs uint64
		bestBytes  uint64
		res        *core.Result
		reg        *obs.Registry
	)
	for r := 0; r < runs; r++ {
		reg = obs.NewRegistry()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rr, err := core.AsyncTmap(d.Net, lib, core.Options{Metrics: reg, DisableArenas: noArenas})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return DesignReport{}, err
		}
		res = rr
		if r == 0 || wall < bestWall {
			bestWall = wall
			bestAllocs = after.Mallocs - before.Mallocs
			bestBytes = after.TotalAlloc - before.TotalAlloc
		}
	}
	snap := reg.Snapshot()
	hists := map[string]obs.HistSnapshot{
		core.MetricHazardSeconds: snap.Histograms[core.MetricHazardSeconds],
		core.MetricConeSeconds:   snap.Histograms[core.MetricConeSeconds],
		core.MetricCutsPerNode:   snap.Histograms[core.MetricCutsPerNode],
		core.MetricClusterLeaves: snap.Histograms[core.MetricClusterLeaves],
	}
	haz := hists[core.MetricHazardSeconds]
	st := res.Stats
	hazHits := float64(st.HazCacheLocalHits + st.HazCacheHits)
	hazTotal := hazHits + float64(st.HazCacheMisses)
	storeTotal := float64(st.StoreHits + st.StoreMisses)
	dr := DesignReport{
		Design:      d.Name,
		Slices:      d.Slices,
		Gates:       res.Netlist.GateCount(),
		Area:        res.Area,
		Delay:       res.Delay,
		WallMS:      float64(bestWall) / float64(time.Millisecond),
		AllocsPerOp: bestAllocs,
		BytesPerOp:  bestBytes,
		Stats:       st,
		Histograms:  hists,
		HazardP50:   haz.Quantile(0.50),
		HazardP99:   haz.Quantile(0.99),
	}
	if hazTotal > 0 {
		dr.HazCacheHitRate = hazHits / hazTotal
	}
	if storeTotal > 0 {
		dr.StoreHitRate = float64(st.StoreHits) / storeTotal
	}
	return dr, nil
}
