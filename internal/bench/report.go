package bench

// Machine-readable benchmark reports: every JSON report is stamped with
// an environment fingerprint (go version, platform, CPU count, library,
// git revision) so bench trajectory files collected on different
// machines stay comparable, and each design row carries the observability
// histograms (hazard-analysis latency, cuts per node, cluster widths)
// alongside the deterministic mapper statistics.

import (
	"os/exec"
	"runtime"
	"strings"

	"gfmap/internal/core"
	"gfmap/internal/library"
	"gfmap/internal/obs"
)

// Fingerprint identifies the environment a report was produced in.
// Reports from different machines are only comparable once their
// fingerprints have been compared first.
type Fingerprint struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Library is the cell library every design in the report was mapped
	// onto.
	Library string `json:"library"`
	// GitDescribe is `git describe --always --dirty` of the working tree,
	// empty when git (or a repository) is unavailable.
	GitDescribe string `json:"git_describe,omitempty"`
}

// NewFingerprint collects the environment fingerprint for a report over
// the named library.
func NewFingerprint(libName string) Fingerprint {
	return Fingerprint{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Library:     libName,
		GitDescribe: gitDescribe(),
	}
}

func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// DesignReport is one benchmark design mapped with full observability:
// the deterministic mapping summary plus per-design histogram summaries
// snapshotted from the metrics registry.
type DesignReport struct {
	Design string  `json:"design"`
	Slices int     `json:"slices"`
	Gates  int     `json:"gates"`
	Area   float64 `json:"area"`
	Delay  float64 `json:"delay"`

	Stats core.Stats `json:"stats"`
	// Histograms carries the core.Metric* distributions for this design
	// (hazard-analysis latency in seconds, per-cone covering latency,
	// cuts per node, cluster leaf widths).
	Histograms map[string]obs.HistSnapshot `json:"histograms"`
	// HazardP50 / HazardP99 are bucket-quantile estimates of the
	// hazard-analysis latency in seconds, duplicated out of Histograms
	// for easy plotting.
	HazardP50 float64 `json:"hazard_p50_seconds"`
	HazardP99 float64 `json:"hazard_p99_seconds"`
}

// Report is the top-level JSON benchmark report.
type Report struct {
	Fingerprint Fingerprint    `json:"fingerprint"`
	Mode        string         `json:"mode"`
	Designs     []DesignReport `json:"designs"`
}

// JSONReport maps every benchmark design onto the named library in
// asynchronous mode with a metrics registry attached, and assembles the
// fingerprinted report.
func JSONReport(libName string) (*Report, error) {
	lib, err := library.Get(libName)
	if err != nil {
		return nil, err
	}
	ds, err := Designs()
	if err != nil {
		return nil, err
	}
	rep := &Report{Fingerprint: NewFingerprint(lib.Name), Mode: core.Async.String()}
	for _, d := range ds {
		reg := obs.NewRegistry()
		res, err := core.AsyncTmap(d.Net, lib, core.Options{Metrics: reg})
		if err != nil {
			return nil, err
		}
		snap := reg.Snapshot()
		hists := map[string]obs.HistSnapshot{
			core.MetricHazardSeconds: snap.Histograms[core.MetricHazardSeconds],
			core.MetricConeSeconds:   snap.Histograms[core.MetricConeSeconds],
			core.MetricCutsPerNode:   snap.Histograms[core.MetricCutsPerNode],
			core.MetricClusterLeaves: snap.Histograms[core.MetricClusterLeaves],
		}
		haz := hists[core.MetricHazardSeconds]
		rep.Designs = append(rep.Designs, DesignReport{
			Design:     d.Name,
			Slices:     d.Slices,
			Gates:      res.Netlist.GateCount(),
			Area:       res.Area,
			Delay:      res.Delay,
			Stats:      res.Stats,
			Histograms: hists,
			HazardP50:  haz.Quantile(0.50),
			HazardP99:  haz.Quantile(0.99),
		})
	}
	return rep, nil
}
