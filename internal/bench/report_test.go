package bench

import (
	"encoding/json"
	"runtime"
	"testing"

	"gfmap/internal/core"
)

func TestFingerprint(t *testing.T) {
	fp := NewFingerprint("LSI9K")
	if fp.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", fp.GoVersion, runtime.Version())
	}
	if fp.GOOS != runtime.GOOS || fp.GOARCH != runtime.GOARCH {
		t.Errorf("platform = %s/%s, want %s/%s", fp.GOOS, fp.GOARCH, runtime.GOOS, runtime.GOARCH)
	}
	if fp.NumCPU < 1 || fp.GOMAXPROCS < 1 {
		t.Errorf("CPU fields unset: %+v", fp)
	}
	if fp.Library != "LSI9K" {
		t.Errorf("Library = %q", fp.Library)
	}
}

func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the whole suite")
	}
	rep, err := JSONReport("Actel", ReportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(DesignNames()) + len(SynthDesignNames())
	if len(rep.Designs) != want {
		t.Fatalf("report has %d designs, want %d (paper suite + synthetic corpus)", len(rep.Designs), want)
	}
	if rep.Mode != "async" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if !rep.Synthetic || rep.Runs != 1 {
		t.Errorf("corpus flags: synthetic=%v runs=%d", rep.Synthetic, rep.Runs)
	}
	if rep.CreatedAt == "" {
		t.Error("report missing created_at stamp")
	}
	var sawHazard bool
	for _, d := range rep.Designs {
		if d.Gates == 0 || d.Area == 0 {
			t.Errorf("%s: empty mapping in report", d.Design)
		}
		if d.WallMS <= 0 || d.AllocsPerOp == 0 {
			t.Errorf("%s: missing perf columns: wall=%g allocs=%d", d.Design, d.WallMS, d.AllocsPerOp)
		}
		h, ok := d.Histograms[core.MetricCutsPerNode]
		if !ok || h.Count == 0 {
			t.Errorf("%s: cuts-per-node histogram missing or empty", d.Design)
		}
		if d.Histograms[core.MetricHazardSeconds].Count > 0 {
			sawHazard = true
			if d.HazardP99 < d.HazardP50 {
				t.Errorf("%s: p99 %g < p50 %g", d.Design, d.HazardP99, d.HazardP50)
			}
		}
	}
	if !sawHazard {
		t.Error("no design recorded hazard-analysis latencies on Actel")
	}
	// The report must round-trip through JSON.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint.GoVersion != rep.Fingerprint.GoVersion {
		t.Error("fingerprint lost in round-trip")
	}
}
