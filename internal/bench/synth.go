package bench

// Synthetic benchmark corpus: deterministic random networks from the
// diffcheck generator at roughly ten times the paper suite's node count.
// The paper's controllers are small (tens of literals per slice); these
// designs stress the mapper's scaling behaviour — cut enumeration over
// reconvergent fanout, the hazard filter on wide supports, DP sizing —
// so the perf trajectory catches regressions the paper-scale suite is
// too small to feel. Fixed seeds make every corpus build byte-identical.

import (
	"fmt"
	"sync"

	"gfmap/internal/diffcheck"
)

// synthSpecs fixes the synthetic corpus. Seeds and configs are part of
// the benchmark contract: changing either invalidates wall-time and
// allocation comparisons against older BENCH_*.json files.
var synthSpecs = []struct {
	name string
	seed uint64
	cfg  diffcheck.GenConfig
}{
	// Dense reconvergence, default fanin: the common shape.
	{"synth-recon-100", 9001, diffcheck.GenConfig{Inputs: 10, Nodes: 100, MaxFanin: 4, WidePeriod: 7}},
	// Wider nodes every 5th: stresses the exact hazard analysis bounds.
	{"synth-wide-110", 9002, diffcheck.GenConfig{Inputs: 10, Nodes: 110, MaxFanin: 4, WidePeriod: 5}},
	// No wide nodes, deeper chains: stresses cut enumeration depth.
	{"synth-deep-120", 9003, diffcheck.GenConfig{Inputs: 12, Nodes: 120, MaxFanin: 4, WidePeriod: -1}},
	// Higher fanin: bigger clusters, more matches per cone.
	{"synth-fanin-100", 9004, diffcheck.GenConfig{Inputs: 10, Nodes: 100, MaxFanin: 5, WidePeriod: -1}},
}

var (
	synthOnce sync.Once
	synthDs   []*Design
	synthErr  error
)

// SynthDesigns returns the synthetic corpus (generated once, cached).
func SynthDesigns() ([]*Design, error) {
	synthOnce.Do(func() {
		for _, spec := range synthSpecs {
			net := diffcheck.Generate(spec.seed, spec.cfg)
			if err := net.Validate(); err != nil {
				synthErr = fmt.Errorf("bench: synthetic design %s: %w", spec.name, err)
				return
			}
			net.Name = spec.name
			synthDs = append(synthDs, &Design{Name: spec.name, Net: net, Slices: 1})
		}
	})
	return synthDs, synthErr
}

// SynthDesignNames lists the synthetic corpus in declaration order.
func SynthDesignNames() []string {
	names := make([]string, len(synthSpecs))
	for i, s := range synthSpecs {
		names[i] = s.name
	}
	return names
}
