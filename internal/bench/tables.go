package bench

import (
	"fmt"
	"strings"
	"time"

	"gfmap/internal/core"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// Table1Row is one row of the library hazard census (paper Table 1).
type Table1Row struct {
	Library   string
	Families  []string
	Hazardous int
	Total     int
	Percent   int
}

// Table1 reproduces the paper's Table 1: the hazardous elements of each
// library.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range library.BuiltinNames {
		lib, err := library.Get(name)
		if err != nil {
			return nil, err
		}
		c := lib.Census()
		rows = append(rows, Table1Row{
			Library:   name,
			Families:  c.Families,
			Hazardous: c.Hazardous,
			Total:     c.Total,
			Percent:   c.PercentHazardous(),
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Libraries and their hazardous elements\n")
	fmt.Fprintf(&b, "%-8s %-18s %4s %6s %10s\n", "Library", "Hazardous", "#", "Total", "%Hazardous")
	for _, r := range rows {
		fams := strings.Join(r.Families, ",")
		if fams == "" {
			fams = "None"
		}
		fmt.Fprintf(&b, "%-8s %-18s %4d %6d %9d%%\n", r.Library, fams, r.Hazardous, r.Total, r.Percent)
	}
	return b.String()
}

// Table2Row is one row of the library-initialisation timing comparison.
type Table2Row struct {
	Library  string
	Sync     time.Duration // build + truth tables (the synchronous mapper's init)
	Async    time.Duration // build + hazard annotation (the asynchronous init)
	Elements int
}

// Table2 reproduces the paper's Table 2: hazard-analysis run times during
// library initialisation. Fresh library instances are built so the
// annotation is actually measured.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range library.BuiltinNames {
		start := time.Now()
		syncLib, err := library.Build(name)
		if err != nil {
			return nil, err
		}
		syncTime := time.Since(start)

		start = time.Now()
		asyncLib, err := library.Build(name)
		if err != nil {
			return nil, err
		}
		if err := asyncLib.Annotate(); err != nil {
			return nil, err
		}
		asyncTime := time.Since(start)

		rows = append(rows, Table2Row{
			Library:  name,
			Sync:     syncTime,
			Async:    asyncTime,
			Elements: len(syncLib.Cells),
		})
	}
	return rows, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Hazard analysis run times for library initialisation\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %8s\n", "Library", "Sync", "Async", "Async/Sync", "#Cells")
	for _, r := range rows {
		ratio := float64(r.Async) / float64(r.Sync)
		fmt.Fprintf(&b, "%-8s %12s %12s %9.1fx %8d\n",
			r.Library, r.Sync.Round(time.Microsecond), r.Async.Round(time.Microsecond), ratio, r.Elements)
	}
	return b.String()
}

// Table3Row compares automatic and hand-mapped covers of one design.
type Table3Row struct {
	Design  string
	Library string
	How     string
	Area    float64
	Time    time.Duration
}

// handMap produces the "hand-mapped" reference: a careful but conservative
// gate-for-gate translation, modelled by running the mapper with unit
// clusters (every base gate becomes one cell). This is the translation a
// designer does by hand when avoiding hazards without tool support.
func handMap(net *network.Network, lib *library.Library) (*core.Result, error) {
	return core.Map(net, lib, core.Options{Mode: core.Async, MaxDepth: 1, MaxLeaves: 2})
}

// Table3 reproduces the paper's Table 3: automatically-mapped versus
// hand-mapped area on the two real controllers (SCSI on LSI, ABCS on GDT).
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	cases := []struct {
		design, lib string
		hand        bool
	}{
		{"scsi", "LSI9K", false}, // the paper's SCSI was never hand-mapped
		{"abcs", "GDT", true},
	}
	for _, c := range cases {
		d, err := DesignByName(c.design)
		if err != nil {
			return nil, err
		}
		lib, err := library.Get(c.lib)
		if err != nil {
			return nil, err
		}
		if c.hand {
			start := time.Now()
			hand, err := handMap(d.Net, lib)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{
				Design: c.design, Library: c.lib, How: "hand-mapped",
				Area: hand.Area, Time: time.Since(start),
			})
		} else {
			rows = append(rows, Table3Row{Design: c.design, Library: c.lib, How: "hand-mapped", Area: -1})
		}
		start := time.Now()
		auto, err := core.AsyncTmap(d.Net, lib, core.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Design: c.design, Library: c.lib, How: "async tmap",
			Area: auto.Area, Time: time.Since(start),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Automatically-mapped vs hand-mapped designs (area; depth of 5)\n")
	fmt.Fprintf(&b, "%-8s %-8s %-12s %8s %10s\n", "Design", "Library", "How Mapped", "Cost", "Time")
	for _, r := range rows {
		area := fmt.Sprintf("%.0f", r.Area)
		t := r.Time.Round(time.Millisecond).String()
		if r.Area < 0 {
			area, t = "-", "-"
		}
		fmt.Fprintf(&b, "%-8s %-8s %-12s %8s %10s\n", r.Design, r.Library, r.How, area, t)
	}
	return b.String()
}

// bestOf runs f reps times and returns the fastest wall-clock time.
func bestOf(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Table4Cell is one sync/async timing pair.
type Table4Cell struct {
	Sync  time.Duration
	Async time.Duration
}

// Table4Row is one design's run times across the four libraries.
type Table4Row struct {
	Design string
	Cells  map[string]Table4Cell
}

// Table4 reproduces the paper's Table 4: synchronous versus asynchronous
// mapper run times for the SCSI and ABCS designs across all four
// libraries.
func Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, designName := range []string{"scsi", "abcs"} {
		d, err := DesignByName(designName)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Design: designName, Cells: map[string]Table4Cell{}}
		for _, libName := range library.BuiltinNames {
			lib, err := library.Get(libName)
			if err != nil {
				return nil, err
			}
			syncTime, err := bestOf(3, func() error {
				_, err := core.Tmap(d.Net, lib, core.Options{})
				return err
			})
			if err != nil {
				return nil, err
			}
			asyncTime, err := bestOf(3, func() error {
				_, err := core.AsyncTmap(d.Net, lib, core.Options{})
				return err
			})
			if err != nil {
				return nil, err
			}
			row.Cells[libName] = Table4Cell{Sync: syncTime, Async: asyncTime}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Synchronous vs asynchronous mapper run times (depth of 5)\n")
	fmt.Fprintf(&b, "%-8s %-13s", "Design", "Mapper")
	for _, lib := range library.BuiltinNames {
		fmt.Fprintf(&b, " %10s", lib)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-13s", r.Design, "Synchronous")
		for _, lib := range library.BuiltinNames {
			fmt.Fprintf(&b, " %10s", r.Cells[lib].Sync.Round(time.Millisecond))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-8s %-13s", "", "Asynchronous")
		for _, lib := range library.BuiltinNames {
			fmt.Fprintf(&b, " %10s", r.Cells[lib].Async.Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table5Entry is one design×library mapping result.
type Table5Entry struct {
	CPU   time.Duration
	Delay float64
	Area  float64
}

// Table5Row is one design's results for the Actel and CMOS3 libraries.
type Table5Row struct {
	Design string
	Actel  Table5Entry
	CMOS3  Table5Entry
}

// Table5 reproduces the paper's Table 5: asynchronous mapping results for
// the eleven benchmark circuits on the Actel and CMOS3 libraries.
func Table5() ([]Table5Row, error) {
	ds, err := Designs()
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, d := range ds {
		row := Table5Row{Design: d.Name}
		for _, libName := range []string{"Actel", "CMOS3"} {
			lib, err := library.Get(libName)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.AsyncTmap(d.Net, lib, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", d.Name, libName, err)
			}
			entry := Table5Entry{CPU: time.Since(start), Delay: res.Delay, Area: res.Area}
			if libName == "Actel" {
				row.Actel = entry
			} else {
				row.CMOS3 = entry
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: Asynchronous mapper results (depth of 5)\n")
	fmt.Fprintf(&b, "%-13s | %10s %9s %8s | %10s %9s %8s\n",
		"Design", "Actel CPU", "Delay", "Area", "CMOS3 CPU", "Delay", "Area")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s | %10s %7.1fns %8.0f | %10s %7.1fns %8.0f\n",
			r.Design,
			r.Actel.CPU.Round(time.Millisecond), r.Actel.Delay, r.Actel.Area,
			r.CMOS3.CPU.Round(time.Millisecond), r.CMOS3.Delay, r.CMOS3.Area)
	}
	return b.String()
}
