package bench

import (
	"strings"
	"testing"

	"gfmap/internal/core"
	"gfmap/internal/library"
)

// TestTable1Exact asserts the census reproduces the paper's Table 1
// numbers exactly.
func TestTable1Exact(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := []Table1Row{
		{Library: "LSI9K", Families: []string{"MUX"}, Hazardous: 12, Total: 86, Percent: 14},
		{Library: "CMOS3", Families: []string{"MUX"}, Hazardous: 1, Total: 30, Percent: 3},
		{Library: "GDT", Families: nil, Hazardous: 0, Total: 72, Percent: 0},
		{Library: "Actel", Families: []string{"AO", "AOI", "MX", "OA", "OAI"}, Hazardous: 24, Total: 84, Percent: 29},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.Library != w.Library || r.Hazardous != w.Hazardous || r.Total != w.Total || r.Percent != w.Percent {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

// TestTable2Shape asserts the timing shape of Table 2: hazard annotation
// dominates initialisation everywhere, and the GDT library — with the
// biggest complex gates — takes by far the longest to annotate, as in the
// paper (16.7s vs 0.2–1.2s on a DEC 5000).
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing table skipped in -short mode")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	byLib := map[string]Table2Row{}
	for _, r := range rows {
		byLib[r.Library] = r
		if r.Async <= r.Sync {
			t.Errorf("%s: async init (%v) should exceed sync init (%v)", r.Library, r.Async, r.Sync)
		}
	}
	gdt := byLib["GDT"].Async
	for _, other := range []string{"LSI9K", "CMOS3", "Actel"} {
		if gdt <= byLib[other].Async {
			t.Errorf("GDT annotation (%v) should dominate %s (%v)", gdt, other, byLib[other].Async)
		}
	}
}

// TestTable3Shape asserts the quality claim of Table 3: the automatic
// asynchronous cover is never worse than the careful gate-for-gate hand
// translation (the paper's automatic ABCS cover was 13% smaller than the
// hand-mapped one).
func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	var hand, auto float64
	for _, r := range rows {
		if r.Design != "abcs" {
			continue
		}
		switch r.How {
		case "hand-mapped":
			hand = r.Area
		case "async tmap":
			auto = r.Area
		}
	}
	if hand == 0 || auto == 0 {
		t.Fatalf("missing abcs rows: %+v", rows)
	}
	if auto > hand {
		t.Errorf("automatic cover (%.0f) should not exceed the hand cover (%.0f)", auto, hand)
	}
	if auto < 0.5*hand {
		t.Logf("note: automatic cover is %.0f%% of hand — larger gain than the paper's 13%%", 100*auto/hand)
	}
}

// TestTable5Shape asserts the structural claims of Table 5: the small
// controller cluster is far below the four large designs; within the large
// designs the paper's size ordering holds (abcs ≤ oscsi < scsi < dean);
// Actel delays dominate CMOS3 delays by roughly an order of magnitude; and
// CPU time grows with design size.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("mapping table skipped in -short mode")
	}
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Design] = r
		if r.Actel.Delay < 4*r.CMOS3.Delay {
			t.Errorf("%s: Actel delay %.1f should dominate CMOS3 delay %.1f", r.Design, r.Actel.Delay, r.CMOS3.Delay)
		}
		if r.Actel.Area <= 0 || r.CMOS3.Area <= 0 {
			t.Errorf("%s: degenerate areas %+v", r.Design, r)
		}
	}
	small := []string{"chu-ad-opt", "dme-fast-opt", "dme-fast", "dme-opt", "dme", "vanbek-opt"}
	large := []string{"abcs", "oscsi-ctrl", "scsi", "dean-ctrl"}
	for _, s := range small {
		for _, l := range large {
			if byName[s].Actel.Area >= byName[l].Actel.Area {
				t.Errorf("small design %s (%.0f) should be below large design %s (%.0f)",
					s, byName[s].Actel.Area, l, byName[l].Actel.Area)
			}
		}
	}
	if !(byName["abcs"].Actel.Area <= byName["oscsi-ctrl"].Actel.Area &&
		byName["oscsi-ctrl"].Actel.Area < byName["scsi"].Actel.Area &&
		byName["scsi"].Actel.Area < byName["dean-ctrl"].Actel.Area) {
		t.Errorf("large-design ordering violated: abcs %.0f, oscsi %.0f, scsi %.0f, dean %.0f",
			byName["abcs"].Actel.Area, byName["oscsi-ctrl"].Actel.Area,
			byName["scsi"].Actel.Area, byName["dean-ctrl"].Actel.Area)
	}
	if byName["dean-ctrl"].Actel.CPU < byName["dme"].Actel.CPU {
		t.Error("CPU time should grow with design size")
	}
	// Delay grows with the chained large designs.
	if byName["dean-ctrl"].Actel.Delay < 2*byName["dme"].Actel.Delay {
		t.Errorf("dean-ctrl delay %.1f should far exceed dme delay %.1f",
			byName["dean-ctrl"].Actel.Delay, byName["dme"].Actel.Delay)
	}
}

// TestBenchmarksMapHazardFreeEverywhere is the suite-level safety check:
// the asynchronous mapper maps the smaller benchmarks onto the hazardous
// Actel library without introducing a single hazard, verified per cone by
// the exact analyser.
func TestBenchmarksMapHazardFreeEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("verification sweep skipped in -short mode")
	}
	lib := library.MustGet("Actel")
	for _, name := range []string{"vanbek-opt", "dme", "dme-opt", "dme-fast", "chu-ad-opt", "pe-send-ifc"} {
		d, err := DesignByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AsyncTmap(d.Net, lib, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := core.VerifyEquivalence(d.Net, res.Netlist); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		rep, err := core.VerifyHazardSafety(d.Net, res.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("%s: %s: %v", name, rep, rep.Details)
		}
	}
}

// TestReplicateChaining checks the daisy-chain plumbing.
func TestReplicateChaining(t *testing.T) {
	d, err := DesignByName("scsi")
	if err != nil {
		t.Fatal(err)
	}
	// The scsi slice has 8 combinational inputs (3 machine inputs + 5
	// one-hot state bits). With 66 slices chained in groups of 11, every
	// non-leader slice's request input is driven by its predecessor, so
	// 66-6 = 60 inputs disappear.
	const perSlice, slices, groups = 8, 66, 6
	want := perSlice*slices - (slices - groups)
	if got := len(d.Net.Inputs); got != want {
		t.Errorf("chained scsi has %d inputs, want %d", got, want)
	}
	if err := d.Net.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFiguresGenerator: the printable figure regeneration runs and
// contains each figure's key computed fact.
func TestFiguresGenerator(t *testing.T) {
	text, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"uncovered transition region xyz",
		"repaired: w'yz + wxy + xyz (hazard-free: true)",
		"new hazards: 1", // the sync Figure 3 cover
		"new hazards: 0", // the async Figure 3 cover
		"(w + x)*y",
		"adjacency cube wy",
		"intersection w'xyz: |alpha| = 1, |beta| = 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("figures output missing %q:\n%s", want, text)
		}
	}
}

// TestAblations: the three ablation studies run and exhibit their headline
// shapes (depth saturates; the hazard filter never reduces area below
// sync; objectives stay functionally valid).
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	depth, err := AblationDepth("abcs", "GDT")
	if err != nil {
		t.Fatal(err)
	}
	if len(depth) != 6 {
		t.Fatalf("depth rows = %d", len(depth))
	}
	if !(depth[0].Area > depth[2].Area) {
		t.Errorf("depth 1 (%.0f) should be worse than depth 3 (%.0f)", depth[0].Area, depth[2].Area)
	}
	for i := 3; i < len(depth); i++ {
		if depth[i].Area > depth[2].Area {
			t.Errorf("quality regressed at %s: %.0f > %.0f", depth[i].Config, depth[i].Area, depth[2].Area)
		}
	}

	filt, err := AblationFilter("scsi", "Actel")
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]AblationRow{}
	for _, r := range filt {
		byCfg[r.Config] = r
	}
	if byCfg["sync (no filter)"].Area > byCfg["async"].Area {
		t.Errorf("the filter can only cost area: sync %.0f vs async %.0f",
			byCfg["sync (no filter)"].Area, byCfg["async"].Area)
	}
	if byCfg["async"].Stats.MatchesRejected == 0 {
		t.Error("the Actel run must reject hazardous matches")
	}
	if byCfg["async burst<=1"].Area > byCfg["async"].Area {
		t.Error("don't-cares can only relax the filter")
	}

	obj, err := AblationObjective("dme", "Actel")
	if err != nil {
		t.Fatal(err)
	}
	if len(obj) != 2 {
		t.Fatalf("objective rows = %d", len(obj))
	}
	if obj[1].Delay > obj[0].Delay {
		t.Errorf("delay objective must not be slower: %.2f vs %.2f", obj[1].Delay, obj[0].Delay)
	}
	if got := FormatAblation("t", obj); !strings.Contains(got, "objective=delay") {
		t.Errorf("format: %s", got)
	}
}
