// Package bexpr implements Boolean factored form (BFF) expressions.
//
// The DAC'93 mapper uses BFF as "an accurate and convenient representation
// for both the functionality and structure" of a library element (§3.2.1):
// the tree shape of the expression mirrors the gate/transistor structure,
// which is what determines the element's logic-hazard behaviour. The same
// representation doubles as the subject of multi-level hazard analysis.
//
// The package provides parsing, printing, evaluation, structural metrics,
// and two hazard-preserving flattenings to two-level form:
//
//   - Cover: plain SOP obtained using only the associative, distributive and
//     DeMorgan laws (Unger, Theorem 4.3) — no absorption or redundancy
//     removal, since redundant cubes are exactly what keeps circuits
//     hazard-free;
//   - LabeledCover: SOP over path-labelled literals, where every leaf
//     occurrence of a variable is a distinct path; this is the form needed
//     by static-0 and single-input-change dynamic hazard analysis (§4.2.3).
package bexpr

import (
	"fmt"
	"sort"
	"strings"

	"gfmap/internal/cube"
)

// Op identifies the operator of an expression node.
type Op int

// Expression node operators.
const (
	OpConst Op = iota // constant 0 or 1
	OpVar             // variable leaf
	OpNot             // complement (one child)
	OpAnd             // conjunction (two or more children)
	OpOr              // disjunction (two or more children)
)

// Expr is a node of a Boolean factored form expression tree.
type Expr struct {
	Op   Op
	Val  bool    // OpConst: the constant value
	Name string  // OpVar: the variable name
	Kids []*Expr // OpNot: one child; OpAnd/OpOr: two or more
}

// Function is a BFF expression together with a fixed variable ordering.
// Variable i of the ordering corresponds to bit i of evaluation points and
// to variable i of derived covers.
type Function struct {
	Root *Expr
	Vars []string

	index map[string]int
}

// Const returns a constant expression node.
func Const(v bool) *Expr { return &Expr{Op: OpConst, Val: v} }

// Var returns a variable leaf node.
func Var(name string) *Expr { return &Expr{Op: OpVar, Name: name} }

// Not returns the complement of e.
func Not(e *Expr) *Expr { return &Expr{Op: OpNot, Kids: []*Expr{e}} }

// And returns the conjunction of the given children.
func And(kids ...*Expr) *Expr { return nary(OpAnd, kids) }

// Or returns the disjunction of the given children.
func Or(kids ...*Expr) *Expr { return nary(OpOr, kids) }

func nary(op Op, kids []*Expr) *Expr {
	switch len(kids) {
	case 0:
		return Const(op == OpAnd)
	case 1:
		return kids[0]
	}
	return &Expr{Op: op, Kids: kids}
}

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	out := &Expr{Op: e.Op, Val: e.Val, Name: e.Name}
	if len(e.Kids) > 0 {
		out.Kids = make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			out.Kids[i] = k.Clone()
		}
	}
	return out
}

// CollectVars appends the names of variables in first-appearance order.
func (e *Expr) CollectVars(dst []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, v := range dst {
		seen[v] = true
	}
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil {
			return
		}
		if n.Op == OpVar && !seen[n.Name] {
			seen[n.Name] = true
			dst = append(dst, n.Name)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(e)
	return dst
}

// NumLiterals counts variable leaf occurrences. For a complementary CMOS
// complex gate described by a BFF, this equals the number of transistors in
// the pulldown network — the paper's Table 3 area unit.
func (e *Expr) NumLiterals() int {
	if e == nil {
		return 0
	}
	if e.Op == OpVar {
		return 1
	}
	n := 0
	for _, k := range e.Kids {
		n += k.NumLiterals()
	}
	return n
}

// Depth returns the operator depth of the tree (leaves and constants have
// depth 0; complements are free, matching a gate-level view where inversion
// folds into the gate).
func (e *Expr) Depth() int {
	if e == nil || e.Op == OpVar || e.Op == OpConst {
		return 0
	}
	if e.Op == OpNot {
		return e.Kids[0].Depth()
	}
	d := 0
	for _, k := range e.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// String renders the expression with '+', juxtaposition-by-'*' and postfix
// apostrophe complement, parenthesising as needed.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

// precedence levels: OR=1, AND=2, NOT/leaf=3.
func (e *Expr) write(b *strings.Builder, parent int) {
	switch e.Op {
	case OpConst:
		if e.Val {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	case OpVar:
		b.WriteString(e.Name)
	case OpNot:
		k := e.Kids[0]
		if k.Op == OpVar || k.Op == OpConst {
			k.write(b, 3)
			b.WriteByte('\'')
		} else {
			b.WriteByte('(')
			k.write(b, 0)
			b.WriteString(")'")
		}
	case OpAnd:
		if parent > 2 {
			b.WriteByte('(')
		}
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteByte('*')
			}
			k.write(b, 2)
		}
		if parent > 2 {
			b.WriteByte(')')
		}
	case OpOr:
		if parent > 1 {
			b.WriteByte('(')
		}
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" + ")
			}
			k.write(b, 1)
		}
		if parent > 1 {
			b.WriteByte(')')
		}
	}
}

// New builds a Function from an expression root; the variable order is the
// order of first appearance.
func New(root *Expr) *Function {
	f := &Function{Root: root, Vars: root.CollectVars(nil)}
	f.buildIndex()
	return f
}

// NewWithVars builds a Function with an explicit variable order, which may
// include variables not present in the expression. It is an error for the
// expression to use a variable outside the order.
func NewWithVars(root *Expr, vars []string) (*Function, error) {
	f := &Function{Root: root, Vars: vars}
	f.buildIndex()
	for _, v := range root.CollectVars(nil) {
		if _, ok := f.index[v]; !ok {
			return nil, fmt.Errorf("bexpr: expression uses variable %q outside the given order", v)
		}
	}
	return f, nil
}

func (f *Function) buildIndex() {
	f.index = make(map[string]int, len(f.Vars))
	for i, v := range f.Vars {
		f.index[v] = i
	}
}

// Reset re-points f at a new root and variable order, reusing the
// receiver's variable index map so repeated construction on a hot path
// allocates nothing beyond what the map itself needs. Unlike NewWithVars
// it performs no validation: the caller guarantees the expression uses
// only variables from vars. A zero Function is a valid receiver.
func (f *Function) Reset(root *Expr, vars []string) {
	f.Root, f.Vars = root, vars
	if f.index == nil {
		f.index = make(map[string]int, len(vars))
	} else {
		clear(f.index)
	}
	for i, v := range vars {
		f.index[v] = i
	}
}

// VarIndex returns the position of name in the variable order, or -1.
func (f *Function) VarIndex(name string) int {
	if i, ok := f.index[name]; ok {
		return i
	}
	return -1
}

// NumVars returns the number of variables in the order.
func (f *Function) NumVars() int { return len(f.Vars) }

// String renders the underlying expression.
func (f *Function) String() string { return f.Root.String() }

// Eval evaluates the function at the given point (bit i = value of
// variable i in the order).
func (f *Function) Eval(point uint64) bool {
	return f.evalNode(f.Root, point)
}

func (f *Function) evalNode(e *Expr, point uint64) bool {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		i := f.index[e.Name]
		return point&(1<<uint(i)) != 0
	case OpNot:
		return !f.evalNode(e.Kids[0], point)
	case OpAnd:
		for _, k := range e.Kids {
			if !f.evalNode(k, point) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if f.evalNode(k, point) {
				return true
			}
		}
		return false
	}
	panic("bexpr: bad op")
}

// Cover flattens the expression to a two-level SOP cover over the
// function's variable order using only hazard-preserving laws
// (DeMorgan push-down, distribution). Vacuous products (containing a
// variable and its complement) are dropped — they contribute nothing to the
// ON-set; static-0 analysis uses LabeledCover instead, where paths keep
// them distinguishable. Structural duplicate cubes are merged, but no
// absorption is performed: redundant cubes are preserved.
func (f *Function) Cover() (cube.Cover, error) {
	if len(f.Vars) > cube.MaxVars {
		return cube.Cover{}, fmt.Errorf("bexpr: %d variables exceed the %d-variable limit", len(f.Vars), cube.MaxVars)
	}
	prods := f.sop(f.Root, false)
	out := cube.NewCover(len(f.Vars))
	for _, p := range prods {
		if p.vacuous {
			continue
		}
		out.Add(p.c)
	}
	out.Cubes = cube.DedupCubes(out.Cubes)
	return out, nil
}

// MustCover is Cover that panics on error; for static expression data.
func (f *Function) MustCover() cube.Cover {
	c, err := f.Cover()
	if err != nil {
		panic(err)
	}
	return c
}

type prod struct {
	c       cube.Cube
	vacuous bool
}

// sop returns the product terms of e (complemented when neg), with
// vacuous terms flagged rather than dropped so callers can decide.
func (f *Function) sop(e *Expr, neg bool) []prod {
	switch e.Op {
	case OpConst:
		if e.Val != neg {
			return []prod{{c: cube.Universal}}
		}
		return nil
	case OpVar:
		return []prod{{c: cube.FromLiteral(f.index[e.Name], !neg)}}
	case OpNot:
		return f.sop(e.Kids[0], !neg)
	case OpAnd, OpOr:
		conj := (e.Op == OpAnd) != neg // after DeMorgan, is this a product?
		parts := make([][]prod, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = f.sop(k, neg)
		}
		if !conj {
			var out []prod
			for _, p := range parts {
				out = append(out, p...)
			}
			return out
		}
		// Distribute: cartesian product of the children's terms.
		out := []prod{{c: cube.Universal}}
		for _, p := range parts {
			next := make([]prod, 0, len(out)*len(p))
			for _, a := range out {
				for _, b := range p {
					ic, ok := a.c.Intersect(b.c)
					if !ok {
						// A contradictory product is vacuous: it contains a
						// variable in both phases. Track it but keep no cube.
						next = append(next, prod{vacuous: true})
						continue
					}
					next = append(next, prod{c: ic, vacuous: a.vacuous || b.vacuous})
				}
			}
			out = next
		}
		return out
	}
	panic("bexpr: bad op")
}

// Equal reports structural equality of expressions.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Op != o.Op || e.Val != o.Val || e.Name != o.Name || len(e.Kids) != len(o.Kids) {
		return false
	}
	for i := range e.Kids {
		if !e.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// SortedVars returns a sorted copy of the variable order (useful for
// deterministic reporting).
func (f *Function) SortedVars() []string {
	out := append([]string(nil), f.Vars...)
	sort.Strings(out)
	return out
}

// Rename returns a copy of the expression with every variable name passed
// through f.
func Rename(e *Expr, f func(string) string) *Expr {
	switch e.Op {
	case OpConst:
		return Const(e.Val)
	case OpVar:
		return Var(f(e.Name))
	case OpNot:
		return Not(Rename(e.Kids[0], f))
	default:
		kids := make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = Rename(k, f)
		}
		if e.Op == OpAnd {
			return And(kids...)
		}
		return Or(kids...)
	}
}
