package bexpr

import (
	"testing"

	"gfmap/internal/cube"
)

func TestParseAndPrint(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical re-print; empty means same as in
	}{
		{"a", ""},
		{"a'", ""},
		{"a + b", ""},
		{"a*b", ""},
		{"a b", "a*b"},
		{"(a + b)*c", ""},
		{"(a*b + c)'", ""},
		{"!a", "a'"},
		{"!(a + b)", "(a + b)'"},
		{"a''", "(a')'"},
		{"1", ""},
		{"0", ""},
		{"s'*a + s*b", ""},
	}
	for _, tt := range tests {
		f, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		want := tt.want
		if want == "" {
			want = tt.in
		}
		if got := f.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a +", "(a", "a)", "a @ b", "+a"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestEval(t *testing.T) {
	f := MustParse("(a + b)*c'")
	// Vars: a=0, b=1, c=2.
	tests := []struct {
		point uint64
		want  bool
	}{
		{0b000, false},
		{0b001, true},  // a=1, c=0
		{0b010, true},  // b=1
		{0b110, false}, // b=1 c=1
		{0b011, true},
	}
	for _, tt := range tests {
		if got := f.Eval(tt.point); got != tt.want {
			t.Errorf("Eval(%03b) = %v, want %v", tt.point, got, tt.want)
		}
	}
}

func TestCoverMatchesEval(t *testing.T) {
	exprs := []string{
		"a",
		"a'",
		"a*b + c",
		"(a + b)*(c + d)",
		"(a*b + c*d)'",
		"((a + b')*c + d*(a' + c'))'",
		"s'*a + s*b",
		"a*b + a'*c + b*c",
		"(a + b)*(a' + c)*(b' + c')",
	}
	for _, e := range exprs {
		f := MustParse(e)
		cov, err := f.Cover()
		if err != nil {
			t.Fatalf("Cover(%q): %v", e, err)
		}
		n := uint(len(f.Vars))
		for p := uint64(0); p < 1<<n; p++ {
			if f.Eval(p) != cov.Eval(p) {
				t.Errorf("%q: Cover disagrees with Eval at %b", e, p)
			}
		}
	}
}

func TestCoverPreservesRedundantCubes(t *testing.T) {
	// ab + a'c + bc: the consensus cube bc must not be simplified away.
	f := MustParse("a*b + a'*c + b*c")
	cov := f.MustCover()
	if len(cov.Cubes) != 3 {
		t.Fatalf("Cover dropped cubes: got %d, want 3", len(cov.Cubes))
	}
}

func TestCoverDropsVacuousTerms(t *testing.T) {
	// (a + b)(a' + c) distributes into aa' + ac + a'b + bc; aa' is vacuous.
	f := MustParse("(a + b)*(a' + c)")
	cov := f.MustCover()
	if len(cov.Cubes) != 3 {
		t.Fatalf("got %d cubes (%v), want 3", len(cov.Cubes), cov)
	}
	for _, c := range cov.Cubes {
		if c.IsUniversal() {
			t.Error("vacuous term leaked into cover as universal cube")
		}
	}
}

func TestNumLiteralsAndDepth(t *testing.T) {
	tests := []struct {
		in    string
		lits  int
		depth int
	}{
		{"a", 1, 0},
		{"a'", 1, 0},
		{"a*b", 2, 1},
		{"a*b + c", 3, 2},
		{"(a*b + c)'", 3, 2},
		{"(a + b)*(c + d)", 4, 2},
		{"s'*a + s*b", 4, 2},
	}
	for _, tt := range tests {
		f := MustParse(tt.in)
		if got := f.Root.NumLiterals(); got != tt.lits {
			t.Errorf("%q NumLiterals = %d, want %d", tt.in, got, tt.lits)
		}
		if got := f.Root.Depth(); got != tt.depth {
			t.Errorf("%q Depth = %d, want %d", tt.in, got, tt.depth)
		}
	}
}

func TestNewWithVars(t *testing.T) {
	e := MustParseExpr("a + c")
	f, err := NewWithVars(e, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if f.VarIndex("b") != 1 || f.VarIndex("c") != 2 {
		t.Error("explicit variable order not respected")
	}
	if _, err := NewWithVars(MustParseExpr("q"), []string{"a"}); err == nil {
		t.Error("want error for out-of-order variable")
	}
}

func TestFromCover(t *testing.T) {
	names := []string{"a", "b", "c"}
	cov := cube.MustParseCover("ab' + c", names)
	f := FromCover(cov, names)
	for p := uint64(0); p < 8; p++ {
		if f.Eval(p) != cov.Eval(p) {
			t.Errorf("FromCover disagrees at %03b", p)
		}
	}
	if got := f.String(); got != "a*b' + c" {
		t.Errorf("FromCover rendering = %q", got)
	}
}

func TestLabeledPathsDistinct(t *testing.T) {
	// Figure 4a: w*y + x*y — variable y fans out to two paths.
	f := MustParse("w*y + x*y")
	lc := f.MustLabeled()
	if len(lc.Paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(lc.Paths))
	}
	if len(lc.Terms) != 2 {
		t.Fatalf("got %d terms, want 2", len(lc.Terms))
	}
	// The two y leaves must be distinct paths.
	yIdx := f.VarIndex("y")
	var yPaths []int
	for i, p := range lc.Paths {
		if p.Var == yIdx {
			yPaths = append(yPaths, i)
		}
	}
	if len(yPaths) != 2 {
		t.Fatalf("y should have 2 paths, got %d", len(yPaths))
	}
}

func TestLabeledEvalAgrees(t *testing.T) {
	exprs := []string{
		"a*b + c",
		"(a + b)*(a' + c)",
		"(w + y')*(x' + y)*(w' + x + z)",
		"((a*b)' + c)*(a + c')",
	}
	for _, e := range exprs {
		f := MustParse(e)
		lc := f.MustLabeled()
		for p := uint64(0); p < 1<<uint(len(f.Vars)); p++ {
			if f.Eval(p) != lc.Eval(p) {
				t.Errorf("%q: labelled Eval disagrees at %b", e, p)
			}
		}
	}
}

func TestLabeledVacuous(t *testing.T) {
	// (a + b)(a' + c): distributed term a*a' spans two different paths of a.
	f := MustParse("(a + b)*(a' + c)")
	lc := f.MustLabeled()
	if len(lc.Terms) != 4 {
		t.Fatalf("got %d labelled terms, want 4", len(lc.Terms))
	}
	vac := 0
	for t := range lc.Terms {
		if lc.VacuousVar(t) >= 0 {
			vac++
		}
	}
	if vac != 1 {
		t.Errorf("got %d vacuous terms, want 1", vac)
	}
}

func TestMcCluskeyLabeledExpansion(t *testing.T) {
	// The Figure 6 circuit: f = (w + y' + x')*(x*y + y'*z), whose labelled
	// expansion the paper gives as
	// wx2y2 + wy3'z + y1'x2y2 + y1'y3'z + x1'x2y2 + x1'y3'z.
	f := MustParse("(w + y' + x')*(x*y + y'*z)")
	lc := f.MustLabeled()
	if len(lc.Terms) != 6 {
		t.Fatalf("got %d labelled terms, want 6", len(lc.Terms))
	}
	// y has three paths (y', y, y'), x has two.
	counts := map[string]int{}
	for _, p := range lc.Paths {
		counts[f.Vars[p.Var]]++
	}
	if counts["y"] != 3 || counts["x"] != 2 || counts["w"] != 1 || counts["z"] != 1 {
		t.Errorf("path counts = %v, want y:3 x:2 w:1 z:1", counts)
	}
	// Exactly two terms are vacuous in y (y1'*x2*y2 and ... none in x).
	vacY := 0
	for t := range lc.Terms {
		if v := lc.VacuousVar(t); v >= 0 && f.Vars[v] == "y" {
			vacY++
		}
	}
	if vacY != 1 {
		t.Errorf("got %d y-vacuous terms, want 1 (y1'x2y2)", vacY)
	}
}

func TestTermCanPulse(t *testing.T) {
	// f = a*b' with a rising and b rising simultaneously: the term can pulse
	// if a's path goes up before b's.
	f := MustParse("a*b'")
	lc := f.MustLabeled()
	alpha := uint64(0b00) // a=0,b=0
	beta := uint64(0b11)  // a=1,b=1
	if !lc.TermCanPulse(0, alpha, beta) {
		t.Error("a*b' must be able to pulse during 00 -> 11")
	}
	if lc.TermAt(0, alpha) || lc.TermAt(0, beta) {
		t.Error("term must be 0 at both endpoints")
	}
	// With only a changing (b stays 0), the term ends at 1: cannot "pulse
	// off" concern, but CanPulse is still true.
	if !lc.TermCanPulse(0, 0b00, 0b01) {
		t.Error("term reachable when it is 1 at an endpoint")
	}
	// With b=1 throughout the term can never be 1.
	if lc.TermCanPulse(0, 0b10, 0b11) {
		t.Error("term with a literal 0 at both endpoints cannot pulse")
	}
}

func TestTermHoldsThrough(t *testing.T) {
	f := MustParse("a*b + c")
	lc := f.MustLabeled()
	// During a,b stable 1 and c changing, term a*b holds.
	holds := false
	for t2 := range lc.Terms {
		if lc.TermHoldsThrough(t2, 0b011, 0b111) {
			holds = true
		}
	}
	if !holds {
		t.Error("a*b should hold through a c-only change with a=b=1")
	}
	// During a changing, no term holds from 010 -> 011 except... b=1,a:0->1,
	// c=0: a*b is 0 at start, c term is 0: nothing holds.
	for t2 := range lc.Terms {
		if lc.TermHoldsThrough(t2, 0b010, 0b011) {
			t.Errorf("term %d should not hold through 010 -> 011", t2)
		}
	}
}

func TestExprEqualClone(t *testing.T) {
	e := MustParseExpr("(a + b')*c")
	c := e.Clone()
	if !e.Equal(c) {
		t.Error("clone must be structurally equal")
	}
	c.Kids[1].Name = "d"
	if e.Equal(c) {
		t.Error("mutated clone must differ")
	}
}
