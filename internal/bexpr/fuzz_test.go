package bexpr

import "testing"

// FuzzParse: the expression parser must never panic, and everything it
// accepts must survive a print/re-parse round trip with identical
// semantics.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a", "a'", "a*b + c", "(a + b')*(c + d)", "!(a*b)", "s'*a + s*b",
		"((a*b + c*d)' + e)*f", "1", "0", "a''", "a  b   c", "x0*x1 + x2'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return
		}
		if len(fn.Vars) > 16 {
			return // avoid exponential evaluation on huge inputs
		}
		printed := fn.String()
		fn2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, src, err)
		}
		if len(fn.Vars) != len(fn2.Vars) {
			t.Fatalf("variable count changed in round trip: %v vs %v", fn.Vars, fn2.Vars)
		}
		for p := uint64(0); p < 1<<uint(len(fn.Vars)) && p < 1<<10; p++ {
			if fn.Eval(p) != fn2.Eval(p) {
				t.Fatalf("round trip changed semantics of %q at %b", src, p)
			}
		}
	})
}
