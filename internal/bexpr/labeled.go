package bexpr

import (
	"fmt"
	"sort"
)

// Path identifies one leaf occurrence of a variable in a BFF expression —
// one physical path the signal takes through the corresponding circuit
// structure. Neg records the parity of complements above the leaf after
// DeMorgan push-down, so the *path signal* is Var XOR Neg and every product
// term of the labelled SOP asserts its paths positively.
type Path struct {
	Var int  // index into the Function's variable order
	Neg bool // true when the leaf is complemented after push-down
}

// LabeledCover is the path-labelled two-level form of a multi-level
// expression (§4.2.3): the expression flattened by hazard-preserving laws
// with every leaf occurrence kept distinct. Product terms are sets of path
// indices. Unlike Function.Cover, vacuous terms (a variable reconverging in
// both phases via different paths) are preserved — they are precisely the
// source of static-0 and single-input-change dynamic hazards.
type LabeledCover struct {
	NumVars int
	Paths   []Path
	Terms   [][]int // each term: sorted, deduplicated path indices
}

// Labeled flattens the function to its path-labelled SOP.
func (f *Function) Labeled() (*LabeledCover, error) {
	lc := &LabeledCover{NumVars: len(f.Vars)}
	terms, err := lc.flatten(f, f.Root, false)
	if err != nil {
		return nil, err
	}
	lc.Terms = dedupTerms(terms)
	return lc, nil
}

// MustLabeled is Labeled that panics on error.
func (f *Function) MustLabeled() *LabeledCover {
	lc, err := f.Labeled()
	if err != nil {
		panic(err)
	}
	return lc
}

func (lc *LabeledCover) flatten(f *Function, e *Expr, neg bool) ([][]int, error) {
	switch e.Op {
	case OpConst:
		if e.Val != neg {
			return [][]int{{}}, nil // single universal term
		}
		return nil, nil // empty sum
	case OpVar:
		p := len(lc.Paths)
		lc.Paths = append(lc.Paths, Path{Var: f.index[e.Name], Neg: neg})
		return [][]int{{p}}, nil
	case OpNot:
		return lc.flatten(f, e.Kids[0], !neg)
	case OpAnd, OpOr:
		conj := (e.Op == OpAnd) != neg
		parts := make([][][]int, len(e.Kids))
		for i, k := range e.Kids {
			t, err := lc.flatten(f, k, neg)
			if err != nil {
				return nil, err
			}
			parts[i] = t
		}
		if !conj {
			var out [][]int
			for _, p := range parts {
				out = append(out, p...)
			}
			return out, nil
		}
		out := [][]int{{}}
		for _, p := range parts {
			next := make([][]int, 0, len(out)*len(p))
			for _, a := range out {
				for _, b := range p {
					next = append(next, mergeTerm(a, b))
				}
			}
			out = next
			if len(out) > 1<<16 {
				return nil, fmt.Errorf("bexpr: labelled flattening exceeds %d terms", 1<<16)
			}
		}
		return out, nil
	}
	panic("bexpr: bad op")
}

func mergeTerm(a, b []int) []int {
	m := make([]int, 0, len(a)+len(b))
	m = append(m, a...)
	m = append(m, b...)
	sort.Ints(m)
	out := m[:0]
	for i, v := range m {
		if i == 0 || v != m[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupTerms(ts [][]int) [][]int {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	out := ts[:0]
	for i, t := range ts {
		if i > 0 && equalTerm(t, ts[i-1]) {
			continue
		}
		out = append(out, t)
	}
	return out
}

func equalTerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SignalAt returns the value of path p's signal at the given input point.
func (lc *LabeledCover) SignalAt(p int, point uint64) bool {
	pa := lc.Paths[p]
	v := point&(1<<uint(pa.Var)) != 0
	return v != pa.Neg
}

// TermAt evaluates product term t at a static input point: true iff every
// path signal of the term is 1.
func (lc *LabeledCover) TermAt(t int, point uint64) bool {
	for _, p := range lc.Terms[t] {
		if !lc.SignalAt(p, point) {
			return false
		}
	}
	return true
}

// Eval evaluates the whole labelled cover at a static point. It agrees with
// the original Function for all points (vacuous terms are identically 0 at
// static points).
func (lc *LabeledCover) Eval(point uint64) bool {
	for t := range lc.Terms {
		if lc.TermAt(t, point) {
			return true
		}
	}
	return false
}

// VacuousVar inspects term t for reconvergence: it returns the smallest
// variable that appears in the term through paths of both phases, or -1 if
// the term is not vacuous.
func (lc *LabeledCover) VacuousVar(t int) int {
	var pos, neg uint64
	for _, p := range lc.Terms[t] {
		pa := lc.Paths[p]
		if pa.Var >= 64 {
			continue
		}
		if pa.Neg {
			neg |= 1 << uint(pa.Var)
		} else {
			pos |= 1 << uint(pa.Var)
		}
	}
	both := pos & neg
	if both == 0 {
		return -1
	}
	for v := 0; v < lc.NumVars; v++ {
		if both&(1<<uint(v)) != 0 {
			return v
		}
	}
	return -1
}

// TermCanPulse reports whether term t can be momentarily 1 at some instant
// during a monotone multi-input change from point alpha to point beta,
// given that every path delay is arbitrary and independent: each path
// signal whose variable changes is 1 during some sub-interval, so the term
// can pulse iff every one of its path signals is 1 at alpha or at beta.
func (lc *LabeledCover) TermCanPulse(t int, alpha, beta uint64) bool {
	for _, p := range lc.Terms[t] {
		if !lc.SignalAt(p, alpha) && !lc.SignalAt(p, beta) {
			return false
		}
	}
	return true
}

// TermHoldsThrough reports whether term t is 1 at every instant of a
// monotone transition from alpha to beta regardless of delays: every path
// signal must be 1 at both endpoints and its variable must not change (a
// changing variable's path signal dips during the change window on some
// delay assignment).
func (lc *LabeledCover) TermHoldsThrough(t int, alpha, beta uint64) bool {
	for _, p := range lc.Terms[t] {
		if !lc.SignalAt(p, alpha) || !lc.SignalAt(p, beta) {
			return false
		}
		v := lc.Paths[p].Var
		if (alpha^beta)&(1<<uint(v)) != 0 {
			return false
		}
	}
	return true
}
