package bexpr

import (
	"strings"
	"testing"
)

// Regression for the fuzzing issue: the recursive-descent parser had no
// depth bound, so inputs of hundreds of thousands of '(' or '!' would
// exhaust the goroutine stack — a fatal runtime crash no recover() can
// catch. Deep nesting must now return an ordinary error.
func TestParseDeepNestingReturnsError(t *testing.T) {
	cases := []string{
		strings.Repeat("(", 200000) + "a" + strings.Repeat(")", 200000),
		strings.Repeat("(", 200000), // unbalanced: error must fire before the stack does
		strings.Repeat("!", 200000) + "a",
	}
	for i, src := range cases {
		if _, err := ParseExpr(src); err == nil {
			t.Fatalf("case %d: want error for %d-deep nesting, got none", i, 200000)
		}
	}
}

// Nesting below the bound still parses.
func TestParseModerateNestingOK(t *testing.T) {
	src := strings.Repeat("(", 500) + "a" + strings.Repeat(")", 500)
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != OpVar || e.Name != "a" {
		t.Fatalf("got %v", e)
	}
}
