package bexpr

import (
	"fmt"

	"gfmap/internal/cube"
)

// Parse parses a Boolean factored form expression. The grammar:
//
//	expr   := term ('+' term)*
//	term   := factor (('*')? factor)*      — '*' or juxtaposition is AND
//	factor := '!' factor | atom ('\'')*    — postfix apostrophe is NOT
//	atom   := IDENT | '0' | '1' | '(' expr ')'
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*; multi-character names must be
// separated by whitespace or '*'. The variable order of the returned
// Function is first-appearance order.
func Parse(s string) (*Function, error) {
	e, err := ParseExpr(s)
	if err != nil {
		return nil, err
	}
	return New(e), nil
}

// MustParse is Parse that panics on error; for static library data.
func MustParse(s string) *Function {
	f, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseExpr parses just the expression tree without fixing a variable
// order.
func ParseExpr(s string) (*Expr, error) {
	p := &parser{src: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("bexpr: trailing input at %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(s string) *Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

// maxNesting bounds the recursion depth of the parser. The parser is
// recursive-descent, so an adversarial input of many thousands of '(' or
// '!' characters would otherwise exhaust the goroutine stack — a fatal,
// unrecoverable crash rather than a returned error. The bound is far
// above any legitimate factored form (library cells and decomposed
// designs stay under depth ~100) while keeping worst-case stack use to a
// few megabytes.
const maxNesting = 10000

type parser struct {
	src   string
	pos   int
	depth int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseOr() (*Expr, error) {
	var kids []*Expr
	t, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids = append(kids, t)
	for p.peek() == '+' {
		p.pos++
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, t)
	}
	return Or(kids...), nil
}

func startsFactor(c byte) bool {
	return c == '(' || c == '!' || c == '0' || c == '1' || isIdentStart(c)
}

func (p *parser) parseAnd() (*Expr, error) {
	var kids []*Expr
	f, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	kids = append(kids, f)
	for {
		c := p.peek()
		if c == '*' {
			p.pos++
		} else if !startsFactor(c) {
			break
		}
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		kids = append(kids, f)
	}
	return And(kids...), nil
}

func (p *parser) parseFactor() (*Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxNesting {
		return nil, fmt.Errorf("bexpr: expression nesting deeper than %d", maxNesting)
	}
	if p.peek() == '!' {
		p.pos++
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	}
	a, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) && p.src[p.pos] == '\'' {
		a = Not(a)
		p.pos++
	}
	return a, nil
}

// ValidIdent reports whether s is a legal signal/variable identifier:
// [A-Za-z_][A-Za-z0-9_]*. Formats that admit richer names (BLIF allows
// almost any byte) must reject non-identifiers at parse time — the
// factored-form grammar, the eqn format and the netlist writers can only
// represent identifiers, so anything else cannot round-trip.
func ValidIdent(s string) bool {
	if len(s) == 0 || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdent(s[i]) {
			return false
		}
	}
	return true
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *parser) parseAtom() (*Expr, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("bexpr: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.pos++
		return e, nil
	case c == '0':
		p.pos++
		return Const(false), nil
	case c == '1':
		p.pos++
		return Const(true), nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
			p.pos++
		}
		return Var(p.src[start:p.pos]), nil
	case c == 0:
		return nil, fmt.Errorf("bexpr: unexpected end of input in %q", p.src)
	default:
		return nil, fmt.Errorf("bexpr: unexpected character %q at offset %d in %q", c, p.pos, p.src)
	}
}

// FromCover converts a two-level cover into the corresponding BFF
// expression (a sum of explicit products), preserving every cube. The
// names slice supplies the variable order; it must have at least f.N
// entries (missing entries default to x<i>).
func FromCover(f cube.Cover, names []string) *Function {
	name := func(v int) string {
		if v < len(names) {
			return names[v]
		}
		return fmt.Sprintf("x%d", v)
	}
	var terms []*Expr
	for _, c := range f.Cubes {
		var lits []*Expr
		for _, v := range c.Vars() {
			l := Var(name(v))
			if !c.PhaseOf(v) {
				l = Not(l)
			}
			lits = append(lits, l)
		}
		if len(lits) == 0 {
			terms = append(terms, Const(true))
			continue
		}
		terms = append(terms, And(lits...))
	}
	var root *Expr
	if len(terms) == 0 {
		root = Const(false)
	} else {
		root = Or(terms...)
	}
	vars := make([]string, f.N)
	for i := range vars {
		vars[i] = name(i)
	}
	fn, err := NewWithVars(root, vars)
	if err != nil {
		// Unreachable: every variable of the expression comes from names.
		panic(err)
	}
	return fn
}
