// Package blif reads and writes a subset of the Berkeley Logic Interchange
// Format sufficient for exchanging combinational burst-mode controller
// logic with classical synthesis tools: .model, .inputs, .outputs, .names
// (PLA-style single-output covers) and .end. Latches (.latch) are parsed
// and surfaced as metadata — the mapper works on the combinational network
// between them, per the paper's Figure 1 architecture.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/network"
)

// Latch records one .latch statement (input, output and initial value).
type Latch struct {
	Input   string
	Output  string
	Initial int
}

// Model is a parsed BLIF model: the combinational network plus latches.
type Model struct {
	Net     *network.Network
	Latches []Latch
}

// Parse reads a single BLIF model. Latch outputs become primary inputs of
// the combinational network; latch inputs become primary outputs.
func Parse(r io.Reader, fallbackName string) (*network.Network, error) {
	m, err := ParseModel(r, fallbackName)
	if err != nil {
		return nil, err
	}
	return m.Net, nil
}

// ParseModel reads a single BLIF model with latch metadata.
func ParseModel(r io.Reader, fallbackName string) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	// First pass: gather logical lines (with '\' continuations).
	var lines []string
	var cont strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimRight(line, " \t")
		if strings.HasSuffix(line, "\\") {
			cont.WriteString(strings.TrimSuffix(line, "\\"))
			cont.WriteByte(' ')
			continue
		}
		cont.WriteString(line)
		full := strings.TrimSpace(cont.String())
		cont.Reset()
		if full != "" {
			lines = append(lines, full)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	model := &Model{}
	name := fallbackName
	var inputs, outputs []string
	type names struct {
		signals []string // fanins then the output signal
		rows    []string // PLA rows "pattern value"
	}
	var tables []*names
	var cur *names

	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				name = fields[1]
			}
			cur = nil
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			cur = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			cur = nil
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			cur = &names{signals: fields[1:]}
			tables = append(tables, cur)
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: .latch wants input and output")
			}
			l := Latch{Input: fields[1], Output: fields[2]}
			if len(fields) >= 4 && fields[len(fields)-1] == "1" {
				l.Initial = 1
			}
			model.Latches = append(model.Latches, l)
			cur = nil
		case ".end":
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("blif: unexpected line %q", line)
			}
			cur.rows = append(cur.rows, line)
		}
	}

	// Signal names must be identifiers: the factored-form layer, the eqn
	// format and the netlist writers cannot represent anything else, so a
	// richer name would silently change the design on the next round trip.
	checkNames := func(kind string, names []string) error {
		for _, n := range names {
			if !bexpr.ValidIdent(n) {
				return fmt.Errorf("blif: %s name %q is not an identifier ([A-Za-z_][A-Za-z0-9_]*)", kind, n)
			}
		}
		return nil
	}
	if err := checkNames("input", inputs); err != nil {
		return nil, err
	}
	if err := checkNames("output", outputs); err != nil {
		return nil, err
	}
	for _, t := range tables {
		if err := checkNames("signal", t.signals); err != nil {
			return nil, err
		}
	}
	for _, l := range model.Latches {
		if err := checkNames("latch signal", []string{l.Input, l.Output}); err != nil {
			return nil, err
		}
	}

	net := network.New(name)
	for _, in := range inputs {
		if err := net.AddInput(in); err != nil {
			return nil, err
		}
	}
	// Latch outputs feed the combinational logic: primary inputs here.
	for _, l := range model.Latches {
		if err := net.AddInput(l.Output); err != nil {
			return nil, err
		}
	}
	for _, t := range tables {
		out := t.signals[len(t.signals)-1]
		fanins := t.signals[:len(t.signals)-1]
		expr, err := tableToExpr(fanins, t.rows)
		if err != nil {
			return nil, fmt.Errorf("blif: table for %s: %w", out, err)
		}
		if err := net.AddNode(out, expr); err != nil {
			return nil, err
		}
	}
	for _, o := range outputs {
		if err := net.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	for _, l := range model.Latches {
		if err := net.MarkOutput(l.Input); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	model.Net = net
	return model, nil
}

// tableToExpr converts a PLA table into an SOP expression. Only ON-set
// tables (output value 1) are supported; an empty table is constant 0 and
// a single empty row over zero inputs is constant 1.
func tableToExpr(fanins []string, rows []string) (*bexpr.Expr, error) {
	if len(fanins) == 0 {
		// Constant node: a single "1" row makes it 1.
		for _, r := range rows {
			if strings.TrimSpace(r) == "1" {
				return bexpr.Const(true), nil
			}
		}
		return bexpr.Const(false), nil
	}
	var terms []*bexpr.Expr
	for _, row := range rows {
		fields := strings.Fields(row)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad PLA row %q", row)
		}
		pattern, val := fields[0], fields[1]
		if val != "1" {
			return nil, fmt.Errorf("only ON-set (output 1) tables are supported, got row %q", row)
		}
		if len(pattern) != len(fanins) {
			return nil, fmt.Errorf("row %q has %d columns, want %d", row, len(pattern), len(fanins))
		}
		var lits []*bexpr.Expr
		for i, ch := range pattern {
			switch ch {
			case '1':
				lits = append(lits, bexpr.Var(fanins[i]))
			case '0':
				lits = append(lits, bexpr.Not(bexpr.Var(fanins[i])))
			case '-':
			default:
				return nil, fmt.Errorf("bad PLA character %q in %q", ch, row)
			}
		}
		if len(lits) == 0 {
			terms = append(terms, bexpr.Const(true))
		} else {
			terms = append(terms, bexpr.And(lits...))
		}
	}
	if len(terms) == 0 {
		return bexpr.Const(false), nil
	}
	return bexpr.Or(terms...), nil
}

// Write renders a combinational network as BLIF. Every node is flattened
// to its hazard-preserving SOP so the PLA rows mirror the cube structure.
func Write(w io.Writer, net *network.Network) error {
	if _, err := fmt.Fprintf(w, ".model %s\n.inputs %s\n.outputs %s\n",
		net.Name, strings.Join(net.Inputs, " "), strings.Join(net.Outputs, " ")); err != nil {
		return err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return err
	}
	for _, name := range order {
		node := net.Node(name)
		fn := bexpr.New(node.Expr)
		cov, err := fn.Cover()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, ".names %s %s\n", strings.Join(fn.Vars, " "), name); err != nil {
			return err
		}
		for _, c := range cov.Cubes {
			row := make([]byte, len(fn.Vars))
			for i := range fn.Vars {
				switch {
				case !c.HasVar(i):
					row[i] = '-'
				case c.PhaseOf(i):
					row[i] = '1'
				default:
					row[i] = '0'
				}
			}
			if _, err := fmt.Fprintf(w, "%s 1\n", row); err != nil {
				return err
			}
		}
		if len(cov.Cubes) == 0 {
			// Constant 0: no rows.
			continue
		}
	}
	_, err = fmt.Fprintln(w, ".end")
	return err
}

// WriteString renders a network as BLIF text.
func WriteString(net *network.Network) (string, error) {
	var b strings.Builder
	if err := Write(&b, net); err != nil {
		return "", err
	}
	return b.String(), nil
}
