package blif

import (
	"strings"
	"testing"

	"gfmap/internal/eqn"
	"gfmap/internal/network"
)

const sample = `
# a controller fragment
.model frag
.inputs a b c
.outputs f
.names a b u
11 1
.names u c f
1- 1
-1 1
.end
`

func TestParse(t *testing.T) {
	net, err := Parse(strings.NewReader(sample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "frag" {
		t.Errorf("name = %q", net.Name)
	}
	// f = a*b + c
	ref, err := eqn.ParseString("INPUT(a,b,c)\nOUTPUT(f)\nu = a*b;\nf = u + c;\n", "frag")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := network.Equivalent(net, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("parsed BLIF function wrong")
	}
}

func TestLatches(t *testing.T) {
	src := `
.model lm
.inputs req
.outputs ack
.latch Y0 y0 0
.names req y0 ack
11 1
.names req Y0
1 1
.end
`
	m, err := ParseModel(strings.NewReader(src), "lm")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latches) != 1 || m.Latches[0].Input != "Y0" || m.Latches[0].Output != "y0" {
		t.Fatalf("latches = %+v", m.Latches)
	}
	// y0 becomes a combinational input; Y0 a combinational output.
	found := false
	for _, in := range m.Net.Inputs {
		if in == "y0" {
			found = true
		}
	}
	if !found {
		t.Error("latch output should be a combinational input")
	}
	found = false
	for _, o := range m.Net.Outputs {
		if o == "Y0" {
			found = true
		}
	}
	if !found {
		t.Error("latch input should be a combinational output")
	}
}

func TestContinuationAndDontCare(t *testing.T) {
	src := `
.model c
.inputs a b \
        c
.outputs f
.names a b c f
1-0 1
01- 1
.end
`
	net, err := Parse(strings.NewReader(src), "c")
	if err != nil {
		t.Fatal(err)
	}
	// f = a*c' + a'*b
	if v, _ := net.EvalOutputs(0b001); v != 1 { // a=1
		t.Error("f(a)=1 expected (c'=1)")
	}
	if v, _ := net.EvalOutputs(0b101); v != 0 { // a=1,c=1
		t.Error("f(a,c)=0 expected")
	}
}

func TestRoundTrip(t *testing.T) {
	src := `
INPUT(a, b, c, d)
OUTPUT(f, g)
u = a*b + c';
f = u*d;
g = u' + a;
`
	net, err := eqn.ParseString(src, "rt")
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(text), "rt")
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	eq, err := network.Equivalent(net, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("BLIF round trip changed the function:\n%s", text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end",  // bad output value
		".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end", // wrong arity
		".model m\n.inputs a\n.outputs f\nstray\n.end",            // stray line
		".model m\n.inputs a\n.outputs f\n.names a f\n1x 1\n.end", // bad char
		".model m\n.inputs a\n.outputs g\n.names a f\n1 1\n.end",  // undefined output
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("Parse(%q): want error", c)
		}
	}
}
