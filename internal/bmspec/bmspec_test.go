package bmspec

import (
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/hfmin"
)

// toggle is the smallest useful burst-mode machine: a C-element-like
// handshake controller.
const toggleSrc = `
name toggle
input req 0
output ack 0
initial s0
s0 -> s1 : req+ / ack+
s1 -> s0 : req- / ack-
`

// vme is a simplified VME-bus-style read controller with two inputs.
const vmeSrc = `
name vmectl
input dsr 0
input ldtack 0
output lds 0
output dtack 0
initial idle
idle -> got : dsr+ / lds+
got -> ackd : ldtack+ / dtack+
ackd -> rel : dsr- / dtack- lds-
rel -> idle : ldtack- /
`

func TestParseAndPrint(t *testing.T) {
	m := MustParseString(toggleSrc)
	if m.Name != "toggle" || len(m.Inputs) != 1 || len(m.Outputs) != 1 {
		t.Fatalf("parsed machine wrong: %+v", m)
	}
	if len(m.Edges) != 2 {
		t.Fatalf("got %d edges", len(m.Edges))
	}
	// Round trip.
	m2, err := ParseString(m.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if m2.String() != m.String() {
		t.Errorf("round trip changed the machine:\n%s\nvs\n%s", m.String(), m2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"name x\ninput a 0\ns0 -> s1 : a+ /",             // no initial state
		"name x\ninput a 0\ninitial s0\ns0 -> s1 : a* /", // bad burst token
		"name x\ninput a 0\ninitial s0\ns0 s1 : a+ /",    // missing arrow
		"name x\ninput a 2\ninitial s0\ns0 -> s0 : a+ /", // bad reset value
		"name x\ninput a 0\ninitial s0\ns0 -> s1 : b+ /", // unknown signal
		"name x\ninput a 0\ninitial s0\ns0 -> s1 : /",    // empty input burst
		"name x\ninput a 1\ninitial s0\ns0 -> s1 : a+ /", // raising a signal already 1
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): want error", c)
		}
	}
}

func TestMaximalSetProperty(t *testing.T) {
	src := `
name bad
input a 0
input b 0
initial s0
s0 -> s1 : a+ /
s0 -> s2 : a+ b+ /
`
	if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "maximal set") {
		t.Errorf("want maximal-set violation, got %v", err)
	}
}

func TestInconsistentEntry(t *testing.T) {
	src := `
name bad
input a 0
input b 0
output x 0
initial s0
s0 -> s1 : a+ / x+
s0 -> s2 : b+ /
s1 -> s3 : b+ /
s2 -> s3 : a+ /
`
	// s3 entered with x=1 via s1 but x=0 via s2.
	if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("want inconsistency error, got %v", err)
	}
}

func TestSynthesizeToggle(t *testing.T) {
	m := MustParseString(toggleSrc)
	syn, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Net.NumNodes() == 0 {
		t.Fatal("no logic synthesised")
	}
	// Every function's cover must pass its own hazard-free check.
	for f, spec := range syn.Specs {
		if err := hfmin.Check(spec, syn.Covers[f]); err != nil {
			t.Errorf("function %s: %v", f, err)
		}
	}
	// The machine's operation must be reproduced: simulate the cycle.
	// Variables: req, then y0,y1 (one-hot states s0,s1).
	ack := syn.Covers["ack"]
	s0 := uint64(1) << 1 // y0
	s1 := uint64(1) << 2 // y1
	if ack.Eval(0|s0) != false {
		t.Error("ack must be 0 in s0 with req=0")
	}
	if ack.Eval(1|s0) != true {
		t.Error("ack must rise when req rises in s0")
	}
	if ack.Eval(1|s1) != true {
		t.Error("ack holds 1 in s1 with req=1")
	}
	if ack.Eval(0|s1) != false {
		t.Error("ack falls when req falls in s1")
	}
}

func TestSynthesizeVME(t *testing.T) {
	m := MustParseString(vmeSrc)
	syn, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	for f, spec := range syn.Specs {
		if err := hfmin.Check(spec, syn.Covers[f]); err != nil {
			t.Errorf("function %s: %v", f, err)
		}
		if len(spec.Transitions) == 0 {
			t.Errorf("function %s has no specified transitions", f)
		}
	}
	// Spot-check machine behaviour through the synthesised logic: walk the
	// four-phase cycle and verify outputs and next-state functions at each
	// stable point.
	sim := newSim(t, syn)
	sim.expect(map[string]bool{"lds": false, "dtack": false})
	sim.input("dsr", true)
	sim.expect(map[string]bool{"lds": true, "dtack": false})
	sim.latch()
	sim.input("ldtack", true)
	sim.expect(map[string]bool{"lds": true, "dtack": true})
	sim.latch()
	sim.input("dsr", false)
	sim.expect(map[string]bool{"lds": false, "dtack": false})
	sim.latch()
	sim.input("ldtack", false)
	sim.expect(map[string]bool{"lds": false, "dtack": false})
	sim.latch()
	sim.expectState(m.EncodingOf("idle"))
}

// sim drives a synthesised machine: combinational evaluation plus explicit
// latching of the next state (the Figure 1 architecture).
type sim struct {
	t     *testing.T
	syn   *Synthesis
	in    map[string]bool
	state uint64
}

func newSim(t *testing.T, syn *Synthesis) *sim {
	s := &sim{t: t, syn: syn, in: map[string]bool{}}
	m := syn.Machine
	for _, i := range m.Inputs {
		s.in[i] = m.InitialIn[i]
	}
	s.state = m.EncodingOf(m.Initial)
	return s
}

func (s *sim) point() uint64 {
	var p uint64
	for i, name := range s.syn.Machine.Inputs {
		if s.in[name] {
			p |= 1 << uint(i)
		}
	}
	return p | s.state<<uint(len(s.syn.Machine.Inputs))
}

func (s *sim) input(name string, v bool) { s.in[name] = v }

func (s *sim) expect(outs map[string]bool) {
	s.t.Helper()
	p := s.point()
	for o, want := range outs {
		if got := s.syn.Covers[o].Eval(p); got != want {
			s.t.Errorf("output %s = %v at point %b, want %v", o, got, p, want)
		}
	}
}

func (s *sim) next() uint64 {
	p := s.point()
	var code uint64
	for i := 0; i < s.syn.Machine.StateBits(); i++ {
		if s.syn.Covers[s.fnY(i)].Eval(p) {
			code |= 1 << uint(i)
		}
	}
	return code
}

func (s *sim) fnY(i int) string {
	return "Y" + string(rune('0'+i))
}

func (s *sim) latch() { s.state = s.next() }

func (s *sim) expectState(code uint64) {
	s.t.Helper()
	if s.state != code {
		s.t.Errorf("state = %b, want %b", s.state, code)
	}
}

// TestSynthesisIsMapperReady: the synthesised network parses, validates and
// contains SOP nodes only.
func TestSynthesisIsMapperReady(t *testing.T) {
	syn, err := Synthesize(MustParseString(vmeSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range syn.Net.NodeNames() {
		node := syn.Net.Node(name)
		// Node expressions from FromCover are OR of ANDs of literals.
		var check func(e *bexpr.Expr, depth int) bool
		check = func(e *bexpr.Expr, depth int) bool {
			switch e.Op {
			case bexpr.OpVar, bexpr.OpConst:
				return true
			case bexpr.OpNot:
				return e.Kids[0].Op == bexpr.OpVar
			case bexpr.OpAnd, bexpr.OpOr:
				for _, k := range e.Kids {
					if !check(k, depth+1) {
						return false
					}
				}
				return depth < 2
			}
			return false
		}
		if !check(node.Expr, 0) {
			t.Errorf("node %s is not two-level SOP: %s", name, node.Expr)
		}
	}
}

func TestCustomEncoding(t *testing.T) {
	m := MustParseString(toggleSrc)
	m.Encoding = map[string]uint64{"s0": 0, "s1": 1}
	m.StateBitN = 1
	syn, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(syn.VarNames); got != 2 {
		t.Errorf("custom encoding should give 2 variables, got %d", got)
	}
}

func TestEncodingValidation(t *testing.T) {
	m := MustParseString(toggleSrc)
	m.Encoding = map[string]uint64{"s0": 0, "s1": 0}
	m.StateBitN = 1
	if err := m.Validate(); err == nil {
		t.Error("duplicate codes should be rejected")
	}
	m.Encoding = map[string]uint64{"s0": 0}
	if err := m.Validate(); err == nil {
		t.Error("missing code should be rejected")
	}
}
