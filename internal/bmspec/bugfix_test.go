package bmspec

import (
	"fmt"
	"strings"
	"testing"
)

// chainMachine builds a single-input toggle chain with n states
// programmatically (the textual format is irrelevant to encoding bounds).
func chainMachine(n int) *Machine {
	m := &Machine{
		Name:       "chain",
		Inputs:     []string{"a"},
		InitialIn:  map[string]bool{"a": false},
		InitialOut: map[string]bool{},
		Initial:    "s0",
	}
	for i := 0; i < n-1; i++ {
		b := Burst{Rise: []string{"a"}}
		if i%2 == 1 {
			b = Burst{Fall: []string{"a"}}
		}
		m.Edges = append(m.Edges, Edge{
			From: fmt.Sprintf("s%d", i),
			To:   fmt.Sprintf("s%d", i+1),
			In:   b,
		})
	}
	return m
}

// Regression: the one-hot encoding computes 1<<i per state, so the 65th
// state's code wraps to 0 and aliases. Validate must reject machines that
// need more than MaxStateBits one-hot bits; exactly MaxStateBits is fine.
func TestValidateRejectsOneHotOverflow(t *testing.T) {
	ok := chainMachine(MaxStateBits)
	if err := ok.Validate(); err != nil {
		t.Fatalf("%d states must validate: %v", MaxStateBits, err)
	}
	if got := ok.EncodingOf(fmt.Sprintf("s%d", MaxStateBits-1)); got != 1<<63 {
		t.Fatalf("state %d code = %x, want %x", MaxStateBits-1, got, uint64(1)<<63)
	}

	big := chainMachine(MaxStateBits + 2)
	err := big.Validate()
	if err == nil {
		t.Fatal("66-state one-hot machine must be rejected")
	}
	if !strings.Contains(err.Error(), "state bits") && !strings.Contains(err.Error(), "64") {
		t.Errorf("error should name the encoding limit, got: %v", err)
	}
	// The aliasing the check prevents: without it, states 64 and beyond
	// all encode to 0 (1<<64 wraps), colliding with each other.
	if big.EncodingOf("s64") != 0 || big.EncodingOf("s65") != 0 {
		t.Skip("shift semantics changed; aliasing no longer occurs")
	}
}

// Regression: with StateBitN >= 64, the bound check `code >= 1<<StateBitN`
// compared against a wrapped-to-zero limit and waved every code through;
// and StateBitN itself was never range-checked.
func TestValidateEncodingWidthBounds(t *testing.T) {
	m := MustParseString(toggleSrc)

	m.Encoding = map[string]uint64{"s0": 0, "s1": 1 << 63}
	m.StateBitN = 64
	if err := m.Validate(); err != nil {
		t.Errorf("64-bit encoding with in-range codes must validate: %v", err)
	}

	m.StateBitN = 65
	if err := m.Validate(); err == nil {
		t.Error("StateBitN=65 must be rejected")
	}
	m.StateBitN = 0
	if err := m.Validate(); err == nil {
		t.Error("StateBitN=0 with an explicit encoding must be rejected")
	}
	m.StateBitN = -1
	if err := m.Validate(); err == nil {
		t.Error("negative StateBitN must be rejected")
	}

	m.Encoding = map[string]uint64{"s0": 0, "s1": 4}
	m.StateBitN = 2
	if err := m.Validate(); err == nil {
		t.Error("code 4 must be rejected for a 2-bit encoding")
	}
}

// Regression: the parser accepted names that cannot survive a
// String()↔Parse round trip — empty burst names from bare "+"/"-" tokens,
// structural characters inside identifiers, header keywords as states,
// and duplicate or input-vs-output conflicting declarations.
func TestParseRejectsUnrepresentableNames(t *testing.T) {
	cases := map[string]string{
		"bare rise token": "name x\ninput a 0\ninitial s0\ns0 -> s1 : + /",
		"bare fall token": "name x\ninput a 1\ninitial s0\ns0 -> s1 : - /",
		"slash in state":  "name x\ninput a 0\ninitial s0\ns0 -> s/1 : a+ /",
		"colon in state":  "name x\ninput a 0\ninitial s:0\ns:0 -> s1 : a+ /",
		"keyword state":   "name x\ninput a 0\ninitial input\ninput -> s1 : a+ /",
		"keyword edge":    "name x\ninput a 0\ninitial s0\ns0 -> name : a+ /",
		"digit-led name":  "name x\ninput 0a 0\ninitial s0\ns0 -> s1 : 0a+ /",
		"empty decl":      "name x\ninput a 0\noutput  0\ninitial s0\ns0 -> s1 : a+ /",
		"dup input":       "name x\ninput a 0\ninput a 0\ninitial s0\ns0 -> s1 : a+ /",
		"in/out conflict": "name x\ninput a 0\noutput a 0\ninitial s0\ns0 -> s1 : a+ /",
	}
	for what, src := range cases {
		m, err := ParseString(src)
		if err == nil {
			t.Errorf("%s: accepted; round trip would yield:\n%s", what, m.String())
			continue
		}
		if !strings.Contains(err.Error(), "line ") && !strings.Contains(err.Error(), "already declared") {
			t.Errorf("%s: error lacks position context: %v", what, err)
		}
	}
}

func TestValidIdent(t *testing.T) {
	for _, good := range []string{"a", "req", "s0", "_x", "ldtack", "A_9"} {
		if err := ValidIdent(good); err != nil {
			t.Errorf("ValidIdent(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "a b", "a->b", "a:b", "a/b", "a#b", "a+", "9a", "name", "input", "output", "initial"} {
		if err := ValidIdent(bad); err == nil {
			t.Errorf("ValidIdent(%q): want error", bad)
		}
	}
}

// Regression: the default bufio.Scanner buffer (64KiB) made wide edge
// lines fail with a bare "token too long" and no position. The raised
// buffer must accept realistic wide bursts; lines past the hard cap must
// fail with a line number.
func TestParseLongLines(t *testing.T) {
	const n = 12000 // ~84KiB edge lines, past the old 64KiB default
	var b strings.Builder
	b.WriteString("name wide\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "input x%d 0\n", i)
	}
	b.WriteString("initial s0\n")
	var rise, fall strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&rise, " x%d+", i)
		fmt.Fprintf(&fall, " x%d-", i)
	}
	fmt.Fprintf(&b, "s0 -> s1 :%s /\n", rise.String())
	fmt.Fprintf(&b, "s1 -> s0 :%s /\n", fall.String())
	if _, err := ParseString(b.String()); err != nil {
		t.Fatalf("wide edge lines must parse: %v", err)
	}

	huge := "name x\n# " + strings.Repeat("y", maxSpecLineBytes+1) + "\n"
	_, err := ParseString(huge)
	if err == nil {
		t.Fatal("line past the hard cap must fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("scanner error lacks the line number: %v", err)
	}
}

// FuzzRoundTrip: every machine the parser accepts must render back to the
// byte-identical spec it re-parses from — Parse(m.String()) is identity.
func FuzzRoundTrip(f *testing.F) {
	f.Add(toggleSrc)
	f.Add(vmeSrc)
	// Former breakers: bare burst tokens, structural characters in names,
	// keyword states, duplicate declarations.
	f.Add("name x\ninput a 0\ninitial s0\ns0 -> s1 : + /")
	f.Add("name x\ninput a 0\ninitial s0\ns0 -> s/1 : a+ /")
	f.Add("name x\ninput a 0\ninitial input\ninput -> s1 : a+ /")
	f.Add("name x\ninput a 0\ninput a 0\ninitial s0\ns0 -> s1 : a+ /")
	f.Add("name a#b\ninput a 0\ninitial s0\ns0 -> s1 : a+ /")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseString(src)
		if err != nil {
			return
		}
		text := m.String()
		m2, err := ParseString(text)
		if err != nil {
			t.Fatalf("accepted machine fails to re-parse: %v\n%s", err, text)
		}
		if m2.String() != text {
			t.Fatalf("String→Parse→String is not identity:\n--- first\n%s\n--- second\n%s", text, m2.String())
		}
	})
}
