package bmspec

import "testing"

// FuzzParse: the burst-mode spec parser must never panic; accepted
// machines must re-validate and round trip.
func FuzzParse(f *testing.F) {
	f.Add("name t\ninput r 0\noutput a 0\ninitial s0\ns0 -> s1 : r+ / a+\ns1 -> s0 : r- / a-\n")
	f.Add("name x\ninput p 0\ninput q 1\ninitial i\ni -> j : p+ q- /\nj -> i : p- q+ /\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseString(src)
		if err != nil {
			return
		}
		m2, err := ParseString(m.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, m.String())
		}
		if len(m2.Edges) != len(m.Edges) {
			t.Fatal("round trip changed edge count")
		}
	})
}
