// Package bmspec implements burst-mode (generalized fundamental-mode)
// machine specifications and their synthesis into hazard-free two-level
// logic — the front end of Figure 1 of the paper: a burst-mode state
// machine becomes combinational next-state/output logic plus latches, and
// the combinational part, synthesised through the hfmin substrate, is
// hazard-free for exactly the transitions the machine can exercise. That
// logic is what the technology mapper must map without introducing new
// hazards.
package bmspec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Burst is a set of signal edges: each named signal either rises or falls.
type Burst struct {
	Rise []string
	Fall []string
}

// Empty reports whether the burst contains no edges.
func (b Burst) Empty() bool { return len(b.Rise) == 0 && len(b.Fall) == 0 }

// Signals returns the set of signals the burst touches.
func (b Burst) Signals() map[string]bool {
	m := make(map[string]bool, len(b.Rise)+len(b.Fall))
	for _, s := range b.Rise {
		m[s] = true
	}
	for _, s := range b.Fall {
		m[s] = true
	}
	return m
}

func (b Burst) String() string {
	var parts []string
	for _, s := range b.Rise {
		parts = append(parts, s+"+")
	}
	for _, s := range b.Fall {
		parts = append(parts, s+"-")
	}
	return strings.Join(parts, " ")
}

// Edge is one burst-mode transition: when the input burst completes, the
// machine emits the output burst and moves to the next state.
type Edge struct {
	From, To string
	In       Burst
	Out      Burst
}

// Machine is a burst-mode specification.
type Machine struct {
	Name    string
	Inputs  []string
	Outputs []string

	Initial    string
	InitialIn  map[string]bool
	InitialOut map[string]bool

	Edges []Edge

	// Encoding optionally fixes the state encoding (state name -> code over
	// StateBits() bits). When nil, a one-hot encoding is derived, whose
	// transition interiors can never collide with other state codes.
	Encoding  map[string]uint64
	StateBitN int // number of state bits when Encoding is set
}

// States returns the state names in first-appearance order (initial
// first).
func (m *Machine) States() []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	add(m.Initial)
	for _, e := range m.Edges {
		add(e.From)
		add(e.To)
	}
	return out
}

// StateBits returns the number of state variables used by the encoding.
func (m *Machine) StateBits() int {
	if m.Encoding != nil {
		return m.StateBitN
	}
	return len(m.States())
}

// MaxStateBits is the widest state encoding a Machine may use: codes are
// uint64, so a one-hot encoding supports at most 64 states and an explicit
// Encoding at most 64 bits. Validate rejects machines past this bound —
// without the check, `1 << i` silently wraps to 0 for the 65th state and
// distinct states alias the same code.
const MaxStateBits = 64

// EncodingOf returns the code of a state under the chosen encoding
// (one-hot by default). Only meaningful on machines that pass Validate:
// past MaxStateBits states the one-hot shift would overflow uint64.
func (m *Machine) EncodingOf(state string) uint64 {
	if m.Encoding != nil {
		return m.Encoding[state]
	}
	for i, s := range m.States() {
		if s == state {
			return 1 << uint(i)
		}
	}
	return 0
}

// entry describes the stable condition in which a state is entered.
type entry struct {
	in  map[string]bool
	out map[string]bool
}

// EntryVector is the stable input/output condition in which a state is
// entered. Validate guarantees every path into a state agrees on it.
type EntryVector struct {
	In  map[string]bool
	Out map[string]bool
}

// EntryVectors computes each state's entry vector by propagating bursts
// from the initial state. The maps are fresh copies; callers may mutate
// them.
func (m *Machine) EntryVectors() (map[string]EntryVector, error) {
	ent, err := m.entries()
	if err != nil {
		return nil, err
	}
	out := make(map[string]EntryVector, len(ent))
	for s, e := range ent {
		out[s] = EntryVector{In: e.in, Out: e.out}
	}
	return out, nil
}

// entries computes each state's entry input/output vectors by propagating
// bursts from the initial state, checking consistency: every path into a
// state must agree on the values of all signals.
func (m *Machine) entries() (map[string]*entry, error) {
	ent := map[string]*entry{}
	if m.Initial == "" {
		return nil, fmt.Errorf("bmspec %s: no initial state", m.Name)
	}
	init := &entry{in: map[string]bool{}, out: map[string]bool{}}
	for _, i := range m.Inputs {
		init.in[i] = m.InitialIn[i]
	}
	for _, o := range m.Outputs {
		init.out[o] = m.InitialOut[o]
	}
	ent[m.Initial] = init
	queue := []string{m.Initial}
	edgesFrom := map[string][]Edge{}
	for _, e := range m.Edges {
		edgesFrom[e.From] = append(edgesFrom[e.From], e)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		cur := ent[s]
		for _, e := range edgesFrom[s] {
			nin, err := applyBurst(cur.in, e.In, "input", e)
			if err != nil {
				return nil, err
			}
			nout, err := applyBurst(cur.out, e.Out, "output", e)
			if err != nil {
				return nil, err
			}
			next := &entry{in: nin, out: nout}
			if old, ok := ent[e.To]; ok {
				if !sameVec(old.in, nin) || !sameVec(old.out, nout) {
					return nil, fmt.Errorf("bmspec %s: state %s entered with inconsistent signal values via %s->%s",
						m.Name, e.To, e.From, e.To)
				}
				continue
			}
			ent[e.To] = next
			queue = append(queue, e.To)
		}
	}
	for _, s := range m.States() {
		if ent[s] == nil {
			return nil, fmt.Errorf("bmspec %s: state %s unreachable from %s", m.Name, s, m.Initial)
		}
	}
	return ent, nil
}

func applyBurst(cur map[string]bool, b Burst, kind string, e Edge) (map[string]bool, error) {
	out := make(map[string]bool, len(cur))
	for k, v := range cur {
		out[k] = v
	}
	for _, s := range b.Rise {
		v, ok := out[s]
		if !ok {
			return nil, fmt.Errorf("bmspec: edge %s->%s uses unknown %s signal %q", e.From, e.To, kind, s)
		}
		if v {
			return nil, fmt.Errorf("bmspec: edge %s->%s raises %s %q which is already 1", e.From, e.To, kind, s)
		}
		out[s] = true
	}
	for _, s := range b.Fall {
		v, ok := out[s]
		if !ok {
			return nil, fmt.Errorf("bmspec: edge %s->%s uses unknown %s signal %q", e.From, e.To, kind, s)
		}
		if !v {
			return nil, fmt.Errorf("bmspec: edge %s->%s lowers %s %q which is already 0", e.From, e.To, kind, s)
		}
		out[s] = false
	}
	return out, nil
}

func sameVec(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness: reachable consistent states,
// non-empty distinguishable input bursts (the burst-mode maximal set
// property: no input burst leaving a state may be a subset of another), and
// a usable encoding.
func (m *Machine) Validate() error {
	if len(m.Inputs) == 0 {
		return fmt.Errorf("bmspec %s: no inputs", m.Name)
	}
	if _, err := m.entries(); err != nil {
		return err
	}
	byFrom := map[string][]Edge{}
	for _, e := range m.Edges {
		if e.In.Empty() {
			return fmt.Errorf("bmspec %s: edge %s->%s has an empty input burst", m.Name, e.From, e.To)
		}
		byFrom[e.From] = append(byFrom[e.From], e)
	}
	for from, edges := range byFrom {
		for i := 0; i < len(edges); i++ {
			for j := 0; j < len(edges); j++ {
				if i == j {
					continue
				}
				if burstSubset(edges[i].In, edges[j].In) {
					return fmt.Errorf("bmspec %s: state %s violates the maximal set property: burst %q is contained in %q",
						m.Name, from, edges[i].In, edges[j].In)
				}
			}
		}
	}
	if m.Encoding == nil {
		// One-hot: state i gets code 1<<i, so the state count is the bit
		// width and must fit a uint64.
		if n := len(m.States()); n > MaxStateBits {
			return fmt.Errorf("bmspec %s: %d states need %d one-hot state bits, exceeding the %d-bit encoding limit",
				m.Name, n, n, MaxStateBits)
		}
	} else {
		if m.StateBitN < 1 || m.StateBitN > MaxStateBits {
			return fmt.Errorf("bmspec %s: state encoding width %d outside [1, %d]", m.Name, m.StateBitN, MaxStateBits)
		}
		states := m.States()
		seen := map[uint64]string{}
		for _, s := range states {
			code, ok := m.Encoding[s]
			if !ok {
				return fmt.Errorf("bmspec %s: state %s has no encoding", m.Name, s)
			}
			// Shift-guarded: for StateBitN == 64 every uint64 code fits, and
			// 1<<64 would wrap to 0 and wave every code through.
			if m.StateBitN < 64 && code >= 1<<uint(m.StateBitN) {
				return fmt.Errorf("bmspec %s: state %s code %x exceeds %d bits", m.Name, s, code, m.StateBitN)
			}
			if other, dup := seen[code]; dup {
				return fmt.Errorf("bmspec %s: states %s and %s share code %x", m.Name, s, other, code)
			}
			seen[code] = s
		}
	}
	return nil
}

func burstSubset(a, b Burst) bool {
	bs := b.Signals()
	for s := range a.Signals() {
		if !bs[s] {
			return false
		}
	}
	return true
}

// reservedWords are the format's header keywords. A state (or machine)
// named after one would render as a line the parser dispatches as a
// header, breaking the String()↔Parse round trip.
var reservedWords = map[string]bool{"name": true, "input": true, "output": true, "initial": true}

// ValidIdent reports whether s can serve as a machine, state or signal
// name in the textual format: [A-Za-z_][A-Za-z0-9_]*, not a header
// keyword. The format's structural characters — '#' (comment), "->", ':',
// '/', '+', '-', whitespace — are excluded by construction, so every valid
// identifier survives a String()↔Parse round trip unchanged.
func ValidIdent(s string) error {
	if s == "" {
		return fmt.Errorf("empty identifier")
	}
	if reservedWords[s] {
		return fmt.Errorf("identifier %q is a reserved word", s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("identifier %q starts with a digit", s)
			}
		default:
			return fmt.Errorf("identifier %q contains %q", s, string(c))
		}
	}
	return nil
}

// maxSpecLineBytes bounds a single line of a spec file. Machines near the
// synthesis variable bound can still carry wide bursts, so this is far
// above any realistic edge line; past it the parser reports the offending
// line instead of silently truncating.
const maxSpecLineBytes = 4 << 20

// Parse reads a machine from the textual format:
//
//	name scsi
//	input req 0
//	output ack 0
//	initial idle
//	idle -> busy : req+ / ack+
//	busy -> idle : req- / ack-
//
// Comments start with '#'. Input/output declarations give the reset value.
func Parse(r io.Reader) (*Machine, error) {
	m := &Machine{InitialIn: map[string]bool{}, InitialOut: map[string]bool{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxSpecLineBytes)
	declared := map[string]string{} // signal -> "input" | "output"
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("bmspec: line %d: name wants one identifier", lineNo)
			}
			if err := ValidIdent(fields[1]); err != nil {
				return nil, fmt.Errorf("bmspec: line %d: machine name: %v", lineNo, err)
			}
			m.Name = fields[1]
		case "input", "output":
			if len(fields) != 3 || (fields[2] != "0" && fields[2] != "1") {
				return nil, fmt.Errorf("bmspec: line %d: %s wants a name and a reset value", lineNo, fields[0])
			}
			if err := ValidIdent(fields[1]); err != nil {
				return nil, fmt.Errorf("bmspec: line %d: %s name: %v", lineNo, fields[0], err)
			}
			if kind, dup := declared[fields[1]]; dup {
				return nil, fmt.Errorf("bmspec: line %d: signal %q already declared as an %s", lineNo, fields[1], kind)
			}
			declared[fields[1]] = fields[0]
			v := fields[2] == "1"
			if fields[0] == "input" {
				m.Inputs = append(m.Inputs, fields[1])
				m.InitialIn[fields[1]] = v
			} else {
				m.Outputs = append(m.Outputs, fields[1])
				m.InitialOut[fields[1]] = v
			}
		case "initial":
			if len(fields) != 2 {
				return nil, fmt.Errorf("bmspec: line %d: initial wants one state", lineNo)
			}
			if err := ValidIdent(fields[1]); err != nil {
				return nil, fmt.Errorf("bmspec: line %d: initial state: %v", lineNo, err)
			}
			m.Initial = fields[1]
		default:
			edge, err := parseEdge(line)
			if err != nil {
				return nil, fmt.Errorf("bmspec: line %d: %w", lineNo, err)
			}
			m.Edges = append(m.Edges, edge)
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner stops on the line after the last one delivered;
		// bufio.ErrTooLong carries no position of its own.
		return nil, fmt.Errorf("bmspec: line %d: %w", lineNo+1, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseString parses a machine from a string.
func ParseString(s string) (*Machine, error) { return Parse(strings.NewReader(s)) }

// MustParseString is ParseString that panics on error.
func MustParseString(s string) *Machine {
	m, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return m
}

func parseEdge(line string) (Edge, error) {
	arrow := strings.Index(line, "->")
	colon := strings.Index(line, ":")
	if arrow < 0 || colon < arrow {
		return Edge{}, fmt.Errorf("bad edge syntax %q", line)
	}
	e := Edge{
		From: strings.TrimSpace(line[:arrow]),
		To:   strings.TrimSpace(line[arrow+2 : colon]),
	}
	if err := ValidIdent(e.From); err != nil {
		return Edge{}, fmt.Errorf("edge source state: %v", err)
	}
	if err := ValidIdent(e.To); err != nil {
		return Edge{}, fmt.Errorf("edge target state: %v", err)
	}
	rest := line[colon+1:]
	inPart, outPart := rest, ""
	if slash := strings.Index(rest, "/"); slash >= 0 {
		inPart, outPart = rest[:slash], rest[slash+1:]
	}
	var err error
	if e.In, err = parseBurst(inPart); err != nil {
		return Edge{}, err
	}
	if e.Out, err = parseBurst(outPart); err != nil {
		return Edge{}, err
	}
	return e, nil
}

func parseBurst(s string) (Burst, error) {
	var b Burst
	for _, tok := range strings.Fields(s) {
		var name string
		switch {
		case strings.HasSuffix(tok, "+"):
			name = strings.TrimSuffix(tok, "+")
			b.Rise = append(b.Rise, name)
		case strings.HasSuffix(tok, "-"):
			name = strings.TrimSuffix(tok, "-")
			b.Fall = append(b.Fall, name)
		default:
			return Burst{}, fmt.Errorf("bad burst token %q (want name+ or name-)", tok)
		}
		if err := ValidIdent(name); err != nil {
			return Burst{}, fmt.Errorf("burst token %q: %v", tok, err)
		}
	}
	sort.Strings(b.Rise)
	sort.Strings(b.Fall)
	return b, nil
}

// String renders the machine in the textual format. Nameless machines
// omit the name line (the format's fields are all optional headers).
func (m *Machine) String() string {
	var b strings.Builder
	if m.Name != "" {
		fmt.Fprintf(&b, "name %s\n", m.Name)
	}
	for _, i := range m.Inputs {
		fmt.Fprintf(&b, "input %s %d\n", i, b2i(m.InitialIn[i]))
	}
	for _, o := range m.Outputs {
		fmt.Fprintf(&b, "output %s %d\n", o, b2i(m.InitialOut[o]))
	}
	fmt.Fprintf(&b, "initial %s\n", m.Initial)
	for _, e := range m.Edges {
		fmt.Fprintf(&b, "%s -> %s : %s / %s\n", e.From, e.To, e.In, e.Out)
	}
	return b.String()
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
