package bmspec

import (
	"fmt"
	"sort"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/hfmin"
	"gfmap/internal/network"
)

// Synthesis is the result of compiling a burst-mode machine into
// hazard-free combinational logic (the architecture of Figure 1): a
// network whose inputs are the machine inputs plus the current-state
// variables y<i>, and whose outputs are the machine outputs plus the
// next-state variables Y<i>. State variables are fed back through latches
// outside the combinational block.
type Synthesis struct {
	Machine  *Machine
	Net      *network.Network
	VarNames []string // variable order of the function space: inputs then y bits
	Specs    map[string]hfmin.Spec
	Covers   map[string]cube.Cover
}

// Synthesize validates the machine, assigns the state encoding, derives
// each output and next-state function with its set of specified
// multi-input-change transitions, and minimises every function with the
// hazard-free minimiser. The resulting logic is hazard-free for every
// transition the machine can exercise — the paper's starting condition for
// technology mapping.
func Synthesize(m *Machine) (*Synthesis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ent, err := m.entries()
	if err != nil {
		return nil, err
	}
	nin := len(m.Inputs)
	nbits := m.StateBits()
	n := nin + nbits
	if n > 20 {
		return nil, fmt.Errorf("bmspec %s: %d input+state variables exceed the synthesis bound of 20", m.Name, n)
	}

	varNames := append([]string(nil), m.Inputs...)
	for i := 0; i < nbits; i++ {
		varNames = append(varNames, fmt.Sprintf("y%d", i))
	}
	point := func(in map[string]bool, code uint64) uint64 {
		var p uint64
		for i, name := range m.Inputs {
			if in[name] {
				p |= 1 << uint(i)
			}
		}
		p |= code << uint(nin)
		return p
	}

	// Function names: machine outputs then next-state bits.
	var fnNames []string
	fnNames = append(fnNames, m.Outputs...)
	for i := 0; i < nbits; i++ {
		fnNames = append(fnNames, fmt.Sprintf("Y%d", i))
	}

	vals := map[string]map[uint64]bool{}
	for _, f := range fnNames {
		vals[f] = map[uint64]bool{}
	}
	assign := func(f string, p uint64, v bool) error {
		if old, ok := vals[f][p]; ok && old != v {
			return fmt.Errorf("bmspec %s: function %s gets conflicting values at point %x (state encoding race?)", m.Name, f, p)
		}
		vals[f][p] = v
		return nil
	}
	assignAll := func(p uint64, outs map[string]bool, next uint64) error {
		for _, o := range m.Outputs {
			if err := assign(o, p, outs[o]); err != nil {
				return err
			}
		}
		for i := 0; i < nbits; i++ {
			if err := assign(fmt.Sprintf("Y%d", i), p, next&(1<<uint(i)) != 0); err != nil {
				return err
			}
		}
		return nil
	}

	trans := map[string][]hfmin.Transition{}
	addTrans := func(from, to uint64) {
		for _, f := range fnNames {
			trans[f] = append(trans[f], hfmin.Transition{From: from, To: to})
		}
	}

	for _, s := range m.States() {
		es := ent[s]
		code := m.EncodingOf(s)
		a := point(es.in, code)
		if err := assignAll(a, es.out, code); err != nil {
			return nil, err
		}
		for _, e := range m.Edges {
			if e.From != s {
				continue
			}
			newIn, err := applyBurst(es.in, e.In, "input", e)
			if err != nil {
				return nil, err
			}
			newOut, err := applyBurst(es.out, e.Out, "output", e)
			if err != nil {
				return nil, err
			}
			nextCode := m.EncodingOf(e.To)
			b := point(newIn, code)
			if err := assignAll(b, newOut, nextCode); err != nil {
				return nil, err
			}
			// Interior points of the input burst hold the pre-burst values:
			// the machine reacts only to the complete burst.
			sigs := burstSignalList(e.In)
			for sub := 1; sub < 1<<uint(len(sigs)); sub++ {
				if sub == 1<<uint(len(sigs))-1 {
					continue // the complete burst is point b
				}
				part := copyVec(es.in)
				for j, sig := range sigs {
					if sub&(1<<uint(j)) != 0 {
						part[sig] = !part[sig]
					}
				}
				if err := assignAll(point(part, code), es.out, code); err != nil {
					return nil, err
				}
			}
			addTrans(a, b)
			if nextCode != code {
				c := point(newIn, nextCode)
				if err := assignAll(c, newOut, nextCode); err != nil {
					return nil, err
				}
				// The state update follows the set-before-reset discipline of
				// one-hot async controllers: rising state bits come up first,
				// then the falling ones drop, so the machine passes through
				// code|nextCode — never through code&nextCode. Specifying the
				// update as one supercube(code,nextCode) transition would
				// demand hazard-freedom at the all-bits-cleared interior too,
				// a point distinct updates share with conflicting function
				// values (no cover can satisfy both).
				if mid := code | nextCode; mid != code && mid != nextCode {
					bm := point(newIn, mid)
					if err := assignAll(bm, newOut, nextCode); err != nil {
						return nil, err
					}
					addTrans(b, bm)
					addTrans(bm, c)
				} else {
					addTrans(b, c)
				}
			}
		}
	}

	// Build per-function ON/OFF covers; everything unassigned is don't-care.
	syn := &Synthesis{
		Machine:  m,
		VarNames: varNames,
		Specs:    map[string]hfmin.Spec{},
		Covers:   map[string]cube.Cover{},
	}
	net := network.New(m.Name)
	for _, in := range varNames {
		if err := net.AddInput(in); err != nil {
			return nil, err
		}
	}
	for _, f := range fnNames {
		on := cube.NewCover(n)
		careSet := cube.NewCover(n)
		pts := make([]uint64, 0, len(vals[f]))
		for p := range vals[f] {
			pts = append(pts, p)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
		for _, p := range pts {
			careSet.Add(cube.Minterm(n, p))
			if vals[f][p] {
				on.Add(cube.Minterm(n, p))
			}
		}
		dc := careSet.Complement()
		spec := hfmin.Spec{N: n, On: on, DC: dc, Transitions: dedupTransitions(trans[f])}
		res, err := hfmin.Minimize(spec)
		if err != nil {
			return nil, fmt.Errorf("bmspec %s: function %s: %w", m.Name, f, err)
		}
		syn.Specs[f] = spec
		syn.Covers[f] = res.Cover
		fn := bexpr.FromCover(res.Cover, varNames)
		if err := net.AddNode(f, fn.Root); err != nil {
			return nil, err
		}
		if err := net.MarkOutput(f); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	syn.Net = net
	return syn, nil
}

func burstSignalList(b Burst) []string {
	out := append([]string(nil), b.Rise...)
	out = append(out, b.Fall...)
	sort.Strings(out)
	return out
}

func copyVec(v map[string]bool) map[string]bool {
	out := make(map[string]bool, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func dedupTransitions(ts []hfmin.Transition) []hfmin.Transition {
	seen := map[hfmin.Transition]bool{}
	var out []hfmin.Transition
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
