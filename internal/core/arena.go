package core

// Per-worker arena allocation for the covering DP hot path.
//
// The cut → match → hazard pipeline is invoked once per (node, cut, phase,
// cell) tuple and historically allocated on almost every step: merged cut
// slices, cluster expression trees, truth-table words, signature vectors,
// binding scratch. All of that transient memory now comes from a
// coneScratch: a bundle of bump arenas, epoch-stamped mark slices and
// reusable buffers owned by exactly one DP worker at a time and reset once
// per cone (or once per cut, for the shortest-lived surfaces) instead of
// freed per call.
//
// Ownership rule: a coneScratch is touched by one goroutine at a time,
// never shared, never locked. Workers take one from scratchPool, use it
// for a batch of cones, scrub the reference-typed fields and return it.
// A panic mid-cone drops the scratch instead of pooling it, so poisoned
// state cannot resurface; error returns (including cancellation) leave
// the scratch structurally consistent and scrubbing severs every pointer
// to request-scoped data before the pool sees it.
//
// Options.DisableArenas (mapper.sc == nil) restores the historical
// per-call allocation behaviour; results are byte-identical either way.

import (
	"strconv"
	"sync"

	"gfmap/internal/bexpr"
	"gfmap/internal/match"
	"gfmap/internal/truthtab"
)

// intArenaBlock is the block size (in ints) of an intArena. Blocks are
// allocated once and reused for the life of the scratch; slices handed out
// never outgrow their block, so committed data stays valid until reset.
const intArenaBlock = 8192

// intArena is a block-based bump allocator for []int storage. Blocks are
// never reallocated or moved, so a slice returned by alloc stays valid
// (and stable) until reset; reset simply rewinds the cursor, keeping the
// blocks for reuse.
type intArena struct {
	blocks [][]int
	b, off int
}

func (a *intArena) reset() { a.b, a.off = 0, 0 }

// alloc returns a zero-length slice with capacity n drawn from the arena.
// Appending beyond n would escape to the heap; callers size n exactly.
func (a *intArena) alloc(n int) []int {
	if n > intArenaBlock {
		return make([]int, 0, n) // oversize: plain heap slice, GC'd on drop
	}
	if a.b == len(a.blocks) {
		a.blocks = append(a.blocks, make([]int, intArenaBlock))
	}
	if a.off+n > intArenaBlock {
		a.b++
		a.off = 0
		if a.b == len(a.blocks) {
			a.blocks = append(a.blocks, make([]int, intArenaBlock))
		}
	}
	s := a.blocks[a.b][a.off : a.off : a.off+n]
	a.off += n
	return s
}

// copyOf commits src into the arena and returns the stable copy.
func (a *intArena) copyOf(src []int) []int {
	return append(a.alloc(len(src)), src...)
}

// Block sizes of the expression arena: nodes per block and child-pointer
// slots per block.
const (
	exprArenaBlock = 512
	kidArenaBlock  = 1024
)

// exprArena bump-allocates bexpr.Expr nodes and their Kids slices for
// cluster functions. Expr nodes are linked by pointer, so value storage
// must never move: blocks are fixed-size arrays that stay put, and reset
// only rewinds the cursors. The arena is reset once per cut — a cluster
// expression only needs to outlive its own cut's matching.
type exprArena struct {
	blocks   [][]bexpr.Expr
	b, off   int
	kids     [][]*bexpr.Expr
	kb, koff int
}

func (a *exprArena) reset() { a.b, a.off, a.kb, a.koff = 0, 0, 0, 0 }

func (a *exprArena) node() *bexpr.Expr {
	if a.b == len(a.blocks) {
		a.blocks = append(a.blocks, make([]bexpr.Expr, exprArenaBlock))
	}
	if a.off == exprArenaBlock {
		a.b++
		a.off = 0
		if a.b == len(a.blocks) {
			a.blocks = append(a.blocks, make([]bexpr.Expr, exprArenaBlock))
		}
	}
	e := &a.blocks[a.b][a.off]
	a.off++
	*e = bexpr.Expr{}
	return e
}

func (a *exprArena) kidSlice(n int) []*bexpr.Expr {
	if n > kidArenaBlock {
		return make([]*bexpr.Expr, 0, n)
	}
	if a.kb == len(a.kids) {
		a.kids = append(a.kids, make([]*bexpr.Expr, kidArenaBlock))
	}
	if a.koff+n > kidArenaBlock {
		a.kb++
		a.koff = 0
		if a.kb == len(a.kids) {
			a.kids = append(a.kids, make([]*bexpr.Expr, kidArenaBlock))
		}
	}
	s := a.kids[a.kb][a.koff : a.koff : a.koff+n]
	a.koff += n
	return s
}

// staticVarNames holds the cluster variable names "v0", "v1", ... as
// static strings: cluster functions always name their variables by index,
// so the hot path never formats a name.
var staticVarNames = func() [64]string {
	var names [64]string
	for i := range names {
		names[i] = "v" + strconv.Itoa(i)
	}
	return names
}()

func varName(i int) string {
	if i < len(staticVarNames) {
		return staticVarNames[i]
	}
	return "v" + strconv.Itoa(i)
}

// coneScratch is the per-worker allocation state of the covering DP. All
// transient memory of the cut → match → hazard pipeline is drawn from it.
// Generation discipline:
//
//   - epoch marks (sigSeen, nodeMark, varMark) are stamped with a
//     monotonically increasing counter and never cleared — a stale entry
//     simply fails the current-epoch comparison;
//   - the cuts arena holds committed cut node lists and resets per cone;
//   - the tmp arena holds in-flight cut combinations and resets per
//     top-level enumCuts call;
//   - the exprs arena holds cluster expression trees and resets per cut.
type coneScratch struct {
	epoch int64

	// Epoch-stamped marks: sigSeen counts distinct signals per cut,
	// nodeMark flags cut membership by node id, varMark/varOf map signal
	// ids to cluster variable indices.
	sigSeen  []int64
	nodeMark []int64
	varMark  []int64
	varOf    []int

	// sigIDs maps tree node id -> dense signal identity for the current
	// cone (leaves sharing a signal name share an id).
	sigIDs []int

	// Cut enumeration buffers: the rolling cross-product generations and
	// the per-kid option list.
	comboA, comboB []cutEntry
	kidOpts        []cutEntry

	tmp  intArena // in-flight merged cuts; reset per enumCuts call
	cuts intArena // committed (surviving) cuts; reset per cone

	exprs exprArena // cluster expression trees; reset per cut

	varNodes []int    // cluster variable -> tree node, reused per cut
	demand   []int    // per-variable phase demand, reused per binding
	names    []string // cluster variable names (all from the static table)
	keyBuf   []byte   // match-index probe key, reused per cut

	// Truth-table and signature scratch for dpNode, reused per cut.
	ttPos, ttNeg   truthtab.TT
	sigPos, sigNeg truthtab.SigVector

	fn  bexpr.Function // the cluster function, Reset per cut
	mc  matchCtx       // binding visitor, rebound per tryCell
	msc match.Scratch  // permutation-search state

	// enumActive guards enumCuts re-entrancy: when a memoized child entry
	// was nil (every cut filtered) the parent's enumeration recurses while
	// the scratch buffers above are live, so the nested call falls back to
	// heap-local buffers. This preserves the historical work counters
	// exactly — no extra enumeration pass is introduced.
	enumActive bool
}

// stamp advances the epoch and returns marks resized to n. Entries are
// never cleared: validity is "marks[i] == epoch", and the epoch is bumped
// on every call, so stale stamps (including ones surviving a pool
// round-trip — the epoch travels with the marks) can never match.
func (sc *coneScratch) stamp(marks *[]int64, n int) ([]int64, int64) {
	sc.epoch++
	m := *marks
	if cap(m) < n {
		m = make([]int64, n)
	} else {
		m = m[:n]
	}
	*marks = m
	return m, sc.epoch
}

// beginCone rewinds the per-cone arenas. Epoch marks need no reset — the
// counter keeps rising.
func (sc *coneScratch) beginCone() {
	sc.cuts.reset()
	sc.tmp.reset()
	sc.exprs.reset()
	sc.enumActive = false
}

// scrub severs every pointer from the scratch to request-scoped data —
// the cone mapper, cluster functions, cell/matcher handles, cached hazard
// keys, signal-derived strings — so a pooled scratch reused by the next
// request carries only its own int/bool buffers and static var names.
func (sc *coneScratch) scrub() {
	sc.mc = matchCtx{}
	sc.fn.Reset(nil, nil)
	sc.msc.Scrub()
	sc.ttPos.N, sc.ttNeg.N = 0, 0
	clear(sc.ttPos.Bits)
	clear(sc.ttNeg.Bits)
	sc.sigPos.N, sc.sigPos.Ones = 0, 0
	sc.sigNeg.N, sc.sigNeg.Ones = 0, 0
	clear(sc.sigPos.C0)
	clear(sc.sigPos.C1)
	clear(sc.sigNeg.C0)
	clear(sc.sigNeg.C1)
	clear(sc.demand)
	clear(sc.keyBuf[:cap(sc.keyBuf)])
	sc.keyBuf = sc.keyBuf[:0]
	sc.enumActive = false
}

var scratchPool = sync.Pool{New: func() any { return new(coneScratch) }}

func acquireScratch() *coneScratch { return scratchPool.Get().(*coneScratch) }

// releaseScratch scrubs and pools a scratch. Callers must not release a
// scratch that may be mid-update (after a recovered panic the scratch is
// dropped instead).
func releaseScratch(sc *coneScratch) {
	sc.scrub()
	scratchPool.Put(sc)
}

// mergeCutInto merges two sorted, duplicate-free node lists into dst
// (zero length, capacity ≥ len(a)+len(b)). Equivalent to the historical
// concatenate+sort+dedupe on such inputs — which is all the enumeration
// ever produces — without the per-pair allocation.
func mergeCutInto(a, b, dst []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
