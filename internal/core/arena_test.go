package core

// Tests for the per-worker arena allocation of the covering DP hot path:
// arena primitives, the allocation-pattern bugfixes (mergeCutInto,
// epoch-stamped distinctSignals, scratch-backed cut enumeration), the
// per-cone allocation budgets, and the pool-hygiene guarantees.

import (
	"fmt"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"gfmap/internal/hazard"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// arenaTestMapper decomposes and partitions src and returns a mapper set
// up exactly like mapPipeline would (serial, arena scratch attached when
// arenas is true), plus the design's cones. The caller owns the scratch;
// it is intentionally never released back to the pool.
func arenaTestMapper(t testing.TB, src string, arenas bool) (*mapper, []network.Cone) {
	t.Helper()
	net := parseNet(t, src, "arena")
	lib := library.MustGet("LSI9K")
	if !lib.Annotated() {
		if err := lib.Annotate(); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := network.AsyncTechDecomp(net)
	if err != nil {
		t.Fatal(err)
	}
	cones, err := network.Partition(dec)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Mode: Async, Workers: 1, HazardCache: hazcache.New(0)}.withDefaults()
	m := &mapper{lib: lib, opts: opts, netlist: NewNetlist(net.Name, net.Inputs, net.Outputs),
		tid: 1, met: newMetricSet(nil)}
	if err := m.ensureCells(); err != nil {
		t.Fatal(err)
	}
	if arenas {
		m.sc = acquireScratch()
	}
	return m, cones
}

// newConeMapper builds the cone tree the way prepareCone does, up to (but
// not including) running the DP, and returns the cone mapper and its root.
func newConeMapper(t testing.TB, m *mapper, cone network.Cone) (*coneMapper, int) {
	t.Helper()
	cm := &coneMapper{m: m, cone: cone,
		hazCache: make(map[string]*hazard.Set), emitted: make(map[[2]int]string)}
	root, err := cm.buildTree(cone.Expr.Root)
	if err != nil {
		t.Fatal(err)
	}
	cm.cuts = make([][]cutEntry, len(cm.nodes))
	for i := range cm.nodes {
		cm.nodes[i].cost = [2]cost{infCost, infCost}
	}
	if cm.sc = m.sc; cm.sc != nil {
		cm.sc.beginCone()
		cm.assignSigIDs()
	}
	return cm, root
}

func TestIntArenaStability(t *testing.T) {
	var a intArena
	// Fill several blocks with uniquely-valued slices and verify nothing
	// overlaps: every committed slice must keep its contents.
	var slices [][]int
	for i := 0; i < 4000; i++ {
		n := 1 + i%17
		s := a.alloc(n)
		if cap(s) != n || len(s) != 0 {
			t.Fatalf("alloc(%d): len=%d cap=%d", n, len(s), cap(s))
		}
		for k := 0; k < n; k++ {
			s = append(s, i)
		}
		slices = append(slices, s)
	}
	for i, s := range slices {
		for _, v := range s {
			if v != i {
				t.Fatalf("slice %d corrupted: got %d", i, v)
			}
		}
	}
	// Oversize requests fall through to the heap and never touch blocks.
	big := a.alloc(intArenaBlock + 1)
	if cap(big) != intArenaBlock+1 {
		t.Fatalf("oversize cap = %d", cap(big))
	}
	// reset rewinds without reallocating: the first block is reused.
	blocks := len(a.blocks)
	first := &a.blocks[0][0]
	a.reset()
	s := a.alloc(8)
	if &s[0:1][0] != first {
		t.Fatal("reset did not rewind to the first block")
	}
	if len(a.blocks) != blocks {
		t.Fatalf("reset changed block count: %d -> %d", blocks, len(a.blocks))
	}
}

func TestStampEpochs(t *testing.T) {
	sc := new(coneScratch)
	m1, e1 := sc.stamp(&sc.sigSeen, 4)
	m1[2] = e1
	m2, e2 := sc.stamp(&sc.sigSeen, 4)
	if e2 == e1 {
		t.Fatal("stamp reused an epoch")
	}
	if m2[2] == e2 {
		t.Fatal("stale mark valid in new epoch")
	}
	// Growth keeps monotonicity; old stamps can never match a new epoch
	// even though grown storage is not cleared.
	m3, e3 := sc.stamp(&sc.sigSeen, 4096)
	for i, v := range m3 {
		if v == e3 {
			t.Fatalf("entry %d spuriously valid after growth", i)
		}
	}
}

func TestMergeCutInto(t *testing.T) {
	cases := [][2][]int{
		{{}, {}},
		{{1, 2, 3}, {}},
		{{}, {4, 5}},
		{{1, 3, 5}, {2, 4, 6}},
		{{1, 2, 3}, {1, 2, 3}},
		{{1, 4, 9}, {4, 9, 12}},
		{{7}, {7}},
	}
	for _, c := range cases {
		want := mergeCut(c[0], c[1])
		got := mergeCutInto(c[0], c[1], make([]int, 0, len(c[0])+len(c[1])))
		if !reflect.DeepEqual([]int(got), []int(want)) {
			t.Errorf("mergeCutInto(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

// The memoised cut table must be byte-identical to the historical
// allocating enumeration, and — because parents merge straight out of
// their children's memoised entries — later merges must never mutate a
// committed entry. Running the full DP after enumeration exercises every
// reader of the memo; comparing against an independently-computed slow
// reference afterwards catches any aliasing write.
func TestCutMemoMatchesSlowPathAndSurvivesDP(t *testing.T) {
	for _, src := range []string{simpleSrc, bigCtxSrc(2)} {
		ms, conesS := arenaTestMapper(t, src, false)
		ma, conesA := arenaTestMapper(t, src, true)
		if len(conesS) != len(conesA) {
			t.Fatal("cone partitioning diverged")
		}
		for ci := range conesA {
			ref, _ := newConeMapper(t, ms, conesS[ci])
			for id := range ref.nodes {
				ref.enumCuts(id)
			}
			cm, _ := newConeMapper(t, ma, conesA[ci])
			if err := cm.dp(); err != nil {
				t.Fatal(err)
			}
			if len(cm.cuts) != len(ref.cuts) {
				t.Fatalf("cone %d: node count diverged", ci)
			}
			for id := range ref.cuts {
				if len(cm.cuts[id]) != len(ref.cuts[id]) {
					t.Fatalf("cone %d node %d: %d cuts, want %d",
						ci, id, len(cm.cuts[id]), len(ref.cuts[id]))
				}
				for k := range ref.cuts[id] {
					got, want := cm.cuts[id][k], ref.cuts[id][k]
					if got.depth != want.depth || !reflect.DeepEqual([]int(got.nodes), []int(want.nodes)) {
						t.Fatalf("cone %d node %d cut %d: got %v@%d, want %v@%d",
							ci, id, k, got.nodes, got.depth, want.nodes, want.depth)
					}
				}
			}
		}
	}
}

// distinctSignals with a scratch must agree with the historical map-based
// count on every enumerated cut, and must not allocate at all.
func TestDistinctSignalsScratch(t *testing.T) {
	m, cones := arenaTestMapper(t, bigCtxSrc(1), true)
	cm, root := newConeMapper(t, m, cones[0])
	cm.enumCuts(root)
	sc := cm.sc
	checked := 0
	for id := range cm.cuts {
		for _, c := range cm.cuts[id] {
			got := cm.distinctSignals(c.nodes)
			cm.sc = nil
			want := cm.distinctSignals(c.nodes)
			cm.sc = sc
			if got != want {
				t.Fatalf("node %d cut %v: distinctSignals = %d, want %d", id, c.nodes, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cuts enumerated")
	}
	// The scratch path is allocation-free once the mark slice has grown.
	var nodes []int
	for id := range cm.cuts {
		if len(cm.cuts[id]) > 0 {
			nodes = cm.cuts[id][len(cm.cuts[id])-1].nodes
			break
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { cm.distinctSignals(nodes) }); allocs != 0 {
		t.Errorf("distinctSignals allocated %.1f objects per call with scratch, want 0", allocs)
	}
}

// BenchmarkDistinctSignals is the regression benchmark for the
// map-per-combo allocation bug: the scratch path must report 0 allocs/op
// where the historical path pays a map per call.
func BenchmarkDistinctSignals(b *testing.B) {
	m, cones := arenaTestMapper(b, bigCtxSrc(1), true)
	cm, root := newConeMapper(b, m, cones[0])
	var widest []int
	for _, c := range cm.enumCuts(root) {
		if len(c.nodes) > len(widest) {
			widest = c.nodes
		}
	}
	sc := cm.sc
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cm.distinctSignals(widest)
		}
	})
	b.Run("map", func(b *testing.B) {
		cm.sc = nil
		defer func() { cm.sc = sc }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cm.distinctSignals(widest)
		}
	})
}

// Per-cone allocation budgets for the full cut → match → hazard pipeline.
// The absolute ceiling catches allocation-pattern regressions in CI long
// before they show up on wall-clock benchmarks; the relative bound pins
// the arena path's advantage over the historical allocating path.
func TestConeCoverAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is meaningless under -short's noise")
	}
	run := func(arenas bool) float64 {
		m, cones := arenaTestMapper(t, bigCtxSrc(1), arenas)
		cone := cones[0]
		if _, err := m.prepareCone(cone); err != nil { // warm hazard cache + scratch growth
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := m.prepareCone(cone); err != nil {
				t.Fatal(err)
			}
		})
	}
	withArenas := run(true)
	without := run(false)
	// Measured ~0.7k with arenas vs ~9k without on the seed corpus; the
	// ceilings leave headroom for library evolution without letting a
	// per-cut or per-binding allocation sneak back into the loop.
	const budget = 2500
	if withArenas > budget {
		t.Errorf("arena cone covering allocates %.0f objects, budget %d", withArenas, budget)
	}
	if withArenas*3 > without {
		t.Errorf("arena path allocates %.0f objects vs %.0f without arenas; want at least 3x reduction",
			withArenas, without)
	}
}

// staticString matches the only strings a pooled scratch is allowed to
// retain: empty strings and the static cluster variable names.
var staticString = regexp.MustCompile(`^(v[0-9]+)?$`)

// scanStrings reports every string reachable from v (following pointers,
// interfaces, maps, and slices out to their full capacity, so data hidden
// behind a [:0] reslice is still found).
func scanStrings(v reflect.Value, seen map[uintptr]bool, report func(string)) {
	switch v.Kind() {
	case reflect.String:
		report(v.String())
	case reflect.Pointer:
		if !v.IsNil() && !seen[v.Pointer()] {
			seen[v.Pointer()] = true
			scanStrings(v.Elem(), seen, report)
		}
	case reflect.Interface:
		if !v.IsNil() {
			scanStrings(v.Elem(), seen, report)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			scanStrings(v.Field(i), seen, report)
		}
	case reflect.Slice:
		if v.IsNil() || seen[v.Pointer()] {
			return
		}
		seen[v.Pointer()] = true
		full := v.Slice(0, v.Cap())
		for i := 0; i < full.Len(); i++ {
			scanStrings(full.Index(i), seen, report)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			scanStrings(v.Index(i), seen, report)
		}
	case reflect.Map:
		if v.IsNil() {
			return
		}
		it := v.MapRange()
		for it.Next() {
			scanStrings(it.Key(), seen, report)
			scanStrings(it.Value(), seen, report)
		}
	}
}

// assertScratchClean fails if any string reachable from the scratch is
// not a static cluster variable name — i.e. if any request-scoped data
// (signal names, request IDs, formatted hazard keys) survived the pool
// round-trip.
func assertScratchClean(t *testing.T, sc *coneScratch) {
	t.Helper()
	scanStrings(reflect.ValueOf(sc), map[uintptr]bool{}, func(s string) {
		if !staticString.MatchString(s) {
			t.Errorf("pooled scratch retains request-derived string %q", s)
		}
	})
}

// The scanner itself must see through the tricks the scratch plays —
// [:0] reslices and nested structs — or the hygiene tests above it prove
// nothing.
func TestScanStringsFindsHiddenLeaks(t *testing.T) {
	sc := new(coneScratch)
	sc.names = append(sc.names, "leaked-signal")[:0] // hidden behind the reslice
	sc.mc.fnStr = "leaked-key"
	var found []string
	scanStrings(reflect.ValueOf(sc), map[uintptr]bool{}, func(s string) {
		if !staticString.MatchString(s) {
			found = append(found, s)
		}
	})
	if len(found) != 2 {
		t.Fatalf("scanner found %v, want the 2 planted leaks", found)
	}
}

func TestPooledScratchRetainsOnlyStaticStrings(t *testing.T) {
	lib := library.MustGet("LSI9K")
	// Distinctively-named signals: if any of them leak into pooled
	// scratch state, the string scan below finds the marker.
	src := leakSrc("leakprobe", 6)
	for _, workers := range []int{1, 0} {
		if _, err := Map(parseNet(t, src, "leak"), lib, Options{Mode: Async, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		// The successful run released its scrubbed scratch; whatever the
		// pool hands out next must be clean.
		scs := []*coneScratch{acquireScratch(), acquireScratch()}
		for _, sc := range scs {
			assertScratchClean(t, sc)
		}
		for _, sc := range scs {
			releaseScratch(sc)
		}
	}
}

// leakSrc is bigCtxSrc with every signal name carrying a marker prefix,
// so pool-hygiene tests can grep reachable strings for request data.
func leakSrc(marker string, n int) string {
	v := func(x string) string { return marker + "_" + x }
	var b strings.Builder
	b.WriteString("INPUT(")
	for i, x := range []string{"a", "b", "c", "d", "e", "g", "h", "i"} {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(v(x))
	}
	b.WriteString(")\nOUTPUT(")
	for k := 0; k < n; k++ {
		if k > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s_f%d", marker, k)
	}
	b.WriteString(")\n")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "%s_f%d = (%s*%s + %s*%s)*(%s + %s') + (%s'*%s + %s*%s')*(%s + %s') + %s*%s*(%s' + %s');\n",
			marker, k,
			v("a"), v("b"), v("c"), v("d"), v("e"), v("g"),
			v("a"), v("c"), v("b"), v("d"), v("h"), v("i"),
			v("b"), v("c"), v("e"), v("h"))
	}
	return b.String()
}
