// Package core implements the paper's primary contribution: hazard-aware
// technology mapping for generalized fundamental-mode asynchronous designs.
//
// The pipeline follows §3 of the paper:
//
//	procedure async_tmap(network, library) {
//	    augment-library-with-hazard-info(library);   // library.Annotate
//	    decomposed = async_tech_decomp(network);     // network.AsyncTechDecomp
//	    cones = partition(decomposed);               // network.Partition
//	    foreach output in cones { find-best-async-cover(output, library); }
//	}
//
// Covering is dynamic programming over each cone's gate tree with
// dual-phase costs; matching is Boolean (truth-table) matching. In
// asynchronous mode, a hazardous library cell is accepted as a match only
// if its hazard set, translated through the pin binding, is a subset of
// the hazard set of the subnetwork being replaced (Theorem 3.2 /
// asyncmatchingroutine); hazard-free cells pass unconditionally
// (Corollary 3.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
	"gfmap/internal/obs"
)

// Mode selects between the synchronous baseline mapper and the
// hazard-aware asynchronous mapper.
type Mode int

// Mapping modes.
const (
	// Sync is the classical CERES-style flow: any functional match is
	// acceptable. It may introduce logic hazards (Figure 3).
	Sync Mode = iota
	// Async is the paper's flow: hazardous cells pass the subset filter.
	Async
)

func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Objective selects what the covering DP minimises.
type Objective int

// Covering objectives.
const (
	// MinArea minimises total cell area (the paper's objective; delay is
	// reported but not optimised).
	MinArea Objective = iota
	// MinDelay minimises the worst-case arrival time, breaking ties by
	// area.
	MinDelay
)

func (o Objective) String() string {
	if o == MinDelay {
		return "delay"
	}
	return "area"
}

// Options configures a mapping run.
type Options struct {
	// Ctx, when non-nil, bounds the run: the pipeline polls for
	// cancellation at cone, cut-enumeration and binding-search boundaries
	// and Map returns ctx.Err() promptly after the context is cancelled
	// or its deadline passes, leaking no goroutines. Cancellation never
	// changes the result of a run that completes — a mapping that
	// finishes under a context is bit-identical to one run without.
	// Nil means the run is unbounded (and the polling is skipped
	// entirely, so a nil context costs nothing).
	Ctx context.Context
	// Mode selects the synchronous baseline or the asynchronous mapper.
	Mode Mode
	// Objective selects area-driven (default) or delay-driven covering.
	Objective Objective
	// MaxDepth bounds the gate depth of match clusters; the paper's tables
	// all use depth 5. Zero means the default of 5.
	MaxDepth int
	// MaxLeaves bounds the number of distinct input signals of a match
	// cluster (the widest cell pin count worth matching). Zero means the
	// default of 6.
	MaxLeaves int
	// MaxBindings bounds how many alternative pin bindings are examined
	// for a hazardous cell before giving up on it. Zero means 32.
	MaxBindings int
	// Workers sets the number of goroutines used to run the per-cone
	// covering DP; emission stays serial and the result is bit-identical
	// to a single-worker run, whatever the worker count. Zero (the
	// default) means one worker per CPU (runtime.NumCPU()); use 1 to
	// force a serial run.
	Workers int
	// MaxBurst, when positive, enables hazard don't-cares (the paper's
	// future-work §6): in generalized fundamental-mode operation the
	// environment only issues input bursts up to a known width, so hazards
	// on wider multi-input changes can never be exercised. The matching
	// filter then ignores hazardous transitions of the library cell that
	// flip more than MaxBurst of the subnetwork's inputs. Zero means no
	// don't-cares: every transition counts.
	MaxBurst int
	// HazardCache selects the cross-cone hazard-analysis cache consulted
	// by the asynchronous matching filter. Nil means the process-wide
	// shared cache (hazcache.Shared()); supply a private cache to isolate
	// a run. The cache is semantically transparent — mapped netlists are
	// bit-identical with the cache on, off, warm or cold.
	HazardCache *hazcache.Cache
	// DisableHazardCache turns the cross-cone cache off entirely; hazard
	// analyses are then memoised per cone only. Intended for A/B
	// measurement, not for production use.
	DisableHazardCache bool
	// DisableMatchIndex turns off the library's signature-keyed match
	// index and the symmetry pruning of the Boolean matcher, reverting to
	// probing every same-pin-count cell with the full permutation search.
	// The acceleration is semantically transparent — mapped netlists are
	// bit-identical either way — so this exists for A/B measurement and
	// bit-identity smoke tests only.
	DisableMatchIndex bool
	// DisableArenas turns off the per-worker arena allocator of the
	// covering DP hot path, reverting every transient allocation (cut
	// merges, cluster functions, truth tables, signatures, binding
	// scratch) to the historical per-call heap path. Arenas are
	// semantically transparent — mapped netlists and deterministic work
	// counters are byte-identical either way (the diffcheck harness
	// exercises exactly this axis) — so, like Workers, this knob is
	// excluded from the store/delta option hash; it exists for A/B
	// measurement and debugging, not production use.
	DisableArenas bool

	// Store, when non-nil, memoizes per-cone covering solutions in a
	// content-addressed mapstore keyed by canonical cone signature ×
	// library fingerprint × option hash, so structurally repeated cones —
	// within a design, across designs, across restarts and across
	// processes sharing the store file — skip the covering DP entirely.
	// The store is semantically transparent: a warm-store run's netlist
	// and Stats.Deterministic() view are byte-identical to a cold run's
	// (solutions carry the DP's deterministic work counters and replay
	// them on a hit). A corrupt or stale entry decode-fails into a miss
	// and is repaired in place; it can never change the output.
	Store *mapstore.Store

	// Tracer receives pipeline spans and events: phase spans on the
	// pipeline track, per-cone covering spans on one track per DP worker.
	// Nil disables tracing; the disabled hot path is allocation-free and
	// never reads the clock. Tracing never changes the mapping result.
	Tracer *obs.Tracer
	// Metrics, when non-nil, is populated with the mapper's counters,
	// gauges and latency histograms (see the Metric* constants). New
	// measurements belong here rather than as new Stats fields: Stats is
	// the frozen deterministic summary, the registry is the growth path.
	Metrics *obs.Registry
	// ProfileLabels attaches runtime/pprof labels ("worker", "cone") to
	// the per-cone covering work, so CPU profiles taken during a run can
	// be sliced by worker goroutine and by cone.
	ProfileLabels bool
	// RequestID, when non-empty, correlates this run with a service
	// request: every pipeline phase span carries it as a request_id
	// attribute and (with ProfileLabels) the per-cone work is labelled
	// "request" in CPU profiles, so one request can be followed from the
	// server's access log into traces and profiles. Semantically
	// transparent — it never changes the mapping and is excluded from the
	// store/delta option hash.
	RequestID string
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 5
	}
	if o.MaxLeaves == 0 {
		o.MaxLeaves = 6
	}
	if o.MaxBindings == 0 {
		o.MaxBindings = 32
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.DisableHazardCache {
		o.HazardCache = nil
	} else if o.HazardCache == nil {
		o.HazardCache = hazcache.Shared()
	}
	return o
}

// Metric names populated into Options.Metrics by Map. Histograms use
// seconds for latencies and raw counts for sizes.
const (
	// MetricHazardSeconds is the latency histogram of individual hazard
	// analyses performed by the matching filter (fresh analyses and
	// shared-cache lookups; per-cone memo hits are not timed).
	MetricHazardSeconds = "map_hazard_analyze_seconds"
	// MetricConeSeconds is the per-cone covering-DP latency histogram.
	MetricConeSeconds = "map_cone_seconds"
	// MetricCutsPerNode is the histogram of cut counts surviving the
	// depth/leaf bounds at each tree node.
	MetricCutsPerNode = "map_cuts_per_node"
	// MetricClusterLeaves is the histogram of distinct-input counts of
	// enumerated match clusters.
	MetricClusterLeaves = "map_cluster_leaves"
)

// metricSet caches the registry handles consulted on the mapper's hot
// path, so instrumented code never takes the registry lock per event. All
// handles are nil — and therefore free — when no registry is configured.
type metricSet struct {
	hazSeconds    *obs.Histogram
	coneSeconds   *obs.Histogram
	cutsPerNode   *obs.Histogram
	clusterLeaves *obs.Histogram
}

func newMetricSet(r *obs.Registry) metricSet {
	return metricSet{
		hazSeconds:    r.Histogram(MetricHazardSeconds, obs.ExpBuckets(1e-6, 4, 12)),
		coneSeconds:   r.Histogram(MetricConeSeconds, obs.ExpBuckets(1e-5, 4, 12)),
		cutsPerNode:   r.Histogram(MetricCutsPerNode, obs.ExpBuckets(1, 2, 12)),
		clusterLeaves: r.Histogram(MetricClusterLeaves, obs.LinearBuckets(1, 1, 8)),
	}
}

// Stats counts the work done during a mapping run and the wall-clock time
// spent in each phase of the pipeline. Stats is the frozen, deterministic
// run summary; richer distributions (latency histograms, per-shard cache
// state) are published through Options.Metrics instead of growing this
// struct.
type Stats struct {
	Cones              int
	ClustersEnumerated int
	MatchesFound       int
	HazardousMatches   int
	HazardChecks       int
	MatchesRejected    int
	// CutTruncations counts tree nodes whose cut enumeration hit the
	// per-node bound and silently dropped candidate clusters; a nonzero
	// value means pathological cones may have been mapped suboptimally.
	CutTruncations int

	// Boolean-matching accounting. FindInvocations counts permutation
	// searches actually run (per cell, per cluster phase); IndexProbes
	// counts cluster-signature lookups against the library match index;
	// IndexSkippedCells counts same-pin-count cells the index proved
	// unmatchable without a search; SymmetryPruned counts bindings the
	// symmetry classes collapsed away (orbit size minus the enumerated
	// representative, summed over matches). The last three are zero when
	// Options.DisableMatchIndex is set.
	FindInvocations   int
	IndexProbes       int
	IndexSkippedCells int
	SymmetryPruned    int

	// Hazard-analysis accounting for the matching filter: analyses served
	// by the per-cone memo, by the shared cross-cone cache, and performed
	// fresh. LocalHits is deterministic; the split between shared hits and
	// misses depends on cache warmth and worker scheduling (their sum does
	// not).
	HazCacheLocalHits int
	HazCacheHits      int
	HazCacheMisses    int
	// HazCacheEvictions is the number of shared-cache entries evicted
	// while this run was in flight (approximate under concurrent runs).
	HazCacheEvictions int

	// Mapstore accounting: cones whose covering solution was served by
	// Options.Store (hits) versus solved by the DP (misses), and cones a
	// MapDelta call reused from the previous result's solutions. All three
	// depend on store warmth / the seed, not on the input alone, so they
	// are excluded from the Deterministic view.
	StoreHits        int
	StoreMisses      int
	DeltaReusedCones int

	// Per-phase wall times of the pipeline: technology decomposition,
	// cone partitioning, the covering DP (including matching and hazard
	// analysis), and netlist emission.
	DecomposeTime time.Duration
	PartitionTime time.Duration
	CoverTime     time.Duration
	EmitTime      time.Duration
}

// merge folds a worker's counters into the receiver. Phase times are
// measured only by the coordinating mapper and are not merged.
func (s *Stats) merge(o Stats) {
	s.ClustersEnumerated += o.ClustersEnumerated
	s.MatchesFound += o.MatchesFound
	s.HazardousMatches += o.HazardousMatches
	s.HazardChecks += o.HazardChecks
	s.MatchesRejected += o.MatchesRejected
	s.CutTruncations += o.CutTruncations
	s.FindInvocations += o.FindInvocations
	s.IndexProbes += o.IndexProbes
	s.IndexSkippedCells += o.IndexSkippedCells
	s.SymmetryPruned += o.SymmetryPruned
	s.HazCacheLocalHits += o.HazCacheLocalHits
	s.HazCacheHits += o.HazCacheHits
	s.HazCacheMisses += o.HazCacheMisses
	s.StoreHits += o.StoreHits
	s.StoreMisses += o.StoreMisses
	s.DeltaReusedCones += o.DeltaReusedCones
}

// Deterministic returns the counters that are invariant across worker
// counts and cache state, zeroing the scheduling-dependent cache split and
// the wall-clock times. Two runs of the same mapping must agree on this
// view exactly.
func (s Stats) Deterministic() Stats {
	s.HazCacheHits = 0
	s.HazCacheMisses = 0
	s.HazCacheEvictions = 0
	s.StoreHits = 0
	s.StoreMisses = 0
	s.DeltaReusedCones = 0
	s.DecomposeTime = 0
	s.PartitionTime = 0
	s.CoverTime = 0
	s.EmitTime = 0
	return s
}

// HazardAnalyses returns the total number of hazard-set computations the
// run asked for, however they were served.
func (s Stats) HazardAnalyses() int {
	return s.HazCacheLocalHits + s.HazCacheHits + s.HazCacheMisses
}

// HazCacheHitRate returns the fraction of hazard-analysis requests served
// by a cache (per-cone memo or shared), in [0, 1]; 0 when none were made.
func (s Stats) HazCacheHitRate() float64 {
	total := s.HazardAnalyses()
	if total == 0 {
		return 0
	}
	return float64(s.HazCacheLocalHits+s.HazCacheHits) / float64(total)
}

// Result is the outcome of a mapping run.
type Result struct {
	Netlist *Netlist
	Area    float64
	Delay   float64
	Stats   Stats

	// delta retains every cone's solved covering solution, keyed by
	// canonical cone signature, so a follow-up MapDelta call can re-map
	// only the cones an edit actually changed. The solutions are tagged
	// with the library fingerprint and option hash they were computed
	// under; MapDelta ignores them wholesale on any mismatch.
	delta *deltaState
}

// deltaState is the incremental-remap seed carried inside a Result.
type deltaState struct {
	libFP     string
	optHash   string
	solutions map[string][]byte // ConeKey -> encoded solution
}

// ErrInternal marks a mapper bug surfaced as an error: a panic anywhere
// in the pipeline is recovered at the Map boundary and wrapped with this
// sentinel, so long-lived callers (the CLIs, asyncmapd) degrade to an
// error response instead of process death. Test with errors.Is.
var ErrInternal = errors.New("core: internal error")

// Map runs the technology mapper over a combinational network. When
// Options.Ctx is set, a cancelled or expired context aborts the pipeline
// promptly and Map returns ctx.Err(); see MapContext for the common case.
//
// Map never panics: a defect in the pipeline (or in a hostile input that
// slips past validation) is returned as an error wrapping ErrInternal.
func Map(net *network.Network, lib *library.Library, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: panic in mapping pipeline: %v\n%s", ErrInternal, r, debug.Stack())
		}
	}()
	return mapPipeline(net, lib, opts, nil)
}

// MapDelta re-maps a network after an edit, reusing the per-cone covering
// solutions retained in a previous Result for every cone whose canonical
// signature is unchanged — the incremental (ECO) path of the pipeline.
// Only structurally new or changed cones go through cut enumeration,
// matching and hazard analysis; everything else replays its recorded
// solution. Emission always runs in full over the new network, so the
// returned netlist is byte-identical to a cold Map of the edited network.
//
// The previous solutions are used only if they were computed under the
// same library fingerprint and the same semantically relevant options; on
// any mismatch — or when prev is nil — MapDelta degrades to a plain Map.
// Stats.DeltaReusedCones reports how many cones were reused.
func MapDelta(prev *Result, net *network.Network, lib *library.Library, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: panic in mapping pipeline: %v\n%s", ErrInternal, r, debug.Stack())
		}
	}()
	var seed *deltaState
	if prev != nil {
		seed = prev.delta
	}
	return mapPipeline(net, lib, opts, seed)
}

// optionHash digests the Options fields that can change a mapping result
// or its deterministic work counters; it is the option component of a
// mapstore entry key and of a delta seed's compatibility tag. Fields that
// are semantically transparent (Workers, hazard-cache selection, tracing,
// metrics, context, RequestID) are deliberately excluded so runs differing
// only in them share entries. DisableMatchIndex does not change the netlist but
// does change the deterministic matching counters replayed from a
// solution, so it must fork the key space. opts must already have
// defaults applied, so explicit defaults and zero values hash alike.
func optionHash(o Options) string {
	return fmt.Sprintf("mode=%d;obj=%d;depth=%d;leaves=%d;bindings=%d;burst=%d;noindex=%t",
		o.Mode, o.Objective, o.MaxDepth, o.MaxLeaves, o.MaxBindings, o.MaxBurst, o.DisableMatchIndex)
}

func mapPipeline(net *network.Network, lib *library.Library, opts Options, seed *deltaState) (*Result, error) {
	opts = opts.withDefaults()
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	if opts.Mode == Async && !lib.Annotated() {
		// augment-library-with-hazard-info(library)
		if err := lib.Annotate(); err != nil {
			return nil, err
		}
	}
	var evictions0 uint64
	if opts.HazardCache != nil {
		evictions0 = opts.HazardCache.Stats().Evictions
	}
	tr := opts.Tracer
	// stamp correlates a phase span with the service request that owns
	// this run (no-op when RequestID is empty or tracing is off).
	stamp := func(sp *obs.Span) {
		if opts.RequestID != "" {
			sp.SetStr("request_id", opts.RequestID)
		}
	}
	phase := time.Now()
	dsp := tr.StartSpan("decompose")
	stamp(&dsp)
	decomposed, err := network.AsyncTechDecomp(net)
	dsp.End()
	if err != nil {
		return nil, err
	}
	decomposeTime := time.Since(phase)
	phase = time.Now()
	psp := tr.StartSpan("partition")
	stamp(&psp)
	cones, err := network.Partition(decomposed)
	if err != nil {
		psp.End()
		return nil, err
	}
	psp.SetInt("cones", int64(len(cones)))
	psp.End()
	partitionTime := time.Since(phase)
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	nl := NewNetlist(net.Name, net.Inputs, net.Outputs)
	m := &mapper{lib: lib, opts: opts, netlist: nl, tid: 1, met: newMetricSet(opts.Metrics)}
	// Serial covering runs draw transient DP memory from a pooled arena
	// scratch (parallel workers acquire their own in prepareCones). The
	// scratch is returned to the pool only on the success path below: an
	// error or cancellation mid-run drops it to the GC instead, so a
	// canceled request can never leak partially-written state — or any
	// request-scoped data — into a scratch the next request would reuse.
	if !opts.DisableArenas {
		m.sc = acquireScratch()
	}
	// Solution-reuse identity: the library fingerprint is taken *after*
	// annotation (annotation changes matching behaviour, so pre- and
	// post-annotation runs must not share solutions). A delta seed
	// computed under a different fingerprint or option hash is discarded
	// wholesale — stale solutions must not be addressable, let alone
	// replayed.
	m.libFP = lib.Fingerprint()
	m.optHash = optionHash(opts)
	m.store = opts.Store
	if seed != nil && seed.libFP == m.libFP && seed.optHash == m.optHash {
		m.seed = seed.solutions
	}
	// Reserve every signal name of the decomposed network up front, so
	// generated names (match signals, inverter outputs) can never collide
	// with a design signal that has not been emitted yet.
	m.reserved = make(map[string]bool, decomposed.NumNodes()+len(decomposed.Inputs))
	for _, name := range decomposed.NodeNames() {
		m.reserved[name] = true
	}
	for _, in := range decomposed.Inputs {
		m.reserved[in] = true
	}
	if err := m.ensureCells(); err != nil {
		return nil, err
	}
	phase = time.Now()
	csp := tr.StartSpan("cover")
	stamp(&csp)
	csp.SetInt("workers", int64(opts.Workers))
	csp.SetInt("cones", int64(len(cones)))
	prepared, err := m.prepareCones(cones)
	csp.End()
	if err != nil {
		if cerr := ctxErr(opts.Ctx); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	m.stats.CoverTime = time.Since(phase)
	phase = time.Now()
	esp := tr.StartSpan("emit")
	stamp(&esp)
	for i, pc := range prepared {
		if err := ctxErr(opts.Ctx); err != nil {
			esp.End()
			return nil, err
		}
		if err := m.emitCone(pc); err != nil {
			esp.End()
			return nil, fmt.Errorf("core: cone %s: %w", cones[i].Root, err)
		}
	}
	esp.SetInt("gates", int64(nl.GateCount()))
	esp.End()
	m.stats.EmitTime = time.Since(phase)
	m.stats.DecomposeTime = decomposeTime
	m.stats.PartitionTime = partitionTime
	if opts.HazardCache != nil {
		m.stats.HazCacheEvictions = int(opts.HazardCache.Stats().Evictions - evictions0)
	}
	m.stats.Cones = len(cones)
	area := nl.Area()
	delay, err := nl.Delay()
	if err != nil {
		return nil, err
	}
	tr.EventInt(obs.PipelineTrack, "mapped", "gates", int64(nl.GateCount()))
	if reg := opts.Metrics; reg != nil {
		publishStats(reg, m.stats, nl.GateCount(), area, delay)
		opts.HazardCache.ExportMetrics(reg)
		m.store.ExportMetrics(reg)
	}
	// Retain every cone's solution so the caller can MapDelta a later
	// edit against this result. Duplicate signatures collapse onto one
	// entry; their solutions are identical by construction.
	ds := &deltaState{libFP: m.libFP, optHash: m.optHash,
		solutions: make(map[string][]byte, len(prepared))}
	for _, pc := range prepared {
		ds.solutions[pc.coneKey] = pc.encoded
	}
	if m.sc != nil {
		releaseScratch(m.sc)
		m.sc = nil
	}
	return &Result{Netlist: nl, Area: area, Delay: delay, Stats: m.stats, delta: ds}, nil
}

// publishStats mirrors the run's deterministic summary into the metrics
// registry, alongside the histograms the mapper filled during the run.
func publishStats(reg *obs.Registry, st Stats, gates int, area, delay float64) {
	reg.Counter("map_cones").Add(uint64(st.Cones))
	reg.Counter("map_clusters_enumerated").Add(uint64(st.ClustersEnumerated))
	reg.Counter("map_matches_found").Add(uint64(st.MatchesFound))
	reg.Counter("map_hazardous_matches").Add(uint64(st.HazardousMatches))
	reg.Counter("map_hazard_checks").Add(uint64(st.HazardChecks))
	reg.Counter("map_matches_rejected").Add(uint64(st.MatchesRejected))
	reg.Counter("map_cut_truncations").Add(uint64(st.CutTruncations))
	reg.Counter("map_match_find_calls").Add(uint64(st.FindInvocations))
	reg.Counter("map_index_probes").Add(uint64(st.IndexProbes))
	reg.Counter("map_index_skipped_cells").Add(uint64(st.IndexSkippedCells))
	reg.Counter("map_symmetry_pruned").Add(uint64(st.SymmetryPruned))
	reg.Counter("map_haz_local_hits").Add(uint64(st.HazCacheLocalHits))
	reg.Counter("map_haz_shared_hits").Add(uint64(st.HazCacheHits))
	reg.Counter("map_haz_misses").Add(uint64(st.HazCacheMisses))
	reg.Counter("map_store_hits").Add(uint64(st.StoreHits))
	reg.Counter("map_store_misses").Add(uint64(st.StoreMisses))
	reg.Counter("map_delta_reused_cones").Add(uint64(st.DeltaReusedCones))
	reg.Gauge("map_gates").Set(float64(gates))
	reg.Gauge("map_area").Set(area)
	reg.Gauge("map_delay").Set(delay)
}

// MapContext runs Map with the given context installed in Options.Ctx.
// It is the entry point long-lived callers (servers, batch drivers) should
// use: the context's cancellation or deadline bounds the whole pipeline.
func MapContext(ctx context.Context, net *network.Network, lib *library.Library, opts Options) (*Result, error) {
	opts.Ctx = ctx
	return Map(net, lib, opts)
}

// ctxErr reports a context's cancellation state; a nil context never
// cancels. Used at the pipeline's coarse phase boundaries.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Tmap is the synchronous mapping procedure of §3.1.
func Tmap(net *network.Network, lib *library.Library, opts Options) (*Result, error) {
	opts.Mode = Sync
	return Map(net, lib, opts)
}

// AsyncTmap is the asynchronous mapping procedure of §3.2.
func AsyncTmap(net *network.Network, lib *library.Library, opts Options) (*Result, error) {
	opts.Mode = Async
	return Map(net, lib, opts)
}

const inf = math.MaxFloat64 / 4

// negName derives the signal name carrying the complement of a signal.
func negName(sig string) string {
	return sig + "_bar"
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
