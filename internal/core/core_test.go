package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/eqn"
	"gfmap/internal/hazard"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

func parseNet(t testing.TB, src, name string) *network.Network {
	t.Helper()
	n, err := eqn.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mapNet(t testing.TB, net *network.Network, libName string, mode Mode) *Result {
	t.Helper()
	lib := library.MustGet(libName)
	res, err := Map(net, lib, Options{Mode: mode})
	if err != nil {
		t.Fatalf("map %s with %s (%v): %v", net.Name, libName, mode, err)
	}
	if err := res.Netlist.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	if err := VerifyEquivalence(net, res.Netlist); err != nil {
		t.Fatalf("equivalence: %v\n%s", err, res.Netlist)
	}
	return res
}

const simpleSrc = `
INPUT(a, b, c, d)
OUTPUT(f, g)
u = a*b + c;
f = u*d';
g = u + a'*d;
`

func TestMapSimpleAllLibraries(t *testing.T) {
	for _, lib := range library.BuiltinNames {
		for _, mode := range []Mode{Sync, Async} {
			net := parseNet(t, simpleSrc, "simple")
			res := mapNet(t, net, lib, mode)
			if res.Area <= 0 || res.Delay <= 0 {
				t.Errorf("%s/%v: degenerate area/delay: %+v", lib, mode, res)
			}
			if res.Stats.Cones == 0 || res.Stats.MatchesFound == 0 {
				t.Errorf("%s/%v: no work recorded: %+v", lib, mode, res.Stats)
			}
		}
	}
}

// TestFigure3RedundantCubeCover reproduces Figure 3: the function
// f = ab + a'c + bc is hazard-free as written (the redundant consensus
// cube bc holds the output through the a transition with b=c=1). A 2:1 mux
// implements the same function more cheaply, so the synchronous mapper
// picks it and introduces a static 1-hazard; the asynchronous mapper must
// keep a hazard-free cover.
func TestFigure3RedundantCubeCover(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	lib := library.MustGet("LSI9K")

	sync := mapNet(t, parseNet(t, src, "fig3"), "LSI9K", Sync)
	async := mapNet(t, parseNet(t, src, "fig3"), "LSI9K", Async)

	// The synchronous cover should use a mux (it is the cheapest match for
	// the whole cone).
	syncUsesMux := false
	for _, g := range sync.Netlist.Gates {
		if strings.HasPrefix(g.Cell.Name, "MUX") {
			syncUsesMux = true
		}
	}
	if !syncUsesMux {
		t.Logf("note: synchronous cover avoided the mux:\n%s", sync.Netlist)
	}

	// The asynchronous cover must not introduce hazards.
	origNet := parseNet(t, src, "fig3")
	rep, err := VerifyHazardSafety(origNet, async.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("async mapping introduced hazards: %s\n%v\n%s", rep, rep.Details, async.Netlist)
	}

	// And the synchronous one must have introduced the Figure 3 hazard,
	// otherwise the test is vacuous.
	repSync, err := VerifyHazardSafety(origNet, sync.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if syncUsesMux && repSync.Clean() {
		t.Error("expected the mux-based synchronous cover to introduce a hazard")
	}
	if async.Stats.MatchesRejected == 0 {
		t.Error("async mapper should have rejected at least one hazardous match")
	}
	_ = lib
}

// TestAsyncNeverIntroducesHazards is the central property test: on random
// small networks and every library, the asynchronous mapper's output has
// per-cone hazard sets that are subsets of the original's (Theorem 3.2).
func TestAsyncNeverIntroducesHazards(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vars := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 12; iter++ {
		src := randomEqn(rng, vars, 1+rng.Intn(2))
		for _, libName := range library.BuiltinNames {
			net := parseNet(t, src, "rand")
			res := mapNet(t, net, libName, Async)
			rep, err := VerifyHazardSafety(parseNet(t, src, "rand"), res.Netlist)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Errorf("lib %s: async mapping introduced hazards on\n%s\n%s\ndetails: %v",
					libName, src, res.Netlist, rep.Details)
			}
		}
	}
}

// randomEqn generates a small random SOP network.
func randomEqn(rng *rand.Rand, vars []string, nOut int) string {
	var b strings.Builder
	b.WriteString("INPUT(" + strings.Join(vars, ", ") + ")\n")
	var outs []string
	for i := 0; i < nOut; i++ {
		name := string(rune('f' + i))
		outs = append(outs, name)
	}
	b.WriteString("OUTPUT(" + strings.Join(outs, ", ") + ")\n")
	for _, o := range outs {
		var terms []string
		for c := 0; c < 2+rng.Intn(3); c++ {
			var lits []string
			for _, v := range vars {
				switch rng.Intn(3) {
				case 0:
					lits = append(lits, v)
				case 1:
					lits = append(lits, v+"'")
				}
			}
			if len(lits) == 0 {
				lits = append(lits, vars[rng.Intn(len(vars))])
			}
			terms = append(terms, strings.Join(lits, "*"))
		}
		b.WriteString(o + " = " + strings.Join(terms, " + ") + ";\n")
	}
	return b.String()
}

func TestSyncCheaperOrEqual(t *testing.T) {
	// The async mapper can only reject matches, so its area is never
	// smaller than the sync mapper's on the same input.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 6; iter++ {
		src := randomEqn(rng, []string{"a", "b", "c", "d"}, 1)
		sync := mapNet(t, parseNet(t, src, "s"), "Actel", Sync)
		async := mapNet(t, parseNet(t, src, "s"), "Actel", Async)
		if sync.Area > async.Area+1e-9 {
			// Equal-cost tie-breaks may differ; sync must never lose.
			t.Errorf("sync area %g > async area %g on\n%s", sync.Area, async.Area, src)
		}
	}
}

func TestMapMultiLevelNetwork(t *testing.T) {
	src := `
INPUT(a, b, c, d, e)
OUTPUT(y, z)
t1 = a*b + c';
t2 = t1*d + e;
y = t2 + a*d;
z = t1'*e;
`
	for _, lib := range []string{"LSI9K", "CMOS3"} {
		net := parseNet(t, src, "ml")
		res := mapNet(t, net, lib, Async)
		rep, err := VerifyHazardSafety(parseNet(t, src, "ml"), res.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("%s: %s: %v", lib, rep, rep.Details)
		}
	}
}

func TestInverterSharing(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f, g)
f = a'*b;
g = a'*c;
`
	net := parseNet(t, src, "inv")
	res := mapNet(t, net, "CMOS3", Async)
	// a' should be produced by at most one inverter (shared) unless the
	// matches absorbed the inversion entirely.
	invCount := 0
	for _, g := range res.Netlist.Gates {
		if g.Cell.NumPins() == 1 && g.Pins[0] == "a" {
			invCount++
		}
	}
	if invCount > 1 {
		t.Errorf("inverter for a duplicated %d times:\n%s", invCount, res.Netlist)
	}
}

func TestAliasOutput(t *testing.T) {
	src := `
INPUT(a, b)
OUTPUT(f, g)
f = a*b;
g = f;
`
	net := parseNet(t, src, "alias")
	mapNet(t, net, "LSI9K", Async)
}

func TestDeepChain(t *testing.T) {
	// A chain deeper than MaxDepth forces multiple clusters.
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = ((((((a*b)' + c)*d)' + e)*f + g)*h)';
`
	net := parseNet(t, src, "deep")
	res := mapNet(t, net, "GDT", Async)
	if res.Netlist.GateCount() == 0 {
		t.Fatal("no gates emitted")
	}
}

func TestStatsAccounting(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	res := mapNet(t, parseNet(t, src, "st"), "Actel", Async)
	s := res.Stats
	if s.HazardousMatches == 0 || s.HazardChecks == 0 {
		t.Errorf("expected hazardous-match bookkeeping on Actel: %+v", s)
	}
	if s.MatchesFound < s.HazardousMatches {
		t.Errorf("inconsistent stats: %+v", s)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxDepth != 5 || o.MaxLeaves != 6 || o.MaxBindings != 32 {
		t.Errorf("bad defaults: %+v", o)
	}
	if o.Workers != runtime.NumCPU() {
		t.Errorf("Workers zero value should default to NumCPU (%d), got %d", runtime.NumCPU(), o.Workers)
	}
	if o.HazardCache != hazcache.Shared() {
		t.Error("nil HazardCache should default to the shared cache")
	}
	if o := (Options{Workers: 1}).withDefaults(); o.Workers != 1 {
		t.Errorf("Workers: 1 must stay serial, got %d", o.Workers)
	}
	if o := (Options{DisableHazardCache: true}).withDefaults(); o.HazardCache != nil {
		t.Error("DisableHazardCache must clear the cache")
	}
}

// TestHazardFilterDirection pins the subset filter semantics: a hazardous
// mux cell must be accepted when the target subnetwork has the same
// structure (hazards equal), and rejected when the target is hazard-free.
func TestHazardFilterDirection(t *testing.T) {
	lib := library.New("muxonly")
	lib.MustAdd("INV", "a'", 0.3)
	lib.MustAdd("BUF", "a", 0.3)
	lib.MustAdd("AND2", "a*b", 0.5)
	lib.MustAdd("OR2", "a + b", 0.5)
	lib.MustAdd("MUX", "s'*a + s*b", 0.8)
	if err := lib.Annotate(); err != nil {
		t.Fatal(err)
	}
	// Target with the same mux structure: mux is acceptable and cheapest.
	src := `
INPUT(s, a, b)
OUTPUT(f)
f = s'*a + s*b;
`
	net := parseNet(t, src, "m")
	res, err := Map(net, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	usedMux := false
	for _, g := range res.Netlist.Gates {
		if g.Cell.Name == "MUX" {
			usedMux = true
		}
	}
	if !usedMux {
		t.Errorf("mux should be accepted for an identical hazardous target:\n%s", res.Netlist)
	}
	if err := VerifyEquivalence(net, res.Netlist); err != nil {
		t.Fatal(err)
	}
}

func TestMapConstantsRejected(t *testing.T) {
	net := network.New("c")
	if err := net.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("f", bexpr.MustParseExpr("a + 1")); err != nil {
		t.Fatal(err)
	}
	if err := net.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(net, library.MustGet("CMOS3"), Options{Mode: Async}); err == nil {
		t.Error("constant nodes should be rejected with a clear error")
	}
}

var benchSink *Result

func BenchmarkMapSimpleAsync(b *testing.B) {
	lib := library.MustGet("LSI9K")
	net := parseNet(b, simpleSrc, "simple")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Map(net, lib, Options{Mode: Async})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}

func hazardSetOfExpr(t *testing.T, e string) *hazard.Set {
	t.Helper()
	return hazard.MustAnalyze(bexpr.MustParse(e))
}

func TestVerifyHazardSafetyDetectsViolation(t *testing.T) {
	// Hand-build a netlist that maps f = ab + a'c + bc onto a bare mux,
	// introducing a hazard; the verifier must notice.
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	net := parseNet(t, src, "v")
	lib := library.MustGet("LSI9K")
	nl := NewNetlist("v", net.Inputs, net.Outputs)
	mux := lib.Cell("MUX21A")
	if mux == nil {
		t.Fatal("MUX21A missing")
	}
	// MUX21A pins are (s, a, b) computing s'a + sb; f = mux(s=a, a=c, b=b).
	if _, err := nl.AddGate(mux, []string{"a", "c", "b"}, "f"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalence(net, nl); err != nil {
		t.Fatalf("hand netlist should be functionally correct: %v", err)
	}
	rep, err := VerifyHazardSafety(net, nl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("verifier missed the introduced hazard")
	}
	// Sanity: the mux really is hazardous while the target is static-1 free.
	if len(hazardSetOfExpr(t, "s'*a + s*b").Static1) == 0 {
		t.Error("mux must have a static-1 hazard")
	}
}

// TestDelayObjective: delay-driven covering never yields a slower netlist
// than area-driven covering, and typically trades area for speed.
func TestDelayObjective(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = a*b*c*d + e*f*g*h + a'*e' + c*g';
`
	net := parseNet(t, src, "obj")
	lib := library.MustGet("LSI9K")
	areaRes, err := Map(net, lib, Options{Mode: Async, Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	delayRes, err := Map(net, lib, Options{Mode: Async, Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalence(net, delayRes.Netlist); err != nil {
		t.Fatal(err)
	}
	if delayRes.Delay > areaRes.Delay+1e-9 {
		t.Errorf("delay objective gave delay %.2f > area objective's %.2f",
			delayRes.Delay, areaRes.Delay)
	}
	if areaRes.Area > delayRes.Area+1e-9 {
		t.Errorf("area objective gave area %.0f > delay objective's %.0f",
			areaRes.Area, delayRes.Area)
	}
}

// TestHazardDontCares: with a bounded burst width, a cell whose only
// hazards are wide multi-input changes becomes usable on hazard-free
// targets, improving area — the paper's §6 hazard don't-care idea.
func TestHazardDontCares(t *testing.T) {
	// A consensus-completed mux cell: its only logic hazards are
	// 2-input-change dynamic hazards (see TestMuxStatic1 in hazard).
	lib := library.New("dcdemo")
	lib.MustAdd("INV", "a'", 0.3)
	lib.MustAdd("BUF", "a", 0.3)
	lib.MustAdd("AND2", "a*b", 0.5)
	lib.MustAdd("OR2", "a + b", 0.5)
	lib.MustAdd("SAFEMUX", "s'*a + s*b + a*b", 0.8)
	if err := lib.Annotate(); err != nil {
		t.Fatal(err)
	}
	if !lib.Cell("SAFEMUX").Hazardous() {
		t.Fatal("setup: SAFEMUX should carry m.i.c. dynamic hazards")
	}
	src := `
INPUT(s, a, b)
OUTPUT(f)
f = s'*a + s*b + a*b;
`
	// Without don't-cares the cell is still accepted for an identical
	// structure; the interesting case is a *different* structure that is
	// hazard-free where the cell is not. Build one: the factored
	// (s' + b)*(s + a) form... keep it simple and compare strict vs
	// relaxed filters on the hazard-free AND/OR cover of the function.
	net := parseNet(t, src, "dc")
	strict, err := Map(net, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Map(net, lib, Options{Mode: Async, MaxBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalence(net, relaxed.Netlist); err != nil {
		t.Fatal(err)
	}
	if relaxed.Area > strict.Area {
		t.Errorf("hazard don't-cares should never increase area: %.0f vs %.0f",
			relaxed.Area, strict.Area)
	}
	// With single-input-change operation the SAFEMUX is admissible
	// everywhere its function fits, so the relaxed mapping should use it.
	used := false
	for _, g := range relaxed.Netlist.Gates {
		if g.Cell.Name == "SAFEMUX" {
			used = true
		}
	}
	if !used {
		t.Errorf("relaxed mapping should use SAFEMUX:\n%s", relaxed.Netlist)
	}
}

// TestTernarySafetyOracle cross-checks the ternary whole-network oracle
// against the per-cone verifier on the Figure 3 scenario.
func TestTernarySafetyOracle(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	net := parseNet(t, src, "tern")
	async := mapNet(t, parseNet(t, src, "tern"), "LSI9K", Async)
	if err := VerifyTernarySafety(net, async.Netlist); err != nil {
		t.Errorf("async mapping must pass the ternary oracle: %v", err)
	}

	// Hand-build the hazardous mux cover; the ternary oracle must object.
	lib := library.MustGet("LSI9K")
	nl := NewNetlist("tern", net.Inputs, net.Outputs)
	if _, err := nl.AddGate(lib.Cell("MUX21A"), []string{"a", "c", "b"}, "f"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTernarySafety(net, nl); err == nil {
		t.Error("ternary oracle missed the introduced static hazard")
	}
}

// TestParallelMappingDeterministic: the parallel DP produces a netlist
// bit-identical to the serial run, with identical hazard-check
// statistics, whether the hazard cache is shared, private, warm or off.
func TestParallelMappingDeterministic(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f)
OUTPUT(x, y, z)
u = a*b + c;
x = u*d' + e;
y = u + a'*f;
z = (u*e)' + d*f;
`
	net := parseNet(t, src, "par")
	lib := library.MustGet("Actel")
	serial, err := Map(net, lib, Options{Mode: Async, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(net, lib, Options{Mode: Async, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Netlist.String() != parallel.Netlist.String() {
		t.Errorf("parallel netlist differs:\n%s\nvs\n%s", serial.Netlist, parallel.Netlist)
	}
	if serial.Stats.Deterministic() != parallel.Stats.Deterministic() {
		t.Errorf("stats differ: %+v vs %+v", serial.Stats, parallel.Stats)
	}
	if got, want := serial.Stats.HazardAnalyses(), parallel.Stats.HazardAnalyses(); got != want {
		t.Errorf("hazard-analysis totals differ: %d vs %d", got, want)
	}
	// A private cold cache and no cache at all must both reproduce the
	// shared-cache result exactly.
	private, err := Map(net, lib, Options{Mode: Async, Workers: 8, HazardCache: hazcache.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Map(net, lib, Options{Mode: Async, Workers: 8, DisableHazardCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for what, res := range map[string]*Result{"private cache": private, "no cache": uncached} {
		if res.Netlist.String() != serial.Netlist.String() {
			t.Errorf("%s netlist differs from serial:\n%s\nvs\n%s", what, res.Netlist, serial.Netlist)
		}
		if res.Stats.Deterministic() != serial.Stats.Deterministic() {
			t.Errorf("%s stats differ: %+v vs %+v", what, res.Stats, serial.Stats)
		}
	}
	if uncached.Stats.HazCacheHits != 0 {
		t.Errorf("cache-disabled run reported shared hits: %+v", uncached.Stats)
	}
}

// TestHazardCacheSharesAcrossCones: on a design whose cones repeat the
// same cluster shapes, the cross-cone cache serves repeats that the
// per-cone memo cannot, and a warm cache serves a whole second run.
func TestHazardCacheSharesAcrossCones(t *testing.T) {
	src := `
INPUT(a, b, c, p, q, r)
OUTPUT(f, g)
f = a*b + a'*c + b*c;
g = p*q + p'*r + q*r;
`
	net := parseNet(t, src, "share")
	lib := library.MustGet("LSI9K")
	cache := hazcache.New(0)
	cold, err := Map(net, lib, Options{Mode: Async, Workers: 1, HazardCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.HazCacheHits == 0 {
		t.Errorf("expected cross-cone hits on twin cones: %+v", cold.Stats)
	}
	if cold.Stats.HazCacheMisses == 0 {
		t.Errorf("cold cache must miss at least once: %+v", cold.Stats)
	}
	warm, err := Map(net, lib, Options{Mode: Async, Workers: 1, HazardCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Netlist.String() != cold.Netlist.String() {
		t.Errorf("warm-cache netlist differs:\n%s\nvs\n%s", warm.Netlist, cold.Netlist)
	}
	if warm.Stats.HazCacheMisses != 0 {
		t.Errorf("fully warm cache should serve every analysis: %+v", warm.Stats)
	}
	if rate := warm.Stats.HazCacheHitRate(); rate != 1 {
		t.Errorf("warm hit rate %.2f, want 1", rate)
	}
}

// balancedExpr builds a balanced expression tree over vars[lo:hi) with
// alternating operators (so no level flattens away), the bushy shape whose
// cut combinations explode combinatorially.
func balancedExpr(vars []string, lo, hi int, and bool) string {
	if hi-lo == 1 {
		return vars[lo]
	}
	mid := (lo + hi) / 2
	op := " + "
	if and {
		op = "*"
	}
	return "(" + balancedExpr(vars, lo, mid, !and) + op + balancedExpr(vars, mid, hi, !and) + ")"
}

// TestCutTruncationCounted: a cone bushy enough to overflow the per-node
// cut bound is flagged in the statistics instead of failing silently.
func TestCutTruncationCounted(t *testing.T) {
	var vars []string
	for i := 0; i < 32; i++ {
		vars = append(vars, fmt.Sprintf("x%d", i))
	}
	src := "INPUT(" + strings.Join(vars, ", ") + ")\nOUTPUT(y)\ny = " +
		balancedExpr(vars, 0, len(vars), true) + ";\n"
	net := parseNet(t, src, "trunc")
	res, err := Map(net, library.MustGet("LSI9K"), Options{Mode: Sync, MaxLeaves: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CutTruncations == 0 {
		t.Errorf("expected cut truncations on a balanced 32-leaf cone: %+v", res.Stats)
	}
	// A narrow cone must not be flagged.
	small := mapNet(t, parseNet(t, simpleSrc, "simple"), "LSI9K", Async)
	if small.Stats.CutTruncations != 0 {
		t.Errorf("small design spuriously flagged truncation: %+v", small.Stats)
	}
}

// TestWideCellMatching: raising the cluster bounds lets the mapper reach
// the library's widest cells (CMOS3's NAND8/NOR8), exercising the
// multi-word truth tables.
func TestWideCellMatching(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = a*b*c*d*e*f*g*h;
`
	net := parseNet(t, src, "wide")
	lib := library.MustGet("CMOS3")
	res, err := Map(net, lib, Options{Mode: Async, MaxDepth: 8, MaxLeaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalence(net, res.Netlist); err != nil {
		t.Fatal(err)
	}
	usedWide := false
	for _, g := range res.Netlist.Gates {
		if g.Cell.Name == "NAND8" {
			usedWide = true
		}
	}
	if !usedWide {
		t.Errorf("expected NAND8 in the cover:\n%s", res.Netlist)
	}
	if res.Netlist.GateCount() > 2 {
		t.Errorf("AND8 should map to NAND8 + inverter, got %d gates:\n%s",
			res.Netlist.GateCount(), res.Netlist)
	}
}
