package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// bigCtxSrc builds a design with n structurally similar cones, large
// enough that mapping reliably outlives a few-millisecond deadline (each
// cone needs dozens of hazard analyses when the shared cache is off).
func bigCtxSrc(n int) string {
	var b strings.Builder
	b.WriteString("INPUT(a,b,c,d,e,g,h,i)\nOUTPUT(")
	for k := 0; k < n; k++ {
		if k > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "f%d", k)
	}
	b.WriteString(")\n")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "f%d = (a*b + c*d)*(e + g') + (a'*c + b*d')*(h + i') + b*c*(e' + h');\n", k)
	}
	return b.String()
}

func bigCtxNet(t *testing.T, n int) *network.Network {
	t.Helper()
	return parseNet(t, bigCtxSrc(n), "bigctx")
}

// waitGoroutines waits for the goroutine count to drop back to the
// baseline, tolerating runtime background goroutines that were already
// running before the run under test.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := parseNet(t, simpleSrc, "pre")
	_, err := MapContext(ctx, net, library.MustGet("LSI9K"), Options{Mode: Async})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapContextMidRunCancel(t *testing.T) {
	net := bigCtxNet(t, 120)
	lib := library.MustGet("LSI9K")
	for _, workers := range []int{1, 0} { // serial and parallel pool
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res, err := Map(net, lib, Options{
			Mode: Async, Workers: workers, Ctx: ctx,
			HazardCache: hazcache.New(0), // cold private cache: keep the run slow
		})
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			// The run beat the cancel — possible only on an absurdly fast
			// box; the deterministic deadline test below still covers the
			// mid-run path.
			t.Logf("workers=%d: run completed in %s before cancellation", workers, elapsed)
			if res == nil {
				t.Fatalf("workers=%d: nil result without error", workers)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Cancellation must be prompt: well under the full run time.
		if elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation took %s", workers, elapsed)
		}
		waitGoroutines(t, baseline)
	}
}

func TestMapContextDeadline(t *testing.T) {
	net := bigCtxNet(t, 120)
	lib := library.MustGet("LSI9K")
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Map(net, lib, Options{
		Mode: Async, Ctx: ctx, HazardCache: hazcache.New(0),
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %s", elapsed)
	}
	waitGoroutines(t, baseline)
}

// A run that completes under a context must be bit-identical to one run
// without any context: cancellation checks may abort a run but never
// change its outcome.
func TestMapContextBitIdentical(t *testing.T) {
	lib := library.MustGet("LSI9K")
	for _, src := range []string{simpleSrc, bigCtxSrc(12)} {
		plain, err := Map(parseNet(t, src, "plain"), lib, Options{Mode: Async})
		if err != nil {
			t.Fatal(err)
		}
		ctxRes, err := MapContext(context.Background(), parseNet(t, src, "plain"), lib, Options{Mode: Async})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ctxRes.Netlist.String(), plain.Netlist.String(); got != want {
			t.Fatalf("netlists differ with/without context:\n--- with ---\n%s--- without ---\n%s", got, want)
		}
		if got, want := ctxRes.Stats.Deterministic(), plain.Stats.Deterministic(); got != want {
			t.Fatalf("deterministic stats differ: %+v vs %+v", got, want)
		}
	}
}

// A request cancelled mid-cone must leave nothing of itself behind: its
// arena scratch is dropped rather than pooled, so no request-scoped data
// (signal names, bindings, request IDs) can be reachable from a worker
// arena the next request reuses — and that next request must map exactly
// as if the cancelled one had never run. Run under -race this also
// checks that the drop/reacquire discipline has no unsynchronised
// hand-off.
func TestMapContextCancelLeavesPoolClean(t *testing.T) {
	lib := library.MustGet("LSI9K")
	marked := parseNet(t, leakSrc("cancelprobe", 120), "cancelprobe")
	for _, workers := range []int{1, 0} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(3 * time.Millisecond)
			cancel()
		}()
		_, err := Map(marked, lib, Options{
			Mode: Async, Workers: workers, Ctx: ctx,
			RequestID:   "cancelprobe-request-id",
			HazardCache: hazcache.New(0), // cold private cache: keep the run slow
		})
		cancel()
		if err == nil {
			t.Logf("workers=%d: run completed before cancellation", workers)
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Whatever the scratch pool hands out now — a scratch scrubbed by
		// an earlier successful run, or a fresh one (the cancelled run's
		// scratches were dropped, not pooled) — it must hold no strings
		// from any request.
		scs := []*coneScratch{acquireScratch(), acquireScratch(), acquireScratch()}
		for _, sc := range scs {
			assertScratchClean(t, sc)
		}
		for _, sc := range scs {
			releaseScratch(sc)
		}
		// The next request, reusing pooled worker state, maps byte-identically
		// to a clean-room run with arenas disabled.
		clean := parseNet(t, bigCtxSrc(4), "after-cancel")
		got, err := Map(clean, lib, Options{Mode: Async, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Map(parseNet(t, bigCtxSrc(4), "after-cancel"), lib,
			Options{Mode: Async, Workers: 1, DisableArenas: true})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got.Netlist.String(), want.Netlist.String(); g != w {
			t.Fatalf("workers=%d: netlist after cancelled request diverged from clean-room run:\n--- got ---\n%s--- want ---\n%s", workers, g, w)
		}
		if g, w := got.Stats.Deterministic(), want.Stats.Deterministic(); g != w {
			t.Fatalf("workers=%d: deterministic stats diverged: %+v vs %+v", workers, g, w)
		}
	}
}

// A panic while covering one cone on a parallel worker must surface as an
// error on that cone, not crash the process: a long-lived mapping service
// cannot afford a poisoned request taking down its neighbours.
func TestPrepareConeIsolatedConvertsPanic(t *testing.T) {
	m := &mapper{opts: Options{}.withDefaults()}
	// A constant-expression cone makes buildTree return an error path, but
	// to exercise the recover we need a genuine panic: a nil library makes
	// prepareCone dereference nil when enumerating cells.
	_, err := prepareConeIsolated(m, network.Cone{Root: "boom"})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want panic conversion", err)
	}
}
