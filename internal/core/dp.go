package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/match"
	"gfmap/internal/network"
	"gfmap/internal/truthtab"
)

const (
	phasePos = 0
	phaseNeg = 1
)

// mapper carries the per-run state of a mapping.
type mapper struct {
	lib     *library.Library
	opts    Options
	netlist *Netlist
	stats   Stats

	// tid is the trace track this mapper's cone work is recorded on
	// (1..Workers; track 0 carries the pipeline phases). met caches the
	// registry handles so hot loops never look metrics up by name.
	tid int
	met metricSet

	// reserved holds every signal name of the decomposed network, so
	// generated names (match signals, inverter outputs) never collide with
	// a design signal — including ones not yet emitted.
	reserved map[string]bool

	// Solution reuse: store is the optional persistent mapstore, seed the
	// previous result's solutions for a MapDelta run (nil otherwise), and
	// libFP/optHash the identity components every entry is keyed under.
	store   *mapstore.Store
	seed    map[string][]byte
	libFP   string
	optHash string

	// polls counts cancellation-poll opportunities on the hot matching
	// path; the context is consulted once every cancelPollStride calls so
	// a bounded run stays within a few percent of an unbounded one.
	polls int

	// sc is the arena scratch this mapper's covering DP draws transient
	// memory from; one goroutine owns it at a time. Nil selects the
	// historical allocating path (Options.DisableArenas, or a worker whose
	// scratch was dropped after a recovered panic).
	sc *coneScratch

	inv        *library.Cell
	bufCell    *library.Cell
	invSignals map[string]string
}

// cancelPollStride is how many hot-path poll opportunities pass between
// actual context checks. Cancellation is still detected at every cone and
// cut boundary, so this only bounds the latency within one binding search.
const cancelPollStride = 1024

// ctxErr reports the run context's cancellation state at a coarse
// boundary; free when the run is unbounded.
func (m *mapper) ctxErr() error {
	if m.opts.Ctx == nil {
		return nil
	}
	return m.opts.Ctx.Err()
}

// pollCtx is ctxErr amortised for per-binding hot loops.
func (m *mapper) pollCtx() error {
	if m.opts.Ctx == nil {
		return nil
	}
	if m.polls++; m.polls%cancelPollStride != 0 {
		return nil
	}
	return m.opts.Ctx.Err()
}

// cost is a covering DP value: the quantity being minimised depends on
// the objective, with the other quantity as tie-break.
type cost struct {
	area  float64
	delay float64
}

func (c cost) better(o cost, obj Objective) bool {
	if obj == MinDelay {
		if c.delay != o.delay {
			return c.delay < o.delay
		}
		return c.area < o.area
	}
	if c.area != o.area {
		return c.area < o.area
	}
	return c.delay < o.delay
}

var infCost = cost{area: inf, delay: inf}

// tnode is one node of a cone's gate tree.
type tnode struct {
	op     bexpr.Op
	kids   []int
	signal string // leaf nodes: the cone-leaf signal name

	cost   [2]cost
	choice [2]*choice
}

// choice records how a node's function (in one phase) is best realised.
type choice struct {
	// Inverter from the opposite phase.
	fromOtherPhase bool
	// Otherwise: a library-cell match over a cluster.
	cell    *library.Cell
	binding hazard.Binding
	varNode []int // cluster variable index -> tree node providing it
}

// cutEntry is one enumerated cluster cut below a node.
type cutEntry struct {
	nodes []int // cut node ids, sorted
	depth int
}

type coneMapper struct {
	m     *mapper
	cone  network.Cone
	nodes []tnode
	cuts  [][]cutEntry

	// sc is set (from the mapper) only while the covering DP solves this
	// cone; emission and solution replay never touch it. sigID/numSigs
	// give each node a dense signal identity (leaves sharing a signal name
	// share an id) so the arena path counts distinct cluster inputs with
	// epoch marks instead of string maps — the equivalence classes are
	// exactly those of signalOf.
	sc      *coneScratch
	sigID   []int
	numSigs int

	// hazCache is the per-cone memo of cluster hazard sets (already
	// translated into each cluster's variable space), consulted before
	// the shared cross-cone hazcache. Entries are owned by this cone.
	hazCache map[string]*hazard.Set
	emitted  map[[2]int]string
	matCount int

	// stop latches the run context's error once a hot-loop poll observes
	// cancellation, so the enclosing binding search and cut loops unwind
	// immediately instead of re-polling.
	stop error
}

func (m *mapper) ensureCells() error {
	if m.inv == nil {
		m.inv = m.lib.MinInverter()
		if m.inv == nil {
			return fmt.Errorf("library %s has no inverter cell", m.lib.Name)
		}
	}
	if m.bufCell == nil {
		buf, err := truthtab.FromExpr(bexpr.MustParse("a"))
		if err != nil {
			return err
		}
		for _, c := range m.lib.Cells {
			if c.NumPins() == 1 && c.TT.Equal(buf) {
				if m.bufCell == nil || c.Area < m.bufCell.Area {
					m.bufCell = c
				}
			}
		}
	}
	return nil
}

// preparedCone is a cone with its covering DP solved, ready to emit.
type preparedCone struct {
	cm   *coneMapper
	root int

	// coneKey is the cone's canonical signature; encoded its serialized
	// solution (replayed from the seed/store or freshly encoded). Both
	// feed the Result's delta state.
	coneKey string
	encoded []byte
}

// prepareCone builds the cone tree and solves the covering DP. It touches
// no shared mapper state (statistics are accumulated locally and merged by
// the caller), so cones can be prepared concurrently.
func (m *mapper) prepareCone(cone network.Cone) (*preparedCone, error) {
	tr := m.opts.Tracer
	sp := tr.StartSpanOn(m.tid, "cone")
	st0 := m.stats
	var t0 time.Time
	if m.met.coneSeconds != nil {
		t0 = time.Now()
	}
	cm := &coneMapper{
		m:        m,
		cone:     cone,
		hazCache: make(map[string]*hazard.Set),
		emitted:  make(map[[2]int]string),
	}
	root, err := cm.buildTree(cone.Expr.Root)
	if err != nil {
		sp.End()
		return nil, err
	}
	// Solution reuse: a MapDelta seed entry or a mapstore entry replays
	// the cone's recorded choices (and deterministic work counters) in
	// place of solving. Replay installs exactly what the DP would have
	// chosen for this identity triple, so emission — which reads only the
	// choices and recomputes all naming against the live netlist — yields
	// a byte-identical result. An entry that fails decode validation is a
	// miss: the cone is solved from scratch and the poisoned entry
	// repaired with a Replace (a plain Put would dedupe against the bad
	// record and leave it poisoning every future run).
	ck := mapstore.ConeKey(cone.Expr)
	var (
		ek       mapstore.Key
		enc      []byte
		hit      bool
		poisoned bool
	)
	if m.seed != nil {
		if b, ok := m.seed[ck]; ok && cm.applySolution(root, b) == nil {
			enc, hit = b, true
			m.stats.DeltaReusedCones++
		}
	}
	if !hit && m.store != nil {
		ek = mapstore.EntryKey(ck, m.libFP, m.optHash)
		if b, ok := m.store.Get(ek); ok {
			if cm.applySolution(root, b) == nil {
				enc, hit = b, true
				m.stats.StoreHits++
			} else {
				m.store.MarkCorrupt()
				poisoned = true
			}
		}
		if !hit {
			m.stats.StoreMisses++
		}
	}
	if !hit {
		dp0 := m.stats
		cm.cuts = make([][]cutEntry, len(cm.nodes))
		for i := range cm.nodes {
			cm.nodes[i].cost = [2]cost{infCost, infCost}
		}
		if cm.sc = m.sc; cm.sc != nil {
			cm.sc.beginCone()
			cm.assignSigIDs()
		}
		dsp := tr.StartSpanOn(m.tid, "dp")
		err = cm.dp()
		dsp.End()
		// Detach the scratch as soon as the DP returns: accepted choices
		// hold heap copies of everything they need, so encoding and
		// emission must never read arena-backed data (the next cone's
		// beginCone rewinds it).
		cm.sc = nil
		if err != nil {
			sp.End()
			return nil, err
		}
		enc = cm.encodeSolution(statsDelta(m.stats, dp0))
		if m.store != nil {
			var perr error
			if poisoned {
				perr = m.store.Replace(ek, enc)
			} else {
				perr = m.store.Put(ek, enc)
			}
			// A failed persist (disk full, I/O error) costs durability,
			// never correctness: the solved cone proceeds regardless.
			_ = perr
		}
	}
	if m.met.coneSeconds != nil {
		m.met.coneSeconds.Observe(time.Since(t0).Seconds())
	}
	d := m.stats
	sp.SetStr("cone", cone.Root)
	sp.SetInt("nodes", int64(len(cm.nodes)))
	sp.SetInt("clusters", int64(d.ClustersEnumerated-st0.ClustersEnumerated))
	sp.SetInt("matches", int64(d.MatchesFound-st0.MatchesFound))
	sp.SetInt("rejected", int64(d.MatchesRejected-st0.MatchesRejected))
	sp.SetInt("haz_local_hits", int64(d.HazCacheLocalHits-st0.HazCacheLocalHits))
	sp.SetInt("haz_shared_hits", int64(d.HazCacheHits-st0.HazCacheHits))
	sp.SetInt("haz_misses", int64(d.HazCacheMisses-st0.HazCacheMisses))
	sp.End()
	return &preparedCone{cm: cm, root: root, coneKey: ck, encoded: enc}, nil
}

// prepareConeProfiled runs prepareCone, attaching runtime/pprof labels
// ("worker", "cone" — plus "request" when the run carries a request ID)
// when Options.ProfileLabels is set so CPU profiles can be sliced per
// worker goroutine, per cone, and per in-flight service request.
func (m *mapper) prepareConeProfiled(cone network.Cone) (pc *preparedCone, err error) {
	if !m.opts.ProfileLabels {
		return m.prepareCone(cone)
	}
	var labels pprof.LabelSet
	if m.opts.RequestID != "" {
		labels = pprof.Labels("worker", strconv.Itoa(m.tid), "cone", cone.Root, "request", m.opts.RequestID)
	} else {
		labels = pprof.Labels("worker", strconv.Itoa(m.tid), "cone", cone.Root)
	}
	pprof.Do(context.Background(), labels, func(context.Context) {
		pc, err = m.prepareCone(cone)
	})
	return pc, err
}

// prepareCones runs the covering DP over all cones, in parallel when
// Options.Workers > 1. Results are returned in cone order, so emission —
// and therefore the final netlist — is identical to a serial run.
func (m *mapper) prepareCones(cones []network.Cone) ([]*preparedCone, error) {
	workers := m.opts.Workers
	if workers <= 1 || len(cones) < 2 {
		out := make([]*preparedCone, len(cones))
		for i, cone := range cones {
			if err := m.ctxErr(); err != nil {
				return nil, err
			}
			pc, err := m.prepareConeProfiled(cone)
			if err != nil {
				return nil, fmt.Errorf("core: cone %s: %w", cone.Root, err)
			}
			out[i] = pc
		}
		return out, nil
	}
	// Cones are dispatched in contiguous chunks (a few per worker) rather
	// than one at a time: a worker amortises its mapper shim, its arena
	// scratch and its channel receives over the whole chunk instead of
	// paying for them per cone.
	type job struct{ lo, hi int }
	chunk := (len(cones) + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	out := make([]*preparedCone, len(cones))
	errs := make([]error, len(cones))
	wstats := make([]Stats, workers)
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker accumulates statistics into its own mapper shim
			// to avoid data races, merged below (integer sums, so the merge
			// order never shows). Worker w records its cone spans on trace
			// track w+1 and owns one arena scratch for its whole lifetime —
			// strictly private, so no locking anywhere on the hot path.
			shadow := &mapper{lib: m.lib, opts: m.opts, netlist: m.netlist,
				inv: m.inv, bufCell: m.bufCell, tid: w + 1, met: m.met,
				reserved: m.reserved, store: m.store, seed: m.seed,
				libFP: m.libFP, optHash: m.optHash}
			if !m.opts.DisableArenas {
				shadow.sc = acquireScratch()
			}
			clean := true
			// Workers always drain the jobs channel — on cancellation they
			// skip the work per cone rather than stop receiving, so the
			// feeder below never blocks and no goroutine outlives this call.
			for j := range jobs {
				for i := j.lo; i < j.hi; i++ {
					if err := m.ctxErr(); err != nil {
						errs[i] = err
						clean = false
						continue
					}
					pc, err := prepareConeIsolated(shadow, cones[i])
					if err != nil {
						errs[i] = fmt.Errorf("core: cone %s: %w", cones[i].Root, err)
						clean = false
						continue
					}
					pc.cm.m = m // emission uses the real mapper
					out[i] = pc
				}
			}
			wstats[w] = shadow.stats
			// Pool the scratch only after an all-clean run: an error or a
			// cancellation drops it, so no partially-built or
			// request-scoped state can reach the next request (a panic
			// already nil'd it in prepareConeIsolated).
			if shadow.sc != nil && clean {
				releaseScratch(shadow.sc)
			}
		}(w)
	}
	for lo := 0; lo < len(cones); lo += chunk {
		hi := lo + chunk
		if hi > len(cones) {
			hi = len(cones)
		}
		jobs <- job{lo, hi}
	}
	close(jobs)
	wg.Wait()
	// A cancelled run reports the context's error in preference to the
	// per-cone wrappers, so callers see ctx.Err() itself.
	if err := m.ctxErr(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, st := range wstats {
		m.stats.merge(st)
	}
	return out, nil
}

// prepareConeIsolated runs the covering DP for one cone, converting a
// panic on the worker goroutine into an error. A panic in a worker would
// otherwise kill the whole process — unacceptable for a long-lived
// mapping service, where one poisoned request must not take down its
// neighbours.
func prepareConeIsolated(m *mapper, cone network.Cone) (pc *preparedCone, err error) {
	defer func() {
		if r := recover(); r != nil {
			// The scratch may be mid-update at the panic point: drop it
			// (never pool it) and let subsequent cones on this worker run
			// the allocating path — results are identical either way.
			m.sc = nil
			pc, err = nil, fmt.Errorf("panic in covering DP: %v", r)
		}
	}()
	return m.prepareConeProfiled(cone)
}

// emitCone realises a prepared cone into the shared netlist.
func (m *mapper) emitCone(pc *preparedCone) error {
	return pc.cm.emitRoot(pc.root)
}

// buildTree flattens the cone expression into an indexed tree, post-order
// (children before parents).
func (cm *coneMapper) buildTree(e *bexpr.Expr) (int, error) {
	switch e.Op {
	case bexpr.OpVar:
		cm.nodes = append(cm.nodes, tnode{op: bexpr.OpVar, signal: e.Name})
		return len(cm.nodes) - 1, nil
	case bexpr.OpConst:
		return -1, fmt.Errorf("constant nodes are not supported by the mapper")
	case bexpr.OpNot, bexpr.OpAnd, bexpr.OpOr:
		kids := make([]int, len(e.Kids))
		for i, k := range e.Kids {
			id, err := cm.buildTree(k)
			if err != nil {
				return -1, err
			}
			kids[i] = id
		}
		cm.nodes = append(cm.nodes, tnode{op: e.Op, kids: kids})
		return len(cm.nodes) - 1, nil
	}
	return -1, fmt.Errorf("bad expression op %d", e.Op)
}

// signalOf returns a stable per-node signal identity used to count the
// distinct inputs of a cluster: cone leaves share their signal name,
// internal nodes are their own signal.
func (cm *coneMapper) signalOf(id int) string {
	n := &cm.nodes[id]
	if n.op == bexpr.OpVar {
		return n.signal
	}
	return fmt.Sprintf("\x00n%d", id)
}

// assignSigIDs precomputes, for the arena path, a dense integer signal
// identity per tree node with exactly signalOf's equivalence classes:
// leaves sharing a signal name share an id, every internal node is its own
// (leaf names cannot collide with the "\x00n<id>" internal identities, so
// the classes split the same way). The leaf-name map is deliberately
// heap-allocated per cone — signal names are request-scoped and must never
// be retained by the pooled scratch, whose sigIDs buffer holds only ints.
func (cm *coneMapper) assignSigIDs() {
	sc := cm.sc
	if cap(sc.sigIDs) < len(cm.nodes) {
		sc.sigIDs = make([]int, len(cm.nodes))
	}
	ids := sc.sigIDs[:len(cm.nodes)]
	var leafID map[string]int
	next := 0
	for i := range cm.nodes {
		n := &cm.nodes[i]
		if n.op != bexpr.OpVar {
			ids[i] = next
			next++
			continue
		}
		if leafID == nil {
			leafID = make(map[string]int)
		}
		id, ok := leafID[n.signal]
		if !ok {
			id = next
			next++
			leafID[n.signal] = id
		}
		ids[i] = id
	}
	cm.sigID = ids
	cm.numSigs = next
}

// maxCutsPerNode caps cut enumeration to keep pathological cones bounded.
const maxCutsPerNode = 1500

// enumCuts returns the cluster cuts available below node id (memoised).
// With an arena scratch attached, the combo cross product lives in the
// scratch's tmp arena and ping-pong generation buffers, and only the cuts
// surviving the depth/leaf filter are committed to the per-cone cuts
// arena; the allocating fallback in enumCutsSlow is otherwise identical.
func (cm *coneMapper) enumCuts(id int) []cutEntry {
	if cm.cuts[id] != nil {
		return cm.cuts[id]
	}
	sc := cm.sc
	if sc == nil || sc.enumActive {
		// No scratch — or a nested re-enumeration: a child memoised as nil
		// (every cut filtered) re-enumerates inside the parent's pass while
		// the combo buffers are live, so it runs on heap-local buffers.
		// Either way the slow path is the historical one, with identical
		// work counters.
		return cm.enumCutsSlow(id)
	}
	n := &cm.nodes[id]
	if n.op == bexpr.OpVar {
		cm.cuts[id] = []cutEntry{}
		return cm.cuts[id]
	}
	sc.enumActive = true
	sc.tmp.reset()
	// Each child contributes either itself as a cut point or one of its own
	// cuts; combine across children.
	depthAdd := 1
	if n.op == bexpr.OpNot {
		depthAdd = 0 // complements fold into gates; the paper's depth counts gate levels
	}
	truncated := false
	combos := append(sc.comboA[:0], cutEntry{})
	next := sc.comboB[:0]
	for _, kid := range n.kids {
		kidOpts := append(sc.kidOpts[:0], cutEntry{nodes: append(sc.tmp.alloc(1), kid)})
		kidOpts = append(kidOpts, cm.enumCuts(kid)...)
		sc.kidOpts = kidOpts
		next = next[:0]
	combine:
		for _, base := range combos {
			for _, opt := range kidOpts {
				merged := mergeCutInto(base.nodes, opt.nodes,
					sc.tmp.alloc(len(base.nodes)+len(opt.nodes)))
				d := base.depth
				if opt.depth > d {
					d = opt.depth
				}
				next = append(next, cutEntry{nodes: merged, depth: d})
				if len(next) > 4*maxCutsPerNode {
					// Combo explosion: abandon the whole cross product, not
					// just the current base, so the bound actually bounds.
					truncated = true
					break combine
				}
			}
		}
		combos, next = next, combos
	}
	var out []cutEntry
	for ci := range combos {
		c := combos[ci]
		depth := c.depth + depthAdd
		if depth > cm.m.opts.MaxDepth {
			continue
		}
		if cm.distinctSignals(c.nodes) > cm.m.opts.MaxLeaves {
			continue
		}
		// Survivors are committed to the per-cone arena: the tmp copy dies
		// at the next enumCuts call, the committed copy lives as long as
		// the memo table needs it.
		out = append(out, cutEntry{nodes: sc.cuts.copyOf(c.nodes), depth: depth})
		if len(out) >= maxCutsPerNode {
			if ci < len(combos)-1 {
				truncated = true
			}
			break
		}
	}
	sc.comboA, sc.comboB = combos, next
	sc.enumActive = false
	if truncated {
		cm.m.stats.CutTruncations++
	}
	cm.m.met.cutsPerNode.Observe(float64(len(out)))
	cm.cuts[id] = out
	return out
}

// enumCutsSlow is the allocating cut enumeration — the historical code
// path, kept verbatim for DisableArenas and for nested re-enumeration.
func (cm *coneMapper) enumCutsSlow(id int) []cutEntry {
	n := &cm.nodes[id]
	var out []cutEntry
	if n.op == bexpr.OpVar {
		cm.cuts[id] = []cutEntry{}
		return cm.cuts[id]
	}
	depthAdd := 1
	if n.op == bexpr.OpNot {
		depthAdd = 0
	}
	truncated := false
	combos := []cutEntry{{nodes: nil, depth: 0}}
	for _, kid := range n.kids {
		var kidOpts []cutEntry
		kidOpts = append(kidOpts, cutEntry{nodes: []int{kid}, depth: 0})
		for _, e := range cm.enumCuts(kid) {
			kidOpts = append(kidOpts, e)
		}
		var next []cutEntry
	combine:
		for _, base := range combos {
			for _, opt := range kidOpts {
				merged := mergeCut(base.nodes, opt.nodes)
				d := base.depth
				if opt.depth > d {
					d = opt.depth
				}
				next = append(next, cutEntry{nodes: merged, depth: d})
				if len(next) > 4*maxCutsPerNode {
					// Combo explosion: abandon the whole cross product, not
					// just the current base, so the bound actually bounds.
					truncated = true
					break combine
				}
			}
		}
		combos = next
	}
	for ci, c := range combos {
		depth := c.depth + depthAdd
		if depth > cm.m.opts.MaxDepth {
			continue
		}
		if cm.distinctSignals(c.nodes) > cm.m.opts.MaxLeaves {
			continue
		}
		out = append(out, cutEntry{nodes: c.nodes, depth: depth})
		if len(out) >= maxCutsPerNode {
			if ci < len(combos)-1 {
				truncated = true
			}
			break
		}
	}
	if truncated {
		cm.m.stats.CutTruncations++
	}
	cm.m.met.cutsPerNode.Observe(float64(len(out)))
	cm.cuts[id] = out
	return out
}

func mergeCut(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

func (cm *coneMapper) distinctSignals(nodes []int) int {
	if sc := cm.sc; sc != nil {
		// Epoch-stamped membership over the precomputed signal ids: no map,
		// no clearing, re-entrant (each call gets a fresh epoch).
		marks, ep := sc.stamp(&sc.sigSeen, cm.numSigs)
		count := 0
		for _, id := range nodes {
			if s := cm.sigID[id]; marks[s] != ep {
				marks[s] = ep
				count++
			}
		}
		return count
	}
	seen := map[string]bool{}
	for _, id := range nodes {
		seen[cm.signalOf(id)] = true
	}
	return len(seen)
}

// clusterFunction builds the cluster's BFF over its distinct input signals
// and the mapping from variable index to providing tree node.
func (cm *coneMapper) clusterFunction(root int, cut []int) (*bexpr.Function, []int, error) {
	if cm.sc != nil {
		fn, varNodes := cm.clusterFunctionScratch(root, cut)
		return fn, varNodes, nil
	}
	inCut := make(map[int]bool, len(cut))
	for _, id := range cut {
		inCut[id] = true
	}
	varName := make(map[string]string) // signal identity -> variable name
	varNodes := []int{}
	var names []string
	var build func(id int) *bexpr.Expr
	build = func(id int) *bexpr.Expr {
		if inCut[id] {
			sig := cm.signalOf(id)
			name, ok := varName[sig]
			if !ok {
				name = fmt.Sprintf("v%d", len(names))
				varName[sig] = name
				names = append(names, name)
				varNodes = append(varNodes, id)
			}
			return bexpr.Var(name)
		}
		n := &cm.nodes[id]
		switch n.op {
		case bexpr.OpVar:
			// A cone leaf not in the cut cannot happen: leaves are always
			// cut points.
			panic("core: leaf outside cut")
		case bexpr.OpNot:
			return bexpr.Not(build(n.kids[0]))
		case bexpr.OpAnd:
			kids := make([]*bexpr.Expr, len(n.kids))
			for i, k := range n.kids {
				kids[i] = build(k)
			}
			return bexpr.And(kids...)
		default:
			kids := make([]*bexpr.Expr, len(n.kids))
			for i, k := range n.kids {
				kids[i] = build(k)
			}
			return bexpr.Or(kids...)
		}
	}
	expr := build(root)
	fn, err := bexpr.NewWithVars(expr, names)
	if err != nil {
		return nil, nil, err
	}
	return fn, varNodes, nil
}

// clusterFunctionScratch is the arena-path clusterFunction: the expression
// tree lives in the scratch's per-cut expression arena, cut membership and
// the signal→variable map are epoch-stamped int slices, variable names
// come from the static table, and the Function is the scratch's reusable
// one. The returned function and varNodes are valid until the next cut;
// anything retained past that (bindings, choices) is heap-copied by the
// consumer. Construction mirrors bexpr.Var/Not/And/Or exactly — including
// the single-operand collapse — so the built tree is structurally
// identical to the allocating path's. It cannot fail: every variable it
// names is in the order it builds, which is the only NewWithVars error.
func (cm *coneMapper) clusterFunctionScratch(root int, cut []int) (*bexpr.Function, []int) {
	sc := cm.sc
	nodeMark, nep := sc.stamp(&sc.nodeMark, len(cm.nodes))
	for _, id := range cut {
		nodeMark[id] = nep
	}
	varMark, vep := sc.stamp(&sc.varMark, cm.numSigs)
	if cap(sc.varOf) < cm.numSigs {
		sc.varOf = make([]int, cm.numSigs)
	}
	varOf := sc.varOf[:cm.numSigs]
	sc.varNodes = sc.varNodes[:0]
	sc.names = sc.names[:0]
	sc.exprs.reset()
	var build func(id int) *bexpr.Expr
	build = func(id int) *bexpr.Expr {
		if nodeMark[id] == nep {
			s := cm.sigID[id]
			v := varOf[s]
			if varMark[s] != vep {
				v = len(sc.names)
				varMark[s] = vep
				varOf[s] = v
				sc.names = append(sc.names, varName(v))
				sc.varNodes = append(sc.varNodes, id)
			}
			e := sc.exprs.node()
			e.Op, e.Name = bexpr.OpVar, sc.names[v]
			return e
		}
		n := &cm.nodes[id]
		switch n.op {
		case bexpr.OpVar:
			// A cone leaf not in the cut cannot happen: leaves are always
			// cut points.
			panic("core: leaf outside cut")
		case bexpr.OpNot:
			e := sc.exprs.node()
			e.Op = bexpr.OpNot
			e.Kids = append(sc.exprs.kidSlice(1), build(n.kids[0]))
			return e
		default:
			kids := sc.exprs.kidSlice(len(n.kids))
			for _, k := range n.kids {
				kids = append(kids, build(k))
			}
			switch len(kids) {
			case 0:
				e := sc.exprs.node()
				e.Op, e.Val = bexpr.OpConst, n.op == bexpr.OpAnd
				return e
			case 1:
				return kids[0]
			}
			e := sc.exprs.node()
			e.Op, e.Kids = n.op, kids
			return e
		}
	}
	expr := build(root)
	sc.fn.Reset(expr, sc.names)
	return &sc.fn, sc.varNodes
}

// dp computes the two-phase covering costs bottom-up. The tree is stored
// post-order, so a single pass over the node array visits children first.
func (cm *coneMapper) dp() error {
	for id := range cm.nodes {
		if err := cm.m.ctxErr(); err != nil {
			return err
		}
		n := &cm.nodes[id]
		if n.op == bexpr.OpVar {
			// Cone leaves exist for free; their complements cost an
			// inverter. Leaf arrival times are taken as zero: cones are
			// mapped in topological order, so a uniform offset per leaf
			// does not change the choice of cover.
			n.cost[phasePos] = cost{}
			n.cost[phaseNeg] = cost{area: cm.m.inv.Area, delay: cm.m.inv.Delay}
			continue
		}
		if err := cm.dpNode(id); err != nil {
			return err
		}
	}
	return nil
}

func (cm *coneMapper) dpNode(id int) error {
	n := &cm.nodes[id]
	tr := cm.m.opts.Tracer
	csp := tr.StartSpanOn(cm.m.tid, "cuts")
	cuts := cm.enumCuts(id)
	csp.SetInt("node", int64(id))
	csp.SetInt("cuts", int64(len(cuts)))
	csp.End()
	msp := tr.StartSpanOn(cm.m.tid, "match")
	msp.SetInt("node", int64(id))
	msp.SetInt("clusters", int64(len(cuts)))
	defer msp.End()
	for _, cut := range cuts {
		// Cut-enumeration boundary: a cancelled run stops before matching
		// the next cluster. cm.stop carries a cancellation observed by the
		// binding-search hot loop below.
		if cm.stop != nil {
			return cm.stop
		}
		if err := cm.m.pollCtx(); err != nil {
			return err
		}
		cm.m.stats.ClustersEnumerated++
		fn, varNodes, err := cm.clusterFunction(id, cut.nodes)
		if err != nil {
			return err
		}
		nvars := fn.NumVars()
		cm.m.met.clusterLeaves.Observe(float64(nvars))
		if nvars > truthtab.MaxVars {
			continue
		}
		// The cluster's signature vector is computed once per cut with the
		// word-parallel kernels and shared across both phases and every
		// candidate cell; the negative-phase vector is derived arithmetically
		// without touching the truth table. On the arena path all four live
		// in per-cut scratch buffers (valid until the next cut — exactly
		// their use), and the cached hazard-key state resets with the cut.
		var ttPos, ttNeg truthtab.TT
		var sigPos, sigNeg truthtab.SigVector
		if sc := cm.sc; sc != nil {
			if err := truthtab.FromExprInto(fn, &sc.ttPos); err != nil {
				continue
			}
			sc.ttPos.NotInto(&sc.ttNeg)
			sc.ttPos.SigVecInto(&sc.sigPos)
			sc.sigPos.ComplementInto(&sc.sigNeg)
			ttPos, ttNeg, sigPos, sigNeg = sc.ttPos, sc.ttNeg, sc.sigPos, sc.sigNeg
			sc.mc.beginCut()
		} else {
			ttPos, err = truthtab.FromExpr(fn)
			if err != nil {
				continue
			}
			ttNeg = ttPos.Not()
			sigPos = ttPos.SigVec()
			sigNeg = sigPos.Complement()
		}
		if cm.m.opts.DisableMatchIndex {
			for phase := 0; phase < 2; phase++ {
				target, tsig := ttPos, sigPos
				if phase == phaseNeg {
					target, tsig = ttNeg, sigNeg
				}
				for _, cell := range cm.m.lib.CellsWithPins(nvars) {
					mt := cm.m.lib.MatchInfo(cell).Matcher
					cm.m.stats.FindInvocations++
					cm.tryCell(id, phase, fn, target, tsig, cell, mt, false, varNodes)
				}
			}
			continue
		}
		// Indexed path: one probe of the library's signature-keyed match
		// index serves both phases (the key is output-phase-invariant), and
		// only cells the key proves compatible get a permutation search.
		var cands []*library.IndexedCell
		if sc := cm.sc; sc != nil {
			sc.keyBuf = sigPos.AppendCanonKey(sc.keyBuf[:0])
			cands = cm.m.lib.CandidatesKey(sc.keyBuf)
		} else {
			cands = cm.m.lib.Candidates(sigPos.CanonKey())
		}
		cm.m.stats.IndexProbes++
		cm.m.stats.IndexSkippedCells += cm.m.lib.NumCellsWithPins(nvars) - len(cands)
		for phase := 0; phase < 2; phase++ {
			target, tsig := ttPos, sigPos
			if phase == phaseNeg {
				target, tsig = ttNeg, sigNeg
			}
			for _, ic := range cands {
				if ic.Matcher.Sig().Ones != tsig.Ones {
					continue // the cell matches the other phase only
				}
				cm.m.stats.FindInvocations++
				cm.tryCell(id, phase, fn, target, tsig, ic.Cell, ic.Matcher, true, varNodes)
			}
		}
	}
	// A cancellation observed inside the final cut's binding search must
	// surface here: the DP costs are incomplete, so the run must error
	// rather than emit from a partial table.
	if cm.stop != nil {
		return cm.stop
	}
	// Phase relaxation: realise one phase as the inverse of the other.
	for phase := 0; phase < 2; phase++ {
		other := 1 - phase
		c := cost{area: n.cost[other].area + cm.m.inv.Area, delay: n.cost[other].delay + cm.m.inv.Delay}
		if c.better(n.cost[phase], cm.m.opts.Objective) {
			n.cost[phase] = c
			n.choice[phase] = &choice{fromOtherPhase: true}
		}
	}
	if n.cost[phasePos].area >= inf && n.cost[phaseNeg].area >= inf {
		return fmt.Errorf("no match found for gate node %d (library %s may lack base gates)", id, cm.m.lib.Name)
	}
	return nil
}

// matchCtx is the arena path's binding visitor: the per-binding state the
// allocating path carries in a fresh closure lives here, in the worker's
// scratch, rebound per tryCell call. It also caches the cluster hazard-set
// keys lazily per (cut, phase) — the allocating path formats the same
// string on every hazard check of a binding search — with byte-identical
// key values, so the per-cone hazCache populates and hits exactly as
// before.
type matchCtx struct {
	cm       *coneMapper
	n        *tnode
	phase    int
	fn       *bexpr.Function
	cell     *library.Cell
	mt       *match.Matcher
	pruned   bool
	varNodes []int
	rejected int
	maxB     int

	// Per-cut lazy hazard-key cache; beginCut invalidates it.
	fnStr  string
	keys   [2]string
	hasKey [2]bool
}

func (mc *matchCtx) beginCut() {
	mc.fnStr = ""
	mc.keys = [2]string{}
	mc.hasKey = [2]bool{}
}

func (mc *matchCtx) hazKey(phase int) string {
	if !mc.hasKey[phase] {
		if mc.fnStr == "" {
			mc.fnStr = mc.fn.Root.String()
		}
		mc.keys[phase] = fmt.Sprintf("%d|%s", phase, mc.fnStr)
		mc.hasKey[phase] = true
	}
	return mc.keys[phase]
}

// Visit is the per-binding acceptance test — the arena twin of tryCell's
// closure below, step for step. The one extra obligation here: a binding
// delivered through the scratch search aliases the search's permutation
// buffer, and varNodes aliases the scratch, so an *accepted* choice
// heap-copies both (choices outlive the cut; they are read by solution
// encoding and serial emission).
func (mc *matchCtx) Visit(b hazard.Binding) bool {
	cm := mc.cm
	if err := cm.m.pollCtx(); err != nil {
		cm.stop = err
		return false
	}
	cm.m.stats.MatchesFound++
	if mc.pruned {
		cm.m.stats.SymmetryPruned += mc.mt.Orbit() - 1
	}
	if cm.m.opts.Mode == Async && mc.cell.Hazardous() {
		cm.m.stats.HazardousMatches++
		if !cm.hazardSubsetOK(mc.fn, mc.phase, mc.cell, b, mc.hazKey(mc.phase)) {
			cm.m.stats.MatchesRejected++
			if mc.pruned || mc.mt.Representative(b.Perm) {
				mc.rejected++
			}
			return mc.rejected < mc.maxB
		}
	}
	c := cost{area: mc.cell.Area, delay: 0}
	sc := cm.sc
	if cap(sc.demand) < len(mc.varNodes) {
		sc.demand = make([]int, len(mc.varNodes))
	}
	demand := sc.demand[:len(mc.varNodes)]
	clear(demand)
	for pin, v := range b.Perm {
		if b.InvIn&(1<<uint(pin)) != 0 {
			demand[v] = phaseNeg
		}
	}
	for v, nodeID := range mc.varNodes {
		in := cm.nodes[nodeID].cost[demand[v]]
		c.area += in.area
		if in.delay > c.delay {
			c.delay = in.delay
		}
	}
	c.delay += mc.cell.Delay
	n := mc.n
	if c.better(n.cost[mc.phase], cm.m.opts.Objective) {
		b.Perm = append([]int(nil), b.Perm...)
		n.cost[mc.phase] = c
		n.choice[mc.phase] = &choice{
			cell:    mc.cell,
			binding: b,
			varNode: append([]int(nil), mc.varNodes...),
		}
	}
	return mc.rejected < mc.maxB
}

// tryCell attempts to match one cell against a cluster target and updates
// the DP cost for (id, phase). tsig must be target's signature vector
// (computed once per cut by dpNode); mt is the cell's prebuilt matcher.
// With pruned set, only one representative binding per pin-symmetry orbit
// is enumerated — legitimate because orbit members agree on cost (the
// input-phase demand travels with the target variable) and on the hazard
// verdict (symmetry classes require hazard-set swap invariance), and the
// representative is the orbit's DFS-first member, so the strict `better`
// comparison picks the same choice either way.
func (cm *coneMapper) tryCell(id, phase int, fn *bexpr.Function, target truthtab.TT, tsig truthtab.SigVector, cell *library.Cell, mt *match.Matcher, pruned bool, varNodes []int) {
	if cm.stop != nil {
		return
	}
	if sc := cm.sc; sc != nil {
		// Arena path: the binding visitor is the scratch's reusable
		// matchCtx (its per-cut hazard-key cache survives across the cells
		// of one cut; dpNode resets it at each cut), and the permutation
		// search runs on the scratch's match.Scratch instead of allocating
		// its own state per Find call.
		mc := &sc.mc
		mc.cm, mc.n, mc.phase, mc.fn = cm, &cm.nodes[id], phase, fn
		mc.cell, mc.mt, mc.pruned, mc.varNodes = cell, mt, pruned, varNodes
		mc.rejected, mc.maxB = 0, cm.m.opts.MaxBindings
		if pruned {
			mt.FindScratch(target, tsig, mc, &sc.msc)
		} else {
			mt.FindAllScratch(target, tsig, mc, &sc.msc)
		}
		return
	}
	n := &cm.nodes[id]
	rejected := 0
	maxB := cm.m.opts.MaxBindings
	// Output inversion is handled by the dual-phase DP (cost[x][neg] plus
	// phase relaxation), so only direct-output bindings are usable here: a
	// binding with InvOut realises the *complement* of the target.
	visit := func(b hazard.Binding) bool {
		// Binding-search boundary: the permutation search over a wide,
		// hazardous cell can visit many bindings (each with a hazard
		// analysis), so cancellation is polled here too — stride-amortised,
		// and latched in cm.stop so the surrounding loops unwind at once.
		if err := cm.m.pollCtx(); err != nil {
			cm.stop = err
			return false
		}
		cm.m.stats.MatchesFound++
		if pruned {
			cm.m.stats.SymmetryPruned += mt.Orbit() - 1
		}
		if cm.m.opts.Mode == Async && cell.Hazardous() {
			cm.m.stats.HazardousMatches++
			key := fmt.Sprintf("%d|%s", phase, fn.Root.String())
			if !cm.hazardSubsetOK(fn, phase, cell, b, key) {
				cm.m.stats.MatchesRejected++
				// MaxBindings bounds how many hazard-rejected bindings are
				// examined before giving up on a hazardous cell; accepted
				// bindings never count toward the limit. Only orbit
				// representatives count, so the pruned and unpruned searches
				// give up at exactly the same frontier and the mapped
				// netlist stays bit-identical across the two modes.
				if pruned || mt.Representative(b.Perm) {
					rejected++
				}
				return rejected < maxB
			}
		}
		// Cost: cell area plus the cost of each cluster input in the phase
		// the binding demands; arrival = worst input arrival + cell delay.
		c := cost{area: cell.Area, delay: 0}
		demand := make([]int, len(varNodes))
		for pin, v := range b.Perm {
			if b.InvIn&(1<<uint(pin)) != 0 {
				demand[v] = phaseNeg
			}
		}
		for v, nodeID := range varNodes {
			in := cm.nodes[nodeID].cost[demand[v]]
			c.area += in.area
			if in.delay > c.delay {
				c.delay = in.delay
			}
		}
		c.delay += cell.Delay
		if c.better(n.cost[phase], cm.m.opts.Objective) {
			n.cost[phase] = c
			n.choice[phase] = &choice{
				cell:    cell,
				binding: b,
				varNode: append([]int(nil), varNodes...),
			}
		}
		return rejected < maxB
	}
	if pruned {
		mt.Find(target, tsig, visit)
	} else {
		mt.FindAll(target, tsig, visit)
	}
}

// hazardSubsetOK implements the paper's asyncmatchingroutine acceptance
// test: the hazards of the (hazardous) library element, translated through
// the pin binding, must be a subset of the hazards of the subnetwork being
// replaced. Conservative failures (analysis bounds exceeded) reject the
// match — safety over optimality.
func (cm *coneMapper) hazardSubsetOK(fn *bexpr.Function, phase int, cell *library.Cell, b hazard.Binding, key string) bool {
	cm.m.stats.HazardChecks++
	cellSet := cell.Hazards
	if cellSet == nil {
		return false // cell too wide for exact analysis: conservatively reject
	}
	clusterSet, ok := cm.hazCache[key]
	if ok {
		cm.m.stats.HazCacheLocalHits++
	} else {
		expr := fn.Root
		if phase == phaseNeg {
			expr = bexpr.Not(fn.Root.Clone())
		}
		cfn, err := bexpr.NewWithVars(expr, fn.Vars)
		if err != nil {
			cm.hazCache[key] = nil
			return false
		}
		// The analysis itself (not the per-cone memo hit above) is the
		// expensive step: trace it as a "hazard" span and feed the latency
		// histogram. Both are free when observability is off.
		sp := cm.m.opts.Tracer.StartSpanOn(cm.m.tid, "hazard")
		var t0 time.Time
		if cm.m.met.hazSeconds != nil {
			t0 = time.Now()
		}
		sharedHit := false
		if hc := cm.m.opts.HazardCache; hc != nil {
			// The shared cross-cone cache: one hazard.Analyze serves every
			// structurally equivalent cluster in the process, across cones,
			// workers and runs. Returned sets are fresh copies, translated
			// into this cluster's variable space, so the per-cone memo
			// never aliases another goroutine's data.
			set, hit := hc.Analyze(cfn)
			sharedHit = hit
			if hit {
				cm.m.stats.HazCacheHits++
			} else {
				cm.m.stats.HazCacheMisses++
			}
			clusterSet = set
		} else {
			cm.m.stats.HazCacheMisses++
			set, err := hazard.Analyze(cfn)
			if err != nil {
				set = nil
			}
			clusterSet = set
		}
		if cm.m.met.hazSeconds != nil {
			cm.m.met.hazSeconds.Observe(time.Since(t0).Seconds())
		}
		sp.SetInt("phase", int64(phase))
		sp.SetInt("vars", int64(fn.NumVars()))
		if sharedHit {
			sp.SetInt("cache_hit", 1)
		} else {
			sp.SetInt("cache_hit", 0)
		}
		if clusterSet == nil {
			sp.SetInt("infeasible", 1)
		}
		sp.End()
		cm.hazCache[key] = clusterSet
	}
	if clusterSet == nil {
		return false
	}
	if cm.sc != nil {
		// Fused translate → burst-filter → subset test: same verdict as the
		// three-step pipeline below, without materialising the translated
		// set per binding.
		return cellSet.TranslatedSubsetOf(b, cm.m.opts.MaxBurst, clusterSet)
	}
	translated := cellSet.Translate(b, fn.NumVars())
	// Hazard don't-cares: bursts wider than MaxBurst never occur, so the
	// cell's hazards on those transitions are harmless.
	translated = translated.FilterMaxBurst(cm.m.opts.MaxBurst)
	return translated.SubsetOf(clusterSet)
}

// emitRoot realises the cone root in positive phase under its final name.
func (cm *coneMapper) emitRoot(root int) error {
	n := &cm.nodes[root]
	if n.op == bexpr.OpVar {
		// Alias cone (buffer): drive the root name from the leaf signal.
		if cm.m.bufCell == nil {
			return fmt.Errorf("library %s has no buffer cell for alias cone %s", cm.m.lib.Name, cm.cone.Root)
		}
		_, err := cm.m.netlist.AddGate(cm.m.bufCell, []string{n.signal}, cm.cone.Root)
		return err
	}
	sig, err := cm.emit(root, phasePos, cm.cone.Root)
	if err != nil {
		return err
	}
	if sig != cm.cone.Root {
		return fmt.Errorf("internal: root emitted as %q, want %q", sig, cm.cone.Root)
	}
	return nil
}

// emit realises node id in the given phase and returns the carrying signal
// name. When outName is non-empty the final gate is forced to drive that
// signal.
func (cm *coneMapper) emit(id, phase int, outName string) (string, error) {
	if outName == "" {
		if sig, ok := cm.emitted[[2]int{id, phase}]; ok {
			return sig, nil
		}
	}
	n := &cm.nodes[id]
	if n.op == bexpr.OpVar {
		if phase == phasePos {
			return n.signal, nil
		}
		return cm.m.invertSignal(n.signal)
	}
	ch := n.choice[phase]
	if ch == nil {
		return "", fmt.Errorf("internal: no choice for node %d phase %d", id, phase)
	}
	var sig string
	if ch.fromOtherPhase {
		inner, err := cm.emit(id, 1-phase, "")
		if err != nil {
			return "", err
		}
		if outName == "" {
			return cm.m.invertSignal(inner)
		}
		if _, err := cm.m.netlist.AddGate(cm.m.inv, []string{inner}, outName); err != nil {
			return "", err
		}
		sig = outName
	} else {
		// Realise each cluster input in the demanded phase, then the cell.
		pins := make([]string, len(ch.binding.Perm))
		for pin, v := range ch.binding.Perm {
			ph := phasePos
			if ch.binding.InvIn&(1<<uint(pin)) != 0 {
				ph = phaseNeg
			}
			s, err := cm.emit(ch.varNode[v], ph, "")
			if err != nil {
				return "", err
			}
			pins[pin] = s
		}
		sig = outName
		if sig == "" {
			sig = cm.freshMatchSignal()
		}
		if _, err := cm.m.netlist.AddGate(ch.cell, pins, sig); err != nil {
			return "", err
		}
	}
	if outName == "" {
		cm.emitted[[2]int{id, phase}] = sig
	}
	return sig, nil
}

// freshMatchSignal returns the next free generated name for an internal
// match output of this cone. sanitize can map distinct cone roots (e.g.
// "a.b" and "a-b") to the same string, and matCount is per-cone, so the
// raw "<root>_m<n>" scheme could hand two cones the same signal; names
// are therefore checked against everything already driven and against the
// reserved set of original design signals, which also prevents a
// generated name from shadowing a design signal emitted later. Emission
// is serial and cone-ordered, so the outcome is deterministic.
func (cm *coneMapper) freshMatchSignal() string {
	base := sanitize(cm.cone.Root)
	for {
		cm.matCount++
		sig := fmt.Sprintf("%s_m%d", base, cm.matCount)
		if !cm.m.netlist.Driven(sig) && !cm.m.reserved[sig] {
			return sig
		}
	}
}

// invertSignal returns (creating on demand) the inverter-driven complement
// of a signal. Inverters are shared across cones; generated names avoid
// collisions with signals already driven and with every original design
// signal — even ones not yet emitted, so a design node literally named
// "<sig>_bar" can still be emitted later under its own name.
func (m *mapper) invertSignal(sig string) (string, error) {
	if m.invSignals == nil {
		m.invSignals = make(map[string]string)
	}
	if name, ok := m.invSignals[sig]; ok {
		return name, nil
	}
	name := negName(sig)
	for i := 2; m.netlist.Driven(name) || m.reserved[name]; i++ {
		name = fmt.Sprintf("%s%d", negName(sig), i)
	}
	if _, err := m.netlist.AddGate(m.inv, []string{sig}, name); err != nil {
		return "", err
	}
	m.invSignals[sig] = name
	return name, nil
}
