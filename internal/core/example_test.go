package core_test

import (
	"fmt"

	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
)

// ExampleAsyncTmap maps the paper's Figure 3 function with the
// asynchronous mapper and verifies that no hazard was introduced.
func ExampleAsyncTmap() {
	net, _ := eqn.ParseString(`
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`, "fig3")
	lib, _ := library.Get("LSI9K")
	res, _ := core.AsyncTmap(net, lib, core.Options{})
	rep, _ := core.VerifyHazardSafety(net, res.Netlist)
	fmt.Printf("gates=%d rejected=%d clean=%v\n",
		res.Netlist.GateCount(), res.Stats.MatchesRejected, rep.Clean())
	// Output: gates=3 rejected=36 clean=true
}
