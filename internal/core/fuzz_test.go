package core

import (
	"errors"
	"strings"
	"testing"

	"gfmap/internal/blif"
	"gfmap/internal/eqn"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// fuzzLib is shared across fuzz iterations; library.Get caches and
// annotates once.
func fuzzLib(tb testing.TB) *library.Library {
	lib, err := library.Get("LSI9K")
	if err != nil {
		tb.Fatal(err)
	}
	return lib
}

// fuzzable bounds a parsed design so one fuzz iteration stays cheap and
// the exhaustive oracles stay exact.
func fuzzable(net *network.Network) bool {
	if len(net.Inputs) == 0 || len(net.Inputs) > 10 {
		return false
	}
	if net.NumNodes() == 0 || net.NumNodes() > 30 {
		return false
	}
	lits := 0
	for _, name := range net.NodeNames() {
		lits += net.Node(name).Expr.NumLiterals()
	}
	return lits <= 120
}

// FuzzMapEqn feeds arbitrary eqn text through parse → Map in both modes
// and asserts the crash and correctness invariants: no panic ever escapes
// (ErrInternal counts as one), and every successful mapping is
// well-formed and functionally equivalent to its source.
func FuzzMapEqn(f *testing.F) {
	f.Add("INPUT(a,b,c)\nOUTPUT(f)\nf = a*b + a'*c + b*c;\n")
	f.Add("INPUT(a,b)\nOUTPUT(f,g)\nh = a*b;\nf = h + a';\ng = h*b';\n")
	f.Add("INPUT(a)\nOUTPUT(f)\nf = !(a);\n")
	f.Add("INPUT(a,b,c,d,e,g,h,i,j,k,l)\nOUTPUT(z)\nz = a*b*c*d*e*g*h*i*j*k*l;\n")
	lib := fuzzLib(f)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := eqn.ParseString(src, "fuzz")
		if err != nil {
			return // malformed input must yield an error, never a crash
		}
		if !fuzzable(net) {
			return
		}
		for _, mode := range []Mode{Sync, Async} {
			res, err := Map(net, lib, Options{
				Mode:        mode,
				Workers:     1,
				HazardCache: hazcache.New(0),
			})
			if err != nil {
				if errors.Is(err, ErrInternal) {
					t.Fatalf("mode %v: internal panic: %v", mode, err)
				}
				continue // unmappable is acceptable; crashing is not
			}
			if verr := res.Netlist.Validate(); verr != nil {
				t.Fatalf("mode %v: malformed netlist: %v\n%s", mode, verr, src)
			}
			if eerr := VerifyEquivalence(net, res.Netlist); eerr != nil {
				t.Fatalf("mode %v: %v\n%s", mode, eerr, src)
			}
		}
	})
}

// FuzzRoundTrip exercises the full blif/eqn → map → emit → reparse loop:
// the mapped netlist, re-expressed as a network and re-serialised in both
// formats, must stay equivalent to the design we started from.
func FuzzRoundTrip(f *testing.F) {
	f.Add(".model m\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n0-1 1\n.end\n")
	f.Add(".model m\n.inputs a b\n.outputs f g\n.names a b h\n11 1\n.names h a f\n10 1\n.names h b g\n01 1\n.end\n")
	f.Add("INPUT(a,b,c)\nOUTPUT(f)\nf = (a + b')*(c + a');\n")
	lib := fuzzLib(f)
	f.Fuzz(func(t *testing.T, src string) {
		var net *network.Network
		var err error
		if strings.Contains(src, ".model") || strings.Contains(src, ".names") {
			net, err = blif.Parse(strings.NewReader(src), "fuzz")
		} else {
			net, err = eqn.ParseString(src, "fuzz")
		}
		if err != nil {
			return
		}
		if !fuzzable(net) {
			return
		}
		res, err := Map(net, lib, Options{Mode: Async, Workers: 1, HazardCache: hazcache.New(0)})
		if err != nil {
			if errors.Is(err, ErrInternal) {
				t.Fatalf("internal panic: %v", err)
			}
			return
		}
		mapped, err := res.Netlist.ToNetwork()
		if err != nil {
			t.Fatalf("netlist does not convert back to a network: %v\n%s", err, src)
		}
		// eqn round trip of the mapped structure.
		esrc := eqn.WriteString(mapped)
		re, err := eqn.ParseString(esrc, "rt")
		if err != nil {
			t.Fatalf("mapped netlist does not reparse as eqn: %v\n%s", err, esrc)
		}
		if eq, err := network.Equivalent(net, re); err != nil {
			t.Fatalf("equivalence: %v", err)
		} else if !eq {
			t.Fatalf("eqn round trip changed the function\nsource:\n%s\nmapped:\n%s", src, esrc)
		}
		// blif round trip of the mapped structure.
		bsrc, err := blif.WriteString(mapped)
		if err != nil {
			t.Fatalf("mapped netlist does not serialise as blif: %v", err)
		}
		rb, err := blif.Parse(strings.NewReader(bsrc), "rt")
		if err != nil {
			t.Fatalf("mapped netlist does not reparse as blif: %v\n%s", err, bsrc)
		}
		if eq, err := network.Equivalent(net, rb); err != nil {
			t.Fatalf("equivalence: %v", err)
		} else if !eq {
			t.Fatalf("blif round trip changed the function\nsource:\n%s\nmapped:\n%s", src, bsrc)
		}
	})
}
