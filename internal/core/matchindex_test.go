package core

import (
	"fmt"
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/library"
)

// The match index and symmetry pruning are pure accelerations: the mapped
// netlist and the deterministic mapping decisions must be bit-identical
// with them on or off, in both mapping modes, serial and parallel.
func TestMatchIndexBitIdentity(t *testing.T) {
	srcs := map[string]string{
		"simple": simpleSrc,
		"fig3": `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`,
		"mixed": `
INPUT(a, b, c, d, e, f)
OUTPUT(x, y, z)
u = a*b + c;
x = u*d' + e;
y = u + a'*f;
z = (u*e)' + d*f;
`,
	}
	for name, src := range srcs {
		for _, libName := range []string{"LSI9K", "Actel"} {
			lib := library.MustGet(libName)
			for _, mode := range []Mode{Sync, Async} {
				for _, workers := range []int{1, 8} {
					net := parseNet(t, src, name)
					on, err := Map(net, lib, Options{Mode: mode, Workers: workers})
					if err != nil {
						t.Fatalf("%s/%s/%v/w%d indexed: %v", name, libName, mode, workers, err)
					}
					off, err := Map(net, lib, Options{Mode: mode, Workers: workers, DisableMatchIndex: true})
					if err != nil {
						t.Fatalf("%s/%s/%v/w%d unindexed: %v", name, libName, mode, workers, err)
					}
					if on.Netlist.String() != off.Netlist.String() {
						t.Errorf("%s/%s/%v/w%d: netlists differ with index on vs off:\n%s\nvs\n%s",
							name, libName, mode, workers, on.Netlist, off.Netlist)
					}
					if on.Stats.IndexProbes == 0 || off.Stats.IndexProbes != 0 {
						t.Errorf("%s/%s/%v/w%d: index-probe accounting wrong: on=%d off=%d",
							name, libName, mode, workers, on.Stats.IndexProbes, off.Stats.IndexProbes)
					}
					if on.Stats.FindInvocations >= off.Stats.FindInvocations {
						t.Errorf("%s/%s/%v/w%d: index did not reduce Find invocations: %d vs %d",
							name, libName, mode, workers, on.Stats.FindInvocations, off.Stats.FindInvocations)
					}
				}
			}
		}
	}
}

// MaxBindings bounds hazard-rejected bindings only: a hazard-free cell
// must have its whole binding space enumerated, even when the cheapest
// input-phase assignment appears far past the 32nd binding. The cell's
// XOR head matches the target under inv(a,b) ∈ {00, 11}; the 00 family is
// enumerated first and, with the 5! orderings of the AND tail interleaved,
// the first 11-family binding is number 121. Leaf costs are rigged so the
// 11 family is cheaper.
func TestMaxBindingsCountsOnlyRejectedBindings(t *testing.T) {
	lib := library.New("maxbind")
	cell := lib.MustAdd("XA7", "(a*b' + a'*b)*c*d*e*f*g", 1)
	for _, pruned := range []bool{false, true} {
		m := &mapper{lib: lib, opts: Options{Mode: Sync}.withDefaults()}
		cm := &coneMapper{m: m}
		cm.nodes = make([]tnode, 8)
		varNodes := make([]int, 7)
		for v := 0; v < 7; v++ {
			cm.nodes[v] = tnode{op: bexpr.OpVar, signal: fmt.Sprintf("s%d", v)}
			if v < 2 {
				// Vars bound to the XOR pins: inverted inputs are cheap, so
				// only the late 11 family reaches the minimal cost.
				cm.nodes[v].cost = [2]cost{{area: 10}, {area: 1}}
			} else {
				cm.nodes[v].cost = [2]cost{{area: 0}, {area: 10}}
			}
			varNodes[v] = v
		}
		root := 7
		cm.nodes[root] = tnode{op: bexpr.OpAnd, cost: [2]cost{infCost, infCost}}
		fn := cell.Fn
		tsig := cell.TT.SigVec()
		mt := lib.MatchInfo(cell).Matcher
		cm.tryCell(root, phasePos, fn, cell.TT, tsig, cell, mt, pruned, varNodes)
		ch := cm.nodes[root].choice[phasePos]
		if ch == nil {
			t.Fatalf("pruned=%v: no choice recorded", pruned)
		}
		if ch.binding.InvIn != 0b11 {
			t.Errorf("pruned=%v: chose InvIn=%b, want the cheap 11 family — MaxBindings truncated a hazard-free cell",
				pruned, ch.binding.InvIn)
		}
		if want := cell.Area + 2; cm.nodes[root].cost[phasePos].area != want {
			t.Errorf("pruned=%v: best area %.1f, want %.1f", pruned, cm.nodes[root].cost[phasePos].area, want)
		}
		if !pruned && m.stats.MatchesFound <= m.opts.MaxBindings {
			t.Errorf("enumeration stopped after %d bindings without any rejection (limit %d misapplied)",
				m.stats.MatchesFound, m.opts.MaxBindings)
		}
	}
}

// enumCuts must keep the cut cross-product bounded for pathological
// fanins: the overflow break has to abandon the whole combination loop,
// not just one base, and the truncation must be recorded.
func TestEnumCutsCombinationBound(t *testing.T) {
	var terms []string
	for i := 0; i < 40; i++ {
		terms = append(terms, fmt.Sprintf("(x%d + y%d)", i, i))
	}
	fn := bexpr.MustParse(strings.Join(terms, "*"))
	m := &mapper{lib: library.MustGet("LSI9K"), opts: Options{Mode: Sync}.withDefaults()}
	cm := &coneMapper{m: m}
	root, err := cm.buildTree(fn.Root)
	if err != nil {
		t.Fatal(err)
	}
	cm.cuts = make([][]cutEntry, len(cm.nodes))
	cuts := cm.enumCuts(root)
	if len(cuts) > maxCutsPerNode {
		t.Errorf("enumCuts returned %d cuts, bound is %d", len(cuts), maxCutsPerNode)
	}
	if m.stats.CutTruncations == 0 {
		t.Error("combo explosion not recorded in CutTruncations")
	}
}

// The symmetry classes must never be trusted blindly: every binding the
// pruned matcher returns has to reproduce the target exactly (the leaf
// check), including on multi-word tables.
func TestPrunedMatchingWideCells(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = a*b*c*d*e*f*g*h;
`
	net := parseNet(t, src, "wide")
	lib := library.MustGet("CMOS3")
	on, err := Map(net, lib, Options{Mode: Async, MaxDepth: 8, MaxLeaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Map(net, lib, Options{Mode: Async, MaxDepth: 8, MaxLeaves: 8, DisableMatchIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Netlist.String() != off.Netlist.String() {
		t.Errorf("wide-cell netlists differ:\n%s\nvs\n%s", on.Netlist, off.Netlist)
	}
	if on.Stats.SymmetryPruned == 0 {
		t.Errorf("mapping an AND8 cone pruned no symmetric bindings: %+v", on.Stats)
	}
	if err := VerifyEquivalence(net, on.Netlist); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}
