package core

import (
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// wideExpr returns an 8-input function too wide for one match cluster
// (MaxLeaves defaults to 6), so covering it needs at least two gates and
// therefore generated internal match-signal names.
func wideExpr() *bexpr.Expr {
	v := bexpr.Var
	return bexpr.And(
		bexpr.Or(bexpr.And(v("x1"), v("x2")), bexpr.And(v("x3"), v("x4"))),
		bexpr.Or(bexpr.And(v("x5"), v("x6")), bexpr.And(v("x7"), v("x8"))),
	)
}

// Distinct cone roots (here "a.b" and "a-b") can sanitize to the same
// string, and the match counter is per-cone, so both cones used to emit
// the same generated signal (a_b_m1) and fail with "signal already
// driven". Generated names must be globally unique.
func TestMatchSignalsUniqueAcrossSanitizeCollision(t *testing.T) {
	net := network.New("sc")
	for _, in := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"} {
		if err := net.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	for _, root := range []string{"a.b", "a-b"} {
		if err := net.AddNode(root, wideExpr()); err != nil {
			t.Fatal(err)
		}
		if err := net.MarkOutput(root); err != nil {
			t.Fatal(err)
		}
	}
	for _, mode := range []Mode{Sync, Async} {
		res := mapNet(t, net, "LSI9K", mode)
		if res.Netlist.GateCount() < 4 {
			t.Fatalf("expected a multi-gate cover per cone, got %d gates:\n%s",
				res.Netlist.GateCount(), res.Netlist)
		}
	}
}

// A design node literally named "<sig>_bar" must keep its name even when
// the mapper creates an inverter for sig first: generated inverter names
// must avoid every original design signal, not only those emitted so far.
func TestInvertSignalAvoidsLaterDesignSignal(t *testing.T) {
	src := `
INPUT(a,b,c,d)
OUTPUT(f,g,u_bar)
u = a*b + c*d;
f = u'*a + u*b';
g = u' + d;
u_bar = c + d';
`
	net := parseNet(t, src, "invbar")
	res := mapNet(t, net, "LSI9K", Async)
	// The design's own u_bar node must be driven by its cover, not by the
	// generated inverter of u.
	g := res.Netlist.Driver("u_bar")
	if g == nil {
		t.Fatalf("output u_bar undriven:\n%s", res.Netlist)
	}
	if g.Cell.NumPins() == 1 && len(g.Pins) == 1 && g.Pins[0] == "u" {
		t.Fatalf("u_bar captured by the generated inverter of u:\n%s", res.Netlist)
	}
}

// Unit-level check of the reserved-name logic in invertSignal.
func TestInvertSignalSkipsReservedNames(t *testing.T) {
	lib := library.MustGet("LSI9K")
	nl := NewNetlist("t", []string{"foo"}, nil)
	m := &mapper{lib: lib, netlist: nl,
		reserved: map[string]bool{"foo": true, "foo_bar": true, "foo_bar2": true}}
	if err := m.ensureCells(); err != nil {
		t.Fatal(err)
	}
	name, err := m.invertSignal("foo")
	if err != nil {
		t.Fatal(err)
	}
	if name == "foo_bar" || name == "foo_bar2" {
		t.Fatalf("invertSignal picked reserved name %q", name)
	}
	if !strings.HasPrefix(name, "foo_bar") {
		t.Fatalf("unexpected inverter name %q", name)
	}
	// The memo returns the same name, without a second gate.
	again, err := m.invertSignal("foo")
	if err != nil {
		t.Fatal(err)
	}
	if again != name || nl.GateCount() != 1 {
		t.Fatalf("memo broken: %q vs %q, %d gates", again, name, nl.GateCount())
	}
	// The reserved design signals are still free to be driven later.
	if _, err := nl.AddGate(m.inv, []string{"foo"}, "foo_bar"); err != nil {
		t.Fatalf("design signal foo_bar no longer emittable: %v", err)
	}
}

// Generated match signals must also avoid original design signals that
// have not been emitted yet.
func TestFreshMatchSignalSkipsReservedAndDriven(t *testing.T) {
	lib := library.MustGet("LSI9K")
	nl := NewNetlist("t", []string{"x"}, nil)
	m := &mapper{lib: lib, netlist: nl, reserved: map[string]bool{"r_m1": true, "r_m3": true}}
	if err := m.ensureCells(); err != nil {
		t.Fatal(err)
	}
	cm := &coneMapper{m: m, cone: network.Cone{Root: "r"}}
	if got := cm.freshMatchSignal(); got != "r_m2" {
		t.Fatalf("first fresh name = %q, want r_m2 (r_m1 reserved)", got)
	}
	if _, err := nl.AddGate(m.inv, []string{"x"}, "r_m2"); err != nil {
		t.Fatal(err)
	}
	if got := cm.freshMatchSignal(); got != "r_m4" {
		t.Fatalf("second fresh name = %q, want r_m4 (r_m3 reserved)", got)
	}
}
