package core

import (
	"fmt"
	"sort"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// Gate is one library-cell instance in a mapped netlist.
type Gate struct {
	Cell *library.Cell
	// Pins lists the signal driving each cell input, in the order of the
	// cell's pin list (Cell.Fn.Vars).
	Pins []string
	// Out is the signal the gate drives.
	Out string
}

// Netlist is a technology-mapped circuit: library-cell instances wired by
// named signals.
type Netlist struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []*Gate

	produced map[string]*Gate
	inputSet map[string]bool
}

// NewNetlist creates an empty netlist with the given interface.
func NewNetlist(name string, inputs, outputs []string) *Netlist {
	nl := &Netlist{
		Name:     name,
		Inputs:   append([]string(nil), inputs...),
		Outputs:  append([]string(nil), outputs...),
		produced: make(map[string]*Gate),
		inputSet: make(map[string]bool),
	}
	for _, in := range inputs {
		nl.inputSet[in] = true
	}
	return nl
}

// Driven reports whether the signal is a primary input or gate output.
func (nl *Netlist) Driven(sig string) bool {
	return nl.inputSet[sig] || nl.produced[sig] != nil
}

// Driver returns the gate producing a signal, or nil.
func (nl *Netlist) Driver(sig string) *Gate { return nl.produced[sig] }

// AddGate instantiates a cell. The output signal must be fresh.
func (nl *Netlist) AddGate(cell *library.Cell, pins []string, out string) (*Gate, error) {
	if len(pins) != cell.NumPins() {
		return nil, fmt.Errorf("netlist: cell %s wants %d pins, got %d", cell.Name, cell.NumPins(), len(pins))
	}
	if nl.Driven(out) {
		return nil, fmt.Errorf("netlist: signal %q already driven", out)
	}
	g := &Gate{Cell: cell, Pins: append([]string(nil), pins...), Out: out}
	nl.Gates = append(nl.Gates, g)
	nl.produced[out] = g
	return g, nil
}

// Area sums the cell areas.
func (nl *Netlist) Area() float64 {
	var a float64
	for _, g := range nl.Gates {
		a += g.Cell.Area
	}
	return a
}

// GateCount returns the number of cell instances.
func (nl *Netlist) GateCount() int { return len(nl.Gates) }

// CellHistogram counts instances per cell name, sorted by name.
func (nl *Netlist) CellHistogram() []struct {
	Cell  string
	Count int
} {
	m := map[string]int{}
	for _, g := range nl.Gates {
		m[g.Cell.Name]++
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Cell  string
		Count int
	}, len(names))
	for i, n := range names {
		out[i] = struct {
			Cell  string
			Count int
		}{n, m[n]}
	}
	return out
}

// Validate checks that every pin is driven and every output produced.
func (nl *Netlist) Validate() error {
	for _, g := range nl.Gates {
		for _, p := range g.Pins {
			if !nl.Driven(p) {
				return fmt.Errorf("netlist: gate %s output %s reads undriven signal %q", g.Cell.Name, g.Out, p)
			}
		}
	}
	for _, o := range nl.Outputs {
		if !nl.Driven(o) {
			return fmt.Errorf("netlist: output %q undriven", o)
		}
	}
	return nil
}

// topoGates returns the gates in topological order.
func (nl *Netlist) topoGates() ([]*Gate, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[*Gate]int, len(nl.Gates))
	out := make([]*Gate, 0, len(nl.Gates))
	var visit func(g *Gate) error
	visit = func(g *Gate) error {
		switch state[g] {
		case gray:
			return fmt.Errorf("netlist: combinational cycle at %s", g.Out)
		case black:
			return nil
		}
		state[g] = gray
		for _, p := range g.Pins {
			if d := nl.produced[p]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[g] = black
		out = append(out, g)
		return nil
	}
	for _, g := range nl.Gates {
		if err := visit(g); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Delay returns the worst-case input-to-output propagation delay under the
// per-cell delay model (sum of cell delays along the longest path).
func (nl *Netlist) Delay() (float64, error) {
	order, err := nl.topoGates()
	if err != nil {
		return 0, err
	}
	arrival := make(map[string]float64, len(order))
	for _, g := range order {
		worst := 0.0
		for _, p := range g.Pins {
			if t := arrival[p]; t > worst {
				worst = t
			}
		}
		arrival[g.Out] = worst + g.Cell.Delay
	}
	var d float64
	for _, o := range nl.Outputs {
		if arrival[o] > d {
			d = arrival[o]
		}
	}
	return d, nil
}

// ToNetwork expands the netlist back into a logic network (each gate
// becomes a node computing its cell's BFF over the connected signals), for
// equivalence and hazard verification.
func (nl *Netlist) ToNetwork() (*network.Network, error) {
	net := network.New(nl.Name + "_mapped")
	for _, in := range nl.Inputs {
		if err := net.AddInput(in); err != nil {
			return nil, err
		}
	}
	order, err := nl.topoGates()
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		sub := make(map[string]string, len(g.Pins))
		for i, pinVar := range g.Cell.Fn.Vars {
			sub[pinVar] = g.Pins[i]
		}
		expr := substituteVars(g.Cell.Fn.Root, sub)
		if err := net.AddNode(g.Out, expr); err != nil {
			return nil, err
		}
	}
	for _, o := range nl.Outputs {
		if err := net.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func substituteVars(e *bexpr.Expr, sub map[string]string) *bexpr.Expr {
	switch e.Op {
	case bexpr.OpConst:
		return bexpr.Const(e.Val)
	case bexpr.OpVar:
		return bexpr.Var(sub[e.Name])
	case bexpr.OpNot:
		return bexpr.Not(substituteVars(e.Kids[0], sub))
	default:
		kids := make([]*bexpr.Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = substituteVars(k, sub)
		}
		if e.Op == bexpr.OpAnd {
			return bexpr.And(kids...)
		}
		return bexpr.Or(kids...)
	}
}

// String renders the netlist as a readable instance list.
func (nl *Netlist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# netlist %s: %d gates, area %g\n", nl.Name, len(nl.Gates), nl.Area())
	fmt.Fprintf(&b, "INPUT(%s)\nOUTPUT(%s)\n", strings.Join(nl.Inputs, ","), strings.Join(nl.Outputs, ","))
	for _, g := range nl.Gates {
		fmt.Fprintf(&b, "%s = %s(%s)\n", g.Out, g.Cell.Name, strings.Join(g.Pins, ","))
	}
	return b.String()
}
