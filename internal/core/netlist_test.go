package core

import (
	"strings"
	"testing"

	"gfmap/internal/library"
)

func tinyLib(t *testing.T) *library.Library {
	t.Helper()
	l := library.New("tiny")
	l.MustAdd("INV", "a'", 0.5)
	l.MustAdd("AND2", "a*b", 1.0)
	l.MustAdd("OR2", "a + b", 1.0)
	if err := l.Annotate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNetlistBasics(t *testing.T) {
	lib := tinyLib(t)
	nl := NewNetlist("t", []string{"a", "b", "c"}, []string{"f"})
	if _, err := nl.AddGate(lib.Cell("AND2"), []string{"a", "b"}, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate(lib.Cell("OR2"), []string{"u", "c"}, "f"); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := nl.Area(); got != 6 { // AND2 = 3, OR2 = 3 (core + output stage)
		t.Errorf("area = %g, want 6", got)
	}
	if got, _ := nl.Delay(); got != 2 {
		t.Errorf("delay = %g, want 2", got)
	}
	if nl.GateCount() != 2 {
		t.Errorf("gate count = %d", nl.GateCount())
	}
	hist := nl.CellHistogram()
	if len(hist) != 2 || hist[0].Cell != "AND2" || hist[0].Count != 1 {
		t.Errorf("histogram = %v", hist)
	}
	if !strings.Contains(nl.String(), "f = OR2(u,c)") {
		t.Errorf("rendering: %s", nl)
	}
}

func TestNetlistErrors(t *testing.T) {
	lib := tinyLib(t)
	nl := NewNetlist("t", []string{"a"}, []string{"f"})
	if _, err := nl.AddGate(lib.Cell("AND2"), []string{"a"}, "f"); err == nil {
		t.Error("pin count mismatch should fail")
	}
	if _, err := nl.AddGate(lib.Cell("INV"), []string{"a"}, "a"); err == nil {
		t.Error("driving a primary input should fail")
	}
	if _, err := nl.AddGate(lib.Cell("INV"), []string{"a"}, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate(lib.Cell("INV"), []string{"a"}, "f"); err == nil {
		t.Error("double-driving a signal should fail")
	}
	// Undriven pin caught by Validate.
	nl2 := NewNetlist("t2", []string{"a"}, []string{"g"})
	if _, err := nl2.AddGate(lib.Cell("AND2"), []string{"a", "ghost"}, "g"); err != nil {
		t.Fatal(err)
	}
	if err := nl2.Validate(); err == nil {
		t.Error("undriven pin should fail validation")
	}
	// Undriven output.
	nl3 := NewNetlist("t3", []string{"a"}, []string{"missing"})
	if err := nl3.Validate(); err == nil {
		t.Error("undriven output should fail validation")
	}
}

func TestNetlistToNetworkRoundTrip(t *testing.T) {
	lib := tinyLib(t)
	nl := NewNetlist("t", []string{"a", "b"}, []string{"f"})
	if _, err := nl.AddGate(lib.Cell("INV"), []string{"a"}, "na"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate(lib.Cell("AND2"), []string{"na", "b"}, "f"); err != nil {
		t.Fatal(err)
	}
	net, err := nl.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := net.Eval(map[string]bool{"a": false, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if !vals["f"] {
		t.Error("f should be a'·b = 1 at a=0,b=1")
	}
}

func TestNetlistCycleDetected(t *testing.T) {
	lib := tinyLib(t)
	nl := NewNetlist("t", []string{"a"}, []string{"x"})
	// Build a feedback pair by hand (bypassing the mapper, which cannot
	// create cycles).
	if _, err := nl.AddGate(lib.Cell("AND2"), []string{"a", "y"}, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate(lib.Cell("INV"), []string{"x"}, "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Delay(); err == nil {
		t.Error("combinational cycle should be reported")
	}
}
