package core

// Tests of the observability layer's contract with the mapper: tracing
// and metrics must never perturb the mapping (bit-identical netlists,
// identical deterministic statistics), the trace must contain spans for
// every pipeline phase with per-worker tracks, and the registry must be
// populated coherently with Stats.

import (
	"bytes"
	"encoding/json"
	"testing"

	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/obs"
)

const obsSrc = `
INPUT(a, b, c, d, e, f)
OUTPUT(x, y, z)
u = a*b + c;
x = u*d' + e;
y = u + a'*f;
z = (u*e)' + d*f;
`

func TestTracingPreservesMapping(t *testing.T) {
	net := parseNet(t, obsSrc, "obs")
	lib := library.MustGet("Actel")
	base, err := Map(net, lib, Options{Mode: Async, Workers: 1, HazardCache: hazcache.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		tr := obs.NewTracer(0)
		reg := obs.NewRegistry()
		traced, err := Map(net, lib, Options{
			Mode: Async, Workers: workers, HazardCache: hazcache.New(0),
			Tracer: tr, Metrics: reg, ProfileLabels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if traced.Netlist.String() != base.Netlist.String() {
			t.Errorf("workers=%d: traced netlist differs from untraced:\n%s\nvs\n%s",
				workers, traced.Netlist, base.Netlist)
		}
		if traced.Stats.Deterministic() != base.Stats.Deterministic() {
			t.Errorf("workers=%d: traced stats differ: %+v vs %+v",
				workers, traced.Stats.Deterministic(), base.Stats.Deterministic())
		}
		names := map[string]bool{}
		for _, n := range tr.SpanNames() {
			names[n] = true
		}
		for _, want := range []string{"decompose", "partition", "cover", "emit", "cone", "dp", "cuts", "match", "hazard"} {
			if !names[want] {
				t.Errorf("workers=%d: trace missing span %q (have %v)", workers, want, tr.SpanNames())
			}
		}
		// The registry's counters must mirror the deterministic stats.
		snap := reg.Snapshot()
		if got := snap.Counters["map_clusters_enumerated"]; got != uint64(traced.Stats.ClustersEnumerated) {
			t.Errorf("workers=%d: map_clusters_enumerated = %d, want %d",
				workers, got, traced.Stats.ClustersEnumerated)
		}
		if got := snap.Counters["map_cones"]; got != uint64(traced.Stats.Cones) {
			t.Errorf("workers=%d: map_cones = %d, want %d", workers, got, traced.Stats.Cones)
		}
		if snap.Histograms[MetricCutsPerNode].Count == 0 {
			t.Errorf("workers=%d: cuts-per-node histogram empty", workers)
		}
		if snap.Histograms[MetricClusterLeaves].Count == 0 {
			t.Errorf("workers=%d: cluster-leaves histogram empty", workers)
		}
		if snap.Histograms[MetricHazardSeconds].Count == 0 {
			t.Errorf("workers=%d: hazard-latency histogram empty", workers)
		}
		if snap.Gauges["map_area"] != traced.Area {
			t.Errorf("workers=%d: map_area gauge = %g, want %g", workers, snap.Gauges["map_area"], traced.Area)
		}
		if _, ok := snap.Gauges["hazcache_entries"]; !ok {
			t.Errorf("workers=%d: hazcache metrics not exported", workers)
		}
		// The exported Chrome trace must be valid JSON with X spans.
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph  string `json:"ph"`
				Tid int64  `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("workers=%d: invalid chrome trace: %v", workers, err)
		}
		tids := map[int64]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				tids[ev.Tid] = true
			}
		}
		if !tids[0] {
			t.Errorf("workers=%d: no pipeline-track spans", workers)
		}
		worker := false
		for tid := range tids {
			if tid >= 1 && tid <= int64(workers) {
				worker = true
			}
		}
		if !worker {
			t.Errorf("workers=%d: no worker-track spans (tids %v)", workers, tids)
		}
	}
}

// TestTracerDisabledStatsIdentical pins the nil-tracer run to the traced
// run's deterministic view — merge and Deterministic must agree whether
// or not observability was on, across worker counts.
func TestTracerDisabledStatsIdentical(t *testing.T) {
	net := parseNet(t, obsSrc, "obs2")
	lib := library.MustGet("CMOS3")
	plain, err := Map(net, lib, Options{Mode: Async, Workers: 4, HazardCache: hazcache.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Map(net, lib, Options{Mode: Async, Workers: 4, HazardCache: hazcache.New(0),
		Tracer: obs.NewTracer(0), Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Deterministic() != traced.Stats.Deterministic() {
		t.Errorf("deterministic stats differ with tracing:\n%+v\nvs\n%+v",
			plain.Stats.Deterministic(), traced.Stats.Deterministic())
	}
	if plain.Netlist.String() != traced.Netlist.String() {
		t.Error("netlist differs with tracing enabled")
	}
}

// TestDisabledObservabilityHotPathAllocs pins the disabled-path cost of
// the exact tracer/metric call sequence the DP hot loops execute (span
// per node, histogram observations, hazard span with attributes): zero
// allocations when no tracer or registry is configured.
func TestDisabledObservabilityHotPathAllocs(t *testing.T) {
	m := &mapper{tid: 1} // opts.Tracer nil, met zero: observability off
	allocs := testing.AllocsPerRun(1000, func() {
		csp := m.opts.Tracer.StartSpanOn(m.tid, "cuts")
		csp.SetInt("node", 3)
		csp.SetInt("cuts", 17)
		csp.End()
		msp := m.opts.Tracer.StartSpanOn(m.tid, "match")
		msp.SetInt("node", 3)
		msp.End()
		m.met.cutsPerNode.Observe(17)
		m.met.clusterLeaves.Observe(4)
		sp := m.opts.Tracer.StartSpanOn(m.tid, "hazard")
		sp.SetInt("phase", 1)
		sp.SetInt("cache_hit", 0)
		sp.End()
		if m.met.hazSeconds != nil {
			t.Error("unexpected histogram handle")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled observability hot path allocates: %v allocs/op", allocs)
	}
}

// TestTracerBufferOverflowSafe: a tiny trace buffer must truncate, not
// corrupt, and must not affect the mapping.
func TestTracerBufferOverflowSafe(t *testing.T) {
	net := parseNet(t, obsSrc, "obs3")
	lib := library.MustGet("LSI9K")
	tr := obs.NewTracer(4)
	res, err := Map(net, lib, Options{Mode: Async, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() > 4 {
		t.Errorf("buffer exceeded cap: %d", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Error("expected dropped records with a 4-entry buffer")
	}
	if err := res.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("truncated trace is not valid JSON")
	}
}
