package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/library"
)

// WriteVerilog renders the netlist as structural Verilog: one module with
// a gate-level instance per cell. Cell pins are named a, b, c, … in the
// library's pin order plus the output pin y, so the companion cell models
// can be generated with WriteVerilogLibrary.
func (nl *Netlist) WriteVerilog(w io.Writer) error {
	ports := append([]string{}, nl.Inputs...)
	ports = append(ports, nl.Outputs...)
	if _, err := fmt.Fprintf(w, "module %s(%s);\n", vlogID(nl.Name), strings.Join(mapStrings(ports, vlogID), ", ")); err != nil {
		return err
	}
	for _, in := range nl.Inputs {
		if _, err := fmt.Fprintf(w, "  input %s;\n", vlogID(in)); err != nil {
			return err
		}
	}
	for _, out := range nl.Outputs {
		if _, err := fmt.Fprintf(w, "  output %s;\n", vlogID(out)); err != nil {
			return err
		}
	}
	outSet := make(map[string]bool, len(nl.Outputs))
	for _, o := range nl.Outputs {
		outSet[o] = true
	}
	inSet := make(map[string]bool, len(nl.Inputs))
	for _, i := range nl.Inputs {
		inSet[i] = true
	}
	var wires []string
	for _, g := range nl.Gates {
		if !outSet[g.Out] && !inSet[g.Out] {
			wires = append(wires, vlogID(g.Out))
		}
	}
	sort.Strings(wires)
	if len(wires) > 0 {
		if _, err := fmt.Fprintf(w, "  wire %s;\n", strings.Join(wires, ", ")); err != nil {
			return err
		}
	}
	for i, g := range nl.Gates {
		var conns []string
		for pin, sig := range g.Pins {
			conns = append(conns, fmt.Sprintf(".%s(%s)", pinName(pin), vlogID(sig)))
		}
		conns = append(conns, fmt.Sprintf(".y(%s)", vlogID(g.Out)))
		if _, err := fmt.Fprintf(w, "  %s u%d (%s);\n", vlogID(g.Cell.Name), i, strings.Join(conns, ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "endmodule")
	return err
}

// VerilogString renders the netlist as structural Verilog.
func (nl *Netlist) VerilogString() (string, error) {
	var b strings.Builder
	if err := nl.WriteVerilog(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// pinName names cell input pin i in bijective base-26: a…z, aa, ab, …
// The earlier i%26 scheme silently aliased the pins of cells with 26 or
// more inputs (pin 26 collided with pin 0), corrupting the Verilog
// netlist for such libraries.
func pinName(i int) string {
	var buf [8]byte
	pos := len(buf)
	for {
		pos--
		buf[pos] = byte('a' + i%26)
		i = i/26 - 1
		if i < 0 {
			return string(buf[pos:])
		}
	}
}

// WriteVerilogLibrary renders behavioural companion models for every cell
// of a library, so a netlist written by WriteVerilog can be simulated
// standalone: one module per cell (sorted by name), input pins named with
// pinName in the cell's pin order, and the output pin y driven by an
// assign of the cell's Boolean factored form.
func WriteVerilogLibrary(w io.Writer, lib *library.Library) error {
	cells := append([]*library.Cell(nil), lib.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
	var b strings.Builder
	for ci, c := range cells {
		if ci > 0 {
			b.WriteByte('\n')
		}
		pins := make([]string, c.NumPins())
		sub := make(map[string]string, len(pins))
		for i, v := range c.Fn.Vars {
			pins[i] = pinName(i)
			sub[v] = pins[i]
		}
		ports := append(append([]string{}, pins...), "y")
		fmt.Fprintf(&b, "module %s(%s);\n", vlogID(c.Name), strings.Join(ports, ", "))
		for _, p := range pins {
			fmt.Fprintf(&b, "  input %s;\n", p)
		}
		b.WriteString("  output y;\n")
		fmt.Fprintf(&b, "  assign y = %s;\n", vlogExpr(c.Fn.Root, sub))
		b.WriteString("endmodule\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// vlogExpr renders a BFF expression as a Verilog expression, with the
// variables substituted by their pin names.
func vlogExpr(e *bexpr.Expr, sub map[string]string) string {
	switch e.Op {
	case bexpr.OpConst:
		if e.Val {
			return "1'b1"
		}
		return "1'b0"
	case bexpr.OpVar:
		return sub[e.Name]
	case bexpr.OpNot:
		return "~" + vlogTerm(e.Kids[0], sub)
	case bexpr.OpAnd, bexpr.OpOr:
		op := " & "
		if e.Op == bexpr.OpOr {
			op = " | "
		}
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = vlogTerm(k, sub)
		}
		return strings.Join(parts, op)
	}
	return "1'bx"
}

// vlogTerm is vlogExpr with parentheses around compound subexpressions.
func vlogTerm(e *bexpr.Expr, sub map[string]string) string {
	s := vlogExpr(e, sub)
	if e.Op == bexpr.OpAnd || e.Op == bexpr.OpOr {
		return "(" + s + ")"
	}
	return s
}

func mapStrings(xs []string, f func(string) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// vlogID renders a signal name as a safe Verilog identifier.
func vlogID(s string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
	if safe == "" || (safe[0] >= '0' && safe[0] <= '9') {
		safe = "s_" + safe
	}
	return safe
}

// PathElement is one gate on a timing path.
type PathElement struct {
	Gate    *Gate
	Arrival float64
}

// CriticalPath returns the gates along the slowest input-to-output path,
// leaf-most first, together with their arrival times.
func (nl *Netlist) CriticalPath() ([]PathElement, error) {
	order, err := nl.topoGates()
	if err != nil {
		return nil, err
	}
	arrival := make(map[string]float64, len(order))
	through := make(map[string]*Gate, len(order))
	for _, g := range order {
		worst := 0.0
		for _, p := range g.Pins {
			if t := arrival[p]; t > worst {
				worst = t
			}
		}
		arrival[g.Out] = worst + g.Cell.Delay
		through[g.Out] = g
	}
	// Find the slowest output, then walk backwards along worst fanins.
	var endSig string
	for _, o := range nl.Outputs {
		if endSig == "" || arrival[o] > arrival[endSig] {
			endSig = o
		}
	}
	var rev []PathElement
	for sig := endSig; through[sig] != nil; {
		g := through[sig]
		rev = append(rev, PathElement{Gate: g, Arrival: arrival[sig]})
		next := ""
		for _, p := range g.Pins {
			if next == "" || arrival[p] > arrival[next] {
				next = p
			}
		}
		if arrival[next] == 0 && through[next] == nil {
			break
		}
		sig = next
	}
	// Reverse to leaf-most-first order.
	out := make([]PathElement, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out, nil
}

// FormatCriticalPath renders the critical path as a readable report.
func (nl *Netlist) FormatCriticalPath() (string, error) {
	path, err := nl.CriticalPath()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("critical path:\n")
	for _, e := range path {
		fmt.Fprintf(&b, "  %8.2fns  %-10s -> %s\n", e.Arrival, e.Gate.Cell.Name, e.Gate.Out)
	}
	return b.String(), nil
}
