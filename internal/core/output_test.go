package core

import (
	"strings"
	"testing"

	"gfmap/internal/library"
)

func TestWriteVerilog(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	res := mapNet(t, parseNet(t, src, "vl"), "LSI9K", Async)
	text, err := res.Netlist.VerilogString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module vl(", "input a;", "output f;", "endmodule", ".y(f)"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}
	// Every gate instance appears.
	if got := strings.Count(text, " u"); got < res.Netlist.GateCount() {
		t.Errorf("expected %d instances, found markers for %d:\n%s", res.Netlist.GateCount(), got, text)
	}
}

// pinName must be bijective base-26: the old i%26 scheme silently aliased
// pin 26 with pin 0 on wide cells.
func TestPinNameBase26(t *testing.T) {
	tests := map[int]string{
		0: "a", 1: "b", 25: "z",
		26: "aa", 27: "ab", 51: "az", 52: "ba",
		701: "zz", 702: "aaa",
	}
	for i, want := range tests {
		if got := pinName(i); got != want {
			t.Errorf("pinName(%d) = %q, want %q", i, got, want)
		}
	}
	// No aliasing over a wide range.
	seen := make(map[string]int)
	for i := 0; i < 1000; i++ {
		n := pinName(i)
		if prev, dup := seen[n]; dup {
			t.Fatalf("pinName aliases %d and %d to %q", prev, i, n)
		}
		seen[n] = i
	}
}

func TestWriteVerilogLibrary(t *testing.T) {
	lib := library.MustGet("LSI9K")
	var b strings.Builder
	if err := WriteVerilogLibrary(&b, lib); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if got, want := strings.Count(text, "module "), len(lib.Cells); got != want {
		t.Fatalf("%d modules for %d cells:\n%s", got, want, text)
	}
	for _, c := range lib.Cells {
		if !strings.Contains(text, "module "+vlogID(c.Name)+"(") {
			t.Errorf("missing module for cell %s", c.Name)
		}
	}
	// Every module drives y and uses base-26 pin names matching the
	// netlist writer's connection names.
	if strings.Count(text, "  assign y = ") != len(lib.Cells) {
		t.Errorf("not every module assigns y:\n%s", text)
	}
	inv := lib.MinInverter()
	if !strings.Contains(text, "module "+vlogID(inv.Name)+"(a, y);") {
		t.Errorf("inverter ports wrong:\n%s", text)
	}
}

func TestVlogIDSanitisation(t *testing.T) {
	tests := map[string]string{
		"a":     "a",
		"a-b":   "a_b",
		"3x":    "s_3x",
		"":      "s_",
		"f$bar": "f_bar",
	}
	for in, want := range tests {
		if got := vlogID(in); got != want {
			t.Errorf("vlogID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = ((((((a*b)' + c)*d)' + e)*f + g)*h)';
`
	res := mapNet(t, parseNet(t, src, "cp"), "GDT", Async)
	path, err := res.Netlist.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// The path's final arrival equals the reported delay, and arrivals are
	// non-decreasing.
	last := path[len(path)-1]
	if last.Arrival != res.Delay {
		t.Errorf("path end arrival %.3f != netlist delay %.3f", last.Arrival, res.Delay)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Arrival < path[i-1].Arrival {
			t.Errorf("arrivals not monotone: %v", path)
		}
	}
	report, err := res.Netlist.FormatCriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "critical path") {
		t.Errorf("report: %s", report)
	}
	_ = library.BuiltinNames
}
