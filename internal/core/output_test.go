package core

import (
	"strings"
	"testing"

	"gfmap/internal/library"
)

func TestWriteVerilog(t *testing.T) {
	src := `
INPUT(a, b, c)
OUTPUT(f)
f = a*b + a'*c + b*c;
`
	res := mapNet(t, parseNet(t, src, "vl"), "LSI9K", Async)
	text, err := res.Netlist.VerilogString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module vl(", "input a;", "output f;", "endmodule", ".y(f)"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}
	// Every gate instance appears.
	if got := strings.Count(text, " u"); got < res.Netlist.GateCount() {
		t.Errorf("expected %d instances, found markers for %d:\n%s", res.Netlist.GateCount(), got, text)
	}
}

func TestVlogIDSanitisation(t *testing.T) {
	tests := map[string]string{
		"a":     "a",
		"a-b":   "a_b",
		"3x":    "s_3x",
		"":      "s_",
		"f$bar": "f_bar",
	}
	for in, want := range tests {
		if got := vlogID(in); got != want {
			t.Errorf("vlogID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	src := `
INPUT(a, b, c, d, e, f, g, h)
OUTPUT(y)
y = ((((((a*b)' + c)*d)' + e)*f + g)*h)';
`
	res := mapNet(t, parseNet(t, src, "cp"), "GDT", Async)
	path, err := res.Netlist.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// The path's final arrival equals the reported delay, and arrivals are
	// non-decreasing.
	last := path[len(path)-1]
	if last.Arrival != res.Delay {
		t.Errorf("path end arrival %.3f != netlist delay %.3f", last.Arrival, res.Delay)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Arrival < path[i-1].Arrival {
			t.Errorf("arrivals not monotone: %v", path)
		}
	}
	report, err := res.Netlist.FormatCriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "critical path") {
		t.Errorf("report: %s", report)
	}
	_ = library.BuiltinNames
}
