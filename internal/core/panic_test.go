package core

import (
	"errors"
	"testing"

	"gfmap/internal/library"
)

// Map must never let a panic escape: defects anywhere in the pipeline are
// returned as errors wrapping ErrInternal so long-lived callers (CLIs,
// asyncmapd) keep running. A nil network is the simplest guaranteed way
// to make the pipeline fault.
func TestMapRecoversPanicsAsErrInternal(t *testing.T) {
	lib, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(nil, lib, Options{Workers: 1})
	if err == nil {
		t.Fatalf("Map(nil network) succeeded: %+v", res)
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error does not wrap ErrInternal: %v", err)
	}
}
