package core

// Sharded cone solving: the distributed-fleet face of the pipeline.
//
// The covering DP is embarrassingly parallel at cone granularity and its
// per-cone outcome is already serialized (solution.go) for the mapstore
// and MapDelta. MapCones exposes exactly that: run decompose + partition,
// solve only the cones a shard owns, and return their encoded solutions.
// A coordinator unions the shards' solution maps into a seed
// (NewSolutionSeed) and runs MapDelta locally: every shard-solved cone
// replays its recorded choices, every missing / corrupt / wrong-identity
// solution degrades to a local solve, and emission — which is serial and
// recomputes all naming from live netlist state — produces a netlist
// byte-identical to a plain single-process Map. Worker failure therefore
// costs duplicated work, never a different answer.

import (
	"context"
	"fmt"
	"runtime/debug"

	"gfmap/internal/library"
	"gfmap/internal/network"
)

// ConeSolutions is the outcome of one shard's MapCones run: the encoded
// covering solutions of the cones the shard owns, tagged with the
// identity pair (library fingerprint × option hash) they are only valid
// under.
type ConeSolutions struct {
	// LibFP and OptHash identify what the solutions were computed against;
	// a coordinator must discard a shard whose pair differs from its own
	// (SolutionIdentity) — MapDelta would ignore them anyway.
	LibFP   string
	OptHash string
	// Cones is the design's total cone count; Solved how many this shard
	// owned (every shards-th cone by partition ordinal).
	Cones  int
	Solved int
	// Solutions maps canonical cone signature → encoded solution, exactly
	// the encoding mapstore records and MapDelta seeds replay.
	Solutions map[string][]byte
	// Stats covers only this shard's solving work.
	Stats Stats
}

// MapCones runs the front half of the pipeline (decompose, partition,
// covering DP) for one shard of a design's cones: cone i is owned by
// shard i mod shards, a pure function of the deterministic partition
// order, so `shards` concurrent calls cover every cone exactly once with
// no coordination. No emission happens here — the caller assembles the
// final netlist by seeding MapDelta with the union of shard solutions.
//
// Like Map, MapCones never panics (defects surface as ErrInternal) and a
// cancelled ctx aborts promptly with ctx.Err().
func MapCones(ctx context.Context, net *network.Network, lib *library.Library, opts Options, shard, shards int) (cs *ConeSolutions, err error) {
	defer func() {
		if r := recover(); r != nil {
			cs, err = nil, fmt.Errorf("%w: panic in mapping pipeline: %v\n%s", ErrInternal, r, debug.Stack())
		}
	}()
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("core: shard %d of %d out of range", shard, shards)
	}
	opts.Ctx = ctx
	opts = opts.withDefaults()
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	if opts.Mode == Async && !lib.Annotated() {
		if err := lib.Annotate(); err != nil {
			return nil, err
		}
	}
	decomposed, err := network.AsyncTechDecomp(net)
	if err != nil {
		return nil, err
	}
	cones, err := network.Partition(decomposed)
	if err != nil {
		return nil, err
	}
	assigned := make([]network.Cone, 0, (len(cones)+shards-1)/shards)
	for i := shard; i < len(cones); i += shards {
		assigned = append(assigned, cones[i])
	}
	m := &mapper{lib: lib, opts: opts,
		netlist: NewNetlist(net.Name, net.Inputs, net.Outputs),
		tid:     1, met: newMetricSet(opts.Metrics)}
	if !opts.DisableArenas {
		m.sc = acquireScratch()
	}
	// Same identity discipline as mapPipeline: fingerprint after
	// annotation, so pre- and post-annotation solutions never mix.
	m.libFP = lib.Fingerprint()
	m.optHash = optionHash(opts)
	m.store = opts.Store
	if err := m.ensureCells(); err != nil {
		return nil, err
	}
	prepared, err := m.prepareCones(assigned)
	if err != nil {
		if cerr := ctxErr(opts.Ctx); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	m.stats.Cones = len(assigned)
	sols := make(map[string][]byte, len(prepared))
	for _, pc := range prepared {
		sols[pc.coneKey] = pc.encoded
	}
	// Pool the scratch only on the clean path, mirroring mapPipeline.
	if m.sc != nil {
		releaseScratch(m.sc)
		m.sc = nil
	}
	return &ConeSolutions{LibFP: m.libFP, OptHash: m.optHash,
		Cones: len(cones), Solved: len(assigned),
		Solutions: sols, Stats: m.stats}, nil
}

// SolutionIdentity returns the (library fingerprint, option hash) pair a
// Map/MapCones run under these options tags its solutions with, so a
// coordinator can reject a shard response computed against a different
// library or semantically different options before seeding assembly.
// Annotates the library first in Async mode, exactly as mapping would.
func SolutionIdentity(lib *library.Library, opts Options) (libFP, optHash string, err error) {
	opts = opts.withDefaults()
	if opts.Mode == Async && !lib.Annotated() {
		if err := lib.Annotate(); err != nil {
			return "", "", err
		}
	}
	return lib.Fingerprint(), optionHash(opts), nil
}

// Solutions exposes the per-cone covering solutions a Result retains for
// MapDelta, so a worker process can ship them to its coordinator. The
// returned map is shared with the Result — treat it as read-only.
func (r *Result) Solutions() (libFP, optHash string, solutions map[string][]byte) {
	if r == nil || r.delta == nil {
		return "", "", nil
	}
	return r.delta.libFP, r.delta.optHash, r.delta.solutions
}

// NewSolutionSeed builds a Result usable as MapDelta's prev from
// externally transported solutions — the coordinator half of a sharded
// run. Only the delta seed is populated; the other Result fields are
// zero. MapDelta validates the identity pair wholesale and every
// individual solution exhaustively before replaying it, so a wrong,
// corrupt or missing entry degrades that cone to a local solve — it can
// never change the assembled netlist, only how much work assembly does.
func NewSolutionSeed(libFP, optHash string, solutions map[string][]byte) *Result {
	return &Result{delta: &deltaState{libFP: libFP, optHash: optHash, solutions: solutions}}
}
