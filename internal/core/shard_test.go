package core

import (
	"context"
	"testing"

	"gfmap/internal/library"
)

const shardSrc = `
INPUT(a, b, c, d, e)
OUTPUT(f, g, h, k, m)
u = a*b + c;
f = u*d';
g = u + a'*d;
w = c*d + a;
h = w + e';
k = a'*b' + c*d';
m = e*(a + b') + c';
`

// TestMapConesAssemblyByteIdentity: union the shard solution maps of a
// design split 1/2/3 ways, seed MapDelta with them, and require the
// assembled netlist (and deterministic stats) to be byte-identical to a
// plain single-process Map — the determinism bar of the fleet coordinator.
func TestMapConesAssemblyByteIdentity(t *testing.T) {
	lib := library.MustGet("LSI9K")
	for _, mode := range []Mode{Sync, Async} {
		opts := Options{Mode: mode, Workers: 1}
		net := parseNet(t, shardSrc, "shardtest")
		base, err := Map(net, lib, opts)
		if err != nil {
			t.Fatal(err)
		}
		for shards := 1; shards <= 3; shards++ {
			union := make(map[string][]byte)
			total := 0
			var libFP, optHash string
			for shard := 0; shard < shards; shard++ {
				cs, err := MapCones(context.Background(), net, lib, opts, shard, shards)
				if err != nil {
					t.Fatalf("%v shards=%d shard=%d: %v", mode, shards, shard, err)
				}
				if cs.Cones != base.Stats.Cones {
					t.Fatalf("%v: shard sees %d cones, base mapped %d", mode, cs.Cones, base.Stats.Cones)
				}
				total += cs.Solved
				for k, v := range cs.Solutions {
					union[k] = v
				}
				libFP, optHash = cs.LibFP, cs.OptHash
			}
			if total != base.Stats.Cones {
				t.Fatalf("%v shards=%d: shards solved %d cones, want %d", mode, shards, total, base.Stats.Cones)
			}
			wantFP, wantOH, err := SolutionIdentity(lib, opts)
			if err != nil {
				t.Fatal(err)
			}
			if libFP != wantFP || optHash != wantOH {
				t.Fatalf("%v: SolutionIdentity (%q,%q) != shard identity (%q,%q)",
					mode, wantFP, wantOH, libFP, optHash)
			}
			seed := NewSolutionSeed(libFP, optHash, union)
			asm, err := MapDelta(seed, net, lib, opts)
			if err != nil {
				t.Fatalf("%v shards=%d: assemble: %v", mode, shards, err)
			}
			if asm.Netlist.String() != base.Netlist.String() {
				t.Fatalf("%v shards=%d: assembled netlist differs:\n%s\n---\n%s",
					mode, shards, asm.Netlist, base.Netlist)
			}
			if asm.Stats.Deterministic() != base.Stats.Deterministic() {
				t.Fatalf("%v shards=%d: deterministic stats fork:\n%+v\n---\n%+v",
					mode, shards, asm.Stats.Deterministic(), base.Stats.Deterministic())
			}
			// Every cone must have replayed from the seed (duplicate
			// signatures collapse, so compare against the union's size).
			if asm.Stats.DeltaReusedCones < len(union) {
				t.Fatalf("%v shards=%d: reused %d cones, want >= %d",
					mode, shards, asm.Stats.DeltaReusedCones, len(union))
			}
		}
	}
}

// TestMapConesAssemblyDegradesOnLoss: assembly seeded from a strict
// subset of shards (a worker died) or from solutions under a wrong
// identity must still produce the byte-identical netlist — the lost
// cones are simply solved locally.
func TestMapConesAssemblyDegradesOnLoss(t *testing.T) {
	lib := library.MustGet("LSI9K")
	opts := Options{Mode: Async, Workers: 1}
	net := parseNet(t, shardSrc, "shardloss")
	base, err := Map(net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := MapCones(context.Background(), net, lib, opts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Solved == 0 || cs.Solved == cs.Cones {
		t.Fatalf("want a strict subset of cones solved, got %d/%d", cs.Solved, cs.Cones)
	}

	// Shard 1 lost: only shard 0's solutions seed the assembly.
	asm, err := MapDelta(NewSolutionSeed(cs.LibFP, cs.OptHash, cs.Solutions), net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if asm.Netlist.String() != base.Netlist.String() {
		t.Fatalf("partial-seed netlist differs:\n%s\n---\n%s", asm.Netlist, base.Netlist)
	}
	if asm.Stats.Deterministic() != base.Stats.Deterministic() {
		t.Fatalf("partial-seed deterministic stats fork")
	}
	if asm.Stats.DeltaReusedCones == 0 || asm.Stats.DeltaReusedCones >= asm.Stats.Cones {
		t.Fatalf("partial seed reused %d of %d cones, want a strict nonzero subset",
			asm.Stats.DeltaReusedCones, asm.Stats.Cones)
	}

	// Wrong identity: the whole seed is ignored, result still identical.
	asm2, err := MapDelta(NewSolutionSeed(cs.LibFP, "bogus-options", cs.Solutions), net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if asm2.Netlist.String() != base.Netlist.String() {
		t.Fatalf("wrong-identity netlist differs")
	}
	if asm2.Stats.DeltaReusedCones != 0 {
		t.Fatalf("wrong-identity seed reused %d cones, want 0", asm2.Stats.DeltaReusedCones)
	}

	// Corrupt solution bytes: decode-fails into a local solve, never a
	// different netlist.
	corrupt := make(map[string][]byte, len(cs.Solutions))
	for k, v := range cs.Solutions {
		b := append([]byte(nil), v...)
		if len(b) > 0 {
			b[len(b)/2] ^= 0xff
		}
		corrupt[k] = b
	}
	asm3, err := MapDelta(NewSolutionSeed(cs.LibFP, cs.OptHash, corrupt), net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if asm3.Netlist.String() != base.Netlist.String() {
		t.Fatalf("corrupt-seed netlist differs")
	}
}

// TestMapConesBadShard: out-of-range shard coordinates are rejected.
func TestMapConesBadShard(t *testing.T) {
	lib := library.MustGet("LSI9K")
	net := parseNet(t, shardSrc, "shardbad")
	for _, c := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		if _, err := MapCones(context.Background(), net, lib, Options{}, c[0], c[1]); err == nil {
			t.Fatalf("shard %d/%d: want error", c[0], c[1])
		}
	}
}

// TestMapConesResultSolutionsRoundTrip: Result.Solutions of a plain Map
// seeds an assembly that reuses every cone — the design-wise transport
// path (a worker maps the whole design and ships its solutions back).
func TestMapConesResultSolutionsRoundTrip(t *testing.T) {
	lib := library.MustGet("LSI9K")
	opts := Options{Mode: Async, Workers: 1}
	net := parseNet(t, shardSrc, "shardrt")
	base, err := Map(net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, oh, sols := base.Solutions()
	if fp == "" || oh == "" || len(sols) == 0 {
		t.Fatalf("Solutions() empty: %q %q %d", fp, oh, len(sols))
	}
	asm, err := MapDelta(NewSolutionSeed(fp, oh, sols), net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if asm.Netlist.String() != base.Netlist.String() {
		t.Fatalf("round-trip netlist differs")
	}
	if asm.Stats.DeltaReusedCones != asm.Stats.Cones {
		t.Fatalf("reused %d of %d cones", asm.Stats.DeltaReusedCones, asm.Stats.Cones)
	}
}
