package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
)

// A cone solution is the serialized outcome of one cone's covering DP:
// the per-node, per-phase choices (which cell, under which pin binding,
// fed by which tree nodes — or an inverter off the opposite phase) plus
// the deterministic work counters the DP accumulated while solving.
//
// Choices are everything emission reads, and emission recomputes all
// naming from live netlist state, so replaying a solution yields a
// netlist byte-identical to re-running the DP. The counters are replayed
// into Stats on a hit so a warm run's Stats.Deterministic() view is
// exactly a cold run's — cache-hit paths must not fork the deterministic
// summary (they skip the work, not the accounting of what the work was).
//
// The payload lives in a mapstore whose records are checksummed, but a
// checksum only proves the bytes are what was written — not that what was
// written is sane for *this* cone. decode therefore validates structure
// exhaustively (cell exists, binding is a bijection, fed nodes precede
// the choice's node, no mutually-inverting phase pair, every choice
// reachable from the root exists) and a failure is surfaced as a miss,
// never as a panic or a wrong netlist.

// solutionVersion begins every encoded solution; bump on format change so
// old store entries decode-fail into misses instead of misbehaving.
const solutionVersion = 1

var errBadSolution = errors.New("core: invalid cone solution")

// solutionStats lists, in encoding order, the Stats counters that are
// deterministic per cone and therefore stored and replayed with its
// solution.
func solutionStats(s *Stats) []*int {
	return []*int{
		&s.ClustersEnumerated, &s.MatchesFound, &s.HazardousMatches,
		&s.HazardChecks, &s.MatchesRejected, &s.CutTruncations,
		&s.FindInvocations, &s.IndexProbes, &s.IndexSkippedCells,
		&s.SymmetryPruned, &s.HazCacheLocalHits,
	}
}

// statsDelta returns now − before on the per-cone deterministic counters.
func statsDelta(now, before Stats) Stats {
	var d Stats
	df, nf, bf := solutionStats(&d), solutionStats(&now), solutionStats(&before)
	for i := range df {
		*df[i] = *nf[i] - *bf[i]
	}
	return d
}

// encodeSolution serializes the solved choices of this cone's tree along
// with the cone's deterministic stats delta.
func (cm *coneMapper) encodeSolution(delta Stats) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, solutionVersion)
	buf = binary.AppendUvarint(buf, uint64(len(cm.nodes)))
	for _, f := range solutionStats(&delta) {
		buf = binary.AppendUvarint(buf, uint64(*f))
	}
	for i := range cm.nodes {
		for phase := 0; phase < 2; phase++ {
			ch := cm.nodes[i].choice[phase]
			switch {
			case ch == nil:
				buf = append(buf, 0)
			case ch.fromOtherPhase:
				buf = append(buf, 1)
			default:
				buf = append(buf, 2)
				buf = binary.AppendUvarint(buf, uint64(len(ch.cell.Name)))
				buf = append(buf, ch.cell.Name...)
				buf = binary.AppendUvarint(buf, uint64(len(ch.binding.Perm)))
				for _, v := range ch.binding.Perm {
					buf = binary.AppendUvarint(buf, uint64(v))
				}
				buf = binary.AppendUvarint(buf, ch.binding.InvIn)
				if ch.binding.InvOut {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
				buf = binary.AppendUvarint(buf, uint64(len(ch.varNode)))
				for _, id := range ch.varNode {
					buf = binary.AppendUvarint(buf, uint64(id))
				}
			}
		}
	}
	return buf
}

// solReader is a cursor over an encoded solution.
type solReader struct{ b []byte }

func (r *solReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, errBadSolution
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *solReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errBadSolution
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *solReader) bounded(limit int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, errBadSolution
	}
	return int(v), nil
}

// applySolution decodes an encoded solution against this cone's freshly
// built tree, validates it exhaustively, and — only if everything checks
// out — installs the choices and replays the stats delta. On any error
// the cone mapper and stats are untouched, so the caller can fall back to
// solving from scratch.
func (cm *coneMapper) applySolution(root int, data []byte) error {
	r := &solReader{b: data}
	v, err := r.byte()
	if err != nil || v != solutionVersion {
		return errBadSolution
	}
	nodeCount, err := r.uvarint()
	if err != nil || nodeCount != uint64(len(cm.nodes)) {
		return errBadSolution
	}
	var delta Stats
	for _, f := range solutionStats(&delta) {
		u, err := r.uvarint()
		if err != nil || u > 1<<40 {
			return errBadSolution
		}
		*f = int(u)
	}
	choices := make([][2]*choice, len(cm.nodes))
	for i := range cm.nodes {
		leaf := cm.nodes[i].op == bexpr.OpVar
		for phase := 0; phase < 2; phase++ {
			tag, err := r.byte()
			if err != nil {
				return errBadSolution
			}
			switch tag {
			case 0:
			case 1:
				if leaf {
					return errBadSolution
				}
				choices[i][phase] = &choice{fromOtherPhase: true}
			case 2:
				if leaf {
					return errBadSolution
				}
				ch, err := cm.decodeMatch(r, i)
				if err != nil {
					return err
				}
				choices[i][phase] = ch
			default:
				return errBadSolution
			}
		}
		// A mutually-inverting phase pair would recurse forever in emit.
		if choices[i][0] != nil && choices[i][0].fromOtherPhase &&
			choices[i][1] != nil && choices[i][1].fromOtherPhase {
			return errBadSolution
		}
	}
	if len(r.b) != 0 {
		return errBadSolution
	}
	if err := validateReachable(cm.nodes, choices, root); err != nil {
		return err
	}
	for i := range cm.nodes {
		cm.nodes[i].choice = choices[i]
	}
	cm.m.stats.merge(delta)
	return nil
}

// decodeMatch reads one cell-match choice for tree node id, checking that
// the cell exists in the current library, the binding is a bijection of
// the right width, and every fed node precedes id (the tree is stored
// post-order children-first, so any valid feed satisfies this — and it is
// what makes emission's recursion well-founded).
func (cm *coneMapper) decodeMatch(r *solReader, id int) (*choice, error) {
	nameLen, err := r.bounded(256)
	if err != nil || nameLen > len(r.b) {
		return nil, errBadSolution
	}
	name := string(r.b[:nameLen])
	r.b = r.b[nameLen:]
	cell := cm.m.lib.Cell(name)
	if cell == nil {
		return nil, errBadSolution
	}
	nv := cell.NumPins()
	permLen, err := r.bounded(64)
	if err != nil || permLen != nv {
		return nil, errBadSolution
	}
	perm := make([]int, permLen)
	var seen uint64
	for i := range perm {
		v, err := r.bounded(nv - 1)
		if err != nil || seen&(1<<uint(v)) != 0 {
			return nil, errBadSolution
		}
		seen |= 1 << uint(v)
		perm[i] = v
	}
	invIn, err := r.uvarint()
	if err != nil || nv < 64 && invIn >= 1<<uint(nv) {
		return nil, errBadSolution
	}
	invOutB, err := r.byte()
	if err != nil || invOutB > 1 {
		return nil, errBadSolution
	}
	vnLen, err := r.bounded(64)
	if err != nil || vnLen != nv {
		return nil, errBadSolution
	}
	varNode := make([]int, vnLen)
	for i := range varNode {
		n, err := r.bounded(id - 1)
		if err != nil {
			return nil, errBadSolution
		}
		varNode[i] = n
	}
	return &choice{
		cell:    cell,
		binding: hazard.Binding{Perm: perm, InvIn: invIn, InvOut: invOutB == 1},
		varNode: varNode,
	}, nil
}

// validateReachable walks the choices exactly as emission will, verifying
// that every (node, phase) emission can reach has a choice (or is a
// leaf). Feeds strictly decrease the node id and phase flips are not
// mutual, so the walk — like emission — terminates.
func validateReachable(nodes []tnode, choices [][2]*choice, root int) error {
	var seen [2][]bool
	seen[0] = make([]bool, len(nodes))
	seen[1] = make([]bool, len(nodes))
	var walk func(id, phase int) error
	walk = func(id, phase int) error {
		if seen[phase][id] {
			return nil
		}
		seen[phase][id] = true
		if nodes[id].op == bexpr.OpVar {
			return nil
		}
		ch := choices[id][phase]
		if ch == nil {
			return errBadSolution
		}
		if ch.fromOtherPhase {
			return walk(id, 1-phase)
		}
		for pin, v := range ch.binding.Perm {
			ph := phasePos
			if ch.binding.InvIn&(1<<uint(pin)) != 0 {
				ph = phaseNeg
			}
			if err := walk(ch.varNode[v], ph); err != nil {
				return err
			}
		}
		return nil
	}
	if root < 0 || root >= len(nodes) {
		return fmt.Errorf("%w: bad root", errBadSolution)
	}
	return walk(root, phasePos)
}
