package core

import (
	"path/filepath"
	"testing"

	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
)

const storeSrc = `
INPUT(a, b, c, d)
OUTPUT(f, g, h, k)
u = a*b + c;
f = u*d';
g = u + a'*d;
w = c*d + a;
h = w;
k = a'*b' + c*d';
`

func mapWith(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	net := parseNet(t, src, "storetest")
	lib := library.MustGet("LSI9K")
	res, err := Map(net, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStoreWarmByteIdentity: a run against a cold store, a run against the
// warmed store, and a store-less run must produce byte-identical netlists
// and identical deterministic stats — the warm path replays the recorded
// work counters, it does not skip the accounting.
func TestStoreWarmByteIdentity(t *testing.T) {
	for _, mode := range []Mode{Sync, Async} {
		base := mapWith(t, storeSrc, Options{Mode: mode, Workers: 1})

		store, err := mapstore.Open(filepath.Join(t.TempDir(), "s.gfm"), mapstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold := mapWith(t, storeSrc, Options{Mode: mode, Workers: 1, Store: store})
		warm := mapWith(t, storeSrc, Options{Mode: mode, Workers: 1, Store: store})
		store.Close()

		if cold.Netlist.String() != base.Netlist.String() {
			t.Fatalf("%v: cold-store netlist differs from store-less run:\n%s\n---\n%s",
				mode, cold.Netlist, base.Netlist)
		}
		if warm.Netlist.String() != base.Netlist.String() {
			t.Fatalf("%v: warm-store netlist differs from store-less run:\n%s\n---\n%s",
				mode, warm.Netlist, base.Netlist)
		}
		// Structurally duplicate cones within one run hit the entries
		// their twins just wrote (storeSrc has two or(and,·) cones), so a
		// cold run splits between misses and intra-run hits; a warm run
		// hits on every cone.
		if cold.Stats.StoreHits+cold.Stats.StoreMisses != cold.Stats.Cones || cold.Stats.StoreMisses == 0 {
			t.Fatalf("%v: cold run hits=%d misses=%d cones=%d",
				mode, cold.Stats.StoreHits, cold.Stats.StoreMisses, cold.Stats.Cones)
		}
		if warm.Stats.StoreHits != warm.Stats.Cones || warm.Stats.StoreMisses != 0 {
			t.Fatalf("%v: warm run hits=%d misses=%d cones=%d",
				mode, warm.Stats.StoreHits, warm.Stats.StoreMisses, warm.Stats.Cones)
		}
		if base.Stats.Deterministic() != cold.Stats.Deterministic() {
			t.Fatalf("%v: cold-store deterministic stats fork:\n%+v\n---\n%+v",
				mode, base.Stats.Deterministic(), cold.Stats.Deterministic())
		}
		if base.Stats.Deterministic() != warm.Stats.Deterministic() {
			t.Fatalf("%v: warm-store deterministic stats fork:\n%+v\n---\n%+v",
				mode, base.Stats.Deterministic(), warm.Stats.Deterministic())
		}
	}
}

// TestStoreWarmAcrossReopen: entries must survive a store close/reopen —
// the restart scenario — and still produce a byte-identical netlist.
func TestStoreWarmAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.gfm")
	store, err := mapstore.Open(path, mapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := mapWith(t, storeSrc, Options{Mode: Async, Store: store})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := mapstore.Open(path, mapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	warm := mapWith(t, storeSrc, Options{Mode: Async, Store: store2})
	if warm.Netlist.String() != cold.Netlist.String() {
		t.Fatal("netlist differs across store reopen")
	}
	if warm.Stats.StoreHits == 0 {
		t.Fatal("no store hits after reopen")
	}
}

// TestStoreWorkersByteIdentity: the store under a parallel run — shadow
// mappers share the handle — must not change the result.
func TestStoreWorkersByteIdentity(t *testing.T) {
	base := mapWith(t, storeSrc, Options{Mode: Async, Workers: 1})
	store := mapstore.NewMemory(0)
	cold := mapWith(t, storeSrc, Options{Mode: Async, Workers: 4, Store: store})
	warm := mapWith(t, storeSrc, Options{Mode: Async, Workers: 4, Store: store})
	if cold.Netlist.String() != base.Netlist.String() || warm.Netlist.String() != base.Netlist.String() {
		t.Fatal("store under parallel mapping changed the netlist")
	}
	if warm.Stats.StoreHits == 0 {
		t.Fatal("warm parallel run recorded no hits")
	}
	if base.Stats.Deterministic() != warm.Stats.Deterministic() {
		t.Fatalf("parallel warm deterministic stats fork:\n%+v\n---\n%+v",
			base.Stats.Deterministic(), warm.Stats.Deterministic())
	}
}

// editedLib builds a fresh LSI9K with one cell's delay nudged — the
// satellite regression: a library edit between runs must yield a cold
// result, never a stale hit from entries keyed under the old library.
func editedLib(t *testing.T) *library.Library {
	t.Helper()
	lib, err := library.Build("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	lib.Cells[3].Delay += 0.25
	if err := lib.Annotate(); err != nil {
		t.Fatal(err)
	}
	return lib
}

// freshStoreHits maps src against a brand-new memory store and returns
// the intra-run hit count — the baseline hits caused purely by
// structurally duplicate cones, which any cold run exhibits.
func freshStoreHits(t *testing.T, src string, lib *library.Library, opts Options) int {
	t.Helper()
	o := opts
	o.Store = mapstore.NewMemory(0)
	net := parseNet(t, src, "storetest")
	res, err := Map(net, lib, o)
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats.StoreHits
}

func TestStoreLibraryEditIsCold(t *testing.T) {
	store := mapstore.NewMemory(0)
	net := parseNet(t, storeSrc, "storetest")
	if _, err := Map(net, library.MustGet("LSI9K"), Options{Mode: Async, Store: store}); err != nil {
		t.Fatal(err)
	}

	lib := editedLib(t)
	intra := freshStoreHits(t, storeSrc, lib, Options{Mode: Async})
	net2 := parseNet(t, storeSrc, "storetest")
	res, err := Map(net2, lib, Options{Mode: Async, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// Intra-run duplicate hits (under the NEW fingerprint) are fine; any
	// hit beyond that baseline would be a stale entry from the old
	// library leaking through.
	if res.Stats.StoreHits != intra {
		t.Fatalf("hits=%d after a library delay edit, want %d (intra-run only)",
			res.Stats.StoreHits, intra)
	}
	if res.Stats.StoreMisses != res.Stats.Cones-intra {
		t.Fatalf("misses=%d, want %d (all non-duplicate cones cold)",
			res.Stats.StoreMisses, res.Stats.Cones-intra)
	}

	// Same net, same (edited) library again: now it may hit — under the
	// *new* fingerprint.
	net3 := parseNet(t, storeSrc, "storetest")
	res2, err := Map(net3, lib, Options{Mode: Async, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.StoreHits != res2.Stats.Cones {
		t.Fatalf("edited-library entries not served: hits=%d cones=%d",
			res2.Stats.StoreHits, res2.Stats.Cones)
	}
	if res2.Netlist.String() != res.Netlist.String() {
		t.Fatal("warm edited-library netlist differs from its own cold run")
	}
}

// TestStoreOptionEditIsCold: semantically relevant options fork the key
// space; transparent ones share it.
func TestStoreOptionEditIsCold(t *testing.T) {
	lib := library.MustGet("LSI9K")
	store := mapstore.NewMemory(0)
	intra := freshStoreHits(t, storeSrc, lib, Options{Mode: Async})
	if r := mapWith(t, storeSrc, Options{Mode: Async, Store: store}); r.Stats.StoreHits != intra {
		t.Fatalf("first run: hits=%d, want %d (intra-run only)", r.Stats.StoreHits, intra)
	}
	// MaxBurst changes the hazard filter: must be cold.
	intraB := freshStoreHits(t, storeSrc, lib, Options{Mode: Async, MaxBurst: 2})
	if r := mapWith(t, storeSrc, Options{Mode: Async, Store: store, MaxBurst: 2}); r.Stats.StoreHits != intraB {
		t.Fatalf("MaxBurst change served %d hits, want %d (intra-run only)", r.Stats.StoreHits, intraB)
	}
	// Worker count is semantically transparent: must share entries.
	if r := mapWith(t, storeSrc, Options{Mode: Async, Store: store, Workers: 3}); r.Stats.StoreHits != r.Stats.Cones {
		t.Fatalf("transparent Workers option forked the key space: hits=%d cones=%d",
			r.Stats.StoreHits, r.Stats.Cones)
	}
}

// coneEntryKeys computes the store keys Map will use for every cone of
// the source — the test's window into the content-addressing scheme.
func coneEntryKeys(t *testing.T, src string, lib *library.Library, opts Options) []mapstore.Key {
	t.Helper()
	if err := lib.Annotate(); err != nil {
		t.Fatal(err)
	}
	net := parseNet(t, src, "storetest")
	dec, err := network.AsyncTechDecomp(net)
	if err != nil {
		t.Fatal(err)
	}
	cones, err := network.Partition(dec)
	if err != nil {
		t.Fatal(err)
	}
	fp, oh := lib.Fingerprint(), optionHash(opts.withDefaults())
	keys := make([]mapstore.Key, len(cones))
	for i, c := range cones {
		keys[i] = mapstore.EntryKey(mapstore.ConeKey(c.Expr), fp, oh)
	}
	return keys
}

// TestStorePoisonedEntryRecovered plants garbage payloads under the exact
// keys Map will consult. The records are checksum-valid, so only the
// decode-level validation stands between the garbage and emission: every
// poisoned entry must decode-fail into a miss, the run must match a
// store-less run byte for byte, and the entries must be repaired in place
// so the next run hits.
func TestStorePoisonedEntryRecovered(t *testing.T) {
	lib := library.MustGet("LSI9K")
	opts := Options{Mode: Async}
	keys := coneEntryKeys(t, storeSrc, lib, opts)

	store := mapstore.NewMemory(0)
	garbage := [][]byte{
		{},                    // empty
		{0xff},                // wrong version
		{1, 0x05},             // truncated after node count
		{1, 0xff, 0xff, 0xff}, // absurd node count
	}
	for i, k := range keys {
		if err := store.Replace(k, garbage[i%len(garbage)]); err != nil {
			t.Fatal(err)
		}
	}

	base := mapWith(t, storeSrc, opts)
	o := opts
	o.Store = store
	res := mapWith(t, storeSrc, o)
	if res.Netlist.String() != base.Netlist.String() {
		t.Fatal("poisoned store changed the netlist")
	}
	// A repaired entry may legitimately be hit by a structurally
	// duplicate cone later in the same run; no hit may exceed that
	// baseline (i.e. no garbage payload survived as a hit).
	intra := freshStoreHits(t, storeSrc, lib, opts)
	if res.Stats.StoreHits != intra {
		t.Fatalf("hits=%d with a poisoned store, want %d (intra-run only)", res.Stats.StoreHits, intra)
	}
	if got := store.Stats().Corrupt; got == 0 {
		t.Fatal("decode-level corruption not counted")
	}

	// The Replace-on-repair path must have healed every key: all hits now.
	res2 := mapWith(t, storeSrc, o)
	if res2.Stats.StoreHits != res2.Stats.Cones {
		t.Fatalf("poisoned entries not repaired: hits=%d cones=%d",
			res2.Stats.StoreHits, res2.Stats.Cones)
	}
	if res2.Netlist.String() != base.Netlist.String() {
		t.Fatal("repaired store changed the netlist")
	}
}

// TestMapDeltaSingleConeEdit is the ECO loop: after editing one output's
// logic, MapDelta must re-map strictly fewer cones than the full design
// and still match a cold map of the edited network byte for byte.
func TestMapDeltaSingleConeEdit(t *testing.T) {
	editedSrc := `
INPUT(a, b, c, d)
OUTPUT(f, g, h, k)
u = a*b + c;
f = u*d';
g = u + a'*d;
w = c*d + a;
h = w;
k = a'*b'*d + c*b;
`
	prev := mapWith(t, storeSrc, Options{Mode: Async})

	net := parseNet(t, editedSrc, "storetest")
	lib := library.MustGet("LSI9K")
	cold, err := Map(net, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	net2 := parseNet(t, editedSrc, "storetest")
	delta, err := MapDelta(prev, net2, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Netlist.String() != cold.Netlist.String() {
		t.Fatalf("delta netlist differs from cold map:\n%s\n---\n%s", delta.Netlist, cold.Netlist)
	}
	if delta.Stats.Deterministic() != cold.Stats.Deterministic() {
		t.Fatalf("delta deterministic stats fork:\n%+v\n---\n%+v",
			cold.Stats.Deterministic(), delta.Stats.Deterministic())
	}
	reused := delta.Stats.DeltaReusedCones
	remapped := delta.Stats.Cones - reused
	if reused == 0 {
		t.Fatal("delta run reused nothing")
	}
	if remapped >= delta.Stats.Cones {
		t.Fatalf("delta re-mapped %d of %d cones — not fewer than the full design",
			remapped, delta.Stats.Cones)
	}
	// Only the edited output's cone(s) changed structurally.
	if remapped > 2 {
		t.Fatalf("single-output edit re-mapped %d cones", remapped)
	}
}

// TestMapDeltaStructurallyInvariantEdit: renaming a leaf inside a cone
// (h reading b instead of a) keeps the cone's canonical structure, so
// MapDelta reuses everything — and the result is still the edited
// design's mapping, because emission applies the *actual* leaf names.
func TestMapDeltaStructurallyInvariantEdit(t *testing.T) {
	editedSrc := `
INPUT(a, b, c, d)
OUTPUT(f, g, h, k)
u = a*b + c;
f = u*d';
g = u + a'*d;
w = c*d + b;
h = w;
k = a'*b' + c*d';
`
	prev := mapWith(t, storeSrc, Options{Mode: Async})
	net := parseNet(t, editedSrc, "storetest")
	lib := library.MustGet("LSI9K")
	cold, err := Map(net, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	net2 := parseNet(t, editedSrc, "storetest")
	delta, err := MapDelta(prev, net2, lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Netlist.String() != cold.Netlist.String() {
		t.Fatal("delta netlist differs from cold map after leaf-rename edit")
	}
	if delta.Stats.DeltaReusedCones != delta.Stats.Cones {
		t.Fatalf("leaf rename should reuse all cones: reused %d of %d",
			delta.Stats.DeltaReusedCones, delta.Stats.Cones)
	}
	if err := VerifyEquivalence(net, delta.Netlist); err != nil {
		t.Fatalf("delta result not equivalent to edited design: %v", err)
	}
}

// TestMapDeltaStaleSeedIgnored: a seed computed under different options
// or a different library must be discarded wholesale.
func TestMapDeltaStaleSeedIgnored(t *testing.T) {
	prev := mapWith(t, storeSrc, Options{Mode: Async})

	// Different semantically relevant option.
	net := parseNet(t, storeSrc, "storetest")
	lib := library.MustGet("LSI9K")
	res, err := MapDelta(prev, net, lib, Options{Mode: Async, MaxBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeltaReusedCones != 0 {
		t.Fatalf("option-mismatched seed reused %d cones", res.Stats.DeltaReusedCones)
	}
	base, err := Map(parseNet(t, storeSrc, "storetest"), lib, Options{Mode: Async, MaxBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.String() != base.Netlist.String() {
		t.Fatal("stale-seed delta differs from cold map")
	}

	// Edited library: fingerprints differ, seed must be ignored.
	elib := editedLib(t)
	res2, err := MapDelta(prev, parseNet(t, storeSrc, "storetest"), elib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.DeltaReusedCones != 0 {
		t.Fatalf("library-mismatched seed reused %d cones", res2.Stats.DeltaReusedCones)
	}

	// Nil previous result: plain map.
	res3, err := MapDelta(nil, parseNet(t, storeSrc, "storetest"), lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Netlist.String() != prev.Netlist.String() {
		t.Fatal("MapDelta(nil, …) differs from Map")
	}
}

// TestMapDeltaChains: a delta result carries its own solutions, so deltas
// compose — edit after edit, each reusing the previous run's work.
func TestMapDeltaChains(t *testing.T) {
	lib := library.MustGet("LSI9K")
	prev := mapWith(t, storeSrc, Options{Mode: Async})
	d1, err := MapDelta(prev, parseNet(t, storeSrc, "storetest"), lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Stats.DeltaReusedCones != d1.Stats.Cones {
		t.Fatalf("no-op delta reused %d of %d cones", d1.Stats.DeltaReusedCones, d1.Stats.Cones)
	}
	d2, err := MapDelta(d1, parseNet(t, storeSrc, "storetest"), lib, Options{Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats.DeltaReusedCones != d2.Stats.Cones {
		t.Fatal("chained delta lost its seed")
	}
	if d2.Netlist.String() != prev.Netlist.String() {
		t.Fatal("chained delta diverged")
	}
}
