package core

import (
	"fmt"

	"gfmap/internal/bdd"
	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/network"
)

// VerifyEquivalence checks that the mapped netlist computes the same
// outputs as the original network. Small networks (≤ 16 inputs) are
// compared exhaustively; larger ones by canonical BDD identity, as the
// original BDD-based CERES did — so verification scales to the full
// benchmark suite.
func VerifyEquivalence(orig *network.Network, nl *Netlist) error {
	mapped, err := nl.ToNetwork()
	if err != nil {
		return err
	}
	var eq bool
	if len(orig.Inputs) <= 16 {
		eq, err = network.Equivalent(orig, mapped)
	} else {
		eq, err = bdd.NetworksEquivalent(orig, mapped)
	}
	if err != nil {
		return err
	}
	if !eq {
		return fmt.Errorf("core: mapped netlist is not functionally equivalent to %s", orig.Name)
	}
	return nil
}

// SafetyReport summarises the hazard-safety verification of a mapping.
type SafetyReport struct {
	ConesChecked int
	ConesSkipped int // cones too wide for exact analysis
	NewHazards   int // hazardous transitions introduced by mapping
	Details      []string
}

// VerifyHazardSafety checks the paper's central claim (Theorem 3.2)
// empirically on a finished mapping: for every cone of the decomposed
// original network, the hazard set of the mapped implementation of that
// cone — flattened over the same cone boundary — must be a subset of the
// hazard set of the original cone structure. Cones whose support exceeds
// the exact-analysis bound are skipped and counted.
func VerifyHazardSafety(orig *network.Network, nl *Netlist) (*SafetyReport, error) {
	decomposed, err := network.AsyncTechDecomp(orig)
	if err != nil {
		return nil, err
	}
	cones, err := network.Partition(decomposed)
	if err != nil {
		return nil, err
	}
	mapped, err := nl.ToNetwork()
	if err != nil {
		return nil, err
	}
	rep := &SafetyReport{}
	for _, cone := range cones {
		boundary := make(map[string]bool, len(cone.Leaves))
		for _, l := range cone.Leaves {
			boundary[l] = true
		}
		if len(cone.Leaves) > hazard.MaxExhaustiveVars {
			rep.ConesSkipped++
			continue
		}
		origSet, err := hazard.Analyze(cone.Expr)
		if err != nil {
			rep.ConesSkipped++
			continue
		}
		mexpr, err := network.ExpandToExpr(mapped, cone.Root, boundary)
		if err != nil {
			return nil, fmt.Errorf("core: expanding mapped cone %s: %w", cone.Root, err)
		}
		mfn, err := bexpr.NewWithVars(mexpr, cone.Leaves)
		if err != nil {
			return nil, fmt.Errorf("core: mapped cone %s: %w", cone.Root, err)
		}
		mappedSet, err := hazard.Analyze(mfn)
		if err != nil {
			rep.ConesSkipped++
			continue
		}
		rep.ConesChecked++
		if !mappedSet.SubsetOf(origSet) {
			rep.NewHazards++
			rep.Details = append(rep.Details,
				fmt.Sprintf("cone %s: mapped hazards %v not a subset of original %v",
					cone.Root, mappedSet, origSet))
		}
	}
	return rep, nil
}

// Clean reports whether the safety verification found no new hazards.
func (r *SafetyReport) Clean() bool { return r.NewHazards == 0 }

// String renders a one-line summary.
func (r *SafetyReport) String() string {
	return fmt.Sprintf("cones checked %d, skipped %d, new hazards %d",
		r.ConesChecked, r.ConesSkipped, r.NewHazards)
}

// VerifyTernarySafety is an independent whole-network oracle based on
// Eichelberger ternary simulation: for every static transition of every
// output (over all input pairs; requires ≤ 12 primary inputs), if the
// mapped netlist may glitch (ternary X) then the original network must
// also have been able to glitch. It complements VerifyHazardSafety, which
// works per cone with the exact transition analysis.
func VerifyTernarySafety(orig *network.Network, nl *Netlist) error {
	if len(orig.Inputs) > 12 {
		return fmt.Errorf("core: ternary safety check limited to 12 inputs, got %d", len(orig.Inputs))
	}
	mapped, err := nl.ToNetwork()
	if err != nil {
		return err
	}
	flatten := func(net *network.Network, out string) (*bexpr.Function, error) {
		expr, err := network.ExpandToExpr(net, out, nil)
		if err != nil {
			return nil, err
		}
		return bexpr.NewWithVars(expr, orig.Inputs)
	}
	for _, out := range orig.Outputs {
		oFn, err := flatten(orig, out)
		if err != nil {
			return err
		}
		mFn, err := flatten(mapped, out)
		if err != nil {
			return err
		}
		n := uint(len(orig.Inputs))
		for a := uint64(0); a < 1<<n; a++ {
			for b := a + 1; b < 1<<n; b++ {
				if oFn.Eval(a) != oFn.Eval(b) {
					continue // dynamic transition: ternary gives no verdict
				}
				if hazard.StaticHazardTernary(mFn, a, b) && !hazard.StaticHazardTernary(oFn, a, b) {
					return fmt.Errorf("core: output %s: mapped netlist may glitch on static transition %b<->%b where the original cannot", out, a, b)
				}
			}
		}
	}
	return nil
}
