package cube

import (
	"fmt"
	"math/bits"
	"strings"
)

// Cover is a sum-of-products expression: a set of cubes over N variables.
// The zero value is the constant-0 function over zero variables.
type Cover struct {
	N     int
	Cubes []Cube
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) Cover {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("cube: cover over %d variables out of range", n))
	}
	return Cover{N: n}
}

// ParseCover parses a sum of products such as "ab' + cd + e" using the
// given variable names. "0" denotes the empty cover and "1" the universal
// one.
func ParseCover(s string, names []string) (Cover, error) {
	f := NewCover(len(names))
	s = strings.TrimSpace(s)
	if s == "0" || s == "" {
		return f, nil
	}
	for _, term := range strings.Split(s, "+") {
		c, err := ParseCube(term, names)
		if err != nil {
			return Cover{}, err
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f, nil
}

// MustParseCover is ParseCover that panics on error.
func MustParseCover(s string, names []string) Cover {
	f, err := ParseCover(s, names)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone returns a deep copy of the cover.
func (f Cover) Clone() Cover {
	out := Cover{N: f.N, Cubes: make([]Cube, len(f.Cubes))}
	copy(out.Cubes, f.Cubes)
	return out
}

// Add appends a cube to the cover.
func (f *Cover) Add(c Cube) { f.Cubes = append(f.Cubes, c) }

// IsEmpty reports whether the cover has no cubes (the constant-0 function).
func (f Cover) IsEmpty() bool { return len(f.Cubes) == 0 }

// Eval evaluates the cover at the minterm given by point.
func (f Cover) Eval(point uint64) bool {
	for _, c := range f.Cubes {
		if c.ContainsPoint(point) {
			return true
		}
	}
	return false
}

// SingleCubeContains reports whether some single cube of the cover contains
// cube c. This is the containment test relevant to static hazard analysis:
// a transition cube must be held by one gate.
func (f Cover) SingleCubeContains(c Cube) bool {
	for _, d := range f.Cubes {
		if d.Contains(c) {
			return true
		}
	}
	return false
}

// CofactorLiteral returns the cover cofactored by the literal (v, phase).
func (f Cover) CofactorLiteral(v int, phase bool) Cover {
	out := Cover{N: f.N, Cubes: make([]Cube, 0, len(f.Cubes))}
	for _, c := range f.Cubes {
		if cc, ok := c.CofactorLiteral(v, phase); ok {
			out.Cubes = append(out.Cubes, cc)
		}
	}
	return out
}

// CofactorCube returns the cover cofactored by cube d.
func (f Cover) CofactorCube(d Cube) Cover {
	out := Cover{N: f.N, Cubes: make([]Cube, 0, len(f.Cubes))}
	for _, c := range f.Cubes {
		if cc, ok := c.CofactorCube(d); ok {
			out.Cubes = append(out.Cubes, cc)
		}
	}
	return out
}

// mostBinateVar picks the variable appearing in the most cubes, preferring
// variables that occur in both phases (binate). It returns -1 when no cube
// uses any variable.
func (f Cover) mostBinateVar() int {
	var pos, neg [MaxVars]int
	for _, c := range f.Cubes {
		u := c.Used
		for u != 0 {
			v := bits.TrailingZeros64(u)
			u &^= 1 << uint(v)
			if c.PhaseOf(v) {
				pos[v]++
			} else {
				neg[v]++
			}
		}
	}
	best, bestScore, bestBinate := -1, -1, false
	for v := 0; v < f.N; v++ {
		if pos[v]+neg[v] == 0 {
			continue
		}
		binate := pos[v] > 0 && neg[v] > 0
		score := pos[v] + neg[v]
		switch {
		case best == -1,
			binate && !bestBinate,
			binate == bestBinate && score > bestScore:
			best, bestScore, bestBinate = v, score, binate
		}
	}
	return best
}

// isUnate reports whether no variable appears in both phases.
func (f Cover) isUnate() bool {
	var pos, neg uint64
	for _, c := range f.Cubes {
		pos |= c.Used & c.Phase
		neg |= c.Used &^ c.Phase
	}
	return pos&neg == 0
}

// Tautology reports whether the cover evaluates to 1 at every point of the
// n-variable space, using the standard unate-reduction/Shannon recursion.
func (f Cover) Tautology() bool {
	return f.tautologyUnder(Universal)
}

// tautologyUnder reports whether f cofactored by the path cube is a
// tautology. The branching decisions of the Shannon recursion are carried
// in path and each cube is cofactored against it on the fly, so no
// intermediate covers are materialised — the hazard filter runs this
// containment core on every candidate match, and it must not allocate.
func (f Cover) tautologyUnder(path Cube) bool {
	var posCount, negCount [MaxVars]int
	var pos, neg uint64
	any := false
	for _, c := range f.Cubes {
		if c.Used&path.Used&(c.Phase^path.Phase) != 0 {
			continue // conflicts with the path: vanishes in the cofactor
		}
		rem := c.Used &^ path.Used
		if rem == 0 {
			return true // the cofactored cube is universal
		}
		any = true
		pos |= rem & c.Phase
		neg |= rem &^ c.Phase
		for u := rem; u != 0; {
			v := bits.TrailingZeros64(u)
			u &^= 1 << uint(v)
			if c.PhaseOf(v) {
				posCount[v]++
			} else {
				negCount[v]++
			}
		}
	}
	if !any {
		return false
	}
	if pos&neg == 0 {
		// A unate cover is a tautology iff it contains the universal cube.
		return false
	}
	// The most binate variable of the cofactored cover, with the same
	// preference order as mostBinateVar.
	best, bestScore, bestBinate := -1, -1, false
	for v := 0; v < f.N; v++ {
		if posCount[v]+negCount[v] == 0 {
			continue
		}
		binate := posCount[v] > 0 && negCount[v] > 0
		score := posCount[v] + negCount[v]
		switch {
		case best == -1,
			binate && !bestBinate,
			binate == bestBinate && score > bestScore:
			best, bestScore, bestBinate = v, score, binate
		}
	}
	lo, _ := path.WithLiteral(best, false)
	hi, _ := path.WithLiteral(best, true)
	return f.tautologyUnder(lo) && f.tautologyUnder(hi)
}

// ContainsCube reports whether the function of the cover is 1 everywhere on
// cube c (functional containment, not single-gate containment). Cofactoring
// by c is exactly a tautology check under c as the path.
func (f Cover) ContainsCube(c Cube) bool {
	return f.tautologyUnder(c)
}

// ContainsCover reports whether f ⊇ g as functions.
func (f Cover) ContainsCover(g Cover) bool {
	for _, c := range g.Cubes {
		if !f.ContainsCube(c) {
			return false
		}
	}
	return true
}

// EquivalentTo reports functional equivalence of two covers over the same
// variable count.
func (f Cover) EquivalentTo(g Cover) bool {
	return f.N == g.N && f.ContainsCover(g) && g.ContainsCover(f)
}

// Complement returns a cover for the complement of f over its N variables,
// via Shannon expansion.
func (f Cover) Complement() Cover {
	return f.complementRec(Universal)
}

func (f Cover) complementRec(path Cube) Cover {
	if len(f.Cubes) == 0 {
		out := NewCover(f.N)
		out.Add(path)
		return out
	}
	for _, c := range f.Cubes {
		if c.IsUniversal() {
			return NewCover(f.N)
		}
	}
	// Single-cube base case: complement by DeMorgan.
	if len(f.Cubes) == 1 {
		out := NewCover(f.N)
		c := f.Cubes[0]
		for _, v := range c.Vars() {
			lit := FromLiteral(v, !c.PhaseOf(v))
			if p, ok := path.Intersect(lit); ok {
				out.Add(p)
			}
		}
		return out
	}
	v := f.mostBinateVar()
	out := NewCover(f.N)
	for _, phase := range []bool{false, true} {
		p, ok := path.Intersect(FromLiteral(v, phase))
		if !ok {
			continue
		}
		sub := f.CofactorLiteral(v, phase).complementRec(p)
		out.Cubes = append(out.Cubes, sub.Cubes...)
	}
	return out
}

// IsPrime reports whether cube c is a prime implicant of f: c ⊆ f and no
// literal of c can be removed while preserving containment.
func (f Cover) IsPrime(c Cube) bool {
	if !f.ContainsCube(c) {
		return false
	}
	for _, v := range c.Vars() {
		if f.ContainsCube(c.WithoutVar(v)) {
			return false
		}
	}
	return true
}

// ExpandToPrime greedily removes literals from c (in ascending variable
// order) while the expanded cube remains contained in f, yielding a prime
// implicant containing c.
func (f Cover) ExpandToPrime(c Cube) Cube {
	for _, v := range c.Vars() {
		if ex := c.WithoutVar(v); f.ContainsCube(ex) {
			c = ex
		}
	}
	return c
}

// Irredundant returns a copy of f with cubes removed that are single-cube
// contained in another cube of f (purely structural redundancy removal; it
// never removes consensus-style redundancy needed for hazard freedom).
func (f Cover) Irredundant() Cover {
	out := Cover{N: f.N}
	for i, c := range f.Cubes {
		contained := false
		for j, d := range f.Cubes {
			if i == j {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out.Add(c)
		}
	}
	return out
}

// MaxMintermVars bounds explicit minterm enumeration: past 24 variables
// the 2^N walk is no longer a reasonable amount of work, and support
// widths that large reach this code only from user-supplied designs, so
// the enumerators refuse with an error rather than crash or hang the
// process.
const MaxMintermVars = 24

// Minterms appends all ON-set minterms of f over its N variables to dst.
// Intended for small N (testing oracles, truth-table construction); it
// returns an error when N exceeds MaxMintermVars instead of attempting
// the 2^N enumeration.
func (f Cover) Minterms(dst []uint64) ([]uint64, error) {
	if f.N > MaxMintermVars {
		return dst, fmt.Errorf("cube: Minterms requires N <= %d, got %d", MaxMintermVars, f.N)
	}
	for p := uint64(0); p < uint64(1)<<uint(f.N); p++ {
		if f.Eval(p) {
			dst = append(dst, p)
		}
	}
	return dst, nil
}

// OnSetSize counts ON-set minterms; intended for small N.
func (f Cover) OnSetSize() uint64 {
	var n uint64
	for p := uint64(0); p < uint64(1)<<uint(f.N); p++ {
		if f.Eval(p) {
			n++
		}
	}
	return n
}

// AllPrimes returns every prime implicant of f, computed by iterated
// consensus plus absorption. Intended for the modest function sizes seen in
// library cells and mapped clusters.
func (f Cover) AllPrimes() []Cube {
	// Start from the cubes of f expanded to primes, then close under
	// consensus with absorption.
	var primes []Cube
	add := func(c Cube) bool {
		for _, p := range primes {
			if p.Contains(c) {
				return false
			}
		}
		// Remove primes absorbed by c.
		out := primes[:0]
		for _, p := range primes {
			if !c.Contains(p) {
				out = append(out, p)
			}
		}
		primes = append(out, c)
		return true
	}
	for _, c := range f.Cubes {
		add(f.ExpandToPrime(c))
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(primes); i++ {
			for j := i + 1; j < len(primes); j++ {
				cons, ok := Consensus(primes[i], primes[j])
				if !ok {
					continue
				}
				cons = f.ExpandToPrime(cons)
				if add(cons) {
					changed = true
				}
			}
		}
	}
	primes = append([]Cube(nil), primes...)
	SortCubes(primes)
	return primes
}

// String renders the cover as a sum of products with x<i> variable names;
// the empty cover prints as "0".
func (f Cover) String() string { return f.StringVars(nil) }

// StringVars renders the cover using the given variable names.
func (f Cover) StringVars(names []string) string {
	if len(f.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.StringVars(names)
	}
	return strings.Join(parts, " + ")
}

// And returns the product of two covers over the same variable count:
// the pairwise intersections of their cubes, deduplicated.
func And(a, b Cover) Cover {
	if a.N != b.N {
		panic("cube: And over mismatched variable counts")
	}
	out := NewCover(a.N)
	for _, c := range a.Cubes {
		for _, d := range b.Cubes {
			if ic, ok := c.Intersect(d); ok {
				out.Add(ic)
			}
		}
	}
	out.Cubes = DedupCubes(out.Cubes)
	return out
}

// Or returns the sum of two covers over the same variable count.
func Or(a, b Cover) Cover {
	if a.N != b.N {
		panic("cube: Or over mismatched variable counts")
	}
	out := NewCover(a.N)
	out.Cubes = append(out.Cubes, a.Cubes...)
	out.Cubes = append(out.Cubes, b.Cubes...)
	out.Cubes = DedupCubes(append([]Cube(nil), out.Cubes...))
	return out
}

// SupercubeOfCover returns the smallest single cube containing every cube
// of the cover (the componentwise supercube). The empty cover yields the
// empty... there is no empty cube, so ok is false for an empty cover.
func SupercubeOfCover(f Cover) (Cube, bool) {
	if len(f.Cubes) == 0 {
		return Cube{}, false
	}
	out := f.Cubes[0]
	for _, c := range f.Cubes[1:] {
		out = Supercube(out, c)
	}
	return out, true
}
