// Package cube implements the two-bit-vector cube representation used by the
// hazard-analysis algorithms of Siegel/De Micheli/Dill (DAC'93, §4.1.1).
//
// A cube (product term, implicant) over at most 64 Boolean variables is a
// pair of bit vectors:
//
//   - USED: bit i is set iff variable i appears in the cube;
//   - PHASE: for a used variable i, bit i is set iff the variable appears
//     uncomplemented.
//
// The package also provides covers (sum-of-products expressions) together
// with the Boolean operations the mapper and the hazard analyser need:
// containment, intersection, consensus/adjacency generation via the
// CONFLICTS vector, supercubes (transition spaces), cofactors, tautology,
// complementation, prime expansion and irredundancy.
package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxVars is the largest number of variables a cube or cover may range over.
// The limit comes from packing USED and PHASE into single machine words,
// exactly as the paper's implementation does.
const MaxVars = 64

// Cube is a product of literals represented by USED/PHASE bit vectors.
// The zero value is the universal cube (the constant-1 product of no
// literals).
//
// Invariant: Phase&^Used == 0. All constructors and operations in this
// package maintain it; Normalize restores it for hand-built values.
type Cube struct {
	Used  uint64
	Phase uint64
}

// Universal is the empty product, which evaluates to 1 everywhere.
var Universal = Cube{}

// Normalize clears phase bits of unused variables, restoring the package
// invariant for hand-constructed cubes.
func (c Cube) Normalize() Cube {
	c.Phase &= c.Used
	return c
}

// FromLiteral returns the single-literal cube for variable v, uncomplemented
// if phase is true.
func FromLiteral(v int, phase bool) Cube {
	if v < 0 || v >= MaxVars {
		panic(fmt.Sprintf("cube: variable index %d out of range", v))
	}
	c := Cube{Used: 1 << uint(v)}
	if phase {
		c.Phase = c.Used
	}
	return c
}

// Minterm builds the full minterm cube over n variables whose variable
// values are given by the low n bits of point.
func Minterm(n int, point uint64) Cube {
	mask := VarMask(n)
	return Cube{Used: mask, Phase: point & mask}
}

// VarMask returns a mask with the low n bits set.
func VarMask(n int) uint64 {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("cube: variable count %d out of range", n))
	}
	if n == MaxVars {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// NumLiterals reports how many literals the cube contains.
func (c Cube) NumLiterals() int { return bits.OnesCount64(c.Used) }

// IsUniversal reports whether the cube is the constant-1 product.
func (c Cube) IsUniversal() bool { return c.Used == 0 }

// HasVar reports whether variable v appears in the cube.
func (c Cube) HasVar(v int) bool { return c.Used&(1<<uint(v)) != 0 }

// PhaseOf reports the phase of variable v in the cube; it must be used.
func (c Cube) PhaseOf(v int) bool { return c.Phase&(1<<uint(v)) != 0 }

// WithLiteral returns c with the literal (v, phase) added. Adding a literal
// conflicting with an existing one yields an empty product; ok is false in
// that case.
func (c Cube) WithLiteral(v int, phase bool) (Cube, bool) {
	l := FromLiteral(v, phase)
	return c.Intersect(l)
}

// WithoutVar returns c with variable v removed (the cube is expanded in
// that dimension).
func (c Cube) WithoutVar(v int) Cube {
	m := ^(uint64(1) << uint(v))
	return Cube{Used: c.Used & m, Phase: c.Phase & m}
}

// Contains reports whether d is contained in c (every point of d is a point
// of c). The universal cube contains everything.
func (c Cube) Contains(d Cube) bool {
	return c.Used&d.Used == c.Used && (c.Phase^d.Phase)&c.Used == 0
}

// ContainsPoint reports whether the minterm given by point (one bit per
// variable) lies inside the cube.
func (c Cube) ContainsPoint(point uint64) bool {
	return (point^c.Phase)&c.Used == 0
}

// Intersect returns the intersection of two cubes. ok is false when the
// cubes conflict in some variable's phase, i.e. the intersection is empty.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	if (c.Phase^d.Phase)&(c.Used&d.Used) != 0 {
		return Cube{}, false
	}
	return Cube{Used: c.Used | d.Used, Phase: c.Phase | d.Phase}, true
}

// Intersects reports whether the two cubes share at least one point.
func (c Cube) Intersects(d Cube) bool {
	_, ok := c.Intersect(d)
	return ok
}

// Conflicts computes the CONFLICTS bit vector of the paper (§4.1.1,
// Figure 5): variables that appear in both cubes with opposite phases.
//
//	CONFLICTS = (CUBE1.USED & CUBE2.USED) & (CUBE1.PHASE ^ CUBE2.PHASE)
func Conflicts(c, d Cube) uint64 {
	return (c.Used & d.Used) & (c.Phase ^ d.Phase)
}

// DistanceOne reports whether the two cubes are adjacent, i.e. exactly one
// variable appears in both with opposite phases.
func DistanceOne(c, d Cube) bool {
	k := Conflicts(c, d)
	return k != 0 && k&(k-1) == 0
}

// Consensus returns the adjacency cube of two distance-one cubes: the OR of
// the two cubes with the conflicting literal masked out (the paper's
// generateAdjCubes). ok is false if the cubes are not distance-one.
//
// Every point of the consensus lies in the ON-set covered by c ∪ d, and the
// consensus spans the transition across the conflicting variable; a static
// logic 1-hazard exists iff no single cube of the cover contains it.
func Consensus(c, d Cube) (Cube, bool) {
	k := Conflicts(c, d)
	if k == 0 || k&(k-1) != 0 {
		return Cube{}, false
	}
	used := (c.Used | d.Used) &^ k
	phase := (c.Phase | d.Phase) &^ k
	return Cube{Used: used, Phase: phase & used}, true
}

// Supercube returns the smallest cube containing both c and d. For two
// minterms α, β this is the transition space T[α,β] of Definition 4.2.
func Supercube(c, d Cube) Cube {
	used := c.Used & d.Used &^ (c.Phase ^ d.Phase)
	return Cube{Used: used, Phase: c.Phase & used}
}

// CofactorLiteral returns the cofactor of c with respect to the literal
// (v, phase). ok is false when the cube is annihilated (c requires the
// opposite phase of v).
func (c Cube) CofactorLiteral(v int, phase bool) (Cube, bool) {
	bit := uint64(1) << uint(v)
	if c.Used&bit != 0 {
		if (c.Phase&bit != 0) != phase {
			return Cube{}, false
		}
	}
	return Cube{Used: c.Used &^ bit, Phase: c.Phase &^ bit}, true
}

// CofactorCube returns the cofactor of c with respect to cube d: the
// remainder of c once every literal of d is asserted. ok is false when c
// conflicts with d.
func (c Cube) CofactorCube(d Cube) (Cube, bool) {
	if (c.Phase^d.Phase)&(c.Used&d.Used) != 0 {
		return Cube{}, false
	}
	return Cube{Used: c.Used &^ d.Used, Phase: c.Phase &^ d.Used}, true
}

// AdjacentCubes returns the cubes obtained from c by complementing one used
// (care) variable at a time — the set J_c of procedure findMicDynHaz2level.
func (c Cube) AdjacentCubes() []Cube {
	return c.AppendAdjacentCubes(make([]Cube, 0, c.NumLiterals()))
}

// AppendAdjacentCubes appends the adjacent cubes of c to dst and returns
// the extended slice, so iterating callers can reuse one buffer.
func (c Cube) AppendAdjacentCubes(dst []Cube) []Cube {
	u := c.Used
	for u != 0 {
		bit := u & -u
		u &^= bit
		dst = append(dst, Cube{Used: c.Used, Phase: c.Phase ^ bit})
	}
	return dst
}

// Minterms appends to dst every minterm point of the cube over n variables
// and returns the extended slice. The free (unused) variables enumerate all
// combinations, so the result has 2^(n-literals) entries.
func (c Cube) Minterms(n int, dst []uint64) []uint64 {
	mask := VarMask(n)
	free := mask &^ c.Used
	// Enumerate subsets of the free-variable mask.
	sub := uint64(0)
	for {
		dst = append(dst, (c.Phase&mask)|sub)
		if sub == free {
			break
		}
		sub = (sub - free) & free
	}
	return dst
}

// CountMinterms returns the number of minterms of c over n variables.
func (c Cube) CountMinterms(n int) uint64 {
	freeBits := n - bits.OnesCount64(c.Used&VarMask(n))
	return uint64(1) << uint(freeBits)
}

// Vars returns the indices of variables used by the cube, ascending.
func (c Cube) Vars() []int {
	var out []int
	u := c.Used
	for u != 0 {
		v := bits.TrailingZeros64(u)
		out = append(out, v)
		u &^= 1 << uint(v)
	}
	return out
}

// Equal reports structural equality.
func (c Cube) Equal(d Cube) bool { return c.Used == d.Used && c.Phase == d.Phase }

// Less orders cubes lexicographically by (Used, Phase); used to produce
// deterministic output.
func (c Cube) Less(d Cube) bool {
	if c.Used != d.Used {
		return c.Used < d.Used
	}
	return c.Phase < d.Phase
}

// String renders the cube with variables named x0, x1, … Complemented
// literals carry a trailing apostrophe; the universal cube prints as "1".
func (c Cube) String() string {
	return c.StringVars(nil)
}

// StringVars renders the cube using the given variable names; names may be
// nil, in which case x<i> is used.
func (c Cube) StringVars(names []string) string {
	if c.IsUniversal() {
		return "1"
	}
	var b strings.Builder
	for _, v := range c.Vars() {
		name := fmt.Sprintf("x%d", v)
		if v < len(names) {
			name = names[v]
		}
		b.WriteString(name)
		if !c.PhaseOf(v) {
			b.WriteByte('\'')
		}
	}
	return b.String()
}

// ParseCube parses a product of literals written as juxtaposed variable
// names with an optional trailing apostrophe for complementation, e.g.
// "ab'c". The names slice fixes the variable order; single-character names
// may be juxtaposed without separators, longer names must be separated by
// '*' or spaces. "1" denotes the universal cube.
func ParseCube(s string, names []string) (Cube, error) {
	s = strings.TrimSpace(s)
	if s == "1" {
		return Universal, nil
	}
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	c := Universal
	i := 0
	for i < len(s) {
		r := s[i]
		if r == ' ' || r == '*' || r == '\t' {
			i++
			continue
		}
		// Longest-match a variable name.
		best := -1
		bestLen := 0
		for name, v := range index {
			if strings.HasPrefix(s[i:], name) && len(name) > bestLen {
				best, bestLen = v, len(name)
			}
		}
		if best < 0 {
			return Cube{}, fmt.Errorf("cube: unknown variable at %q", s[i:])
		}
		i += bestLen
		phase := true
		if i < len(s) && s[i] == '\'' {
			phase = false
			i++
		}
		var ok bool
		c, ok = c.WithLiteral(best, phase)
		if !ok {
			return Cube{}, fmt.Errorf("cube: contradictory literal for %s in %q", names[best], s)
		}
	}
	return c, nil
}

// MustParseCube is ParseCube that panics on error; intended for tests and
// embedded library data.
func MustParseCube(s string, names []string) Cube {
	c, err := ParseCube(s, names)
	if err != nil {
		panic(err)
	}
	return c
}

// SortCubes sorts a slice of cubes into the deterministic Less order.
func SortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}

// DedupCubes sorts and removes structural duplicates in place.
func DedupCubes(cs []Cube) []Cube {
	SortCubes(cs)
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || !c.Equal(cs[i-1]) {
			out = append(out, c)
		}
	}
	return out
}
