package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var wxyz = []string{"w", "x", "y", "z"}

func TestParseCube(t *testing.T) {
	tests := []struct {
		in        string
		used      uint64
		phase     uint64
		wantError bool
	}{
		{"1", 0, 0, false},
		{"w", 0b0001, 0b0001, false},
		{"w'", 0b0001, 0b0000, false},
		{"wx'y", 0b0111, 0b0101, false},
		{"w x' y", 0b0111, 0b0101, false},
		{"w*z", 0b1001, 0b1001, false},
		{"ww", 0b0001, 0b0001, false},
		{"ww'", 0, 0, true},
		{"q", 0, 0, true},
	}
	for _, tt := range tests {
		c, err := ParseCube(tt.in, wxyz)
		if tt.wantError {
			if err == nil {
				t.Errorf("ParseCube(%q): want error, got %v", tt.in, c)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCube(%q): %v", tt.in, err)
			continue
		}
		if c.Used != tt.used || c.Phase != tt.phase {
			t.Errorf("ParseCube(%q) = used %04b phase %04b, want %04b %04b",
				tt.in, c.Used, c.Phase, tt.used, tt.phase)
		}
	}
}

func TestCubeString(t *testing.T) {
	c := MustParseCube("wx'z", wxyz)
	if got := c.StringVars(wxyz); got != "wx'z" {
		t.Errorf("String = %q, want wx'z", got)
	}
	if got := Universal.String(); got != "1" {
		t.Errorf("universal String = %q, want 1", got)
	}
}

func TestContains(t *testing.T) {
	big := MustParseCube("w", wxyz)
	small := MustParseCube("wx'", wxyz)
	if !big.Contains(small) {
		t.Error("w should contain wx'")
	}
	if small.Contains(big) {
		t.Error("wx' should not contain w")
	}
	if !Universal.Contains(big) || !Universal.Contains(small) {
		t.Error("universal cube must contain everything")
	}
	if !big.Contains(big) {
		t.Error("containment must be reflexive")
	}
}

func TestIntersect(t *testing.T) {
	a := MustParseCube("wx", wxyz)
	b := MustParseCube("xy'", wxyz)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("wx and xy' must intersect")
	}
	if want := MustParseCube("wxy'", wxyz); !got.Equal(want) {
		t.Errorf("intersection = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(MustParseCube("w'", wxyz)); ok {
		t.Error("wx and w' must not intersect")
	}
}

// TestFigure5Conflicts reproduces the CONFLICTS-vector adjacency detection
// mechanism of §4.1.1 / Figure 5.
func TestFigure5Conflicts(t *testing.T) {
	// Adjacent pair: differ in exactly one shared variable's phase.
	c1 := MustParseCube("wx'y", wxyz)
	c2 := MustParseCube("wxy", wxyz)
	k := Conflicts(c1, c2)
	if k != 0b0010 {
		t.Errorf("CONFLICTS = %04b, want 0010", k)
	}
	if !DistanceOne(c1, c2) {
		t.Error("cubes should be distance-one")
	}
	adj, ok := Consensus(c1, c2)
	if !ok {
		t.Fatal("consensus must exist for distance-one cubes")
	}
	if want := MustParseCube("wy", wxyz); !adj.Equal(want) {
		t.Errorf("adjacency cube = %v, want %v", adj, want)
	}

	// Two conflicting variables: not adjacent, no consensus.
	c3 := MustParseCube("w'x'y", wxyz)
	if DistanceOne(c2, c3) {
		t.Error("cubes with two conflicts are not distance-one")
	}
	if _, ok := Consensus(c2, c3); ok {
		t.Error("consensus must not exist with two conflicts")
	}

	// Disjoint supports: no conflicts, not adjacent.
	c4 := MustParseCube("z", wxyz)
	if Conflicts(c1, c4) != 0 || DistanceOne(c1, c4) {
		t.Error("cubes sharing no variable are not adjacent")
	}
}

func TestConsensusIsCoveredByUnion(t *testing.T) {
	// Every minterm of the consensus must lie in c1 or c2.
	f := func(u1, p1, u2, p2 uint8) bool {
		c1 := Cube{Used: uint64(u1), Phase: uint64(p1)}.Normalize()
		c2 := Cube{Used: uint64(u2), Phase: uint64(p2)}.Normalize()
		adj, ok := Consensus(c1, c2)
		if !ok {
			return true
		}
		for _, m := range adj.Minterms(8, nil) {
			if !c1.ContainsPoint(m) && !c2.ContainsPoint(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupercube(t *testing.T) {
	a := Minterm(4, 0b0111) // w=1 x=1 y=1 z=0 reading bit i as var i
	b := Minterm(4, 0b0100)
	sc := Supercube(a, b)
	if !sc.Contains(a) || !sc.Contains(b) {
		t.Fatal("supercube must contain both endpoints")
	}
	// Smallest: only variable 2 (value 1 in both) and 3 (0 in both) stay.
	if sc.Used != 0b1100 || sc.Phase != 0b0100 {
		t.Errorf("supercube = used %04b phase %04b, want 1100 0100", sc.Used, sc.Phase)
	}
}

func TestSupercubeProperties(t *testing.T) {
	f := func(u1, p1, u2, p2 uint8) bool {
		c1 := Cube{Used: uint64(u1), Phase: uint64(p1)}.Normalize()
		c2 := Cube{Used: uint64(u2), Phase: uint64(p2)}.Normalize()
		sc := Supercube(c1, c2)
		if !sc.Contains(c1) || !sc.Contains(c2) {
			return false
		}
		// Minimality: dropping any variable of sc keeps containment, so sc
		// must not be shrinkable: adding back any removed literal must
		// exclude one of the operands.
		for _, v := range sc.Vars() {
			_ = v
		}
		// Commutativity.
		sc2 := Supercube(c2, c1)
		return sc.Equal(sc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacentCubes(t *testing.T) {
	c := MustParseCube("w'xz", wxyz)
	adj := c.AdjacentCubes()
	if len(adj) != 3 {
		t.Fatalf("got %d adjacent cubes, want 3", len(adj))
	}
	want := map[string]bool{"wxz": true, "w'x'z": true, "w'xz'": true}
	for _, a := range adj {
		if !want[a.StringVars(wxyz)] {
			t.Errorf("unexpected adjacent cube %v", a.StringVars(wxyz))
		}
	}
}

func TestMinterms(t *testing.T) {
	c := MustParseCube("wx'", wxyz)
	ms := c.Minterms(4, nil)
	if len(ms) != 4 {
		t.Fatalf("got %d minterms, want 4", len(ms))
	}
	for _, m := range ms {
		if !c.ContainsPoint(m) {
			t.Errorf("minterm %04b not in cube", m)
		}
	}
	if got := c.CountMinterms(4); got != 4 {
		t.Errorf("CountMinterms = %d, want 4", got)
	}
}

func TestCofactor(t *testing.T) {
	c := MustParseCube("wx'y", wxyz)
	got, ok := c.CofactorLiteral(0, true) // w = 1
	if !ok || !got.Equal(MustParseCube("x'y", wxyz)) {
		t.Errorf("cofactor w: got %v ok=%v", got.StringVars(wxyz), ok)
	}
	if _, ok := c.CofactorLiteral(0, false); ok {
		t.Error("cofactor by w' should annihilate wx'y")
	}
	d := MustParseCube("wy", wxyz)
	got, ok = c.CofactorCube(d)
	if !ok || !got.Equal(MustParseCube("x'", wxyz)) {
		t.Errorf("cofactor by wy: got %v ok=%v", got.StringVars(wxyz), ok)
	}
}

func TestTautology(t *testing.T) {
	tests := []struct {
		expr string
		want bool
	}{
		{"1", true},
		{"0", false},
		{"w + w'", true},
		{"w + x", false},
		{"w + w'x + w'x'", true},
		{"wx + wx' + w'x + w'x'", true},
		{"wx + wx' + w'x", false},
		{"w + x + w'x'", true},
	}
	for _, tt := range tests {
		f := MustParseCover(tt.expr, wxyz)
		if got := f.Tautology(); got != tt.want {
			t.Errorf("Tautology(%q) = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestContainsCube(t *testing.T) {
	f := MustParseCover("wx + w'y", wxyz)
	if !f.ContainsCube(MustParseCube("wxy", wxyz)) {
		t.Error("f must contain wxy")
	}
	if !f.ContainsCube(MustParseCube("xy", wxyz)) {
		t.Error("f must functionally contain xy (split across two cubes)")
	}
	if f.SingleCubeContains(MustParseCube("xy", wxyz)) {
		t.Error("no single cube of f contains xy")
	}
	if f.ContainsCube(MustParseCube("x", wxyz)) {
		t.Error("f must not contain x")
	}
}

func TestComplement(t *testing.T) {
	exprs := []string{"0", "1", "w", "wx + w'y", "wx + xy + w'z'", "w + x + y + z"}
	for _, e := range exprs {
		f := MustParseCover(e, wxyz)
		g := f.Complement()
		for p := uint64(0); p < 16; p++ {
			if f.Eval(p) == g.Eval(p) {
				t.Errorf("complement of %q wrong at point %04b", e, p)
			}
		}
	}
}

func TestComplementProperty(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}
	f := func(raw [6]uint16) bool {
		cov := NewCover(5)
		for _, r := range raw {
			c := Cube{Used: uint64(r & 0x1f), Phase: uint64(r>>8) & 0x1f}.Normalize()
			cov.Add(c)
		}
		comp := cov.Complement()
		for p := uint64(0); p < 32; p++ {
			if cov.Eval(p) == comp.Eval(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrimeExpansion(t *testing.T) {
	// f = wx + wx' : w is the single prime.
	f := MustParseCover("wx + wx'", wxyz)
	c := MustParseCube("wx", wxyz)
	if f.IsPrime(c) {
		t.Error("wx is not prime in wx + wx'")
	}
	p := f.ExpandToPrime(c)
	if !p.Equal(MustParseCube("w", wxyz)) {
		t.Errorf("expanded prime = %v, want w", p.StringVars(wxyz))
	}
	if !f.IsPrime(p) {
		t.Error("w must be prime")
	}
}

func TestAllPrimes(t *testing.T) {
	// Classic example: f = w'x + wy has consensus xy.
	f := MustParseCover("w'x + wy", wxyz)
	primes := f.AllPrimes()
	want := map[string]bool{"w'x": true, "wy": true, "xy": true}
	if len(primes) != len(want) {
		t.Fatalf("got %d primes (%v), want %d", len(primes), primes, len(want))
	}
	for _, p := range primes {
		if !want[p.StringVars(wxyz)] {
			t.Errorf("unexpected prime %v", p.StringVars(wxyz))
		}
	}
}

func TestAllPrimesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 4
		f := NewCover(n)
		for i := 0; i < 3+rng.Intn(3); i++ {
			c := Cube{Used: rng.Uint64() & 0xf, Phase: rng.Uint64() & 0xf}.Normalize()
			f.Add(c)
		}
		primes := f.AllPrimes()
		// Brute force: a cube is prime iff contained in f and not expandable.
		var brute []Cube
		for used := uint64(0); used < 16; used++ {
			for phase := uint64(0); phase < 16; phase++ {
				if phase&^used != 0 {
					continue
				}
				c := Cube{Used: used, Phase: phase}
				if f.IsPrime(c) {
					brute = append(brute, c)
				}
			}
		}
		brute = DedupCubes(brute)
		if len(primes) != len(brute) {
			t.Fatalf("cover %v: AllPrimes=%d brute=%d", f, len(primes), len(brute))
		}
		for i := range primes {
			if !primes[i].Equal(brute[i]) {
				t.Fatalf("cover %v: primes differ: %v vs %v", f, primes, brute)
			}
		}
	}
}

func TestIrredundant(t *testing.T) {
	f := MustParseCover("w + wx + y", wxyz)
	g := f.Irredundant()
	if len(g.Cubes) != 2 {
		t.Fatalf("Irredundant kept %d cubes, want 2 (%v)", len(g.Cubes), g)
	}
	if !f.EquivalentTo(g) {
		t.Error("Irredundant changed the function")
	}
}

func TestEquivalentTo(t *testing.T) {
	a := MustParseCover("wx + w'y", wxyz)
	b := MustParseCover("w'y + wx + wxy", wxyz)
	if !a.EquivalentTo(b) {
		t.Error("covers should be equivalent")
	}
	c := MustParseCover("wx + y", wxyz)
	if a.EquivalentTo(c) {
		t.Error("covers should differ")
	}
}

func TestVarMask(t *testing.T) {
	if VarMask(0) != 0 || VarMask(3) != 7 || VarMask(64) != ^uint64(0) {
		t.Error("VarMask wrong")
	}
}

func BenchmarkConflicts(b *testing.B) {
	c1 := MustParseCube("wx'y", wxyz)
	c2 := MustParseCube("wxy", wxyz)
	for i := 0; i < b.N; i++ {
		if !DistanceOne(c1, c2) {
			b.Fatal("expected adjacency")
		}
	}
}

func BenchmarkTautology(b *testing.B) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	f := MustParseCover("ab + a'c + bd + c'd' + ef + e'g + fh + g'h'", names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Tautology()
	}
}

func TestAndOrCovers(t *testing.T) {
	a := MustParseCover("wx + y", wxyz)
	b := MustParseCover("x + z", wxyz)
	and := And(a, b)
	or := Or(a, b)
	for p := uint64(0); p < 16; p++ {
		if and.Eval(p) != (a.Eval(p) && b.Eval(p)) {
			t.Errorf("And wrong at %04b", p)
		}
		if or.Eval(p) != (a.Eval(p) || b.Eval(p)) {
			t.Errorf("Or wrong at %04b", p)
		}
	}
}

func TestSupercubeOfCover(t *testing.T) {
	f := MustParseCover("wxy + wxz'", wxyz)
	sc, ok := SupercubeOfCover(f)
	if !ok {
		t.Fatal("non-empty cover must have a supercube")
	}
	if want := MustParseCube("wx", wxyz); !sc.Equal(want) {
		t.Errorf("supercube = %v, want wx", sc.StringVars(wxyz))
	}
	if _, ok := SupercubeOfCover(NewCover(4)); ok {
		t.Error("empty cover has no supercube")
	}
}

func TestCoverStringForms(t *testing.T) {
	f := MustParseCover("wx' + z", wxyz)
	if got := f.StringVars(wxyz); got != "wx' + z" {
		t.Errorf("StringVars = %q", got)
	}
	if got := NewCover(2).String(); got != "0" {
		t.Errorf("empty cover = %q, want 0", got)
	}
}
