package cube

import (
	"strings"
	"testing"
)

// Regression for the fuzzing issue: Cover.Minterms used to panic on
// covers wider than 24 variables, and such covers are reachable from
// user-supplied designs (a single node with a 25-input support). It must
// refuse with an error instead.
func TestCoverMintermsWideSupportErrors(t *testing.T) {
	wide := NewCover(25)
	wide.Add(Minterm(25, VarMask(25))) // the all-ones product of 25 literals
	if _, err := wide.Minterms(nil); err == nil {
		t.Fatalf("Minterms on N=%d: want error, got none", wide.N)
	} else if !strings.Contains(err.Error(), "Minterms") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestCoverMintermsSmall(t *testing.T) {
	f, err := ParseCover("ab + c'", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := f.Minterms(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{}
	for p := uint64(0); p < 8; p++ {
		if f.Eval(p) {
			want[p] = true
		}
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d minterms, want %d", len(ms), len(want))
	}
	for _, m := range ms {
		if !want[m] {
			t.Fatalf("unexpected minterm %b", m)
		}
	}
}
