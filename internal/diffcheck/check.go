package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"gfmap/internal/blif"
	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
)

// Violation kinds reported by Check. Each kind maps to one invariant of
// the mapping pipeline.
const (
	// KindPanic: a panic escaped core.Map (or surfaced as ErrInternal).
	KindPanic = "panic"
	// KindMapError: variants disagree on whether/how mapping fails.
	KindMapError = "map-error"
	// KindByteIdentity: emitted netlists differ across cache/index/worker
	// axes that are documented to be semantically transparent.
	KindByteIdentity = "byte-identity"
	// KindStats: the deterministic stats view differs across variants
	// that must agree on it.
	KindStats = "stats"
	// KindNetlist: the netlist is malformed (undriven or doubly driven
	// signals, unresolved loads, cycles).
	KindNetlist = "netlist"
	// KindEquivalence: the mapping changed the Boolean function.
	KindEquivalence = "equivalence"
	// KindHazard: asynchronous mapping introduced a hazard a cone did not
	// already have (violates Theorems 3.1/3.2).
	KindHazard = "hazard"
	// KindRoundTrip: eqn/BLIF write→parse does not preserve the design.
	KindRoundTrip = "round-trip"
	// KindStore: the persistent mapping store or the delta path violated
	// its coherence contract — a warm run missed entries its own cold run
	// just wrote, or a delta run of the identical design re-solved cones.
	KindStore = "store"
)

// Violation is one failed invariant.
type Violation struct {
	Kind    string // one of the Kind* constants
	Mode    string // "sync" or "async" ("" for mode-independent checks)
	Variant string // option-matrix variant that exposed it
	Detail  string
}

func (v Violation) String() string {
	mode := v.Mode
	if mode == "" {
		mode = "-"
	}
	return fmt.Sprintf("[%s] mode=%s variant=%s: %s", v.Kind, mode, v.Variant, v.Detail)
}

// Options configures a differential check. The zero value is not usable:
// Lib is required (library.Get a builtin).
type Options struct {
	// Lib is the target cell library.
	Lib *library.Library
	// Modes to exercise; nil means both Sync and Async.
	Modes []core.Mode
	// Workers is the parallel worker count tested against the serial
	// baseline; 0 means 4.
	Workers int
	// SkipVerify disables the semantic oracles (equivalence, hazard
	// safety, round trips), keeping only the differential and
	// well-formedness checks. Used by tight fuzz loops on large designs.
	SkipVerify bool
	// SkipStoreAxes drops the storecold/storewarm/delta variants from the
	// matrix, reverting to the pre-store matrix. For A/B measurement of
	// the fuzz budget; the axes are on by default because stale-key and
	// invalidation bugs are exactly what differential fuzzing flushes out.
	SkipStoreAxes bool
	// MaxBurst and Objective are forwarded to every variant.
	MaxBurst  int
	Objective core.Objective
	// FleetMap, when non-nil, adds the fleet axis: every checked design is
	// also mapped through a fleet coordinator and a single-process server
	// fed the identical serialized request, and the pair must agree
	// byte-for-byte (see fleet.go). Wired up by cmd/gfmfuzz -fleet.
	FleetMap FleetMapFunc
}

// Report is the outcome of checking one design across the option matrix.
type Report struct {
	Design     *network.Network
	Violations []Violation
	// MappedModes lists the modes whose baseline run mapped successfully;
	// designs the library genuinely cannot cover are not violations as
	// long as every variant agrees on the failure.
	MappedModes []string
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) add(kind, mode, variant, detail string) {
	r.Violations = append(r.Violations, Violation{Kind: kind, Mode: mode, Variant: variant, Detail: detail})
}

// variant is one point of the option matrix. Every variant of a mode must
// produce a byte-identical netlist; variants with comparableStats must
// also agree on Stats.Deterministic() (the match-index axis legitimately
// changes the matcher's work counters, so index-off runs skip that
// comparison).
type variant struct {
	name            string
	comparableStats bool
	opts            func(core.Options) core.Options
	ctx             context.Context
	// delta maps through core.MapDelta seeded with the serial baseline's
	// result instead of core.Map.
	delta bool
}

func matrix(workers int, store *mapstore.Store) []variant {
	vars := []variant{
		{name: "serial", comparableStats: true,
			opts: func(o core.Options) core.Options { o.Workers = 1; return o }},
		{name: "workers", comparableStats: true,
			opts: func(o core.Options) core.Options { o.Workers = workers; return o }},
		{name: "nocache", comparableStats: true,
			opts: func(o core.Options) core.Options { o.Workers = 1; o.DisableHazardCache = true; return o }},
		{name: "warmshared", comparableStats: true,
			opts: func(o core.Options) core.Options { o.Workers = 1; return o }}, // second run against the same private cache, warm
		{name: "noindex", comparableStats: false,
			opts: func(o core.Options) core.Options { o.Workers = 1; o.DisableMatchIndex = true; return o }},
		{name: "noarena", comparableStats: true,
			opts: func(o core.Options) core.Options { o.Workers = 1; o.DisableArenas = true; return o }},
		{name: "ctx", comparableStats: true, ctx: context.Background(),
			opts: func(o core.Options) core.Options { o.Workers = 1; return o }},
	}
	if store != nil {
		// The persistent-store and delta axes. storecold populates the
		// (private, empty) store; storewarm re-maps against the entries it
		// wrote; delta re-maps the identical design seeded with the serial
		// baseline's solutions. All three must be byte-identical to the
		// baseline with identical deterministic stats — this is exactly the
		// harness shape that flushes out stale-key and invalidation bugs.
		withStore := func(o core.Options) core.Options { o.Workers = 1; o.Store = store; return o }
		vars = append(vars,
			variant{name: "storecold", comparableStats: true, opts: withStore},
			variant{name: "storewarm", comparableStats: true, opts: withStore},
			variant{name: "delta", comparableStats: true, delta: true,
				opts: func(o core.Options) core.Options { o.Workers = 1; return o }},
		)
	}
	return vars
}

// outcome is one variant's mapping result.
type outcome struct {
	variant variant
	res     *core.Result
	err     error
}

// Check maps the design across the option matrix and asserts every
// invariant. It never panics on any input: harness-level recovery records
// an escaped panic as a KindPanic violation.
func Check(net *network.Network, opts Options) *Report {
	rep := &Report{Design: net}
	if opts.Lib == nil {
		rep.add(KindMapError, "", "config", "no library configured")
		return rep
	}
	if err := net.Validate(); err != nil {
		rep.add(KindMapError, "", "generator", "generated network invalid: "+err.Error())
		return rep
	}
	modes := opts.Modes
	if modes == nil {
		modes = []core.Mode{core.Sync, core.Async}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	if !opts.SkipVerify {
		checkRoundTrips(net, rep)
	}
	for _, mode := range modes {
		checkMode(net, mode, workers, opts, rep)
		if opts.FleetMap != nil {
			// The fleet axis runs even when the matrix baseline failed:
			// fleet and local must agree on the failure too.
			checkFleet(net, mode, opts, rep)
		}
	}
	return rep
}

func checkMode(net *network.Network, mode core.Mode, workers int, opts Options, rep *Report) {
	ms := mode.String()
	// A private cache isolates the run from the process-wide shared cache
	// while still exercising cold→warm transparency via the "warmshared"
	// variant, which reuses it after the serial baseline has filled it.
	cache := hazcache.New(0)
	base := core.Options{
		Mode:        mode,
		Objective:   opts.Objective,
		MaxBurst:    opts.MaxBurst,
		HazardCache: cache,
	}
	// Each mode gets a private, empty store so the cold/warm split is
	// controlled by the matrix, not by whatever ran before.
	var store *mapstore.Store
	if !opts.SkipStoreAxes {
		store = mapstore.NewMemory(0)
	}
	vars := matrix(workers, store)
	outs := make([]outcome, 0, len(vars))
	for _, v := range vars {
		o := v.opts(base)
		var prev *core.Result
		if v.delta && len(outs) > 0 {
			prev = outs[0].res // serial baseline's retained solutions
		}
		res, err := safeMap(v.ctx, v.delta, prev, net, opts.Lib, o)
		if err != nil && errors.Is(err, core.ErrInternal) {
			rep.add(KindPanic, ms, v.name, err.Error())
		}
		outs = append(outs, outcome{variant: v, res: res, err: err})
	}

	baseline := outs[0]
	if baseline.err != nil {
		// The design is unmappable under this library: not a violation by
		// itself (unless internal), but every variant must agree.
		for _, o := range outs[1:] {
			if o.err == nil {
				rep.add(KindMapError, ms, o.variant.name,
					fmt.Sprintf("variant mapped successfully but baseline failed with: %v", baseline.err))
			} else if o.err.Error() != baseline.err.Error() {
				rep.add(KindMapError, ms, o.variant.name,
					fmt.Sprintf("error differs from baseline: %q vs %q", o.err, baseline.err))
			}
		}
		return
	}
	rep.MappedModes = append(rep.MappedModes, ms)

	baseNl := baseline.res.Netlist.String()
	baseStats := baseline.res.Stats.Deterministic()
	for _, o := range outs[1:] {
		if o.err != nil {
			rep.add(KindMapError, ms, o.variant.name,
				fmt.Sprintf("baseline mapped but variant failed: %v", o.err))
			continue
		}
		if nl := o.res.Netlist.String(); nl != baseNl {
			rep.add(KindByteIdentity, ms, o.variant.name,
				fmt.Sprintf("netlist differs from serial baseline:\n--- baseline ---\n%s--- %s ---\n%s", baseNl, o.variant.name, nl))
		}
		if o.variant.comparableStats {
			if st := o.res.Stats.Deterministic(); st != baseStats {
				rep.add(KindStats, ms, o.variant.name,
					fmt.Sprintf("deterministic stats differ: %+v vs baseline %+v", st, baseStats))
			}
		}
		// Store coherence: a warm run over the very store its cold twin
		// filled must hit on every cone, and a delta run of the identical
		// design must reuse every cone. A shortfall is a key-derivation or
		// invalidation bug even when the netlist happens to match.
		switch o.variant.name {
		case "storewarm":
			if st := o.res.Stats; st.StoreHits != st.Cones {
				rep.add(KindStore, ms, o.variant.name,
					fmt.Sprintf("warm store hit %d of %d cones", st.StoreHits, st.Cones))
			}
		case "delta":
			if st := o.res.Stats; st.DeltaReusedCones != st.Cones {
				rep.add(KindStore, ms, o.variant.name,
					fmt.Sprintf("identity delta reused %d of %d cones", st.DeltaReusedCones, st.Cones))
			}
		}
	}

	checkWellFormed(baseline.res, net, ms, rep)
	if !opts.SkipVerify {
		if err := core.VerifyEquivalence(net, baseline.res.Netlist); err != nil {
			rep.add(KindEquivalence, ms, "serial", err.Error())
		}
		if mode == core.Async {
			srep, err := core.VerifyHazardSafety(net, baseline.res.Netlist)
			if err != nil {
				rep.add(KindHazard, ms, "serial", "hazard safety verification failed: "+err.Error())
			} else if !srep.Clean() {
				rep.add(KindHazard, ms, "serial",
					fmt.Sprintf("%s; %s", srep.String(), strings.Join(srep.Details, "; ")))
			}
		}
	}
}

// safeMap invokes the mapper with a harness-level panic backstop. Map
// already converts pipeline panics to ErrInternal; anything the backstop
// catches is a bug in that boundary itself.
func safeMap(ctx context.Context, delta bool, prev *core.Result, net *network.Network, lib *library.Library, o core.Options) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: panic escaped core.Map: %v", core.ErrInternal, r)
		}
	}()
	if delta {
		return core.MapDelta(prev, net, lib, o)
	}
	if ctx != nil {
		return core.MapContext(ctx, net, lib, o)
	}
	return core.Map(net, lib, o)
}

// checkWellFormed asserts netlist structural invariants beyond
// Netlist.Validate: single drivers, resolved loads, acyclicity (via
// Delay's topological sort), and output coverage.
func checkWellFormed(res *core.Result, net *network.Network, mode string, rep *Report) {
	nl := res.Netlist
	if err := nl.Validate(); err != nil {
		rep.add(KindNetlist, mode, "serial", "netlist validation: "+err.Error())
	}
	if _, err := nl.Delay(); err != nil {
		rep.add(KindNetlist, mode, "serial", "netlist not acyclic: "+err.Error())
	}
	inputs := make(map[string]bool, len(net.Inputs))
	for _, in := range net.Inputs {
		inputs[in] = true
	}
	drivers := make(map[string]int)
	for _, g := range nl.Gates {
		drivers[g.Out]++
		if inputs[g.Out] {
			rep.add(KindNetlist, mode, "serial", "gate drives primary input "+g.Out)
		}
	}
	for sig, n := range drivers {
		if n > 1 {
			rep.add(KindNetlist, mode, "serial",
				fmt.Sprintf("signal %s driven by %d gates", sig, n))
		}
	}
	for _, g := range nl.Gates {
		for _, pin := range g.Pins {
			if !inputs[pin] && drivers[pin] == 0 {
				rep.add(KindNetlist, mode, "serial",
					fmt.Sprintf("gate %s input %s is neither a primary input nor driven", g.Out, pin))
			}
		}
	}
	for _, out := range net.Outputs {
		if !inputs[out] && drivers[out] == 0 {
			rep.add(KindNetlist, mode, "serial", "primary output "+out+" is undriven")
		}
	}
}

// checkRoundTrips asserts that the eqn and BLIF writers emit text their
// parsers accept and that the reparsed network is equivalent — the
// foundation the reproducer corpus (and every CLI pipeline) rests on.
func checkRoundTrips(net *network.Network, rep *Report) {
	if len(net.Inputs) > 16 {
		return // exhaustive equivalence would not be cheap
	}
	src := eqn.WriteString(net)
	re, err := eqn.ParseString(src, net.Name)
	if err != nil {
		rep.add(KindRoundTrip, "", "eqn", "reparse failed: "+err.Error()+"\n"+src)
	} else if eq, err := network.Equivalent(net, re); err != nil {
		rep.add(KindRoundTrip, "", "eqn", "equivalence check failed: "+err.Error())
	} else if !eq {
		rep.add(KindRoundTrip, "", "eqn", "reparsed network differs:\n"+src)
	}
	bsrc, err := blif.WriteString(net)
	if err != nil {
		rep.add(KindRoundTrip, "", "blif", "write failed: "+err.Error())
		return
	}
	rb, err := blif.Parse(strings.NewReader(bsrc), net.Name)
	if err != nil {
		rep.add(KindRoundTrip, "", "blif", "reparse failed: "+err.Error()+"\n"+bsrc)
	} else if eq, err := network.Equivalent(net, rb); err != nil {
		rep.add(KindRoundTrip, "", "blif", "equivalence check failed: "+err.Error())
	} else if !eq {
		rep.add(KindRoundTrip, "", "blif", "reparsed network differs:\n"+bsrc)
	}
}
