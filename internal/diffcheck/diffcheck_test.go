package diffcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gfmap/internal/blif"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
	"gfmap/internal/obs"
)

func testLib(t *testing.T) *library.Library {
	t.Helper()
	lib, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// The generator must be a pure function of (seed, cfg): a seed printed in
// a failure report is a complete reproducer.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{}
	a := eqn.WriteString(Generate(42, cfg))
	b := eqn.WriteString(Generate(42, cfg))
	if a != b {
		t.Fatalf("same seed, different networks:\n%s\nvs\n%s", a, b)
	}
	c := eqn.WriteString(Generate(43, cfg))
	if a == c {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestGenerateValidAndReconvergent(t *testing.T) {
	sawMultiFanout := false
	for seed := uint64(1); seed <= 40; seed++ {
		net := Generate(seed, GenConfig{})
		if err := net.Validate(); err != nil {
			t.Fatalf("seed %d: invalid network: %v", seed, err)
		}
		if len(net.Outputs) == 0 {
			t.Fatalf("seed %d: no outputs", seed)
		}
		for _, n := range net.FanoutCounts() {
			if n > 1 {
				sawMultiFanout = true
			}
		}
	}
	if !sawMultiFanout {
		t.Fatal("no seed produced multi-fanout structure; reconvergence bias is broken")
	}
}

// TestDifferentialSmoke is the deterministic slice of the gfmfuzz run
// that executes on every `go test` (and under -race in CI): a batch of
// seeds across the full option matrix with zero tolerated violations.
func TestDifferentialSmoke(t *testing.T) {
	lib := testLib(t)
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	reg := obs.NewRegistry()
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep := Check(Generate(seed, GenConfig{}), Options{Lib: lib})
		rep.Publish(reg)
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricDesigns]; got != uint64(seeds) {
		t.Fatalf("designs counter = %d, want %d", got, seeds)
	}
	if got := snap.Counters[MetricViolations]; got != 0 {
		t.Fatalf("violations counter = %d, want 0", got)
	}
}

// TestExamplesDifferential runs the matrix over the checked-in example
// designs — the -race differential smoke of the fuzzing issue.
func TestExamplesDifferential(t *testing.T) {
	lib := testLib(t)
	dir := filepath.Join("..", "..", "examples")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		var net *network.Network
		path := filepath.Join(dir, e.Name())
		switch {
		case strings.HasSuffix(e.Name(), ".eqn"):
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			net, err = eqn.ParseString(string(data), e.Name())
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
		case strings.HasSuffix(e.Name(), ".blif"):
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			net, err = blif.Parse(strings.NewReader(string(data)), e.Name())
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
		default:
			continue
		}
		checked++
		rep := Check(net, Options{Lib: lib})
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", e.Name(), v)
		}
	}
	if checked == 0 {
		t.Fatal("no example designs found")
	}
}

// TestRegressionCorpus replays every minimised reproducer that fuzzing
// ever produced; each one documents a fixed bug and must stay fixed.
func TestRegressionCorpus(t *testing.T) {
	lib := testLib(t)
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "regressions", "*.eqn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no regression corpus")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		net, err := eqn.ParseString(string(data), filepath.Base(p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		rep := Check(net, Options{Lib: lib})
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", filepath.Base(p), v)
		}
	}
}

// TestMinimizeShrinks checks the minimiser against a structural predicate
// it cannot break: the design still contains a node whose support
// includes both x0 and x1.
func TestMinimizeShrinks(t *testing.T) {
	net := Generate(7, GenConfig{Nodes: 14})
	hasPair := func(n *network.Network) bool {
		for _, name := range n.NodeNames() {
			saw0, saw1 := false, false
			for _, v := range n.Node(name).Expr.CollectVars(nil) {
				if v == "x0" {
					saw0 = true
				}
				if v == "x1" {
					saw1 = true
				}
			}
			if saw0 && saw1 {
				return true
			}
		}
		return false
	}
	if !hasPair(net) {
		t.Skip("seed does not exhibit the predicate")
	}
	small := Minimize(net, hasPair, 0)
	if !hasPair(small) {
		t.Fatal("minimised design no longer fails the predicate")
	}
	if small.NumNodes() > net.NumNodes() {
		t.Fatalf("minimiser grew the design: %d -> %d nodes", net.NumNodes(), small.NumNodes())
	}
	if err := small.Validate(); err != nil {
		t.Fatalf("minimised design invalid: %v", err)
	}
	if small.NumNodes() != 1 {
		t.Logf("minimised to %d nodes (predicate needs only 1)", small.NumNodes())
	}
}

// TestWriteReproducerRoundTrips ensures a written reproducer is a valid,
// parseable eqn design carrying its violation header as comments.
func TestWriteReproducerRoundTrips(t *testing.T) {
	dir := t.TempDir()
	net := Generate(3, GenConfig{})
	rep := &Report{Design: net}
	rep.add(KindByteIdentity, "async", "workers", "synthetic violation\nwith a second line")
	path, err := WriteReproducer(dir, 3, rep)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# gfmfuzz reproducer: seed=3") {
		t.Fatalf("missing header:\n%s", data)
	}
	re, err := eqn.ParseString(string(data), "r")
	if err != nil {
		t.Fatalf("reproducer does not reparse: %v\n%s", err, data)
	}
	if eq, err := network.Equivalent(net, re); err != nil || !eq {
		t.Fatalf("reproducer not equivalent to design (eq=%v err=%v)", eq, err)
	}
}

// Check must flag a malformed library-free configuration rather than
// crash, and must catch an invalid network up front.
func TestCheckRejectsBadConfig(t *testing.T) {
	net := Generate(1, GenConfig{})
	rep := Check(net, Options{})
	if !rep.Failed() {
		t.Fatal("nil library accepted")
	}
	bad := network.New("bad")
	if err := bad.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	// Node referencing an undefined signal: AddNode accepts, Validate rejects.
	if err := bad.AddNode("f", mustExpr(t, "a*ghost")); err != nil {
		t.Fatal(err)
	}
	if err := bad.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	rep = Check(bad, Options{Lib: testLib(t)})
	if !rep.Failed() {
		t.Fatal("invalid network accepted")
	}
}

// TestStoreAxes: the matrix carries the persistent-store and delta
// variants unless explicitly skipped, and a skipped matrix still passes.
func TestStoreAxes(t *testing.T) {
	names := func(vars []variant) map[string]bool {
		m := make(map[string]bool, len(vars))
		for _, v := range vars {
			m[v.name] = true
		}
		return m
	}
	withStore := names(matrix(4, mapstore.NewMemory(0)))
	for _, want := range []string{"storecold", "storewarm", "delta"} {
		if !withStore[want] {
			t.Errorf("matrix missing %s axis", want)
		}
	}
	without := names(matrix(4, nil))
	for _, skip := range []string{"storecold", "storewarm", "delta"} {
		if without[skip] {
			t.Errorf("nil-store matrix still contains %s axis", skip)
		}
	}

	lib := testLib(t)
	rep := Check(Generate(7, GenConfig{}), Options{Lib: lib, SkipStoreAxes: true})
	for _, v := range rep.Violations {
		t.Errorf("SkipStoreAxes run: %s", v)
	}
}
