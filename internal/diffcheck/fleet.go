package diffcheck

// The fleet axis: fleet-vs-local byte identity over the serving stack.
//
// Unlike the in-process option matrix, this axis crosses the HTTP
// boundary: the same serialized design text is mapped once through a
// fleet coordinator (cone-sharded or design-wise dispatch, hedged
// retries, worker failures and all) and once through a plain
// single-process server, and the two responses must agree exactly.
//
// The comparison is deliberately fleet-vs-local of the *same served
// text*, not fleet-vs-the-harness's in-memory baseline: the eqn/BLIF
// round trip preserves Boolean equivalence, not structural identity, so
// only two servers parsing identical text are promised byte-identical
// netlists.
//
// The hook lives behind a function type so this package never imports
// the server: cmd/gfmfuzz (and the server's own tests) wire it up with
// server.StartInProcessFleet.

import (
	"fmt"

	"gfmap/internal/core"
	"gfmap/internal/network"
)

// FleetVariant names the fleet axis in violation reports.
const FleetVariant = "fleet"

// FleetOutcome is one design's paired serving outcome: the same request
// mapped via the fleet coordinator and via the single-process local
// twin. Err fields carry the served error text ("" for success); on
// success the netlists and stats must match.
type FleetOutcome struct {
	FleetNetlist string
	LocalNetlist string
	FleetStats   core.Stats
	LocalStats   core.Stats
	FleetErr     string
	LocalErr     string
}

// FleetMapFunc maps one design through a fleet coordinator and a local
// single-process server fed the identical serialized request. Returning
// (nil, nil) skips the axis for this design; an error is a harness
// failure and reported as such.
type FleetMapFunc func(net *network.Network, mode core.Mode) (*FleetOutcome, error)

// checkFleet runs the fleet axis for one mode. The invariants mirror
// the in-process matrix: fleet and local must agree on failure, and on
// success the netlist text and the deterministic stats view must be
// identical — no matter which workers died, straggled or returned
// garbage while the coordinator assembled its answer.
func checkFleet(net *network.Network, mode core.Mode, opts Options, rep *Report) {
	ms := mode.String()
	fo, err := opts.FleetMap(net, mode)
	if err != nil {
		rep.add(KindMapError, ms, FleetVariant, "fleet axis harness error: "+err.Error())
		return
	}
	if fo == nil {
		return
	}
	if (fo.FleetErr == "") != (fo.LocalErr == "") {
		rep.add(KindMapError, ms, FleetVariant,
			fmt.Sprintf("fleet and local disagree on failure: fleet=%q local=%q", fo.FleetErr, fo.LocalErr))
		return
	}
	if fo.FleetErr != "" {
		return // both failed: agreement is the invariant, exact text is the server's business
	}
	if fo.FleetNetlist != fo.LocalNetlist {
		rep.add(KindByteIdentity, ms, FleetVariant,
			fmt.Sprintf("fleet netlist differs from local single-process run:\n--- local ---\n%s--- fleet ---\n%s",
				fo.LocalNetlist, fo.FleetNetlist))
	}
	if fs, ls := fo.FleetStats.Deterministic(), fo.LocalStats.Deterministic(); fs != ls {
		rep.add(KindStats, ms, FleetVariant,
			fmt.Sprintf("deterministic stats differ: fleet %+v vs local %+v", fs, ls))
	}
}
