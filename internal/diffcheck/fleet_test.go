package diffcheck

// Unit tests for the fleet axis harness logic: checkFleet's verdicts on
// every shape a FleetMap hook can return. The end-to-end axis over a
// real in-process fleet lives in internal/server (diffaxis_test.go),
// next to the harness it needs.

import (
	"errors"
	"strings"
	"testing"

	"gfmap/internal/core"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

func fleetTestOptions(t *testing.T, hook FleetMapFunc) Options {
	t.Helper()
	lib, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	// The fleet axis is what's under test; skip the semantic oracles and
	// store axes to keep the matrix part cheap.
	return Options{Lib: lib, Modes: []core.Mode{core.Async}, SkipVerify: true,
		SkipStoreAxes: true, FleetMap: hook}
}

func fleetViolations(rep *Report) []Violation {
	var out []Violation
	for _, v := range rep.Violations {
		if v.Variant == FleetVariant {
			out = append(out, v)
		}
	}
	return out
}

func fleetTestNet() *network.Network {
	return Generate(7, GenConfig{Inputs: 4, Nodes: 5, MaxFanin: 3})
}

func TestFleetAxisAgreementPasses(t *testing.T) {
	calls := 0
	opts := fleetTestOptions(t, func(net *network.Network, mode core.Mode) (*FleetOutcome, error) {
		calls++
		st := core.Stats{Cones: 3}
		return &FleetOutcome{FleetNetlist: "nl\n", LocalNetlist: "nl\n",
			FleetStats: st, LocalStats: st}, nil
	})
	rep := Check(fleetTestNet(), opts)
	if got := fleetViolations(rep); len(got) != 0 {
		t.Fatalf("agreeing fleet outcome produced violations: %v", got)
	}
	if calls != 1 {
		t.Fatalf("hook called %d times, want once per mode", calls)
	}
}

func TestFleetAxisNetlistMismatch(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return &FleetOutcome{FleetNetlist: "a\n", LocalNetlist: "b\n"}, nil
	})
	got := fleetViolations(Check(fleetTestNet(), opts))
	if len(got) != 1 || got[0].Kind != KindByteIdentity {
		t.Fatalf("netlist mismatch reported as %v, want one %s", got, KindByteIdentity)
	}
}

func TestFleetAxisStatsMismatch(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return &FleetOutcome{FleetNetlist: "nl\n", LocalNetlist: "nl\n",
			FleetStats: core.Stats{Cones: 2}, LocalStats: core.Stats{Cones: 3}}, nil
	})
	got := fleetViolations(Check(fleetTestNet(), opts))
	if len(got) != 1 || got[0].Kind != KindStats {
		t.Fatalf("stats mismatch reported as %v, want one %s", got, KindStats)
	}
}

func TestFleetAxisNondeterministicStatsIgnored(t *testing.T) {
	// Cache warmth legitimately differs between fleet and local runs; only
	// the Deterministic view must agree.
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return &FleetOutcome{FleetNetlist: "nl\n", LocalNetlist: "nl\n",
			FleetStats: core.Stats{Cones: 3, DeltaReusedCones: 3, StoreHits: 1},
			LocalStats: core.Stats{Cones: 3}}, nil
	})
	if got := fleetViolations(Check(fleetTestNet(), opts)); len(got) != 0 {
		t.Fatalf("cache-warmth stat difference reported: %v", got)
	}
}

func TestFleetAxisFailureDisagreement(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return &FleetOutcome{FleetErr: "boom", LocalNetlist: "nl\n"}, nil
	})
	got := fleetViolations(Check(fleetTestNet(), opts))
	if len(got) != 1 || got[0].Kind != KindMapError {
		t.Fatalf("failure disagreement reported as %v, want one %s", got, KindMapError)
	}
}

func TestFleetAxisAgreedFailurePasses(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return &FleetOutcome{FleetErr: "no cover for cone x", LocalErr: "no cover for cone y"}, nil
	})
	if got := fleetViolations(Check(fleetTestNet(), opts)); len(got) != 0 {
		t.Fatalf("agreed failure produced violations: %v", got)
	}
}

func TestFleetAxisHarnessError(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return nil, errors.New("coordinator unreachable")
	})
	got := fleetViolations(Check(fleetTestNet(), opts))
	if len(got) != 1 || got[0].Kind != KindMapError ||
		!strings.Contains(got[0].Detail, "harness error") {
		t.Fatalf("harness error reported as %v", got)
	}
}

func TestFleetAxisNilOutcomeSkips(t *testing.T) {
	opts := fleetTestOptions(t, func(*network.Network, core.Mode) (*FleetOutcome, error) {
		return nil, nil
	})
	if got := fleetViolations(Check(fleetTestNet(), opts)); len(got) != 0 {
		t.Fatalf("skipped axis produced violations: %v", got)
	}
}
