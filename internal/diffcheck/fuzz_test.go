package diffcheck

import (
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/library"
)

func mustExpr(t *testing.T, s string) *bexpr.Expr {
	t.Helper()
	e, err := bexpr.ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// FuzzDiff drives the differential matrix from a fuzzed seed: the
// coverage-guided engine explores generator seeds and shapes, and any
// invariant violation fails the target. The corpus under
// testdata/fuzz/FuzzDiff replays deterministically in normal `go test`
// runs.
func FuzzDiff(f *testing.F) {
	lib, err := library.Get("LSI9K")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), uint8(6), uint8(8))
	f.Add(uint64(99), uint8(4), uint8(12))
	f.Add(uint64(1234567), uint8(8), uint8(10))
	f.Fuzz(func(t *testing.T, seed uint64, inputs, nodes uint8) {
		cfg := GenConfig{
			Inputs: 2 + int(inputs%8), // 2..9 — stays within exact verification bounds
			Nodes:  1 + int(nodes%14), // 1..14
		}
		net := Generate(seed, cfg)
		rep := Check(net, Options{Lib: lib})
		for _, v := range rep.Violations {
			t.Errorf("seed %d cfg %+v: %s", seed, cfg, v)
		}
	})
}
