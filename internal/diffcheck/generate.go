// Package diffcheck is the mapper's differential fuzzing and invariant
// harness. It generates random combinational networks (biased toward the
// structures that stress the asynchronous mapper: reconvergent fanout and
// wide supports), maps each one across the full option matrix — cache
// on/off, match index on/off, worker counts, with and without a context —
// and asserts the invariants the rest of the system relies on:
//
//   - every variant agrees byte-for-byte on the emitted netlist,
//   - the deterministic stats view agrees across cache/worker variants,
//   - the netlist is well-formed (every signal driven exactly once,
//     acyclic, all loads resolved),
//   - the mapping is functionally equivalent to the source network,
//   - in asynchronous mode no new hazards are introduced (Theorems
//     3.1/3.2),
//   - no panic escapes core.Map,
//   - writer/parser round trips (eqn and BLIF) preserve the function.
//
// A shrinking minimiser reduces failing designs to small reproducers for
// testdata/regressions/. cmd/gfmfuzz is the batch driver; native
// go test -fuzz targets ride on the same checks.
package diffcheck

import (
	"math/rand"
	"strconv"

	"gfmap/internal/bexpr"
	"gfmap/internal/network"
)

// GenConfig sizes the random network generator. The zero value gets
// usable defaults aimed at fast, verifiable designs: few enough inputs
// for exhaustive equivalence and exact hazard analysis, enough nodes for
// multi-cone structure.
type GenConfig struct {
	// Inputs is the number of primary inputs; 0 means 6.
	Inputs int
	// Nodes is the number of internal nodes; 0 means 10.
	Nodes int
	// MaxFanin bounds the distinct signals a node's expression draws on;
	// 0 means 4. Every WidePeriod-th node ignores it and draws a wide
	// support instead, to stress the exact-analysis bounds.
	MaxFanin int
	// WidePeriod makes every k-th node wide-support (up to twice
	// MaxFanin); 0 means 5, negative disables wide nodes.
	WidePeriod int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Inputs <= 0 {
		c.Inputs = 6
	}
	if c.Nodes <= 0 {
		c.Nodes = 10
	}
	if c.MaxFanin <= 0 {
		c.MaxFanin = 4
	}
	if c.WidePeriod == 0 {
		c.WidePeriod = 5
	}
	return c
}

// Generate builds a pseudo-random combinational network from the seed.
// The same (seed, cfg) pair always yields the identical network, so a
// seed is a complete reproducer. Generated networks always validate:
// every node reads only previously defined signals and every sink node is
// a primary output.
func Generate(seed uint64, cfg GenConfig) *network.Network {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(int64(seed)))
	net := network.New("gen" + strconv.FormatUint(seed, 10))

	signals := make([]string, 0, cfg.Inputs+cfg.Nodes)
	for i := 0; i < cfg.Inputs; i++ {
		name := "x" + strconv.Itoa(i)
		if err := net.AddInput(name); err != nil {
			panic("diffcheck: generator input collision: " + err.Error())
		}
		signals = append(signals, name)
	}

	readers := make(map[string]int, cfg.Inputs+cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		k := 1 + rng.Intn(cfg.MaxFanin)
		if cfg.WidePeriod > 0 && i%cfg.WidePeriod == cfg.WidePeriod-1 {
			k = cfg.MaxFanin + 1 + rng.Intn(cfg.MaxFanin)
		}
		support := pickSupport(rng, signals, readers, k)
		expr := randomExpr(rng, support, 0)
		name := "n" + strconv.Itoa(i)
		if err := net.AddNode(name, expr); err != nil {
			panic("diffcheck: generator node collision: " + err.Error())
		}
		for _, s := range expr.CollectVars(nil) {
			readers[s]++
		}
		signals = append(signals, name)
	}

	// Every sink becomes an output so the whole network is reachable and
	// the differential predicates see every node.
	for _, name := range net.NodeNames() {
		if readers[name] == 0 {
			if err := net.MarkOutput(name); err != nil {
				panic("diffcheck: generator output: " + err.Error())
			}
		}
	}
	return net
}

// pickSupport draws k distinct signals. Half the draws are biased toward
// signals that already have readers, deliberately building the
// reconvergent multi-fanout points that decide cone partitioning and
// cross-cone cache sharing; the rest are uniform (favouring recent
// signals keeps chains deep).
func pickSupport(rng *rand.Rand, signals []string, readers map[string]int, k int) []string {
	if k > len(signals) {
		k = len(signals)
	}
	chosen := make(map[string]bool, k)
	out := make([]string, 0, k)
	var shared []string
	for _, s := range signals {
		if readers[s] > 0 {
			shared = append(shared, s)
		}
	}
	for len(out) < k {
		var s string
		switch {
		case len(shared) > 0 && rng.Intn(2) == 0:
			s = shared[rng.Intn(len(shared))]
		case rng.Intn(3) == 0 && len(signals) > 4:
			// Recent tail: deepens the DAG.
			tail := signals[len(signals)-4:]
			s = tail[rng.Intn(len(tail))]
		default:
			s = signals[rng.Intn(len(signals))]
		}
		if !chosen[s] {
			chosen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// randomExpr builds a random Boolean expression whose leaves are drawn
// from support (every support signal appears at least once at depth 0).
// Repeated leaves are allowed deeper down: intra-expression reconvergence
// is exactly what the hazard analysis cares about.
func randomExpr(rng *rand.Rand, support []string, depth int) *bexpr.Expr {
	if depth >= 3 || len(support) == 1 {
		leaf := bexpr.Var(support[rng.Intn(len(support))])
		if rng.Intn(3) == 0 {
			return bexpr.Not(leaf)
		}
		return leaf
	}
	if depth == 0 {
		// Partition the support across the children so every signal is
		// actually in the node's support.
		perm := rng.Perm(len(support))
		cut := 1 + rng.Intn(len(support)-1)
		left := make([]string, 0, cut)
		right := make([]string, 0, len(support)-cut)
		for i, p := range perm {
			if i < cut {
				left = append(left, support[p])
			} else {
				right = append(right, support[p])
			}
		}
		a := randomExpr(rng, left, 1)
		b := randomExpr(rng, right, 1)
		e := combine(rng, a, b)
		if rng.Intn(4) == 0 {
			e = bexpr.Not(e)
		}
		return e
	}
	a := randomExpr(rng, support, depth+1)
	b := randomExpr(rng, support, depth+1)
	return combine(rng, a, b)
}

func combine(rng *rand.Rand, a, b *bexpr.Expr) *bexpr.Expr {
	if rng.Intn(2) == 0 {
		return bexpr.And(a, b)
	}
	return bexpr.Or(a, b)
}
