package diffcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gfmap/internal/eqn"
	"gfmap/internal/obs"
)

// Metric names the harness publishes into an obs.Registry, so paperbench
// and CI can track violations-found over time alongside the mapper's own
// map_* metrics.
const (
	// MetricDesigns counts designs pushed through Check.
	MetricDesigns = "diffcheck_designs_total"
	// MetricMappedModes counts (design, mode) pairs whose baseline run
	// mapped successfully.
	MetricMappedModes = "diffcheck_mapped_modes_total"
	// MetricViolations counts invariant violations across all kinds;
	// per-kind counters are MetricViolations + "_<kind>".
	MetricViolations = "diffcheck_violations_total"
)

// Publish folds a report into the registry. Nil-safe on the registry.
func (r *Report) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricDesigns).Inc()
	reg.Counter(MetricMappedModes).Add(uint64(len(r.MappedModes)))
	if len(r.Violations) > 0 {
		reg.Counter(MetricViolations).Add(uint64(len(r.Violations)))
		for _, v := range r.Violations {
			reg.Counter(MetricViolations + "_" + v.Kind).Inc()
		}
	}
}

// Kinds returns the sorted set of violation kinds in the report.
func (r *Report) Kinds() []string {
	set := map[string]bool{}
	for _, v := range r.Violations {
		set[v.Kind] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HasKind reports whether the report contains a violation of the kind.
func (r *Report) HasKind(kind string) bool {
	for _, v := range r.Violations {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

// WriteReproducer writes a minimised failing design to dir as an eqn file
// with a comment header describing the violation, returning the path. The
// file is a complete reproducer: testdata/regressions is replayed by the
// regression tests and by `gfmfuzz -replay`.
func WriteReproducer(dir string, seed uint64, rep *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	kinds := strings.Join(rep.Kinds(), "+")
	if kinds == "" {
		kinds = "unknown"
	}
	name := fmt.Sprintf("seed%d_%s.eqn", seed, strings.ReplaceAll(kinds, "-", ""))
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# gfmfuzz reproducer: seed=%d kinds=%s\n", seed, kinds)
	for _, v := range rep.Violations {
		detail := v.Detail
		if i := strings.IndexByte(detail, '\n'); i >= 0 {
			detail = detail[:i] + " ..."
		}
		fmt.Fprintf(&b, "# %s\n", Violation{Kind: v.Kind, Mode: v.Mode, Variant: v.Variant, Detail: detail})
	}
	b.WriteString(eqn.WriteString(rep.Design))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
