package diffcheck

import (
	"gfmap/internal/bexpr"
	"gfmap/internal/network"
)

// Predicate reports whether a candidate design still exhibits the failure
// being minimised (typically: Check still reports a violation of the same
// kind). Minimize only keeps reductions for which the predicate stays
// true, so the final design is a 1-minimal reproducer with respect to the
// reduction moves.
type Predicate func(*network.Network) bool

// Minimize shrinks a failing design while the predicate keeps failing.
// Reduction moves, applied greedily to a fixed point:
//
//   - drop a primary output (and everything only it reaches),
//   - replace a node's expression by one of its immediate subexpressions,
//   - replace a node's expression by one of its fanin signals (bypass),
//
// budget bounds the number of predicate evaluations (each one typically
// re-runs the full differential matrix); <= 0 means 400. The input
// network is never modified; the returned network always satisfies the
// predicate (at worst it is the input itself).
func Minimize(net *network.Network, fails Predicate, budget int) *network.Network {
	if budget <= 0 {
		budget = 400
	}
	cur := net
	evals := 0
	try := func(cand *network.Network) bool {
		if cand == nil || evals >= budget {
			return false
		}
		evals++
		if cand.Validate() != nil {
			return false
		}
		return fails(cand)
	}
	for {
		improved := false

		// Drop outputs, largest reduction first.
		if len(cur.Outputs) > 1 {
			for i := 0; i < len(cur.Outputs); i++ {
				cand := rebuildWithout(cur, cur.Outputs[i])
				if try(cand) {
					cur = cand
					improved = true
					break
				}
			}
		}

		// Simplify node expressions.
		if !improved {
		nodes:
			for _, name := range cur.NodeNames() {
				node := cur.Node(name)
				for _, alt := range simplifications(node.Expr) {
					cand := rebuildReplacing(cur, name, alt)
					if try(cand) {
						cur = cand
						improved = true
						break nodes
					}
				}
			}
		}

		if !improved || evals >= budget {
			return cur
		}
	}
}

// simplifications yields strictly smaller candidate replacements for an
// expression, in decreasing aggressiveness: each distinct fanin variable
// first (maximal shrink), then each immediate subexpression.
func simplifications(e *bexpr.Expr) []*bexpr.Expr {
	var out []*bexpr.Expr
	if e.Op == bexpr.OpVar || e.Op == bexpr.OpConst {
		return nil
	}
	for _, v := range e.CollectVars(nil) {
		out = append(out, bexpr.Var(v))
	}
	for _, k := range e.Kids {
		out = append(out, k.Clone())
	}
	return out
}

// rebuildWithout rebuilds the network without the given output, dropping
// nodes and inputs nothing references any more.
func rebuildWithout(net *network.Network, dropOut string) *network.Network {
	outs := make([]string, 0, len(net.Outputs)-1)
	for _, o := range net.Outputs {
		if o != dropOut {
			outs = append(outs, o)
		}
	}
	return rebuild(net, outs, "", nil)
}

// rebuildReplacing rebuilds the network with one node's expression
// replaced, then garbage-collects.
func rebuildReplacing(net *network.Network, name string, expr *bexpr.Expr) *network.Network {
	return rebuild(net, net.Outputs, name, expr)
}

// rebuild clones the live part of a network: only nodes (and inputs)
// reachable from the kept outputs survive. replaceName/replaceExpr
// optionally substitute one node's expression before the reachability
// walk. Returns nil when nothing would remain.
func rebuild(net *network.Network, outputs []string, replaceName string, replaceExpr *bexpr.Expr) *network.Network {
	if len(outputs) == 0 {
		return nil
	}
	exprOf := func(name string) *bexpr.Expr {
		if name == replaceName {
			return replaceExpr
		}
		node := net.Node(name)
		if node == nil {
			return nil
		}
		return node.Expr
	}
	// Reachability from the kept outputs.
	live := make(map[string]bool)
	var visit func(string)
	visit = func(sig string) {
		if live[sig] {
			return
		}
		live[sig] = true
		if e := exprOf(sig); e != nil {
			for _, v := range e.CollectVars(nil) {
				visit(v)
			}
		}
	}
	for _, o := range outputs {
		visit(o)
	}

	out := network.New(net.Name)
	for _, in := range net.Inputs {
		if !live[in] {
			continue
		}
		if err := out.AddInput(in); err != nil {
			return nil
		}
	}
	if len(out.Inputs) == 0 {
		return nil
	}
	for _, name := range net.NodeNames() {
		if !live[name] {
			continue
		}
		e := exprOf(name)
		if e == nil {
			return nil
		}
		if err := out.AddNode(name, e.Clone()); err != nil {
			return nil
		}
	}
	for _, o := range outputs {
		if err := out.MarkOutput(o); err != nil {
			return nil
		}
	}
	return out
}
