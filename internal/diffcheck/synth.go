package diffcheck

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/synth"
)

// KindSynth: the spec→silicon pipeline violated its contract — the dsim
// evidence reports a glitch or an unsettled output, or evidence differs
// across option variants.
const KindSynth = "synth"

// MachineConfig sizes GenerateMachine. The zero value gets defaults small
// enough that inputs + one-hot state bits stay under the synthesis
// variable bound with room to spare.
type MachineConfig struct {
	// Inputs is the number of machine input signals; 0 means 3.
	Inputs int
	// Outputs is the number of machine output signals; 0 means 2.
	Outputs int
	// Length is the number of main-walk steps before the machine closes
	// back to its initial state; 0 means 4.
	Length int
	// MaxBurst bounds the signals per input burst; 0 means 2.
	MaxBurst int
	// BranchEvery forks a two-way branch (two edges with disjoint input
	// bursts, remerging one state later) every k-th step; 0 means 3,
	// negative disables branching.
	BranchEvery int
}

func (c MachineConfig) withDefaults() MachineConfig {
	if c.Inputs == 0 {
		c.Inputs = 3
	}
	if c.Outputs == 0 {
		c.Outputs = 2
	}
	if c.Length == 0 {
		c.Length = 4
	}
	if c.MaxBurst == 0 {
		c.MaxBurst = 2
	}
	if c.BranchEvery == 0 {
		c.BranchEvery = 3
	}
	return c
}

// GenerateMachine builds a seeded random burst-mode machine that is valid
// by construction: a random walk over fresh states with occasional
// two-way branches that remerge, closed back to the initial state so
// every signal returns to its reset value. Branch bursts are disjoint
// (the maximal set property) and every state is entered with one
// consistent signal vector. Same seed, same machine.
func GenerateMachine(seed uint64, cfg MachineConfig) *bmspec.Machine {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(int64(seed)))
	m := &bmspec.Machine{
		Name:       fmt.Sprintf("bm%d", seed),
		Initial:    "s0",
		InitialIn:  map[string]bool{},
		InitialOut: map[string]bool{},
	}
	for i := 0; i < cfg.Inputs; i++ {
		name := fmt.Sprintf("x%d", i)
		m.Inputs = append(m.Inputs, name)
		m.InitialIn[name] = rng.Intn(2) == 0
	}
	for i := 0; i < cfg.Outputs; i++ {
		name := fmt.Sprintf("z%d", i)
		m.Outputs = append(m.Outputs, name)
		m.InitialOut[name] = rng.Intn(2) == 0
	}

	in := copyVec(m.InitialIn)
	out := copyVec(m.InitialOut)
	state := "s0"
	nstates := 1
	fresh := func() string { s := fmt.Sprintf("s%d", nstates); nstates++; return s }

	// toggle flips k randomly chosen signals not in avoid, mutating vec,
	// and returns the burst that performs the flips.
	toggle := func(vec map[string]bool, names []string, k int, avoid map[string]bool) bmspec.Burst {
		var b bmspec.Burst
		picked := 0
		for _, idx := range rng.Perm(len(names)) {
			if picked == k {
				break
			}
			s := names[idx]
			if avoid != nil && avoid[s] {
				continue
			}
			if vec[s] {
				b.Fall = append(b.Fall, s)
			} else {
				b.Rise = append(b.Rise, s)
			}
			vec[s] = !vec[s]
			picked++
		}
		sort.Strings(b.Rise)
		sort.Strings(b.Fall)
		return b
	}
	// burstTo toggles vec to match target, returning the burst.
	burstTo := func(vec, target map[string]bool, names []string) bmspec.Burst {
		var b bmspec.Burst
		for _, s := range names {
			if vec[s] == target[s] {
				continue
			}
			if vec[s] {
				b.Fall = append(b.Fall, s)
			} else {
				b.Rise = append(b.Rise, s)
			}
			vec[s] = target[s]
		}
		sort.Strings(b.Rise)
		sort.Strings(b.Fall)
		return b
	}

	for step := 0; step < cfg.Length; step++ {
		branch := cfg.BranchEvery > 0 && step%cfg.BranchEvery == cfg.BranchEvery-1 && cfg.Inputs >= 2
		if !branch {
			k := 1 + rng.Intn(min(cfg.MaxBurst, cfg.Inputs))
			next := fresh()
			ib := toggle(in, m.Inputs, k, nil)
			ob := toggle(out, m.Outputs, rng.Intn(cfg.Outputs+1), nil)
			m.Edges = append(m.Edges, bmspec.Edge{From: state, To: next, In: ib, Out: ob})
			state = next
			continue
		}
		// Fork: from the current state, burst A leads to P (where the walk
		// continues) and a disjoint burst B leads to Q; Q remerges into P
		// by undoing B and applying A, with outputs fixed up to match.
		kA := 1 + rng.Intn(min(cfg.MaxBurst, cfg.Inputs-1))
		kB := 1 + rng.Intn(min(cfg.MaxBurst, cfg.Inputs-kA))
		inA, inB := copyVec(in), copyVec(in)
		outA, outB := copyVec(out), copyVec(out)
		burstA := toggle(inA, m.Inputs, kA, nil)
		burstB := toggle(inB, m.Inputs, kB, burstA.Signals())
		obA := toggle(outA, m.Outputs, rng.Intn(cfg.Outputs+1), nil)
		obB := toggle(outB, m.Outputs, rng.Intn(cfg.Outputs+1), nil)
		p, q := fresh(), fresh()
		m.Edges = append(m.Edges,
			bmspec.Edge{From: state, To: p, In: burstA, Out: obA},
			bmspec.Edge{From: state, To: q, In: burstB, Out: obB},
			bmspec.Edge{From: q, To: p, In: burstTo(inB, inA, m.Inputs), Out: burstTo(outB, outA, m.Outputs)},
		)
		in, out, state = inA, outA, p
	}

	// Close the loop: return every signal to its reset value. The closing
	// input burst must be non-empty, so toggle one input first if the walk
	// happens to sit at the initial input vector already.
	if sameValues(in, m.InitialIn) {
		mid := fresh()
		ib := toggle(in, m.Inputs, 1, nil)
		m.Edges = append(m.Edges, bmspec.Edge{From: state, To: mid, In: ib})
		state = mid
	}
	m.Edges = append(m.Edges, bmspec.Edge{
		From: state, To: "s0",
		In:  burstTo(in, m.InitialIn, m.Inputs),
		Out: burstTo(out, m.InitialOut, m.Outputs),
	})
	return m
}

func copyVec(v map[string]bool) map[string]bool {
	out := make(map[string]bool, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func sameValues(a, b map[string]bool) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SynthOptions configures a differential check of the spec→silicon
// pipeline.
type SynthOptions struct {
	// Lib is the target cell library. Required.
	Lib *library.Library
	// Workers is the parallel worker count tested against the serial
	// baseline; 0 means 4.
	Workers int
	// Trials is the random-delay simulation trials per transition; 0
	// means 3 (kept low: the fuzz loop runs many machines).
	Trials int
	// SkipStoreAxes drops the storecold/storewarm variants.
	SkipStoreAxes bool
}

// synthVariant is one point of the pipeline option matrix. Every variant
// must produce byte-identical netlists AND byte-identical evidence JSON.
type synthVariant struct {
	name string
	opts func(synth.Options) synth.Options
}

func synthMatrix(workers int, store *mapstore.Store) []synthVariant {
	serial := func(o synth.Options) synth.Options { o.Map.Workers = 1; return o }
	vars := []synthVariant{
		{name: "serial", opts: serial},
		{name: "workers", opts: func(o synth.Options) synth.Options { o.Map.Workers = workers; return o }},
		{name: "noarena", opts: func(o synth.Options) synth.Options { o.Map.Workers = 1; o.Map.DisableArenas = true; return o }},
		{name: "rerun", opts: serial},
	}
	if store != nil {
		withStore := func(o synth.Options) synth.Options { o.Map.Workers = 1; o.Map.Store = store; return o }
		vars = append(vars,
			synthVariant{name: "storecold", opts: withStore},
			synthVariant{name: "storewarm", opts: withStore},
		)
	}
	return vars
}

// CheckSynth pushes one machine through the full pipeline across the
// option matrix and asserts its invariants: spec round-trip identity, no
// panics, agreement on failure, byte-identical netlists and evidence
// across variants, functional equivalence of the mapped netlist, and a
// passing hazard-freedom certificate (dsim finds no glitch and every
// output settles — the end-to-end guarantee the synthesis and Theorem
// 3.2 mapping jointly make).
func CheckSynth(m *bmspec.Machine, opts SynthOptions) *Report {
	rep := &Report{}
	if opts.Lib == nil {
		rep.add(KindMapError, "synth", "config", "no library configured")
		return rep
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 3
	}

	// Spec text round trip: Parse(String()) must be identity.
	text := m.String()
	if m2, err := bmspec.ParseString(text); err != nil {
		rep.add(KindRoundTrip, "synth", "bmspec", "generated machine does not re-parse: "+err.Error()+"\n"+text)
		return rep
	} else if m2.String() != text {
		rep.add(KindRoundTrip, "synth", "bmspec", "String→Parse→String is not identity:\n"+text+"\nvs\n"+m2.String())
	}

	cache := hazcache.New(0)
	var store *mapstore.Store
	if !opts.SkipStoreAxes {
		store = mapstore.NewMemory(0)
	}

	type synthOutcome struct {
		variant synthVariant
		res     *synth.Result
		err     error
	}
	vars := synthMatrix(workers, store)
	outs := make([]synthOutcome, 0, len(vars))
	for _, v := range vars {
		o := v.opts(synth.Options{
			Library: opts.Lib,
			Trials:  trials,
			Map:     core.Options{HazardCache: cache},
		})
		res, err := safeSynth(m, o)
		if err != nil && isInternal(err) {
			rep.add(KindPanic, "synth", v.name, err.Error())
		}
		outs = append(outs, synthOutcome{variant: v, res: res, err: err})
	}

	baseline := outs[0]
	if baseline.err != nil {
		// Machines the pipeline genuinely cannot realise are not
		// violations as long as every variant agrees on the failure.
		for _, o := range outs[1:] {
			if o.err == nil {
				rep.add(KindMapError, "synth", o.variant.name,
					"baseline failed ("+baseline.err.Error()+") but variant succeeded")
			} else if o.err.Error() != baseline.err.Error() {
				rep.add(KindMapError, "synth", o.variant.name,
					"error mismatch: "+o.err.Error()+" vs baseline "+baseline.err.Error())
			}
		}
		return rep
	}
	rep.Design = baseline.res.Synthesis.Net
	rep.MappedModes = append(rep.MappedModes, "synth")

	baseNL := baseline.res.Mapped.Netlist.String()
	baseEV := marshalEvidence(baseline.res.Evidence)
	for _, o := range outs[1:] {
		if o.err != nil {
			rep.add(KindMapError, "synth", o.variant.name, "baseline succeeded but variant failed: "+o.err.Error())
			continue
		}
		if nl := o.res.Mapped.Netlist.String(); nl != baseNL {
			rep.add(KindByteIdentity, "synth", o.variant.name, "netlist differs from serial baseline:\n"+nl+"\nvs\n"+baseNL)
		}
		if ev := marshalEvidence(o.res.Evidence); ev != baseEV {
			rep.add(KindSynth, "synth", o.variant.name, "evidence differs from serial baseline:\n"+ev+"\nvs\n"+baseEV)
		}
	}

	checkWellFormed(baseline.res.Mapped, baseline.res.Synthesis.Net, "synth", rep)
	if err := core.VerifyEquivalence(baseline.res.Synthesis.Net, baseline.res.Mapped.Netlist); err != nil {
		rep.add(KindEquivalence, "synth", "serial", err.Error())
	}
	if ev := baseline.res.Evidence; !ev.HazardFree || !ev.Settled {
		rep.add(KindSynth, "synth", "serial",
			fmt.Sprintf("hazard-freedom certificate failed (hazard_free=%v settled=%v):\n%s",
				ev.HazardFree, ev.Settled, baseEV))
	}
	return rep
}

func safeSynth(m *bmspec.Machine, o synth.Options) (res *synth.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic in pipeline: %v", core.ErrInternal, r)
		}
	}()
	return synth.RunMachine(context.Background(), m, o)
}

func isInternal(err error) bool {
	return errors.Is(err, core.ErrInternal)
}

func marshalEvidence(ev *synth.Evidence) string {
	b, err := json.Marshal(ev)
	if err != nil {
		return "unmarshalable evidence: " + err.Error()
	}
	return string(b)
}

// WriteMachineReproducer writes a failing machine to dir as a .bm spec
// with a comment header describing the violations, returning the path.
// `gfmfuzz -replay` re-checks .bm files through CheckSynth.
func WriteMachineReproducer(dir string, seed uint64, m *bmspec.Machine, rep *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	kinds := strings.Join(rep.Kinds(), "+")
	if kinds == "" {
		kinds = "unknown"
	}
	name := fmt.Sprintf("seed%d_%s.bm", seed, strings.ReplaceAll(kinds, "-", ""))
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# gfmfuzz -synth reproducer: seed=%d kinds=%s\n", seed, kinds)
	for _, v := range rep.Violations {
		detail := v.Detail
		if i := strings.IndexByte(detail, '\n'); i >= 0 {
			detail = detail[:i] + " ..."
		}
		fmt.Fprintf(&b, "# %s\n", Violation{Kind: v.Kind, Mode: v.Mode, Variant: v.Variant, Detail: detail})
	}
	b.WriteString(m.String())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
