package diffcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gfmap/internal/bmspec"
	"gfmap/internal/library"
)

// Every generated machine must be valid by construction and re-parse to
// the identical spec text.
func TestGenerateMachineValid(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		m := GenerateMachine(seed, MachineConfig{})
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: generated machine invalid: %v\n%s", seed, err, m.String())
		}
		text := m.String()
		m2, err := bmspec.ParseString(text)
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, text)
		}
		if m2.String() != text {
			t.Fatalf("seed %d: round trip not identity", seed)
		}
	}
}

func TestGenerateMachineDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a := GenerateMachine(seed, MachineConfig{}).String()
		b := GenerateMachine(seed, MachineConfig{}).String()
		if a != b {
			t.Fatalf("seed %d: generator not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// The pipeline-oracle differential test of the issue: every
// Synthesize+Minimize+Map output over fuzzed machines must simulate
// hazard-free in dsim, byte-identical across the option matrix.
func TestCheckSynthFuzzedMachines(t *testing.T) {
	lib, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	opts := SynthOptions{Lib: lib}
	mapped := 0
	for seed := uint64(1); seed <= 12; seed++ {
		m := GenerateMachine(seed, MachineConfig{})
		rep := CheckSynth(m, opts)
		if rep.Failed() {
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v.String())
			}
			t.Fatalf("seed %d machine:\n%s", seed, m.String())
		}
		mapped += len(rep.MappedModes)
	}
	if mapped == 0 {
		t.Fatal("no generated machine made it through the pipeline")
	}
}

func TestWriteMachineReproducer(t *testing.T) {
	dir := t.TempDir()
	m := GenerateMachine(3, MachineConfig{})
	rep := &Report{}
	rep.add(KindSynth, "synth", "serial", "hazard-freedom certificate failed\nmore detail")
	path, err := WriteMachineReproducer(dir, 3, m, rep)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Ext(path) != ".bm" {
		t.Fatalf("unexpected path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "kinds=synth") {
		t.Errorf("header missing kinds: %s", data)
	}
	// The reproducer must re-parse despite the comment header.
	if _, err := bmspec.ParseString(string(data)); err != nil {
		t.Fatalf("reproducer does not re-parse: %v\n%s", err, data)
	}
}
