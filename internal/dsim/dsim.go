// Package dsim is an event-driven delay simulator for combinational logic
// networks under the asynchronous hazard model: every gate has a
// propagation delay and every input *path* into a gate (each leaf
// occurrence of a signal in the gate's Boolean factored form) has its own
// wire delay. Pulses propagate unattenuated (transport delay), matching
// the conservative arbitrary-delay assumption under which the paper's
// hazard analysis is exact.
//
// The simulator turns hazard predictions into observable waveforms: a
// static logic hazard exists iff some assignment of delays makes the
// output glitch during the transition, and the tests use dsim to exhibit
// such assignments for predicted hazards and to confirm their absence on
// hazard-free structures.
package dsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"gfmap/internal/bexpr"
	"gfmap/internal/network"
)

// Circuit is a simulatable elaboration of a combinational network: each
// internal node is a gate evaluating its expression; each leaf occurrence
// of a fanin is an independently delayed path.
type Circuit struct {
	net   *network.Network
	order []string
	gates map[string]*gate
	// readers maps a signal to the gate input paths it drives.
	readers map[string][]pathRef
}

type gate struct {
	name    string
	expr    *bexpr.Expr
	leafSig []string // signal of each leaf, DFS order
}

// pendingOut tracks each gate's single in-flight output event under the
// inertial model.
type pendingOut struct {
	epoch int
	time  float64
	value bool
}

type pathRef struct {
	gate string
	leaf int
}

// Delays assigns a delay to every gate and every input path. Zero values
// are valid (zero delay).
type Delays struct {
	Gate map[string]float64
	// Path is keyed by gate name; the slice is indexed by leaf position.
	Path map[string][]float64
	// Inertial switches the gate model from transport delay (every pulse
	// propagates — the conservative model under which the hazard analysis
	// is exact) to inertial delay (a gate swallows pulses shorter than its
	// own delay, as real gates with output capacitance do). Inertial
	// filtering can HIDE hazards, which is precisely why the paper's
	// analysis must not rely on it.
	Inertial bool
}

// New elaborates a network for simulation.
func New(net *network.Network) (*Circuit, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := &Circuit{
		net:     net,
		order:   order,
		gates:   make(map[string]*gate, len(order)),
		readers: make(map[string][]pathRef),
	}
	for _, name := range order {
		node := net.Node(name)
		g := &gate{name: name, expr: node.Expr}
		var walk func(e *bexpr.Expr)
		walk = func(e *bexpr.Expr) {
			if e.Op == bexpr.OpVar {
				leaf := len(g.leafSig)
				g.leafSig = append(g.leafSig, e.Name)
				c.readers[e.Name] = append(c.readers[e.Name], pathRef{gate: name, leaf: leaf})
				return
			}
			for _, k := range e.Kids {
				walk(k)
			}
		}
		walk(node.Expr)
		c.gates[name] = g
	}
	return c, nil
}

// UnitDelays assigns delay 1 to every gate and 0 to every path.
func (c *Circuit) UnitDelays() Delays {
	d := Delays{Gate: map[string]float64{}, Path: map[string][]float64{}}
	for name, g := range c.gates {
		d.Gate[name] = 1
		d.Path[name] = make([]float64, len(g.leafSig))
	}
	return d
}

// RandomDelays draws gate delays from (0.5, 1.5) and path delays from
// (0, 1), reproducibly from the given source.
func (c *Circuit) RandomDelays(rng *rand.Rand) Delays {
	d := Delays{Gate: map[string]float64{}, Path: map[string][]float64{}}
	for _, name := range c.order {
		g := c.gates[name]
		d.Gate[name] = 0.5 + rng.Float64()
		p := make([]float64, len(g.leafSig))
		for i := range p {
			p[i] = rng.Float64()
		}
		d.Path[name] = p
	}
	return d
}

// InputChange schedules one primary-input edge.
type InputChange struct {
	Signal string
	Time   float64
	Value  bool
}

// Waveform is the time-ordered sequence of value changes of one signal,
// including its initial value at time 0.
type Waveform []struct {
	Time  float64
	Value bool
}

// Transitions counts the value changes after time 0.
func (w Waveform) Transitions() int {
	n := 0
	for i := 1; i < len(w); i++ {
		if w[i].Value != w[i-1].Value {
			n++
		}
	}
	return n
}

// Final returns the last value.
func (w Waveform) Final() bool {
	if len(w) == 0 {
		return false
	}
	return w[len(w)-1].Value
}

// Trace is the result of a simulation run.
type Trace struct {
	Waves map[string]Waveform
}

// Glitched reports whether the signal changed more often than a clean
// transition between its initial and final value allows.
func (t *Trace) Glitched(signal string) bool {
	w := t.Waves[signal]
	if len(w) == 0 {
		return false
	}
	expected := 0
	if w[0].Value != w.Final() {
		expected = 1
	}
	return w.Transitions() > expected
}

// event is a scheduled simulation event.
type event struct {
	time float64
	seq  int
	// kind: 0 = signal value change, 1 = path arrival at a gate leaf.
	kind   int
	signal string
	value  bool
	path   pathRef
	// inertial output events carry the scheduling epoch so cancelled ones
	// can be recognised and dropped.
	inertial bool
	epoch    int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Run simulates the circuit: the network is settled at the initial input
// assignment, the given input changes are applied, and events are
// processed until quiescence (bounded by maxEvents to guard against
// runaway oscillation, which cannot occur in a combinational circuit).
func (c *Circuit) Run(initial map[string]bool, changes []InputChange, d Delays) (*Trace, error) {
	// Settle: compute stable initial values.
	vals, err := c.net.Eval(initial)
	if err != nil {
		return nil, err
	}
	// Per-gate leaf views start at the stable values.
	views := make(map[string][]bool, len(c.gates))
	outVal := make(map[string]bool, len(c.gates))
	for _, name := range c.order {
		g := c.gates[name]
		v := make([]bool, len(g.leafSig))
		for i, sig := range g.leafSig {
			v[i] = vals[sig]
		}
		views[name] = v
		outVal[name] = evalLeaves(g.expr, v)
	}
	trace := &Trace{Waves: map[string]Waveform{}}
	record := func(sig string, t float64, v bool) {
		w := trace.Waves[sig]
		if len(w) > 0 && w[len(w)-1].Value == v {
			return
		}
		trace.Waves[sig] = append(w, struct {
			Time  float64
			Value bool
		}{t, v})
	}
	for sig, v := range vals {
		record(sig, 0, v)
	}

	var q eventQueue
	seq := 0
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&q, e)
	}
	pending := make(map[string]*pendingOut) // inertial mode bookkeeping
	for _, ch := range changes {
		if !c.net.IsInput(ch.Signal) {
			return nil, fmt.Errorf("dsim: %q is not a primary input", ch.Signal)
		}
		push(&event{time: ch.Time, kind: 0, signal: ch.Signal, value: ch.Value})
	}

	const maxEvents = 1 << 20
	processed := 0
	cur := make(map[string]bool, len(vals))
	for k, v := range vals {
		cur[k] = v
	}
	for q.Len() > 0 {
		processed++
		if processed > maxEvents {
			return nil, fmt.Errorf("dsim: event budget exhausted (oscillation?)")
		}
		e := heap.Pop(&q).(*event)
		switch e.kind {
		case 0: // signal change
			if e.inertial {
				p := pending[e.signal]
				if p == nil || p.epoch != e.epoch {
					continue // cancelled by a newer inertial evaluation
				}
			}
			if cur[e.signal] == e.value {
				continue
			}
			cur[e.signal] = e.value
			record(e.signal, e.time, e.value)
			for _, pr := range c.readers[e.signal] {
				wire := 0.0
				if p := d.Path[pr.gate]; pr.leaf < len(p) {
					wire = p[pr.leaf]
				}
				push(&event{time: e.time + wire, kind: 1, path: pr, value: e.value})
			}
		case 1: // path arrival: update the gate's view, schedule its output
			g := c.gates[e.path.gate]
			view := views[g.name]
			if view[e.path.leaf] == e.value {
				continue
			}
			view[e.path.leaf] = e.value
			out := evalLeaves(g.expr, view)
			gd := d.Gate[g.name]
			if !d.Inertial {
				// Transport delay: schedule the computed value
				// unconditionally; the signal-change handler drops no-ops
				// in arrival order.
				push(&event{time: e.time + gd, kind: 0, signal: g.name, value: out})
				continue
			}
			// Inertial delay: a gate holds at most one in-flight output
			// event; recomputing before it fires replaces it, so pulses
			// shorter than the gate delay are swallowed.
			p := pending[g.name]
			if p != nil && p.time > e.time {
				// Cancel the unfired event by bumping the epoch.
				p.epoch++
				p.time = e.time + gd
				p.value = out
				push(&event{time: p.time, kind: 0, signal: g.name, value: out, epoch: p.epoch, inertial: true})
				continue
			}
			np := &pendingOut{time: e.time + gd, value: out}
			if p != nil {
				np.epoch = p.epoch + 1
			}
			pending[g.name] = np
			push(&event{time: np.time, kind: 0, signal: g.name, value: out, epoch: np.epoch, inertial: true})
		}
	}
	return trace, nil
}

func evalLeaves(root *bexpr.Expr, leaves []bool) bool {
	idx := 0
	var rec func(e *bexpr.Expr) bool
	rec = func(e *bexpr.Expr) bool {
		switch e.Op {
		case bexpr.OpConst:
			return e.Val
		case bexpr.OpVar:
			v := leaves[idx]
			idx++
			return v
		case bexpr.OpNot:
			return !rec(e.Kids[0])
		case bexpr.OpAnd:
			out := true
			for _, k := range e.Kids {
				if !rec(k) {
					out = false
				}
			}
			return out
		case bexpr.OpOr:
			out := false
			for _, k := range e.Kids {
				if rec(k) {
					out = true
				}
			}
			return out
		}
		panic("dsim: bad op")
	}
	return rec(root)
}

// HuntGlitch searches for a delay assignment under which the given output
// glitches during the simultaneous multi-input change from the initial
// assignment to the new input values. It tries the canonical orderings
// first (path delays realising each sampled permutation of the changing
// paths) and then random assignments, returning the first glitching trace.
func (c *Circuit) HuntGlitch(initial map[string]bool, final map[string]bool, output string, rng *rand.Rand, tries int) (*Trace, Delays, bool, error) {
	var changes []InputChange
	var changing []string
	for sig, v := range final {
		if initial[sig] != v {
			changing = append(changing, sig)
			changes = append(changes, InputChange{Signal: sig, Time: 1, Value: v})
		}
	}
	sort.Strings(changing)
	for i := 0; i < tries; i++ {
		d := c.RandomDelays(rng)
		trace, err := c.Run(initial, changes, d)
		if err != nil {
			return nil, Delays{}, false, err
		}
		if trace.Glitched(output) {
			return trace, d, true, nil
		}
	}
	return nil, Delays{}, false, nil
}
