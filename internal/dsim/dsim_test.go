package dsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/network"
)

func singleNodeNet(t testing.TB, expr string, vars []string) *network.Network {
	t.Helper()
	n := network.New("t")
	for _, v := range vars {
		if err := n.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	e, err := bexpr.ParseExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("f", e); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestMuxGlitchExhibited: the classic mux static-1 hazard (select change
// with both data inputs 1) is observable as a real waveform glitch under a
// concrete delay assignment.
func TestMuxGlitchExhibited(t *testing.T) {
	net := singleNodeNet(t, "s'*a + s*b", []string{"s", "a", "b"})
	c, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	// Make the s' path fast and the s path slow: the s'*a term dies before
	// the s*b term takes over.
	d := c.UnitDelays()
	g := c.gates["f"] // leaves: s, a, s, b
	d.Path["f"] = []float64{0.1, 0, 2.0, 0}
	_ = g
	trace, err := c.Run(
		map[string]bool{"s": false, "a": true, "b": true},
		[]InputChange{{Signal: "s", Time: 1, Value: true}},
		d,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Glitched("f") {
		t.Errorf("expected a static-1 glitch on f; waveform: %v", trace.Waves["f"])
	}
	if !trace.Waves["f"].Final() {
		t.Error("output must settle at 1")
	}
	// The consensus-completed mux never glitches on this transition, for
	// any of many random delay assignments.
	netFixed := singleNodeNet(t, "s'*a + s*b + a*b", []string{"s", "a", "b"})
	cf, err := New(netFixed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		trace, err := cf.Run(
			map[string]bool{"s": false, "a": true, "b": true},
			[]InputChange{{Signal: "s", Time: 1, Value: true}},
			cf.RandomDelays(rng),
		)
		if err != nil {
			t.Fatal(err)
		}
		if trace.Glitched("f") {
			t.Fatalf("hazard-free mux glitched under delays (iter %d): %v", i, trace.Waves["f"])
		}
	}
}

// TestHuntGlitchMatchesAnalysis is the operational-correspondence test:
// for random 3-variable structures and random transitions, the exact
// hazard analysis predicts a glitch iff the delay simulator can exhibit
// one (sampling 400 random delay assignments; at 3 variables the changing
// path count is small, so sampling covers all arrival orders with
// overwhelming probability).
func TestHuntGlitchMatchesAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"a", "b", "c"}
	structures := []string{
		"a*b + a'*c",
		"a*b + a'*c + b*c",
		"(a + b)*(a' + c)",
		"a*c + b*c",
		"(a + b)*c",
		"a*b' + a'*b",
	}
	for _, expr := range structures {
		fn, err := bexpr.NewWithVars(bexpr.MustParseExpr(expr), vars)
		if err != nil {
			t.Fatal(err)
		}
		net := singleNodeNet(t, expr, vars)
		c, err := New(net)
		if err != nil {
			t.Fatal(err)
		}
		for from := uint64(0); from < 8; from++ {
			for to := uint64(0); to < 8; to++ {
				if from == to {
					continue
				}
				// Only check logic-hazard predictions (function-hazardous
				// transitions glitch in any implementation; skip them).
				kind, predicted, classifiable := classify(t, fn, from, to)
				if !classifiable {
					continue
				}
				initial := pointToMap(vars, from)
				final := pointToMap(vars, to)
				_, _, found, err := c.HuntGlitch(initial, final, "f", rng, 400)
				if err != nil {
					t.Fatal(err)
				}
				if found != predicted {
					t.Errorf("%s: transition %03b->%03b (%v): analysis=%v simulator=%v",
						expr, from, to, kind, predicted, found)
				}
			}
		}
	}
}

func classify(t *testing.T, fn *bexpr.Function, a, b uint64) (hazard.Kind, bool, bool) {
	t.Helper()
	sim, err := hazard.NewSimulator(fn)
	if err != nil {
		t.Fatal(err)
	}
	kind, hazardous, err := sim.Classify(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Distinguish "not hazardous because clean" from "not classifiable
	// because function-hazardous": recompute the function-hazard condition.
	fa, fb := fn.Eval(a), fn.Eval(b)
	fmc := functionChanges(fn, a, b)
	if fa == fb && fmc > 0 {
		return kind, false, false
	}
	if fa != fb && fmc > 1 {
		return kind, false, false
	}
	return kind, hazardous, true
}

// functionChanges: max output changes along monotone variable orders,
// brute-forced for 3 variables.
func functionChanges(fn *bexpr.Function, a, b uint64) int {
	changing := a ^ b
	var vars []uint64
	for i := 0; i < fn.NumVars(); i++ {
		if changing&(1<<uint(i)) != 0 {
			vars = append(vars, 1<<uint(i))
		}
	}
	best := 0
	var rec func(cur uint64, remaining []uint64, last bool, changes int)
	rec = func(cur uint64, remaining []uint64, last bool, changes int) {
		if len(remaining) == 0 {
			if changes > best {
				best = changes
			}
			return
		}
		for i, v := range remaining {
			next := (cur &^ v) | (b & v)
			nv := fn.Eval(next)
			rest := append(append([]uint64{}, remaining[:i]...), remaining[i+1:]...)
			d := changes
			if nv != last {
				d++
			}
			rec(next, rest, nv, d)
		}
	}
	rec(a, vars, fn.Eval(a), 0)
	return best
}

func pointToMap(vars []string, p uint64) map[string]bool {
	m := map[string]bool{}
	for i, v := range vars {
		m[v] = p&(1<<uint(i)) != 0
	}
	return m
}

// TestMultiGateNetwork simulates a two-gate network and checks waveforms
// propagate through internal signals with accumulated delay.
func TestMultiGateNetwork(t *testing.T) {
	n := network.New("chain")
	for _, v := range []string{"a", "b"} {
		if err := n.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddNode("u", bexpr.MustParseExpr("a*b")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("f", bexpr.MustParseExpr("u'")); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	d := c.UnitDelays()
	trace, err := c.Run(
		map[string]bool{"a": true, "b": false},
		[]InputChange{{Signal: "b", Time: 1, Value: true}},
		d,
	)
	if err != nil {
		t.Fatal(err)
	}
	fw := trace.Waves["f"]
	if fw.Final() {
		t.Error("f must settle at 0 (NAND of 1,1)")
	}
	// f should change exactly once, two gate delays after the input edge.
	if fw.Transitions() != 1 {
		t.Errorf("f waveform: %v", fw)
	}
	last := fw[len(fw)-1]
	if last.Time != 3 { // t=1 edge + 1 (u) + 1 (f)
		t.Errorf("f settles at t=%g, want 3", last.Time)
	}
}

// TestRejectsNonInputChange guards the API.
func TestRejectsNonInputChange(t *testing.T) {
	net := singleNodeNet(t, "a'", []string{"a"})
	c, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(map[string]bool{"a": false},
		[]InputChange{{Signal: "f", Time: 1, Value: true}}, c.UnitDelays()); err == nil {
		t.Error("changing a non-input must be rejected")
	}
}

// TestInertialFilteringHidesGlitch: under the inertial gate model a pulse
// shorter than the gate delay is swallowed — the same delay assignment
// that exhibits the mux glitch under transport delay produces a clean
// waveform. This is exactly why the hazard analysis (and the default
// simulation mode) must use the conservative transport model: real timing
// cannot be relied upon to mask a logic hazard.
func TestInertialFilteringHidesGlitch(t *testing.T) {
	net := singleNodeNet(t, "s'*a + s*b", []string{"s", "a", "b"})
	c, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(inertial bool) Delays {
		d := c.UnitDelays()
		d.Gate["f"] = 5.0 // gate delay far wider than the 1.9 pulse below
		d.Path["f"] = []float64{0.1, 0, 2.0, 0}
		d.Inertial = inertial
		return d
	}
	initial := map[string]bool{"s": false, "a": true, "b": true}
	changes := []InputChange{{Signal: "s", Time: 1, Value: true}}

	transport, err := c.Run(initial, changes, mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if !transport.Glitched("f") {
		t.Fatalf("transport model must show the glitch: %v", transport.Waves["f"])
	}
	inertial, err := c.Run(initial, changes, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if inertial.Glitched("f") {
		t.Errorf("inertial model should swallow the short pulse: %v", inertial.Waves["f"])
	}
	if !inertial.Waves["f"].Final() {
		t.Error("output must still settle at 1")
	}
}

// TestWriteVCD: traces dump to parseable VCD with all signals declared and
// time monotonically increasing.
func TestWriteVCD(t *testing.T) {
	net := singleNodeNet(t, "s'*a + s*b", []string{"s", "a", "b"})
	c, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	d := c.UnitDelays()
	d.Path["f"] = []float64{0.1, 0, 2.0, 0}
	trace, err := c.Run(
		map[string]bool{"s": false, "a": true, "b": true},
		[]InputChange{{Signal: "s", Time: 1, Value: true}},
		d,
	)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := trace.WriteVCD(&b, "mux"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"$timescale", "$var wire 1", " f $end", " s $end", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Timestamps monotone.
	lastT := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmt.Sscanf(line, "#%d", &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < lastT {
				t.Fatalf("timestamps not monotone at %q", line)
			}
			lastT = ts
		}
	}
	if lastT <= 0 {
		t.Error("no events dumped")
	}
}
