package dsim

import (
	"fmt"
	"io"
	"sort"
)

// WriteVCD dumps a simulation trace in Value Change Dump format, viewable
// in any waveform viewer (GTKWave etc.). Times are scaled by 1000 (1 unit
// = 1 ps at timescale 1ps) so fractional delays stay visible.
func (t *Trace) WriteVCD(w io.Writer, module string) error {
	signals := make([]string, 0, len(t.Waves))
	for s := range t.Waves {
		signals = append(signals, s)
	}
	sort.Strings(signals)
	if _, err := fmt.Fprintf(w, "$timescale 1ps $end\n$scope module %s $end\n", module); err != nil {
		return err
	}
	ids := make(map[string]string, len(signals))
	for i, s := range signals {
		id := vcdID(i)
		ids[s] = id
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", id, s); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}
	// Merge all events into a single time-ordered stream.
	type ev struct {
		time  float64
		id    string
		value bool
	}
	var evs []ev
	for s, wave := range t.Waves {
		for _, e := range wave {
			evs = append(evs, ev{time: e.Time, id: ids[s], value: e.Value})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].time < evs[j].time })
	// Deduplicate timestamps on the scaled integer value, not the raw
	// float: distinct float times that truncate to the same picosecond
	// (e.g. 0.0001 and 0.0002) must share one '#' record, or the stream
	// contains duplicate timestamps that some viewers reject.
	lastTS := int64(-1)
	for _, e := range evs {
		if ts := int64(e.time * 1000); ts > lastTS {
			if _, err := fmt.Fprintf(w, "#%d\n", ts); err != nil {
				return err
			}
			lastTS = ts
		}
		v := 0
		if e.value {
			v = 1
		}
		if _, err := fmt.Fprintf(w, "%d%s\n", v, e.id); err != nil {
			return err
		}
	}
	return nil
}

// vcdID assigns compact printable VCD identifiers.
func vcdID(i int) string {
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(chars) {
		return string(chars[i])
	}
	return string(chars[i%len(chars)]) + vcdID(i/len(chars)-1)
}
