package dsim

import (
	"strings"
	"testing"
)

// Regression for the fuzzing issue: distinct float event times that
// truncate to the same picosecond used to emit duplicate `#<ps>`
// timestamp records, which waveform viewers reject as non-monotonic. The
// writer must coalesce on the scaled integer time.
func TestWriteVCDCoalescesSubPicosecondDeltas(t *testing.T) {
	tr := &Trace{Waves: map[string]Waveform{
		"a": {{Time: 0, Value: false}, {Time: 0.0001, Value: true}, {Time: 0.0002, Value: false}, {Time: 1.0, Value: true}},
		"b": {{Time: 0.00005, Value: true}, {Time: 1.0004, Value: false}},
	}}
	var sb strings.Builder
	if err := tr.WriteVCD(&sb, "m"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var stamps []int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		var v int64
		for _, c := range line[1:] {
			if c < '0' || c > '9' {
				t.Fatalf("malformed timestamp line %q", line)
			}
			v = v*10 + int64(c-'0')
		}
		stamps = append(stamps, v)
	}
	if len(stamps) == 0 {
		t.Fatalf("no timestamps in output:\n%s", out)
	}
	seen := map[int64]bool{}
	last := int64(-1)
	for _, s := range stamps {
		if seen[s] {
			t.Fatalf("duplicate timestamp #%d in output:\n%s", s, out)
		}
		if s < last {
			t.Fatalf("non-monotonic timestamp #%d after #%d:\n%s", s, last, out)
		}
		seen[s] = true
		last = s
	}
	if stamps[0] != 0 || stamps[len(stamps)-1] != 1000 {
		t.Fatalf("expected stamps #0..#1000, got %v", stamps)
	}
	if len(stamps) != 2 {
		t.Fatalf("expected exactly 2 coalesced timestamps, got %v", stamps)
	}
}
