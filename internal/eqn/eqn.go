// Package eqn reads and writes logic networks in a simple equation format,
// the interchange format between the burst-mode synthesis front end and
// the technology mapper:
//
//	# comment
//	INPUT(a, b, c)
//	OUTPUT(f, g)
//	u = a*b + c;
//	f = u + a'*c;
//	g = u*c;
//
// Expressions use the bexpr grammar; every statement ends with a
// semicolon. INPUT/OUTPUT lines may appear multiple times and need no
// semicolon.
package eqn

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/network"
)

// Parse reads a network from the equation format.
func Parse(r io.Reader, name string) (*network.Network, error) {
	net := network.New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pending strings.Builder
	var outputs []string
	lineNo := 0
	flushEq := func() error {
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt == "" {
			return nil
		}
		eqIdx := strings.IndexByte(stmt, '=')
		if eqIdx < 0 {
			return fmt.Errorf("eqn: line %d: statement %q has no '='", lineNo, stmt)
		}
		lhs := strings.TrimSpace(stmt[:eqIdx])
		if !bexpr.ValidIdent(lhs) {
			return fmt.Errorf("eqn: line %d: signal name %q is not an identifier", lineNo, lhs)
		}
		rhs := strings.TrimSpace(stmt[eqIdx+1:])
		expr, err := bexpr.ParseExpr(rhs)
		if err != nil {
			return fmt.Errorf("eqn: line %d: %w", lineNo, err)
		}
		if err := net.AddNode(lhs, expr); err != nil {
			return fmt.Errorf("eqn: line %d: %w", lineNo, err)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		upper := strings.ToUpper(trimmed)
		switch {
		case pending.Len() == 0 && strings.HasPrefix(upper, "INPUT(") && strings.HasSuffix(trimmed, ")"):
			for _, in := range splitList(trimmed[6 : len(trimmed)-1]) {
				if !bexpr.ValidIdent(in) {
					return nil, fmt.Errorf("eqn: line %d: input name %q is not an identifier", lineNo, in)
				}
				if err := net.AddInput(in); err != nil {
					return nil, fmt.Errorf("eqn: line %d: %w", lineNo, err)
				}
			}
			continue
		case pending.Len() == 0 && strings.HasPrefix(upper, "OUTPUT(") && strings.HasSuffix(trimmed, ")"):
			outputs = append(outputs, splitList(trimmed[7:len(trimmed)-1])...)
			continue
		}
		for {
			semi := strings.IndexByte(line, ';')
			if semi < 0 {
				break
			}
			pending.WriteString(line[:semi])
			if err := flushEq(); err != nil {
				return nil, err
			}
			line = line[semi+1:]
		}
		if strings.TrimSpace(line) != "" {
			pending.WriteString(line)
			pending.WriteByte(' ')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if strings.TrimSpace(pending.String()) != "" {
		return nil, fmt.Errorf("eqn: unterminated equation at end of input")
	}
	for _, o := range outputs {
		if err := net.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// ParseString parses a network from a string.
func ParseString(s, name string) (*network.Network, error) {
	return Parse(strings.NewReader(s), name)
}

// MustParseString is ParseString that panics on error; for embedded
// benchmark circuits.
func MustParseString(s, name string) *network.Network {
	n, err := ParseString(s, name)
	if err != nil {
		panic(err)
	}
	return n
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Write renders a network in the equation format.
func Write(w io.Writer, net *network.Network) error {
	if _, err := fmt.Fprintf(w, "# %s\nINPUT(%s)\nOUTPUT(%s)\n",
		net.Name, strings.Join(net.Inputs, ", "), strings.Join(net.Outputs, ", ")); err != nil {
		return err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return err
	}
	for _, name := range order {
		if _, err := fmt.Fprintf(w, "%s = %s;\n", name, net.Node(name).Expr.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteString renders a network in the equation format.
func WriteString(net *network.Network) string {
	var b strings.Builder
	_ = Write(&b, net)
	return b.String()
}
