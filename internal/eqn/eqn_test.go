package eqn

import (
	"strings"
	"testing"

	"gfmap/internal/network"
)

const sample = `
# a sample network
INPUT(a, b, c)
INPUT(d)
OUTPUT(f, g)
u = a*b + c;
f = u*d';
g = u + a'*d;
`

func TestParse(t *testing.T) {
	net, err := ParseString(sample, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Inputs) != 4 {
		t.Errorf("inputs = %v", net.Inputs)
	}
	if len(net.Outputs) != 2 {
		t.Errorf("outputs = %v", net.Outputs)
	}
	if net.NumNodes() != 3 {
		t.Errorf("nodes = %d", net.NumNodes())
	}
	vals, err := net.Eval(map[string]bool{"a": true, "b": true, "c": false, "d": false})
	if err != nil {
		t.Fatal(err)
	}
	if !vals["f"] || !vals["g"] {
		t.Errorf("evaluation wrong: %v", vals)
	}
}

func TestMultiLineEquation(t *testing.T) {
	src := `
INPUT(a, b)
OUTPUT(f)
f = a*b +
    a'*b' ;
`
	net, err := ParseString(src, "ml")
	if err != nil {
		t.Fatal(err)
	}
	v, err := net.Eval(map[string]bool{"a": false, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if !v["f"] {
		t.Error("XNOR should be 1 at 00")
	}
}

func TestRoundTrip(t *testing.T) {
	net, err := ParseString(sample, "sample")
	if err != nil {
		t.Fatal(err)
	}
	text := WriteString(net)
	net2, err := ParseString(text, "sample")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	eq, err := network.Equivalent(net, net2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("round trip changed the network:\n%s", text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nOUTPUT(f)\nf = a",           // missing semicolon
		"INPUT(a)\nOUTPUT(f)\nf  a;",           // no '='
		"INPUT(a)\nOUTPUT(f)\nf = q;",          // undefined signal
		"INPUT(a)\nOUTPUT(g)\nf = a;",          // undefined output
		"INPUT(a)\nOUTPUT(f)\nf = a;\nf = a';", // duplicate definition
		"INPUT(a)\nOUTPUT(f)\nf = (a;",         // bad expression
	}
	for _, c := range cases {
		if _, err := ParseString(c, "bad"); err == nil {
			t.Errorf("ParseString(%q): want error", c)
		}
	}
}

func TestCommentsAndBlank(t *testing.T) {
	src := "\n# only a comment\nINPUT(a)  # trailing\nOUTPUT(f)\n\nf = a';  # done\n"
	net, err := ParseString(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 1 {
		t.Errorf("nodes = %d", net.NumNodes())
	}
}

func TestWriteIsTopological(t *testing.T) {
	net, _ := ParseString(sample, "s")
	text := WriteString(net)
	uPos := strings.Index(text, "u =")
	fPos := strings.Index(text, "f =")
	if uPos < 0 || fPos < 0 || uPos > fPos {
		t.Errorf("writer must emit fanins first:\n%s", text)
	}
}
