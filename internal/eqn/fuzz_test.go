package eqn

import "testing"

// FuzzParse: the network parser must never panic; accepted networks must
// validate and survive a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("INPUT(a, b)\nOUTPUT(f)\nf = a*b;\n")
	f.Add("INPUT(a)\nOUTPUT(g)\nu = a';\ng = u + a;\n")
	f.Add("# comment\nINPUT(x)\nOUTPUT(y)\ny = x;\n")
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ParseString(src, "fuzz")
		if err != nil {
			return
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		back, err := ParseString(WriteString(net), "fuzz2")
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.NumNodes() != net.NumNodes() {
			t.Fatalf("round trip changed node count")
		}
	})
}
