// Package espresso implements heuristic two-level logic minimisation in
// the style of Espresso's EXPAND / IRREDUNDANT / REDUCE loop. It is the
// logic-optimisation substrate the paper's flow assumes upstream of the
// mapper (MIS for synchronous designs, reference [11]): the technology
// mapper receives already-optimised equations and must not re-optimise
// them — indeed, §3.1.1 shows that exactly this kind of redundancy
// removal, applied during asynchronous mapping, introduces static
// 1-hazards. The package therefore serves the synchronous baseline
// (network.SyncTechDecomp) and general two-level cleanup, never the
// asynchronous path.
package espresso

import (
	"gfmap/internal/cube"
)

// Result carries the minimised cover and loop statistics.
type Result struct {
	Cover      cube.Cover
	Iterations int
}

// Minimize returns a prime and irredundant cover of the incompletely
// specified function (on, dc). The function is preserved exactly on the
// care set: every ON point stays covered, no OFF point becomes covered.
func Minimize(on, dc cube.Cover) (*Result, error) {
	if dc.N == 0 && len(dc.Cubes) == 0 {
		dc = cube.NewCover(on.N)
	}
	off := cube.Or(on, dc).Complement()
	cur := on.Clone()
	cur.Cubes = cube.DedupCubes(cur.Cubes)
	best := cur.Clone()
	bestCost := coverCost(best)

	iters := 0
	for ; iters < 12; iters++ {
		cur = expand(cur, off)
		cur = irredundant(cur, dc)
		cost := coverCost(cur)
		if cost < bestCost {
			best = cur.Clone()
			bestCost = cost
		} else if iters > 0 {
			break
		}
		cur = reduce(cur, dc)
	}
	return &Result{Cover: best, Iterations: iters}, nil
}

// coverCost orders covers by cube count, then literal count.
func coverCost(f cube.Cover) int {
	lits := 0
	for _, c := range f.Cubes {
		lits += c.NumLiterals()
	}
	return len(f.Cubes)*1024 + lits
}

// expand grows each cube to a prime against the OFF-set: a literal may be
// dropped when the expanded cube still avoids every OFF cube. Cubes that
// become single-cube contained in an earlier expansion are dropped
// immediately.
func expand(f, off cube.Cover) cube.Cover {
	out := cube.Cover{N: f.N}
	for _, c := range f.Cubes {
		e := expandCube(c, off)
		if !out.SingleCubeContains(e) {
			out.Add(e)
		}
	}
	// A later expansion may absorb an earlier one.
	return absorb(out)
}

func expandCube(c cube.Cube, off cube.Cover) cube.Cube {
	for _, v := range c.Vars() {
		e := c.WithoutVar(v)
		if !intersectsCover(e, off) {
			c = e
		}
	}
	return c
}

func intersectsCover(c cube.Cube, f cube.Cover) bool {
	for _, d := range f.Cubes {
		if c.Intersects(d) {
			return true
		}
	}
	return false
}

// absorb removes cubes single-cube contained in another cube.
func absorb(f cube.Cover) cube.Cover {
	out := cube.Cover{N: f.N}
	for i, c := range f.Cubes {
		dominated := false
		for j, d := range f.Cubes {
			if i == j {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out.Add(c)
		}
	}
	return out
}

// irredundant removes cubes whose care points are covered by the rest of
// the cover.
func irredundant(f, dc cube.Cover) cube.Cover {
	out := f.Clone()
	for i := 0; i < len(out.Cubes); i++ {
		rest := cube.Cover{N: out.N}
		rest.Cubes = append(rest.Cubes, out.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, out.Cubes[i+1:]...)
		// The cube is redundant when rest ∪ DC covers it.
		restDC := cube.Or(rest, dc)
		if restDC.ContainsCube(out.Cubes[i]) {
			out = rest
			i--
		}
	}
	return out
}

// reduce shrinks each cube to the smallest cube containing the care points
// it alone covers, opening room for a different expansion next round.
func reduce(f, dc cube.Cover) cube.Cover {
	out := f.Clone()
	for i, c := range out.Cubes {
		rest := cube.Cover{N: out.N}
		rest.Cubes = append(rest.Cubes, out.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, out.Cubes[i+1:]...)
		restDC := cube.Or(rest, dc)
		// Residue: the part of c not covered elsewhere = c ∩ ¬restDC.
		notRest := restDC.Complement()
		residue := cube.Cover{N: out.N}
		for _, d := range notRest.Cubes {
			if ic, ok := c.Intersect(d); ok {
				residue.Add(ic)
			}
		}
		if sc, ok := cube.SupercubeOfCover(residue); ok {
			if isc, ok2 := c.Intersect(sc); ok2 {
				out.Cubes[i] = isc
			}
		}
		// If the residue is empty the cube is fully redundant; leave it for
		// irredundant to remove next round.
	}
	return out
}
