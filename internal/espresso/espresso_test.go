package espresso

import (
	"math/rand"
	"testing"

	"gfmap/internal/cube"
)

var abcd = []string{"a", "b", "c", "d"}

func TestMinimizeClassic(t *testing.T) {
	// The redundant consensus cover minimises to two cubes.
	on := cube.MustParseCover("ab + a'c + bc", abcd[:3])
	res, err := Minimize(on, cube.Cover{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover.Cubes) != 2 {
		t.Errorf("got %d cubes (%v), want 2", len(res.Cover.Cubes), res.Cover.StringVars(abcd))
	}
	if !res.Cover.EquivalentTo(on) {
		t.Error("function changed")
	}
}

func TestMinimizeMergesAdjacent(t *testing.T) {
	// Four minterms forming a single cube.
	on := cube.MustParseCover("ab'c'd' + abc'd' + ab'cd' + abcd'", abcd)
	res, err := Minimize(on, cube.Cover{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover.Cubes) != 1 {
		t.Errorf("got %v, want the single cube ad'", res.Cover.StringVars(abcd))
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// f = minterm a'b'; dc = a'b allows the whole cube a'.
	names := []string{"a", "b"}
	on := cube.MustParseCover("a'b'", names)
	dc := cube.MustParseCover("a'b", names)
	res, err := Minimize(on, dc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cover.StringVars(names); got != "a'" {
		t.Errorf("got %q, want a'", got)
	}
}

// TestMinimizeRandomPreservesFunction: on random covers the result is
// functionally identical on the care set and never larger.
func TestMinimizeRandomPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		n := 5
		on := cube.NewCover(n)
		for i := 0; i < 1+rng.Intn(5); i++ {
			used := rng.Uint64() & cube.VarMask(n)
			on.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
		}
		res, err := Minimize(on, cube.Cover{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cover.EquivalentTo(on) {
			t.Fatalf("iter %d: function changed: %v -> %v", iter, on, res.Cover)
		}
		if coverCost(res.Cover) > coverCost(on) {
			t.Fatalf("iter %d: minimisation increased cost", iter)
		}
		// Every result cube is prime and the cover is irredundant.
		for _, c := range res.Cover.Cubes {
			if !res.Cover.IsPrime(c) {
				t.Fatalf("iter %d: non-prime cube %v in result %v", iter, c, res.Cover)
			}
		}
	}
}

// TestMinimizeRandomWithDC: don't-cares may be absorbed but OFF points
// must stay uncovered.
func TestMinimizeRandomWithDC(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 120; iter++ {
		n := 4
		mk := func(k int) cube.Cover {
			f := cube.NewCover(n)
			for i := 0; i < k; i++ {
				used := rng.Uint64() & cube.VarMask(n)
				f.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
			}
			return f
		}
		on := mk(1 + rng.Intn(3))
		dc := mk(rng.Intn(2))
		res, err := Minimize(on, dc)
		if err != nil {
			t.Fatal(err)
		}
		for p := uint64(0); p < 1<<uint(n); p++ {
			switch {
			case dc.Eval(p):
				// Don't-care (overlapping ON∩DC counts as DC): anything goes.
			case on.Eval(p):
				if !res.Cover.Eval(p) {
					t.Fatalf("iter %d: ON point %x uncovered", iter, p)
				}
			default:
				if res.Cover.Eval(p) {
					t.Fatalf("iter %d: OFF point %x covered", iter, p)
				}
			}
		}
	}
}

func BenchmarkMinimize(b *testing.B) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	on := cube.MustParseCover("ab + a'c + bc + de + d'f + ef + ad + b'e'", names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(on, cube.Cover{}); err != nil {
			b.Fatal(err)
		}
	}
}
