// Package fleet distributes opaque HTTP jobs across a set of worker
// endpoints. It is the transport half of asyncmapd's coordinator mode:
// the server decides *what* to shard (designs, cone shards) and how to
// merge; this package decides *where* each job runs and keeps it running.
//
// Dispatch is a work-stealing queue: every worker runs a fixed number of
// runner goroutines that pull jobs from one shared channel, so a slow
// worker naturally takes fewer jobs while fast workers drain the rest.
// Failures (transport errors, 5xx, bodies the caller's Validate rejects)
// are retried a bounded number of times, preferring a worker that has not
// seen the job yet. A job with no reply after HedgeAfter is hedged: a
// duplicate attempt is enqueued and the first byte-valid result wins,
// with the loser's request cancelled through its context. When remote
// attempts are exhausted the job falls back to the caller's Local
// function, so a dispatch always yields exactly one Result per job.
//
// 4xx statuses are *not* failures: they are deterministic outcomes (the
// job itself is unmappable) that every worker would reproduce, so they
// win immediately rather than burning retries.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gfmap/internal/obs"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists the worker base URLs ("http://host:port"); at least
	// one is required.
	Workers []string
	// Client issues the worker requests; nil means a dedicated client
	// with no global timeout (deadlines come from job/dispatch contexts).
	Client *http.Client
	// MaxAttempts bounds remote attempts per job — first try, retries and
	// the hedge all count; 0 means 3. Exhausted jobs run Local.
	MaxAttempts int
	// HedgeAfter is the straggler threshold: a job whose first attempt
	// has produced nothing after this long gets a duplicate attempt
	// enqueued (first valid result wins, the loser is cancelled).
	// 0 means 2s; negative disables hedging.
	HedgeAfter time.Duration
	// PerWorker is how many runner goroutines (hence concurrent requests)
	// serve each worker; 0 means 4.
	PerWorker int
	// MaxBodyBytes caps a worker response body; 0 means 64 MiB.
	MaxBodyBytes int64
	// StatusWindow is the rolling window of the per-worker latency
	// digests; 0 means 60s.
	StatusWindow time.Duration
	// Registry receives the coordinator's metrics (per-worker request /
	// failure / win counters, inflight gauges and rolling latency, plus
	// fleet-wide hedge / retry / fallback counters); nil means a private
	// registry.
	Registry *obs.Registry
	// Validate, when non-nil, decides byte-validity of a non-5xx worker
	// reply. A non-nil error marks the attempt failed (corrupt body) and
	// the job is retried elsewhere. Called off the caller's goroutine.
	Validate func(job Job, status int, body []byte) error
	// Local, when non-nil, runs a job in-process after remote attempts
	// are exhausted — the degradation path that keeps a batch's results
	// deterministic when workers misbehave. Nil means exhausted jobs
	// yield their last error.
	Local func(ctx context.Context, job Job) (status int, body []byte, err error)
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.PerWorker <= 0 {
		c.PerWorker = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.StatusWindow <= 0 {
		c.StatusWindow = time.Minute
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// LocalWorker is the Result.Worker value of a job served by the Local
// fallback rather than a remote worker.
const LocalWorker = "local"

// Job is one unit of dispatch: an opaque JSON payload POSTed to a path
// on whichever worker takes it. Index is the caller's correlation key
// and must be unique within one Do/Go call.
type Job struct {
	Index int
	// Path is the worker-relative URL ("/map", "/map/cones").
	Path string
	// Body is POSTed verbatim as application/json.
	Body []byte
	// Header holds extra request headers (e.g. X-Request-ID propagation).
	Header http.Header
	// Timeout bounds each individual attempt; 0 means the attempt runs
	// under the dispatch context's own deadline only. The per-job ctx is
	// always a child of the dispatch ctx, so the request deadline caps
	// every shard either way.
	Timeout time.Duration
}

// Result is one job's outcome: the winning worker's reply (Status, Body,
// Worker), or the Local fallback's (Worker == LocalWorker), or Err when
// everything failed. Status below 500 with nil Err is a valid outcome —
// including 4xx, which are deterministic job-level errors, not worker
// failures.
type Result struct {
	Index    int
	Status   int
	Body     []byte
	Worker   string
	Attempts int
	Hedged   bool
	Err      error
}

// WorkerStatus is one worker's live view for /statusz.
type WorkerStatus struct {
	URL              string  `json:"url"`
	Healthy          bool    `json:"healthy"`
	Inflight         int64   `json:"inflight"`
	Requests         uint64  `json:"requests"`
	Failures         uint64  `json:"failures"`
	Wins             uint64  `json:"wins"`
	ConsecutiveFails int64   `json:"consecutive_failures"`
	LastError        string  `json:"last_error,omitempty"`
	P50MS            float64 `json:"p50_ms"`
	P90MS            float64 `json:"p90_ms"`
	P99MS            float64 `json:"p99_ms"`
}

// Status is the coordinator's live view.
type Status struct {
	Workers        []WorkerStatus `json:"workers"`
	Hedges         uint64         `json:"hedges"`
	Retries        uint64         `json:"retries"`
	LocalFallbacks uint64         `json:"local_fallbacks"`
}

// worker is the per-endpoint long-lived state.
type worker struct {
	url      string
	inflight atomic.Int64
	consec   atomic.Int64 // consecutive failures; 0 = healthy

	requests *obs.Counter
	failures *obs.Counter
	wins     *obs.Counter
	infGauge *obs.Gauge
	seconds  *obs.RollingHistogram

	mu      sync.Mutex
	lastErr string
}

func (w *worker) fail(err error) {
	w.failures.Inc()
	w.consec.Add(1)
	w.mu.Lock()
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *worker) ok() {
	w.consec.Store(0)
	w.mu.Lock()
	w.lastErr = ""
	w.mu.Unlock()
}

// Coordinator dispatches jobs across the configured workers. One
// Coordinator is long-lived (its per-worker stats accumulate across
// dispatches) and safe for concurrent Do/Go calls.
type Coordinator struct {
	cfg     Config
	workers []*worker

	hedges    *obs.Counter
	retries   *obs.Counter
	fallbacks *obs.Counter
	jobs      *obs.Counter
}

// New builds a Coordinator. Worker metric names are indexed by position
// (fleet_worker0_requests_total, …) — stable names for scrapers; the
// index↔URL mapping is in Status and /statusz.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	c := &Coordinator{cfg: cfg}
	reg := cfg.Registry
	bounds := obs.ExpBuckets(1e-3, 2, 20)
	for i, u := range cfg.Workers {
		u = strings.TrimRight(u, "/")
		if u == "" {
			return nil, fmt.Errorf("fleet: empty worker URL at index %d", i)
		}
		p := fmt.Sprintf("fleet_worker%d_", i)
		c.workers = append(c.workers, &worker{
			url:      u,
			requests: reg.Counter(p + "requests_total"),
			failures: reg.Counter(p + "failures_total"),
			wins:     reg.Counter(p + "wins_total"),
			infGauge: reg.Gauge(p + "inflight"),
			seconds:  reg.Rolling(p+"seconds", bounds, cfg.StatusWindow, 6),
		})
	}
	c.hedges = reg.Counter("fleet_hedges_total")
	c.retries = reg.Counter("fleet_retries_total")
	c.fallbacks = reg.Counter("fleet_local_fallbacks_total")
	c.jobs = reg.Counter("fleet_jobs_total")
	return c, nil
}

// WorkerURLs returns the configured worker base URLs in metric-index
// order.
func (c *Coordinator) WorkerURLs() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.url
	}
	return out
}

// Status snapshots the per-worker and fleet-wide counters.
func (c *Coordinator) Status() Status {
	st := Status{
		Hedges:         c.hedges.Value(),
		Retries:        c.retries.Value(),
		LocalFallbacks: c.fallbacks.Value(),
	}
	const ms = 1e3
	for _, w := range c.workers {
		snap := w.seconds.Snapshot()
		w.mu.Lock()
		lastErr := w.lastErr
		w.mu.Unlock()
		st.Workers = append(st.Workers, WorkerStatus{
			URL:              w.url,
			Healthy:          w.consec.Load() == 0,
			Inflight:         w.inflight.Load(),
			Requests:         w.requests.Value(),
			Failures:         w.failures.Value(),
			Wins:             w.wins.Value(),
			ConsecutiveFails: w.consec.Load(),
			LastError:        lastErr,
			P50MS:            snap.Quantile(0.50) * ms,
			P90MS:            snap.Quantile(0.90) * ms,
			P99MS:            snap.Quantile(0.99) * ms,
		})
	}
	return st
}

// Do dispatches jobs and blocks until every job has a Result, returned
// in the jobs' order. Job indices must be unique within the call.
func (c *Coordinator) Do(ctx context.Context, jobs []Job) []Result {
	out := make([]Result, len(jobs))
	pos := make(map[int]int, len(jobs))
	for i, j := range jobs {
		pos[j.Index] = i
	}
	for r := range c.Go(ctx, jobs) {
		out[pos[r.Index]] = r
	}
	return out
}

// Go dispatches jobs and returns a channel delivering exactly len(jobs)
// Results in completion order, then closing. A cancelled ctx finalises
// outstanding jobs with ctx.Err(); the channel always closes.
func (c *Coordinator) Go(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c.jobs.Add(uint64(len(jobs)))
	d := &dispatch{
		c:   c,
		ctx: ctx,
		out: out,
		// Capacity covers every enqueue a job can cause (initial + hedge +
		// per-attempt requeues; skip-requeues are pop-then-push, net zero),
		// so queue sends never block a runner.
		queue: make(chan *jobState, len(jobs)*(c.cfg.MaxAttempts+2)),
		done:  make(chan struct{}),
	}
	d.remaining.Store(int64(len(jobs)))
	d.states = make([]*jobState, len(jobs))
	for i, job := range jobs {
		actx, cancel := context.WithCancel(ctx)
		js := &jobState{d: d, job: job, actx: actx, cancel: cancel}
		d.states[i] = js
		d.queue <- js
	}
	var wg sync.WaitGroup
	for _, w := range c.workers {
		for k := 0; k < c.cfg.PerWorker; k++ {
			wg.Add(1)
			go d.runner(&wg, w)
		}
	}
	go func() {
		wg.Wait()
		// Runners exit on done (all delivered) or ctx cancellation; any
		// job still unfinished is finalised here. finish is idempotent and
		// out is buffered for len(jobs), so this never blocks.
		for _, js := range d.states {
			js.finalize()
		}
		close(out)
	}()
	return out
}

// dispatch is the per-Go call state shared by the runners.
type dispatch struct {
	c         *Coordinator
	ctx       context.Context
	out       chan Result
	queue     chan *jobState
	done      chan struct{} // closed when every job has delivered
	remaining atomic.Int64
	states    []*jobState
}

// jobState tracks one job through attempts, hedging and delivery.
type jobState struct {
	d   *dispatch
	job Job

	// actx is the job-level attempt context (child of the dispatch ctx):
	// every attempt runs under it and the winner cancels it, aborting any
	// hedged loser mid-flight.
	actx   context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	finished   bool
	started    int // attempts handed to runners
	inFlight   int // attempts currently running
	hedged     bool
	triedBy    map[*worker]bool
	hedgeTimer *time.Timer
	lastErr    error
}

type takeVerdict int

const (
	takeRun  takeVerdict = iota // run an attempt now
	takeSkip                    // this worker already tried it; let another take it
	takeDrop                    // finished or out of attempts; discard the queue entry
)

// tryTake decides what a runner popping this job should do. force
// bypasses the prefer-an-untried-worker steal rule (used when the same
// runner pops the job twice in a row, so a lone free worker cannot spin).
func (js *jobState) tryTake(w *worker, totalWorkers int, force bool) takeVerdict {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.finished || js.started >= js.d.c.cfg.MaxAttempts {
		return takeDrop
	}
	if !force && js.triedBy[w] && len(js.triedBy) < totalWorkers {
		return takeSkip
	}
	if js.triedBy == nil {
		js.triedBy = make(map[*worker]bool, totalWorkers)
	}
	first := js.started == 0
	js.started++
	js.inFlight++
	js.triedBy[w] = true
	if first {
		js.armHedgeLocked()
	}
	return takeRun
}

// armHedgeLocked schedules the straggler hedge when the first attempt
// starts: if nothing has finished the job by HedgeAfter, one duplicate
// attempt is enqueued (subject to the shared attempt budget).
func (js *jobState) armHedgeLocked() {
	after := js.d.c.cfg.HedgeAfter
	if after < 0 || js.d.c.cfg.MaxAttempts < 2 {
		return
	}
	js.hedgeTimer = time.AfterFunc(after, func() {
		js.mu.Lock()
		fire := !js.finished && !js.hedged && js.started < js.d.c.cfg.MaxAttempts
		if fire {
			js.hedged = true
		}
		js.mu.Unlock()
		if fire {
			js.d.c.hedges.Inc()
			js.d.requeue(js)
		}
	})
}

// requeue puts a job back on the dispatch queue. The queue is sized for
// every possible enqueue, so the send cannot block; the default arm is
// pure defence.
func (d *dispatch) requeue(js *jobState) {
	select {
	case d.queue <- js:
	default:
	}
}

// runner pulls jobs for one worker until the dispatch completes.
func (d *dispatch) runner(wg *sync.WaitGroup, w *worker) {
	defer wg.Done()
	var lastSkipped *jobState
	for {
		select {
		case <-d.done:
			return
		case <-d.ctx.Done():
			return
		case js := <-d.queue:
			switch js.tryTake(w, len(d.c.workers), js == lastSkipped) {
			case takeRun:
				lastSkipped = nil
				d.attempt(js, w)
			case takeSkip:
				lastSkipped = js
				d.requeue(js)
			case takeDrop:
			}
		}
	}
}

// attempt runs one remote try of a job on a worker and routes the
// outcome: win, retry, hedge-covered failure, or local fallback.
func (d *dispatch) attempt(js *jobState, w *worker) {
	ctx := js.actx
	var cancel context.CancelFunc
	if js.job.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, js.job.Timeout)
		defer cancel()
	}
	w.inflight.Add(1)
	w.infGauge.Set(float64(w.inflight.Load()))
	w.requests.Inc()
	begin := time.Now()
	status, body, err := d.post(ctx, w, js.job)
	w.seconds.Observe(time.Since(begin).Seconds())
	w.inflight.Add(-1)
	w.infGauge.Set(float64(w.inflight.Load()))
	if err == nil && status >= 500 {
		err = fmt.Errorf("fleet: worker %s: status %d: %s", w.url, status, truncate(body, 200))
	}
	if err == nil && d.c.cfg.Validate != nil {
		if verr := d.c.cfg.Validate(js.job, status, body); verr != nil {
			err = fmt.Errorf("fleet: worker %s: invalid body: %w", w.url, verr)
		}
	}
	if err == nil {
		js.win(w, status, body)
		return
	}
	js.fail(w, err)
}

// post issues the HTTP request for one attempt.
func (d *dispatch) post(ctx context.Context, w *worker, job Job) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+job.Path, bytes.NewReader(job.Body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range job.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := d.c.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, d.c.cfg.MaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// win records the first byte-valid reply and cancels the job's other
// attempts. Later finishers find the job finished and stand down.
func (js *jobState) win(w *worker, status int, body []byte) {
	js.mu.Lock()
	js.inFlight--
	if js.finished {
		js.mu.Unlock()
		return
	}
	js.finished = true
	res := Result{Index: js.job.Index, Status: status, Body: body,
		Worker: w.url, Attempts: js.started, Hedged: js.hedged}
	js.stopHedgeLocked()
	js.mu.Unlock()
	w.ok()
	w.wins.Inc()
	js.cancel() // abort a hedged loser mid-flight
	js.d.deliver(res)
}

// fail records a failed attempt and decides what happens next: requeue
// while the attempt budget lasts, stand down while a concurrent (hedged)
// attempt is still running, otherwise fall back to Local.
func (js *jobState) fail(w *worker, err error) {
	js.mu.Lock()
	js.inFlight--
	if js.finished {
		// The job already won elsewhere; this is the cancelled loser (or a
		// straggler) — not a worker failure worth alarming on.
		js.mu.Unlock()
		return
	}
	js.lastErr = err
	ctxDead := js.d.ctx.Err() != nil
	canRetry := !ctxDead && js.started < js.d.c.cfg.MaxAttempts
	covered := js.inFlight > 0 // a hedge/retry is still running
	exhausted := !canRetry && !covered
	if exhausted || ctxDead {
		js.finished = true
		js.stopHedgeLocked()
	}
	js.mu.Unlock()
	w.fail(err)
	switch {
	case ctxDead:
		js.cancel()
		js.d.deliver(Result{Index: js.job.Index, Err: js.d.ctx.Err()})
	case canRetry:
		js.d.c.retries.Inc()
		js.d.requeue(js)
	case covered:
	default:
		js.cancel()
		js.d.fallback(js, err)
	}
}

func (js *jobState) stopHedgeLocked() {
	if js.hedgeTimer != nil {
		js.hedgeTimer.Stop()
		js.hedgeTimer = nil
	}
}

// finalize delivers a context-cancellation Result for a job the runners
// never finished (dispatch ctx ended). Idempotent.
func (js *jobState) finalize() {
	js.mu.Lock()
	if js.finished {
		js.mu.Unlock()
		return
	}
	js.finished = true
	js.stopHedgeLocked()
	err := js.d.ctx.Err()
	if err == nil {
		err = js.lastErr
	}
	if err == nil {
		err = errors.New("fleet: job never dispatched")
	}
	js.mu.Unlock()
	js.cancel()
	js.d.deliver(Result{Index: js.job.Index, Err: err})
}

// fallback runs the job locally after remote exhaustion — the path that
// keeps results deterministic when the whole fleet misbehaves.
func (d *dispatch) fallback(js *jobState, lastErr error) {
	if d.c.cfg.Local == nil {
		d.deliver(Result{Index: js.job.Index, Attempts: js.started, Hedged: js.hedged, Err: lastErr})
		return
	}
	d.c.fallbacks.Inc()
	status, body, err := d.c.cfg.Local(d.ctx, js.job)
	if err != nil {
		d.deliver(Result{Index: js.job.Index, Attempts: js.started, Hedged: js.hedged,
			Err: fmt.Errorf("fleet: local fallback after %w: %w", lastErr, err)})
		return
	}
	d.deliver(Result{Index: js.job.Index, Status: status, Body: body,
		Worker: LocalWorker, Attempts: js.started, Hedged: js.hedged})
}

// deliver sends a finished Result and, on the last one, releases the
// runners. The out channel is buffered for every job, so sends never
// block.
func (d *dispatch) deliver(res Result) {
	d.out <- res
	if d.remaining.Add(-1) == 0 {
		close(d.done)
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}
