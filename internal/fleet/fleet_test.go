package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gfmap/internal/obs"
)

// countGoroutines waits for the goroutine count to drop back to the
// baseline — the leak guard every dispatch test runs under (same idea as
// the waitGoroutines helper in internal/core).
func goroutineGuard(t *testing.T) func() {
	t.Helper()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			// Idle keep-alive connections park two goroutines each; they are
			// pooled, not leaked — flush them so the count converges.
			http.DefaultTransport.(*http.Transport).CloseIdleConnections()
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before dispatch, %d after", before, runtime.NumGoroutine())
	}
}

func echoServer(t *testing.T, tag string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		fmt.Fprintf(w, "%s:%s", tag, r.Header.Get("X-Job"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func mustNew(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for zero workers")
	}
	if _, err := New(Config{Workers: []string{"http://a", ""}}); err == nil {
		t.Fatal("want error for blank worker URL")
	}
}

// TestDoDistributesAndOrders: a batch larger than one worker's capacity
// spreads across the fleet, and Do returns results in job order with the
// winning worker recorded.
func TestDoDistributesAndOrders(t *testing.T) {
	var h0, h1 atomic.Int64
	w0 := echoServer(t, "w0", &h0)
	w1 := echoServer(t, "w1", &h1)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{w0.URL, w1.URL}, PerWorker: 2, HedgeAfter: -1})
	jobs := make([]Job, 16)
	for i := range jobs {
		hdr := http.Header{}
		hdr.Set("X-Job", fmt.Sprint(i))
		jobs[i] = Job{Index: i, Path: "/", Header: hdr}
	}
	res := c.Do(context.Background(), jobs)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d — Do must return job order", i, r.Index)
		}
		want := fmt.Sprintf(":%d", i)
		if !strings.HasSuffix(string(r.Body), want) {
			t.Fatalf("job %d body %q lost its payload", i, r.Body)
		}
		if r.Worker != w0.URL && r.Worker != w1.URL {
			t.Fatalf("job %d attributed to %q", i, r.Worker)
		}
	}
	if h0.Load() == 0 || h1.Load() == 0 {
		t.Fatalf("work not distributed: worker hits %d / %d", h0.Load(), h1.Load())
	}
}

// TestRetryAfter500: a worker that always 500s never wins; the job is
// retried onto the healthy worker and the retry counter ticks.
func TestRetryAfter500(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	good := echoServer(t, "good", nil)
	reg := obs.NewRegistry()
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{bad.URL, good.URL}, Registry: reg, HedgeAfter: -1})
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/"}, {Index: 1, Path: "/"}})
	for i, r := range res {
		if r.Err != nil || r.Worker != good.URL {
			t.Fatalf("job %d: worker %q err %v, want win on good worker", i, r.Worker, r.Err)
		}
	}
	st := c.Status()
	if st.Workers[1].Wins != 2 {
		t.Fatalf("good worker wins = %d, want 2", st.Workers[1].Wins)
	}
	if bad0 := st.Workers[0]; bad0.Failures == 0 || bad0.Healthy || bad0.LastError == "" {
		t.Fatalf("bad worker status not flagged: %+v", bad0)
	}
	if st.Retries == 0 && st.Workers[0].Requests == 0 {
		t.Fatalf("expected the bad worker to have been tried: %+v", st)
	}
}

// TestValidateRejectsCorruptBody: a 200 whose body fails Validate is a
// worker failure — retried elsewhere, not surfaced to the caller.
func TestValidateRejectsCorruptBody(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "garbage")
	}))
	t.Cleanup(corrupt.Close)
	good := echoServer(t, "ok", nil)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{
		Workers:    []string{corrupt.URL, good.URL},
		HedgeAfter: -1,
		Validate: func(_ Job, status int, body []byte) error {
			if status == http.StatusOK && !strings.HasPrefix(string(body), "ok:") {
				return errors.New("unexpected body")
			}
			return nil
		},
	})
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/"}})
	if res[0].Err != nil || res[0].Worker != good.URL {
		t.Fatalf("want validated win on good worker, got worker %q err %v", res[0].Worker, res[0].Err)
	}
}

// Test4xxIsDeterministicOutcome: 4xx is the job's own (reproducible)
// error, not a worker failure — it wins first try with no retries.
func Test4xxIsDeterministicOutcome(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad design"}`, http.StatusUnprocessableEntity)
	}))
	t.Cleanup(srv.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{srv.URL}, HedgeAfter: -1})
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/"}})
	if res[0].Err != nil || res[0].Status != http.StatusUnprocessableEntity {
		t.Fatalf("want status 422 with nil err, got %d / %v", res[0].Status, res[0].Err)
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx burned %d attempts, want 1", hits.Load())
	}
}

// TestHedgingBeatsStraggler: the first attempt hangs, the hedge fires
// after HedgeAfter and wins, and the straggler's request is cancelled.
func TestHedgingBeatsStraggler(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	cancelled := make(chan struct{}, 1)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(true, false) {
			<-r.Context().Done() // straggle until the winner cancels us
			cancelled <- struct{}{}
			return
		}
		fmt.Fprint(w, "hedged-win")
	})
	w0 := httptest.NewServer(handler)
	w1 := httptest.NewServer(handler)
	t.Cleanup(w0.Close)
	t.Cleanup(w1.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{w0.URL, w1.URL}, HedgeAfter: 30 * time.Millisecond})
	start := time.Now()
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/"}})
	if res[0].Err != nil || string(res[0].Body) != "hedged-win" {
		t.Fatalf("hedge did not win: %+v", res[0])
	}
	if !res[0].Hedged {
		t.Fatal("result not marked hedged")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedged dispatch took %v — straggler was awaited", elapsed)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request never cancelled after hedge won")
	}
	if got := c.Status().Hedges; got != 1 {
		t.Fatalf("hedge counter = %d, want 1", got)
	}
}

// TestLocalFallbackAfterExhaustion: when every remote attempt fails the
// job runs through Local and is attributed to LocalWorker.
func TestLocalFallbackAfterExhaustion(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{
		Workers: []string{bad.URL}, MaxAttempts: 2, HedgeAfter: -1,
		Local: func(ctx context.Context, job Job) (int, []byte, error) {
			return http.StatusOK, []byte("local-ok"), nil
		},
	})
	res := c.Do(context.Background(), []Job{{Index: 7, Path: "/"}})
	r := res[0]
	if r.Err != nil || r.Worker != LocalWorker || string(r.Body) != "local-ok" {
		t.Fatalf("want local fallback win, got %+v", r)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (exhausted budget)", r.Attempts)
	}
	if got := c.Status().LocalFallbacks; got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
}

// TestExhaustionWithoutLocalYieldsError: no Local configured, all
// attempts fail → the last error is the result.
func TestExhaustionWithoutLocalYieldsError(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	t.Cleanup(bad.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{bad.URL}, MaxAttempts: 2, HedgeAfter: -1})
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/"}})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "status 502") {
		t.Fatalf("want surfaced 502 error, got %v", res[0].Err)
	}
}

// TestJobTimeoutBoundsAttempt: Job.Timeout caps a single attempt; with
// the budget exhausted the deadline error surfaces.
func TestJobTimeoutBoundsAttempt(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(slow.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{slow.URL}, MaxAttempts: 1, HedgeAfter: -1})
	res := c.Do(context.Background(), []Job{{Index: 0, Path: "/", Timeout: 50 * time.Millisecond}})
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", res[0].Err)
	}
}

// TestCancelDeliversEverything: cancelling the dispatch context while
// workers hang still yields one Result per job and closes the channel.
func TestCancelDeliversEverything(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{hang.URL}, HedgeAfter: -1})
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job{{Index: 0, Path: "/"}, {Index: 1, Path: "/"}, {Index: 2, Path: "/"}}
	ch := c.Go(ctx, jobs)
	time.Sleep(50 * time.Millisecond)
	cancel()
	got := 0
	for r := range ch {
		got++
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err %v, want context.Canceled", r.Index, r.Err)
		}
	}
	if got != len(jobs) {
		t.Fatalf("delivered %d results, want %d", got, len(jobs))
	}
}

// TestGoCompletionOrder: Go delivers fast finishers before slow ones and
// always exactly len(jobs) results.
func TestGoCompletionOrder(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Slow") == "1" {
			time.Sleep(300 * time.Millisecond)
		}
		fmt.Fprint(w, "done")
	}))
	t.Cleanup(srv.Close)
	defer goroutineGuard(t)()
	c := mustNew(t, Config{Workers: []string{srv.URL}, PerWorker: 2, HedgeAfter: -1})
	slowHdr := http.Header{}
	slowHdr.Set("X-Slow", "1")
	jobs := []Job{{Index: 0, Path: "/", Header: slowHdr}, {Index: 1, Path: "/"}}
	var order []int
	for r := range c.Go(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		order = append(order, r.Index)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("completion order %v, want [1 0]", order)
	}
}
