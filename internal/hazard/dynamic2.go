package hazard

import (
	"fmt"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// Dyn2Record is the output of one iteration of findMicDynHaz2level
// (§4.2.1): an irredundant cube intersection c together with the sets of
// adjacent cubes on which the function is constant 0 (Alpha) and constant 1
// (Beta). The dynamic logic hazards it denotes are the transition spaces
// T[i,j] for every pair of points i ∈ Alpha, j ∈ Beta.
type Dyn2Record struct {
	Intersection cube.Cube
	Alpha        []cube.Cube // adjacent cubes with f ≡ 0
	Beta         []cube.Cube // adjacent cubes with f ≡ 1
}

// MicDynHaz2Level is the paper's procedure findMicDynHaz2level: it finds
// every multi-input-change dynamic logic hazard of a two-level SOP that is
// not already characterised by a static 1-hazard, by forming the minimal
// function-hazard-free transition spaces around each irredundant cube
// intersection (Theorem 4.2).
func MicDynHaz2Level(f cube.Cover) []Dyn2Record {
	intersections := irredundantIntersections(f)
	var out []Dyn2Record
	var adj []cube.Cube
	var mts []uint64
	for _, c := range intersections {
		rec := Dyn2Record{Intersection: c}
		adj = c.AppendAdjacentCubes(adj[:0])
		for _, d := range adj {
			switch constantOn(f, d) {
			case 0:
				rec.Alpha = append(rec.Alpha, d)
			case 1:
				rec.Beta = append(rec.Beta, d)
			default:
				// The function is mixed over d (only possible when the
				// intersection is not a minterm). Classify at minterm
				// granularity, as the paper's minterm-based Example 4.2.4
				// does implicitly.
				if f.N <= MaxExhaustiveVars {
					mts = d.Minterms(f.N, mts[:0])
					for _, m := range mts {
						mc := cube.Minterm(f.N, m)
						if f.Eval(m) {
							rec.Beta = append(rec.Beta, mc)
						} else {
							rec.Alpha = append(rec.Alpha, mc)
						}
					}
				}
			}
		}
		if len(rec.Alpha) > 0 && len(rec.Beta) > 0 {
			out = append(out, rec)
		}
	}
	return out
}

// irredundantIntersections returns the deduplicated non-empty pairwise cube
// intersections of the cover, excluding degenerate cases where one cube
// contains the other (those contribute no genuine overlap region distinct
// from a cube of the expression).
func irredundantIntersections(f cube.Cover) []cube.Cube {
	var out []cube.Cube
	for i := 0; i < len(f.Cubes); i++ {
		for j := i + 1; j < len(f.Cubes); j++ {
			ci, cj := f.Cubes[i], f.Cubes[j]
			c, ok := ci.Intersect(cj)
			if !ok {
				continue
			}
			if c.Equal(ci) || c.Equal(cj) {
				continue
			}
			out = append(out, c)
		}
	}
	return cube.DedupCubes(out)
}

// constantOn classifies the function over cube d: 0 when f ≡ 0 on d, 1 when
// f ≡ 1 on d, and -1 otherwise.
func constantOn(f cube.Cover, d cube.Cube) int {
	intersects := false
	for _, c := range f.Cubes {
		if c.Intersects(d) {
			intersects = true
			break
		}
	}
	if !intersects {
		return 0
	}
	if f.ContainsCube(d) {
		return 1
	}
	return -1
}

// ExpandDyn2 converts compact records into transition-level dynamic
// hazards, keeping only function-hazard-free minterm pairs (condition 1 of
// Theorem 4.1). It requires f.N ≤ MaxExhaustiveVars; wider covers return
// nil rather than attempt the exponential minterm expansion (callers that
// need an exact answer must stay within the bound, as the compact-record
// algorithms do).
func ExpandDyn2(f cube.Cover, recs []Dyn2Record) []Transition {
	if f.N > MaxExhaustiveVars {
		return nil
	}
	eval := func(p uint64) bool { return f.Eval(p) }
	seen := make(map[Transition]struct{})
	var out []Transition
	for _, rec := range recs {
		var zeros, ones []uint64
		for _, a := range rec.Alpha {
			zeros = a.Minterms(f.N, zeros)
		}
		for _, b := range rec.Beta {
			ones = b.Minterms(f.N, ones)
		}
		for _, z := range zeros {
			for _, o := range ones {
				tr := Transition{From: z, To: o}
				if _, dup := seen[tr]; dup {
					continue
				}
				if !FunctionHazardFree(eval, f.N, z, o) {
					continue
				}
				// Condition 2 of Theorem 4.1: some cube must intersect the
				// transition space without containing the 1-endpoint.
				tc := cube.Supercube(cube.Minterm(f.N, z), cube.Minterm(f.N, o))
				cond2 := false
				for _, c := range f.Cubes {
					if c.Intersects(tc) && !c.ContainsPoint(o) {
						cond2 = true
						break
					}
				}
				if !cond2 {
					continue
				}
				seen[tr] = struct{}{}
				out = append(out, tr)
			}
		}
	}
	return out
}

// MicDynHazMultiLevel is the paper's procedure findMicDynHazMultiLevel
// (§4.2.2): flatten the multi-level expression to two-level SOP with
// hazard-preserving transformations, run findMicDynHaz2level as a filter,
// then examine the original multi-level structure on exactly the candidate
// transitions and discard false hazards.
func MicDynHazMultiLevel(f *bexpr.Function) ([]Transition, error) {
	// Reject wide supports before any exponential work (SOP flattening,
	// minterm expansion): the bound used to be enforced only deep inside
	// cube enumeration, where user-derived support sizes turned into a
	// panic or an unbounded allocation.
	if n := f.NumVars(); n > MaxExhaustiveVars {
		return nil, fmt.Errorf("hazard: multi-level dynamic analysis limited to %d variables, got %d", MaxExhaustiveVars, n)
	}
	cov, err := f.Cover()
	if err != nil {
		return nil, err
	}
	recs := MicDynHaz2Level(cov)
	candidates := ExpandDyn2(cov, recs)
	sim, err := NewSimulator(f)
	if err != nil {
		return nil, err
	}
	var out []Transition
	for _, tr := range candidates {
		hazardous, err := sim.DynamicTransitionHazardous(tr.From, tr.To)
		if err != nil {
			return nil, err
		}
		if hazardous {
			out = append(out, tr)
		}
	}
	return out, nil
}
