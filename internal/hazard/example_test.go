package hazard_test

import (
	"fmt"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/hazard"
)

// ExampleAnalyze characterises the classic 2:1 multiplexer, whose
// sum-of-products structure glitches when the select changes with both
// data inputs high.
func ExampleAnalyze() {
	mux := bexpr.MustParse("s'*a + s*b")
	set, _ := hazard.Analyze(mux)
	fmt.Println(set)
	// Output: static-1:1 static-0:0 dynamic:2
}

// ExampleRepairStatic1 inserts the consensus cube that removes the mux's
// static-1 hazard.
func ExampleRepairStatic1() {
	names := []string{"s", "a", "b"}
	mux := cube.MustParseCover("s'a + sb", names)
	fixed, _ := hazard.RepairStatic1(mux)
	fmt.Println(fixed.StringVars(names))
	// Output: s'a + sb + ab
}

// ExampleStatic1Hazards runs the paper's static_1_analysis procedure on a
// cover with an uncovered cube adjacency.
func ExampleStatic1Hazards() {
	names := []string{"w", "x", "y", "z"}
	f := cube.MustParseCover("w'yz + wxy", names)
	for _, rec := range hazard.Static1Hazards(f) {
		fmt.Println("uncovered transition region:", rec.T.StringVars(names))
	}
	// Output: uncovered transition region: xyz
}
