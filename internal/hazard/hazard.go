// Package hazard implements the hazard-analysis algorithms of
// Siegel/De Micheli/Dill (DAC'93, §4): static logic 1-hazard analysis via
// cube adjacencies, static 0-hazard and single-input-change dynamic hazard
// analysis via path-labelled SOP, the multi-input-change dynamic hazard
// procedure findMicDynHaz2level with its multi-level extension, and
// Eichelberger ternary simulation as a verification oracle.
//
// Two granularities coexist:
//
//   - The compact algorithms mirror the paper and return hazard *records*
//     (cubes, transition-space families). They scale to wide functions and
//     drive library annotation and the hazardcheck CLI.
//   - Set is the exact transition-level characterisation used by the
//     mapper's matching filter (§3.2.2): for the small support sizes of
//     library cells and match clusters it enumerates every input transition
//     and classifies it, so the subset test "hazards(cell) ⊆
//     hazards(subnetwork)" of asyncmatchingroutine is exact.
package hazard

import (
	"fmt"
	"sort"
	"strings"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// Kind distinguishes the classes of logic hazards tracked by a Set.
type Kind int

// Hazard kinds.
const (
	KindStatic1 Kind = iota // output 1→0→1 glitch while it should stay 1
	KindStatic0             // output 0→1→0 glitch while it should stay 0
	KindDynamic             // extra glitch during an expected output change
)

func (k Kind) String() string {
	switch k {
	case KindStatic1:
		return "static-1"
	case KindStatic0:
		return "static-0"
	case KindDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Transition is one multi-input-change transition between two input points.
// For static hazards the pair is stored unordered (From < To numerically).
// For dynamic hazards From is the point where the output is 0 and To the
// point where it is 1; the logic-hazard condition of Theorem 4.1 depends on
// which endpoint is the 1-point, not on the direction of travel, so one
// record covers both the rise From→To and the fall To→From.
type Transition struct {
	From uint64
	To   uint64
}

// MaxExhaustiveVars bounds the support size accepted by the exact
// transition-level analysis. Library cells and match clusters are ≤ 6
// inputs in the paper's libraries, far below the bound.
const MaxExhaustiveVars = 10

// Set is the exact logic-hazard characterisation of a single-output
// function implementation over n input variables.
type Set struct {
	N       int
	Static1 map[Transition]struct{}
	Static0 map[Transition]struct{}
	Dynamic map[Transition]struct{}
}

// NewSet returns an empty hazard set over n variables.
func NewSet(n int) *Set {
	return &Set{
		N:       n,
		Static1: make(map[Transition]struct{}),
		Static0: make(map[Transition]struct{}),
		Dynamic: make(map[Transition]struct{}),
	}
}

func (s *Set) add(k Kind, tr Transition) {
	switch k {
	case KindStatic1:
		s.Static1[normStatic(tr)] = struct{}{}
	case KindStatic0:
		s.Static0[normStatic(tr)] = struct{}{}
	case KindDynamic:
		s.Dynamic[tr] = struct{}{}
	}
}

func normStatic(tr Transition) Transition {
	if tr.From > tr.To {
		tr.From, tr.To = tr.To, tr.From
	}
	return tr
}

// Empty reports whether the set records no logic hazards at all.
func (s *Set) Empty() bool {
	return len(s.Static1) == 0 && len(s.Static0) == 0 && len(s.Dynamic) == 0
}

// Count returns the total number of hazardous transitions.
func (s *Set) Count() int { return len(s.Static1) + len(s.Static0) + len(s.Dynamic) }

// CountKind returns the number of hazardous transitions of one kind.
func (s *Set) CountKind(k Kind) int {
	switch k {
	case KindStatic1:
		return len(s.Static1)
	case KindStatic0:
		return len(s.Static0)
	case KindDynamic:
		return len(s.Dynamic)
	}
	return 0
}

// SubsetOf reports whether every hazardous transition of s is also a
// hazardous transition (of the same kind) of t — the acceptance condition
// of the paper's asyncmatchingroutine.
func (s *Set) SubsetOf(t *Set) bool {
	for tr := range s.Static1 {
		if _, ok := t.Static1[tr]; !ok {
			return false
		}
	}
	for tr := range s.Static0 {
		if _, ok := t.Static0[tr]; !ok {
			return false
		}
	}
	for tr := range s.Dynamic {
		if _, ok := t.Dynamic[tr]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether two sets record exactly the same hazards.
func (s *Set) Equal(t *Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Binding describes how a library cell's inputs map onto a subnetwork's
// inputs during Boolean matching: cell input i connects to subnetwork
// variable Perm[i], complemented when InvIn bit i is set; InvOut records an
// inverted output match.
type Binding struct {
	Perm   []int
	InvIn  uint64
	InvOut bool
}

// mapPoint translates a point of the cell's input space into the
// subnetwork's input space.
func (b Binding) mapPoint(p uint64) uint64 {
	var out uint64
	for i, v := range b.Perm {
		bit := (p >> uint(i)) & 1
		if b.InvIn&(1<<uint(i)) != 0 {
			bit ^= 1
		}
		out |= bit << uint(v)
	}
	return out
}

// Translate maps the hazard set of a cell through a matching binding into
// the subnetwork's variable space. An inverted output exchanges static-1
// and static-0 hazards and swaps the endpoint roles of dynamic hazards: a
// glitch on the cell's output is observed, after the inversion, as the
// complementary glitch.
func (s *Set) Translate(b Binding, n int) *Set {
	out := NewSet(n)
	for tr := range s.Static1 {
		mapped := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if b.InvOut {
			out.add(KindStatic0, mapped)
		} else {
			out.add(KindStatic1, mapped)
		}
	}
	for tr := range s.Static0 {
		mapped := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if b.InvOut {
			out.add(KindStatic1, mapped)
		} else {
			out.add(KindStatic0, mapped)
		}
	}
	for tr := range s.Dynamic {
		mapped := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if b.InvOut {
			mapped.From, mapped.To = mapped.To, mapped.From
		}
		out.add(KindDynamic, mapped)
	}
	return out
}

// TranslatedSubsetOf reports whether the receiver's hazards, translated
// through binding b and restricted to transitions flipping at most
// maxBurst inputs (maxBurst <= 0 keeps all), are a subset of t. It is
// equivalent to s.Translate(b, n).FilterMaxBurst(maxBurst).SubsetOf(t)
// but never materialises the intermediate sets: each transition is
// mapped, filtered and looked up in t directly, so the matching filter's
// accept test allocates nothing.
func (s *Set) TranslatedSubsetOf(b Binding, maxBurst int, t *Set) bool {
	for tr := range s.Static1 {
		m := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if maxBurst > 0 && popcount64(m.From^m.To) > maxBurst {
			continue
		}
		m = normStatic(m)
		if b.InvOut {
			if _, ok := t.Static0[m]; !ok {
				return false
			}
		} else if _, ok := t.Static1[m]; !ok {
			return false
		}
	}
	for tr := range s.Static0 {
		m := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if maxBurst > 0 && popcount64(m.From^m.To) > maxBurst {
			continue
		}
		m = normStatic(m)
		if b.InvOut {
			if _, ok := t.Static1[m]; !ok {
				return false
			}
		} else if _, ok := t.Static0[m]; !ok {
			return false
		}
	}
	for tr := range s.Dynamic {
		m := Transition{From: b.mapPoint(tr.From), To: b.mapPoint(tr.To)}
		if b.InvOut {
			m.From, m.To = m.To, m.From
		}
		if maxBurst > 0 && popcount64(m.From^m.To) > maxBurst {
			continue
		}
		if _, ok := t.Dynamic[m]; !ok {
			return false
		}
	}
	return true
}

// String renders a short summary such as "static-1:2 static-0:0 dynamic:5".
func (s *Set) String() string {
	return fmt.Sprintf("static-1:%d static-0:%d dynamic:%d",
		len(s.Static1), len(s.Static0), len(s.Dynamic))
}

// Transitions returns the hazardous transitions of one kind in
// deterministic order.
func (s *Set) Transitions(k Kind) []Transition {
	var m map[Transition]struct{}
	switch k {
	case KindStatic1:
		m = s.Static1
	case KindStatic0:
		m = s.Static0
	case KindDynamic:
		m = s.Dynamic
	}
	out := make([]Transition, 0, len(m))
	for tr := range m {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Describe renders the hazardous transitions with variable names, for
// reports and the hazardcheck CLI.
func (s *Set) Describe(names []string) string {
	var b strings.Builder
	for _, k := range []Kind{KindStatic1, KindStatic0, KindDynamic} {
		trs := s.Transitions(k)
		if len(trs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s hazards (%d):\n", k, len(trs))
		for _, tr := range trs {
			fmt.Fprintf(&b, "  %s <-> %s  (T = %s)\n",
				pointString(tr.From, s.N, names),
				pointString(tr.To, s.N, names),
				cube.Supercube(cube.Minterm(s.N, tr.From), cube.Minterm(s.N, tr.To)).StringVars(names))
		}
	}
	if b.Len() == 0 {
		return "no logic hazards\n"
	}
	return b.String()
}

func pointString(p uint64, n int, names []string) string {
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		if i < len(names) {
			name = names[i]
		}
		parts[i] = fmt.Sprintf("%s=%d", name, (p>>uint(i))&1)
	}
	return strings.Join(parts, " ")
}

// FunctionHazardFree reports whether the multi-input-change transition
// between points a and b is free of function hazards: along every monotone
// path from a to b the function changes value at most once. The
// characterisation used: for every point x of T[a,b] with f(x) = f(b), f
// must be constant f(b) on T[x,b].
func FunctionHazardFree(f func(uint64) bool, n int, a, b uint64) bool {
	t := cube.Supercube(cube.Minterm(n, a), cube.Minterm(n, b))
	fb := f(b)
	var pts []uint64
	pts = t.Minterms(n, pts[:0])
	mb := cube.Minterm(n, b)
	var inner []uint64
	for _, x := range pts {
		if f(x) != fb {
			continue
		}
		txb := cube.Supercube(cube.Minterm(n, x), mb)
		inner = txb.Minterms(n, inner[:0])
		for _, y := range inner {
			if f(y) != fb {
				return false
			}
		}
	}
	return true
}

// Analyze computes the exact logic-hazard set of a multi-level expression
// by enumerating every input transition and classifying it with the
// path-skew interleaving model of the Simulator. The function's structure
// matters: two structures for the same function generally yield different
// sets (Figure 4). Supports up to MaxExhaustiveVars variables.
func Analyze(f *bexpr.Function) (*Set, error) {
	sim, err := NewSimulator(f)
	if err != nil {
		return nil, err
	}
	return sim.Analyze()
}

// MustAnalyze is Analyze that panics on error.
func MustAnalyze(f *bexpr.Function) *Set {
	s, err := Analyze(f)
	if err != nil {
		panic(err)
	}
	return s
}

// FilterMaxBurst returns a copy of the set keeping only hazards whose
// transition flips at most k input variables. In generalized
// fundamental-mode operation the environment issues bursts of bounded
// width, so hazards on wider multi-input changes are don't-cares: they can
// never be exercised. k <= 0 keeps every hazard. The result is always a
// fresh set, never the receiver: callers mutate filtered sets, and with
// cached analyses the receiver may be shared across goroutines.
func (s *Set) FilterMaxBurst(k int) *Set {
	out := NewSet(s.N)
	keep := func(tr Transition) bool {
		return k <= 0 || popcount64(tr.From^tr.To) <= k
	}
	for tr := range s.Static1 {
		if keep(tr) {
			out.Static1[tr] = struct{}{}
		}
	}
	for tr := range s.Static0 {
		if keep(tr) {
			out.Static0[tr] = struct{}{}
		}
	}
	for tr := range s.Dynamic {
		if keep(tr) {
			out.Dynamic[tr] = struct{}{}
		}
	}
	return out
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
