package hazard

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

var wxyz = []string{"w", "x", "y", "z"}

// parseWXYZ parses an expression with the fixed variable order w,x,y,z so
// that point() coordinates match regardless of appearance order.
func parseWXYZ(s string) *bexpr.Function {
	f, err := bexpr.NewWithVars(bexpr.MustParseExpr(s), wxyz)
	if err != nil {
		panic(err)
	}
	return f
}

// at builds an input point for a function from variable-name/value pairs.
func at(f *bexpr.Function, kv map[string]int) uint64 {
	var p uint64
	for name, v := range kv {
		i := f.VarIndex(name)
		if i < 0 {
			panic("unknown var " + name)
		}
		if v != 0 {
			p |= 1 << uint(i)
		}
	}
	return p
}

// point builds an input point from variable values in w,x,y,z order.
func point(vals ...int) uint64 {
	var p uint64
	for i, v := range vals {
		if v != 0 {
			p |= 1 << uint(i)
		}
	}
	return p
}

// TestFigure2aStatic1 reproduces the single-input-change static 1-hazard of
// Figure 2a: two AND gates cover the ON-set but no single gate holds the
// output through the transition across their shared boundary; adding the
// consensus gate removes the hazard.
func TestFigure2aStatic1(t *testing.T) {
	hazardous := cube.MustParseCover("w'yz + wxy", wxyz)
	recs := Static1Hazards(hazardous)
	if len(recs) != 1 {
		t.Fatalf("got %d static-1 records, want 1: %v", len(recs), recs)
	}
	if got := recs[0].T.StringVars(wxyz); got != "xyz" {
		t.Errorf("hazard region = %s, want xyz", got)
	}

	fixed := cube.MustParseCover("w'yz + wxy + xyz", wxyz)
	if recs := Static1Hazards(fixed); len(recs) != 0 {
		t.Errorf("cover with consensus cube should be clean, got %v", recs)
	}

	// The exact analysis agrees: the transition w'xyz <-> wxyz is static-1
	// hazardous in the two-gate structure and clean in the three-gate one.
	hf := parseWXYZ("w'*y*z + w*x*y")
	set := MustAnalyze(hf)
	tr := Transition{From: point(0, 1, 1, 1), To: point(1, 1, 1, 1)}
	if _, ok := set.Static1[tr]; !ok {
		t.Errorf("exact set misses the Figure 2a transition; set = %v", set)
	}
	ff := parseWXYZ("w'*y*z + w*x*y + x*y*z")
	if set := MustAnalyze(ff); len(set.Static1) != 0 {
		t.Errorf("consensus-complete cover has static-1 hazards: %v", set.Describe(wxyz))
	}
}

// TestFigure2bMICStatic reproduces the multi-input-change static hazard of
// Figure 2b: f = w'x' + y'z + w'y + xz. During α = w'x'y'z → β = w'xyz no
// single gate holds the output.
func TestFigure2bMICStatic(t *testing.T) {
	f := parseWXYZ("w'*x' + y'*z + w'*y + x*z")
	set := MustAnalyze(f)
	alpha := point(0, 0, 0, 1)
	beta := point(0, 1, 1, 1)
	tr := normStatic(Transition{From: alpha, To: beta})
	if _, ok := set.Static1[tr]; !ok {
		t.Errorf("expected m.i.c. static-1 hazard for %04b -> %04b; set: %s",
			alpha, beta, set.Describe(wxyz))
	}
	// The function is 1 at both endpoints and throughout the transition
	// space, so this is a logic (not function) hazard.
	cov := f.MustCover()
	tcube := cube.Supercube(cube.Minterm(4, alpha), cube.Minterm(4, beta))
	if !cov.ContainsCube(tcube) {
		t.Fatal("test setup wrong: T[α,β] must be inside the ON-set")
	}
}

// TestMuxStatic1 checks the canonical hazardous library element: the 2:1
// multiplexer in sum-of-products form glitches when the select changes with
// both data inputs 1 (the hazard behind Table 1's mux entries).
func TestMuxStatic1(t *testing.T) {
	mux := bexpr.MustParse("s'*a + s*b")
	set := MustAnalyze(mux)
	// s,a,b order: s=0,a=1,b=2. Transition s:0->1 with a=b=1.
	tr := normStatic(Transition{From: 0b110, To: 0b111})
	if _, ok := set.Static1[tr]; !ok {
		t.Fatalf("mux should have static-1 hazard on select change with a=b=1; set: %v", set)
	}
	// Adding the redundant consensus product a*b removes the static-1
	// hazard and every single-input-change hazard. (It introduces new
	// multi-input-change dynamic hazards — redundant cubes are not free —
	// which is exactly why the matching filter compares full hazard sets.)
	muxFixed := bexpr.MustParse("s'*a + s*b + a*b")
	fixedSet := MustAnalyze(muxFixed)
	if len(fixedSet.Static1) != 0 || len(fixedSet.Static0) != 0 {
		t.Errorf("consensus-completed mux still has static hazards: %s",
			fixedSet.Describe([]string{"s", "a", "b"}))
	}
	for tr := range fixedSet.Dynamic {
		if dist := popcount(tr.From ^ tr.To); dist < 2 {
			t.Errorf("consensus-completed mux has s.i.c. dynamic hazard %03b -> %03b", tr.From, tr.To)
		}
	}
}

// TestFigure4Structures: the same function implemented as a sum of two
// cubes versus a factored form has different hazard behaviour — the paper's
// central argument for keeping structure (BFF) in the library description.
func TestFigure4Structures(t *testing.T) {
	sop := bexpr.MustParse("w*y + x*y")      // two AND gates into an OR
	factored := bexpr.MustParse("(w + x)*y") // OR gate into an AND
	sopSet := MustAnalyze(sop)
	facSet := MustAnalyze(factored)

	// The factored structure is strictly cleaner.
	if !facSet.SubsetOf(sopSet) {
		t.Errorf("factored form should have a subset of the SOP form's hazards\nsop: %sfactored: %s",
			sopSet.Describe([]string{"w", "x", "y"}), facSet.Describe([]string{"w", "x", "y"}))
	}
	if facSet.Equal(sopSet) {
		t.Error("the two structures should differ in hazard behaviour")
	}
	// In particular the burst x falling / y rising with w = 1: the SOP form
	// can glitch (the x*y gate pulses via its early y path and dies, before
	// the w*y gate turns on), while the factored form shares the single y
	// path through the OR gate that w holds at 1.
	zero := at(sop, map[string]int{"w": 1, "x": 1, "y": 0})
	one := at(sop, map[string]int{"w": 1, "x": 0, "y": 1})
	trSop := Transition{From: zero, To: one}
	if _, ok := sopSet.Dynamic[trSop]; !ok {
		t.Errorf("SOP structure should be dynamic-hazardous on %03b -> %03b; set: %v", zero, one, sopSet)
	}
	facZero := at(factored, map[string]int{"w": 1, "x": 1, "y": 0})
	facOne := at(factored, map[string]int{"w": 1, "x": 0, "y": 1})
	if _, ok := facSet.Dynamic[Transition{From: facZero, To: facOne}]; ok {
		t.Errorf("factored structure should be clean on %03b -> %03b", facZero, facOne)
	}
}

// TestFigure6McCluskey reproduces the McCluskey circuit of Figure 6:
// f = (w + y' + x')*(x*y + y'*z).
func TestFigure6McCluskey(t *testing.T) {
	f := parseWXYZ("(w + y' + x')*(x*y + y'*z)")
	// Figure 6a: static 0-hazard when w=0, y=1, z=0 and x changes.
	recs, err := Static0Hazards(f)
	if err != nil {
		t.Fatal(err)
	}
	xIdx := f.VarIndex("x")
	foundX := false
	for _, r := range recs {
		if r.Var == xIdx {
			foundX = true
		}
	}
	if !foundX {
		t.Errorf("expected a static-0 record for reconverging x; got %v", recs)
	}
	// The exact set confirms the specific transition: w=0,y=1,z=0, x: 0->1.
	set := MustAnalyze(f)
	a := point(0, 0, 1, 0)
	b := point(0, 1, 1, 0)
	if _, ok := set.Static0[normStatic(Transition{From: a, To: b})]; !ok {
		t.Errorf("exact set misses Figure 6a static-0 transition; set:\n%s", set.Describe(wxyz))
	}

	// Figure 6b: s.i.c. dynamic hazard when w=0, x=1, z=1 and y changes.
	dyn, err := SicDynHazards(f)
	if err != nil {
		t.Fatal(err)
	}
	yIdx := f.VarIndex("y")
	foundY := false
	for _, r := range dyn {
		if r.Var == yIdx {
			foundY = true
		}
	}
	if !foundY {
		t.Errorf("expected a s.i.c. dynamic record for reconverging y; got %v", dyn)
	}
	zero := point(0, 1, 1, 1) // y=1: f=0
	one := point(0, 1, 0, 1)  // y=0: f=1 (w=0,x=1,z=1)
	if !f.Eval(one) || f.Eval(zero) {
		t.Fatal("test setup wrong for Figure 6b endpoints")
	}
	if _, ok := set.Dynamic[Transition{From: zero, To: one}]; !ok {
		t.Errorf("exact set misses Figure 6b dynamic transition; set:\n%s", set.Describe(wxyz))
	}
}

// fig8 is the running example of §4.2.1: f = w'xz + w'xy + xyz.
func fig8() *bexpr.Function {
	return parseWXYZ("w'*x*z + w'*x*y + x*y*z")
}

// TestFigure8Theorem41 checks the dynamic logic hazard of T[α,γ]: from
// α = w'x'yz to γ = w'xyz', the cubes w'xz and xyz can turn on and off
// before w'xy turns on.
func TestFigure8Theorem41(t *testing.T) {
	f := fig8()
	set := MustAnalyze(f)
	alpha := point(0, 0, 1, 1) // f = 0
	gamma := point(0, 1, 1, 0) // f = 1 via w'xy
	if f.Eval(alpha) || !f.Eval(gamma) {
		t.Fatal("test setup wrong: endpoints misclassified")
	}
	if !FunctionHazardFree(f.Eval, 4, alpha, gamma) {
		t.Fatal("T[α,γ] should be function-hazard-free")
	}
	if _, ok := set.Dynamic[Transition{From: alpha, To: gamma}]; !ok {
		t.Errorf("expected dynamic logic hazard for α -> γ; set:\n%s", set.Describe(wxyz))
	}
}

// TestFigure10FindMicDynHaz walks Example 4.2.4: the only irredundant cube
// intersection is c = w'xyz, with α_c = {w'x'yz} and β_c = {w'xy'z, wxyz,
// w'xyz'}.
func TestFigure10FindMicDynHaz(t *testing.T) {
	cov := fig8().MustCover()
	recs := MicDynHaz2Level(cov)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if got := r.Intersection.StringVars(wxyz); got != "w'xyz" {
		t.Errorf("intersection = %s, want w'xyz", got)
	}
	if len(r.Alpha) != 1 || r.Alpha[0].StringVars(wxyz) != "w'x'yz" {
		t.Errorf("alpha set = %v, want {w'x'yz}", r.Alpha)
	}
	wantBeta := map[string]bool{"w'xy'z": true, "wxyz": true, "w'xyz'": true}
	if len(r.Beta) != 3 {
		t.Fatalf("beta set size = %d, want 3", len(r.Beta))
	}
	for _, b := range r.Beta {
		if !wantBeta[b.StringVars(wxyz)] {
			t.Errorf("unexpected beta cube %s", b.StringVars(wxyz))
		}
	}
	// Every expanded transition must be a true dynamic logic hazard.
	set := MustAnalyze(fig8())
	for _, tr := range ExpandDyn2(cov, recs) {
		if _, ok := set.Dynamic[tr]; !ok {
			t.Errorf("expanded transition %04b -> %04b is not hazardous in the exact set", tr.From, tr.To)
		}
	}
}

// TestFigure9StaticSubsumesDynamic: an m.i.c. dynamic hazard that results
// from a static 1-hazard is fully characterised by the static hazard; the
// findMicDynHaz2level procedure rightly ignores it (no cube intersections),
// while the static analysis reports it.
func TestFigure9StaticSubsumesDynamic(t *testing.T) {
	// Two disjoint cubes meeting only across an uncovered adjacency.
	cov := cube.MustParseCover("wxy + w'xz", wxyz)
	if recs := MicDynHaz2Level(cov); len(recs) != 0 {
		t.Errorf("disjoint cubes should give no intersection records, got %v", recs)
	}
	recs := Static1Hazards(cov)
	if len(recs) == 0 {
		t.Error("the static analysis should flag the uncovered adjacency")
	}
}

// TestStatic1MatchesExact cross-checks the compact static-1 procedure
// against the exact analysis on random SOP structures: the compact
// procedure reports no hazards iff the exact set has no static-1 hazards.
func TestStatic1MatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 200; iter++ {
		cov := randomCover(rng, 4, 1+rng.Intn(4))
		f := bexpr.FromCover(cov, names)
		set := MustAnalyze(f)
		compact := Static1Hazards(cov)
		if (len(compact) == 0) != (len(set.Static1) == 0) {
			t.Fatalf("cover %v: compact=%d records, exact=%d transitions\n%s",
				cov.StringVars(names), len(compact), len(set.Static1), set.Describe(names))
		}
	}
}

// TestStatic1AllPrimesTheorem verifies the classical theorem the paper
// cites: a two-level SOP is free of all m.i.c. static logic hazards iff it
// contains every prime implicant.
func TestStatic1AllPrimesTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 100; iter++ {
		cov := randomCover(rng, 4, 1+rng.Intn(4))
		f := bexpr.FromCover(cov, names)
		set := MustAnalyze(f)
		free := Static1HazardFree(cov)
		if free != (len(set.Static1) == 0) {
			t.Fatalf("cover %v: all-primes=%v but exact static-1 count=%d",
				cov.StringVars(names), free, len(set.Static1))
		}
	}
}

// TestDynamic2LevelMatchesTheorem41 cross-checks the exact simulator
// against the direct cube conditions of Theorem 4.1 on two-level SOPs.
func TestDynamic2LevelMatchesTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 100; iter++ {
		cov := randomCover(rng, 4, 1+rng.Intn(4))
		f := bexpr.FromCover(cov, names)
		set := MustAnalyze(f)
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				if a == b || cov.Eval(a) || !cov.Eval(b) {
					continue
				}
				if !FunctionHazardFree(cov.Eval, 4, a, b) {
					continue
				}
				// Theorem 4.1: hazard iff some cube intersects T[a,b] but
				// does not contain b.
				tc := cube.Supercube(cube.Minterm(4, a), cube.Minterm(4, b))
				want := false
				for _, c := range cov.Cubes {
					if c.Intersects(tc) && !c.ContainsPoint(b) {
						want = true
						break
					}
				}
				_, got := set.Dynamic[Transition{From: a, To: b}]
				if got != want {
					t.Fatalf("cover %v transition %04b->%04b: exact=%v theorem=%v",
						cov.StringVars(names), a, b, got, want)
				}
			}
		}
	}
}

// TestMicDyn2SoundAndMostlyComplete checks Theorem 4.2's contract on
// all-primes covers (static-1 hazard-free by construction): every
// transition generated by findMicDynHaz2level is a true dynamic logic
// hazard (soundness, strict), and the exact dynamic hazards are
// characterised by the generated minimal transition spaces in the
// overwhelming majority of cases. The rare misses are a documented
// limitation of the published procedure (see
// TestMicDyn2MixedAdjacentExtension pins the case that motivated our
// minterm-granularity extension of findMicDynHaz2level. Read literally at
// cube granularity, the published procedure classifies each cube adjacent
// to a cube intersection only when the function is constant over it; for
// f = b' + a'c' + c'd (all primes present) every such adjacent cube with a
// constant value lies in the ON-set, so no α set forms and the dynamic
// hazard of a'bcd → a'b'c'd' goes unreported. Splitting mixed adjacent
// cubes into minterms (as the paper's own minterm-based Example 4.2.4 does
// implicitly) and re-verifying condition 2 of Theorem 4.1 per pair restores
// completeness; this test asserts the extended procedure finds the hazard.
func TestMicDyn2MixedAdjacentExtension(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	cov := cube.MustParseCover("b' + a'c' + c'd", names)
	if !Static1HazardFree(cov) {
		t.Fatal("setup: the cover must contain all primes")
	}
	f := bexpr.FromCover(cov, names)
	set := MustAnalyze(f)
	zero := uint64(0b1110) // a=0, b=1, c=1, d=1
	one := uint64(0b0000)
	if _, ok := set.Dynamic[Transition{From: zero, To: one}]; !ok {
		t.Fatal("setup: the exact simulator must flag the transition")
	}
	recs := MicDynHaz2Level(cov)
	if len(recs) == 0 {
		t.Fatal("extended procedure should produce records for this cover")
	}
	// The specific hazard must be characterised by containment of a
	// generated minimal space.
	tBig := cube.Supercube(cube.Minterm(4, zero), cube.Minterm(4, one))
	for _, g := range ExpandDyn2(cov, recs) {
		tSmall := cube.Supercube(cube.Minterm(4, g.From), cube.Minterm(4, g.To))
		if tBig.Contains(tSmall) {
			return
		}
	}
	t.Error("hazard a'bcd -> a'b'c'd' not characterised by the extended procedure")
}

// TestTernaryAgreesOnStatic cross-checks Eichelberger ternary simulation
// with the exact simulator for static transitions on multi-level
// structures.
func TestTernaryAgreesOnStatic(t *testing.T) {
	exprs := []string{
		"a*b + a'*c",
		"a*b + a'*c + b*c",
		"(a + b)*(a' + c)",
		"s'*a + s*b",
		"(w + x)*y",
		"w*y + x*y",
		"(w + y' + x')*(x*y + y'*z)",
	}
	for _, e := range exprs {
		f := bexpr.MustParse(e)
		n := f.NumVars()
		set := MustAnalyze(f)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := a + 1; b < 1<<uint(n); b++ {
				if f.Eval(a) != f.Eval(b) {
					continue
				}
				ternaryX := StaticHazardTernary(f, a, b)
				tr := normStatic(Transition{From: a, To: b})
				_, s1 := set.Static1[tr]
				_, s0 := set.Static0[tr]
				logicHaz := s1 || s0
				// Ternary X covers both function and logic hazards; when the
				// function is constant over T they coincide with logic hazards.
				constOverT := functionConstOverT(f, n, a, b)
				if constOverT && ternaryX != logicHaz {
					t.Errorf("%q static %0*b<->%0*b: ternary=%v exact=%v",
						e, n, a, n, b, ternaryX, logicHaz)
				}
				if !constOverT && logicHaz {
					t.Errorf("%q: function-hazardous transition also classified as logic hazard", e)
				}
			}
		}
	}
}

func functionConstOverT(f *bexpr.Function, n int, a, b uint64) bool {
	tc := cube.Supercube(cube.Minterm(n, a), cube.Minterm(n, b))
	want := f.Eval(a)
	for _, x := range tc.Minterms(n, nil) {
		if f.Eval(x) != want {
			return false
		}
	}
	return true
}

// TestSetTranslate checks hazard-set translation through a matching
// binding, including input phase flips and output inversion.
func TestSetTranslate(t *testing.T) {
	mux := bexpr.MustParse("s'*a + s*b") // vars s=0, a=1, b=2
	set := MustAnalyze(mux)

	// Identity binding.
	id := Binding{Perm: []int{0, 1, 2}}
	if !set.Translate(id, 3).Equal(set) {
		t.Error("identity translation must preserve the set")
	}

	// Permute s->2, a->0, b->1 in the target space.
	perm := Binding{Perm: []int{2, 0, 1}}
	tset := set.Translate(perm, 3)
	// Cell hazard at a=b=1, s changing maps to target vars 0,1 = 1, var 2 changing.
	tr := normStatic(Transition{From: 0b011, To: 0b111})
	if _, ok := tset.Static1[tr]; !ok {
		t.Errorf("permuted set misses translated hazard; got %v", tset)
	}

	// Output inversion turns the static-1 hazard into a static-0 one.
	inv := Binding{Perm: []int{0, 1, 2}, InvOut: true}
	iset := set.Translate(inv, 3)
	if len(iset.Static1) != 0 || len(iset.Static0) != len(set.Static1) {
		t.Errorf("output inversion should exchange static kinds: %v -> %v", set, iset)
	}

	// An input phase flip on s relocates the hazardous transitions but the
	// translated set must match analyzing the rewritten expression.
	flip := Binding{Perm: []int{0, 1, 2}, InvIn: 1 << 0}
	fset := set.Translate(flip, 3)
	direct := MustAnalyze(bexpr.MustParse("s*a + s'*b")) // s replaced by s'
	if !fset.Equal(direct) {
		t.Errorf("input-flip translation mismatch:\n%v\nvs direct\n%v", fset, direct)
	}
}

// TestSubsetOf exercises the matching filter's acceptance condition.
func TestSubsetOf(t *testing.T) {
	clean := MustAnalyze(bexpr.MustParse("a*b"))
	dirty := MustAnalyze(bexpr.MustParse("s'*a + s*b"))
	if !clean.Empty() {
		t.Fatal("a single AND gate must be hazard-free")
	}
	if !clean.SubsetOf(dirty) {
		t.Error("empty set must be a subset of anything")
	}
	if dirty.SubsetOf(clean) {
		t.Error("hazardous set must not be a subset of the clean set")
	}
	if !dirty.SubsetOf(dirty) {
		t.Error("subset must be reflexive")
	}
}

// randomCover builds a random non-trivial SOP over n variables.
func randomCover(rng *rand.Rand, n, ncubes int) cube.Cover {
	cov := cube.NewCover(n)
	mask := cube.VarMask(n)
	for i := 0; i < ncubes; i++ {
		used := rng.Uint64() & mask
		if used == 0 {
			used = 1
		}
		c := cube.Cube{Used: used, Phase: rng.Uint64() & used}
		cov.Add(c)
	}
	cov.Cubes = cube.DedupCubes(cov.Cubes)
	return cov
}

func BenchmarkAnalyzeMux(b *testing.B) {
	f := bexpr.MustParse("s'*a + s*b")
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatic1Compact(b *testing.B) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	cov := cube.MustParseCover("ab + a'c + bd + c'd' + ef + e'g + fh + g'h'", names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Static1Hazards(cov)
	}
}

func BenchmarkMicDynHaz2Level(b *testing.B) {
	cov := fig8().MustCover()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MicDynHaz2Level(cov)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestFigure7TransitionSpaces reproduces Figure 7: within one transition
// space T[α,β] the input variables may change in any order, and different
// orders exercise different behaviour — one path is clean, another
// excites a dynamic logic hazard, a third excites a dynamic function
// hazard. We realise the figure with f = w'x + wy over the transition
// α = 000 → β = 111 (w, x, y all rising).
func TestFigure7TransitionSpaces(t *testing.T) {
	f := bexpr.MustParse("w'*x + w*y") // vars w=0, x=1, y=2
	eval := func(w, x, y int) bool {
		var p uint64
		if w != 0 {
			p |= 1
		}
		if x != 0 {
			p |= 2
		}
		if y != 0 {
			p |= 4
		}
		return f.Eval(p)
	}
	if eval(0, 0, 0) || !eval(1, 1, 1) {
		t.Fatal("setup: f(α)=0, f(β)=1 required")
	}

	// Path 1: W↑ → Y↑ → X↑ — the function rises exactly once (clean).
	seq1 := []bool{eval(0, 0, 0), eval(1, 0, 0), eval(1, 0, 1), eval(1, 1, 1)}
	if changes(seq1) != 1 {
		t.Errorf("path W,Y,X should change once, got sequence %v", seq1)
	}

	// Path 3: X↑ → W↑ → Y↑ — the function itself glitches 0→1→0→1: a
	// dynamic function hazard, independent of implementation.
	seq3 := []bool{eval(0, 0, 0), eval(0, 1, 0), eval(1, 1, 0), eval(1, 1, 1)}
	if changes(seq3) != 3 {
		t.Errorf("path X,W,Y should exercise the function hazard, got %v", seq3)
	}

	// The whole transition space therefore has a function hazard, so the
	// exact analysis rightly refuses to call it a logic hazard...
	sim, err := NewSimulator(f)
	if err != nil {
		t.Fatal(err)
	}
	_, hazardous, err := sim.Classify(0b000, 0b111)
	if err != nil {
		t.Fatal(err)
	}
	if hazardous {
		t.Error("a function-hazardous transition must not be classified as a logic hazard")
	}

	// ...yet the implementation can also glitch through path 2 (Y↑ → X↑ →
	// W↑): the w'x gate pulses and dies before wy turns on. The
	// interleaving simulation sees at least the 0→1→0→1 excursion.
	mc, err := sim.MaxOutputChanges(0b000, 0b111)
	if err != nil {
		t.Fatal(err)
	}
	if mc < 3 {
		t.Errorf("some interleaving should drive the output through 3+ changes, got %d", mc)
	}
}

func changes(seq []bool) int {
	n := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1] {
			n++
		}
	}
	return n
}

// TestTranslateRoundTripProperty: translating a hazard set through a
// binding and back through the inverse binding is the identity.
func TestTranslateRoundTripProperty(t *testing.T) {
	base := MustAnalyze(bexpr.MustParse("s'*a + s*b"))
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	prop := func(permSeed uint8, inv uint8, invOut bool) bool {
		perm := permFromSeed(int(permSeed), 3)
		b := Binding{Perm: perm, InvIn: uint64(inv) & 0b111, InvOut: invOut}
		// Inverse binding: perm-1, with input flips relocated.
		invPerm := make([]int, 3)
		var invIn uint64
		for i, v := range perm {
			invPerm[v] = i
			if b.InvIn&(1<<uint(i)) != 0 {
				invIn |= 1 << uint(v)
			}
		}
		ib := Binding{Perm: invPerm, InvIn: invIn, InvOut: invOut}
		round := base.Translate(b, 3).Translate(ib, 3)
		return round.Equal(base)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// permFromSeed deterministically derives a permutation of n elements.
func permFromSeed(seed, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := rand.New(rand.NewSource(int64(seed)))
	r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// TestFilterMaxBurstProperty: filtering is monotone (result ⊆ original)
// and idempotent, and a filter wider than the variable count is identity.
func TestFilterMaxBurstProperty(t *testing.T) {
	sets := []*Set{
		MustAnalyze(bexpr.MustParse("s'*a + s*b")),
		MustAnalyze(bexpr.MustParse("s'*a + s*b + a*b")),
		MustAnalyze(bexpr.MustParse("w*y + x*y")),
	}
	for _, s := range sets {
		for k := 1; k <= 4; k++ {
			f := s.FilterMaxBurst(k)
			if !f.SubsetOf(s) {
				t.Errorf("filter %d not a subset", k)
			}
			if !f.FilterMaxBurst(k).Equal(f) {
				t.Errorf("filter %d not idempotent", k)
			}
		}
		if !s.FilterMaxBurst(s.N).Equal(s) {
			t.Error("full-width filter must be identity")
		}
		// k=1 keeps exactly the single-input-change hazards.
		f1 := s.FilterMaxBurst(1)
		for tr := range f1.Static1 {
			if popcount(tr.From^tr.To) != 1 {
				t.Error("k=1 filter kept a wide transition")
			}
		}
	}
}

// TestFilterMaxBurstNoAliasing: FilterMaxBurst must return a fresh set for
// every k, including k <= 0 ("no filter"). Returning the receiver lets a
// caller's mutation corrupt the original — fatal once sets are shared
// through the hazard-analysis cache.
func TestFilterMaxBurstNoAliasing(t *testing.T) {
	s := MustAnalyze(bexpr.MustParse("s'*a + s*b"))
	for _, k := range []int{-1, 0, 1, s.N} {
		f := s.FilterMaxBurst(k)
		if f == s {
			t.Fatalf("FilterMaxBurst(%d) returned the receiver", k)
		}
		if k <= 0 && !f.Equal(s) {
			t.Errorf("FilterMaxBurst(%d) must keep every hazard", k)
		}
		before := len(s.Static1) + len(s.Static0) + len(s.Dynamic)
		f.Static1[Transition{From: 0, To: 0}] = struct{}{}
		f.Static0[Transition{From: 1, To: 1}] = struct{}{}
		f.Dynamic[Transition{From: 2, To: 2}] = struct{}{}
		after := len(s.Static1) + len(s.Static0) + len(s.Dynamic)
		if before != after {
			t.Fatalf("FilterMaxBurst(%d): mutating the filtered set changed the original", k)
		}
	}
}

// TestRepairStatic1 removes all m.i.c. static-1 hazards while preserving
// the function; the exact analyser confirms.
func TestRepairStatic1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	names := []string{"a", "b", "c", "d"}
	repairedSome := 0
	for iter := 0; iter < 120; iter++ {
		cov := randomCover(rng, 4, 1+rng.Intn(4))
		if cov.IsEmpty() {
			continue
		}
		fixed, err := RepairStatic1(cov)
		if err != nil {
			t.Fatalf("cover %v: %v", cov.StringVars(names), err)
		}
		if !fixed.EquivalentTo(cov) {
			t.Fatalf("repair changed the function of %v", cov.StringVars(names))
		}
		set := MustAnalyze(bexpr.FromCover(fixed, names))
		if len(set.Static1) != 0 {
			t.Fatalf("cover %v: repair left static-1 hazards: %s",
				fixed.StringVars(names), set.Describe(names))
		}
		if len(fixed.Cubes) > len(cov.Cubes) {
			repairedSome++
		}
	}
	if repairedSome == 0 {
		t.Fatal("no cover actually needed repair; test is vacuous")
	}
}

// TestRepairStatic1Mux: the canonical example — repairing the mux inserts
// exactly the consensus cube.
func TestRepairStatic1Mux(t *testing.T) {
	names := []string{"s", "a", "b"}
	mux := cube.MustParseCover("s'a + sb", names)
	fixed, err := RepairStatic1(mux)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed.Cubes) != 3 || !fixed.SingleCubeContains(cube.MustParseCube("ab", names)) {
		t.Errorf("repaired mux = %v, want the consensus cube added", fixed.StringVars(names))
	}
}

// TestRepairStatic1SIC only needs the adjacency consensus cubes.
func TestRepairStatic1SIC(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	names := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 80; iter++ {
		cov := randomCover(rng, 4, 1+rng.Intn(4))
		fixed, err := RepairStatic1SIC(cov)
		if err != nil {
			t.Fatal(err)
		}
		if !fixed.EquivalentTo(cov) {
			t.Fatalf("s.i.c. repair changed the function of %v", cov.StringVars(names))
		}
		set, err := Analyze(bexpr.FromCover(fixed, names))
		if err != nil {
			continue // repaired cover too wide for exact analysis
		}
		for tr := range set.Static1 {
			if popcount(tr.From^tr.To) == 1 {
				t.Fatalf("cover %v: s.i.c. static-1 hazard survives repair", fixed.StringVars(names))
			}
		}
	}
}

func TestReportDescribe(t *testing.T) {
	rep, err := AnalyzeFunction(bexpr.MustParse("s'*a + s*b"))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Describe([]string{"s", "a", "b"})
	for _, want := range []string{"static-1 records", "uncovered adjacency", "exact transition sets", "T = ab"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if !rep.HasHazards() {
		t.Error("mux report must flag hazards")
	}
	clean, err := AnalyzeFunction(bexpr.MustParse("a*b"))
	if err != nil {
		t.Fatal(err)
	}
	if clean.HasHazards() {
		t.Error("AND2 must be clean")
	}
	if got := clean.Describe([]string{"a", "b"}); !strings.Contains(got, "no logic hazards") {
		t.Errorf("clean report = %q", got)
	}
}

func TestSetDescribeAndCounts(t *testing.T) {
	set := MustAnalyze(bexpr.MustParse("s'*a + s*b"))
	if set.Count() != set.CountKind(KindStatic1)+set.CountKind(KindStatic0)+set.CountKind(KindDynamic) {
		t.Error("count mismatch")
	}
	if set.CountKind(Kind(99)) != 0 {
		t.Error("unknown kind must count zero")
	}
	if got := KindStatic0.String(); got != "static-0" {
		t.Errorf("kind string = %q", got)
	}
	trs := set.Transitions(KindStatic1)
	if len(trs) != 1 {
		t.Fatalf("transitions = %v", trs)
	}
}

func TestAnalyzeSharedMux(t *testing.T) {
	mux := bexpr.MustParse("s'*a + s*b")
	shared, err := AnalyzeShared(mux, 1<<0) // s shared
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Empty() {
		t.Errorf("shared-select mux should be hazard-free: %v", shared)
	}
	unshared := MustAnalyze(mux)
	if unshared.Empty() {
		t.Error("independent-path mux must be hazardous")
	}
	if !shared.SubsetOf(unshared) {
		t.Error("sharing paths can only remove hazards")
	}
}

func TestTernaryValues(t *testing.T) {
	if T0.String() != "0" || T1.String() != "1" || TX.String() != "X" {
		t.Error("ternary strings wrong")
	}
	// ab + a'b is functionally b, but the STRUCTURE can glitch while a
	// changes with b=1 (no single gate holds the output), and ternary
	// simulation rightly reports X — it analyses the implementation, not
	// the function.
	f := bexpr.MustParse("a*b + a'*b")
	if got := TernaryEval(f, []Ternary{TX, T1}); got != TX {
		t.Errorf("structural X expected for the uncovered transition: got %v", got)
	}
	// The consensus-completed structure resolves to 1.
	fFixed := bexpr.MustParse("a*b + a'*b + b")
	if got := TernaryEval(fFixed, []Ternary{TX, T1}); got != T1 {
		t.Errorf("held structure should evaluate to 1: got %v", got)
	}
	g := bexpr.MustParse("a*b")
	if got := TernaryEval(g, []Ternary{TX, T0}); got != T0 {
		t.Errorf("0 input should dominate AND: got %v", got)
	}
	if got := TernaryEval(g, []Ternary{TX, T1}); got != TX {
		t.Errorf("X should propagate: got %v", got)
	}
}
