package hazard

import (
	"fmt"

	"gfmap/internal/cube"
)

// The paper notes (§4) that the hazard-analysis algorithms "can also be
// extended to hazard-removal algorithms". This file implements that
// extension for static logic 1-hazards of two-level covers: the analysis
// pinpoints the uncovered transition regions, and repair inserts exactly
// the redundant cubes (expanded to primes) that hold the output through
// them — the generalisation of adding the consensus cube to a multiplexer.

// RepairStatic1 returns a cover with additional (functionally redundant)
// prime cubes such that no multi-input-change static logic 1-hazard
// remains. The function is unchanged; only its structure grows. The
// procedure iterates analysis and insertion until the analysis is clean,
// which terminates because each round adds a prime implicant not yet in
// the cover and the prime count is finite.
func RepairStatic1(f cube.Cover) (cube.Cover, error) {
	out := f.Clone()
	for round := 0; ; round++ {
		if round > 1<<16 {
			return cube.Cover{}, fmt.Errorf("hazard: static-1 repair did not converge")
		}
		recs := Static1Hazards(out)
		if len(recs) == 0 {
			return out, nil
		}
		added := false
		for _, rec := range recs {
			p := out.ExpandToPrime(rec.T)
			dup := false
			for _, c := range out.Cubes {
				if c.Equal(p) {
					dup = true
					break
				}
			}
			if !dup {
				out.Add(p)
				added = true
			}
		}
		if !added {
			// Every hazard region's prime is already present yet the
			// analysis still complains: the remaining records come from
			// non-prime cubes; replace them by their primes.
			for i, c := range out.Cubes {
				out.Cubes[i] = out.ExpandToPrime(c)
			}
			out.Cubes = cube.DedupCubes(out.Cubes)
			if len(Static1Hazards(out)) != 0 {
				return cube.Cover{}, fmt.Errorf("hazard: static-1 repair stalled")
			}
			return out, nil
		}
	}
}

// RepairStatic1SIC removes only the single-input-change static 1-hazards,
// inserting the consensus cube of every uncovered adjacency. This is the
// lighter repair appropriate for single-input-change fundamental-mode
// designs.
func RepairStatic1SIC(f cube.Cover) (cube.Cover, error) {
	out := f.Clone()
	for round := 0; ; round++ {
		if round > 1<<16 {
			return cube.Cover{}, fmt.Errorf("hazard: s.i.c. static-1 repair did not converge")
		}
		recs := Static1HazardsSIC(out)
		if len(recs) == 0 {
			return out, nil
		}
		for _, rec := range recs {
			out.Add(rec.T)
		}
		out.Cubes = cube.DedupCubes(out.Cubes)
	}
}
