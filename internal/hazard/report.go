package hazard

import (
	"fmt"
	"strings"

	"gfmap/internal/bexpr"
)

// Report bundles the results of the full hazard analysis of one expression
// structure: the compact records produced by the paper's algorithms plus,
// when the support is small enough, the exact transition-level Set used by
// the mapper's matching filter.
type Report struct {
	// Set is the exact transition-level characterisation, nil when the
	// function has more than MaxExhaustiveVars variables.
	Set *Set
	// Static1 are the records of the static_1_analysis procedure applied to
	// the hazard-preserving SOP flattening of the expression.
	Static1 []Static1Record
	// Static0 are the reconvergence-based static 0-hazards.
	Static0 []Static0Record
	// SicDyn are the single-input-change dynamic hazards.
	SicDyn []SicDynRecord
	// MicDyn are the verified multi-input-change dynamic hazards of the
	// multi-level structure (findMicDynHazMultiLevel).
	MicDyn []Transition
}

// AnalyzeFunction runs every hazard-analysis algorithm on the expression.
// This is the per-cell work the asynchronous mapper performs when a library
// is read in (§3.2.1) and the per-subnetwork work performed when a
// hazardous cell is considered as a match (§3.2.2).
func AnalyzeFunction(f *bexpr.Function) (*Report, error) {
	return AnalyzeFunctionShared(f, 0)
}

// AnalyzeFunctionShared is AnalyzeFunction under the pass-transistor model:
// the masked variables' paths switch atomically (see NewSimulatorShared).
// The compact record algorithms assume independent paths and are therefore
// skipped for shared cells; the exact Set is authoritative.
func AnalyzeFunctionShared(f *bexpr.Function, shared uint64) (*Report, error) {
	if shared != 0 {
		r := &Report{}
		set, err := AnalyzeShared(f, shared)
		if err != nil {
			return nil, err
		}
		r.Set = set
		return r, nil
	}
	return analyzeFunctionFull(f)
}

func analyzeFunctionFull(f *bexpr.Function) (*Report, error) {
	r := &Report{}
	cov, err := f.Cover()
	if err != nil {
		return nil, err
	}
	r.Static1 = Static1Hazards(cov)
	if r.Static0, err = Static0Hazards(f); err != nil {
		return nil, err
	}
	if r.SicDyn, err = SicDynHazards(f); err != nil {
		return nil, err
	}
	if f.NumVars() <= MaxExhaustiveVars {
		if r.MicDyn, err = MicDynHazMultiLevel(f); err != nil {
			return nil, err
		}
		if r.Set, err = Analyze(f); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// HasHazards reports whether any algorithm found a logic hazard.
func (r *Report) HasHazards() bool {
	if r.Set != nil {
		return !r.Set.Empty()
	}
	return len(r.Static1) > 0 || len(r.Static0) > 0 || len(r.SicDyn) > 0 || len(r.MicDyn) > 0
}

// Summary renders a one-line summary of the report.
func (r *Report) Summary() string {
	if r.Set != nil {
		return r.Set.String()
	}
	return fmt.Sprintf("static-1:%d static-0:%d sic-dyn:%d mic-dyn:%d",
		len(r.Static1), len(r.Static0), len(r.SicDyn), len(r.MicDyn))
}

// Describe renders the full report with variable names.
func (r *Report) Describe(names []string) string {
	var b strings.Builder
	if len(r.Static1) > 0 {
		fmt.Fprintf(&b, "static-1 records (%d):\n", len(r.Static1))
		for _, rec := range r.Static1 {
			src := "uncovered adjacency"
			if rec.FromNonPrime {
				src = "non-prime cube"
			}
			fmt.Fprintf(&b, "  T = %s (%s)\n", rec.T.StringVars(names), src)
		}
	}
	if len(r.Static0) > 0 {
		fmt.Fprintf(&b, "static-0 records (%d):\n", len(r.Static0))
		for _, rec := range r.Static0 {
			fmt.Fprintf(&b, "  %s changing with %s\n", varName(rec.Var, names), rec.Side.StringVars(names))
		}
	}
	if len(r.SicDyn) > 0 {
		fmt.Fprintf(&b, "s.i.c. dynamic records (%d):\n", len(r.SicDyn))
		for _, rec := range r.SicDyn {
			from := 0
			if rec.FromValue {
				from = 1
			}
			fmt.Fprintf(&b, "  %s: %d->%d with %s\n", varName(rec.Var, names), from, 1-from, rec.Side.StringVars(names))
		}
	}
	if r.Set != nil {
		b.WriteString("exact transition sets:\n")
		b.WriteString(indent(r.Set.Describe(names), "  "))
	}
	if b.Len() == 0 {
		return "no logic hazards\n"
	}
	return b.String()
}

func varName(v int, names []string) string {
	if v < len(names) {
		return names[v]
	}
	return fmt.Sprintf("x%d", v)
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}
