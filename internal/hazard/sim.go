package hazard

import (
	"fmt"
	"math/bits"

	"gfmap/internal/bexpr"
)

// MaxSkewPaths bounds the number of simultaneously changing signal paths
// the interleaving simulation will enumerate exactly (2^k states). Library
// cells and match clusters stay far below this; wider cases return an
// error rather than a silently approximate answer.
const MaxSkewPaths = 20

// Simulator classifies input transitions of a multi-level expression under
// the standard asynchronous delay model: every path from an input leaf to
// the output has its own arbitrary delay, so during a multi-input change
// the leaf values flip one at a time in an arbitrary order. The output
// glitches for some delay assignment iff it changes value more than
// permitted along some interleaving — a condition the simulator decides
// exactly with a subset dynamic program over the changing paths.
//
// On two-level SOP structures the model coincides with the cube conditions
// of Theorem 4.1 (a cube intersecting the transition space without
// containing the 1-endpoint can pulse); on multi-level structures it
// additionally accounts for shared paths, which is what makes, for
// example, (w+x)*y cleaner than w*y + x*y (Figure 4).
type Simulator struct {
	f        *bexpr.Function
	n        int
	leafVar  []int    // variable index of each leaf, in DFS order
	varPaths []uint64 // for each variable, bitmask of its leaf indices
	val      []bool   // cached static truth table
	// shared marks variables whose leaf occurrences ride one physical
	// wire and therefore switch atomically — the pass-transistor (Actel
	// Act2) select model of the paper's §6: in a transmission-gate mux
	// tree the reconvergent select literals are not independent paths.
	shared uint64
}

// NewSimulator prepares a simulator for the expression. It requires at
// most MaxExhaustiveVars variables and MaxSkewPaths leaves per variable
// group involved in any transition (checked per call).
func NewSimulator(f *bexpr.Function) (*Simulator, error) {
	return NewSimulatorShared(f, 0)
}

// NewSimulatorShared prepares a simulator in which the variables of the
// given bitmask have shared (atomically switching) paths.
func NewSimulatorShared(f *bexpr.Function, shared uint64) (*Simulator, error) {
	n := f.NumVars()
	if n > MaxExhaustiveVars {
		return nil, fmt.Errorf("hazard: %d variables exceed the exact-analysis bound %d", n, MaxExhaustiveVars)
	}
	s := &Simulator{f: f, n: n, varPaths: make([]uint64, n), shared: shared}
	var walk func(e *bexpr.Expr) error
	walk = func(e *bexpr.Expr) error {
		if e.Op == bexpr.OpVar {
			idx := len(s.leafVar)
			if idx >= 64 {
				return fmt.Errorf("hazard: expression has more than 64 leaves")
			}
			v := f.VarIndex(e.Name)
			s.leafVar = append(s.leafVar, v)
			s.varPaths[v] |= 1 << uint(idx)
			return nil
		}
		for _, k := range e.Kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(f.Root); err != nil {
		return nil, err
	}
	size := uint64(1) << uint(n)
	s.val = make([]bool, size)
	for p := uint64(0); p < size; p++ {
		s.val[p] = f.Eval(p)
	}
	return s, nil
}

// Eval returns the cached static value of the function at a point.
func (s *Simulator) Eval(p uint64) bool { return s.val[p] }

// evalLeaves evaluates the expression with an explicit value per leaf,
// given as a bitmask over DFS leaf indices.
func (s *Simulator) evalLeaves(leafBits uint64) bool {
	idx := 0
	var rec func(e *bexpr.Expr) bool
	rec = func(e *bexpr.Expr) bool {
		switch e.Op {
		case bexpr.OpConst:
			return e.Val
		case bexpr.OpVar:
			v := leafBits&(1<<uint(idx)) != 0
			idx++
			return v
		case bexpr.OpNot:
			return !rec(e.Kids[0])
		case bexpr.OpAnd:
			out := true
			for _, k := range e.Kids {
				if !rec(k) {
					out = false
				}
			}
			return out
		case bexpr.OpOr:
			out := false
			for _, k := range e.Kids {
				if rec(k) {
					out = true
				}
			}
			return out
		}
		panic("hazard: bad op")
	}
	return rec(s.f.Root)
}

// leafBitsAt returns the leaf-value bitmask corresponding to a static
// input point.
func (s *Simulator) leafBitsAt(p uint64) uint64 {
	var out uint64
	for i, v := range s.leafVar {
		if p&(1<<uint(v)) != 0 {
			out |= 1 << uint(i)
		}
	}
	return out
}

// MaxOutputChanges returns the largest number of output value changes over
// all interleavings of the changing paths for the transition a→b. Leaves
// of shared variables switch together as one event.
func (s *Simulator) MaxOutputChanges(a, b uint64) (int, error) {
	changing := a ^ b
	// Collect independently switching groups of leaf indices: one group
	// per leaf for ordinary variables, one group per variable for shared
	// ones.
	var groups []uint64
	for v := 0; v < s.n; v++ {
		if changing&(1<<uint(v)) == 0 {
			continue
		}
		if s.shared&(1<<uint(v)) != 0 {
			if s.varPaths[v] != 0 {
				groups = append(groups, s.varPaths[v])
			}
			continue
		}
		paths := s.varPaths[v]
		for paths != 0 {
			bit := paths & -paths
			paths &^= bit
			groups = append(groups, bit)
		}
	}
	k := len(groups)
	if k > MaxSkewPaths {
		return 0, fmt.Errorf("hazard: transition flips %d paths, exceeding the %d-path bound", k, MaxSkewPaths)
	}
	base := s.leafBitsAt(a)
	target := s.leafBitsAt(b)
	// val[sub] = output with the groups of sub switched to their b values.
	vals := make([]bool, 1<<uint(k))
	for sub := 0; sub < 1<<uint(k); sub++ {
		bitsMask := base
		for j := 0; j < k; j++ {
			if sub&(1<<uint(j)) != 0 {
				leaves := groups[j]
				bitsMask = (bitsMask &^ leaves) | (target & leaves)
			}
		}
		vals[sub] = s.evalLeaves(bitsMask)
	}
	// DP over the subset lattice: mc[sub] = max changes along any monotone
	// chain from the empty set to sub.
	mc := make([]int8, 1<<uint(k))
	for sub := 1; sub < 1<<uint(k); sub++ {
		best := int8(-1)
		rest := sub
		for rest != 0 {
			j := bits.TrailingZeros64(uint64(rest))
			rest &^= 1 << uint(j)
			prev := sub &^ (1 << uint(j))
			c := mc[prev]
			if vals[sub] != vals[prev] {
				c++
			}
			if c > best {
				best = c
			}
		}
		mc[sub] = best
	}
	return int(mc[len(mc)-1]), nil
}

// Classify determines whether the transition between points a and b is
// logic-hazardous in this implementation, returning the hazard kind and
// whether a logic hazard is present. Function-hazardous transitions are
// never logic hazards (ok=false, hazard=false).
func (s *Simulator) Classify(a, b uint64) (kind Kind, hazardous bool, err error) {
	fa, fb := s.val[a], s.val[b]
	fmc := s.functionMaxChanges(a, b)
	if fa == fb {
		if fmc > 0 {
			return 0, false, nil // static function hazard
		}
		mc, err := s.MaxOutputChanges(a, b)
		if err != nil {
			return 0, false, err
		}
		if fa {
			return KindStatic1, mc > 0, nil
		}
		return KindStatic0, mc > 0, nil
	}
	if fmc > 1 {
		return 0, false, nil // dynamic function hazard
	}
	mc, err := s.MaxOutputChanges(a, b)
	if err != nil {
		return 0, false, err
	}
	return KindDynamic, mc > 1, nil
}

// functionMaxChanges returns the largest number of value changes of the
// *function* along any monotone path of input points from a to b — the
// function-hazard counterpart of MaxOutputChanges. A static transition has
// a function hazard iff the result is positive; a dynamic one iff it
// exceeds one. The DP runs over subsets of the changing variables, reading
// the cached truth table, so it is fast even for wide supports.
func (s *Simulator) functionMaxChanges(a, b uint64) int {
	changing := a ^ b
	var cv []uint64
	for v := 0; v < s.n; v++ {
		if changing&(1<<uint(v)) != 0 {
			cv = append(cv, 1<<uint(v))
		}
	}
	k := len(cv)
	if k == 0 {
		return 0
	}
	size := 1 << uint(k)
	mc := make([]int8, size)
	vals := make([]bool, size)
	for sub := 0; sub < size; sub++ {
		p := a
		for j := 0; j < k; j++ {
			if sub&(1<<uint(j)) != 0 {
				p = (p &^ cv[j]) | (b & cv[j])
			}
		}
		vals[sub] = s.val[p]
	}
	for sub := 1; sub < size; sub++ {
		best := int8(-1)
		rest := sub
		for rest != 0 {
			j := bits.TrailingZeros64(uint64(rest))
			rest &^= 1 << uint(j)
			prev := sub &^ (1 << uint(j))
			c := mc[prev]
			if vals[sub] != vals[prev] {
				c++
			}
			if c > best {
				best = c
			}
		}
		mc[sub] = best
	}
	return int(mc[size-1])
}

// AnalyzeShared computes the exact hazard set of an expression in which
// the masked variables have shared paths (the pass-transistor model).
func AnalyzeShared(f *bexpr.Function, shared uint64) (*Set, error) {
	sim, err := NewSimulatorShared(f, shared)
	if err != nil {
		return nil, err
	}
	return sim.Analyze()
}

// Analyze enumerates every unordered pair of input points and builds the
// exact hazard set of the implementation.
func (s *Simulator) Analyze() (*Set, error) {
	set := NewSet(s.n)
	size := uint64(1) << uint(s.n)
	for a := uint64(0); a < size; a++ {
		for b := a + 1; b < size; b++ {
			kind, hazardous, err := s.Classify(a, b)
			if err != nil {
				return nil, err
			}
			if !hazardous {
				continue
			}
			tr := Transition{From: a, To: b}
			if kind == KindDynamic && s.val[a] {
				tr = Transition{From: b, To: a} // From is the 0-endpoint
			}
			set.add(kind, tr)
		}
	}
	return set, nil
}

// DynamicTransitionHazardous reports whether the specific
// function-hazard-free transition from the 0-point zero to the 1-point one
// exhibits a dynamic logic hazard in this implementation.
func (s *Simulator) DynamicTransitionHazardous(zero, one uint64) (bool, error) {
	mc, err := s.MaxOutputChanges(zero, one)
	if err != nil {
		return false, err
	}
	return mc > 1, nil
}
