package hazard

import (
	"fmt"
	"math/bits"

	"gfmap/internal/bexpr"
)

// MaxSkewPaths bounds the number of simultaneously changing signal paths
// the interleaving simulation will enumerate exactly (2^k states). Library
// cells and match clusters stay far below this; wider cases return an
// error rather than a silently approximate answer.
const MaxSkewPaths = 20

// maxAnalyzeWork bounds the total number of interleaving states a full
// Analyze enumeration may visit, summed over all transition pairs. An
// expression with many repeated literals can be cheap per call but
// astronomically expensive in aggregate (the per-pair state count is
// exponential in the repeated-leaf count); past this budget Analyze
// returns an error and callers treat the cone as too wide for exact
// analysis, exactly like a support wider than MaxExhaustiveVars.
const maxAnalyzeWork = 1 << 27

// Node opcodes of the compiled expression program.
const (
	opConst = iota
	opVar
	opNot
	opAnd
	opOr
)

// simNode is one expression node of the compiled evaluator, stored in
// postorder (kids before parents, root last). AND nodes count their false
// kids, OR nodes their true kids, so toggling a leaf updates ancestors in
// O(1) per level and propagation stops at the first node whose value is
// unchanged.
type simNode struct {
	op     uint8
	cval   bool  // opConst: the constant value
	val    bool  // current value
	parent int32 // postorder index of the parent; -1 at the root
	aux    int32 // opVar: leaf index; opAnd/opOr: kid count
	count  int32 // opAnd: false kids; opOr: true kids
}

// Simulator classifies input transitions of a multi-level expression under
// the standard asynchronous delay model: every path from an input leaf to
// the output has its own arbitrary delay, so during a multi-input change
// the leaf values flip one at a time in an arbitrary order. The output
// glitches for some delay assignment iff it changes value more than
// permitted along some interleaving — a condition the simulator decides
// exactly with a subset dynamic program over the changing paths.
//
// On two-level SOP structures the model coincides with the cube conditions
// of Theorem 4.1 (a cube intersecting the transition space without
// containing the 1-endpoint can pulse); on multi-level structures it
// additionally accounts for shared paths, which is what makes, for
// example, (w+x)*y cleaner than w*y + x*y (Figure 4).
type Simulator struct {
	f        *bexpr.Function
	n        int
	leafVar  []int    // variable index of each leaf, in DFS order
	varPaths []uint64 // for each variable, bitmask of its leaf indices
	val      []bool   // cached static truth table
	// shared marks variables whose leaf occurrences ride one physical
	// wire and therefore switch atomically — the pass-transistor (Actel
	// Act2) select model of the paper's §6: in a transmission-gate mux
	// tree the reconvergent select literals are not independent paths.
	shared uint64
	// multiPath marks variables that contribute more than one independent
	// path group. A transition flipping none of them has its interleaving
	// behaviour fully determined by the function's truth table, so the
	// path analysis can be skipped.
	multiPath uint64

	nodes    []simNode
	leafNode []int32 // postorder node index of each leaf
	stack    []bool  // scratch for evalInit
	vals     []bool  // scratch: root value per path subset
	mc       []int8  // scratch: DP table over path subsets

	// Scratch for changingGroups and functionMaxChanges. The fmc buffers
	// are separate from vals/mc because Classify runs the function-hazard
	// DP before the path analyses that reuse those.
	groupsBuf []uint64
	fmcCV     []uint64
	fmcMC     []int8
	fmcVals   []bool
}

// NewSimulator prepares a simulator for the expression. It requires at
// most MaxExhaustiveVars variables and MaxSkewPaths leaves per variable
// group involved in any transition (checked per call).
func NewSimulator(f *bexpr.Function) (*Simulator, error) {
	return NewSimulatorShared(f, 0)
}

// NewSimulatorShared prepares a simulator in which the variables of the
// given bitmask have shared (atomically switching) paths.
func NewSimulatorShared(f *bexpr.Function, shared uint64) (*Simulator, error) {
	n := f.NumVars()
	if n > MaxExhaustiveVars {
		return nil, fmt.Errorf("hazard: %d variables exceed the exact-analysis bound %d", n, MaxExhaustiveVars)
	}
	s := &Simulator{f: f, n: n, varPaths: make([]uint64, n), shared: shared}
	var compile func(e *bexpr.Expr) (int32, error)
	compile = func(e *bexpr.Expr) (int32, error) {
		switch e.Op {
		case bexpr.OpConst:
			s.nodes = append(s.nodes, simNode{op: opConst, cval: e.Val})
		case bexpr.OpVar:
			idx := len(s.leafVar)
			if idx >= 64 {
				return 0, fmt.Errorf("hazard: expression has more than 64 leaves")
			}
			v := s.f.VarIndex(e.Name)
			s.leafVar = append(s.leafVar, v)
			s.varPaths[v] |= 1 << uint(idx)
			s.nodes = append(s.nodes, simNode{op: opVar, aux: int32(idx)})
			s.leafNode = append(s.leafNode, 0) // patched below
		case bexpr.OpNot, bexpr.OpAnd, bexpr.OpOr:
			for _, k := range e.Kids {
				if _, err := compile(k); err != nil {
					return 0, err
				}
			}
			op := uint8(opNot)
			switch e.Op {
			case bexpr.OpAnd:
				op = opAnd
			case bexpr.OpOr:
				op = opOr
			}
			s.nodes = append(s.nodes, simNode{op: op, aux: int32(len(e.Kids))})
		default:
			return 0, fmt.Errorf("hazard: bad op %v", e.Op)
		}
		return int32(len(s.nodes) - 1), nil
	}
	root, err := compile(f.Root)
	if err != nil {
		return nil, err
	}
	// Wire parents: walk the postorder again with an explicit stack of
	// pending subtree roots.
	s.nodes[root].parent = -1
	var kids []int32
	for i := range s.nodes {
		nd := &s.nodes[i]
		switch nd.op {
		case opConst:
			kids = append(kids, int32(i))
		case opVar:
			s.leafNode[nd.aux] = int32(i)
			kids = append(kids, int32(i))
		case opNot:
			s.nodes[kids[len(kids)-1]].parent = int32(i)
			kids = kids[:len(kids)-1]
			kids = append(kids, int32(i))
		case opAnd, opOr:
			m := int(nd.aux)
			for _, k := range kids[len(kids)-m:] {
				s.nodes[k].parent = int32(i)
			}
			kids = kids[:len(kids)-m]
			kids = append(kids, int32(i))
		}
	}
	s.stack = make([]bool, 0, len(s.nodes))
	size := uint64(1) << uint(n)
	s.val = make([]bool, size)
	for p := uint64(0); p < size; p++ {
		s.val[p] = f.Eval(p)
	}
	for v := 0; v < n; v++ {
		if s.groupCount(v) > 1 {
			s.multiPath |= 1 << uint(v)
		}
	}
	return s, nil
}

// groupCount returns the number of independently switching path groups of
// a variable: one per leaf occurrence, or one in total if the variable's
// paths are shared.
func (s *Simulator) groupCount(v int) int {
	if s.varPaths[v] == 0 {
		return 0
	}
	if s.shared&(1<<uint(v)) != 0 {
		return 1
	}
	return bits.OnesCount64(s.varPaths[v])
}

// Eval returns the cached static value of the function at a point.
func (s *Simulator) Eval(p uint64) bool { return s.val[p] }

// evalInit initialises every node value (and the AND/OR kid counters) for
// an explicit value per leaf, given as a bitmask over DFS leaf indices,
// and returns the root value.
func (s *Simulator) evalInit(leafBits uint64) bool {
	st := s.stack[:0]
	for i := range s.nodes {
		nd := &s.nodes[i]
		var v bool
		switch nd.op {
		case opConst:
			v = nd.cval
		case opVar:
			v = leafBits&(1<<uint(nd.aux)) != 0
		case opNot:
			v = !st[len(st)-1]
			st = st[:len(st)-1]
		case opAnd:
			m := int(nd.aux)
			f := int32(0)
			for _, kv := range st[len(st)-m:] {
				if !kv {
					f++
				}
			}
			st = st[:len(st)-m]
			nd.count = f
			v = f == 0
		case opOr:
			m := int(nd.aux)
			tc := int32(0)
			for _, kv := range st[len(st)-m:] {
				if kv {
					tc++
				}
			}
			st = st[:len(st)-m]
			nd.count = tc
			v = tc > 0
		}
		nd.val = v
		st = append(st, v)
	}
	s.stack = st[:0]
	return st[len(st)-1]
}

// flipLeaf toggles one leaf and incrementally re-evaluates the ancestors,
// stopping at the first node whose value does not change.
func (s *Simulator) flipLeaf(leaf int) {
	i := s.leafNode[leaf]
	nd := &s.nodes[i]
	nd.val = !nd.val
	childVal := nd.val
	p := nd.parent
	for p >= 0 {
		pn := &s.nodes[p]
		var nv bool
		switch pn.op {
		case opNot:
			nv = !pn.val
		case opAnd:
			if childVal {
				pn.count--
			} else {
				pn.count++
			}
			nv = pn.count == 0
		case opOr:
			if childVal {
				pn.count++
			} else {
				pn.count--
			}
			nv = pn.count > 0
		}
		if nv == pn.val {
			return
		}
		pn.val = nv
		childVal = nv
		p = pn.parent
	}
}

// rootVal returns the current incrementally maintained root value.
func (s *Simulator) rootVal() bool { return s.nodes[len(s.nodes)-1].val }

// changingGroups collects the independently switching groups of leaf
// indices for the transition a→b: one group per leaf for ordinary
// variables, one group per variable for shared ones.
func (s *Simulator) changingGroups(a, b uint64) ([]uint64, error) {
	changing := a ^ b
	groups := s.groupsBuf[:0]
	for v := 0; v < s.n; v++ {
		if changing&(1<<uint(v)) == 0 {
			continue
		}
		if s.shared&(1<<uint(v)) != 0 {
			if s.varPaths[v] != 0 {
				groups = append(groups, s.varPaths[v])
			}
			continue
		}
		paths := s.varPaths[v]
		for paths != 0 {
			bit := paths & -paths
			paths &^= bit
			groups = append(groups, bit)
		}
	}
	s.groupsBuf = groups
	if k := len(groups); k > MaxSkewPaths {
		return nil, fmt.Errorf("hazard: transition flips %d paths, exceeding the %d-path bound", k, MaxSkewPaths)
	}
	return groups, nil
}

// fillVals enumerates every subset of the changing groups in Gray-code
// order — each step toggles the leaves of exactly one group — and records
// the root value per subset in s.vals. Since every group belongs to a
// changing variable, its leaves differ between the endpoints, so toggling
// is exactly the switch to the other endpoint's value.
func (s *Simulator) fillVals(a uint64, groups []uint64) []bool {
	k := len(groups)
	size := 1 << uint(k)
	if cap(s.vals) < size {
		s.vals = make([]bool, size)
	}
	vals := s.vals[:size]
	vals[0] = s.evalInit(s.leafBitsAt(a))
	gray := 0
	for i := 1; i < size; i++ {
		j := bits.TrailingZeros64(uint64(i))
		for leaves := groups[j]; leaves != 0; {
			bit := leaves & -leaves
			leaves &^= bit
			s.flipLeaf(bits.TrailingZeros64(bit))
		}
		gray ^= 1 << uint(j)
		vals[gray] = s.rootVal()
	}
	return vals
}

// leafBitsAt returns the leaf-value bitmask corresponding to a static
// input point.
func (s *Simulator) leafBitsAt(p uint64) uint64 {
	var out uint64
	for i, v := range s.leafVar {
		if p&(1<<uint(v)) != 0 {
			out |= 1 << uint(i)
		}
	}
	return out
}

// maxChangesDP runs the subset-lattice dynamic program over the filled
// vals table: mc[sub] = max changes along any monotone chain from the
// empty set to sub. If limit >= 0 the scan returns early with limit+1 as
// soon as any subset exceeds it (mc is monotone along the lattice, so the
// full-set value can only be larger).
func (s *Simulator) maxChangesDP(vals []bool, limit int) int {
	size := len(vals)
	if cap(s.mc) < size {
		s.mc = make([]int8, size)
	}
	mc := s.mc[:size]
	mc[0] = 0
	for sub := 1; sub < size; sub++ {
		best := int8(-1)
		rest := sub
		for rest != 0 {
			j := bits.TrailingZeros64(uint64(rest))
			rest &^= 1 << uint(j)
			prev := sub &^ (1 << uint(j))
			c := mc[prev]
			if vals[sub] != vals[prev] {
				c++
			}
			if c > best {
				best = c
			}
		}
		mc[sub] = best
		if limit >= 0 && int(best) > limit {
			return limit + 1
		}
	}
	return int(mc[size-1])
}

// MaxOutputChanges returns the largest number of output value changes over
// all interleavings of the changing paths for the transition a→b. Leaves
// of shared variables switch together as one event.
func (s *Simulator) MaxOutputChanges(a, b uint64) (int, error) {
	groups, err := s.changingGroups(a, b)
	if err != nil {
		return 0, err
	}
	return s.maxChangesDP(s.fillVals(a, groups), -1), nil
}

// staticPathHazard reports whether the static transition a→b (equal
// endpoint values) glitches under some interleaving: true iff any path
// subset yields a root value different from the endpoints' — every subset
// lies on a monotone chain, so one deviation forces at least two output
// changes.
func (s *Simulator) staticPathHazard(a, b uint64) (bool, error) {
	groups, err := s.changingGroups(a, b)
	if err != nil {
		return false, err
	}
	k := len(groups)
	want := s.evalInit(s.leafBitsAt(a))
	gray := 0
	for i := 1; i < 1<<uint(k); i++ {
		j := bits.TrailingZeros64(uint64(i))
		for leaves := groups[j]; leaves != 0; {
			bit := leaves & -leaves
			leaves &^= bit
			s.flipLeaf(bits.TrailingZeros64(bit))
		}
		gray ^= 1 << uint(j)
		if s.rootVal() != want {
			return true, nil
		}
	}
	return false, nil
}

// dynamicPathHazard reports whether the function-hazard-free dynamic
// transition a→b changes the output more than once under some
// interleaving.
func (s *Simulator) dynamicPathHazard(a, b uint64) (bool, error) {
	groups, err := s.changingGroups(a, b)
	if err != nil {
		return false, err
	}
	return s.maxChangesDP(s.fillVals(a, groups), 1) > 1, nil
}

// Classify determines whether the transition between points a and b is
// logic-hazardous in this implementation, returning the hazard kind and
// whether a logic hazard is present. Function-hazardous transitions are
// never logic hazards (ok=false, hazard=false).
func (s *Simulator) Classify(a, b uint64) (kind Kind, hazardous bool, err error) {
	fa, fb := s.val[a], s.val[b]
	fmc := s.functionMaxChanges(a, b)
	// When every changing variable contributes at most one independent
	// path group, leaf-subset evaluation coincides with truth-table
	// evaluation: the interleaving behaviour is exactly the function's, so
	// a function-hazard-free transition cannot be logic-hazardous.
	pure := (a^b)&s.multiPath == 0
	if fa == fb {
		if fmc > 0 {
			return 0, false, nil // static function hazard
		}
		if pure {
			if fa {
				return KindStatic1, false, nil
			}
			return KindStatic0, false, nil
		}
		hz, err := s.staticPathHazard(a, b)
		if err != nil {
			return 0, false, err
		}
		if fa {
			return KindStatic1, hz, nil
		}
		return KindStatic0, hz, nil
	}
	if fmc > 1 {
		return 0, false, nil // dynamic function hazard
	}
	if pure {
		return KindDynamic, false, nil
	}
	hz, err := s.dynamicPathHazard(a, b)
	if err != nil {
		return 0, false, err
	}
	return KindDynamic, hz, nil
}

// functionMaxChanges returns the largest number of value changes of the
// *function* along any monotone path of input points from a to b — the
// function-hazard counterpart of MaxOutputChanges. A static transition has
// a function hazard iff the result is positive; a dynamic one iff it
// exceeds one. The DP runs over subsets of the changing variables, reading
// the cached truth table, so it is fast even for wide supports.
func (s *Simulator) functionMaxChanges(a, b uint64) int {
	changing := a ^ b
	cv := s.fmcCV[:0]
	for v := 0; v < s.n; v++ {
		if changing&(1<<uint(v)) != 0 {
			cv = append(cv, 1<<uint(v))
		}
	}
	s.fmcCV = cv
	k := len(cv)
	if k == 0 {
		return 0
	}
	size := 1 << uint(k)
	if cap(s.fmcMC) < size {
		s.fmcMC = make([]int8, size)
		s.fmcVals = make([]bool, size)
	}
	mc := s.fmcMC[:size]
	vals := s.fmcVals[:size]
	mc[0] = 0
	for sub := 0; sub < size; sub++ {
		p := a
		for j := 0; j < k; j++ {
			if sub&(1<<uint(j)) != 0 {
				p = (p &^ cv[j]) | (b & cv[j])
			}
		}
		vals[sub] = s.val[p]
	}
	for sub := 1; sub < size; sub++ {
		best := int8(-1)
		rest := sub
		for rest != 0 {
			j := bits.TrailingZeros64(uint64(rest))
			rest &^= 1 << uint(j)
			prev := sub &^ (1 << uint(j))
			c := mc[prev]
			if vals[sub] != vals[prev] {
				c++
			}
			if c > best {
				best = c
			}
		}
		mc[sub] = best
	}
	return int(mc[size-1])
}

// AnalyzeShared computes the exact hazard set of an expression in which
// the masked variables have shared paths (the pass-transistor model).
func AnalyzeShared(f *bexpr.Function, shared uint64) (*Set, error) {
	sim, err := NewSimulatorShared(f, shared)
	if err != nil {
		return nil, err
	}
	return sim.Analyze()
}

// analyzeWorkEstimate bounds the total interleaving-state count of a full
// pair enumeration: summed over all ordered endpoint pairs, each changing
// variable multiplies the per-pair state count by 2^groups, so the total
// is the product over variables of (2 + 2·2^groups) — halved for
// unordered pairs. Floating point keeps wide cases from overflowing.
func (s *Simulator) analyzeWorkEstimate() float64 {
	est := 0.5
	for v := 0; v < s.n; v++ {
		est *= 2 + 2*float64(uint64(1)<<uint(s.groupCount(v)))
	}
	return est
}

// Analyze enumerates every unordered pair of input points and builds the
// exact hazard set of the implementation.
func (s *Simulator) Analyze() (*Set, error) {
	if est := s.analyzeWorkEstimate(); est > maxAnalyzeWork {
		return nil, fmt.Errorf("hazard: exact analysis needs ~%.2g interleaving states, exceeding the %d budget (expression repeats too many literals)", est, int64(maxAnalyzeWork))
	}
	set := NewSet(s.n)
	size := uint64(1) << uint(s.n)
	for a := uint64(0); a < size; a++ {
		for b := a + 1; b < size; b++ {
			kind, hazardous, err := s.Classify(a, b)
			if err != nil {
				return nil, err
			}
			if !hazardous {
				continue
			}
			tr := Transition{From: a, To: b}
			if kind == KindDynamic && s.val[a] {
				tr = Transition{From: b, To: a} // From is the 0-endpoint
			}
			set.add(kind, tr)
		}
	}
	return set, nil
}

// DynamicTransitionHazardous reports whether the specific
// function-hazard-free transition from the 0-point zero to the 1-point one
// exhibits a dynamic logic hazard in this implementation.
func (s *Simulator) DynamicTransitionHazardous(zero, one uint64) (bool, error) {
	if (zero^one)&s.multiPath == 0 {
		// Single-path-per-variable: interleavings reproduce exactly the
		// function's own behaviour.
		return s.functionMaxChanges(zero, one) > 1, nil
	}
	return s.dynamicPathHazard(zero, one)
}
