package hazard

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"gfmap/internal/bexpr"
)

// refMaxOutputChanges is the original, direct implementation of the
// interleaving analysis: full recursive re-evaluation of the expression
// per path subset, then the complete subset DP. The optimized simulator
// (compiled program, counter-incremental evaluation, Gray-code
// enumeration, early exits) must agree with it transition for transition.
func refMaxOutputChanges(s *Simulator, a, b uint64) (int, error) {
	groups, err := s.changingGroups(a, b)
	if err != nil {
		return 0, err
	}
	k := len(groups)
	evalLeaves := func(leafBits uint64) bool {
		idx := 0
		var rec func(e *bexpr.Expr) bool
		rec = func(e *bexpr.Expr) bool {
			switch e.Op {
			case bexpr.OpConst:
				return e.Val
			case bexpr.OpVar:
				v := leafBits&(1<<uint(idx)) != 0
				idx++
				return v
			case bexpr.OpNot:
				return !rec(e.Kids[0])
			case bexpr.OpAnd:
				out := true
				for _, kk := range e.Kids {
					if !rec(kk) {
						out = false
					}
				}
				return out
			case bexpr.OpOr:
				out := false
				for _, kk := range e.Kids {
					if rec(kk) {
						out = true
					}
				}
				return out
			}
			panic("bad op")
		}
		return rec(s.f.Root)
	}
	base := s.leafBitsAt(a)
	target := s.leafBitsAt(b)
	vals := make([]bool, 1<<uint(k))
	for sub := 0; sub < 1<<uint(k); sub++ {
		bitsMask := base
		for j := 0; j < k; j++ {
			if sub&(1<<uint(j)) != 0 {
				leaves := groups[j]
				bitsMask = (bitsMask &^ leaves) | (target & leaves)
			}
		}
		vals[sub] = evalLeaves(bitsMask)
	}
	mc := make([]int8, 1<<uint(k))
	for sub := 1; sub < 1<<uint(k); sub++ {
		best := int8(-1)
		rest := sub
		for rest != 0 {
			j := bits.TrailingZeros64(uint64(rest))
			rest &^= 1 << uint(j)
			prev := sub &^ (1 << uint(j))
			c := mc[prev]
			if vals[sub] != vals[prev] {
				c++
			}
			if c > best {
				best = c
			}
		}
		mc[sub] = best
	}
	return int(mc[len(mc)-1]), nil
}

// refClassify mirrors the original Classify on top of the reference
// path analysis.
func refClassify(s *Simulator, a, b uint64) (Kind, bool, error) {
	fa, fb := s.val[a], s.val[b]
	fmc := s.functionMaxChanges(a, b)
	if fa == fb {
		if fmc > 0 {
			return 0, false, nil
		}
		mc, err := refMaxOutputChanges(s, a, b)
		if err != nil {
			return 0, false, err
		}
		if fa {
			return KindStatic1, mc > 0, nil
		}
		return KindStatic0, mc > 0, nil
	}
	if fmc > 1 {
		return 0, false, nil
	}
	mc, err := refMaxOutputChanges(s, a, b)
	if err != nil {
		return 0, false, err
	}
	return KindDynamic, mc > 1, nil
}

// randExprDup builds a random expression over nVars variables with
// deliberately repeated literals, the structure that exercises the
// multi-path machinery.
func randExprDup(rng *rand.Rand, nVars, depth int) *bexpr.Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		e := bexpr.Var(fmt.Sprintf("v%d", rng.Intn(nVars)))
		if rng.Intn(2) == 0 {
			e = bexpr.Not(e)
		}
		return e
	}
	k := 2 + rng.Intn(2)
	kids := make([]*bexpr.Expr, k)
	for i := range kids {
		kids[i] = randExprDup(rng, nVars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return bexpr.And(kids...)
	}
	return bexpr.Or(kids...)
}

func TestSimulatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := 60
	if testing.Short() {
		cases = 15
	}
	for c := 0; c < cases; c++ {
		nVars := 2 + rng.Intn(3)
		expr := randExprDup(rng, nVars, 2+rng.Intn(2))
		fn := bexpr.New(expr)
		sim, err := NewSimulator(fn)
		if err != nil {
			t.Fatalf("case %d (%s): %v", c, expr, err)
		}
		n := uint(fn.NumVars())
		for a := uint64(0); a < 1<<n; a++ {
			for b := a + 1; b < 1<<n; b++ {
				wantMC, err1 := refMaxOutputChanges(sim, a, b)
				gotMC, err2 := sim.MaxOutputChanges(a, b)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("case %d (%s) %b->%b: error mismatch %v vs %v", c, expr, a, b, err1, err2)
				}
				if err1 == nil && wantMC != gotMC {
					t.Fatalf("case %d (%s) %b->%b: MaxOutputChanges %d, reference %d", c, expr, a, b, gotMC, wantMC)
				}
				wantKind, wantHz, err1 := refClassify(sim, a, b)
				gotKind, gotHz, err2 := sim.Classify(a, b)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("case %d (%s) %b->%b: classify error mismatch %v vs %v", c, expr, a, b, err1, err2)
				}
				if err1 == nil && (wantHz != gotHz || (wantHz && wantKind != gotKind)) {
					t.Fatalf("case %d (%s) %b->%b: classify (%v,%v), reference (%v,%v)",
						c, expr, a, b, gotKind, gotHz, wantKind, wantHz)
				}
			}
		}
	}
}

// TestAnalyzeWorkBudget: an expression whose repeated literals make the
// full enumeration astronomically expensive must be rejected up front,
// not ground through.
func TestAnalyzeWorkBudget(t *testing.T) {
	// 10 variables, each appearing 4 times: the pair enumeration would
	// need ~(2+2*16)^10/2 ≈ 1e15 interleaving states.
	var terms []*bexpr.Expr
	for rep := 0; rep < 4; rep++ {
		var lits []*bexpr.Expr
		for v := 0; v < 10; v++ {
			lits = append(lits, bexpr.Var(fmt.Sprintf("v%d", v)))
		}
		terms = append(terms, bexpr.And(lits...))
	}
	fn := bexpr.New(bexpr.Or(terms...))
	if _, err := Analyze(fn); err == nil {
		t.Fatal("expected a work-budget error for a massively repeated expression")
	}
}
