package hazard

import (
	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// Static0Record describes a static logic 0-hazard of a multi-level
// expression (§4.1.2): a vacuous product term of the path-labelled SOP —
// variable Var reconverges in both phases — whose side literals can be
// sensitised while the output should stay 0 across a change of Var.
type Static0Record struct {
	Var  int       // the reconverging variable
	Side cube.Cube // the values of the other variables in the vacuous term
}

// SicDynRecord describes a single-input-change dynamic logic hazard
// (§4.2.3): with the vacuous term's side literals held, a change of Var
// drives the output through a proper transition while the vacuous term can
// add an extra pulse.
type SicDynRecord struct {
	Var  int
	Side cube.Cube
	// FromValue is the value of Var at the hazardous transition's starting
	// point (the output-0 endpoint).
	FromValue bool
}

// labelAnalysis is the shared path-labelling pass: it transforms the
// expression to its labelled SOP and extracts, for every vacuous product
// term with exactly one doubly-phased variable, that variable and the side
// cube formed by the remaining literals. Terms whose side literals
// themselves conflict (two or more reconverging variables) require
// multi-input changes and are handled by the transition-level analysis
// instead.
func labelAnalysis(f *bexpr.Function) (*bexpr.LabeledCover, []Static0Record, error) {
	lc, err := f.Labeled()
	if err != nil {
		return nil, nil, err
	}
	var cands []Static0Record
	for t := range lc.Terms {
		v := lc.VacuousVar(t)
		if v < 0 {
			continue
		}
		side := cube.Universal
		multi := false
		for _, p := range lc.Terms[t] {
			pa := pathOf(lc, p)
			if pa.Var == v {
				continue
			}
			var both bool
			side, both = addSideLiteral(side, pa)
			if both {
				multi = true
				break
			}
		}
		if multi {
			continue
		}
		cands = append(cands, Static0Record{Var: v, Side: side})
	}
	return lc, cands, nil
}

func pathOf(lc *bexpr.LabeledCover, p int) bexpr.Path { return lc.Paths[p] }

// addSideLiteral intersects the side cube with the literal implied by a
// path (signal must be 1, so the variable takes value !Neg). both reports a
// phase conflict, i.e. a second reconverging variable.
func addSideLiteral(side cube.Cube, pa bexpr.Path) (cube.Cube, bool) {
	out, ok := side.WithLiteral(pa.Var, !pa.Neg)
	if !ok {
		return side, true
	}
	return out, false
}

// Static0Hazards finds the single-input-change static 0-hazards of a
// multi-level expression: for each vacuous term, the hazard is real iff
// some assignment consistent with the side cube keeps the output 0 for both
// values of the reconverging variable (the glitch would then be visible).
// The sensitisation check uses cover algebra (OFF-set cofactors), so it
// scales beyond the exhaustive-analysis bound.
func Static0Hazards(f *bexpr.Function) ([]Static0Record, error) {
	_, cands, err := labelAnalysis(f)
	if err != nil {
		return nil, err
	}
	on, err := f.Cover()
	if err != nil {
		return nil, err
	}
	off := on.Complement()
	var out []Static0Record
	seen := make(map[Static0Record]struct{})
	for _, cand := range cands {
		// Need: ∃ x ⊇ Side with f(x, v=0) = 0 and f(x, v=1) = 0.
		g := cube.And(off.CofactorLiteral(cand.Var, false), off.CofactorLiteral(cand.Var, true))
		sideCover := cube.NewCover(on.N)
		sideCover.Add(cand.Side.WithoutVar(cand.Var))
		if !cube.And(g, sideCover).IsEmpty() {
			key := Static0Record{Var: cand.Var, Side: cand.Side.WithoutVar(cand.Var)}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
	}
	return out, nil
}

// SicDynHazards finds the single-input-change dynamic logic hazards of a
// multi-level expression per §4.2.3: a vacuous term whose side literals can
// be sensitised while the change of its reconverging variable properly
// toggles the output from 0 to 1.
func SicDynHazards(f *bexpr.Function) ([]SicDynRecord, error) {
	_, cands, err := labelAnalysis(f)
	if err != nil {
		return nil, err
	}
	on, err := f.Cover()
	if err != nil {
		return nil, err
	}
	off := on.Complement()
	var out []SicDynRecord
	seen := make(map[SicDynRecord]struct{})
	for _, cand := range cands {
		side := cand.Side.WithoutVar(cand.Var)
		sideCover := cube.NewCover(on.N)
		sideCover.Add(side)
		for _, fromVal := range []bool{false, true} {
			// Need: ∃ x ⊇ Side with f(x, v=fromVal) = 0 and f(x, v=!fromVal) = 1.
			g := cube.And(off.CofactorLiteral(cand.Var, fromVal), on.CofactorLiteral(cand.Var, !fromVal))
			if cube.And(g, sideCover).IsEmpty() {
				continue
			}
			key := SicDynRecord{Var: cand.Var, Side: side, FromValue: fromVal}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
	}
	return out, nil
}
