package hazard

import (
	"gfmap/internal/cube"
)

// Static1Record describes one static logic 1-hazard found by the compact
// analysis: a region T of the ON-set over which some multi-input-change
// transition is not held by any single cube of the expression.
type Static1Record struct {
	// T is the hazardous transition region (an adjacency/consensus cube, or
	// the prime expansion of a non-prime cube).
	T cube.Cube
	// FromNonPrime is true when the record came from the non-prime-cube
	// branch of the algorithm rather than from an uncovered cube adjacency.
	FromNonPrime bool
}

// Static1Hazards is the paper's static_1_analysis procedure (§4.1.1) on a
// two-level SOP expression:
//
//  1. Every non-prime cube is expanded to a prime; if that prime is not in
//     the expression, the transitions it spans are hazardous, and the prime
//     replaces the cube for the adjacency pass.
//  2. All cube adjacencies are generated in O(n²) cube pairs using the
//     CONFLICTS bit-vector; an adjacency cube not contained in any single
//     cube of the expression is a static 1-hazard.
func Static1Hazards(f cube.Cover) []Static1Record {
	var hazards []Static1Record
	work := f.Clone()

	// Pass 1: non-prime cubes.
	for i, c := range work.Cubes {
		if c.IsUniversal() || work.IsPrime(c) {
			continue
		}
		prime := work.ExpandToPrime(c)
		present := false
		for _, d := range work.Cubes {
			if d.Equal(prime) {
				present = true
				break
			}
		}
		if !present {
			hazards = append(hazards, Static1Record{T: prime, FromNonPrime: true})
		}
		work.Cubes[i] = prime
	}
	work.Cubes = cube.DedupCubes(work.Cubes)

	// Pass 2: generate all cube adjacencies.
	var adjacencies []cube.Cube
	for i := 0; i < len(work.Cubes); i++ {
		for j := i + 1; j < len(work.Cubes); j++ {
			if adj, ok := cube.Consensus(work.Cubes[i], work.Cubes[j]); ok {
				adjacencies = append(adjacencies, adj)
			}
		}
	}
	adjacencies = cube.DedupCubes(adjacencies)

	// Pass 3: any adjacency not covered by a single cube is a hazard.
	for _, adj := range adjacencies {
		if !work.SingleCubeContains(adj) {
			hazards = append(hazards, Static1Record{T: adj})
		}
	}
	return hazards
}

// Static1HazardsSIC is the simpler single-input-change-only test of §4.1.1:
// every cube adjacency must be covered by some single cube of the
// expression. It skips the prime-expansion pass, since a non-prime cube by
// itself only spans multi-input changes.
func Static1HazardsSIC(f cube.Cover) []Static1Record {
	var hazards []Static1Record
	var adjacencies []cube.Cube
	for i := 0; i < len(f.Cubes); i++ {
		for j := i + 1; j < len(f.Cubes); j++ {
			if adj, ok := cube.Consensus(f.Cubes[i], f.Cubes[j]); ok {
				adjacencies = append(adjacencies, adj)
			}
		}
	}
	adjacencies = cube.DedupCubes(adjacencies)
	for _, adj := range adjacencies {
		if !f.SingleCubeContains(adj) {
			hazards = append(hazards, Static1Record{T: adj})
		}
	}
	return hazards
}

// Static1HazardFree reports whether the SOP expression has no static logic
// 1-hazards at all for any multi-input-change transition. By the classical
// theorem cited in the paper ([9]; Eichelberger), this holds iff every
// prime implicant of the function appears in the cover.
func Static1HazardFree(f cube.Cover) bool {
	for _, p := range f.AllPrimes() {
		found := false
		for _, c := range f.Cubes {
			if c.Equal(p) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Static1TransitionHazardous reports whether the specific static transition
// between ON-set points a and b (with the function 1 throughout T[a,b]) is
// hazardous in the given SOP: no single cube holds the whole transition
// space.
func Static1TransitionHazardous(f cube.Cover, a, b uint64) bool {
	t := cube.Supercube(cube.Minterm(f.N, a), cube.Minterm(f.N, b))
	return !f.SingleCubeContains(t)
}
