package hazard

import (
	"gfmap/internal/bexpr"
)

// Ternary is a value of three-valued (0, 1, X) logic used by Eichelberger's
// hazard-detection procedure.
type Ternary int8

// Ternary logic values.
const (
	T0 Ternary = iota // definitely 0
	T1                // definitely 1
	TX                // unknown / in transition
)

func (t Ternary) String() string {
	switch t {
	case T0:
		return "0"
	case T1:
		return "1"
	default:
		return "X"
	}
}

// FromBool converts a binary value to a ternary one.
func FromBool(b bool) Ternary {
	if b {
		return T1
	}
	return T0
}

func tand(a, b Ternary) Ternary {
	switch {
	case a == T0 || b == T0:
		return T0
	case a == T1 && b == T1:
		return T1
	default:
		return TX
	}
}

func tor(a, b Ternary) Ternary {
	switch {
	case a == T1 || b == T1:
		return T1
	case a == T0 && b == T0:
		return T0
	default:
		return TX
	}
}

func tnot(a Ternary) Ternary {
	switch a {
	case T0:
		return T1
	case T1:
		return T0
	default:
		return TX
	}
}

// TernaryEval evaluates the expression under three-valued logic, with vals
// giving the value of each variable in the function's order. This models
// arbitrary gate and wire delays: an X input means "somewhere between old
// and new value", and an X output means the output may glitch.
func TernaryEval(f *bexpr.Function, vals []Ternary) Ternary {
	return ternaryNode(f, f.Root, vals)
}

func ternaryNode(f *bexpr.Function, e *bexpr.Expr, vals []Ternary) Ternary {
	switch e.Op {
	case bexpr.OpConst:
		return FromBool(e.Val)
	case bexpr.OpVar:
		return vals[f.VarIndex(e.Name)]
	case bexpr.OpNot:
		return tnot(ternaryNode(f, e.Kids[0], vals))
	case bexpr.OpAnd:
		out := T1
		for _, k := range e.Kids {
			out = tand(out, ternaryNode(f, k, vals))
			if out == T0 {
				return T0
			}
		}
		return out
	case bexpr.OpOr:
		out := T0
		for _, k := range e.Kids {
			out = tor(out, ternaryNode(f, k, vals))
			if out == T1 {
				return T1
			}
		}
		return out
	}
	panic("hazard: bad op")
}

// TernaryTransition runs the Eichelberger pair procedure for the
// multi-input change from point a to point b: every changing input is set
// to X while stable inputs keep their value, and the expression is
// evaluated under ternary logic. For a combinational expression a single
// evaluation reaches the fixpoint.
func TernaryTransition(f *bexpr.Function, a, b uint64) Ternary {
	n := f.NumVars()
	vals := make([]Ternary, n)
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		switch {
		case a&bit == b&bit:
			vals[i] = FromBool(a&bit != 0)
		default:
			vals[i] = TX
		}
	}
	return TernaryEval(f, vals)
}

// StaticHazardTernary applies Eichelberger's static-hazard test to the
// transition a→b: if the output should remain stable (f(a) == f(b)) but the
// ternary transition value is X, the output may glitch — a static hazard
// (function or logic). Ternary simulation detects exactly the static
// hazards under the arbitrary gate/wire delay model, so it serves as the
// verification oracle for the combinatorial algorithms.
func StaticHazardTernary(f *bexpr.Function, a, b uint64) bool {
	fa, fb := f.Eval(a), f.Eval(b)
	if fa != fb {
		return false
	}
	return TernaryTransition(f, a, b) == TX
}
