package hazard

import (
	"strconv"
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// wideFunction builds an n-input function (an AND of all variables OR'd
// with a product of the first two), wide enough to exceed every exact
// bound while staying cheap to flatten.
func wideFunction(t *testing.T, n int) *bexpr.Function {
	t.Helper()
	terms := make([]string, n)
	for i := range terms {
		terms[i] = "x" + strconv.Itoa(i)
	}
	src := strings.Join(terms, "*") + " + " + terms[0] + "*" + terms[1]
	f, err := bexpr.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// Regression for the fuzzing issue: a 25-input node used to reach
// cube/hazard minterm enumeration and panic (or allocate without bound).
// The wide paths must now degrade gracefully: the full report completes
// using the compact algorithms, and the exact-only entry points return
// errors.
func TestWideSupportDoesNotPanic(t *testing.T) {
	f := wideFunction(t, 25)

	rep, err := AnalyzeFunction(f)
	if err != nil {
		t.Fatalf("AnalyzeFunction on 25 vars: %v", err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}

	if _, err := MicDynHazMultiLevel(f); err == nil {
		t.Fatal("MicDynHazMultiLevel on 25 vars: want error, got none")
	}

	if _, err := Analyze(f); err == nil {
		t.Fatal("Analyze on 25 vars: want error (exceeds exact bound), got none")
	}
}

// ExpandDyn2 documents an f.N ≤ MaxExhaustiveVars requirement but used to
// enumerate minterms of arbitrarily wide covers when called directly; it
// must now return nil for wide covers instead.
func TestExpandDyn2WideCoverReturnsNil(t *testing.T) {
	n := MaxExhaustiveVars + 15
	f := cube.NewCover(n)
	f.Add(cube.Minterm(n, 0))
	recs := []Dyn2Record{{
		Intersection: cube.Universal,
		Alpha:        []cube.Cube{cube.Universal}, // would expand to 2^25 minterms
		Beta:         []cube.Cube{cube.Universal},
	}}
	if got := ExpandDyn2(f, recs); got != nil {
		t.Fatalf("ExpandDyn2 on N=%d: want nil, got %d transitions", n, len(got))
	}
}
