// Package hazcache is a process-wide, concurrency-safe memo of exact
// hazard-analysis results, shared across cones, worker goroutines and
// whole mapping runs.
//
// Hazard analysis (§4 of the paper) is the dominant cost of async_tmap:
// every candidate cluster is analysed per phase, and detecting hazards is
// fundamentally expensive. The same cluster shapes recur constantly —
// across the cones of one design, across the replicated slices of the big
// controllers, and across parallel DP workers — so one analysis can serve
// them all.
//
// Entries are keyed by the cluster's canonical truth table. Because the
// hazard set of an implementation depends on its *structure*, not only on
// its function (Figure 4: w*y + x*y hazards where (w+x)*y does not),
// equivalent-but-structurally-different clusters must not share a result:
// within a truth-table bucket, entries are disambiguated by the canonical
// structure. Canonicalisation sorts commutative operands and renames
// variables into first-use order, so clusters that are the same structure
// up to input permutation and operand ordering do share one entry; the
// cached set is stored in canonical variable space and translated through
// the recovered binding at lookup time. The cache is therefore
// semantically transparent: mapping results are bit-identical with the
// cache on, off, warm or cold.
//
// The cache is sharded by truth-table hash, each shard behind its own
// RWMutex, so highly parallel mapping runs (core.Options.Workers) scale
// without contention on one lock.
package hazcache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/obs"
	"gfmap/internal/truthtab"
)

const numShards = 64

// DefaultMaxEntries bounds the shared cache; clusters are small (at most
// MaxLeaves inputs), so even the cap costs only a few tens of megabytes.
const DefaultMaxEntries = 1 << 16

// entry is one cached analysis: the hazard set of canonKey's structure in
// canonical variable space. A nil set records an analysis that failed
// (bounds exceeded), so the failure is not recomputed either.
type entry struct {
	structKey string
	set       *hazard.Set
}

type shard struct {
	mu      sync.RWMutex
	buckets map[string][]entry // canonical truth table -> entries per structure
	count   int
	// evictions is guarded by mu, so Stats can read it and count in one
	// consistent per-shard snapshot.
	evictions uint64
	// hits and contended are atomics so the read-locked hit path and the
	// TryLock probes never write under a read lock.
	hits      atomic.Uint64
	contended atomic.Uint64
}

// Cache is a sharded hazard-analysis memo. The zero value is not usable;
// construct with New or use the process-wide Shared cache.
type Cache struct {
	maxPerShard int
	shards      [numShards]shard

	misses atomic.Uint64
}

// Stats is a point-in-time snapshot of the cache counters. Entries and
// Evictions are read under each shard's lock, so every shard contributes
// one internally consistent (count, evictions) pair.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	// Contended counts lock acquisitions that found the shard lock held
	// and had to wait — a direct measure of shard contention under
	// parallel mapping.
	Contended uint64
}

// ShardStat is a consistent snapshot of one shard's occupancy and
// counters, for per-shard metrics export.
type ShardStat struct {
	Entries   int
	Evictions uint64
	Hits      uint64
	Contended uint64
}

// New returns an empty cache holding at most maxEntries analyses;
// maxEntries <= 0 means DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	per := maxEntries / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{maxPerShard: per}
	for i := range c.shards {
		c.shards[i].buckets = make(map[string][]entry)
	}
	return c
}

var shared = New(DefaultMaxEntries)

// Shared returns the process-wide cache used by default for every mapping
// run.
func Shared() *Cache { return shared }

// Canon is the canonical form of a cluster function: a structurally
// normalised expression with variables renamed c0..ck in first-use order,
// the truth table of that expression, and the binding that translates
// hazard sets from canonical variable space back into the original one.
type Canon struct {
	Fn *bexpr.Function
	TT truthtab.TT
	// Back.Perm[i] is the original variable index of canonical variable i.
	Back hazard.Binding
	// N is the original function's variable count (canonical form drops
	// unused variables, the original space may be wider).
	N int
}

// canonName returns the canonical variable name for index i.
func canonName(i int) string { return fmt.Sprintf("c%d", i) }

// blindKey renders the expression with every variable leaf as "v": a
// name-independent shape-and-polarity key, so permuted instances of one
// structure sort their operands the same way before any renaming.
func blindKey(e *bexpr.Expr) string {
	return bexpr.Rename(e, func(string) string { return "v" }).String()
}

// sortTree returns a copy of e with the operands of every AND/OR sorted,
// primarily by their name-blind shape key and then by their rendered form.
// Reordering commutative operands never changes the hazard set: the
// interleaving delay model treats each leaf as an independent path, and
// permuting leaves only permutes path indices.
func sortTree(e *bexpr.Expr) *bexpr.Expr {
	switch e.Op {
	case bexpr.OpConst:
		return bexpr.Const(e.Val)
	case bexpr.OpVar:
		return bexpr.Var(e.Name)
	case bexpr.OpNot:
		return bexpr.Not(sortTree(e.Kids[0]))
	}
	type keyed struct {
		kid         *bexpr.Expr
		blind, full string
	}
	kids := make([]keyed, len(e.Kids))
	for i, k := range e.Kids {
		s := sortTree(k)
		kids[i] = keyed{kid: s, blind: blindKey(s), full: s.String()}
	}
	// Stable insertion sort (operand lists are short).
	less := func(a, b keyed) bool {
		if a.blind != b.blind {
			return a.blind < b.blind
		}
		return a.full < b.full
	}
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && less(kids[j], kids[j-1]); j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	out := make([]*bexpr.Expr, len(kids))
	for i, k := range kids {
		out[i] = k.kid
	}
	if e.Op == bexpr.OpAnd {
		return bexpr.And(out...)
	}
	return bexpr.Or(out...)
}

// Canonicalize computes the canonical form of a cluster function. The
// normalisation alternates operand sorting with renaming variables into
// first-use order until stable (renaming can re-rank operands, so a few
// rounds may be needed; any fixed number of rounds is sound — full
// canonicity only affects the hit rate, never correctness, because the
// struct key records the exact normalised structure).
func Canonicalize(f *bexpr.Function) (Canon, error) {
	root := f.Root
	// cur maps the current variable names to original variable indices.
	cur := make(map[string]int, len(f.Vars))
	for i, v := range f.Vars {
		cur[v] = i
	}
	for iter := 0; iter < 4; iter++ {
		root = sortTree(root)
		order := root.CollectVars(nil)
		ren := make(map[string]string, len(order))
		next := make(map[string]int, len(order))
		changed := false
		for i, name := range order {
			cn := canonName(i)
			ren[name] = cn
			next[cn] = cur[name]
			if cn != name {
				changed = true
			}
		}
		if !changed {
			break
		}
		root = bexpr.Rename(root, func(s string) string { return ren[s] })
		cur = next
	}
	vars := root.CollectVars(nil)
	perm := make([]int, len(vars))
	for i, v := range vars {
		perm[i] = cur[v]
	}
	fn, err := bexpr.NewWithVars(root, vars)
	if err != nil {
		return Canon{}, err
	}
	tt, err := truthtab.FromExpr(fn)
	if err != nil {
		return Canon{}, err
	}
	return Canon{Fn: fn, TT: tt, Back: hazard.Binding{Perm: perm}, N: f.NumVars()}, nil
}

// translate maps a cached canonical-space set into the original variable
// space. The result is always a fresh set: cached sets are shared across
// goroutines and must never escape by reference.
func (cn Canon) translate(set *hazard.Set) *hazard.Set {
	if set == nil {
		return nil
	}
	return set.Translate(cn.Back, cn.N)
}

func shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// Analyze returns the exact hazard set of f in f's own variable space,
// computing it on a miss and serving it from the cache on a hit. A nil set
// means the analysis is infeasible for this structure (bounds exceeded);
// that outcome is cached too. The boolean reports whether the result was
// served from the cache.
func (c *Cache) Analyze(f *bexpr.Function) (*hazard.Set, bool) {
	cn, err := Canonicalize(f)
	if err != nil || len(cn.Fn.Vars) != f.NumVars() {
		// Canonicalisation failures are not cacheable, and neither are
		// functions whose variable order is wider than their syntactic
		// support: hazards then spread over the unused dimensions in a way
		// translation does not reconstruct. Mapper clusters always use
		// every variable, so this path is a defensive fallback.
		c.misses.Add(1)
		set, aerr := hazard.Analyze(f)
		if aerr != nil {
			return nil, false
		}
		return set, false
	}
	ttKey := cn.TT.String()
	structKey := cn.Fn.Root.String()
	sh := &c.shards[shardIndex(ttKey)]

	if !sh.mu.TryRLock() {
		sh.contended.Add(1)
		sh.mu.RLock()
	}
	for _, e := range sh.buckets[ttKey] {
		if e.structKey == structKey {
			sh.mu.RUnlock()
			sh.hits.Add(1)
			return cn.translate(e.set), true
		}
	}
	sh.mu.RUnlock()

	// Miss: analyse outside the lock. Concurrent workers may briefly
	// duplicate an analysis; they converge on a single entry below.
	set, aerr := hazard.Analyze(cn.Fn)
	if aerr != nil {
		set = nil
	}
	c.misses.Add(1)

	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	for _, e := range sh.buckets[ttKey] {
		if e.structKey == structKey {
			// A racing worker inserted first; defer to its result so every
			// caller observes one authoritative set.
			set = e.set
			sh.mu.Unlock()
			return cn.translate(set), false
		}
	}
	if sh.count >= c.maxPerShard {
		// Evict an arbitrary bucket (map iteration order). Eviction only
		// costs future recomputation — results never change.
		for k, b := range sh.buckets {
			sh.count -= len(b)
			delete(sh.buckets, k)
			sh.evictions += uint64(len(b))
			break
		}
	}
	sh.buckets[ttKey] = append(sh.buckets[ttKey], entry{structKey: structKey, set: set})
	sh.count++
	sh.mu.Unlock()
	return cn.translate(set), false
}

// Stats returns a snapshot of the cache counters. Each shard's entry and
// eviction counts are read together under that shard's lock, so the sums
// are built from consistent per-shard pairs rather than field-by-field
// racing reads.
func (c *Cache) Stats() Stats {
	s := Stats{Misses: c.misses.Load()}
	for _, st := range c.ShardStats() {
		s.Entries += st.Entries
		s.Evictions += st.Evictions
		s.Hits += st.Hits
		s.Contended += st.Contended
	}
	return s
}

// ShardStats returns a per-shard snapshot of occupancy, evictions, hits
// and lock contention; Entries and Evictions are read under the shard
// lock as one consistent pair.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, numShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		out[i].Entries = sh.count
		out[i].Evictions = sh.evictions
		sh.mu.RUnlock()
		out[i].Hits = sh.hits.Load()
		out[i].Contended = sh.contended.Load()
	}
	return out
}

// ExportMetrics publishes the cache state into a metrics registry:
// aggregate gauges (hazcache_entries, _hits, _misses, _evictions,
// _contended), per-shard occupancy and hit gauges
// (hazcache_shard<NN>_entries / _hits, emitted only for shards that have
// ever held an entry or served a hit, to keep reports compact), and a
// histogram of shard occupancy (hazcache_shard_occupancy, one sample per
// shard per export) whose spread shows how evenly the truth-table hash
// distributes load. Safe to call repeatedly: gauges are set to the
// current snapshot, never accumulated. A nil registry (or nil cache) is
// a no-op.
func (c *Cache) ExportMetrics(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	shards := c.ShardStats()
	occ := r.Histogram("hazcache_shard_occupancy", obs.ExpBuckets(1, 2, 12))
	var s Stats
	s.Misses = c.misses.Load()
	for i, st := range shards {
		s.Entries += st.Entries
		s.Evictions += st.Evictions
		s.Hits += st.Hits
		s.Contended += st.Contended
		if st.Entries > 0 || st.Hits > 0 || st.Evictions > 0 {
			r.Gauge(fmt.Sprintf("hazcache_shard%02d_entries", i)).Set(float64(st.Entries))
			r.Gauge(fmt.Sprintf("hazcache_shard%02d_hits", i)).Set(float64(st.Hits))
		}
		occ.Observe(float64(st.Entries))
	}
	r.Gauge("hazcache_entries").Set(float64(s.Entries))
	r.Gauge("hazcache_hits").Set(float64(s.Hits))
	r.Gauge("hazcache_misses").Set(float64(s.Misses))
	r.Gauge("hazcache_evictions").Set(float64(s.Evictions))
	r.Gauge("hazcache_contended").Set(float64(s.Contended))
}

// Reset empties the cache and zeroes its counters (for benchmarks that
// need a cold start).
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.buckets = make(map[string][]entry)
		sh.count = 0
		sh.evictions = 0
		sh.mu.Unlock()
		sh.hits.Store(0)
		sh.contended.Store(0)
	}
	c.misses.Store(0)
}
