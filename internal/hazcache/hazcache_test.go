package hazcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/obs"
)

// direct computes the reference hazard set without any caching.
func direct(t *testing.T, f *bexpr.Function) *hazard.Set {
	t.Helper()
	set, err := hazard.Analyze(f)
	if err != nil {
		t.Fatalf("analyze %s: %v", f, err)
	}
	return set
}

func fn(t testing.TB, src string, vars ...string) *bexpr.Function {
	t.Helper()
	if len(vars) == 0 {
		return bexpr.MustParse(src)
	}
	f, err := bexpr.NewWithVars(bexpr.MustParse(src).Root, vars)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestAnalyzeMatchesDirect: the cache is semantically transparent — for a
// spread of structures (redundant covers, factored forms, repeated
// literals, nested complements) the cached result equals a direct
// analysis, both on the miss and on the hit.
func TestAnalyzeMatchesDirect(t *testing.T) {
	exprs := []string{
		"a*b + a'*c",
		"a*b + a'*c + b*c",
		"(a + b)*c",
		"a*c + b*c",
		"(a*b)' + c",
		"a'*(b + c') + a*b*c",
		"((a + b')*(c + d))' + a*d",
		"s'*a + s*b",
		"s'*a + s*b + a*b",
		"a",
		"a'",
	}
	c := New(0)
	for _, src := range exprs {
		f := bexpr.MustParse(src)
		want := direct(t, f)
		got, hit := c.Analyze(f)
		if hit {
			t.Errorf("%s: unexpected hit on first lookup", src)
		}
		if got == nil || !got.Equal(want) {
			t.Errorf("%s: cached-miss set %v, want %v", src, got, want)
		}
		got2, hit2 := c.Analyze(f)
		if !hit2 {
			t.Errorf("%s: expected hit on second lookup", src)
		}
		if got2 == nil || !got2.Equal(want) {
			t.Errorf("%s: cached-hit set %v, want %v", src, got2, want)
		}
		if got == got2 {
			t.Errorf("%s: lookups returned an aliased set", src)
		}
	}
}

// TestPermutedStructuresShare: the same structure with its inputs playing
// permuted roles canonicalises to one entry, and each caller gets the set
// translated back into its own variable space.
func TestPermutedStructuresShare(t *testing.T) {
	f1 := fn(t, "v0*v1 + v0'*v2", "v0", "v1", "v2")
	f2 := fn(t, "v1*v2 + v1'*v0", "v0", "v1", "v2")
	c := New(0)
	got1, hit := c.Analyze(f1)
	if hit {
		t.Fatal("first lookup must miss")
	}
	got2, hit := c.Analyze(f2)
	if !hit {
		t.Error("permuted instance of the same structure should hit")
	}
	if !got1.Equal(direct(t, f1)) {
		t.Errorf("f1 set wrong: %v", got1)
	}
	if !got2.Equal(direct(t, f2)) {
		t.Errorf("f2 set wrong after translation: %v", got2)
	}
}

// TestStructuresNotConflated is the Figure 4 guard: w*y + x*y and
// (w+x)*y compute the same function but hazard differently, so they must
// occupy distinct entries under the shared truth-table key.
func TestStructuresNotConflated(t *testing.T) {
	sop := fn(t, "w*y + x*y", "w", "x", "y")
	fact := fn(t, "(w + x)*y", "w", "x", "y")
	c := New(0)
	gotSop, _ := c.Analyze(sop)
	gotFact, hit := c.Analyze(fact)
	if hit {
		t.Error("structurally different cluster must not hit the SOP entry")
	}
	if !gotSop.Equal(direct(t, sop)) {
		t.Errorf("sop set wrong: %v", gotSop)
	}
	if !gotFact.Equal(direct(t, fact)) {
		t.Errorf("factored set wrong: %v", gotFact)
	}
	if gotSop.Equal(gotFact) {
		t.Error("Figure 4 pair should have different hazard sets")
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Errorf("expected 2 distinct entries, have %d", s.Entries)
	}
}

// TestUnusedVariableSpace: a function whose variable order is wider than
// its syntactic support bypasses the cache (hazards spread over the
// unused dimensions) but still gets the exact full-width answer.
func TestUnusedVariableSpace(t *testing.T) {
	f := fn(t, "s'*a + s*b", "x", "s", "a", "b")
	c := New(0)
	got, hit := c.Analyze(f)
	want := direct(t, f)
	if hit {
		t.Error("wide-space function must not be served from the cache")
	}
	if got == nil || !got.Equal(want) {
		t.Errorf("wide-space set %v, want %v", got, want)
	}
	if got.N != 4 {
		t.Errorf("set over %d vars, want 4", got.N)
	}
	if _, hit := c.Analyze(f); hit {
		t.Error("wide-space function must never hit")
	}
}

// randomExpr builds a random small expression over the given variables,
// biased toward repeated literals so structures genuinely share paths.
func randomExpr(rng *rand.Rand, vars []string, depth int) *bexpr.Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		e := bexpr.Var(vars[rng.Intn(len(vars))])
		if rng.Intn(3) == 0 {
			return bexpr.Not(e)
		}
		return e
	}
	n := 2 + rng.Intn(2)
	kids := make([]*bexpr.Expr, n)
	for i := range kids {
		kids[i] = randomExpr(rng, vars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return bexpr.And(kids...)
	}
	return bexpr.Or(kids...)
}

// TestRandomizedTransparency fuzzes the canonicalisation: for random
// structures, cache results (misses and hits alike) equal direct analysis.
func TestRandomizedTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []string{"a", "b", "c", "d"}
	c := New(0)
	for i := 0; i < 60; i++ {
		f := bexpr.New(randomExpr(rng, vars, 2+rng.Intn(2)))
		want := direct(t, f)
		got, _ := c.Analyze(f)
		if got == nil || !got.Equal(want) {
			t.Fatalf("expr %s: cache %v, want %v", f, got, want)
		}
		again, _ := c.Analyze(f)
		if again == nil || !again.Equal(want) {
			t.Fatalf("expr %s: second lookup %v, want %v", f, again, want)
		}
	}
}

// TestEviction: a tiny cache evicts old entries, counts them, and stays
// correct afterwards.
func TestEviction(t *testing.T) {
	c := New(1) // one entry per shard
	var fns []*bexpr.Function
	for i := 0; i < 200; i++ {
		// Vary arity and shape so entries spread over many shards.
		src := fmt.Sprintf("a*b + a'*c + %s", []string{"b*c", "b'*c", "a*c", "c'"}[i%4])
		f := fn(t, src, "a", "b", "c")
		_ = f
		fns = append(fns, f)
		if set, _ := c.Analyze(f); set == nil {
			t.Fatalf("analysis failed for %s", src)
		}
	}
	// Re-analysing everything must still give correct results whether or
	// not the entry survived.
	for _, f := range fns[:8] {
		got, _ := c.Analyze(f)
		if got == nil || !got.Equal(direct(t, f)) {
			t.Fatalf("post-eviction result wrong for %s", f)
		}
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Errorf("expected evictions on a 1-entry-per-shard cache: %+v", s)
	}
}

// TestConcurrentAnalyze hammers one cache from many goroutines (run under
// -race in CI) and checks every returned set against the serial reference.
func TestConcurrentAnalyze(t *testing.T) {
	srcs := []string{
		"a*b + a'*c",
		"a*b + a'*c + b*c",
		"(a + b)*c",
		"a*c + b*c",
		"s'*a + s*b",
		"s'*a + s*b + a*b",
		"a'*(b + c') + a*b*c",
		"(a*b)' + c*d",
	}
	want := make([]*hazard.Set, len(srcs))
	for i, s := range srcs {
		want[i] = direct(t, bexpr.MustParse(s))
	}
	c := New(0)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				j := rng.Intn(len(srcs))
				got, _ := c.Analyze(bexpr.MustParse(srcs[j]))
				if got == nil || !got.Equal(want[j]) {
					errs <- fmt.Errorf("goroutine %d: %s gave %v", seed, srcs[j], got)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses: %+v", st)
	}
}

// TestCanonicalizeIdempotent: canonicalising a canonical form is the
// identity (same structure key), and the binding round-trips points.
func TestCanonicalizeIdempotent(t *testing.T) {
	f := fn(t, "v1*v2 + v1'*v0", "v0", "v1", "v2")
	cn, err := Canonicalize(f)
	if err != nil {
		t.Fatal(err)
	}
	cn2, err := Canonicalize(cn.Fn)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Fn.Root.String() != cn2.Fn.Root.String() {
		t.Errorf("canonical form not idempotent: %s vs %s", cn.Fn.Root, cn2.Fn.Root)
	}
	for i, v := range cn2.Back.Perm {
		if v != i {
			t.Errorf("re-canonicalising must yield the identity binding, got %v", cn2.Back.Perm)
			break
		}
	}
}

// TestStatsSnapshotConsistent: under concurrent load, every Stats call
// must observe a consistent shard view — in a cache whose capacity forces
// constant eviction, the invariant Entries <= cap must hold in every
// snapshot, and the counters must end exact.
func TestStatsSnapshotConsistent(t *testing.T) {
	c := New(numShards) // one entry per shard: evicts on every second insert
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Stats()
			if s.Entries > numShards {
				t.Errorf("snapshot %d: Entries=%d exceeds capacity %d", i, s.Entries, numShards)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := fn(t, fmt.Sprintf("a*b + a'*c%d", i%37), "a", "b", fmt.Sprintf("c%d", i%37))
				c.Analyze(f)
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

// TestShardStats: per-shard snapshots must sum to the aggregate view.
func TestShardStats(t *testing.T) {
	c := New(0)
	for i := 0; i < 50; i++ {
		f := fn(t, fmt.Sprintf("a*b + a'*x%d", i), "a", "b", fmt.Sprintf("x%d", i))
		c.Analyze(f) // miss
		c.Analyze(f) // hit
	}
	agg := c.Stats()
	var entries int
	var hits, evictions, contended uint64
	for _, st := range c.ShardStats() {
		entries += st.Entries
		hits += st.Hits
		evictions += st.Evictions
		contended += st.Contended
	}
	if entries != agg.Entries || hits != agg.Hits || evictions != agg.Evictions || contended != agg.Contended {
		t.Errorf("shard sums (%d, %d, %d, %d) != aggregate (%d, %d, %d, %d)",
			entries, hits, evictions, contended, agg.Entries, agg.Hits, agg.Evictions, agg.Contended)
	}
	if hits == 0 {
		t.Error("expected per-shard hits after repeated lookups")
	}
}

// TestExportMetrics: the registry export must mirror the cache counters
// and be idempotent (gauges set, not accumulated).
func TestExportMetrics(t *testing.T) {
	c := New(0)
	c.Reset()
	for i := 0; i < 10; i++ {
		f := fn(t, fmt.Sprintf("a*b + a'*y%d", i), "a", "b", fmt.Sprintf("y%d", i))
		c.Analyze(f)
		c.Analyze(f)
	}
	reg := obs.NewRegistry()
	c.ExportMetrics(reg)
	c.ExportMetrics(reg) // idempotent
	snap := reg.Snapshot()
	agg := c.Stats()
	if got := snap.Gauges["hazcache_entries"]; got != float64(agg.Entries) {
		t.Errorf("hazcache_entries = %g, want %d", got, agg.Entries)
	}
	if got := snap.Gauges["hazcache_hits"]; got != float64(agg.Hits) {
		t.Errorf("hazcache_hits = %g, want %d", got, agg.Hits)
	}
	if got := snap.Gauges["hazcache_misses"]; got != float64(agg.Misses) {
		t.Errorf("hazcache_misses = %g, want %d", got, agg.Misses)
	}
	var shardEntries float64
	for i := 0; i < numShards; i++ {
		shardEntries += snap.Gauges[fmt.Sprintf("hazcache_shard%02d_entries", i)]
	}
	if shardEntries != float64(agg.Entries) {
		t.Errorf("per-shard entries sum = %g, want %d", shardEntries, agg.Entries)
	}
	// Occupancy histogram: two exports, one sample per shard each.
	if occ := snap.Histograms["hazcache_shard_occupancy"]; occ.Count != 2*numShards {
		t.Errorf("occupancy samples = %d, want %d", occ.Count, 2*numShards)
	}
	// nil registry / nil cache are no-ops
	c.ExportMetrics(nil)
	var nilCache *Cache
	nilCache.ExportMetrics(reg)
}
