package hfmin

import (
	"math/rand"
	"sync"
	"testing"

	"gfmap/internal/cube"
)

// randomSpec samples a feasible hazard-free minimisation spec, or nil.
func randomSpec(rng *rand.Rand, n int) *Spec {
	on := cube.NewCover(n)
	for i := 0; i < 2+rng.Intn(3); i++ {
		used := rng.Uint64() & cube.VarMask(n)
		if used == 0 {
			used = 1
		}
		on.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
	}
	spec := Spec{N: n, On: on}
	for tries := 0; tries < 20 && len(spec.Transitions) < 3; tries++ {
		a := rng.Uint64() & cube.VarMask(n)
		b := rng.Uint64() & cube.VarMask(n)
		if a == b || !functionHazardFreePair(&spec, a, b) {
			continue
		}
		spec.Transitions = append(spec.Transitions, Transition{From: a, To: b})
	}
	if _, err := Minimize(spec); err != nil {
		return nil
	}
	return &spec
}

// TestMinimizeDeterministic: Minimize is used by the synthesis pipeline's
// byte-identity contract, so identical specs must yield identical covers
// on every run — including runs racing on other goroutines (the server
// minimises concurrent requests in one process).
func TestMinimizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	specs := 0
	for iter := 0; iter < 200 && specs < 40; iter++ {
		spec := randomSpec(rng, 4+rng.Intn(2))
		if spec == nil {
			continue
		}
		specs++
		base, err := Minimize(*spec)
		if err != nil {
			t.Fatalf("spec %d became infeasible on re-run: %v", specs, err)
		}
		want := base.Cover.String()
		for run := 0; run < 5; run++ {
			res, err := Minimize(*spec)
			if err != nil {
				t.Fatalf("run %d: %v", run, err)
			}
			if got := res.Cover.String(); got != want {
				t.Fatalf("run %d differs:\n%s\nvs\n%s\n(on %v, trs %v)", run, got, want, spec.On, spec.Transitions)
			}
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := Minimize(*spec)
				if err != nil {
					errs <- err.Error()
					return
				}
				if got := res.Cover.String(); got != want {
					errs <- "concurrent run differs: " + got + " vs " + want
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
	if specs < 40 {
		t.Fatalf("only %d feasible specs exercised", specs)
	}
}
