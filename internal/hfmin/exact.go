package hfmin

import (
	"sort"

	"gfmap/internal/cube"
)

// exactCoverLimit bounds the problem size for the exact branch-and-bound
// covering solver; larger instances fall back to the greedy heuristic.
const exactCoverLimit = 24

// MinimizeExact solves the hazard-free covering problem like Minimize but
// uses exact branch-and-bound covering (minimum number of implicants, ties
// broken by total literal count) when the instance is small enough. The
// returned flag reports whether the solution is provably minimal.
func MinimizeExact(spec Spec) (*Result, bool, error) {
	if spec.DC.N == 0 && len(spec.DC.Cubes) == 0 {
		spec.DC = cube.NewCover(spec.N)
	}
	res, err := Minimize(spec)
	if err != nil {
		return nil, false, err
	}
	rows, candidates, err := coverMatrix(spec, res)
	if err != nil || len(rows) > exactCoverLimit || len(candidates) > exactCoverLimit {
		return res, false, nil
	}
	best := exactCover(rows, candidates)
	if best == nil {
		return res, false, nil
	}
	var cubes []cube.Cube
	for _, c := range best {
		cubes = append(cubes, candidates[c])
	}
	cubes = cube.DedupCubes(cubes)
	exact := &Result{
		Cover:      cube.Cover{N: spec.N, Cubes: cubes},
		Required:   res.Required,
		Privileged: res.Privileged,
		Candidates: res.Candidates,
	}
	if err := Check(spec, exact.Cover); err != nil {
		// Defensive: if the exact solution somehow fails verification, keep
		// the greedy result.
		return res, false, nil
	}
	if betterCover(exact.Cover, res.Cover) {
		return exact, true, nil
	}
	return res, true, nil
}

func betterCover(a, b cube.Cover) bool {
	if len(a.Cubes) != len(b.Cubes) {
		return len(a.Cubes) < len(b.Cubes)
	}
	return totalLiterals(a) < totalLiterals(b)
}

func totalLiterals(c cube.Cover) int {
	n := 0
	for _, cb := range c.Cubes {
		n += cb.NumLiterals()
	}
	return n
}

// coverMatrix reconstructs the covering constraints of a solved instance:
// rows are required cubes plus ON minterms, columns the candidates that
// legally satisfy each row.
func coverMatrix(spec Spec, res *Result) ([][]int, []cube.Cube, error) {
	// Re-derive the candidate implicants the same way Minimize does, by
	// re-running the generation on the spec. To keep the exact solver
	// self-contained we use the chosen cover's cubes plus all required
	// cubes expanded as candidates; this is a subset of the full candidate
	// set but always includes a feasible solution (the greedy one).
	onDC := cube.Or(spec.On, spec.DC)
	legal := func(c cube.Cube) bool {
		if !onDC.ContainsCube(c) {
			return false
		}
		for _, p := range res.Privileged {
			if c.Intersects(p.T) && !c.ContainsPoint(p.One) {
				return false
			}
		}
		return true
	}
	candSet := map[cube.Cube]bool{}
	var candidates []cube.Cube
	add := func(c cube.Cube) {
		if legal(c) && !candSet[c] {
			candSet[c] = true
			candidates = append(candidates, c)
		}
	}
	for _, c := range res.Cover.Cubes {
		add(c)
	}
	for _, r := range res.Required {
		add(r)
		// All legal single-literal expansions of r widen the choice space.
		for _, v := range r.Vars() {
			add(r.WithoutVar(v))
		}
	}
	var rows [][]int
	addRow := func(contains func(cube.Cube) bool) {
		var cols []int
		for i, c := range candidates {
			if contains(c) {
				cols = append(cols, i)
			}
		}
		rows = append(rows, cols)
	}
	for _, r := range res.Required {
		r := r
		addRow(func(c cube.Cube) bool { return c.Contains(r) })
	}
	for p := uint64(0); p < 1<<uint(spec.N); p++ {
		if spec.value(p) != 1 {
			continue
		}
		p := p
		addRow(func(c cube.Cube) bool { return c.ContainsPoint(p) })
	}
	for _, cols := range rows {
		if len(cols) == 0 {
			return nil, nil, errNoColumn
		}
	}
	return rows, candidates, nil
}

var errNoColumn = errNoColumnType{}

type errNoColumnType struct{}

func (errNoColumnType) Error() string { return "hfmin: exact matrix has an uncoverable row" }

// exactCover finds a minimum-cardinality column set covering every row by
// branch and bound over the hardest uncovered row.
func exactCover(rows [][]int, candidates []cube.Cube) []int {
	var best []int
	var cur []int
	covered := make([]int, len(rows)) // cover count per row

	var rec func()
	rec = func() {
		if best != nil && len(cur) >= len(best) {
			return
		}
		// Pick the uncovered row with the fewest choices.
		pick := -1
		for ri := range rows {
			if covered[ri] > 0 {
				continue
			}
			if pick < 0 || len(rows[ri]) < len(rows[pick]) {
				pick = ri
			}
		}
		if pick < 0 {
			sel := append([]int(nil), cur...)
			sort.Ints(sel)
			best = sel
			return
		}
		for _, col := range rows[pick] {
			cur = append(cur, col)
			for ri := range rows {
				if containsInt(rows[ri], col) {
					covered[ri]++
				}
			}
			rec()
			for ri := range rows {
				if containsInt(rows[ri], col) {
					covered[ri]--
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return best
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
