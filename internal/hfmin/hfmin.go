// Package hfmin implements hazard-free two-level logic minimisation for
// specified multi-input-change transitions, in the style of Nowick and
// Dill's exact minimiser (reference [12] of the paper). It is the
// synthesis substrate that produces the hazard-free sum-of-products
// equations the technology mapper starts from: burst-mode synthesis
// specifies which input transitions the combinational logic must traverse
// glitch-free, and hfmin chooses a cover in which
//
//   - every static 1→1 transition is held by a single cube (no static
//     logic 1-hazard),
//   - no cube intersects a dynamic transition's space without containing
//     its 1-endpoint (no dynamic logic hazard, Theorem 4.1),
//   - no cube intersects a static 0→0 transition's space at all: such a
//     cube is 0 at both endpoints but 1 at an interior don't-care point,
//     a 0→1→0 glitch (no static logic 0-hazard), and
//   - the cover realises the function exactly.
package hfmin

import (
	"fmt"
	"sort"

	"gfmap/internal/cube"
)

// Transition is a specified multi-input change between two input points.
type Transition struct {
	From, To uint64
}

// Spec is a hazard-free minimisation problem: a completely-specified
// function given by its ON-set (everything else is OFF) over N variables,
// plus don't-cares, and the set of transitions that must be glitch-free.
type Spec struct {
	N           int
	On          cube.Cover
	DC          cube.Cover
	Transitions []Transition
}

// value returns 1/0/-1(dc) at a point.
func (s *Spec) value(p uint64) int {
	if s.DC.Eval(p) {
		return -1
	}
	if s.On.Eval(p) {
		return 1
	}
	return 0
}

// kindOf classifies a transition; don't-care endpoints are invalid.
func (s *Spec) kindOf(t Transition) (string, error) {
	vf, vt := s.value(t.From), s.value(t.To)
	if vf < 0 || vt < 0 {
		return "", fmt.Errorf("hfmin: transition endpoint in don't-care set")
	}
	switch {
	case vf == 1 && vt == 1:
		return "static1", nil
	case vf == 0 && vt == 0:
		return "static0", nil
	case vf == 1 && vt == 0:
		return "fall", nil
	default:
		return "rise", nil
	}
}

// privileged is a dynamic transition's hazard constraint: any chosen
// implicant intersecting T must contain the 1-endpoint One.
type privileged struct {
	T   cube.Cube
	One uint64
}

// Result carries the minimised cover plus the derived constraint sets (for
// reporting and tests).
type Result struct {
	Cover      cube.Cover
	Required   []cube.Cube
	Privileged []privileged
	Candidates int
}

// Minimize solves the hazard-free covering problem. It returns an error
// when the specification itself is infeasible: a transition has a function
// hazard, or some required cube admits no dhf implicant (the classical
// non-existence case of hazard-free logic).
func Minimize(spec Spec) (*Result, error) {
	if spec.N > cube.MaxVars || spec.N > 24 {
		return nil, fmt.Errorf("hfmin: %d variables out of range", spec.N)
	}
	if spec.DC.N == 0 && len(spec.DC.Cubes) == 0 {
		spec.DC = cube.NewCover(spec.N) // allow a zero-value DC set
	}
	if spec.On.N != spec.N || spec.DC.N != spec.N {
		return nil, fmt.Errorf("hfmin: ON/DC covers must range over %d variables", spec.N)
	}
	onDC := cube.Or(spec.On, spec.DC)

	var required []cube.Cube
	var privs []privileged
	var zeros []cube.Cube
	for _, t := range spec.Transitions {
		kind, err := spec.kindOf(t)
		if err != nil {
			return nil, err
		}
		tc := cube.Supercube(cube.Minterm(spec.N, t.From), cube.Minterm(spec.N, t.To))
		switch kind {
		case "static1":
			if err := spec.checkStaticFHF(tc, 1); err != nil {
				return nil, fmt.Errorf("hfmin: transition %x->%x: %w", t.From, t.To, err)
			}
			required = append(required, tc)
		case "static0":
			if err := spec.checkStaticFHF(tc, 0); err != nil {
				return nil, fmt.Errorf("hfmin: transition %x->%x: %w", t.From, t.To, err)
			}
			// A product that intersects the transition cube is 0 at both
			// endpoints (the endpoints are OFF points, so no implicant may
			// contain them) yet 1 at an interior point; every interior
			// point is reachable under some delay assignment, so the SOP
			// output glitches 0->1->0. No chosen implicant may intersect
			// the transition cube at all.
			zeros = append(zeros, tc)
		case "fall", "rise":
			one, zero := t.From, t.To
			if kind == "rise" {
				one, zero = t.To, t.From
			}
			if err := spec.checkDynamicFHF(tc, zero, one); err != nil {
				return nil, fmt.Errorf("hfmin: transition %x->%x: %w", t.From, t.To, err)
			}
			privs = append(privs, privileged{T: tc, One: one})
			// Every ON point of the transition space must be covered by a
			// cube that also contains the 1-endpoint.
			for _, x := range tc.Minterms(spec.N, nil) {
				if spec.value(x) == 1 {
					required = append(required, cube.Supercube(cube.Minterm(spec.N, x), cube.Minterm(spec.N, one)))
				}
			}
		}
	}
	required = dropContained(required)

	legal := func(c cube.Cube) bool {
		if !onDC.ContainsCube(c) {
			return false
		}
		for _, z := range zeros {
			if c.Intersects(z) {
				return false
			}
		}
		for _, p := range privs {
			if c.Intersects(p.T) && !c.ContainsPoint(p.One) {
				return false
			}
		}
		return true
	}

	// Candidate implicants: maximal legal expansions of the required cubes
	// and of every ON minterm. Required cubes must themselves be legal
	// (otherwise no hazard-free cover exists); an individual ON minterm
	// inside a dynamic transition space is merely unusable as a seed — it
	// will be covered through the required supercube that reaches the
	// transition's 1-endpoint.
	candSet := map[cube.Cube]bool{}
	var candidates []cube.Cube
	addCand := func(c cube.Cube) {
		if !candSet[c] {
			candSet[c] = true
			candidates = append(candidates, c)
		}
	}
	expand := func(seed cube.Cube) {
		// Expand in several literal orders to diversify the maximal legal
		// implicants reached.
		vars := seed.Vars()
		for rot := 0; rot < len(vars) || rot == 0; rot++ {
			c := seed
			for i := range vars {
				v := vars[(i+rot)%len(vars)]
				if ex := c.WithoutVar(v); legal(ex) {
					c = ex
				}
			}
			addCand(c)
		}
	}
	for _, seed := range required {
		if !legal(seed) {
			if !onDC.ContainsCube(seed) {
				return nil, fmt.Errorf("hfmin: required cube %v is not an implicant (function-hazardous specification)", seed)
			}
			for _, z := range zeros {
				if seed.Intersects(z) {
					return nil, fmt.Errorf("hfmin: required cube %v intersects static-0 transition %v; no hazard-free cover exists", seed, z)
				}
			}
			return nil, fmt.Errorf("hfmin: required cube %v intersects a dynamic transition illegally; no hazard-free cover exists", seed)
		}
		expand(seed)
	}
	for p := uint64(0); p < 1<<uint(spec.N); p++ {
		if spec.value(p) != 1 {
			continue
		}
		if m := cube.Minterm(spec.N, p); legal(m) {
			expand(m)
		}
	}

	chosen, err := solveCovering(spec, required, candidates)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Cover:      cube.Cover{N: spec.N, Cubes: chosen},
		Required:   required,
		Privileged: privs,
		Candidates: len(candidates),
	}
	if err := Check(spec, res.Cover); err != nil {
		return nil, fmt.Errorf("hfmin: internal: produced cover fails verification: %w", err)
	}
	return res, nil
}

// checkStaticFHF verifies the function is constant over the transition
// space (no static function hazard), treating DC points as compatible.
func (s *Spec) checkStaticFHF(tc cube.Cube, want int) error {
	for _, x := range tc.Minterms(s.N, nil) {
		if v := s.value(x); v >= 0 && v != want {
			return fmt.Errorf("static function hazard (point %x has value %d)", x, v)
		}
	}
	return nil
}

// checkDynamicFHF verifies the 0→1 direction characterisation: every ON
// point x of T must have f ≡ 1 on T[x, one].
func (s *Spec) checkDynamicFHF(tc cube.Cube, zero, one uint64) error {
	mOne := cube.Minterm(s.N, one)
	for _, x := range tc.Minterms(s.N, nil) {
		if s.value(x) != 1 {
			continue
		}
		sub := cube.Supercube(cube.Minterm(s.N, x), mOne)
		for _, y := range sub.Minterms(s.N, nil) {
			if v := s.value(y); v == 0 {
				return fmt.Errorf("dynamic function hazard (point %x drops to 0 between %x and %x)", y, x, one)
			}
		}
	}
	_ = zero
	return nil
}

func dropContained(cs []cube.Cube) []cube.Cube {
	cs = cube.DedupCubes(cs)
	var out []cube.Cube
	for i, c := range cs {
		contained := false
		for j, d := range cs {
			if i == j {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}

// solveCovering picks candidates so that every required cube is inside a
// single chosen candidate and every ON minterm is covered, preferring few
// and large cubes (greedy with essentials, then redundancy elimination).
func solveCovering(spec Spec, required []cube.Cube, candidates []cube.Cube) ([]cube.Cube, error) {
	// Rows: required cubes, then ON minterms not inside any required cube.
	var rows []coverRow
	for _, r := range required {
		var cols []int
		for i, c := range candidates {
			if c.Contains(r) {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("hfmin: no dhf implicant covers required cube %v; hazard-free cover does not exist", r)
		}
		rows = append(rows, coverRow{c: r, cols: cols})
	}
	for p := uint64(0); p < 1<<uint(spec.N); p++ {
		if spec.value(p) != 1 {
			continue
		}
		m := cube.Minterm(spec.N, p)
		var cols []int
		for i, c := range candidates {
			if c.ContainsPoint(p) {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("hfmin: ON minterm %x has no legal implicant; hazard-free cover does not exist", p)
		}
		rows = append(rows, coverRow{c: m, cols: cols})
	}

	covered := make([]bool, len(rows))
	chosen := map[int]bool{}
	pick := func(col int) {
		chosen[col] = true
		for ri, r := range rows {
			if covered[ri] {
				continue
			}
			for _, c := range r.cols {
				if c == col {
					covered[ri] = true
					break
				}
			}
		}
	}
	// Essentials first.
	for ri, r := range rows {
		if !covered[ri] && len(r.cols) == 1 {
			pick(r.cols[0])
		}
	}
	// Greedy: the candidate covering the most uncovered rows, ties broken
	// by fewer literals (bigger cube), then by index for determinism.
	for {
		remaining := 0
		for _, c := range covered {
			if !c {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		best, bestCount, bestLits := -1, -1, 0
		counts := make(map[int]int)
		for ri, r := range rows {
			if covered[ri] {
				continue
			}
			for _, c := range r.cols {
				counts[c]++
			}
		}
		cols := make([]int, 0, len(counts))
		for c := range counts {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			lits := candidates[c].NumLiterals()
			if counts[c] > bestCount || (counts[c] == bestCount && lits < bestLits) {
				best, bestCount, bestLits = c, counts[c], lits
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("hfmin: covering failed")
		}
		pick(best)
	}
	// Redundancy elimination: drop chosen cubes whose rows are all covered
	// by other chosen cubes.
	var order []int
	for c := range chosen {
		order = append(order, c)
	}
	sort.Ints(order)
	for _, c := range order {
		delete(chosen, c)
		if !allRowsCovered(rows, chosen) {
			chosen[c] = true
		}
	}
	var out []cube.Cube
	for c := range chosen {
		out = append(out, candidates[c])
	}
	out = cube.DedupCubes(out)
	return out, nil
}

// coverRow is one covering constraint: a cube that must be inside a single
// chosen candidate (required cubes) or a minterm needing any cover.
type coverRow struct {
	c    cube.Cube
	cols []int
}

func allRowsCovered(rows []coverRow, chosen map[int]bool) bool {
	for _, r := range rows {
		ok := false
		for _, c := range r.cols {
			if chosen[c] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Check verifies that a cover realises the specification exactly and is
// logic-hazard-free for every specified transition, using the cube
// conditions of the paper (§2.3, Theorem 4.1) directly.
func Check(spec Spec, cover cube.Cover) error {
	// Functional correctness outside don't-cares.
	for p := uint64(0); p < 1<<uint(spec.N); p++ {
		switch spec.value(p) {
		case 1:
			if !cover.Eval(p) {
				return fmt.Errorf("cover misses ON point %x", p)
			}
		case 0:
			if cover.Eval(p) {
				return fmt.Errorf("cover overlaps OFF point %x", p)
			}
		}
	}
	for _, t := range spec.Transitions {
		kind, err := spec.kindOf(t)
		if err != nil {
			return err
		}
		tc := cube.Supercube(cube.Minterm(spec.N, t.From), cube.Minterm(spec.N, t.To))
		switch kind {
		case "static1":
			if !cover.SingleCubeContains(tc) {
				return fmt.Errorf("static 1-hazard: no single cube holds %v", tc)
			}
		case "static0":
			// The output must hold 0 throughout: a cube intersecting the
			// transition cube is 1 at an interior point (its endpoints are
			// OFF points) and glitches 0->1->0 under some delay assignment.
			for _, c := range cover.Cubes {
				if c.Intersects(tc) {
					return fmt.Errorf("static 0-hazard: cube %v intersects %v", c, tc)
				}
			}
		case "fall", "rise":
			one := t.From
			if kind == "rise" {
				one = t.To
			}
			for _, c := range cover.Cubes {
				if c.Intersects(tc) && !c.ContainsPoint(one) {
					return fmt.Errorf("dynamic hazard: cube %v intersects %v without containing the 1-endpoint", c, tc)
				}
			}
		}
	}
	return nil
}
