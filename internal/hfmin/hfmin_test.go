package hfmin

import (
	"math/rand"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/hazard"
)

var sab = []string{"s", "a", "b"}

// pt builds a point from values in the given variable order (index = bit).
func pt(vals ...int) uint64 {
	var p uint64
	for i, v := range vals {
		if v != 0 {
			p |= 1 << uint(i)
		}
	}
	return p
}

// TestMuxConsensus: the mux function with a specified static 1→1 select
// transition at a=b=1 must come out with the consensus cube ab.
func TestMuxConsensus(t *testing.T) {
	spec := Spec{
		N:  3,
		On: cube.MustParseCover("s'a + sb", sab),
		Transitions: []Transition{
			{From: pt(0, 1, 1), To: pt(1, 1, 1)}, // s: 0->1 with a=b=1
		},
	}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cover.SingleCubeContains(cube.MustParseCube("ab", sab)) {
		t.Errorf("cover %v lacks a cube holding ab", res.Cover.StringVars(sab))
	}
	// Exact cross-check: analyse the cover's structure; the specified
	// transition must not be hazardous.
	fn := bexpr.FromCover(res.Cover, sab)
	set := hazard.MustAnalyze(fn)
	tr := hazard.Transition{From: pt(0, 1, 1), To: pt(1, 1, 1)}
	if _, bad := set.Static1[tr]; bad {
		t.Error("specified transition still hazardous")
	}
}

// TestNoTransitionsMeansPlainCover: with no specified transitions the
// result is just a correct (possibly minimal) cover.
func TestNoTransitionsMeansPlainCover(t *testing.T) {
	spec := Spec{N: 3, On: cube.MustParseCover("s'a + sb", sab)}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cover.EquivalentTo(spec.On) {
		t.Errorf("cover %v is not the specified function", res.Cover.StringVars(sab))
	}
}

// TestDynamicLegality reproduces the paper's Figure 8 situation: a dynamic
// transition whose space is intersected by a cube not containing the
// 1-endpoint must be repaired by choosing different implicants.
func TestDynamicLegality(t *testing.T) {
	names := []string{"w", "x", "y", "z"}
	on := cube.MustParseCover("w'xz + w'xy + xyz", names)
	// Fig 8's α -> γ: from w'x'yz (0) to w'xyz' (1): x rises, z falls.
	alpha := pt(0, 0, 1, 1)
	gamma := pt(0, 1, 1, 0)
	spec := Spec{N: 4, On: on, Transitions: []Transition{{From: alpha, To: gamma}}}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	tc := cube.Supercube(cube.Minterm(4, alpha), cube.Minterm(4, gamma))
	for _, c := range res.Cover.Cubes {
		if c.Intersects(tc) && !c.ContainsPoint(gamma) {
			t.Errorf("cover %v keeps an illegal cube %v", res.Cover.StringVars(names), c.StringVars(names))
		}
	}
	if !res.Cover.EquivalentTo(on) {
		t.Error("function changed")
	}
}

// TestInfeasibleFunctionHazard: transitions with function hazards must be
// rejected (they cannot be fixed by any implementation).
func TestInfeasibleFunctionHazard(t *testing.T) {
	names := []string{"a", "b"}
	spec := Spec{
		N:  2,
		On: cube.MustParseCover("ab' + a'b", names),
		Transitions: []Transition{
			{From: pt(0, 0), To: pt(1, 1)}, // XOR both-change: function hazard
		},
	}
	if _, err := Minimize(spec); err == nil {
		t.Error("function-hazardous transition should be rejected")
	}
}

// TestInfeasibleDynamic: the classic unrealizable case — a dynamic
// transition whose required cube must illegally intersect another dynamic
// transition.
func TestInfeasibleDynamic(t *testing.T) {
	// f = ab + a'c with transitions that force cube a'c (or any cube
	// covering a'bc and the 1-endpoint) to cut through a dynamic space it
	// may not touch. Construct: dynamic transition T1 from abc' (1) falling
	// to a'bc'... craft a conflict:
	names := []string{"a", "b", "c"}
	on := cube.MustParseCover("ab + a'c", names)
	// T: from a'bc (f=1) to ab'c' (f=... a=1,b=0,c=0: ab=0, a'c=0 -> 0).
	// 1-endpoint is a'bc; every cube covering ON points of T must contain
	// a'bc. ON points of T include abc'? T spans everything but... pick a
	// transition where ab must intersect T without containing the endpoint.
	one := pt(0, 1, 1)  // a'bc: f=1
	zero := pt(1, 0, 0) // ab'c': f=0
	spec := Spec{N: 3, On: on, Transitions: []Transition{{From: one, To: zero}}}
	_, err := Minimize(spec)
	if err == nil {
		// The transition has a function hazard or is genuinely coverable;
		// check which. f over T: T is the whole space; point abc (111):
		// f=1; T[abc, a'bc] = bc: f(a'bc)=1, f(abc)=1 -> fine; point abc'
		// (110): f=1; T[abc', a'bc] = b: contains ab'?? b=1 fixed: points
		// a'bc' -> f=0: function hazard. So Minimize must have rejected it.
		t.Error("expected rejection (function hazard or illegal cover)")
	}
}

// TestMultipleTransitions synthesises a burst-mode-style fragment with
// several specified transitions and verifies the result against the exact
// hazard analyser.
func TestMultipleTransitions(t *testing.T) {
	names := []string{"r", "s", "q"}
	// A tiny latch-enable controller: f = r*s + r*q + s'q? Use f = rs + q(r + s').
	on := cube.MustParseCover("rs + rq + s'q", names)
	trs := []Transition{
		{From: pt(1, 0, 0), To: pt(1, 1, 0)}, // rise: s up with r=1
		{From: pt(1, 1, 0), To: pt(1, 1, 1)}, // static 1->1: q up
		{From: pt(1, 1, 1), To: pt(0, 1, 1)}, // static: r down with s=q=1? f(0,1,1)=s'q=0... recompute
	}
	// Fix the third transition to a genuine static pair: f(0,1,1): rs=0,
	// rq=0, s'q=0 -> 0, so it is a fall; keep it as a dynamic transition.
	spec := Spec{N: 3, On: on, Transitions: trs}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(spec, res.Cover); err != nil {
		t.Fatal(err)
	}
	// Exact analysis: none of the specified transitions may be hazardous in
	// the produced structure.
	fn := bexpr.FromCover(res.Cover, names)
	set := hazard.MustAnalyze(fn)
	for _, tr := range trs {
		h := hazard.Transition{From: tr.From, To: tr.To}
		hs := hazard.Transition{From: tr.From, To: tr.To}
		if hs.From > hs.To {
			hs.From, hs.To = hs.To, hs.From
		}
		if _, bad := set.Static1[hs]; bad {
			t.Errorf("transition %v static-1 hazardous", tr)
		}
		if _, bad := set.Dynamic[h]; bad {
			t.Errorf("transition %v dynamic hazardous", tr)
		}
		rev := hazard.Transition{From: tr.To, To: tr.From}
		if _, bad := set.Dynamic[rev]; bad {
			t.Errorf("transition %v dynamic hazardous (reverse orientation)", tr)
		}
	}
}

// TestRandomSpecs: random functions with random function-hazard-free
// transitions either minimise to verified hazard-free covers or are
// reported infeasible.
func TestRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 4
	feasible := 0
	for iter := 0; iter < 150; iter++ {
		on := cube.NewCover(n)
		for i := 0; i < 2+rng.Intn(3); i++ {
			used := rng.Uint64() & cube.VarMask(n)
			if used == 0 {
				used = 1
			}
			on.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
		}
		spec := Spec{N: n, On: on}
		// Sample up to 3 function-hazard-free transitions.
		for len(spec.Transitions) < 3 {
			a := rng.Uint64() & cube.VarMask(n)
			b := rng.Uint64() & cube.VarMask(n)
			if a == b {
				continue
			}
			if !functionHazardFreePair(&spec, a, b) {
				continue
			}
			spec.Transitions = append(spec.Transitions, Transition{From: a, To: b})
			if rng.Intn(2) == 0 {
				break
			}
		}
		res, err := Minimize(spec)
		if err != nil {
			continue // legitimately infeasible
		}
		feasible++
		if err := Check(spec, res.Cover); err != nil {
			t.Fatalf("iter %d: produced cover fails: %v (cover %v, on %v, trs %v)",
				iter, err, res.Cover, on, spec.Transitions)
		}
		if !res.Cover.EquivalentTo(on) {
			t.Fatalf("iter %d: function changed", iter)
		}
	}
	if feasible < 30 {
		t.Fatalf("only %d feasible specs exercised", feasible)
	}
}

func functionHazardFreePair(s *Spec, a, b uint64) bool {
	tc := cube.Supercube(cube.Minterm(s.N, a), cube.Minterm(s.N, b))
	va, vb := s.value(a), s.value(b)
	if va < 0 || vb < 0 {
		return false
	}
	if va == vb {
		for _, x := range tc.Minterms(s.N, nil) {
			if s.value(x) != va {
				return false
			}
		}
		return true
	}
	one := a
	if vb == 1 {
		one = b
	}
	return s.checkDynamicFHF(tc, a^b^one, one) == nil
}

func BenchmarkMinimizeMux(b *testing.B) {
	spec := Spec{
		N:  3,
		On: cube.MustParseCover("s'a + sb", sab),
		Transitions: []Transition{
			{From: pt(0, 1, 1), To: pt(1, 1, 1)},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMinimizeExactQuality: the exact solver never returns more cubes than
// the greedy one, and its covers pass the same verification.
func TestMinimizeExactQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 4
	improved, exercised := 0, 0
	for iter := 0; iter < 120; iter++ {
		on := cube.NewCover(n)
		for i := 0; i < 2+rng.Intn(3); i++ {
			used := rng.Uint64() & cube.VarMask(n)
			if used == 0 {
				used = 1
			}
			on.Add(cube.Cube{Used: used, Phase: rng.Uint64() & used})
		}
		spec := Spec{N: n, On: on}
		greedy, err := Minimize(spec)
		if err != nil {
			continue
		}
		exact, provably, err := MinimizeExact(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(spec, exact.Cover); err != nil {
			t.Fatalf("exact cover fails verification: %v", err)
		}
		if !exact.Cover.EquivalentTo(on) {
			t.Fatal("exact cover changed the function")
		}
		if provably {
			exercised++
			if len(exact.Cover.Cubes) > len(greedy.Cover.Cubes) {
				t.Errorf("exact (%d cubes) worse than greedy (%d) on %v",
					len(exact.Cover.Cubes), len(greedy.Cover.Cubes), on)
			}
			if len(exact.Cover.Cubes) < len(greedy.Cover.Cubes) {
				improved++
			}
		}
	}
	if exercised < 20 {
		t.Fatalf("exact solver exercised only %d times", exercised)
	}
	t.Logf("exact solver exercised %d times, improved on greedy %d times", exercised, improved)
}

// TestMinimizeExactWithTransitions: exactness must respect the hazard
// constraints too.
func TestMinimizeExactWithTransitions(t *testing.T) {
	spec := Spec{
		N:  3,
		On: cube.MustParseCover("s'a + sb", sab),
		Transitions: []Transition{
			{From: pt(0, 1, 1), To: pt(1, 1, 1)},
		},
	}
	res, _, err := MinimizeExact(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cover.SingleCubeContains(cube.MustParseCube("ab", sab)) {
		t.Errorf("exact cover %v lost the required consensus cube", res.Cover.StringVars(sab))
	}
}
