package hfmin

import (
	"strings"
	"testing"

	"gfmap/internal/cube"
)

// A cover cube that dips into don't-care space inside a static-0
// transition cube is 0 at both endpoints yet 1 at a reachable interior
// point: a 0->1->0 glitch. Historically both Minimize and Check treated
// static-0 transitions as automatically safe and produced exactly such
// covers; these tests pin the fix.
//
// Construction over (a,b,c): ON = {ab'c}, DC = {a'b'c}. The maximal
// expansion of the ON minterm is b'c, which passes through the don't-care
// point a'b'c — an interior point of the static-0 transition
// 000 -> 011 (b,c rise with a=0, f=0 at both ends).
func static0Spec() Spec {
	abc := []string{"a", "b", "c"}
	return Spec{
		N:  3,
		On: cube.MustParseCover("ab'c", abc),
		DC: cube.MustParseCover("a'b'c", abc),
		Transitions: []Transition{
			{From: pt(0, 0, 0), To: pt(0, 1, 1)}, // static-0: b+ c+ at a=0
			{From: pt(1, 0, 0), To: pt(1, 0, 1)}, // rise: c+ at a=1, b=0
		},
	}
}

func TestMinimizeAvoidsStatic0Transitions(t *testing.T) {
	abc := []string{"a", "b", "c"}
	spec := static0Spec()
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	tc := cube.Supercube(cube.Minterm(3, pt(0, 0, 0)), cube.Minterm(3, pt(0, 1, 1)))
	for _, c := range res.Cover.Cubes {
		if c.Intersects(tc) {
			t.Errorf("cover cube %v intersects static-0 transition cube %v (0->1->0 glitch)",
				c.StringVars(abc), tc.StringVars(abc))
		}
	}
	if !res.Cover.Eval(pt(1, 0, 1)) {
		t.Error("cover misses the ON point")
	}
}

func TestCheckRejectsStatic0Intersection(t *testing.T) {
	abc := []string{"a", "b", "c"}
	spec := static0Spec()
	// b'c realises the function (the extra point it covers is a
	// don't-care) but glitches on the static-0 transition.
	bad := cube.MustParseCover("b'c", abc)
	err := Check(spec, bad)
	if err == nil {
		t.Fatal("Check accepted a cover intersecting a static-0 transition cube")
	}
	if !strings.Contains(err.Error(), "static 0-hazard") {
		t.Errorf("unexpected error: %v", err)
	}
}
