package library

import (
	"fmt"
	"sync"

	"gfmap/internal/bexpr"
)

// The four libraries of the paper's evaluation, recreated synthetically
// with the same cell-family mix and hazard census as Table 1:
//
//	LSI9K: commercial CMOS ASIC library, 86 cells, hazardous = 12 muxes (14%)
//	CMOS3: commercial CMOS ASIC library, 30 cells, hazardous = 1 mux   (3%)
//	GDT:   custom standard-cell library of complex AOI gates, 72 cells, none hazardous
//	Actel: Act1 FPGA macro library, 84 cells, hazardous = 24 AOI/OAI/mux macros (29%)
//
// Every cell's BFF mirrors its physical structure: complementary CMOS
// complex gates are written in single-stage factored form (hazard-free
// read-once structures), while the Actel macros are written as expansions
// of the Act1 multiplexer tree, whose reconvergent select literals are the
// source of the hazards the paper reports.

// BuiltinNames lists the built-in libraries in the paper's order. The
// paper evaluates the first four; ActelAct2 is our §6-future-work
// extension: the same macro set under the pass-transistor hazard model.
var BuiltinNames = []string{"LSI9K", "CMOS3", "GDT", "Actel"}

// ExtendedNames additionally includes the Act2 pass-transistor library.
var ExtendedNames = []string{"LSI9K", "CMOS3", "GDT", "Actel", "ActelAct2"}

// Build constructs a fresh, unannotated built-in library by name.
func Build(name string) (*Library, error) {
	switch name {
	case "LSI9K":
		return BuildLSI9K(), nil
	case "CMOS3":
		return BuildCMOS3(), nil
	case "GDT":
		return BuildGDT(), nil
	case "Actel":
		return BuildActel(), nil
	case "ActelAct2":
		return BuildActelAct2(), nil
	}
	return nil, fmt.Errorf("library: unknown built-in library %q", name)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Library{}
)

// Get returns a cached, annotated built-in library. Use Build for fresh
// instances (e.g. to time the annotation itself).
func Get(name string) (*Library, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if l, ok := cache[name]; ok {
		return l, nil
	}
	l, err := Build(name)
	if err != nil {
		return nil, err
	}
	if err := l.Annotate(); err != nil {
		return nil, err
	}
	cache[name] = l
	return l, nil
}

// MustGet is Get that panics on error.
func MustGet(name string) *Library {
	l, err := Get(name)
	if err != nil {
		panic(err)
	}
	return l
}

// delayFn builds a simple linear delay model: intrinsic plus a per-literal
// slope, scaled per technology.
func delayFn(base, slope float64) func(lits int) float64 {
	return func(lits int) float64 { return base + slope*float64(lits) }
}

type cellSpec struct {
	name string
	bff  string
}

func addAll(l *Library, specs []cellSpec, delay func(int) float64) {
	for _, s := range specs {
		c := l.MustAdd(s.name, s.bff, 0)
		c.Delay = delay(c.Fn.Root.NumLiterals())
	}
}

// Shared BFF fragments. Complementary CMOS structures (read-once factored
// forms) are logic-hazard-free; the SOP mux forms are not.
const (
	bffMux21  = "s'*a + s*b"
	bffMux21I = "(s'*a + s*b)'"
	bffMux41  = "s'*t'*a + s*t'*b + s'*t*c + s*t*d"
	bffMux41I = "(s'*t'*a + s*t'*b + s'*t*c + s*t*d)'"
)

// BuildLSI9K recreates the LSI 9K-class ASIC library: 86 cells, of which
// exactly the 12 multiplexers are hazardous.
func BuildLSI9K() *Library {
	l := New("LSI9K")
	d := delayFn(0.5, 0.10)
	specs := []cellSpec{
		{"INVA", "a'"}, {"INVB", "a'"}, {"INVC", "a'"}, {"INVD", "a'"},
		{"BUFA", "a"}, {"BUFB", "a"}, {"BUFC", "a"}, {"BUFD", "a"},
		{"NAND2A", "(a*b)'"}, {"NAND2B", "(a*b)'"},
		{"NAND3A", "(a*b*c)'"}, {"NAND3B", "(a*b*c)'"},
		{"NAND4A", "(a*b*c*d)'"}, {"NAND4B", "(a*b*c*d)'"},
		{"NAND5", "(a*b*c*d*e)'"}, {"NAND6", "(a*b*c*d*e*f)'"},
		{"NOR2A", "(a + b)'"}, {"NOR2B", "(a + b)'"},
		{"NOR3A", "(a + b + c)'"}, {"NOR3B", "(a + b + c)'"},
		{"NOR4A", "(a + b + c + d)'"}, {"NOR4B", "(a + b + c + d)'"},
		{"NOR5", "(a + b + c + d + e)'"}, {"NOR6", "(a + b + c + d + e + f)'"},
		{"AND2A", "a*b"}, {"AND2B", "a*b"},
		{"AND3A", "a*b*c"}, {"AND3B", "a*b*c"},
		{"AND4A", "a*b*c*d"}, {"AND4B", "a*b*c*d"}, {"AND5", "a*b*c*d*e"},
		{"OR2A", "a + b"}, {"OR2B", "a + b"},
		{"OR3A", "a + b + c"}, {"OR3B", "a + b + c"},
		{"OR4A", "a + b + c + d"}, {"OR4B", "a + b + c + d"}, {"OR5", "a + b + c + d + e"},
		{"AOI21", "(a*b + c)'"}, {"AOI22", "(a*b + c*d)'"},
		{"AOI211", "(a*b + c + d)'"}, {"AOI221", "(a*b + c*d + e)'"},
		{"AOI222", "(a*b + c*d + e*f)'"}, {"AOI31", "(a*b*c + d)'"},
		{"AOI32", "(a*b*c + d*e)'"}, {"AOI33", "(a*b*c + d*e*f)'"},
		{"AOI2222", "(a*b + c*d + e*f + g*h)'"},
		{"OAI21", "((a + b)*c)'"}, {"OAI22", "((a + b)*(c + d))'"},
		{"OAI211", "((a + b)*c*d)'"}, {"OAI221", "((a + b)*(c + d)*e)'"},
		{"OAI222", "((a + b)*(c + d)*(e + f))'"}, {"OAI31", "((a + b + c)*d)'"},
		{"OAI32", "((a + b + c)*(d + e))'"}, {"OAI33", "((a + b + c)*(d + e + f))'"},
		{"OAI2222", "((a + b)*(c + d)*(e + f)*(g + h))'"},
		{"AO21A", "a*b + c"}, {"AO21B", "a*b + c"},
		{"AO22A", "a*b + c*d"}, {"AO22B", "a*b + c*d"},
		{"OA21A", "(a + b)*c"}, {"OA21B", "(a + b)*c"},
		{"OA22A", "(a + b)*(c + d)"}, {"OA22B", "(a + b)*(c + d)"},
		{"XOR2A", "a*b' + a'*b"}, {"XOR2B", "a*b' + a'*b"},
		{"XNOR2A", "a*b + a'*b'"}, {"XNOR2B", "a*b + a'*b'"},
		{"XOR3", "a'*b'*c + a'*b*c' + a*b'*c' + a*b*c"},
		{"XNOR3", "(a'*b'*c + a'*b*c' + a*b'*c' + a*b*c)'"},
		{"MAJ3A", "a*b + a*c + b*c"}, {"MAJ3B", "a*b + a*c + b*c"},
		{"AND6", "a*b*c*d*e*f"}, {"OR6", "a + b + c + d + e + f"},
		// The 12 multiplexers — the library's only hazardous elements.
		{"MUX21A", bffMux21}, {"MUX21B", bffMux21},
		{"MUX21HA", bffMux21}, {"MUX21HB", bffMux21},
		{"MUX21IA", bffMux21I}, {"MUX21IB", bffMux21I},
		{"MUX41A", bffMux41}, {"MUX41B", bffMux41},
		{"MUX41HA", bffMux41}, {"MUX41HB", bffMux41},
		{"MUX41IA", bffMux41I}, {"MUX41IB", bffMux41I},
	}
	addAll(l, specs, d)
	return l
}

// BuildCMOS3 recreates the CMOS3 cell library (Heinbuch): 30 cells with a
// single hazardous multiplexer.
func BuildCMOS3() *Library {
	l := New("CMOS3")
	d := delayFn(0.30, 0.05)
	specs := []cellSpec{
		{"INV", "a'"}, {"INVH", "a'"}, {"BUF", "a"}, {"BUFH", "a"},
		{"NAND2", "(a*b)'"}, {"NAND3", "(a*b*c)'"}, {"NAND4", "(a*b*c*d)'"},
		{"NAND8", "(a*b*c*d*e*f*g*h)'"},
		{"NOR2", "(a + b)'"}, {"NOR3", "(a + b + c)'"}, {"NOR4", "(a + b + c + d)'"},
		{"NOR8", "(a + b + c + d + e + f + g + h)'"},
		{"AND2", "a*b"}, {"AND3", "a*b*c"}, {"AND4", "a*b*c*d"},
		{"OR2", "a + b"}, {"OR3", "a + b + c"}, {"OR4", "a + b + c + d"},
		{"AOI21", "(a*b + c)'"}, {"AOI22", "(a*b + c*d)'"}, {"AOI221", "(a*b + c*d + e)'"},
		{"OAI21", "((a + b)*c)'"}, {"OAI22", "((a + b)*(c + d))'"}, {"OAI221", "((a + b)*(c + d)*e)'"},
		{"AO22", "a*b + c*d"}, {"OA22", "(a + b)*(c + d)"},
		{"XOR2", "a*b' + a'*b"}, {"XNOR2", "a*b + a'*b'"},
		{"MAJ3", "a*b + a*c + b*c"},
		{"MUX21", bffMux21}, // the single hazardous element
	}
	addAll(l, specs, d)
	return l
}

// BuildGDT recreates the GDT custom standard-cell library produced for a
// particular chip: 72 cells rich in large complex AOI gates, all expressed
// as single-stage complementary structures and therefore hazard-free. Its
// large cells are what made the paper's hazard analysis take 16.7 seconds.
func BuildGDT() *Library {
	l := New("GDT")
	d := delayFn(0.40, 0.08)
	specs := []cellSpec{
		{"INVA", "a'"}, {"INVB", "a'"}, {"INVC", "a'"}, {"INVD", "a'"},
		{"BUFA", "a"}, {"BUFB", "a"},
		{"NAND2", "(a*b)'"}, {"NAND3", "(a*b*c)'"}, {"NAND4", "(a*b*c*d)'"}, {"NAND5", "(a*b*c*d*e)'"},
		{"NOR2", "(a + b)'"}, {"NOR3", "(a + b + c)'"}, {"NOR4", "(a + b + c + d)'"}, {"NOR5", "(a + b + c + d + e)'"},
		{"AND2", "a*b"}, {"AND3", "a*b*c"}, {"AND4", "a*b*c*d"},
		{"OR2", "a + b"}, {"OR3", "a + b + c"}, {"OR4", "a + b + c + d"},
		{"AOI21", "(a*b + c)'"}, {"AOI22", "(a*b + c*d)'"},
		{"AOI211", "(a*b + c + d)'"}, {"AOI221", "(a*b + c*d + e)'"},
		{"AOI222", "(a*b + c*d + e*f)'"}, {"AOI2222", "(a*b + c*d + e*f + g*h)'"},
		{"AOI31", "(a*b*c + d)'"}, {"AOI32", "(a*b*c + d*e)'"}, {"AOI33", "(a*b*c + d*e*f)'"},
		{"AOI311", "(a*b*c + d + e)'"}, {"AOI321", "(a*b*c + d*e + f)'"},
		{"AOI322", "(a*b*c + d*e + f*g)'"}, {"AOI331", "(a*b*c + d*e*f + g)'"},
		{"AOI332", "(a*b*c + d*e*f + g*h)'"}, {"AOI333", "(a*b*c + d*e*f + g*h*i)'"},
		{"OAI21", "((a + b)*c)'"}, {"OAI22", "((a + b)*(c + d))'"},
		{"OAI211", "((a + b)*c*d)'"}, {"OAI221", "((a + b)*(c + d)*e)'"},
		{"OAI222", "((a + b)*(c + d)*(e + f))'"}, {"OAI2222", "((a + b)*(c + d)*(e + f)*(g + h))'"},
		{"OAI31", "((a + b + c)*d)'"}, {"OAI32", "((a + b + c)*(d + e))'"}, {"OAI33", "((a + b + c)*(d + e + f))'"},
		{"OAI311", "((a + b + c)*d*e)'"}, {"OAI321", "((a + b + c)*(d + e)*f)'"},
		{"OAI322", "((a + b + c)*(d + e)*(f + g))'"}, {"OAI331", "((a + b + c)*(d + e + f)*g)'"},
		{"OAI332", "((a + b + c)*(d + e + f)*(g + h))'"}, {"OAI333", "((a + b + c)*(d + e + f)*(g + h + i))'"},
		{"AO21", "a*b + c"}, {"AO22", "a*b + c*d"}, {"AO211", "a*b + c + d"},
		{"AO221", "a*b + c*d + e"}, {"AO222", "a*b + c*d + e*f"},
		{"OA21", "(a + b)*c"}, {"OA22", "(a + b)*(c + d)"}, {"OA211", "(a + b)*c*d"},
		{"OA221", "(a + b)*(c + d)*e"}, {"OA222", "(a + b)*(c + d)*(e + f)"},
		{"AOI2211", "(a*b + c*d + e + f)'"}, {"OAI2211", "((a + b)*(c + d)*e*f)'"},
		{"AOI2111", "(a*b + c + d + e)'"}, {"OAI2111", "((a + b)*c*d*e)'"},
		{"AO2222", "a*b + c*d + e*f + g*h"}, {"OA2222", "(a + b)*(c + d)*(e + f)*(g + h)"},
		{"XOR2", "a*b' + a'*b"}, {"XNOR2", "a*b + a'*b'"},
		{"XOR3", "a'*b'*c + a'*b*c' + a*b'*c' + a*b*c"},
		{"MAJ3A", "a*b + a*c + b*c"}, {"MAJ3B", "a*b + a*c + b*c"}, {"BUFC", "a"},
	}
	addAll(l, specs, d)
	return l
}

// BuildActel recreates the Actel Act1 macro library: 84 macros implemented
// on the Act1 multiplexer-tree logic module. The 24 AOI/OAI/mux macros
// whose mux expansion reconverges a select literal are hazardous, matching
// the paper's census; simple gating macros degenerate to read-once forms
// and are clean. Area is counted in logic modules (8 units per module, a
// fixed cost), not transistors.
func BuildActel() *Library {
	l := New("Actel")
	d := delayFn(3.0, 0.40)
	clean := []cellSpec{
		{"INV", "a'"}, {"BUF", "a"},
		{"NAND2", "(a*b)'"}, {"NAND2A", "(a'*b)'"},
		{"NAND3", "(a*b*c)'"}, {"NAND3A", "(a'*b*c)'"}, {"NAND3B", "(a'*b'*c)'"},
		{"NAND4", "(a*b*c*d)'"}, {"NAND4A", "(a'*b*c*d)'"}, {"NAND4B", "(a'*b'*c*d)'"}, {"NAND4C", "(a'*b'*c'*d)'"},
		{"NOR2", "(a + b)'"}, {"NOR2A", "(a' + b)'"},
		{"NOR3", "(a + b + c)'"}, {"NOR3A", "(a' + b + c)'"}, {"NOR3B", "(a' + b' + c)'"},
		{"NOR4", "(a + b + c + d)'"}, {"NOR4A", "(a' + b + c + d)'"}, {"NOR4B", "(a' + b' + c + d)'"}, {"NOR4C", "(a' + b' + c' + d)'"},
		{"AND2", "a*b"}, {"AND2A", "a'*b"},
		{"AND3", "a*b*c"}, {"AND3A", "a'*b*c"}, {"AND3B", "a'*b'*c"},
		{"AND4", "a*b*c*d"}, {"AND4A", "a'*b*c*d"}, {"AND4B", "a'*b'*c*d"}, {"AND4C", "a'*b'*c'*d"},
		{"OR2", "a + b"}, {"OR2A", "a' + b"},
		{"OR3", "a + b + c"}, {"OR3A", "a' + b + c"}, {"OR3B", "a' + b' + c"},
		{"OR4", "a + b + c + d"}, {"OR4A", "a' + b + c + d"}, {"OR4B", "a' + b' + c + d"}, {"OR4C", "a' + b' + c' + d"},
		{"NAND5", "(a*b*c*d*e)'"}, {"NOR5", "(a + b + c + d + e)'"},
		{"AND5", "a*b*c*d*e"}, {"OR5", "a + b + c + d + e"},
		{"XOR2", "a*b' + a'*b"}, {"XNOR2", "a*b + a'*b'"},
		{"XOR3", "a'*b'*c + a'*b*c' + a*b'*c' + a*b*c"},
		{"XNOR3", "(a'*b'*c + a'*b*c' + a*b'*c' + a*b*c)'"},
		{"MAJ3", "a*b + a*c + b*c"}, {"BUFH", "a"},
		{"NAND2B", "(a'*b')'"}, {"NOR2B", "(a' + b')'"},
		{"AND2B", "a'*b'"}, {"OR2B", "a' + b'"},
		{"NAND3C", "(a'*b'*c')'"}, {"NOR3C", "(a' + b' + c')'"},
		{"AND3C", "a'*b'*c'"}, {"OR3C", "a' + b' + c'"},
		{"NAND4D", "(a'*b'*c'*d')'"}, {"NOR4D", "(a' + b' + c' + d')'"},
		{"AND4D", "a'*b'*c'*d'"}, {"OR4D", "a' + b' + c' + d'"},
	}
	// The 24 hazardous macros: multiplexers plus AO/AOI/OA/OAI macros in
	// their Act1 mux-tree expansion, where the select literal reconverges.
	hazardous := []cellSpec{
		{"MX2", bffMux21}, {"MX2A", "s*a + s'*b"}, {"MX2B", "s'*a' + s*b"}, {"MX2C", "(s'*a + s*b)'"},
		{"MX4", bffMux41}, {"MX4I", bffMux41I},
		{"AO1", "c + c'*a*b"}, {"AO1A", "c + c'*a'*b"},
		{"AO2", "c*d + (c*d)'*a*b"}, {"AO2A", "c*d + (c*d)'*a'*b"},
		{"AO3", "c + c'*(a*b + a'*b')"},
		{"AOI1", "(c + c'*a*b)'"}, {"AOI1A", "(c + c'*a'*b)'"},
		{"AOI2", "(c*d + (c*d)'*a*b)'"}, {"AOI2A", "(c*d + (c*d)'*a'*b)'"},
		{"AOI3", "(c + c'*(a*b + a'*b'))'"},
		{"OA1", "(a + a'*b)*c"}, {"OA1A", "(a + a'*b')*c"},
		{"OA2", "(a + a'*b)*(c + c'*d)"}, {"OA2A", "(a + a'*b')*(c + c'*d)"},
		{"OA3", "(a + a'*b)*c*d"},
		{"OAI1", "((a + a'*b)*c)'"}, {"OAI1A", "((a + a'*b')*c)'"},
		{"OAI3", "((a + a'*b)*c*d)'"},
	}
	addAll(l, clean, d)
	addAll(l, hazardous, d)
	// Act1 macros occupy one logic module each (two for the 4:1 muxes);
	// area is modules × 8, a fixed per-module cost.
	for _, c := range l.Cells {
		modules := 1.0
		if c.NumPins() >= 6 {
			modules = 2.0
		}
		c.Area = 8 * modules
	}
	return l
}

// BuildActelAct2 recreates the Actel Act2 macro library under the
// pass-transistor hazard model the paper names as future work (§6): the
// macros are the same mux-tree expansions as Act1, but each reconvergent
// select variable rides a single physical pass-gate wire, so its leaf
// occurrences switch atomically instead of racing. The hazards that Table 1
// attributes to the Act1 AOI/OAI/mux macros disappear under this model,
// which is exactly why the paper says Act2 parts "do not exhibit the same
// hazard behavior as complementary CMOS networks".
func BuildActelAct2() *Library {
	l := BuildActel()
	l.Name = "ActelAct2"
	for _, c := range l.Cells {
		c.SharedPins = reconvergentPins(c)
	}
	return l
}

// reconvergentPins lists the pins appearing in both phases of the BFF —
// the select lines of the underlying mux tree.
func reconvergentPins(c *Cell) []string {
	type phases struct{ pos, neg bool }
	seen := map[string]*phases{}
	var walk func(e *bexpr.Expr, neg bool)
	walk = func(e *bexpr.Expr, neg bool) {
		switch e.Op {
		case bexpr.OpVar:
			p := seen[e.Name]
			if p == nil {
				p = &phases{}
				seen[e.Name] = p
			}
			if neg {
				p.neg = true
			} else {
				p.pos = true
			}
		case bexpr.OpNot:
			walk(e.Kids[0], !neg)
		default:
			for _, k := range e.Kids {
				walk(k, neg)
			}
		}
	}
	walk(c.Fn.Root, false)
	var out []string
	for _, pin := range c.Fn.Vars {
		if p := seen[pin]; p != nil && p.pos && p.neg {
			out = append(out, pin)
		}
	}
	return out
}
