package library

import (
	"strings"
	"testing"
)

// TestTable1Census verifies that the built-in libraries reproduce the
// hazard census of the paper's Table 1 exactly: which libraries contain
// hazardous cells, how many, and which families they belong to.
func TestTable1Census(t *testing.T) {
	tests := []struct {
		lib       string
		total     int
		hazardous int
		percent   int
		families  []string
	}{
		{"LSI9K", 86, 12, 14, []string{"MUX"}},
		{"CMOS3", 30, 1, 3, []string{"MUX"}},
		{"GDT", 72, 0, 0, nil},
		{"Actel", 84, 24, 29, []string{"AO", "AOI", "MX", "OA", "OAI"}},
	}
	for _, tt := range tests {
		l := MustGet(tt.lib)
		c := l.Census()
		if c.Total != tt.total {
			t.Errorf("%s: total = %d, want %d", tt.lib, c.Total, tt.total)
		}
		if c.Hazardous != tt.hazardous {
			var names []string
			for _, cell := range l.HazardousCells() {
				names = append(names, cell.Name)
			}
			t.Errorf("%s: hazardous = %d (%s), want %d", tt.lib, c.Hazardous,
				strings.Join(names, ","), tt.hazardous)
		}
		if got := c.PercentHazardous(); got != tt.percent {
			t.Errorf("%s: percent = %d, want %d", tt.lib, got, tt.percent)
		}
		if len(c.Families) != len(tt.families) {
			t.Errorf("%s: families = %v, want %v", tt.lib, c.Families, tt.families)
			continue
		}
		for i := range c.Families {
			if c.Families[i] != tt.families[i] {
				t.Errorf("%s: families = %v, want %v", tt.lib, c.Families, tt.families)
				break
			}
		}
	}
}

// TestAct2PassTransistorModel: the same macros that are hazardous on Act1
// become hazard-free under the Act2 pass-transistor model, because the
// reconvergent select literals ride one physical wire (§6 future work).
func TestAct2PassTransistorModel(t *testing.T) {
	act1 := MustGet("Actel")
	act2 := MustGet("ActelAct2")
	if len(act2.Cells) != len(act1.Cells) {
		t.Fatalf("Act2 must mirror Act1's macro set: %d vs %d", len(act2.Cells), len(act1.Cells))
	}
	c1 := act1.Census()
	c2 := act2.Census()
	if c1.Hazardous != 24 {
		t.Fatalf("Act1 census changed: %+v", c1)
	}
	if c2.Hazardous >= c1.Hazardous {
		t.Errorf("Act2 should have fewer hazardous cells than Act1: %d vs %d", c2.Hazardous, c1.Hazardous)
	}
	// The canonical pair: MX2 is hazardous on Act1, clean on Act2.
	if !act1.Cell("MX2").Hazardous() {
		t.Error("Act1 MX2 must be hazardous")
	}
	if act2.Cell("MX2").Hazardous() {
		t.Errorf("Act2 MX2 must be hazard-free under the shared-select model: %s",
			act2.Cell("MX2").Report.Summary())
	}
	if got := act2.Cell("MX2").SharedPins; len(got) != 1 || got[0] != "s" {
		t.Errorf("MX2 shared pins = %v, want [s]", got)
	}
	t.Logf("Act1 hazardous: %d; Act2 hazardous: %d", c1.Hazardous, c2.Hazardous)
}

// TestSharedPinsFormatRoundTrip: the SHARED statement survives dump/parse.
func TestSharedPinsFormatRoundTrip(t *testing.T) {
	orig, err := Build("ActelAct2")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseString(DumpString(orig))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range orig.Cells {
		p := parsed.Cells[i]
		if len(p.SharedPins) != len(c.SharedPins) {
			t.Errorf("cell %s: shared pins lost in round trip: %v vs %v", c.Name, p.SharedPins, c.SharedPins)
		}
	}
}
