package library

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"gfmap/internal/hazard"
)

// Fingerprint digests every field of the library that can influence a
// mapping result: cell order and names, Boolean factored forms (structure,
// not just function — the BFF determines hazard behaviour), pin order,
// area, delay, shared-pin declarations, and — critically — the hazard
// annotation state and the exact hazard set of every annotated cell.
//
// The fingerprint is the library component of a mapstore entry key, so it
// must change whenever a result computed against the old library could
// differ under the new one. Covering only names and areas is the classic
// stale-cache bug: editing a cell's delay or its hazard annotation between
// runs would silently serve results mapped against the old library. The
// digest is recomputed on every call, never memoized, so in-place field
// mutations are always observed.
func (l *Library) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "lib:%s\ncells:%d\nannotated:%v\n", l.Name, len(l.Cells), l.annotated)
	for _, c := range l.Cells {
		fmt.Fprintf(h, "cell:%s\nbff:%s\npins:%s\narea:%g\ndelay:%g\nshared:%s\n",
			c.Name, c.Fn.Root.String(), strings.Join(c.Fn.Vars, ","),
			c.Area, c.Delay, strings.Join(c.SharedPins, ","))
		writeHazards(h, c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeHazards digests a cell's hazard annotation: the full transition
// sets, not a summary — two cells with equal hazard *counts* but different
// transitions filter differently in the subset check. The three states
// (unannotated, annotated-but-unbounded, annotated) are kept distinct.
func writeHazards(h interface{ Write([]byte) (int, error) }, c *Cell) {
	switch {
	case c.Report == nil:
		fmt.Fprint(h, "hazards:unannotated\n")
	case c.Hazards == nil:
		// Past the exact-analysis bound: treated as hazard-unknown.
		fmt.Fprint(h, "hazards:nil\n")
	default:
		fmt.Fprintf(h, "hazards:n=%d\n", c.Hazards.N)
		for _, k := range []hazard.Kind{hazard.KindStatic1, hazard.KindStatic0, hazard.KindDynamic} {
			for _, tr := range c.Hazards.Transitions(k) {
				fmt.Fprintf(h, "%d:%d>%d\n", int(k), tr.From, tr.To)
			}
		}
	}
}
