package library

import (
	"testing"

	"gfmap/internal/hazard"
)

func fpTestLib(t *testing.T) *Library {
	t.Helper()
	l := New("fp-test")
	l.MustAdd("INV", "a'", 1)
	l.MustAdd("NAND2", "(ab)'", 1)
	l.MustAdd("AND2", "ab", 1.5)
	l.MustAdd("AO21", "ab+c", 2)
	return l
}

// TestFingerprintStable: the same construction yields the same
// fingerprint, and annotation changes it (annotation changes matching
// behaviour, so pre- and post-annotation results must not share keys).
func TestFingerprintStable(t *testing.T) {
	a, b := fpTestLib(t), fpTestLib(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical libraries fingerprint differently")
	}
	pre := a.Fingerprint()
	if err := a.Annotate(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == pre {
		t.Fatal("annotation did not change the fingerprint")
	}
	if err := b.Annotate(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically annotated libraries fingerprint differently")
	}
}

// TestFingerprintCoversMutations is the stale-cache regression test: every
// option-relevant cell field — including delay and the hazard annotation,
// which a name/area-only fingerprint would miss — must perturb the digest,
// so a mutated library can never address the old library's entries.
func TestFingerprintCoversMutations(t *testing.T) {
	base := fpTestLib(t)
	if err := base.Annotate(); err != nil {
		t.Fatal(err)
	}
	baseFP := base.Fingerprint()

	mutations := []struct {
		name string
		mut  func(l *Library)
	}{
		{"cell name", func(l *Library) { l.Cells[1].Name = "NAND2X" }},
		{"area", func(l *Library) { l.Cells[1].Area += 0.5 }},
		{"delay", func(l *Library) { l.Cells[1].Delay += 0.1 }},
		{"shared pins", func(l *Library) { l.Cells[3].SharedPins = []string{"a"} }},
		{"library name", func(l *Library) { l.Name = "other" }},
		{"hazard annotation", func(l *Library) {
			// Hand-edit one cell's hazard set: add a spurious static-1
			// transition. Counts stay similar; the transition content must
			// still be covered.
			l.Cells[3].Hazards.Static1[hazard.Transition{From: 0, To: 3}] = struct{}{}
		}},
		{"hazard annotation dropped", func(l *Library) {
			l.Cells[3].Hazards = nil
		}},
		{"extra cell", func(l *Library) { l.MustAdd("OR2", "a+b", 1) }},
	}
	for _, m := range mutations {
		l := fpTestLib(t)
		if err := l.Annotate(); err != nil {
			t.Fatal(err)
		}
		m.mut(l)
		if l.Fingerprint() == baseFP {
			t.Errorf("mutating %s did not change the fingerprint", m.name)
		}
	}
}

// TestFingerprintNotMemoized: an in-place mutation after a Fingerprint
// call must be observed by the next call.
func TestFingerprintNotMemoized(t *testing.T) {
	l := fpTestLib(t)
	fp1 := l.Fingerprint()
	l.Cells[0].Delay = 99
	if l.Fingerprint() == fp1 {
		t.Fatal("fingerprint memoized across a field mutation")
	}
}
