package library

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual library format is a genlib-like line format:
//
//	# comment
//	LIBRARY <name>
//	GATE <cell> <area> <delay> <bff-expression> ;
//	SHARED <cell> <pin> [<pin>...] ;
//
// SHARED marks pins whose paths switch atomically (the pass-transistor
// select model); it must follow the cell's GATE statement.
//
// The expression extends to the terminating semicolon and uses the bexpr
// grammar ('+', '*' or juxtaposition, postfix apostrophe, parentheses).
// An area of "-" uses the default (the BFF literal count).

// Parse reads a library from the text format.
func Parse(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	l := New("unnamed")
	lineNo := 0
	var pending strings.Builder
	flush := func() error {
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt == "" {
			return nil
		}
		fields := strings.Fields(stmt)
		switch strings.ToUpper(fields[0]) {
		case "LIBRARY":
			if len(fields) != 2 {
				return fmt.Errorf("line %d: LIBRARY wants one name", lineNo)
			}
			l.Name = fields[1]
			return nil
		case "SHARED":
			if len(fields) < 3 {
				return fmt.Errorf("line %d: SHARED wants a cell and at least one pin", lineNo)
			}
			cell := l.Cell(fields[1])
			if cell == nil {
				return fmt.Errorf("line %d: SHARED names unknown cell %q", lineNo, fields[1])
			}
			for _, pin := range fields[2:] {
				if cell.Fn.VarIndex(pin) < 0 {
					return fmt.Errorf("line %d: cell %s has no pin %q", lineNo, fields[1], pin)
				}
			}
			cell.SharedPins = append(cell.SharedPins, fields[2:]...)
			return nil
		case "GATE":
			if len(fields) < 5 {
				return fmt.Errorf("line %d: GATE wants name, area, delay, expression", lineNo)
			}
			name := fields[1]
			areaStr, delayStr := fields[2], fields[3]
			expr := strings.Join(fields[4:], " ")
			delay, err := strconv.ParseFloat(delayStr, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad delay %q", lineNo, delayStr)
			}
			cell, err := l.Add(name, expr, delay)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if areaStr != "-" {
				area, err := strconv.ParseFloat(areaStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad area %q", lineNo, areaStr)
				}
				cell.Area = area
			}
			return nil
		default:
			return fmt.Errorf("line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for {
			semi := strings.IndexByte(line, ';')
			if semi < 0 {
				break
			}
			pending.WriteString(line[:semi])
			if err := flush(); err != nil {
				return nil, err
			}
			line = line[semi+1:]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		// LIBRARY statements need no semicolon; GATE fragments accumulate.
		if strings.HasPrefix(strings.ToUpper(trimmed), "LIBRARY") && pending.Len() == 0 {
			pending.WriteString(trimmed)
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if strings.TrimSpace(pending.String()) != "" {
		return nil, fmt.Errorf("library: unterminated statement at end of input")
	}
	return l, nil
}

// ParseString parses a library from a string.
func ParseString(s string) (*Library, error) {
	return Parse(strings.NewReader(s))
}

// Dump writes the library in the text format.
func Dump(w io.Writer, l *Library) error {
	if _, err := fmt.Fprintf(w, "# %d cells\nLIBRARY %s\n", len(l.Cells), l.Name); err != nil {
		return err
	}
	for _, c := range l.Cells {
		if _, err := fmt.Fprintf(w, "GATE %s %g %g %s ;\n", c.Name, c.Area, c.Delay, c.Fn.String()); err != nil {
			return err
		}
		if len(c.SharedPins) > 0 {
			if _, err := fmt.Fprintf(w, "SHARED %s %s ;\n", c.Name, strings.Join(c.SharedPins, " ")); err != nil {
				return err
			}
		}
	}
	return nil
}

// DumpString renders the library in the text format.
func DumpString(l *Library) string {
	var b strings.Builder
	_ = Dump(&b, l)
	return b.String()
}
