package library

import "testing"

// FuzzParse: the library format parser must never panic; accepted
// libraries must survive a dump/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("LIBRARY x\nGATE INV - 0.3 a' ;\n")
	f.Add("GATE MUX 5 0.8 s'*a + s*b ;\nSHARED MUX s ;\n")
	f.Add("# c\nLIBRARY t\nGATE AOI21 6 0.9\n (a*b + c)' ;\n")
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := ParseString(src)
		if err != nil {
			return
		}
		lib2, err := ParseString(DumpString(lib))
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(lib2.Cells) != len(lib.Cells) {
			t.Fatal("round trip changed cell count")
		}
	})
}
