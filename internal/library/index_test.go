package library

import (
	"testing"

	"gfmap/internal/match"
)

// The match index must be exact as a filter: every cell that matches a
// target (in any permutation, input phase or output phase) must be in the
// target's candidate bucket. Here every cell plays the target role, so
// each must at minimum find itself, and any cross-cell match must stay
// within one bucket.
func TestIndexBucketsAreExactFilters(t *testing.T) {
	for _, name := range []string{"LSI9K", "CMOS3", "GDT", "Actel"} {
		lib, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		for _, target := range lib.Cells {
			key := target.TT.SigVec().CanonKey()
			cands := lib.Candidates(key)
			inBucket := make(map[*Cell]bool, len(cands))
			for _, ic := range cands {
				inBucket[ic.Cell] = true
			}
			if !inBucket[target] {
				t.Fatalf("%s: cell %s missing from its own candidate bucket", name, target.Name)
			}
			for _, cell := range lib.CellsWithPins(target.NumPins()) {
				if inBucket[cell] {
					continue
				}
				if got := match.All(target.TT, cell.TT, true, 1); len(got) != 0 {
					t.Fatalf("%s: cell %s matches %s but is not in its bucket",
						name, cell.Name, target.Name)
				}
			}
		}
	}
}

func TestIndexCandidateOrderIsLibraryOrder(t *testing.T) {
	lib, err := Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Cell]int, len(lib.Cells))
	for i, c := range lib.Cells {
		pos[c] = i
	}
	seen := map[string]bool{}
	for _, c := range lib.Cells {
		key := c.TT.SigVec().CanonKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		cands := lib.Candidates(key)
		for i := 1; i < len(cands); i++ {
			if pos[cands[i-1].Cell] >= pos[cands[i].Cell] {
				t.Fatalf("bucket %q not in library order: %s before %s",
					key, cands[i-1].Cell.Name, cands[i].Cell.Name)
			}
		}
	}
}

func TestNumCellsWithPins(t *testing.T) {
	lib, err := Get("CMOS3")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 8; n++ {
		if got, want := lib.NumCellsWithPins(n), len(lib.CellsWithPins(n)); got != want {
			t.Fatalf("NumCellsWithPins(%d)=%d, want %d", n, got, want)
		}
	}
}

// Symmetry classes must collapse totally symmetric cells to one
// representative ordering and keep provably asymmetric pins apart.
func TestSymmetryClasses(t *testing.T) {
	lib := New("test")
	and4 := lib.MustAdd("AND4", "a*b*c*d", 1)
	mux := lib.MustAdd("MUX21", "s*a + s'*b", 1)
	if err := lib.Annotate(); err != nil {
		t.Fatal(err)
	}
	if got := lib.MatchInfo(and4).Matcher.Orbit(); got != 24 {
		t.Fatalf("AND4 orbit=%d, want 4!=24", got)
	}
	// MUX21's select pin is not interchangeable with the data pins; the
	// data pins themselves are not functionally symmetric either (a is
	// selected by s, b by s').
	if got := lib.MatchInfo(mux).Matcher.Orbit(); got != 1 {
		t.Fatalf("MUX21 orbit=%d, want 1", got)
	}
}

// Adding a cell after an index has been built must invalidate it.
func TestIndexRebuildsAfterAdd(t *testing.T) {
	lib := New("test")
	lib.MustAdd("AND2", "a*b", 1)
	key := lib.Cells[0].TT.SigVec().CanonKey()
	if got := len(lib.Candidates(key)); got != 1 {
		t.Fatalf("initial bucket size=%d, want 1", got)
	}
	lib.MustAdd("NAND2", "(a*b)'", 1)
	// NAND2 is AND2's complement, so it shares the phase-folded key.
	if got := len(lib.Candidates(key)); got != 2 {
		t.Fatalf("bucket size after Add=%d, want 2 (index not rebuilt?)", got)
	}
}
