// Package library implements technology libraries for the hazard-aware
// mapper. Each cell carries its Boolean factored form, which — per §3.2.1
// of the paper — represents both the functionality and the structure of the
// element, and therefore determines its logic-hazard behaviour. When a
// library is read in by the asynchronous mapper, every cell is analysed and
// annotated with its hazard set; hazard-free cells are matched exactly as
// in the synchronous flow, hazardous ones go through the subset filter.
package library

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/match"
	"gfmap/internal/truthtab"
)

// Cell is one library element.
type Cell struct {
	// Name identifies the cell within its library.
	Name string
	// Fn is the Boolean factored form; Fn.Vars is the pin order.
	Fn *bexpr.Function
	// Area is the cell's area cost. The default unit is the number of
	// transistors in the pulldown network of a complementary CMOS gate,
	// i.e. the literal count of the BFF (the unit of the paper's Table 3);
	// libraries may override it (the Actel library counts modules).
	Area float64
	// Delay is the cell's propagation delay in nanoseconds.
	Delay float64
	// TT is the truth table over the pin order, built at load time.
	TT truthtab.TT

	// SharedPins lists input pins whose leaf occurrences ride one physical
	// wire — the pass-transistor select model for mux-tree FPGA cells
	// (Actel Act2, the paper's §6 future work). Empty for complementary
	// CMOS cells, where every leaf is an independent path.
	SharedPins []string

	// Hazards is the exact hazard set of the cell's structure, filled in by
	// Library.Annotate (the asynchronous mapper's extra initialisation
	// step). It is nil before annotation and for cells whose pin count
	// exceeds the exact-analysis bound.
	Hazards *hazard.Set
	// Report carries the compact hazard records for reporting.
	Report *hazard.Report
}

// sharedMask returns the variable bitmask of the shared pins.
func (c *Cell) sharedMask() uint64 {
	var m uint64
	for _, p := range c.SharedPins {
		if i := c.Fn.VarIndex(p); i >= 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// NumPins returns the number of input pins.
func (c *Cell) NumPins() int { return c.Fn.NumVars() }

// Hazardous reports whether the annotated cell has any logic hazard. It
// panics if the library has not been annotated.
func (c *Cell) Hazardous() bool {
	if c.Report == nil {
		panic(fmt.Sprintf("library: cell %s not annotated", c.Name))
	}
	return c.Report.HasHazards()
}

// Library is a collection of cells plus lookup indexes.
type Library struct {
	Name  string
	Cells []*Cell

	byName    map[string]*Cell
	annotated bool

	// mu guards midx, the lazily (re)built Boolean-match index.
	mu   sync.RWMutex
	midx *matchIndex
}

// New creates an empty library.
func New(name string) *Library {
	return &Library{Name: name, byName: make(map[string]*Cell)}
}

// Add creates a cell from its BFF and appends it. The default area is the
// literal count; delay is the given value.
func (l *Library) Add(name string, bff string, delay float64) (*Cell, error) {
	if _, dup := l.byName[name]; dup {
		return nil, fmt.Errorf("library %s: duplicate cell %q", l.Name, name)
	}
	fn, err := bexpr.Parse(bff)
	if err != nil {
		return nil, fmt.Errorf("library %s: cell %q: %w", l.Name, name, err)
	}
	if fn.NumVars() == 0 {
		return nil, fmt.Errorf("library %s: cell %q has no inputs", l.Name, name)
	}
	tt, err := truthtab.FromExpr(fn)
	if err != nil {
		return nil, fmt.Errorf("library %s: cell %q: %w", l.Name, name, err)
	}
	// Default area: transistors in the pulldown network (the paper's
	// Table 3 unit). A complementary CMOS gate natively computes an
	// inverting function, so cells whose BFF is a complemented core (NAND,
	// NOR, AOI, OAI, INV) cost exactly their literal count; non-inverting
	// cells (AND, OR, AO, muxes, buffers) carry an output inverter stage —
	// one extra pulldown transistor.
	area := float64(fn.Root.NumLiterals())
	if fn.Root.Op != bexpr.OpNot {
		area++
	}
	c := &Cell{
		Name:  name,
		Fn:    fn,
		Area:  area,
		Delay: delay,
		TT:    tt,
	}
	l.Cells = append(l.Cells, c)
	l.byName[name] = c
	return c, nil
}

// MustAdd is Add that panics on error; used by the built-in library
// builders, whose cells are static data.
func (l *Library) MustAdd(name, bff string, delay float64) *Cell {
	c, err := l.Add(name, bff, delay)
	if err != nil {
		panic(err)
	}
	return c
}

// Cell returns a cell by name, or nil.
func (l *Library) Cell(name string) *Cell { return l.byName[name] }

// Annotated reports whether hazard annotation has run.
func (l *Library) Annotated() bool { return l.annotated }

// Annotate runs the full hazard analysis on every cell — the additional
// initialisation work of the asynchronous mapper measured in Table 2 of
// the paper. It is idempotent.
func (l *Library) Annotate() error {
	if l.annotated {
		return nil
	}
	for _, c := range l.Cells {
		rep, err := hazard.AnalyzeFunctionShared(c.Fn, c.sharedMask())
		if err != nil {
			return fmt.Errorf("library %s: cell %s: %w", l.Name, c.Name, err)
		}
		c.Report = rep
		c.Hazards = rep.Set
	}
	l.annotated = true
	// Build the Boolean-match index eagerly: annotation is the asynchronous
	// mapper's initialisation step, and the index's symmetry classes depend
	// on the hazard sets just computed.
	l.index()
	return nil
}

// IndexedCell pairs a library cell with its prebuilt Boolean matcher —
// memoized signature vector plus pin symmetry classes.
type IndexedCell struct {
	Cell    *Cell
	Matcher *match.Matcher
}

// matchIndex buckets the library's cells by their phase-invariant
// signature key so the covering DP probes only cells that can possibly
// match a cluster, instead of every cell with the right pin count. cells
// and annotated record the library generation the index was built from.
type matchIndex struct {
	cells     int
	annotated bool
	byPins    map[int]int
	buckets   map[string][]*IndexedCell // CanonKey -> cells, library order
	all       map[*Cell]*IndexedCell
}

// index returns the match index, (re)building it when the library gained
// cells or annotation since the last build. The built index is immutable,
// so concurrent readers share it safely.
func (l *Library) index() *matchIndex {
	l.mu.RLock()
	idx := l.midx
	fresh := idx != nil && idx.cells == len(l.Cells) && idx.annotated == l.annotated
	l.mu.RUnlock()
	if fresh {
		return idx
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.midx != nil && l.midx.cells == len(l.Cells) && l.midx.annotated == l.annotated {
		return l.midx
	}
	idx = &matchIndex{
		cells:     len(l.Cells),
		annotated: l.annotated,
		byPins:    make(map[int]int),
		buckets:   make(map[string][]*IndexedCell),
		all:       make(map[*Cell]*IndexedCell, len(l.Cells)),
	}
	for _, c := range l.Cells {
		ic := &IndexedCell{
			Cell:    c,
			Matcher: match.NewSymMatcher(c.TT, c.symClasses(l.annotated)),
		}
		idx.byPins[c.NumPins()]++
		key := ic.Matcher.Sig().CanonKey()
		idx.buckets[key] = append(idx.buckets[key], ic)
		idx.all[c] = ic
	}
	l.midx = idx
	return idx
}

// Candidates returns the indexed cells whose signature key equals key —
// the only cells that can match a cluster with that key, in any input
// permutation, input phase or output phase. Cells are returned in library
// order, matching CellsWithPins, so an indexed covering run visits the
// same matches in the same order as an unindexed one. The returned slice
// is shared and must not be mutated.
func (l *Library) Candidates(key string) []*IndexedCell {
	return l.index().buckets[key]
}

// CandidatesKey is Candidates for a key assembled into a byte buffer
// (truthtab.SigVector.AppendCanonKey): the map probe converts the bytes
// in place, so the mapper's per-cut index lookup allocates nothing.
func (l *Library) CandidatesKey(key []byte) []*IndexedCell {
	return l.index().buckets[string(key)]
}

// NumCellsWithPins returns how many cells have the given input count,
// without materialising the slice CellsWithPins builds.
func (l *Library) NumCellsWithPins(n int) int {
	return l.index().byPins[n]
}

// MatchInfo returns the indexed matcher for one of the library's cells.
func (l *Library) MatchInfo(c *Cell) *IndexedCell {
	return l.index().all[c]
}

// symClasses partitions the cell's pins into symmetry classes: pins in one
// class are interchangeable without changing the cell's function or (for
// annotated hazardous cells) its hazard set, so the Boolean matcher may
// enumerate a single representative pin ordering per class. Each pin is
// checked against the representative of every open class; transpositions
// with the representative generate the full symmetric group on the class,
// so pairwise checks against the representative suffice.
func (c *Cell) symClasses(annotated bool) []int {
	n := c.NumPins()
	classOf := make([]int, n)
	var reps []int
	for i := 0; i < n; i++ {
		assigned := -1
		// Hazard sets are unknown for cells past the exact-analysis bound
		// (Hazards == nil after annotation): keep every pin in its own
		// class, conservatively.
		if !annotated || c.Hazards != nil {
			for ci, r := range reps {
				if !c.TT.SymmetricPair(r, i) {
					continue
				}
				if annotated && !c.hazardSwapInvariant(r, i) {
					continue
				}
				assigned = ci
				break
			}
		}
		if assigned < 0 {
			assigned = len(reps)
			reps = append(reps, i)
		}
		classOf[i] = assigned
	}
	return classOf
}

// hazardSwapInvariant reports whether exchanging pins u and v leaves the
// cell's hazard set unchanged. Only then are the pins interchangeable for
// the asynchronous matching filter: every binding in a symmetry orbit then
// translates the hazard set identically up to the orbit's own relabeling,
// so hazard acceptance is decided once per orbit.
func (c *Cell) hazardSwapInvariant(u, v int) bool {
	n := c.NumPins()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	perm[u], perm[v] = v, u
	swapped := c.Hazards.Translate(hazard.Binding{Perm: perm}, n)
	return swapped.Equal(c.Hazards)
}

// HazardousCells returns the annotated cells that contain logic hazards,
// sorted by name.
func (l *Library) HazardousCells() []*Cell {
	var out []*Cell
	for _, c := range l.Cells {
		if c.Report != nil && c.Report.HasHazards() {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CellsWithPins returns the cells with the given input count.
func (l *Library) CellsWithPins(n int) []*Cell {
	var out []*Cell
	for _, c := range l.Cells {
		if c.NumPins() == n {
			out = append(out, c)
		}
	}
	return out
}

// MinInverter returns the cheapest cell implementing an inverter, or nil.
func (l *Library) MinInverter() *Cell {
	var best *Cell
	inv, err := truthtab.FromExpr(bexpr.MustParse("a'"))
	if err != nil {
		panic(err)
	}
	for _, c := range l.Cells {
		if c.NumPins() != 1 || !c.TT.Equal(inv) {
			continue
		}
		if best == nil || c.Area < best.Area {
			best = c
		}
	}
	return best
}

// Census summarises the hazard annotation: total cells, hazardous cells
// and the families they belong to (by name prefix).
type Census struct {
	Library   string
	Total     int
	Hazardous int
	Families  []string
}

// Census computes the Table 1 row for the library; Annotate must have run.
func (l *Library) Census() Census {
	fam := map[string]bool{}
	c := Census{Library: l.Name, Total: len(l.Cells)}
	for _, cell := range l.HazardousCells() {
		c.Hazardous++
		fam[familyOf(cell.Name)] = true
	}
	for f := range fam {
		c.Families = append(c.Families, f)
	}
	sort.Strings(c.Families)
	return c
}

// familyOf extracts a cell's family as the leading letters before the
// first digit (MUX21A -> MUX, AOI221 -> AOI); names without digits are
// their own family.
func familyOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] >= '0' && name[i] <= '9' {
			return strings.ToUpper(name[:i])
		}
	}
	return strings.ToUpper(name)
}

// PercentHazardous returns the hazardous fraction in percent, rounded.
func (c Census) PercentHazardous() int {
	if c.Total == 0 {
		return 0
	}
	return int(float64(c.Hazardous)/float64(c.Total)*100 + 0.5)
}
