package library

import (
	"strings"
	"testing"
)

func TestAddAndLookup(t *testing.T) {
	l := New("test")
	c, err := l.Add("NAND2", "(a*b)'", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPins() != 2 || c.Area != 2 || c.Delay != 0.7 {
		t.Errorf("cell fields wrong: %+v", c)
	}
	if l.Cell("NAND2") != c {
		t.Error("lookup failed")
	}
	if _, err := l.Add("NAND2", "(a*b)'", 0.7); err == nil {
		t.Error("duplicate cell should be rejected")
	}
	if _, err := l.Add("BAD", "1", 0.1); err == nil {
		t.Error("cell with no inputs should be rejected")
	}
}

func TestAnnotateIdempotent(t *testing.T) {
	l := New("t")
	l.MustAdd("MUX", "s'*a + s*b", 1)
	if err := l.Annotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Annotate(); err != nil {
		t.Fatal(err)
	}
	if !l.Cell("MUX").Hazardous() {
		t.Error("mux must be annotated hazardous")
	}
}

func TestMinInverter(t *testing.T) {
	l := MustGet("LSI9K")
	inv := l.MinInverter()
	if inv == nil {
		t.Fatal("LSI9K must have an inverter")
	}
	if inv.NumPins() != 1 {
		t.Errorf("inverter has %d pins", inv.NumPins())
	}
}

func TestCellsWithPins(t *testing.T) {
	l := MustGet("CMOS3")
	for _, c := range l.CellsWithPins(2) {
		if c.NumPins() != 2 {
			t.Errorf("cell %s has %d pins", c.Name, c.NumPins())
		}
	}
	if len(l.CellsWithPins(2)) == 0 {
		t.Error("CMOS3 must have 2-pin cells")
	}
}

func TestFamilyOf(t *testing.T) {
	tests := map[string]string{
		"MUX21A": "MUX",
		"MX2A":   "MX",
		"AOI221": "AOI",
		"NAND2":  "NAND",
		"INV":    "INV",
		"inv":    "INV",
	}
	for in, want := range tests {
		if got := familyOf(in); got != want {
			t.Errorf("familyOf(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames {
		orig, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		text := DumpString(orig)
		parsed, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse of dumped text: %v", name, err)
		}
		if parsed.Name != orig.Name || len(parsed.Cells) != len(orig.Cells) {
			t.Fatalf("%s: round trip lost cells: %d vs %d", name, len(parsed.Cells), len(orig.Cells))
		}
		for i, c := range orig.Cells {
			p := parsed.Cells[i]
			if p.Name != c.Name || p.Area != c.Area || p.Delay != c.Delay {
				t.Errorf("%s: cell %s metadata changed: %+v vs %+v", name, c.Name, p, c)
			}
			if !p.TT.Equal(c.TT) {
				t.Errorf("%s: cell %s function changed", name, c.Name)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"GATE X 1 ;",                    // missing fields
		"GATE X 1 zz (a*b)' ;",          // bad delay
		"FROB X ;",                      // unknown statement
		"GATE X 1 1 (a*b)'",             // unterminated
		"GATE X 1 1 (a ** b)' ;",        // bad expression
		"GATE X 1 1 a ; GATE X 1 1 a ;", // duplicate
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): want error", c)
		}
	}
}

func TestParseComments(t *testing.T) {
	l, err := ParseString(`
# a comment
LIBRARY tiny
GATE INV - 0.3 a' ;   # trailing comment
GATE AOI21 6 0.9
  (a*b + c)' ;
`)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "tiny" || len(l.Cells) != 2 {
		t.Fatalf("parsed %d cells in %q", len(l.Cells), l.Name)
	}
	if l.Cell("INV").Area != 1 {
		t.Errorf("default area = %g, want literal count 1", l.Cell("INV").Area)
	}
	if l.Cell("AOI21").Area != 6 {
		t.Errorf("explicit area = %g, want 6", l.Cell("AOI21").Area)
	}
}

// TestBuiltinDeterminism guards against accidental nondeterminism in the
// builders (map iteration etc.).
func TestBuiltinDeterminism(t *testing.T) {
	for _, name := range BuiltinNames {
		a, _ := Build(name)
		b, _ := Build(name)
		if DumpString(a) != DumpString(b) {
			t.Errorf("%s: builder is nondeterministic", name)
		}
	}
}

// TestActelMacroStructure spot-checks that the hazardous Actel macros carry
// the mux-tree reconvergence the paper attributes the hazards to, and that
// their functions are the intended simple gates.
func TestActelMacroStructure(t *testing.T) {
	l := MustGet("Actel")
	ao1 := l.Cell("AO1")
	if ao1 == nil {
		t.Fatal("AO1 missing")
	}
	if !ao1.Hazardous() {
		t.Error("AO1 must be hazardous")
	}
	// AO1 computes ab + c even though its structure is the mux expansion.
	fn := ao1.Fn
	for p := uint64(0); p < 8; p++ {
		a := fn.VarIndex("a")
		b := fn.VarIndex("b")
		c := fn.VarIndex("c")
		want := (p&(1<<uint(a)) != 0 && p&(1<<uint(b)) != 0) || p&(1<<uint(c)) != 0
		if fn.Eval(p) != want {
			t.Fatalf("AO1 function wrong at %03b", p)
		}
	}
	// The same function in the LSI library (complementary AO21) is clean.
	lsi := MustGet("LSI9K")
	if lsi.Cell("AO21A").Hazardous() {
		t.Error("complementary AO21 must be hazard-free")
	}
}

func TestGetCaches(t *testing.T) {
	a := MustGet("CMOS3")
	b := MustGet("CMOS3")
	if a != b {
		t.Error("Get should cache annotated libraries")
	}
	if !a.Annotated() {
		t.Error("cached library must be annotated")
	}
}

func TestDumpContainsAllCells(t *testing.T) {
	l, _ := Build("CMOS3")
	text := DumpString(l)
	for _, c := range l.Cells {
		if !strings.Contains(text, "GATE "+c.Name+" ") {
			t.Errorf("dump missing cell %s", c.Name)
		}
	}
}
