package mapstore

import (
	"crypto/sha256"
	"strconv"

	"gfmap/internal/bexpr"
)

// ConeKey renders a cone function as a canonical signature: the expression
// with every leaf renamed positionally (v0, v1, … in first-appearance
// order within the expression). Two cones with the
// same tree structure and the same leaf-equality pattern — regardless of
// what their signals are called or where in a design they sit — get the
// same signature, which is exactly the condition under which the covering
// DP produces the same solution for both: leaf costs are context-free and
// cluster functions are already positional.
//
// Deliberately NOT canonicalized further: operand order is preserved. The
// DP breaks cost ties by first match found, so commutatively-sorted
// operands could replay a solution whose tie-breaks differ from what a
// cold run of this exact tree would choose, breaking byte-identity.
func ConeKey(fn *bexpr.Function) string {
	names := make(map[string]string, len(fn.Vars))
	renamed := bexpr.Rename(fn.Root, func(s string) string {
		n, ok := names[s]
		if !ok {
			n = "v" + strconv.Itoa(len(names))
			names[s] = n
		}
		return n
	})
	return strconv.Itoa(len(names)) + ":" + renamed.String()
}

// EntryKey derives the content address of a cone's mapping result from
// the full identity triple. Any change to the cone structure, to any
// option-relevant library field (including hazard annotations — see
// library.Fingerprint), or to any semantically relevant mapping option
// changes the key, so a stale entry can never be served; it simply stops
// being addressed.
func EntryKey(coneKey, libFingerprint, optionHash string) Key {
	h := sha256.New()
	h.Write([]byte(coneKey))
	h.Write([]byte{0})
	h.Write([]byte(libFingerprint))
	h.Write([]byte{0})
	h.Write([]byte(optionHash))
	var k Key
	h.Sum(k[:0])
	return k
}
