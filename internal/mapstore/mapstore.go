// Package mapstore is a persistent, content-addressed store of memoized
// mapping results: per-cone covering solutions keyed by canonical cone
// signature × library fingerprint × option hash.
//
// The paper's cone-by-cone matching/covering structure makes every mapped
// cone a pure function of that triple, so a result computed once can be
// replayed by any later run — in the same process, after an asyncmapd
// restart, or in another process sharing the store file. Hazard analysis
// dominates per-cone cost (hazard detection is NP-hard in general), so
// serving a cone from the store skips the expensive part of the pipeline
// entirely while producing byte-identical output: the store holds the DP's
// *decisions*, and emission is recomputed from them deterministically.
//
// The store is two-tiered:
//
//   - an in-process LRU of entry values, bounding memory;
//   - an on-disk append-only log of checksummed records, crash-safe by
//     construction: every record carries a CRC over its header, key and
//     value, a torn or truncated tail fails the checksum and is dropped
//     (and healed away by truncation) at Open instead of being
//     deserialized as garbage.
//
// Records are appended with a single O_APPEND write each, so two handles —
// in one process or several — can interleave writes without corrupting one
// another; readers pick up foreign appends by re-scanning the grown tail
// on demand. Entries are content-addressed (the key is a SHA-256 of the
// identity triple) and the value for a key is deterministic, so duplicate
// appends are benign and the log can be compacted to live records at any
// time. The design follows the crash-safe build-database idiom: append
// for durability, checksum for integrity, compact for hygiene.
package mapstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gfmap/internal/obs"
)

// KeySize is the byte length of a store key (SHA-256).
const KeySize = 32

// Key addresses one entry: the SHA-256 of the entry's identity triple
// (canonical cone signature, library fingerprint, option hash). See
// EntryKey.
type Key [KeySize]byte

const (
	// fileMagic opens every store file; a file without it is not a store.
	fileMagic = "gfmaps01"
	// recMagic opens every record.
	recMagic = 0x3152534d // "MSR1" little-endian
	// recHeaderSize is magic + value length.
	recHeaderSize = 4 + 4
	// maxValueSize bounds a single record's value — a sanity check that
	// stops a corrupt length field from allocating gigabytes.
	maxValueSize = 1 << 28
	// DefaultMaxMemEntries bounds the in-process LRU tier.
	DefaultMaxMemEntries = 4096
)

// Options configures a store.
type Options struct {
	// MaxMemEntries bounds the in-process LRU tier; 0 means
	// DefaultMaxMemEntries.
	MaxMemEntries int
}

// recref locates a record in the log file.
type recref struct {
	off    int64 // record start (the record magic)
	vallen int   // value byte count
}

// lruEntry is one element of the memory tier.
type lruEntry struct {
	key        Key
	val        []byte
	prev, next *lruEntry // doubly linked, most-recent first
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Hits counts Gets served from the memory tier, DiskHits those served
	// by reading (and re-verifying) a log record. Misses counts Gets that
	// found nothing in either tier.
	Hits     uint64
	DiskHits uint64
	Misses   uint64
	// Puts counts records appended to the log (or, for a memory-only
	// store, entries newly inserted).
	Puts uint64
	// Evictions counts entries dropped from the memory LRU tier. Evicted
	// entries with a disk record remain retrievable.
	Evictions uint64
	// Corrupt counts records rejected by checksum/structure validation —
	// at Open (torn tail healed away), at read time (record rot), or
	// flagged by the caller via MarkCorrupt (a record whose payload failed
	// semantic validation).
	Corrupt uint64
	// Entries is the number of distinct keys reachable (disk index for a
	// persistent store, memory tier for a memory-only one); MemEntries is
	// the LRU occupancy; DiskBytes the log size in bytes.
	Entries    int
	MemEntries int
	DiskBytes  int64
}

// Store is a two-tier content-addressed entry store. A nil *Store is valid
// and inert: Get always misses and Put is a no-op, so callers can thread
// an optional store without nil checks.
type Store struct {
	mu sync.Mutex

	path string
	f    *os.File // nil for a memory-only store

	index   map[Key]recref // disk tier index (nil for memory-only)
	scanned int64          // log offset up to which records were indexed

	lru    map[Key]*lruEntry
	head   *lruEntry // most recent
	tail   *lruEntry // least recent
	maxMem int

	hits, diskHits, misses, puts, evictions, corrupt uint64
}

// NewMemory returns a store with no disk tier: entries live only in the
// LRU (maxMemEntries, 0 = DefaultMaxMemEntries) and die with the process.
// Used for tests and for the diffcheck store axes.
func NewMemory(maxMemEntries int) *Store {
	if maxMemEntries <= 0 {
		maxMemEntries = DefaultMaxMemEntries
	}
	return &Store{lru: make(map[Key]*lruEntry), maxMem: maxMemEntries}
}

// Open opens (creating if absent) the store log at path and indexes its
// records. A torn or corrupt tail — a crash mid-append — is detected by
// checksum, counted, and healed by truncating the file back to the last
// intact record, so the next append extends a clean log.
func Open(path string, opts Options) (*Store, error) {
	if opts.MaxMemEntries <= 0 {
		opts.MaxMemEntries = DefaultMaxMemEntries
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mapstore: open %s: %w", path, err)
	}
	s := &Store{
		path:   path,
		f:      f,
		index:  make(map[Key]recref),
		lru:    make(map[Key]*lruEntry),
		maxMem: opts.MaxMemEntries,
	}
	if err := s.initFile(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// initFile validates the header (writing one into an empty file) and
// indexes every intact record, healing a corrupt tail by truncation.
func (s *Store) initFile() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("mapstore: stat %s: %w", s.path, err)
	}
	if fi.Size() == 0 {
		if _, err := s.f.Write([]byte(fileMagic)); err != nil {
			return fmt.Errorf("mapstore: write header: %w", err)
		}
		s.scanned = int64(len(fileMagic))
		return nil
	}
	hdr := make([]byte, len(fileMagic))
	if _, err := s.f.ReadAt(hdr, 0); err != nil || string(hdr) != fileMagic {
		return fmt.Errorf("mapstore: %s is not a mapstore log (bad header)", s.path)
	}
	good, dropped, err := s.scanFrom(int64(len(fileMagic)), fi.Size())
	if err != nil {
		return err
	}
	s.scanned = good
	s.corrupt += dropped
	if good < fi.Size() {
		// Heal: drop the bad tail so future appends start from an intact
		// log. Only Open truncates — a live refresh may be observing
		// another process's append in flight and must leave it alone.
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("mapstore: heal %s: truncate to %d: %w", s.path, good, err)
		}
	}
	return nil
}

// scanFrom indexes records in [from, end), returning the offset just past
// the last intact record and the number of record-shaped byte runs it had
// to reject. Later records for a key supersede earlier ones (last wins),
// so a Replace appended after a poisoned record takes effect on rescan.
func (s *Store) scanFrom(from, end int64) (good int64, dropped uint64, err error) {
	r := io.NewSectionReader(s.f, from, end-from)
	br := newCountingReader(r)
	good = from
	var hdr [recHeaderSize]byte
	var key Key
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return good, dropped, nil // clean end of log
			}
			return good, dropped + 1, nil // truncated header
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			return good, dropped + 1, nil
		}
		vallen := binary.LittleEndian.Uint32(hdr[4:8])
		if vallen > maxValueSize {
			return good, dropped + 1, nil
		}
		if _, err := io.ReadFull(br, key[:]); err != nil {
			return good, dropped + 1, nil
		}
		val := make([]byte, vallen)
		if _, err := io.ReadFull(br, val); err != nil {
			return good, dropped + 1, nil
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return good, dropped + 1, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(key[:])
		crc.Write(val)
		if binary.LittleEndian.Uint32(crcBuf[:]) != crc.Sum32() {
			return good, dropped + 1, nil
		}
		s.index[key] = recref{off: good, vallen: int(vallen)}
		good = from + br.n
	}
}

// countingReader tracks how many bytes have been consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// recordSize returns the full on-disk size of a record with the given
// value length.
func recordSize(vallen int) int64 {
	return int64(recHeaderSize + KeySize + vallen + 4)
}

// encodeRecord renders one record into a fresh buffer.
func encodeRecord(key Key, val []byte) []byte {
	buf := make([]byte, recordSize(len(val)))
	binary.LittleEndian.PutUint32(buf[0:4], recMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(val)))
	copy(buf[8:8+KeySize], key[:])
	copy(buf[8+KeySize:], val)
	crc := crc32.ChecksumIEEE(buf[:8+KeySize+len(val)])
	binary.LittleEndian.PutUint32(buf[8+KeySize+len(val):], crc)
	return buf
}

// Get returns the value stored under key. The returned slice is shared —
// callers must treat it as read-only. The memory tier is consulted first,
// then the disk index; on an index miss the log tail is re-scanned once,
// so appends made by another process (or another handle) become visible
// without reopening.
func (s *Store) Get(key Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.lru[key]; ok {
		s.moveToFront(e)
		s.hits++
		return e.val, true
	}
	if s.f == nil {
		s.misses++
		return nil, false
	}
	if val, ok := s.readDisk(key); ok {
		s.diskHits++
		s.insertLRU(key, val)
		return val, true
	}
	// Pick up records appended since the last scan (possibly by another
	// process) and retry once.
	s.refreshLocked()
	if val, ok := s.readDisk(key); ok {
		s.diskHits++
		s.insertLRU(key, val)
		return val, true
	}
	s.misses++
	return nil, false
}

// readDisk fetches and re-verifies the indexed record for key, dropping
// the index entry if the bytes no longer check out.
func (s *Store) readDisk(key Key) ([]byte, bool) {
	ref, ok := s.index[key]
	if !ok {
		return nil, false
	}
	buf := make([]byte, recordSize(ref.vallen))
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		s.corrupt++
		delete(s.index, key)
		return nil, false
	}
	crc := crc32.ChecksumIEEE(buf[:len(buf)-4])
	if binary.LittleEndian.Uint32(buf[len(buf)-4:]) != crc ||
		binary.LittleEndian.Uint32(buf[0:4]) != recMagic {
		s.corrupt++
		delete(s.index, key)
		return nil, false
	}
	var k Key
	copy(k[:], buf[8:8+KeySize])
	if k != key {
		s.corrupt++
		delete(s.index, key)
		return nil, false
	}
	val := buf[8+KeySize : 8+KeySize+ref.vallen]
	return val, true
}

// refreshLocked indexes any records appended past the scanned offset.
// Unlike Open it never truncates: an incomplete tail may be another
// process's append in flight, so scanning simply stops before it and the
// next refresh retries.
func (s *Store) refreshLocked() {
	fi, err := s.f.Stat()
	if err != nil || fi.Size() <= s.scanned {
		return
	}
	good, _, _ := s.scanFrom(s.scanned, fi.Size())
	s.scanned = good
}

// Put stores val under key if the key is not already present. Entries are
// content-addressed — the value for a key is deterministic — so an
// existing entry is left in place and only promoted in the memory tier.
// The append is a single write, atomic with respect to concurrent
// O_APPEND writers.
func (s *Store) Put(key Key, val []byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.lru[key]; ok {
		return nil
	}
	if s.f == nil {
		s.puts++
		s.insertLRU(key, val)
		return nil
	}
	if _, ok := s.index[key]; ok {
		s.insertLRU(key, val)
		return nil
	}
	return s.appendLocked(key, val)
}

// Replace stores val under key unconditionally, superseding any existing
// record (last record wins on scan). Used to repair an entry whose stored
// payload failed semantic validation.
func (s *Store) Replace(key Key, val []byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		s.puts++
		if e, ok := s.lru[key]; ok {
			e.val = val
			s.moveToFront(e)
			return nil
		}
		s.insertLRU(key, val)
		return nil
	}
	return s.appendLocked(key, val)
}

// appendLocked writes one record and indexes it.
func (s *Store) appendLocked(key Key, val []byte) error {
	rec := encodeRecord(key, val)
	// O_APPEND: the kernel seeks to the end and writes atomically, so
	// records from concurrent handles never interleave. The offset the
	// record actually landed at is only discoverable by re-scanning, so
	// advance our own view first if another writer got in ahead.
	s.refreshLocked()
	off := s.scanned
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("mapstore: append: %w", err)
	}
	// Verify the record landed where we believed the log ended; if a
	// concurrent writer appended between refresh and write, rescan to
	// index both correctly.
	if fi, err := s.f.Stat(); err == nil && fi.Size() != off+int64(len(rec)) {
		s.refreshLocked()
	} else {
		s.index[key] = recref{off: off, vallen: len(val)}
		s.scanned = off + int64(len(rec))
	}
	s.puts++
	s.insertLRU(key, val)
	return nil
}

// MarkCorrupt records that a caller found an entry's payload semantically
// invalid (the record checksum passed, but the decoded value did not).
// The caller is expected to recompute and Replace the entry.
func (s *Store) MarkCorrupt() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.corrupt++
	s.mu.Unlock()
}

// insertLRU adds (or refreshes) a memory-tier entry, evicting from the
// cold end past the cap.
func (s *Store) insertLRU(key Key, val []byte) {
	if e, ok := s.lru[key]; ok {
		e.val = val
		s.moveToFront(e)
		return
	}
	e := &lruEntry{key: key, val: val}
	s.lru[key] = e
	s.pushFront(e)
	for len(s.lru) > s.maxMem {
		cold := s.tail
		s.unlink(cold)
		delete(s.lru, cold.key)
		s.evictions++
	}
}

func (s *Store) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFront(e *lruEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the log. The store must not be used afterwards.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Compact rewrites the log to contain exactly the live records (one per
// key, in log order), dropping duplicates and superseded versions, then
// atomically replaces the log file. Compaction is a maintenance operation
// for a single owner: another process holding the old file keeps appending
// to the replaced inode and its appends are lost to this store.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	s.refreshLocked()
	// Live records in log order, for temporal stability.
	type kv struct {
		key Key
		ref recref
	}
	live := make([]kv, 0, len(s.index))
	for k, ref := range s.index {
		live = append(live, kv{k, ref})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ref.off < live[j].ref.off })
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("mapstore: compact: %w", err)
	}
	defer os.Remove(tmpPath)
	if _, err := tmp.Write([]byte(fileMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("mapstore: compact: %w", err)
	}
	newIndex := make(map[Key]recref, len(live))
	off := int64(len(fileMagic))
	for _, e := range live {
		val, ok := s.readDisk(e.key)
		if !ok {
			continue // rotted record: drop it (already counted)
		}
		rec := encodeRecord(e.key, val)
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("mapstore: compact: %w", err)
		}
		newIndex[e.key] = recref{off: off, vallen: len(val)}
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("mapstore: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mapstore: compact: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("mapstore: compact: %w", err)
	}
	// Durability contract: when Compact returns nil, the compacted log —
	// and nothing older — is what a crash recovers. tmp.Sync above made the
	// compacted *contents* durable, but the rename itself lives in the
	// parent directory: without fsyncing the directory, a crash after
	// return can resurrect the pre-compaction inode (silently undoing the
	// compaction and any Replace-healed entries in it). Correctness never
	// depends on which version survives — records are content-addressed —
	// but a caller told "compacted" must be able to rely on it, so a
	// failed directory sync fails the Compact.
	if dir, derr := os.Open(filepath.Dir(s.path)); derr == nil {
		if serr := dir.Sync(); serr != nil {
			dir.Close()
			return fmt.Errorf("mapstore: compact: sync dir: %w", serr)
		}
		dir.Close()
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("mapstore: compact: reopen: %w", err)
	}
	s.f.Close()
	s.f = f
	s.index = newIndex
	s.scanned = off
	return nil
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Hits:       s.hits,
		DiskHits:   s.diskHits,
		Misses:     s.misses,
		Puts:       s.puts,
		Evictions:  s.evictions,
		Corrupt:    s.corrupt,
		MemEntries: len(s.lru),
	}
	if s.f != nil {
		st.Entries = len(s.index)
		if fi, err := s.f.Stat(); err == nil {
			st.DiskBytes = fi.Size()
		}
	} else {
		st.Entries = len(s.lru)
	}
	return st
}

// ExportMetrics publishes the store counters as gauges into a metrics
// registry. Safe to call repeatedly (gauges are set, not accumulated); a
// nil store or registry is a no-op.
func (s *Store) ExportMetrics(r *obs.Registry) {
	if s == nil || r == nil {
		return
	}
	st := s.Stats()
	r.Gauge("mapstore_hits").Set(float64(st.Hits))
	r.Gauge("mapstore_disk_hits").Set(float64(st.DiskHits))
	r.Gauge("mapstore_misses").Set(float64(st.Misses))
	r.Gauge("mapstore_puts").Set(float64(st.Puts))
	r.Gauge("mapstore_evictions").Set(float64(st.Evictions))
	r.Gauge("mapstore_corrupt").Set(float64(st.Corrupt))
	r.Gauge("mapstore_entries").Set(float64(st.Entries))
	r.Gauge("mapstore_mem_entries").Set(float64(st.MemEntries))
	r.Gauge("mapstore_disk_bytes").Set(float64(st.DiskBytes))
}
