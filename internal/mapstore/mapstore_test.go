package mapstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gfmap/internal/bexpr"
)

func testKey(i int) Key {
	return EntryKey(fmt.Sprintf("cone%d", i), "lib", "opts")
}

func TestRoundtripAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int][]byte{}
	for i := 0; i < 50; i++ {
		v := []byte(fmt.Sprintf("value-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		vals[i] = v
		if err := s.Put(testKey(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range vals {
		got, ok := s.Get(testKey(i))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d: got %q ok=%v, want %q", i, got, ok, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must still be there, from disk.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, want := range vals {
		got, ok := s2.Get(testKey(i))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, key %d: got %q ok=%v, want %q", i, got, ok, want)
		}
	}
	st := s2.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("clean reopen counted %d corrupt records", st.Corrupt)
	}
	if st.Entries != 50 {
		t.Fatalf("entries = %d, want 50", st.Entries)
	}
}

func TestPutDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(0)
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	size1 := s.Stats().DiskBytes
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if size2 := s.Stats().DiskBytes; size2 != size1 {
		t.Fatalf("duplicate Put grew the log: %d -> %d", size1, size2)
	}
}

// TestTornWriteSelfHeals simulates a crash mid-append: the file ends in a
// partial record. Open must keep every intact record, count the bad tail
// as corrupt, and truncate it away so subsequent appends work.
func TestTornWriteSelfHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := s.Stats().DiskBytes
	if err := s.Put(testKey(5), []byte("doomed-by-torn-write")); err != nil {
		t.Fatal(err)
	}
	tornSize := s.Stats().DiskBytes
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop bytes off the end, leaving a partial
	// record after the 5 good ones.
	if err := os.Truncate(path, tornSize-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Corrupt == 0 {
		t.Fatal("torn tail not counted as corrupt")
	}
	if st.Entries != 5 {
		t.Fatalf("entries after heal = %d, want 5", st.Entries)
	}
	if st.DiskBytes != goodSize {
		t.Fatalf("heal truncated to %d bytes, want %d", st.DiskBytes, goodSize)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("intact record %d lost after heal: %q ok=%v", i, got, ok)
		}
	}
	if _, ok := s2.Get(testKey(5)); ok {
		t.Fatal("torn record served")
	}
	// The healed log must accept appends and survive another reopen.
	if err := s2.Put(testKey(6), []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Corrupt != 0 {
		t.Fatalf("reopen of healed log counted %d corrupt records", st.Corrupt)
	}
	if got, ok := s3.Get(testKey(6)); !ok || string(got) != "after-heal" {
		t.Fatal("post-heal append lost")
	}
}

// TestBitRotDropsRecord flips a byte inside a committed record; the CRC
// must reject it at read time and the corrupted middle record must not
// poison its neighbours on reopen.
func TestBitRotDropsRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("value-number-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a value byte in the middle record (record 1 of 0..2).
	recLen := (len(data) - len(fileMagic)) / 3
	pos := len(fileMagic) + recLen + recHeaderSize + KeySize + 2
	data[pos] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// A corrupt middle record costs the tail too — the scan cannot trust
	// record boundaries past a bad checksum. Records before it survive.
	if got, ok := s2.Get(testKey(0)); !ok || string(got) != "value-number-0" {
		t.Fatalf("record before rot lost: %q ok=%v", got, ok)
	}
	if _, ok := s2.Get(testKey(1)); ok {
		t.Fatal("bit-rotted record served")
	}
	if s2.Stats().Corrupt == 0 {
		t.Fatal("bit rot not counted")
	}
}

func TestReplaceSupersedes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(0)
	if err := s.Put(k, []byte("poisoned")); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(k, []byte("repaired")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(k); string(got) != "repaired" {
		t.Fatalf("Replace not visible in-process: %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Last record must win on rescan.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(k); !ok || string(got) != "repaired" {
		t.Fatalf("Replace lost across reopen: %q ok=%v", got, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{MaxMemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemEntries != 4 {
		t.Fatalf("mem entries = %d, want 4", st.MemEntries)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
	// Evicted entries fall back to the disk tier.
	for i := 0; i < 10; i++ {
		if got, ok := s.Get(testKey(i)); !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d lost after eviction: %q ok=%v", i, got, ok)
		}
	}
	st = s.Stats()
	if st.DiskHits == 0 {
		t.Fatal("no disk hits after evictions")
	}
}

func TestMemoryStore(t *testing.T) {
	s := NewMemory(3)
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Memory-only: evicted entries are gone for good.
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("evicted entry survived in a memory-only store")
	}
	if got, ok := s.Get(testKey(4)); !ok || string(got) != "v4" {
		t.Fatalf("hot entry lost: %q ok=%v", got, ok)
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(testKey(0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.MarkCorrupt()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

// TestTwoHandles opens the same log through two independent handles —
// standing in for two processes — and checks that each sees the other's
// appends via tail refresh, under the race detector.
func TestTwoHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	a, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Put(testKey(i), []byte(fmt.Sprintf("a%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := n; i < 2*n; i++ {
			if err := b.Put(testKey(i), []byte(fmt.Sprintf("b%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Each handle must see the union via live refresh, without reopening.
	for i := 0; i < n; i++ {
		if got, ok := b.Get(testKey(i)); !ok || string(got) != fmt.Sprintf("a%d", i) {
			t.Fatalf("handle b missing a's key %d: %q ok=%v", i, got, ok)
		}
	}
	for i := n; i < 2*n; i++ {
		if got, ok := a.Get(testKey(i)); !ok || string(got) != fmt.Sprintf("b%d", i) {
			t.Fatalf("handle a missing b's key %d: %q ok=%v", i, got, ok)
		}
	}
	// And a fresh handle sees the union from a clean scan.
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st := c.Stats(); st.Entries != 2*n {
		t.Fatalf("fresh handle sees %d entries, want %d", st.Entries, 2*n)
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Fatalf("interleaved appends produced %d corrupt records", st.Corrupt)
	}
}

// TestConcurrentSameHandle hammers one handle from many goroutines.
func TestConcurrentSameHandle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{MaxMemEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(i % 25)
				want := fmt.Sprintf("v%d", i%25)
				if err := s.Put(k, []byte(want)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); !ok || string(got) != want {
					t.Errorf("got %q ok=%v want %q", got, ok, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(0)
	if err := s.Put(k, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Replace(k, []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(testKey(1), []byte("other")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().DiskBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().DiskBytes
	if after >= before {
		t.Fatalf("compact did not shrink the log: %d -> %d", before, after)
	}
	if got, ok := s.Get(k); !ok || string(got) != "gen19" {
		t.Fatalf("latest version lost by compact: %q ok=%v", got, ok)
	}
	if got, ok := s.Get(testKey(1)); !ok || string(got) != "other" {
		t.Fatalf("live key lost by compact: %q ok=%v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 2 || st.Corrupt != 0 {
		t.Fatalf("compacted log: entries=%d corrupt=%d, want 2/0", st.Entries, st.Corrupt)
	}
}

// TestCompactManyKeysPreservesAll: compaction over a large index (the
// sort.Slice path) keeps every live record and survives reopen.
func TestCompactManyKeysPreservesAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gfm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, ok := s.Get(testKey(i)); !ok || string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("key %d after compact: %q ok=%v", i, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != n || st.Corrupt != 0 {
		t.Fatalf("after reopen: entries=%d corrupt=%d, want %d/0", st.Entries, st.Corrupt, n)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("hello, world — definitely not a mapstore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
}

func TestConeKeyLeafRenameInvariance(t *testing.T) {
	// Same structure, different leaf names → same key.
	e1 := bexpr.And(bexpr.Var("a"), bexpr.Or(bexpr.Var("b"), bexpr.Not(bexpr.Var("a"))))
	e2 := bexpr.And(bexpr.Var("x9"), bexpr.Or(bexpr.Var("q"), bexpr.Not(bexpr.Var("x9"))))
	k1, k2 := ConeKey(bexpr.New(e1)), ConeKey(bexpr.New(e2))
	if k1 != k2 {
		t.Fatalf("alpha-equivalent cones keyed differently:\n%s\n%s", k1, k2)
	}

	// Different leaf-equality pattern → different key, even with the same
	// skeleton (a&(b|!a) vs a&(b|!c)).
	e3 := bexpr.And(bexpr.Var("a"), bexpr.Or(bexpr.Var("b"), bexpr.Not(bexpr.Var("c"))))
	if k3 := ConeKey(bexpr.New(e3)); k3 == k1 {
		t.Fatalf("distinct leaf patterns collided: %s", k3)
	}

	// Operand order matters (deliberately no commutative canonicalization).
	e4 := bexpr.And(bexpr.Or(bexpr.Var("b"), bexpr.Not(bexpr.Var("a"))), bexpr.Var("a"))
	if k4 := ConeKey(bexpr.New(e4)); k4 == k1 {
		t.Fatal("operand order was canonicalized away")
	}
}

func TestEntryKeySeparatesComponents(t *testing.T) {
	base := EntryKey("cone", "lib", "opt")
	if EntryKey("cone", "lib", "optX") == base ||
		EntryKey("cone", "libX", "opt") == base ||
		EntryKey("coneX", "lib", "opt") == base {
		t.Fatal("EntryKey ignored a component")
	}
	// Concatenation ambiguity must not collide ("ab"+"c" vs "a"+"bc").
	if EntryKey("ab", "c", "opt") == EntryKey("a", "bc", "opt") {
		t.Fatal("EntryKey components not separated")
	}
}
