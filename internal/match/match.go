// Package match implements Boolean matching of cluster functions against
// library cells, in the style of the CERES mapper: equivalence is detected
// up to input permutation, input phase assignment and output phase, with
// cofactor-signature pruning. The returned bindings are exactly what the
// asynchronous matching filter of the paper needs: they say which cell pin
// drives which subnetwork input, so the cell's hazard set can be translated
// into the subnetwork's space and compared (§3.2.2).
//
// A Matcher wraps one side of a match (typically a library cell) with its
// signature vector memoized and, optionally, symmetry classes over its
// pins. Symmetric pins are interchangeable both functionally and in their
// hazard behaviour, so the permutation search can enumerate one canonical
// representative per symmetry orbit (Matcher.Find) instead of the whole
// orbit (Matcher.FindAll) — collapsing e.g. AND6's 720 pin orderings to 1.
package match

import (
	"gfmap/internal/hazard"
	"gfmap/internal/truthtab"
)

// Matcher carries a match subject with memoized pruning data: the
// signature vector (computed once, shared across every probe) and the
// pin symmetry classes. A Matcher is read-only after construction and
// safe for concurrent use.
type Matcher struct {
	tt  truthtab.TT
	sig truthtab.SigVector
	// prev[i] is the previous pin in pin i's symmetry class, or -1. A
	// binding is its orbit's canonical representative iff the bound target
	// variables ascend along every class chain.
	prev  []int
	orbit int // bindings per orbit: product of class-size factorials
}

// NewMatcher builds a matcher with no symmetry information: every pin is
// its own class, so Find and FindAll enumerate identically.
func NewMatcher(tt truthtab.TT) *Matcher {
	m := &Matcher{tt: tt, sig: tt.SigVec(), orbit: 1, prev: make([]int, tt.N)}
	for i := range m.prev {
		m.prev[i] = -1
	}
	return m
}

// NewSymMatcher builds a matcher with pin symmetry classes. classOf[i]
// names pin i's class; pins sharing a class value must be provably
// interchangeable — the function and (for hazardous cells) the hazard set
// invariant under every swap within the class. The caller vouches for
// that; library.Annotate derives the classes from TT.SymmetricPair plus a
// hazard-set swap-invariance check.
func NewSymMatcher(tt truthtab.TT, classOf []int) *Matcher {
	m := NewMatcher(tt)
	last := make(map[int]int, tt.N)
	size := make(map[int]int, tt.N)
	for i := 0; i < tt.N; i++ {
		c := classOf[i]
		if p, ok := last[c]; ok {
			m.prev[i] = p
		}
		last[c] = i
		size[c]++
	}
	for _, s := range size {
		for k := 2; k <= s; k++ {
			m.orbit *= k
		}
	}
	return m
}

// TT returns the matcher's truth table.
func (m *Matcher) TT() truthtab.TT { return m.tt }

// Sig returns the memoized signature vector. The caller must not mutate
// the shared C0/C1 slices.
func (m *Matcher) Sig() truthtab.SigVector { return m.sig }

// Orbit returns the number of bindings in each symmetry orbit (1 when the
// matcher has no symmetry classes).
func (m *Matcher) Orbit() int { return m.orbit }

// Representative reports whether perm is the canonical representative of
// its symmetry orbit: target variables ascend along every symmetry-class
// chain. With no symmetry classes every binding is a representative.
// Bindings yielded by Find are always representatives; FindAll yields the
// whole orbit, of which exactly one binding satisfies this predicate.
func (m *Matcher) Representative(perm []int) bool {
	for i, p := range m.prev {
		if p >= 0 && perm[i] < perm[p] {
			return false
		}
	}
	return true
}

// Find enumerates one representative binding per symmetry orbit under
// which the matcher's function equals goal (direct output phase; the
// mapper handles output inversion by dual-phase covering). goalSig must be
// goal's signature vector — passed in so the caller can compute it once
// per cluster and share it across cells and phases. Enumeration stops when
// fn returns false.
func (m *Matcher) Find(goal truthtab.TT, goalSig truthtab.SigVector, fn func(hazard.Binding) bool) {
	m.run(goal, goalSig, false, true, fn)
}

// FindAll is Find without symmetry pruning: every binding of every orbit.
func (m *Matcher) FindAll(goal truthtab.TT, goalSig truthtab.SigVector, fn func(hazard.Binding) bool) {
	m.run(goal, goalSig, false, false, fn)
}

// run drives one permutation search against a single output phase.
// Returns false when fn asked to stop.
func (m *Matcher) run(goal truthtab.TT, goalSig truthtab.SigVector, invOut, prune bool, fn func(hazard.Binding) bool) bool {
	if m.tt.N != goal.N || m.sig.Ones != goalSig.Ones {
		return true
	}
	n := m.tt.N
	s := &search{
		cell:     m.tt,
		goal:     goal,
		cellSig:  m.sig,
		goalSig:  goalSig,
		prev:     m.prev,
		prune:    prune,
		invOut:   invOut,
		n:        n,
		v:        funcVisitor{fn},
		copyPerm: true,
		perm:     make([]int, n),
		usedVar:  make([]bool, n),
	}
	return s.assign(0)
}

// Visitor receives bindings from a scratch-mode search. The Binding
// passed to Visit aliases search-owned scratch: Perm is valid only for
// the duration of the call and must be copied if retained. Returning
// false stops the enumeration.
type Visitor interface {
	Visit(hazard.Binding) bool
}

// funcVisitor adapts the legacy callback API to the Visitor interface.
type funcVisitor struct {
	fn func(hazard.Binding) bool
}

func (f funcVisitor) Visit(b hazard.Binding) bool { return f.fn(b) }

// Scratch holds the permutation-search state for the scratch-mode entry
// points: the search frame, the perm/usedVar working arrays, and a
// transform destination table. One Scratch serves any number of
// sequential searches with zero steady-state allocation; it must not be
// shared between concurrent searches.
type Scratch struct {
	s       search
	perm    []int
	usedVar []bool
	tmp     truthtab.TT
}

// Scrub zeroes the request-derived contents of the scratch — the last
// search's permutation and transform words — while keeping the buffers
// for reuse. Pools that recycle a Scratch across requests call this so a
// recycled scratch carries no data from the request that filled it. (The
// search frame itself is already dropped at the end of every run.)
func (sc *Scratch) Scrub() {
	clear(sc.perm)
	clear(sc.usedVar)
	sc.tmp.N = 0
	clear(sc.tmp.Bits)
}

// FindScratch is Find with search state drawn from sc and bindings
// delivered through a Visitor whose Binding.Perm aliases scratch (copy to
// retain). Steady state allocates nothing.
func (m *Matcher) FindScratch(goal truthtab.TT, goalSig truthtab.SigVector, v Visitor, sc *Scratch) {
	m.runScratch(goal, goalSig, false, true, v, sc)
}

// FindAllScratch is FindScratch without symmetry pruning: every binding
// of every orbit.
func (m *Matcher) FindAllScratch(goal truthtab.TT, goalSig truthtab.SigVector, v Visitor, sc *Scratch) {
	m.runScratch(goal, goalSig, false, false, v, sc)
}

func (m *Matcher) runScratch(goal truthtab.TT, goalSig truthtab.SigVector, invOut, prune bool, v Visitor, sc *Scratch) bool {
	if m.tt.N != goal.N || m.sig.Ones != goalSig.Ones {
		return true
	}
	n := m.tt.N
	if cap(sc.perm) < n {
		sc.perm = make([]int, n)
		sc.usedVar = make([]bool, n)
	}
	clear(sc.usedVar[:n])
	s := &sc.s
	*s = search{
		cell:    m.tt,
		goal:    goal,
		cellSig: m.sig,
		goalSig: goalSig,
		prev:    m.prev,
		prune:   prune,
		invOut:  invOut,
		n:       n,
		v:       v,
		perm:    sc.perm[:n],
		usedVar: sc.usedVar[:n],
		tmp:     &sc.tmp,
	}
	ok := s.assign(0)
	// Drop every reference to caller-owned data before the scratch goes
	// back to a pool: a canceled request's tables, signatures and visitor
	// must not stay reachable from reused worker state.
	*s = search{}
	return ok
}

// Find enumerates the bindings under which the cell function equals the
// target function, invoking fn for each; enumeration stops when fn returns
// false. Bindings with an inverted output are reported only when
// allowInvOut is set (the mapper handles output inversion by inserting an
// inverter or by dual-phase covering). No symmetry pruning is applied:
// every binding of every orbit is reported.
func Find(target, cell truthtab.TT, allowInvOut bool, fn func(hazard.Binding) bool) {
	if target.N != cell.N {
		return
	}
	m := NewMatcher(cell)
	tsig := target.SigVec()
	if !m.run(target, tsig, false, false, fn) {
		return // fn asked to stop
	}
	if allowInvOut {
		m.run(target.Not(), tsig.Complement(), true, false, fn)
	}
}

// All collects every binding (bounded by limit; limit <= 0 means no bound).
func All(target, cell truthtab.TT, allowInvOut bool, limit int) []hazard.Binding {
	var out []hazard.Binding
	Find(target, cell, allowInvOut, func(b hazard.Binding) bool {
		out = append(out, b)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// First returns the first binding found, if any.
func First(target, cell truthtab.TT, allowInvOut bool) (hazard.Binding, bool) {
	var res hazard.Binding
	found := false
	Find(target, cell, allowInvOut, func(b hazard.Binding) bool {
		res = b
		found = true
		return false
	})
	return res, found
}

// Phase-candidate slices are shared read-only constants so phasesFor never
// allocates on the hot path.
var (
	phBoth = []bool{false, true}
	phPos  = []bool{false}
	phNeg  = []bool{true}
)

type search struct {
	cell, goal       truthtab.TT
	cellSig, goalSig truthtab.SigVector
	prev             []int
	prune            bool
	invOut           bool
	copyPerm         bool
	n                int
	v                Visitor
	tmp              *truthtab.TT // scratch transform destination; nil = allocate per leaf
	perm             []int
	inv              uint64
	usedVar          []bool
}

// assign binds cell input i onward; returns false when enumeration should
// stop entirely.
func (s *search) assign(i int) bool {
	if i == s.n {
		// goal already accounts for the output phase, so transform without it.
		if s.tmp != nil {
			s.cell.TransformInto(s.perm, s.inv, false, s.n, s.tmp)
			if !s.tmp.Equal(s.goal) {
				return true
			}
		} else {
			h := s.cell.Transform(s.perm, s.inv, false, s.n)
			if !h.Equal(s.goal) {
				return true
			}
		}
		perm := s.perm
		if s.copyPerm {
			perm = append([]int(nil), s.perm...)
		}
		b := hazard.Binding{
			Perm:   perm,
			InvIn:  s.inv,
			InvOut: s.invOut,
		}
		return s.v.Visit(b)
	}
	cs := s.cellSig.Var(i)
	// Symmetry pruning: pins of one class are interchangeable, so any
	// binding with descending target variables along a class chain is a
	// duplicate of the representative with them ascending — skip the
	// variables below the previous class member's assignment.
	minV := 0
	if s.prune && s.prev[i] >= 0 {
		minV = s.perm[s.prev[i]] + 1
	}
	for v := minV; v < s.n; v++ {
		if s.usedVar[v] {
			continue
		}
		if cs != s.goalSig.Var(v) {
			continue
		}
		s.usedVar[v] = true
		s.perm[i] = v
		// Try both phases when the signature is symmetric, otherwise the
		// phase is forced by cofactor alignment; a full check happens at the
		// leaf anyway, so phase pruning is purely an optimisation.
		phases := s.phasesFor(i, v)
		for _, ph := range phases {
			if ph {
				s.inv |= 1 << uint(i)
			} else {
				s.inv &^= 1 << uint(i)
			}
			if !s.assign(i + 1) {
				s.usedVar[v] = false
				return false
			}
		}
		s.inv &^= 1 << uint(i)
		s.usedVar[v] = false
	}
	return true
}

// phasesFor decides which input phases are worth trying for binding cell
// input i to goal variable v, using the ordered cofactor ON-set sizes from
// the memoized signature vectors (no truth-table work).
func (s *search) phasesFor(i, v int) []bool {
	c0, c1 := s.cellSig.C0[i], s.cellSig.C1[i]
	g0, g1 := s.goalSig.C0[v], s.goalSig.C1[v]
	switch {
	case c0 == c1:
		return phBoth
	case c0 == g0 && c1 == g1:
		return phPos
	case c0 == g1 && c1 == g0:
		return phNeg
	default:
		return nil
	}
}
