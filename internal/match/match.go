// Package match implements Boolean matching of cluster functions against
// library cells, in the style of the CERES mapper: equivalence is detected
// up to input permutation, input phase assignment and output phase, with
// cofactor-signature pruning. The returned bindings are exactly what the
// asynchronous matching filter of the paper needs: they say which cell pin
// drives which subnetwork input, so the cell's hazard set can be translated
// into the subnetwork's space and compared (§3.2.2).
package match

import (
	"gfmap/internal/hazard"
	"gfmap/internal/truthtab"
)

// Find enumerates the bindings under which the cell function equals the
// target function, invoking fn for each; enumeration stops when fn returns
// false. Bindings with an inverted output are reported only when
// allowInvOut is set (the mapper handles output inversion by inserting an
// inverter or by dual-phase covering).
func Find(target, cell truthtab.TT, allowInvOut bool, fn func(hazard.Binding) bool) {
	if target.N != cell.N {
		return
	}
	outPhases := []bool{false}
	if allowInvOut {
		outPhases = []bool{false, true}
	}
	cellSig := cell.Signature()
	for _, invOut := range outPhases {
		goal := target
		if invOut {
			goal = target.Not()
		}
		if cell.Ones() != goal.Ones() {
			continue
		}
		goalSig := goal.Signature()
		s := &search{
			cell:    cell,
			goal:    goal,
			cellSig: cellSig,
			goalSig: goalSig,
			invOut:  invOut,
			n:       target.N,
			fn:      fn,
			perm:    make([]int, target.N),
			usedVar: make([]bool, target.N),
		}
		if !s.assign(0) {
			return // fn asked to stop
		}
	}
}

// All collects every binding (bounded by limit; limit <= 0 means no bound).
func All(target, cell truthtab.TT, allowInvOut bool, limit int) []hazard.Binding {
	var out []hazard.Binding
	Find(target, cell, allowInvOut, func(b hazard.Binding) bool {
		out = append(out, b)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// First returns the first binding found, if any.
func First(target, cell truthtab.TT, allowInvOut bool) (hazard.Binding, bool) {
	var res hazard.Binding
	found := false
	Find(target, cell, allowInvOut, func(b hazard.Binding) bool {
		res = b
		found = true
		return false
	})
	return res, found
}

type search struct {
	cell, goal       truthtab.TT
	cellSig, goalSig []truthtab.VarSignature
	invOut           bool
	n                int
	fn               func(hazard.Binding) bool
	perm             []int
	inv              uint64
	usedVar          []bool
}

// assign binds cell input i onward; returns false when enumeration should
// stop entirely.
func (s *search) assign(i int) bool {
	if i == s.n {
		// goal already accounts for the output phase, so transform without it.
		h := s.cell.Transform(s.perm, s.inv, false, s.n)
		if !h.Equal(s.goal) {
			return true
		}
		b := hazard.Binding{
			Perm:   append([]int(nil), s.perm...),
			InvIn:  s.inv,
			InvOut: s.invOut,
		}
		return s.fn(b)
	}
	cs := s.cellSig[i]
	for v := 0; v < s.n; v++ {
		if s.usedVar[v] {
			continue
		}
		gs := s.goalSig[v]
		if cs != gs {
			continue
		}
		s.usedVar[v] = true
		s.perm[i] = v
		// Try both phases when the signature is symmetric, otherwise the
		// phase is forced by cofactor alignment; a full check happens at the
		// leaf anyway, so phase pruning is purely an optimisation.
		phases := s.phasesFor(i, v)
		for _, ph := range phases {
			if ph {
				s.inv |= 1 << uint(i)
			} else {
				s.inv &^= 1 << uint(i)
			}
			if !s.assign(i + 1) {
				s.usedVar[v] = false
				return false
			}
		}
		s.inv &^= 1 << uint(i)
		s.usedVar[v] = false
	}
	return true
}

// phasesFor decides which input phases are worth trying for binding cell
// input i to goal variable v, using the ordered cofactor ON-set sizes.
func (s *search) phasesFor(i, v int) []bool {
	c0 := s.cell.Cofactor(i, false).Ones()
	c1 := s.cell.Cofactor(i, true).Ones()
	g0 := s.goal.Cofactor(v, false).Ones()
	g1 := s.goal.Cofactor(v, true).Ones()
	switch {
	case c0 == c1:
		return []bool{false, true}
	case c0 == g0 && c1 == g1:
		return []bool{false}
	case c0 == g1 && c1 == g0:
		return []bool{true}
	default:
		return nil
	}
}
