package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
	"gfmap/internal/truthtab"
)

func tt(t testing.TB, expr string) truthtab.TT {
	t.Helper()
	out, err := truthtab.FromExpr(bexpr.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// verify checks that a reported binding really transforms cell into target.
func verify(t *testing.T, target, cell truthtab.TT, b hazard.Binding) {
	t.Helper()
	got := cell.Transform(b.Perm, b.InvIn, b.InvOut, target.N)
	if !got.Equal(target) {
		t.Errorf("binding %+v does not reproduce target: %v vs %v", b, got, target)
	}
}

func TestIdentityMatch(t *testing.T) {
	and2 := tt(t, "a*b")
	b, ok := First(and2, and2, false)
	if !ok {
		t.Fatal("AND2 must match itself")
	}
	verify(t, and2, and2, b)
}

func TestPermutationMatch(t *testing.T) {
	target := tt(t, "a*b'") // target over (a,b)
	cell := tt(t, "a'*b")   // same function with inputs swapped
	bindings := All(target, cell, false, 0)
	if len(bindings) == 0 {
		t.Fatal("expected a permutation match")
	}
	for _, b := range bindings {
		verify(t, target, cell, b)
	}
}

func TestPhaseMatch(t *testing.T) {
	target := tt(t, "a'*b'")
	cell := tt(t, "a*b")
	bindings := All(target, cell, false, 0)
	if len(bindings) == 0 {
		t.Fatal("expected phase-assignment matches")
	}
	for _, b := range bindings {
		verify(t, target, cell, b)
		if b.InvIn == 0 {
			t.Error("match must invert both inputs")
		}
	}
}

func TestOutputPhaseMatch(t *testing.T) {
	target := tt(t, "(a*b)'")
	cell := tt(t, "a*b")
	if _, ok := First(target, cell, false); ok {
		t.Fatal("NAND must not match AND without output inversion")
	}
	b, ok := First(target, cell, true)
	if !ok {
		t.Fatal("NAND should match AND with output inversion")
	}
	if !b.InvOut {
		t.Error("binding should carry InvOut")
	}
	verify(t, target, cell, b)
}

func TestSymmetricCellEnumeratesAllPerms(t *testing.T) {
	target := tt(t, "a*b*c")
	cell := tt(t, "a*b*c")
	bindings := All(target, cell, false, 0)
	if len(bindings) != 6 {
		t.Errorf("AND3 self-match should yield 3! = 6 bindings, got %d", len(bindings))
	}
	for _, b := range bindings {
		verify(t, target, cell, b)
	}
}

func TestMuxMatch(t *testing.T) {
	// Matching a mux against a mux with data pins swapped requires the
	// select to be inverted.
	target := tt(t, "s'*a + s*b")
	cell := tt(t, "s'*b + s*a")
	bindings := All(target, cell, false, 0)
	if len(bindings) == 0 {
		t.Fatal("mux variants must match")
	}
	for _, b := range bindings {
		verify(t, target, cell, b)
	}
}

func TestNoMatchDifferentFunctions(t *testing.T) {
	target := tt(t, "a*b + c")
	cell := tt(t, "a + b + c")
	if _, ok := First(target, cell, true); ok {
		t.Error("functions with different NPN classes must not match")
	}
}

func TestNoMatchDifferentArity(t *testing.T) {
	target := tt(t, "a*b")
	cell := tt(t, "a*b*c")
	if _, ok := First(target, cell, true); ok {
		t.Error("different arities must not match")
	}
}

func TestAOIMatch(t *testing.T) {
	target := tt(t, "(a*b + c)'")
	cell := tt(t, "(x*y + z)'")
	b, ok := First(target, cell, false)
	if !ok {
		t.Fatal("AOI21 must match itself across naming")
	}
	verify(t, target, cell, b)
}

func TestXorMatchWithPhases(t *testing.T) {
	target := tt(t, "a*b' + a'*b")
	xnor := tt(t, "a*b + a'*b'")
	// XOR matches XNOR with one input inverted.
	bindings := All(target, xnor, false, 0)
	if len(bindings) == 0 {
		t.Fatal("XOR should match XNOR via an input phase flip")
	}
	for _, b := range bindings {
		verify(t, target, xnor, b)
	}
}

func BenchmarkMatchMux4(b *testing.B) {
	target := tt(b, "s'*t'*a + s*t'*b + s'*t*c + s*t*d")
	cell := tt(b, "x'*y'*p + x*y'*q + x'*y*r + x*y*w")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := First(target, cell, false); !ok {
			b.Fatal("mux4 should match")
		}
	}
}

// TestFindRecoversRandomTransform is the matching completeness property:
// for a random cell function and a random (permutation, phase) transform,
// Find must recover at least one binding reproducing the transformed
// target.
func TestFindRecoversRandomTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	prop := func(bits uint16, permSeed uint8, inv uint8) bool {
		n := 3
		cell, err := truthtab.FromFunc(n, func(p uint64) bool {
			return bits&(1<<p) != 0
		})
		if err != nil {
			return false
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		r := rand.New(rand.NewSource(int64(permSeed)))
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		target := cell.Transform(perm, uint64(inv)&0b111, false, n)
		found := false
		Find(target, cell, false, func(b hazard.Binding) bool {
			if cell.Transform(b.Perm, b.InvIn, b.InvOut, n).Equal(target) {
				found = true
			}
			return !found
		})
		return found
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
