package match

import (
	"testing"

	"gfmap/internal/hazard"
)

// oneClass returns the pin classes "every pin in one class" for a totally
// symmetric function.
func oneClass(n int) []int { return make([]int, n) }

func TestAllLimitOne(t *testing.T) {
	and3 := tt(t, "a*b*c")
	got := All(and3, and3, false, 1)
	if len(got) != 1 {
		t.Fatalf("All with limit=1 returned %d bindings, want 1", len(got))
	}
	verify(t, and3, and3, got[0])
}

func TestAllLimitNonPositiveMeansUnbounded(t *testing.T) {
	and3 := tt(t, "a*b*c")
	for _, limit := range []int{0, -1, -100} {
		got := All(and3, and3, false, limit)
		if len(got) != 6 {
			t.Fatalf("All with limit=%d returned %d bindings, want all 6", limit, len(got))
		}
	}
}

func TestSymMatcherCollapsesOrbit(t *testing.T) {
	and6 := tt(t, "a*b*c*d*e*f")
	m := NewSymMatcher(and6, oneClass(6))
	if m.Orbit() != 720 {
		t.Fatalf("AND6 orbit=%d, want 6!=720", m.Orbit())
	}
	sig := and6.SigVec()
	var pruned, full []hazard.Binding
	m.Find(and6, sig, func(b hazard.Binding) bool {
		pruned = append(pruned, b)
		return true
	})
	m.FindAll(and6, sig, func(b hazard.Binding) bool {
		full = append(full, b)
		return true
	})
	if len(pruned) != 1 {
		t.Fatalf("pruned search found %d bindings, want 1 representative", len(pruned))
	}
	if len(full) != 720 {
		t.Fatalf("unpruned search found %d bindings, want 720", len(full))
	}
	verify(t, and6, and6, pruned[0])
	// Exactly one member of the orbit is the canonical representative, and
	// it is the one the pruned search yields.
	reps := 0
	for _, b := range full {
		if m.Representative(b.Perm) {
			reps++
		}
	}
	if reps != 1 {
		t.Fatalf("%d representatives in a single orbit, want 1", reps)
	}
	if !m.Representative(pruned[0].Perm) {
		t.Fatal("pruned search yielded a non-representative binding")
	}
}

// A partially symmetric cell: pins a,b are interchangeable, c is not.
func TestSymMatcherPartialClasses(t *testing.T) {
	fn := tt(t, "(a+b)*c")
	m := NewSymMatcher(fn, []int{0, 0, 1})
	if m.Orbit() != 2 {
		t.Fatalf("orbit=%d, want 2!=2", m.Orbit())
	}
	sig := fn.SigVec()
	var pruned, full int
	m.Find(fn, sig, func(hazard.Binding) bool { pruned++; return true })
	m.FindAll(fn, sig, func(hazard.Binding) bool { full++; return true })
	if full != 2*pruned {
		t.Fatalf("unpruned=%d pruned=%d: want exactly orbit x representatives", full, pruned)
	}
}

// The pruned search must not lose matches when the target's variable order
// differs from the cell's.
func TestSymMatcherFindsPermutedTargets(t *testing.T) {
	cell := tt(t, "(a*b)+c")
	targets := []string{"(a*b)+c", "(a*c)+b", "(b*c)+a", "(a'*b')+c", "(c*a)+b'"}
	m := NewSymMatcher(cell, []int{0, 0, 1})
	for _, src := range targets {
		target := tt(t, src)
		tsig := target.SigVec()
		found := 0
		m.Find(target, tsig, func(b hazard.Binding) bool {
			verify(t, target, cell, b)
			found++
			return true
		})
		if found == 0 {
			t.Fatalf("pruned matcher missed target %q", src)
		}
	}
}

func TestMatcherSigAllocFree(t *testing.T) {
	m := NewMatcher(tt(t, "a*b+c*d"))
	if a := testing.AllocsPerRun(100, func() {
		_ = m.Sig()
	}); a != 0 {
		t.Fatalf("Matcher.Sig allocates %.1f times per run, want 0 (memoized)", a)
	}
}

func TestPackageFindIsUnpruned(t *testing.T) {
	and4 := tt(t, "a*b*c*d")
	n := 0
	Find(and4, and4, false, func(hazard.Binding) bool { n++; return true })
	if n != 24 {
		t.Fatalf("package-level Find reported %d bindings, want all 24", n)
	}
}
