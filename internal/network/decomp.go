package network

import (
	"fmt"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
	"gfmap/internal/espresso"
)

// GateKind classifies the nodes of a decomposed network.
type GateKind int

// Base gate kinds produced by AsyncTechDecomp.
const (
	GateOther GateKind = iota // not a base gate (undecomposed node)
	GateAnd2
	GateOr2
	GateInv
	GateBuf
	GateConst
)

// KindOf classifies a node's expression as one of the base gates.
func KindOf(node *Node) GateKind {
	e := node.Expr
	switch e.Op {
	case bexpr.OpConst:
		return GateConst
	case bexpr.OpVar:
		return GateBuf
	case bexpr.OpNot:
		if e.Kids[0].Op == bexpr.OpVar {
			return GateInv
		}
	case bexpr.OpAnd:
		if len(e.Kids) == 2 && e.Kids[0].Op == bexpr.OpVar && e.Kids[1].Op == bexpr.OpVar {
			return GateAnd2
		}
	case bexpr.OpOr:
		if len(e.Kids) == 2 && e.Kids[0].Op == bexpr.OpVar && e.Kids[1].Op == bexpr.OpVar {
			return GateOr2
		}
	}
	return GateOther
}

// AsyncTechDecomp is the paper's async_tech_decomp (§3.1.1): it rewrites
// the network into an equivalent one built only from two-input AND and OR
// gates and inverters, applying exclusively the associative law (to
// binarise n-ary gates) and DeMorgan's law (to push complements to the
// leaves). Both laws are hazard-preserving for all logic hazards (Unger),
// so the decomposed network has exactly the hazard behaviour of the
// original. No Boolean simplification of any kind is performed — dropping
// a redundant cube could introduce a static 1-hazard.
func AsyncTechDecomp(n *Network) (*Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := New(n.Name + "_decomp")
	for _, in := range n.Inputs {
		if err := out.AddInput(in); err != nil {
			return nil, err
		}
	}
	d := &decomposer{src: n, dst: out, invCache: make(map[string]string)}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, name := range order {
		node := n.nodes[name]
		d.created = make(map[string]bool)
		sig, err := d.build(node.Expr, false)
		if err != nil {
			return nil, err
		}
		// The original node name must stay valid: alias it with a buffer
		// unless the final gate can simply take the name. To keep the
		// structure free of extra buffers, we emit the last gate under the
		// original name where possible. Only gates created for this node
		// may be renamed — the signal might otherwise be another node.
		if sig == name {
			continue
		}
		if d.created[sig] && out.nodes[sig] != nil && len(d.readers(sig)) == 0 && !containsName(out.Outputs, sig) {
			// Rename the freshly created top gate to the node name.
			g := out.nodes[sig]
			delete(out.nodes, sig)
			for i, o := range out.order {
				if o == sig {
					out.order[i] = name
				}
			}
			g.Name = name
			out.nodes[name] = g
			for k, v := range d.invCache {
				if v == sig {
					d.invCache[k] = name
				}
			}
			continue
		}
		if err := out.AddNode(name, bexpr.Var(sig)); err != nil {
			return nil, err
		}
	}
	for _, o := range n.Outputs {
		if err := out.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type decomposer struct {
	src      *Network
	dst      *Network
	invCache map[string]string // signal -> name of its inverter output
	created  map[string]bool   // gate names created for the current node
	counter  int
}

func containsName(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// readers returns node names in dst reading the given signal (used only to
// decide whether a fresh gate can be renamed; fresh gates have none).
func (d *decomposer) readers(sig string) []string {
	var out []string
	for _, name := range d.dst.order {
		for _, f := range d.dst.nodes[name].Fanins {
			if f == sig {
				out = append(out, name)
			}
		}
	}
	return out
}

func (d *decomposer) fresh() string {
	for {
		d.counter++
		name := fmt.Sprintf("g%d", d.counter)
		if !d.dst.exists(name) && !d.src.exists(name) {
			return name
		}
	}
}

func (d *decomposer) emit(e *bexpr.Expr) (string, error) {
	name := d.fresh()
	if err := d.dst.AddNode(name, e); err != nil {
		return "", err
	}
	if d.created != nil {
		d.created[name] = true
	}
	return name, nil
}

// build returns the name of a signal computing e complemented by neg.
func (d *decomposer) build(e *bexpr.Expr, neg bool) (string, error) {
	switch e.Op {
	case bexpr.OpConst:
		return d.emit(bexpr.Const(e.Val != neg))
	case bexpr.OpVar:
		if !neg {
			return e.Name, nil
		}
		return d.inverter(e.Name)
	case bexpr.OpNot:
		return d.build(e.Kids[0], !neg)
	case bexpr.OpAnd, bexpr.OpOr:
		isAnd := (e.Op == bexpr.OpAnd) != neg // DeMorgan flips the operator
		acc := ""
		for i, k := range e.Kids {
			sig, err := d.build(k, neg)
			if err != nil {
				return "", err
			}
			if i == 0 {
				acc = sig
				continue
			}
			var gate *bexpr.Expr
			if isAnd {
				gate = bexpr.And(bexpr.Var(acc), bexpr.Var(sig))
			} else {
				gate = bexpr.Or(bexpr.Var(acc), bexpr.Var(sig))
			}
			name, err := d.emit(gate)
			if err != nil {
				return "", err
			}
			acc = name
		}
		return acc, nil
	}
	return "", fmt.Errorf("network: bad op %d", e.Op)
}

func (d *decomposer) inverter(sig string) (string, error) {
	if inv, ok := d.invCache[sig]; ok {
		return inv, nil
	}
	name, err := d.emit(bexpr.Not(bexpr.Var(sig)))
	if err != nil {
		return "", err
	}
	d.invCache[sig] = name
	return name, nil
}

// IsDecomposed reports whether every node of the network is a base gate.
func IsDecomposed(n *Network) bool {
	for _, name := range n.order {
		if KindOf(n.nodes[name]) == GateOther {
			return false
		}
	}
	return true
}

// SyncTechDecomp mimics the decomposition step of a synchronous technology
// mapper such as MIS, which also *simplifies* each node while decomposing:
// every node's SOP is run through the Espresso-style two-level minimiser
// before the network is broken into base gates. The paper's §3.1.1 warns that exactly
// this simplification can introduce static 1-hazards — a redundant cube is
// often the consensus term holding the output through a transition — which
// is why the asynchronous flow must use AsyncTechDecomp instead. The
// function exists to make that contrast executable (see the hazard tests).
func SyncTechDecomp(n *Network) (*Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	simplified := New(n.Name + "_simp")
	for _, in := range n.Inputs {
		if err := simplified.AddInput(in); err != nil {
			return nil, err
		}
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, name := range order {
		node := n.nodes[name]
		fn := bexpr.New(node.Expr)
		cov, err := fn.Cover()
		if err != nil {
			return nil, err
		}
		min, err := espresso.Minimize(cov, cube.NewCover(cov.N))
		if err != nil {
			return nil, err
		}
		expr := bexpr.FromCover(min.Cover, fn.Vars)
		if err := simplified.AddNode(name, expr.Root); err != nil {
			return nil, err
		}
	}
	for _, o := range n.Outputs {
		if err := simplified.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	return AsyncTechDecomp(simplified)
}
