// Package network implements the technology-independent multi-level logic
// network the mapper operates on: a DAG of named nodes, each computing a
// Boolean-factored-form expression of its fanins.
//
// The package provides the first two phases of the paper's mapping
// pipeline: AsyncTechDecomp — decomposition into two-input base gates using
// only the associative law and DeMorgan's law, which Unger showed to be
// hazard-preserving for all logic hazards (§3.1.1) — and Partition, which
// cuts the decomposed network at points of multiple fanout into
// single-output cones of logic (§3.1.2).
package network

import (
	"fmt"
	"sort"
	"strings"

	"gfmap/internal/bexpr"
)

// Network is a combinational logic network. Primary inputs are names with
// no defining node; every other signal is defined by exactly one node.
type Network struct {
	Name    string
	Inputs  []string
	Outputs []string
	nodes   map[string]*Node
	order   []string // insertion order of node names, for determinism
}

// Node defines one internal signal as an expression over other signals.
type Node struct {
	Name string
	Expr *bexpr.Expr
	// Fanins are the distinct signals the expression reads, in
	// first-appearance order.
	Fanins []string
}

// New creates an empty network.
func New(name string) *Network {
	return &Network{Name: name, nodes: make(map[string]*Node)}
}

// AddInput declares a primary input.
func (n *Network) AddInput(name string) error {
	if n.exists(name) {
		return fmt.Errorf("network: signal %q already defined", name)
	}
	n.Inputs = append(n.Inputs, name)
	return nil
}

// AddNode defines signal name as the expression e over existing signals.
func (n *Network) AddNode(name string, e *bexpr.Expr) error {
	if n.exists(name) {
		return fmt.Errorf("network: signal %q already defined", name)
	}
	node := &Node{Name: name, Expr: e, Fanins: e.CollectVars(nil)}
	n.nodes[name] = node
	n.order = append(n.order, name)
	return nil
}

// MarkOutput declares an existing signal as a primary output.
func (n *Network) MarkOutput(name string) error {
	if !n.exists(name) {
		return fmt.Errorf("network: output %q is not a defined signal", name)
	}
	for _, o := range n.Outputs {
		if o == name {
			return nil
		}
	}
	n.Outputs = append(n.Outputs, name)
	return nil
}

func (n *Network) exists(name string) bool {
	if _, ok := n.nodes[name]; ok {
		return true
	}
	for _, in := range n.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// Node returns the defining node of a signal, or nil for primary inputs
// and unknown names.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// IsInput reports whether the name is a primary input.
func (n *Network) IsInput(name string) bool {
	for _, in := range n.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// NodeNames returns the internal node names in insertion order.
func (n *Network) NodeNames() []string { return append([]string(nil), n.order...) }

// NumNodes returns the number of internal nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Validate checks that every fanin exists, every output is defined and the
// network is acyclic.
func (n *Network) Validate() error {
	for _, name := range n.order {
		for _, f := range n.nodes[name].Fanins {
			if !n.exists(f) {
				return fmt.Errorf("network: node %q reads undefined signal %q", name, f)
			}
		}
	}
	for _, o := range n.Outputs {
		if !n.exists(o) {
			return fmt.Errorf("network: undefined output %q", o)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the node names in topological order (fanins first).
func (n *Network) TopoOrder() ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(n.nodes))
	var out []string
	var visit func(name string) error
	visit = func(name string) error {
		node := n.nodes[name]
		if node == nil {
			return nil // primary input
		}
		switch state[name] {
		case gray:
			return fmt.Errorf("network: combinational cycle through %q", name)
		case black:
			return nil
		}
		state[name] = gray
		for _, f := range node.Fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[name] = black
		out = append(out, name)
		return nil
	}
	for _, name := range n.order {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Eval computes every signal value given primary input values.
func (n *Network) Eval(inputs map[string]bool) (map[string]bool, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make(map[string]bool, len(inputs)+len(order))
	for k, v := range inputs {
		vals[k] = v
	}
	for _, name := range order {
		node := n.nodes[name]
		v, err := evalExpr(node.Expr, vals)
		if err != nil {
			return nil, fmt.Errorf("network: node %q: %w", name, err)
		}
		vals[name] = v
	}
	return vals, nil
}

func evalExpr(e *bexpr.Expr, vals map[string]bool) (bool, error) {
	switch e.Op {
	case bexpr.OpConst:
		return e.Val, nil
	case bexpr.OpVar:
		v, ok := vals[e.Name]
		if !ok {
			return false, fmt.Errorf("undefined signal %q", e.Name)
		}
		return v, nil
	case bexpr.OpNot:
		v, err := evalExpr(e.Kids[0], vals)
		return !v, err
	case bexpr.OpAnd:
		out := true
		for _, k := range e.Kids {
			v, err := evalExpr(k, vals)
			if err != nil {
				return false, err
			}
			out = out && v
		}
		return out, nil
	case bexpr.OpOr:
		out := false
		for _, k := range e.Kids {
			v, err := evalExpr(k, vals)
			if err != nil {
				return false, err
			}
			out = out || v
		}
		return out, nil
	}
	return false, fmt.Errorf("bad op %d", e.Op)
}

// EvalOutputs evaluates the network at an input point given as a bitmask
// over the Inputs order, returning output values as a bitmask over the
// Outputs order. Intended for exhaustive equivalence checks.
func (n *Network) EvalOutputs(point uint64) (uint64, error) {
	in := make(map[string]bool, len(n.Inputs))
	for i, name := range n.Inputs {
		in[name] = point&(1<<uint(i)) != 0
	}
	vals, err := n.Eval(in)
	if err != nil {
		return 0, err
	}
	var out uint64
	for i, name := range n.Outputs {
		if vals[name] {
			out |= 1 << uint(i)
		}
	}
	return out, nil
}

// Equivalent exhaustively compares two networks with identical input and
// output name sets (order may differ). It requires at most 20 inputs.
func Equivalent(a, b *Network) (bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil
	}
	if len(a.Inputs) > 20 {
		return false, fmt.Errorf("network: equivalence check limited to 20 inputs, got %d", len(a.Inputs))
	}
	// Map b's input/output order onto a's.
	bIn := make(map[string]int, len(b.Inputs))
	for i, name := range b.Inputs {
		bIn[name] = i
	}
	bOut := make(map[string]int, len(b.Outputs))
	for i, name := range b.Outputs {
		bOut[name] = i
	}
	for _, name := range a.Inputs {
		if _, ok := bIn[name]; !ok {
			return false, nil
		}
	}
	for _, name := range a.Outputs {
		if _, ok := bOut[name]; !ok {
			return false, nil
		}
	}
	for p := uint64(0); p < 1<<uint(len(a.Inputs)); p++ {
		av, err := a.EvalOutputs(p)
		if err != nil {
			return false, err
		}
		// Build b's point with the same input values.
		var bp uint64
		for i, name := range a.Inputs {
			if p&(1<<uint(i)) != 0 {
				bp |= 1 << uint(bIn[name])
			}
		}
		bv, err := b.EvalOutputs(bp)
		if err != nil {
			return false, err
		}
		for i, name := range a.Outputs {
			if (av>>uint(i))&1 != (bv>>uint(bOut[name]))&1 {
				return false, nil
			}
		}
	}
	return true, nil
}

// FanoutCounts returns, for every signal, how many node expressions read it
// (outputs additionally count as one reader each, so an internal signal
// that is also an output keeps its own cone).
func (n *Network) FanoutCounts() map[string]int {
	counts := make(map[string]int)
	for _, name := range n.order {
		node := n.nodes[name]
		for _, f := range node.Fanins {
			counts[f]++
		}
	}
	for _, o := range n.Outputs {
		counts[o]++
	}
	return counts
}

// String renders the network in eqn-like form, for debugging and golden
// tests.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# network %s\n", n.Name)
	fmt.Fprintf(&b, "INPUT(%s)\n", strings.Join(n.Inputs, ","))
	fmt.Fprintf(&b, "OUTPUT(%s)\n", strings.Join(n.Outputs, ","))
	for _, name := range n.order {
		fmt.Fprintf(&b, "%s = %s;\n", name, n.nodes[name].Expr.String())
	}
	return b.String()
}

// SortedSignals returns all signal names, sorted; useful for deterministic
// reporting.
func (n *Network) SortedSignals() []string {
	out := append([]string(nil), n.Inputs...)
	out = append(out, n.order...)
	sort.Strings(out)
	return out
}
