package network

import (
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/hazard"
)

// buildNet constructs a network from input names and name=expr pairs; all
// node names are marked as outputs unless outputs is non-nil.
func buildNet(t *testing.T, inputs []string, defs [][2]string, outputs []string) *Network {
	t.Helper()
	n := New("t")
	for _, in := range inputs {
		if err := n.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range defs {
		if err := n.AddNode(d[0], bexpr.MustParseExpr(d[1])); err != nil {
			t.Fatal(err)
		}
	}
	if outputs == nil {
		for _, d := range defs {
			outputs = append(outputs, d[0])
		}
	}
	for _, o := range outputs {
		if err := n.MarkOutput(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEval(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b", "c"},
		[][2]string{{"u", "a*b"}, {"f", "u + c"}},
		[]string{"f"})
	vals, err := n.Eval(map[string]bool{"a": true, "b": true, "c": false})
	if err != nil {
		t.Fatal(err)
	}
	if !vals["f"] || !vals["u"] {
		t.Errorf("wrong evaluation: %v", vals)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	n := New("cyc")
	_ = n.AddInput("a")
	_ = n.AddNode("x", bexpr.MustParseExpr("a + y"))
	_ = n.AddNode("y", bexpr.MustParseExpr("x"))
	_ = n.MarkOutput("y")
	if err := n.Validate(); err == nil {
		t.Error("cycle should be rejected")
	}
}

func TestValidateCatchesUndefined(t *testing.T) {
	n := New("undef")
	_ = n.AddInput("a")
	_ = n.AddNode("x", bexpr.MustParseExpr("a*q"))
	_ = n.MarkOutput("x")
	if err := n.Validate(); err == nil {
		t.Error("undefined fanin should be rejected")
	}
}

func TestDuplicateNames(t *testing.T) {
	n := New("dup")
	if err := n.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddInput("a"); err == nil {
		t.Error("duplicate input should be rejected")
	}
	if err := n.AddNode("a", bexpr.MustParseExpr("a")); err == nil {
		t.Error("node shadowing an input should be rejected")
	}
}

func TestAsyncTechDecompEquivalence(t *testing.T) {
	cases := [][2]string{
		{"f", "a*b*c + a'*(b + c')"},
		{"g", "(a*b + c*d)'"},
		{"h", "a + b + c + d"},
		{"k", "((a + b')*(c + d))' + a*d"},
	}
	for _, tc := range cases {
		n := buildNet(t, []string{"a", "b", "c", "d"}, [][2]string{tc}, nil)
		d, err := AsyncTechDecomp(n)
		if err != nil {
			t.Fatalf("%s: %v", tc[1], err)
		}
		if !IsDecomposed(d) {
			t.Errorf("%s: decomposition left non-base gates:\n%s", tc[1], d)
		}
		eq, err := Equivalent(n, d)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s: decomposed network is not equivalent:\n%s", tc[1], d)
		}
	}
}

func TestAsyncTechDecompMultiNode(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b", "c", "d"},
		[][2]string{
			{"u", "a*b + c"},
			{"v", "u' + d"},
			{"f", "u*v"},
		},
		[]string{"f", "v"})
	d, err := AsyncTechDecomp(n)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDecomposed(d) {
		t.Fatalf("not fully decomposed:\n%s", d)
	}
	eq, err := Equivalent(n, d)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("multi-node decomposition not equivalent:\n%s", d)
	}
}

// TestDecompHazardPreserving verifies Unger's theorem empirically: the
// decomposed single-output network has exactly the hazard behaviour of the
// original expression.
func TestDecompHazardPreserving(t *testing.T) {
	exprs := []string{
		"s'*a + s*b",
		"a*b + a'*c + b*c",
		"w*y + x*y",
		"(w + x)*y",
		"(w + y' + x')*(x*y + y'*z)",
	}
	for _, e := range exprs {
		orig := bexpr.MustParse(e)
		n := New("t")
		for _, v := range orig.Vars {
			if err := n.AddInput(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.AddNode("f", orig.Root.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := n.MarkOutput("f"); err != nil {
			t.Fatal(err)
		}
		d, err := AsyncTechDecomp(n)
		if err != nil {
			t.Fatal(err)
		}
		cones, err := Partition(d)
		if err != nil {
			t.Fatal(err)
		}
		// Re-express the whole decomposed network as one expression over
		// the primary inputs by inlining every cone (fanout sharing of
		// inverters may create more than one cone; inline all).
		flat, err := expandCone(d, "f", func(string) bool { return false })
		if err != nil {
			t.Fatal(err)
		}
		flatFn, err := bexpr.NewWithVars(flat, orig.Vars)
		if err != nil {
			t.Fatal(err)
		}
		origSet := hazard.MustAnalyze(orig)
		decompSet := hazard.MustAnalyze(flatFn)
		if !origSet.Equal(decompSet) {
			t.Errorf("%q: hazard behaviour changed by decomposition\noriginal: %v\ndecomposed: %v\n%s",
				e, origSet, decompSet, d)
		}
		_ = cones
	}
}

func TestPartitionSimple(t *testing.T) {
	// u fans out to two nodes, so it must become a cone root.
	n := buildNet(t,
		[]string{"a", "b", "c"},
		[][2]string{
			{"u", "a*b"},
			{"f", "u + c"},
			{"g", "u*c"},
		},
		[]string{"f", "g"})
	cones, err := Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string][]string{}
	for _, c := range cones {
		roots[c.Root] = c.Leaves
	}
	if len(cones) != 3 {
		t.Fatalf("got %d cones, want 3 (u, f, g): %v", len(cones), roots)
	}
	if got := roots["f"]; len(got) != 2 || got[0] != "u" || got[1] != "c" {
		t.Errorf("cone f leaves = %v, want [u c]", got)
	}
	if got := roots["u"]; len(got) != 2 {
		t.Errorf("cone u leaves = %v, want [a b]", got)
	}
}

func TestPartitionInlinesPrivateNodes(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b", "c", "d"},
		[][2]string{
			{"p", "a*b"},
			{"q", "p + c"},
			{"f", "q*d"},
		},
		[]string{"f"})
	cones, err := Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cones) != 1 {
		t.Fatalf("got %d cones, want 1", len(cones))
	}
	c := cones[0]
	if c.Root != "f" {
		t.Errorf("root = %s, want f", c.Root)
	}
	want := "(a*b + c)*d"
	if got := c.Expr.String(); got != want {
		t.Errorf("cone expression = %q, want %q", got, want)
	}
}

func TestPartitionTopological(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b"},
		[][2]string{
			{"u", "a*b"},
			{"f", "u + a"},
			{"g", "u + b"},
		},
		[]string{"f", "g"})
	cones, err := Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, c := range cones {
		pos[c.Root] = i
	}
	if pos["u"] > pos["f"] || pos["u"] > pos["g"] {
		t.Errorf("cone order not topological: %v", pos)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := buildNet(t, []string{"x", "y"}, [][2]string{{"f", "x*y"}}, nil)
	b := buildNet(t, []string{"x", "y"}, [][2]string{{"f", "x + y"}}, nil)
	eq, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("AND and OR must not be equivalent")
	}
}

// TestSyncTechDecompIntroducesHazards executes the §3.1.1 warning: the
// MIS-style simplifying decomposition drops the consensus cube of
// f = ab + a'c + bc, creating a static 1-hazard that the hazard-preserving
// AsyncTechDecomp keeps out.
func TestSyncTechDecompIntroducesHazards(t *testing.T) {
	n := buildNet(t, []string{"a", "b", "c"},
		[][2]string{{"f", "a*b + a'*c + b*c"}}, nil)

	analyse := func(net *Network) *hazard.Set {
		t.Helper()
		expr, err := ExpandToExpr(net, "f", nil)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := bexpr.NewWithVars(expr, []string{"a", "b", "c"})
		if err != nil {
			t.Fatal(err)
		}
		return hazard.MustAnalyze(fn)
	}

	asyncD, err := AsyncTechDecomp(n)
	if err != nil {
		t.Fatal(err)
	}
	syncD, err := SyncTechDecomp(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Network{asyncD, syncD} {
		eq, err := Equivalent(n, d)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("decomposition changed the function:\n%s", d)
		}
	}
	asyncSet := analyse(asyncD)
	syncSet := analyse(syncD)
	if len(asyncSet.Static1) != 0 {
		t.Errorf("async decomposition must preserve static-1 freedom, got %v", asyncSet)
	}
	if len(syncSet.Static1) == 0 {
		t.Errorf("simplifying decomposition should drop the consensus cube and create a static-1 hazard; got %v", syncSet)
	}
}

func TestExpandToExprBoundary(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b", "c"},
		[][2]string{
			{"u", "a*b"},
			{"f", "u + c"},
		},
		[]string{"f"})
	// Stopping at u keeps it as a leaf; no boundary inlines it.
	atU, err := ExpandToExpr(n, "f", map[string]bool{"u": true})
	if err != nil {
		t.Fatal(err)
	}
	if got := atU.String(); got != "u + c" {
		t.Errorf("boundary expansion = %q, want u + c", got)
	}
	full, err := ExpandToExpr(n, "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.String(); got != "a*b + c" {
		t.Errorf("full expansion = %q, want a*b + c", got)
	}
	if _, err := ExpandToExpr(n, "a", nil); err == nil {
		t.Error("expanding a primary input should fail")
	}
}

func TestFanoutCounts(t *testing.T) {
	n := buildNet(t,
		[]string{"a", "b"},
		[][2]string{
			{"u", "a*b"},
			{"f", "u + a"},
			{"g", "u*b"},
		},
		[]string{"f", "g"})
	fan := n.FanoutCounts()
	if fan["u"] != 2 {
		t.Errorf("fanout(u) = %d, want 2", fan["u"])
	}
	if fan["a"] != 2 { // u and f read a
		t.Errorf("fanout(a) = %d, want 2", fan["a"])
	}
	if fan["f"] != 1 { // output counts as a reader
		t.Errorf("fanout(f) = %d, want 1", fan["f"])
	}
}

func TestEvalOutputsBitOrder(t *testing.T) {
	n := buildNet(t, []string{"a", "b"},
		[][2]string{{"f", "a"}, {"g", "b'"}},
		[]string{"f", "g"})
	out, err := n.EvalOutputs(0b01) // a=1, b=0
	if err != nil {
		t.Fatal(err)
	}
	if out != 0b11 { // f=1 (bit 0), g=1 (bit 1)
		t.Errorf("outputs = %02b, want 11", out)
	}
}
