package network

import (
	"fmt"

	"gfmap/internal/bexpr"
)

// Cone is a single-output cone of logic: a fanout-free tree of gates from
// Root down to the cut points (Leaves), which are primary inputs or other
// cones' roots. The mapper treats each cone independently (§3.1.2);
// because every internal signal of a cone has fanout one, the cone's
// structure is fully captured by the expression tree Expr over Leaves.
type Cone struct {
	Root   string
	Leaves []string
	Expr   *bexpr.Function
}

// Partition cuts the network at points of multiple fanout and returns the
// single-output cones in topological order (leaf-most first). Every primary
// output and every signal read by two or more gates becomes a cone root.
func Partition(n *Network) ([]Cone, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	fan := n.FanoutCounts()
	isRoot := func(name string) bool {
		if n.nodes[name] == nil {
			return false // primary input
		}
		return fan[name] >= 2 || containsName(n.Outputs, name)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	var cones []Cone
	for _, name := range order {
		if !isRoot(name) {
			continue
		}
		expr, err := expandCone(n, name, isRoot)
		if err != nil {
			return nil, err
		}
		fn := bexpr.New(expr)
		cones = append(cones, Cone{Root: name, Leaves: fn.Vars, Expr: fn})
	}
	return cones, nil
}

// ExpandToExpr inlines the defining expressions of internal signals below
// root, stopping at the given boundary signals (and at primary inputs),
// and returns the resulting expression tree. It is the tool for comparing
// the structure of a region of one network against the same region of
// another — e.g. a cone before and after mapping.
func ExpandToExpr(n *Network, root string, boundary map[string]bool) (*bexpr.Expr, error) {
	return expandCone(n, root, func(name string) bool { return boundary[name] })
}

// expandCone inlines the defining expressions of non-root internal signals
// below root, stopping at primary inputs and other roots.
func expandCone(n *Network, root string, isRoot func(string) bool) (*bexpr.Expr, error) {
	node := n.nodes[root]
	if node == nil {
		return nil, fmt.Errorf("network: cone root %q is not a node", root)
	}
	var subst func(e *bexpr.Expr) (*bexpr.Expr, error)
	subst = func(e *bexpr.Expr) (*bexpr.Expr, error) {
		switch e.Op {
		case bexpr.OpConst:
			return bexpr.Const(e.Val), nil
		case bexpr.OpVar:
			inner := n.nodes[e.Name]
			if inner == nil || isRoot(e.Name) {
				return bexpr.Var(e.Name), nil
			}
			return subst(inner.Expr)
		case bexpr.OpNot:
			k, err := subst(e.Kids[0])
			if err != nil {
				return nil, err
			}
			return bexpr.Not(k), nil
		case bexpr.OpAnd, bexpr.OpOr:
			kids := make([]*bexpr.Expr, len(e.Kids))
			for i, k := range e.Kids {
				kk, err := subst(k)
				if err != nil {
					return nil, err
				}
				kids[i] = kk
			}
			if e.Op == bexpr.OpAnd {
				return bexpr.And(kids...), nil
			}
			return bexpr.Or(kids...), nil
		}
		return nil, fmt.Errorf("network: bad op %d", e.Op)
	}
	return subst(node.Expr)
}
