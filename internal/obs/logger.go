package obs

// Structured JSON logging for the serving layer. Every line is one JSON
// object — {"ts":...,"level":...,"msg":...,<fields>} — so server output
// is machine-parseable end to end (the access-log schema cmd/tracelint
// validates). The fast path reuses pooled line buffers: emitting a line
// with string/int/float fields is allocation-free in steady state, which
// the package benchmarks assert. A nil *Logger is valid and fully
// disabled; every method on it (and on the nil *LogLine it hands out)
// is a no-op, matching the tracer's nil-off discipline.

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Logger writes one JSON object per line to w, serialised by an internal
// mutex so concurrent requests never interleave bytes.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	pool sync.Pool
	// now is replaceable in tests for stable timestamps.
	now func() time.Time
}

// NewLogger returns a logger writing to w; a nil w yields a nil (fully
// disabled) logger.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	l := &Logger{w: w, now: time.Now}
	l.pool.New = func() any { return &LogLine{buf: make([]byte, 0, 512)} }
	return l
}

// LogLine is one structured line under construction. Append fields with
// Str/Int/Float/Bool and finish with Send. A nil *LogLine (from a nil
// logger) is inert.
type LogLine struct {
	lg  *Logger
	buf []byte
}

func (l *Logger) line(level, msg string) *LogLine {
	if l == nil {
		return nil
	}
	e := l.pool.Get().(*LogLine)
	e.lg = l
	e.buf = append(e.buf[:0], `{"ts":"`...)
	e.buf = l.now().UTC().AppendFormat(e.buf, time.RFC3339Nano)
	e.buf = append(e.buf, `","level":"`...)
	e.buf = append(e.buf, level...)
	e.buf = append(e.buf, `","msg":`...)
	e.buf = appendJSONString(e.buf, msg)
	return e
}

// Info opens an info-level line.
func (l *Logger) Info(msg string) *LogLine { return l.line("info", msg) }

// Warn opens a warn-level line.
func (l *Logger) Warn(msg string) *LogLine { return l.line("warn", msg) }

// Error opens an error-level line.
func (l *Logger) Error(msg string) *LogLine { return l.line("error", msg) }

// Str appends a string field.
func (e *LogLine) Str(key, v string) *LogLine {
	if e == nil {
		return nil
	}
	e.key(key)
	e.buf = appendJSONString(e.buf, v)
	return e
}

// Int appends an integer field.
func (e *LogLine) Int(key string, v int64) *LogLine {
	if e == nil {
		return nil
	}
	e.key(key)
	e.buf = strconv.AppendInt(e.buf, v, 10)
	return e
}

// Float appends a float field (JSON number; NaN/Inf become null, which
// JSON cannot carry as numbers).
func (e *LogLine) Float(key string, v float64) *LogLine {
	if e == nil {
		return nil
	}
	e.key(key)
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		e.buf = append(e.buf, "null"...)
		return e
	}
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
	return e
}

// Bool appends a boolean field.
func (e *LogLine) Bool(key string, v bool) *LogLine {
	if e == nil {
		return nil
	}
	e.key(key)
	e.buf = strconv.AppendBool(e.buf, v)
	return e
}

func (e *LogLine) key(k string) {
	e.buf = append(e.buf, ',')
	e.buf = appendJSONString(e.buf, k)
	e.buf = append(e.buf, ':')
}

// Send terminates and writes the line, returning the LogLine to the pool.
// The line must not be used after Send.
func (e *LogLine) Send() {
	if e == nil {
		return
	}
	e.buf = append(e.buf, '}', '\n')
	l := e.lg
	l.mu.Lock()
	_, _ = l.w.Write(e.buf)
	l.mu.Unlock()
	e.lg = nil
	l.pool.Put(e)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a JSON-quoted, escaped string without
// allocating.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			// Multi-byte UTF-8 passes through byte-wise; JSON strings may
			// carry raw UTF-8.
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
