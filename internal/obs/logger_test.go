package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerLineSchema(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC) }
	l.Info("request").
		Str("request_id", "req-42").
		Str("method", "POST").
		Int("status", 200).
		Float("elapsed_ms", 1.25).
		Bool("cached", true).
		Send()

	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, line)
	}
	if m["ts"] != "2026-08-07T12:00:00.123456789Z" {
		t.Errorf("ts = %v", m["ts"])
	}
	if m["level"] != "info" || m["msg"] != "request" {
		t.Errorf("level/msg = %v/%v", m["level"], m["msg"])
	}
	if m["request_id"] != "req-42" || m["status"] != float64(200) ||
		m["elapsed_ms"] != 1.25 || m["cached"] != true {
		t.Errorf("fields wrong: %v", m)
	}
}

func TestLoggerEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Error("boom\n\"quoted\"\tpath\\x").Str("detail", "\x01controlé").Send()
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("escaped line is not JSON: %v\n%s", err, buf.String())
	}
	if m["msg"] != "boom\n\"quoted\"\tpath\\x" {
		t.Errorf("msg round-trip: %q", m["msg"])
	}
	if m["detail"] != "\x01controlé" {
		t.Errorf("detail round-trip: %q", m["detail"])
	}
}

func TestLoggerNaNFloat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	nan := 0.0
	nan /= nan
	l.Info("x").Float("v", nan).Send()
	if !json.Valid(bytes.TrimSpace(buf.Bytes())) {
		t.Fatalf("NaN float broke JSON: %s", buf.String())
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	l.Info("nothing").Str("k", "v").Int("i", 1).Float("f", 1).Bool("b", true).Send()
	l.Warn("w").Send()
	l.Error("e").Send()
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) should be a nil logger")
	}
}

func TestLoggerConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&syncWriter{w: &buf})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("line").Int("worker", int64(i)).Int("seq", int64(j)).Send()
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// The access-log fast path must not allocate in steady state: the line
// buffer is pooled and every append writes into it in place.
func TestLoggerZeroAllocs(t *testing.T) {
	l := NewLogger(io.Discard)
	// Warm the pool.
	l.Info("warm").Str("k", "v").Send()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Info("request").
			Str("request_id", "r-123456").
			Str("method", "POST").
			Str("path", "/map").
			Int("status", 200).
			Int("bytes", 4096).
			Float("elapsed_ms", 12.5).
			Send()
	})
	if allocs != 0 {
		t.Fatalf("access-log fast path allocates: %v allocs/op", allocs)
	}
}

func BenchmarkLoggerLine(b *testing.B) {
	l := NewLogger(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Info("request").
			Str("request_id", "r-123456").
			Str("method", "POST").
			Str("path", "/map").
			Int("status", 200).
			Float("elapsed_ms", 12.5).
			Send()
	}
}
