package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. A nil *Counter is valid
// and inert, so callers can hold handles unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric. A nil *Gauge is valid and inert.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Bounds are inclusive
// upper bucket bounds; an implicit +Inf bucket catches the overflow.
// A nil *Histogram is valid and inert. Observation is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a sample given in seconds — an alias for
// Observe that documents the unit convention for latency histograms.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Snapshot returns a consistent-enough copy for reporting (bucket counts
// are loaded individually; the histogram may be concurrently updated).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time view of a histogram, suitable for JSON
// reports. Counts has one more element than Bounds (the +Inf bucket).
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile from the bucket counts, reporting the
// upper bound of the bucket containing the quantile; observations in the
// +Inf overflow bucket report the largest finite bound (so an all-overflow
// histogram reports its largest bound at every quantile). q is clamped to
// [0, 1]; NaN is treated as 0. q=0 reports the smallest bucket holding any
// mass, q=1 the largest. An empty snapshot — or one recorded with no
// finite bounds at all — reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// String renders a compact one-line summary: count, mean and coarse
// bucket-quantile estimates.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%.4g p50≤%.4g p90≤%.4g p99≤%.4g",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds: start,
// start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Registry is a named collection of metrics. A nil *Registry is valid and
// fully disabled: lookups return nil handles, whose methods are no-ops.
// Registries are safe for concurrent use; metric instruments are created
// on first lookup and shared thereafter.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rollings map[string]*RollingHistogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rollings: make(map[string]*RollingHistogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (an inert handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (an inert handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the first bounds).
// Returns nil (an inert handle) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Rolling returns the named rolling (sliding-window) histogram, creating
// it with the given bucket bounds, window width and slot count on first
// use (later calls reuse the first configuration). Returns nil (an inert
// handle) on a nil registry.
func (r *Registry) Rolling(name string, bounds []float64, window time.Duration, slots int) *RollingHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.rollings[name]
	if !ok {
		h = NewRollingHistogram(bounds, window, slots)
		r.rollings[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	// Rolling holds the sliding-window histograms, merged over their
	// current window — unlike Histograms these shrink as samples age out.
	Rolling map[string]HistSnapshot `json:"rolling,omitempty"`
}

// Snapshot copies out every metric. A nil registry yields a zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.rollings) > 0 {
		s.Rolling = make(map[string]HistSnapshot, len(r.rollings))
		for name, h := range r.rollings {
			s.Rolling[name] = h.Snapshot()
		}
	}
	return s
}

// Format renders the snapshot as sorted human-readable lines, each
// prefixed with prefix (e.g. "# " to trail a netlist as comments).
func (s Snapshot) Format(prefix string) string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%scounter %s = %d\n", prefix, n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%sgauge %s = %g\n", prefix, n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%shist %s: %s\n", prefix, n, s.Histograms[n])
	}
	names = names[:0]
	for n := range s.Rolling {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%srolling %s: %s\n", prefix, n, s.Rolling[n])
	}
	return b.String()
}
