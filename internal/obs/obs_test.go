package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpansAndExport(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.StartSpan("decompose")
	sp.SetInt("nodes", 12)
	sp.End()
	wsp := tr.StartSpanOn(2, "cone")
	wsp.SetStr("cone", "f")
	wsp.SetInt("clusters", 7)
	wsp.End()
	tr.Event(0, "cones")
	tr.EventInt(1, "partitioned", "count", 3)

	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	names := tr.SpanNames()
	for _, want := range []string{"decompose", "cone", "cones", "partitioned"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("SpanNames missing %q: %v", want, names)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, metas, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("X event missing dur: %v", ev)
			}
		case "M":
			metas++
		case "i":
			instants++
		}
		for _, field := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[field]; !ok && ev["ph"] != "M" {
				t.Errorf("event missing %s: %v", field, ev)
			}
		}
	}
	if spans != 2 || instants != 2 {
		t.Errorf("got %d spans, %d instants, want 2, 2", spans, instants)
	}
	if metas < 2 {
		t.Errorf("expected thread metadata events, got %d", metas)
	}

	buf.Reset()
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if _, ok := rec["name"]; !ok {
			t.Errorf("JSONL line missing name: %s", ln)
		}
		if _, ok := rec["ts_us"]; !ok {
			t.Errorf("JSONL line missing ts_us: %s", ln)
		}
	}
}

func TestTracerBufferCap(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Event(0, "e")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpanOn(w+1, "cone")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d, want 800", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent trace export is not valid JSON")
	}
}

func TestNilTracerExport(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil tracer export invalid: %s", buf.String())
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.SpanNames() != nil {
		t.Error("nil tracer should report empty state")
	}
}

// TestDisabledPathZeroAllocs pins the observability off-switch: the exact
// call pattern the mapper's hot loops use must not allocate (or read the
// clock, though only allocations are asserted here) when the tracer and
// registry are nil.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	h := reg.Histogram("map_hazard_analyze_seconds", ExpBuckets(1e-6, 4, 10))
	c := reg.Counter("map_clusters")
	g := reg.Gauge("map_area")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpanOn(1, "hazard")
		sp.SetInt("cone", 7)
		sp.SetStr("phase", "pos")
		sp.End()
		tr.Event(1, "e")
		tr.EventInt(1, "e", "k", 1)
		h.Observe(1.5)
		h.ObserveDuration(0.01)
		c.Add(3)
		c.Inc()
		g.Set(2.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates: %v allocs/op", allocs)
	}
}

func TestRegistryMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("clusters")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if reg.Counter("clusters") != c {
		t.Error("counter lookup should return the same instance")
	}
	g := reg.Gauge("area")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Errorf("gauge = %g, want 12.5", g.Value())
	}

	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("hist count = %d, want 5", s.Count)
	}
	if s.Sum != 1055.5 {
		t.Errorf("hist sum = %g, want 1055.5", s.Sum)
	}
	wantCounts := []uint64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Errorf("p99 = %g, want 100 (overflow clamps to top bound)", q)
	}
	if mean := s.Mean(); math.Abs(mean-211.1) > 1e-9 {
		t.Errorf("mean = %g, want 211.1", mean)
	}
	if str := s.String(); !strings.Contains(str, "count=5") {
		t.Errorf("summary missing count: %s", str)
	}

	snap := reg.Snapshot()
	if snap.Counters["clusters"] != 42 || snap.Gauges["area"] != 12.5 {
		t.Errorf("snapshot wrong: %+v", snap)
	}
	if snap.Histograms["lat"].Count != 5 {
		t.Errorf("snapshot hist wrong: %+v", snap.Histograms["lat"])
	}
	text := snap.Format("# ")
	for _, want := range []string{"# counter clusters = 42", "# gauge area = 12.5", "# hist lat:"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 300))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != 8000 {
		t.Errorf("bucket sum = %d, want 8000", bucketSum)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 2, 3)
	want = []float64{0, 2, 4}
	for i := range want {
		if lin[i] != want[i] {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], want[i])
		}
	}
}

func TestNilRegistrySnapshot(t *testing.T) {
	var reg *Registry
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Error("nil registry lookups should return nil handles")
	}
}
